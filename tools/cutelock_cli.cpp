// cutelock — command-line driver for the library.
//
//   cutelock info <circuit.bench>
//   cutelock lock <circuit.bench> -o <locked.bench> [--k 4] [--ki 4]
//            [--ffs 2] [--seed 1] [--single-key] [--keys 1,3,2,0]
//   cutelock attack <locked.bench> --oracle <original.bench>
//            [--attack bmc|kc2|rane|sat|appsat|double-dip|bbo|fall|dana|
//             periodic] [--seconds 10]
//            (sat/appsat/double-dip run the scan-access model: both circuits
//             are scan-exposed first)
//   cutelock overhead <circuit.bench> [--baseline <original.bench>]
//   cutelock vcd <circuit.bench> -o <out.vcd> [--cycles 32] [--seed 1]
//
// Exit code 0 on success; attacks return 0 when the defense held and 2 when
// a key was recovered (so scripts can assert either way).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "attack/bbo.hpp"
#include "attack/dana.hpp"
#include "attack/fall.hpp"
#include "attack/periodic_attack.hpp"
#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "core/cute_lock_str.hpp"
#include "netlist/transform.hpp"
#include "netlist/bench_io.hpp"
#include "sim/vcd.hpp"
#include "tech/overhead.hpp"
#include "util/env.hpp"
#include "util/strings.hpp"

namespace {

using namespace cl;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : std::stoull(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0 || a == "-o") {
      const std::string name = (a == "-o") ? "out" : a.substr(2);
      // Boolean flags have no value; peek at the next token.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[name] = argv[++i];
      } else {
        args.options[name] = "1";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: cutelock <info|lock|attack|overhead|vcd> <file> "
               "[options]\n  see the header of tools/cutelock_cli.cpp\n");
  return 64;
}

int cmd_info(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  const auto st = nl.stats();
  std::printf("%s: %zu inputs, %zu key inputs, %zu outputs, %zu FFs, %zu gates\n",
              nl.name().c_str(), st.inputs, st.key_inputs, st.outputs, st.dffs,
              st.gates);
  return 0;
}

int cmd_lock(const Args& args) {
  if (args.positional.empty() || !args.flag("out")) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  core::StrOptions options;
  options.num_keys = args.get_u64("k", 4);
  options.key_bits = args.get_u64("ki", 4);
  options.locked_ffs = args.get_u64("ffs", 1);
  options.seed = args.get_u64("seed", 1);
  options.single_key_reduction = args.flag("single-key");
  if (args.flag("keys")) {
    for (const std::string& v : util::split(args.get("keys", ""), ",")) {
      options.explicit_keys.push_back(std::stoull(v));
    }
  }
  const lock::LockResult locked = core::cute_lock_str(nl, options);
  netlist::write_bench_file(args.get("out", ""), locked.locked);
  std::printf("locked %s -> %s\nkey schedule (cycle t expects K[t %% %zu]):",
              nl.name().c_str(), args.get("out", "").c_str(),
              locked.key_schedule.size());
  for (const auto& kv : locked.key_schedule) {
    std::printf(" %llu", static_cast<unsigned long long>(sim::bits_to_u64(kv)));
  }
  std::printf("\n");
  return 0;
}

int cmd_attack(const Args& args) {
  if (args.positional.empty() || !args.flag("oracle")) return usage();
  const auto locked = netlist::read_bench_file(args.positional[0]);
  const auto original = netlist::read_bench_file(args.get("oracle", ""));
  attack::SequentialOracle oracle(original);
  attack::AttackBudget budget;
  budget.time_limit_s = static_cast<double>(args.get_u64("seconds", 10));
  budget.sat_workers = util::sat_portfolio_from_env();

  const std::string mode = args.get("attack", "bmc");
  attack::AttackResult result;
  if (mode == "bmc") result = attack::bmc_attack(locked, oracle, budget);
  else if (mode == "kc2") result = attack::kc2_attack(locked, oracle, budget);
  else if (mode == "rane") result = attack::rane_attack(locked, oracle, budget);
  else if (mode == "sat" || mode == "appsat" || mode == "double-dip") {
    // Scan-access threat model: full scan-chain access turns both circuits
    // combinational, then the classic HOST'15 loop (or a descendant) runs.
    const auto locked_scan = netlist::scan_expose(locked);
    const auto original_scan = netlist::scan_expose(original);
    if (locked_scan.inputs().size() != original_scan.inputs().size() ||
        locked_scan.outputs().size() != original_scan.outputs().size()) {
      std::fprintf(stderr,
                   "cutelock: scan interfaces differ (%zu vs %zu inputs, "
                   "%zu vs %zu outputs): the lock adds state elements, so "
                   "the scan-model attacks do not apply; use bmc/kc2/rane "
                   "instead\n",
                   locked_scan.inputs().size(), original_scan.inputs().size(),
                   locked_scan.outputs().size(),
                   original_scan.outputs().size());
      return 65;
    }
    attack::SequentialOracle scan_oracle(original_scan);
    attack::SatAttackOptions o;
    o.budget = budget;
    if (mode == "appsat") o.mode = attack::SatAttackOptions::Mode::AppSat;
    if (mode == "double-dip") o.mode = attack::SatAttackOptions::Mode::DoubleDip;
    result = attack::sat_attack(locked_scan, scan_oracle, o);
  }
  else if (mode == "bbo") {
    attack::BboOptions o;
    o.budget = budget;
    result = attack::bbo_attack(locked, oracle, o);
  } else if (mode == "fall") {
    attack::FallOptions o;
    o.budget = budget;
    const attack::FallResult fr = attack::fall_attack(locked, oracle, o);
    std::printf("FALL: %zu candidates, %zu confirmed\n", fr.candidates,
                fr.confirmed);
    result = fr.result;
  } else if (mode == "dana") {
    const attack::DanaResult dr = attack::dana_attack(locked);
    std::printf("DANA: %zu clusters over %zu FFs in %zu rounds (%.3fs)\n",
                dr.clusters.size(), locked.dffs().size(), dr.rounds, dr.seconds);
    return 0;
  } else if (mode == "periodic") {
    attack::PeriodicAttackOptions o;
    o.budget = budget;
    o.max_period = args.get_u64("max-period", 8);
    const attack::PeriodicAttackResult pr =
        attack::periodic_key_attack(locked, oracle, o);
    std::printf("periodic attack: %s", pr.result.summary().c_str());
    if (pr.recovered_period != 0) {
      std::printf(" period=%zu schedule:", pr.recovered_period);
      for (const auto& kv : pr.recovered_schedule) {
        std::printf(" %llu",
                    static_cast<unsigned long long>(sim::bits_to_u64(kv)));
      }
    }
    std::printf("\n");
    return pr.result.outcome == attack::Outcome::Equal ? 2 : 0;
  } else {
    return usage();
  }
  std::printf("%s attack: %s (%.3fs)\n", mode.c_str(), result.summary().c_str(),
              result.seconds);
  if (result.replayed_queries != 0) {
    std::printf("oracle queries: %llu fresh, %llu replayed from the "
                "observation bank\n",
                static_cast<unsigned long long>(result.fresh_queries),
                static_cast<unsigned long long>(result.replayed_queries));
  }
  return result.outcome == attack::Outcome::Equal ? 2 : 0;
}

int cmd_overhead(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  const tech::OverheadReport r = tech::analyze_overhead(nl);
  std::printf("%s: power %.2f uW, area %.1f um2, %zu cells, %zu IOs\n",
              nl.name().c_str(), r.power_w * 1e6, r.area_um2, r.cells, r.ios);
  if (args.flag("baseline")) {
    const auto base_nl = netlist::read_bench_file(args.get("baseline", ""));
    const tech::OverheadReport base = tech::analyze_overhead(base_nl);
    std::printf("overhead vs %s: power %+.1f%%, area %+.1f%%, cells %+.1f%%, "
                "IOs %+.1f%%\n",
                base_nl.name().c_str(), r.power_overhead_pct(base),
                r.area_overhead_pct(base), r.cells_overhead_pct(base),
                r.ios_overhead_pct(base));
  }
  return 0;
}

int cmd_vcd(const Args& args) {
  if (args.positional.empty() || !args.flag("out")) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  util::Rng rng(args.get_u64("seed", 1));
  const std::size_t cycles = args.get_u64("cycles", 32);
  const auto stim = sim::random_stimulus(rng, cycles, nl.inputs().size());
  std::vector<sim::BitVec> keys;
  if (!nl.key_inputs().empty()) {
    keys.push_back(sim::random_bits(rng, nl.key_inputs().size()));
  }
  std::ofstream out(args.get("out", ""));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.get("out", "").c_str());
    return 66;
  }
  sim::write_vcd(out, nl, stim, keys);
  std::printf("wrote %zu cycles to %s\n", cycles, args.get("out", "").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (command == "info") return cmd_info(args);
    if (command == "lock") return cmd_lock(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "overhead") return cmd_overhead(args);
    if (command == "vcd") return cmd_vcd(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cutelock: %s\n", e.what());
    return 65;
  }
  return usage();
}
