// cutelock — command-line driver for the library.
//
//   cutelock info <circuit.bench>
//   cutelock lock <circuit.bench> -o <locked.bench> [--k 4] [--ki 4]
//            [--ffs 2] [--seed 1] [--single-key] [--keys 1,3,2,0]
//            [--scheme cl-str|xor|kgate|cac2|latch]
//            (non-default schemes take --seed only and print the correct key
//             plus any decoy key-bit positions)
//   cutelock attack <locked.bench> --oracle <original.bench>
//            [--attack bmc|kc2|rane|sat|appsat|double-dip|bbo|fall|dana|
//             scope|periodic] [--seconds 10]
//            [--accept exact|any|approx] [--epsilon 0.05] [--true-key 0101]
//            (--accept judges the reported key under the chosen acceptance
//             criterion — docs/locking.md — and the exit code follows that
//             verdict instead of the attack's ground-truth comparison)
//            (sat/appsat/double-dip run the scan-access model: both circuits
//             are scan-exposed first; malformed submissions are rejected by
//             the netlist lint before any solver runs)
//   cutelock analyze <circuit.bench> [--seconds 10] [--no-unate]
//            (netlist lint + SCOPE-style per-key-bit structural inference;
//             exit 0 clean, 1 lint errors)
//   cutelock overhead <circuit.bench> [--baseline <original.bench>]
//   cutelock vcd <circuit.bench> -o <out.vcd> [--cycles 32] [--seed 1]
//   cutelock gen <s27|s1423|b14|...> -o <circuit.bench>   (catalog circuits)
//   cutelock serve [--socket <path> | --port 0] [--workers N]
//            [--bank <obs-bank file>]
//   cutelock submit <locked.bench> --oracle <original.bench>
//            (--socket <path> | --port <p>) [--attack bmc] [--seconds 10]
//   cutelock submit --op <ping|stats|shutdown|status|wait|cancel> [--id N]
//            (--socket <path> | --port <p>)
//
// serve runs the attack service (docs/service.md): jobs over newline-
// delimited JSON, scheduled on a thread pool, with the observation bank
// forced on so repeated jobs replay oracle facts instead of re-querying.
// submit is the matching client; its attack output and exit codes mirror
// `cutelock attack` so scripts can treat the two interchangeably.
//
// Exit code 0 on success; attacks return 0 when the defense held and 2 when
// a key was recovered (so scripts can assert either way).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/key_infer.hpp"
#include "analysis/lint.hpp"
#include "attack/accept.hpp"
#include "attack/bbo.hpp"
#include "attack/dana.hpp"
#include "benchgen/catalog.hpp"
#include "attack/fall.hpp"
#include "attack/scope.hpp"
#include "attack/observation_bank.hpp"
#include "attack/periodic_attack.hpp"
#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/lock_registry.hpp"
#include "netlist/transform.hpp"
#include "netlist/bench_io.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "sim/vcd.hpp"
#include "tech/overhead.hpp"
#include "util/env.hpp"
#include "util/strings.hpp"

namespace {

using namespace cl;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string get(const std::string& name, const std::string& fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : std::stoull(it->second);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0 || a == "-o") {
      const std::string name = (a == "-o") ? "out" : a.substr(2);
      // Boolean flags have no value; peek at the next token.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[name] = argv[++i];
      } else {
        args.options[name] = "1";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: cutelock <info|lock|attack|analyze|overhead|vcd|serve|"
               "submit> "
               "<file> [options]\n  see the header of tools/cutelock_cli.cpp\n");
  return 64;
}

bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Observation-bank persistence for one-shot attack runs: with the bank on
/// and CUTELOCK_OBS_BANK_PATH set, facts from earlier processes prime this
/// attack, and this attack's facts are saved back for the next one.
void maybe_load_bank_file() {
  if (!util::obs_bank_from_env()) return;
  const std::string path = util::obs_bank_path_from_env();
  if (path.empty()) return;
  std::ifstream probe(path, std::ios::binary);
  if (!probe) return;  // cold start: nothing persisted yet
  probe.close();
  std::string error;
  if (!attack::load_observation_banks(path, &error)) {
    std::fprintf(stderr, "cutelock: warning: ignoring observation-bank file: %s\n",
                 error.c_str());
  }
}

void maybe_save_bank_file() {
  if (!util::obs_bank_from_env()) return;
  const std::string path = util::obs_bank_path_from_env();
  if (path.empty()) return;
  std::string error;
  if (!attack::save_observation_banks(path, &error)) {
    std::fprintf(stderr,
                 "cutelock: warning: could not save observation banks: %s\n",
                 error.c_str());
  }
}

int cmd_info(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  const auto st = nl.stats();
  std::printf("%s: %zu inputs, %zu key inputs, %zu outputs, %zu FFs, %zu gates\n",
              nl.name().c_str(), st.inputs, st.key_inputs, st.outputs, st.dffs,
              st.gates);
  return 0;
}

int cmd_lock(const Args& args) {
  if (args.positional.empty() || !args.flag("out")) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  // Registry schemes (xor, kgate, cac2, latch, ...) share one build
  // signature; "cl-str" falls through to the option-rich Cute-Lock-Str path
  // below, which remains the default.
  const std::string scheme = args.get("scheme", "cl-str");
  if (scheme != "cl-str") {
    const lock::RegisteredLock* entry = lock::find_lock(scheme);
    if (entry == nullptr) {
      std::fprintf(stderr, "cutelock lock: unknown --scheme %s (have: %s)\n",
                   scheme.c_str(), lock::lock_names().c_str());
      return 64;
    }
    util::Rng rng(args.get_u64("seed", 1));
    const lock::LockResult locked = entry->build(nl, rng);
    netlist::write_bench_file(args.get("out", ""), locked.locked);
    std::printf("locked %s with %s -> %s\ncorrect key: %s\n", nl.name().c_str(),
                entry->name.c_str(), args.get("out", "").c_str(),
                sim::bits_to_string(locked.correct_key).c_str());
    if (!locked.decoy_key_bits.empty()) {
      std::printf("decoy key bits (any value passes):");
      for (const std::size_t pos : locked.decoy_key_bits) {
        std::printf(" %zu", pos);
      }
      std::printf("\n");
    }
    return 0;
  }
  core::StrOptions options;
  options.num_keys = args.get_u64("k", 4);
  options.key_bits = args.get_u64("ki", 4);
  options.locked_ffs = args.get_u64("ffs", 1);
  options.seed = args.get_u64("seed", 1);
  options.single_key_reduction = args.flag("single-key");
  if (args.flag("keys")) {
    for (const std::string& v : util::split(args.get("keys", ""), ",")) {
      options.explicit_keys.push_back(std::stoull(v));
    }
  }
  const lock::LockResult locked = core::cute_lock_str(nl, options);
  netlist::write_bench_file(args.get("out", ""), locked.locked);
  std::printf("locked %s -> %s\nkey schedule (cycle t expects K[t %% %zu]):",
              nl.name().c_str(), args.get("out", "").c_str(),
              locked.key_schedule.size());
  for (const auto& kv : locked.key_schedule) {
    std::printf(" %llu", static_cast<unsigned long long>(sim::bits_to_u64(kv)));
  }
  std::printf("\n");
  return 0;
}

int cmd_attack(const Args& args) {
  if (args.positional.empty() || !args.flag("oracle")) return usage();
  maybe_load_bank_file();
  const auto locked = netlist::read_bench_file(args.positional[0]);
  const auto original = netlist::read_bench_file(args.get("oracle", ""));
  // Reject malformed submissions before any solver runs: a keyed oracle or a
  // mismatched interface would otherwise surface as a confusing attack
  // verdict (or an exception) minutes into the budget.
  const analysis::LintReport lint_rep =
      analysis::lint_attack_inputs(locked, original);
  if (!lint_rep.ok()) {
    std::fprintf(stderr, "cutelock attack: rejected by netlist lint:\n%s",
                 analysis::format_diagnostics(lint_rep).c_str());
    return 65;
  }
  attack::SequentialOracle oracle(original);
  attack::AttackBudget budget;
  budget.time_limit_s = static_cast<double>(args.get_u64("seconds", 10));
  budget.sat_workers = util::sat_portfolio_from_env();
  budget.sat_preprocess = util::sat_preprocess_from_env();

  const std::string mode = args.get("attack", "bmc");
  attack::AttackResult result;
  if (mode == "bmc") result = attack::bmc_attack(locked, oracle, budget);
  else if (mode == "kc2") result = attack::kc2_attack(locked, oracle, budget);
  else if (mode == "rane") result = attack::rane_attack(locked, oracle, budget);
  else if (mode == "sat" || mode == "appsat" || mode == "double-dip") {
    // Scan-access threat model: full scan-chain access turns both circuits
    // combinational, then the classic HOST'15 loop (or a descendant) runs.
    const auto locked_scan = netlist::scan_expose(locked);
    const auto original_scan = netlist::scan_expose(original);
    if (locked_scan.inputs().size() != original_scan.inputs().size() ||
        locked_scan.outputs().size() != original_scan.outputs().size()) {
      std::fprintf(stderr,
                   "cutelock: scan interfaces differ (%zu vs %zu inputs, "
                   "%zu vs %zu outputs): the lock adds state elements, so "
                   "the scan-model attacks do not apply; use bmc/kc2/rane "
                   "instead\n",
                   locked_scan.inputs().size(), original_scan.inputs().size(),
                   locked_scan.outputs().size(),
                   original_scan.outputs().size());
      return 65;
    }
    attack::SequentialOracle scan_oracle(original_scan);
    attack::SatAttackOptions o;
    o.budget = budget;
    if (mode == "appsat") o.mode = attack::SatAttackOptions::Mode::AppSat;
    if (mode == "double-dip") o.mode = attack::SatAttackOptions::Mode::DoubleDip;
    result = attack::sat_attack(locked_scan, scan_oracle, o);
  }
  else if (mode == "bbo") {
    attack::BboOptions o;
    o.budget = budget;
    result = attack::bbo_attack(locked, oracle, o);
  } else if (mode == "fall") {
    attack::FallOptions o;
    o.budget = budget;
    const attack::FallResult fr = attack::fall_attack(locked, oracle, o);
    std::printf("FALL: %zu candidates, %zu confirmed\n", fr.candidates,
                fr.confirmed);
    result = fr.result;
  } else if (mode == "scope") {
    attack::ScopeOptions o;
    o.budget = budget;
    const attack::ScopeResult sr = attack::scope_attack(locked, &oracle, o);
    std::printf("SCOPE: %s\n", sr.report.summary().c_str());
    result = sr.result;
  } else if (mode == "dana") {
    const attack::DanaResult dr = attack::dana_attack(locked);
    std::printf("DANA: %zu clusters over %zu FFs in %zu rounds (%.3fs)\n",
                dr.clusters.size(), locked.dffs().size(), dr.rounds, dr.seconds);
    return 0;
  } else if (mode == "periodic") {
    attack::PeriodicAttackOptions o;
    o.budget = budget;
    o.max_period = args.get_u64("max-period", 8);
    const attack::PeriodicAttackResult pr =
        attack::periodic_key_attack(locked, oracle, o);
    std::printf("periodic attack: %s", pr.result.summary().c_str());
    if (pr.recovered_period != 0) {
      std::printf(" period=%zu schedule:", pr.recovered_period);
      for (const auto& kv : pr.recovered_schedule) {
        std::printf(" %llu",
                    static_cast<unsigned long long>(sim::bits_to_u64(kv)));
      }
    }
    std::printf("\n");
    maybe_save_bank_file();
    return pr.result.outcome == attack::Outcome::Equal ? 2 : 0;
  } else {
    return usage();
  }
  std::printf("%s attack: %s (%.3fs)\n", mode.c_str(), result.summary().c_str(),
              result.seconds);
  if (result.replayed_queries != 0 || result.preloaded_facts != 0) {
    std::printf("oracle queries: %llu fresh, %llu replayed from the "
                "observation bank, %llu preloaded facts\n",
                static_cast<unsigned long long>(result.fresh_queries),
                static_cast<unsigned long long>(result.replayed_queries),
                static_cast<unsigned long long>(result.preloaded_facts));
  }
  maybe_save_bank_file();

  // Acceptance-criterion mode (--accept exact|any|approx): the exit code
  // reflects the chosen criterion's verdict on the reported key instead of
  // the attack's own Equal/not-Equal (which bakes in the one-key premise).
  const std::string accept_name = args.get("accept", "");
  if (!accept_name.empty()) {
    const auto criterion = attack::parse_criterion(accept_name);
    if (!criterion) {
      std::fprintf(stderr,
                   "cutelock attack: --accept must be exact, any or approx\n");
      return 64;
    }
    if (result.key.empty()) {
      std::printf("acceptance (%s): rejected (no key reported)\n",
                  accept_name.c_str());
      return 0;
    }
    attack::AcceptOptions accept_options;
    accept_options.criterion = *criterion;
    accept_options.epsilon = std::stod(args.get("epsilon", "0"));
    sim::BitVec truth;
    const sim::BitVec* truth_ptr = nullptr;
    if (args.flag("true-key")) {
      for (const char c : args.get("true-key", "")) {
        truth.push_back(c == '1' ? 1 : 0);
      }
      truth_ptr = &truth;
    }
    const attack::AcceptReport report =
        attack::verify_any_key(locked, result.key, original, truth_ptr,
                               accept_options);
    attack::apply_acceptance(report, &result);
    std::printf("acceptance (%s): %s", accept_name.c_str(),
                report.accepted ? "accepted" : "rejected");
    if (report.key_exact >= 0) {
      std::printf(" key_exact=%s", report.key_exact ? "yes" : "no");
    }
    if (report.any_key_pass >= 0) {
      std::printf(" any_key_pass=%s", report.any_key_pass ? "yes" : "no");
    }
    if (report.corruption_rate >= 0) {
      std::printf(" corruption_rate=%.4f", report.corruption_rate);
    }
    if (!report.detail.empty()) std::printf(" (%s)", report.detail.c_str());
    std::printf("\n");
    return report.accepted ? 2 : 0;
  }
  return result.outcome == attack::Outcome::Equal ? 2 : 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  const auto st = nl.stats();
  std::printf("%s: %zu inputs, %zu key inputs, %zu outputs, %zu FFs, "
              "%zu gates\n",
              nl.name().c_str(), st.inputs, st.key_inputs, st.outputs, st.dffs,
              st.gates);

  const analysis::LintReport lint_rep = analysis::lint(nl);
  if (lint_rep.diagnostics.empty()) {
    std::printf("lint: clean\n");
  } else {
    std::printf("lint: %zu error(s), %zu warning(s), %zu info(s)\n%s",
                lint_rep.errors(), lint_rep.warnings(), lint_rep.infos(),
                analysis::format_diagnostics(lint_rep).c_str());
  }

  if (!nl.key_inputs().empty()) {
    analysis::InferOptions options;
    options.profile_unateness = !args.flag("no-unate");
    options.time_limit_s = static_cast<double>(args.get_u64("seconds", 10));
    const analysis::KeyHintReport report =
        analysis::infer_key_hints(nl, options);
    std::printf("\nkey inference (%s):\n", report.summary().c_str());
    for (std::size_t i = 0; i < report.bits.size(); ++i) {
      const analysis::BitHint& h = report.bits[i];
      std::printf("  bit %3zu %-16s role=%-10s verdict=%c conf=%.2f "
                  "unate=%s\n",
                  i, h.name.c_str(), analysis::role_name(h.role),
                  analysis::verdict_char(h.verdict), h.confidence,
                  analysis::unate_name(h.unate));
    }
  }
  return lint_rep.ok() ? 0 : 1;
}

int cmd_overhead(const Args& args) {
  if (args.positional.empty()) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  const tech::OverheadReport r = tech::analyze_overhead(nl);
  std::printf("%s: power %.2f uW, area %.1f um2, %zu cells, %zu IOs\n",
              nl.name().c_str(), r.power_w * 1e6, r.area_um2, r.cells, r.ios);
  if (args.flag("baseline")) {
    const auto base_nl = netlist::read_bench_file(args.get("baseline", ""));
    const tech::OverheadReport base = tech::analyze_overhead(base_nl);
    std::printf("overhead vs %s: power %+.1f%%, area %+.1f%%, cells %+.1f%%, "
                "IOs %+.1f%%\n",
                base_nl.name().c_str(), r.power_overhead_pct(base),
                r.area_overhead_pct(base), r.cells_overhead_pct(base),
                r.ios_overhead_pct(base));
  }
  return 0;
}

int cmd_gen(const Args& args) {
  if (args.positional.empty() || !args.flag("out")) return usage();
  const auto circuit = benchgen::make_circuit(args.positional[0]);
  netlist::write_bench_file(args.get("out", ""), circuit.netlist);
  const auto st = circuit.netlist.stats();
  std::printf("wrote %s: %zu inputs, %zu outputs, %zu FFs, %zu gates\n",
              args.get("out", "").c_str(), st.inputs, st.outputs, st.dffs,
              st.gates);
  return 0;
}

int cmd_serve(const Args& args) {
  service::ServerOptions options;
  options.unix_socket = args.get("socket", "");
  options.tcp_port = static_cast<int>(args.get_u64("port", 0));
  options.workers = args.get_u64("workers", 0);
  options.obs_bank_path = args.get("bank", "");
  service::Server server(std::move(options));
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "cutelock serve: %s\n", error.c_str());
    return 69;
  }
  if (!server.socket_path().empty()) {
    std::printf("cutelock serve: listening on %s\n", server.socket_path().c_str());
  } else {
    std::printf("cutelock serve: listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);  // scripts poll this line for the bound address
  server.serve_forever();
  std::printf("cutelock serve: shut down\n");
  return 0;
}

/// 0 = connected, 64 = neither --socket nor --port given (usage), 69 =
/// connect failed (transport).
int connect_client(const Args& args, service::Client* client) {
  std::string error;
  const std::string socket_path = args.get("socket", "");
  if (!socket_path.empty()) {
    if (client->connect_unix(socket_path, &error)) return 0;
  } else {
    const int port = static_cast<int>(args.get_u64("port", 0));
    if (port == 0) {
      std::fprintf(stderr,
                   "cutelock submit: need --socket <path> or --port <port>\n");
      return 64;
    }
    if (client->connect_tcp(port, &error)) return 0;
  }
  std::fprintf(stderr, "cutelock submit: %s\n", error.c_str());
  return 69;
}

int cmd_submit(const Args& args) {
  service::Client client;
  if (const int rc = connect_client(args, &client); rc != 0) return rc;
  std::string error;

  // Raw-op mode: one protocol request, response echoed as JSON.
  const std::string op = args.get("op", "");
  if (!op.empty()) {
    service::Json request = service::Json::object();
    request.set("op", service::Json::string(op));
    if (args.flag("id")) {
      request.set("id", service::Json::number(args.get_u64("id", 0)));
    }
    service::Json response;
    if (!client.request(request, &response, &error)) {
      std::fprintf(stderr, "cutelock submit: %s\n", error.c_str());
      return 69;
    }
    std::printf("%s\n", response.dump().c_str());
    return response.bool_or("ok", false) ? 0 : 65;
  }

  // Attack mode: submit, wait, print like `cutelock attack` (same output
  // shape and exit codes, so scripts can diff the two).
  if (args.positional.empty() || !args.flag("oracle")) return usage();
  std::string locked_text, oracle_text;
  if (!read_text_file(args.positional[0], &locked_text)) {
    std::fprintf(stderr, "cutelock submit: cannot read %s\n",
                 args.positional[0].c_str());
    return 66;
  }
  if (!read_text_file(args.get("oracle", ""), &oracle_text)) {
    std::fprintf(stderr, "cutelock submit: cannot read %s\n",
                 args.get("oracle", "").c_str());
    return 66;
  }
  service::Json request = service::Json::object();
  request.set("op", service::Json::string("submit"));
  request.set("job", service::Json::string("attack"));
  request.set("locked", service::Json::string(locked_text));
  request.set("oracle", service::Json::string(oracle_text));
  request.set("attack", service::Json::string(args.get("attack", "bmc")));
  request.set("seconds", service::Json::number(
                             static_cast<double>(args.get_u64("seconds", 10))));
  if (args.flag("max-iterations")) {
    request.set("max_iterations",
                service::Json::number(args.get_u64("max-iterations", 0)));
  }
  if (args.flag("max-period")) {
    request.set("max_period",
                service::Json::number(args.get_u64("max-period", 8)));
  }
  if (args.flag("accept")) {
    request.set("accept", service::Json::string(args.get("accept", "")));
    if (args.flag("epsilon")) {
      request.set("epsilon",
                  service::Json::number(std::stod(args.get("epsilon", "0"))));
    }
    if (args.flag("true-key")) {
      request.set("true_key",
                  service::Json::string(args.get("true-key", "")));
    }
  }
  service::Json submitted;
  if (!client.request(request, &submitted, &error)) {
    std::fprintf(stderr, "cutelock submit: %s\n", error.c_str());
    return 69;
  }
  if (!submitted.bool_or("ok", false)) {
    std::fprintf(stderr, "cutelock submit: %s\n",
                 submitted.str_or("error", "submit rejected").c_str());
    return 65;
  }
  service::Json wait_request = service::Json::object();
  wait_request.set("op", service::Json::string("wait"));
  wait_request.set("id", service::Json::number(submitted.u64_or("id", 0)));
  service::Json reply;
  if (!client.request(wait_request, &reply, &error)) {
    std::fprintf(stderr, "cutelock submit: %s\n", error.c_str());
    return 69;
  }
  const std::string status = reply.str_or("status", "?");
  if (status != "done") {
    std::fprintf(stderr, "cutelock submit: job %s: %s\n", status.c_str(),
                 reply.str_or("error", "no result").c_str());
    return 65;
  }
  const service::Json* result = reply.find("result");
  if (result == nullptr) {
    std::fprintf(stderr, "cutelock submit: malformed response (no result)\n");
    return 65;
  }
  std::printf("%s attack: %s (%.3fs)\n", result->str_or("attack", "?").c_str(),
              result->str_or("summary", "?").c_str(),
              result->num_or("seconds", 0.0));
  const std::uint64_t replayed = result->u64_or("replayed_queries", 0);
  const std::uint64_t preloaded = result->u64_or("preloaded_facts", 0);
  if (replayed != 0 || preloaded != 0) {
    std::printf("oracle queries: %llu fresh, %llu replayed from the "
                "observation bank, %llu preloaded facts\n",
                static_cast<unsigned long long>(result->u64_or("fresh_queries", 0)),
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(preloaded));
  }
  if (!result->str_or("accept", "").empty()) {
    // Mirror `cutelock attack --accept`: print the verdict and let the exit
    // code follow the acceptance criterion instead of the outcome label.
    const bool accepted = result->bool_or("accepted", false);
    std::printf("acceptance (%s): %s",
                result->str_or("accept", "?").c_str(),
                accepted ? "accepted" : "rejected");
    if (result->find("key_exact") != nullptr) {
      std::printf(" key_exact=%s",
                  result->bool_or("key_exact", false) ? "yes" : "no");
    }
    if (result->find("any_key_pass") != nullptr) {
      std::printf(" any_key_pass=%s",
                  result->bool_or("any_key_pass", false) ? "yes" : "no");
    }
    if (result->find("corruption_rate") != nullptr) {
      std::printf(" corruption_rate=%.4f",
                  result->num_or("corruption_rate", -1.0));
    }
    std::printf("\n");
    return accepted ? 2 : 0;
  }
  return result->str_or("outcome", "") == "Equal" ? 2 : 0;
}

int cmd_vcd(const Args& args) {
  if (args.positional.empty() || !args.flag("out")) return usage();
  const auto nl = netlist::read_bench_file(args.positional[0]);
  util::Rng rng(args.get_u64("seed", 1));
  const std::size_t cycles = args.get_u64("cycles", 32);
  const auto stim = sim::random_stimulus(rng, cycles, nl.inputs().size());
  std::vector<sim::BitVec> keys;
  if (!nl.key_inputs().empty()) {
    keys.push_back(sim::random_bits(rng, nl.key_inputs().size()));
  }
  std::ofstream out(args.get("out", ""));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", args.get("out", "").c_str());
    return 66;
  }
  sim::write_vcd(out, nl, stim, keys);
  std::printf("wrote %zu cycles to %s\n", cycles, args.get("out", "").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse(argc, argv);
  try {
    if (command == "info") return cmd_info(args);
    if (command == "lock") return cmd_lock(args);
    if (command == "attack") return cmd_attack(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "overhead") return cmd_overhead(args);
    if (command == "vcd") return cmd_vcd(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "submit") return cmd_submit(args);
    if (command == "gen") return cmd_gen(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cutelock: %s\n", e.what());
    return 65;
  }
  return usage();
}
