#!/usr/bin/env bash
# Verify that every relative markdown link in the repo's *.md files resolves
# to an existing file or directory. External links (http/https/mailto) and
# pure in-page anchors (#...) are skipped; "path#anchor" checks the path
# part. Run from anywhere: paths are resolved against the repo root.
set -euo pipefail

root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
failures=0
checked=0

# All tracked-ish markdown files, excluding build trees.
while IFS= read -r md; do
  dir="$(dirname "$md")"
  # Extract the (target) part of every [text](target) link. Inline code and
  # bare URLs are not matched; multi-line links are rare enough to ignore.
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
      '#'*) continue ;;                       # in-page anchor
    esac
    path="${target%%#*}"                      # strip a trailing #anchor
    path="${path%% *}"                        # strip '"title"' suffixes
    [ -n "$path" ] || continue
    if [[ "$path" = /* ]]; then
      resolved="$root$path"                   # repo-absolute
    else
      resolved="$dir/$path"
    fi
    checked=$((checked + 1))
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $md -> $target" >&2
      failures=$((failures + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(find "$root" -name '*.md' -not -path '*/build*/*' -not -path '*/.git/*')

echo "checked $checked relative links"
if [ "$failures" -gt 0 ]; then
  echo "$failures broken link(s)" >&2
  exit 1
fi
