#!/usr/bin/env python3
"""Diff a fresh bench_micro_perf SAT-axis JSON against the checked-in baseline.

Usage: check_bench_baseline.py <baseline.json> <fresh.json>

Hard failures (exit 1):
  - a baseline benchmark missing from the fresh run
  - any drift in the deterministic trajectory counters (conflicts, restarts,
    learnts_deleted, minimized_lits, vars_eliminated, clauses_subsumed,
    vivified_lits) — the solver is seeded and single-threaded in these
    benchmarks, so these must match bit-for-bit across machines

Warnings only (exit 0):
  - real_time regression beyond 15% (throughput depends on the machine)

BM_SolverPortfolioRace is excluded: a race winner depends on scheduling.
"""

import json
import sys

TRAJECTORY_COUNTERS = [
    "conflicts",
    "restarts",
    "learnts_deleted",
    "minimized_lits",
    "vars_eliminated",
    "clauses_subsumed",
    "vivified_lits",
    # Sim-axis determinism: circuit size and lane width of the
    # BM_CompiledSimIsa rows are fixed properties of the benchmark, so any
    # drift means the harness changed shape, not the machine.
    "sim_gates",
    "sim_lane_words",
]
EXCLUDED_PREFIXES = ("BM_SolverPortfolioRace",)
TIME_REGRESSION_FACTOR = 1.15
REL_TOL = 1e-9


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") != "iteration":
            continue
        if name.startswith(EXCLUDED_PREFIXES):
            continue
        out[name] = b
    return out


def drifted(a, b):
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) > REL_TOL * scale


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    baseline = load_benchmarks(sys.argv[1])
    fresh = load_benchmarks(sys.argv[2])

    failures = []
    warnings = []
    for name, base in sorted(baseline.items()):
        cur = fresh.get(name)
        if cur is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        for counter in TRAJECTORY_COUNTERS:
            if counter not in base:
                continue
            if counter not in cur:
                failures.append(f"{name}: counter {counter} missing")
                continue
            if drifted(base[counter], cur[counter]):
                failures.append(
                    f"{name}: {counter} drifted "
                    f"(baseline {base[counter]:.6g}, fresh {cur[counter]:.6g})"
                )
        bt, ct = base.get("real_time"), cur.get("real_time")
        if bt is not None and ct is not None and ct > bt * TIME_REGRESSION_FACTOR:
            warnings.append(
                f"{name}: real_time {ct:.0f}ns vs baseline {bt:.0f}ns "
                f"(> {TIME_REGRESSION_FACTOR:.2f}x; warning only)"
            )

    for w in warnings:
        print(f"WARNING: {w}", file=sys.stderr)
    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}", file=sys.stderr)
        return 1
    print(
        f"baseline diff OK: {len(baseline)} benchmarks, "
        f"{len(warnings)} throughput warning(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
