// Parallel bench orchestration.
//
// Every table/ablation/fig harness registers independent
// (suite x circuit x config x attack) jobs on a Runner. Jobs are executed on
// a util::ThreadPool sized by CUTELOCK_JOBS (default hardware_concurrency);
// each job builds its own circuit/lock/oracle/solver so nothing is shared
// between workers, and results are collected in registration order, so the
// rendered table is identical to a serial run. After run(), the Runner emits
// a machine-readable BENCH_<harness>.json baseline (suite, circuit, k/ki,
// attack, outcome, seconds, iterations, threads) for perf trajectories.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "attack/result.hpp"

namespace cl::bench {

/// Identity of one job, mirrored into the JSON baseline.
struct JobMeta {
  std::string suite;    // "ISCAS'89" | "ITC'99" | "synthezza" | "-"
  std::string circuit;  // circuit / FSM name, or a free-form config label
  std::string attack;   // "BBO" | "INT" | "KC2" | "RANE" | "DANA" | ...
  int k = -1;           // lock period; -1 when not applicable
  int ki = -1;          // key bits per slot; -1 when not applicable
};

/// What a job reports back for the JSON record. `seconds < 0` means "use the
/// wall time the Runner measured around the job".
struct JobOutcome {
  std::string outcome;
  double seconds = -1.0;
  std::uint64_t iterations = 0;
  /// Oracle-query split for engine-based attacks (see attack::AttackResult):
  /// ObservationBank replays vs genuine oracle queries, plus banked facts
  /// installed as startup constraints. Zero outside attacks.
  std::uint64_t replayed_queries = 0;
  std::uint64_t fresh_queries = 0;
  std::uint64_t preloaded_facts = 0;
  /// Wide-lane oracle traffic (attack::AttackResult::batched_queries /
  /// oracle_batches). Emitted into the JSON record only when the attack
  /// actually issued batches, so pre-batching baselines stay byte-identical.
  std::uint64_t batched_queries = 0;
  std::uint64_t oracle_batches = 0;
  /// Structural key hints seeded into the attack (CUTELOCK_KEY_HINTS=1 or
  /// attack::scope_attack) and, once a key verified, the fraction of them
  /// that were right. Emitted into the JSON record only when hints were
  /// actually installed, so hint-free (and stable-mode) baselines are
  /// byte-identical to pre-hint ones.
  std::uint64_t hinted_bits = 0;
  double hint_accuracy = -1.0;
  /// Acceptance-criterion facts (attack/accept.hpp), -1 = not evaluated.
  /// Emitted into the JSON record only when an acceptance layer actually
  /// judged the key, so pre-acceptance baselines stay byte-identical.
  int key_exact = -1;
  int any_key_pass = -1;
  double corruption_rate = -1.0;
};

class Runner {
 public:
  /// `harness` names the JSON baseline: BENCH_<harness>.json.
  explicit Runner(std::string harness);

  /// Register a job. Jobs must be self-contained: they run concurrently and
  /// may only write state no other job touches (typically a slot owned by
  /// the registering row). Returns the job id (== registration index).
  std::size_t add(JobMeta meta, std::function<JobOutcome()> fn);

  /// Convenience for the common case: run an attack, store its result into
  /// *slot (owned by the caller, stable until run() returns), and derive the
  /// JSON record from it.
  std::size_t add_attack(JobMeta meta, attack::AttackResult* slot,
                         std::function<attack::AttackResult()> fn);

  /// Execute every registered job (thread pool when threads() > 1, inline
  /// otherwise), then write the JSON baseline. Rethrows the first exception
  /// a job raised. Call once.
  void run();

  std::size_t jobs() const { return jobs_.size(); }
  std::size_t threads() const { return threads_; }

  /// Override the CUTELOCK_JOBS-derived worker count (tests).
  void set_threads(std::size_t n);

  /// JSON record of a finished job, in registration order.
  const JobOutcome& outcome(std::size_t id) const;

  /// The serialized baseline document.
  std::string json() const;

  /// Where run() writes the baseline: $CUTELOCK_BENCH_JSON_DIR/BENCH_<harness>.json
  /// (directory defaults to the working directory). Empty when disabled via
  /// CUTELOCK_BENCH_JSON=0.
  std::string json_path() const;

 private:
  struct Job {
    JobMeta meta;
    std::function<JobOutcome()> fn;
    JobOutcome out;
  };

  void execute(Job& job);
  void write_json() const;

  std::string harness_;
  std::vector<Job> jobs_;
  std::size_t threads_;
  std::size_t effective_threads_ = 1;  // workers run() actually used
  bool ran_ = false;
};

}  // namespace cl::bench
