// Table III — Cute-Lock-Beh security against logic attacks.
//
// Every Synthezza-suite FSM is locked with Cute-Lock-Beh using the paper's
// per-circuit (k, ki), synthesized to a gate-level netlist, and attacked
// with the oracle-guided suite (BBO / INT / KC2 — the NEOS modes). The
// expected shape: no attack recovers a working key (CNS / x..x / N/A only).
//
// One Runner job per (FSM x attack); every job synthesizes its own lock and
// oracle (deterministic), so results are independent of CUTELOCK_JOBS.
#include <cstdio>
#include <vector>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "fsm/synth.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Row {
  benchgen::FsmSpec spec;
  attack::AttackResult bbo, bmc, kc2;
};

struct LockedPair {
  netlist::Netlist locked;
  netlist::Netlist original;
};

LockedPair synthesize_pair(const benchgen::FsmSpec& spec) {
  const fsm::Stg stg = benchgen::make_fsm(spec);
  core::BehOptions options;
  options.num_keys = spec.lock_keys;
  options.key_bits = spec.lock_bits;
  options.seed = 0xbe4 + spec.states;
  const core::BehLock lock(stg, options);
  return LockedPair{
      lock.synthesize(fsm::SynthStyle::DirectTransitions, spec.name + "_l")
          .locked,
      fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, spec.name)};
}

}  // namespace

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(2.0);
  std::printf("TABLE III: Cute-Lock-Beh vs oracle-guided attacks "
              "(per-attack budget %.1fs)\n\n", seconds);

  std::vector<Row> rows;
  for (const benchgen::FsmSpec& spec :
       bench::selected_fsms(benchgen::synthezza_specs())) {
    rows.push_back(Row{spec, {}, {}, {}});
  }

  bench::Runner runner("table3_beh_logic_attacks");
  for (Row& row : rows) {
    const benchgen::FsmSpec spec = row.spec;
    const attack::AttackBudget budget = bench::table_budget(seconds);
    const auto meta = [&](const char* attack_name) {
      return bench::JobMeta{"synthezza", spec.name, attack_name,
                            static_cast<int>(spec.lock_keys),
                            static_cast<int>(spec.lock_bits)};
    };
    runner.add_attack(meta("BBO"), &row.bbo, [spec, budget]() {
      const LockedPair pair = synthesize_pair(spec);
      attack::SequentialOracle oracle(pair.original);
      attack::BboOptions bbo_options;
      bbo_options.budget = budget;
      // The Runner already saturates cores across table cells; intra-attack
      // screening threads would only multiply contention here.
      bbo_options.jobs = 1;
      return attack::bbo_attack(pair.locked, oracle, bbo_options);
    });
    runner.add_attack(meta("INT"), &row.bmc, [spec, budget]() {
      const LockedPair pair = synthesize_pair(spec);
      attack::SequentialOracle oracle(pair.original);
      return attack::bmc_attack(pair.locked, oracle, budget);
    });
    runner.add_attack(meta("KC2"), &row.kc2, [spec, budget]() {
      const LockedPair pair = synthesize_pair(spec);
      attack::SequentialOracle oracle(pair.original);
      return attack::kc2_attack(pair.locked, oracle, budget);
    });
  }
  runner.run();

  util::Table table({"tier", "circuit", "k", "ki", "BBO", "INT", "KC2"});
  std::size_t attacks_run = 0, defenses_held = 0;
  for (const Row& row : rows) {
    for (const auto* r : {&row.bbo, &row.bmc, &row.kc2}) {
      ++attacks_run;
      if (attack::defense_held(r->outcome)) ++defenses_held;
    }
    table.add_row({row.spec.tier, row.spec.name,
                   std::to_string(row.spec.lock_keys),
                   std::to_string(row.spec.lock_bits),
                   bench::attack_cell(row.bbo), bench::attack_cell(row.bmc),
                   bench::attack_cell(row.kc2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("defense held in %zu / %zu attack runs "
              "(paper: all; Equal would mean a recovered key)\n",
              defenses_held, attacks_run);
  return defenses_held == attacks_run ? 0 : 1;
}
