// Table III — Cute-Lock-Beh security against logic attacks.
//
// Every Synthezza-suite FSM is locked with Cute-Lock-Beh using the paper's
// per-circuit (k, ki), synthesized to a gate-level netlist, and attacked
// with the oracle-guided suite (BBO / INT / KC2 — the NEOS modes). The
// expected shape: no attack recovers a working key (CNS / x..x / N/A only).
#include <cstdio>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(2.0);
  std::printf("TABLE III: Cute-Lock-Beh vs oracle-guided attacks "
              "(per-attack budget %.1fs)\n\n", seconds);

  util::Table table({"tier", "circuit", "k", "ki", "BBO", "INT", "KC2"});
  std::size_t attacks_run = 0, defenses_held = 0;
  for (const benchgen::FsmSpec& spec : benchgen::synthezza_specs()) {
    if (bench::small_run() && std::string(spec.tier) != "small") continue;
    const fsm::Stg stg = benchgen::make_fsm(spec);
    core::BehOptions options;
    options.num_keys = spec.lock_keys;
    options.key_bits = spec.lock_bits;
    options.seed = 0xbe4 + spec.states;
    const core::BehLock lock(stg, options);
    const auto locked =
        lock.synthesize(fsm::SynthStyle::DirectTransitions, spec.name + "_l");
    const auto original =
        fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, spec.name);
    attack::SequentialOracle oracle(original);

    const attack::AttackBudget budget = bench::table_budget(seconds);
    attack::BboOptions bbo_options;
    bbo_options.budget = budget;
    const attack::AttackResult bbo =
        attack::bbo_attack(locked.locked, oracle, bbo_options);
    const attack::AttackResult bmc =
        attack::bmc_attack(locked.locked, oracle, budget);
    const attack::AttackResult kc2 =
        attack::kc2_attack(locked.locked, oracle, budget);
    for (const auto* r : {&bbo, &bmc, &kc2}) {
      ++attacks_run;
      if (attack::defense_held(r->outcome)) ++defenses_held;
    }
    table.add_row({spec.tier, spec.name, std::to_string(spec.lock_keys),
                   std::to_string(spec.lock_bits), bench::attack_cell(bbo),
                   bench::attack_cell(bmc), bench::attack_cell(kc2)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("defense held in %zu / %zu attack runs "
              "(paper: all; Equal would mean a recovered key)\n",
              defenses_held, attacks_run);
  return defenses_held == attacks_run ? 0 : 1;
}
