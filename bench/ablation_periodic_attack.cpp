// Ablation — the adaptive periodic-key attacker.
//
// The paper's evaluation (and every published tool) models a static key;
// Tables III/IV show those attacks dead-end. This ablation quantifies the
// defense margin against an attacker who *knows the construction* and
// models key(t) = K[t mod p], sweeping hypothesized periods: the search
// space grows from 2^ki to 2^(ki*k), and cost rises steeply with k.
#include <cstdio>

#include "attack/periodic_attack.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/s27.hpp"
#include "core/cute_lock_str.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  std::printf("ABLATION: adaptive periodic-key attacker vs Cute-Lock-Str "
              "(s27)\n\n");

  const auto s27 = benchgen::make_s27();
  attack::SequentialOracle oracle(s27);

  util::Table table({"k", "ki", "static BMC", "periodic attack", "period found",
                     "oracle queries"});
  for (const std::size_t k : {2u, 4u, 8u}) {
    core::StrOptions options;
    options.num_keys = k;
    options.key_bits = 2;
    options.locked_ffs = 2;
    options.seed = 0xab3c + k;
    const auto locked = core::cute_lock_str(s27, options);

    const attack::AttackBudget budget =
        bench::table_budget(bench::attack_seconds(20.0));
    const attack::AttackResult static_bmc =
        attack::bmc_attack(locked.locked, oracle, budget);

    attack::PeriodicAttackOptions popt;
    popt.max_period = k;
    popt.budget = budget;
    const attack::PeriodicAttackResult adaptive =
        attack::periodic_key_attack(locked.locked, oracle, popt);

    table.add_row({std::to_string(k), "2", bench::attack_cell(static_bmc),
                   bench::attack_cell(adaptive.result),
                   adaptive.recovered_period
                       ? std::to_string(adaptive.recovered_period)
                       : "-",
                   std::to_string(adaptive.result.iterations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: static-key attacks dead-end (the paper's tables); an\n"
              "attacker modelling the time base can recover the schedule, at a\n"
              "cost that grows with the period — the margin k buys.\n");
  return 0;
}
