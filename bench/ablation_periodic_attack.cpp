// Ablation — the adaptive periodic-key attacker.
//
// The paper's evaluation (and every published tool) models a static key;
// Tables III/IV show those attacks dead-end. This ablation quantifies the
// defense margin against an attacker who *knows the construction* and
// models key(t) = K[t mod p], sweeping hypothesized periods: the search
// space grows from 2^ki to 2^(ki*k), and cost rises steeply with k.
//
// Two Runner jobs per k (static BMC, adaptive periodic), each rebuilding
// s27, lock and oracle.
#include <cstdio>
#include <vector>

#include "attack/periodic_attack.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/s27.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Row {
  std::size_t k;
  attack::AttackResult static_bmc;
  attack::PeriodicAttackResult adaptive;
};

lock::LockResult lock_s27(const netlist::Netlist& s27, std::size_t k) {
  core::StrOptions options;
  options.num_keys = k;
  options.key_bits = 2;
  options.locked_ffs = 2;
  options.seed = 0xab3c + k;
  return core::cute_lock_str(s27, options);
}

}  // namespace

int main() {
  using namespace cl;
  std::printf("ABLATION: adaptive periodic-key attacker vs Cute-Lock-Str "
              "(s27)\n\n");
  const double seconds = bench::attack_seconds(20.0);

  std::vector<Row> rows;
  for (const std::size_t k : {2u, 4u, 8u}) rows.push_back(Row{k, {}, {}});

  bench::Runner runner("ablation_periodic_attack");
  for (Row& row : rows) {
    const std::size_t k = row.k;
    runner.add_attack({"ISCAS'89", "s27", "INT", static_cast<int>(k), 2},
                      &row.static_bmc, [k, seconds]() {
                        const auto s27 = benchgen::make_s27();
                        const auto locked = lock_s27(s27, k);
                        attack::SequentialOracle oracle(s27);
                        return attack::bmc_attack(
                            locked.locked, oracle,
                            bench::table_budget(seconds));
                      });
    runner.add({"ISCAS'89", "s27", "periodic", static_cast<int>(k), 2},
               [&row, k, seconds]() {
                 const auto s27 = benchgen::make_s27();
                 const auto locked = lock_s27(s27, k);
                 attack::SequentialOracle oracle(s27);
                 attack::PeriodicAttackOptions popt;
                 popt.max_period = k;
                 popt.budget = bench::table_budget(seconds);
                 row.adaptive =
                     attack::periodic_key_attack(locked.locked, oracle, popt);
                 return bench::JobOutcome{
                     attack::outcome_label(row.adaptive.result.outcome),
                     row.adaptive.result.seconds,
                     row.adaptive.result.iterations};
               });
  }
  runner.run();

  util::Table table({"k", "ki", "static BMC", "periodic attack", "period found",
                     "oracle queries"});
  for (const Row& row : rows) {
    table.add_row({std::to_string(row.k), "2",
                   bench::attack_cell(row.static_bmc),
                   bench::attack_cell(row.adaptive.result),
                   row.adaptive.recovered_period
                       ? std::to_string(row.adaptive.recovered_period)
                       : "-",
                   std::to_string(row.adaptive.result.iterations)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("reading: static-key attacks dead-end (the paper's tables); an\n"
              "attacker modelling the time base can recover the schedule, at a\n"
              "cost that grows with the period — the margin k buys.\n");
  return 0;
}
