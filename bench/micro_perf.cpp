// Micro-benchmarks (google-benchmark): throughput of the substrates the
// attack tables stand on — the CDCL solver, the bit-parallel simulator,
// locking transforms, synthesis, and technology mapping.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "core/cute_lock_str.hpp"
#include "fsm/synth.hpp"
#include "logic/minimize.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "sim/bit_sim.hpp"
#include "sim/compiled.hpp"
#include "sim/kernels.hpp"
#include "sim/reference_sim.hpp"
#include "tech/mapper.hpp"
#include "util/cpu.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace cl;

// ---- SAT solver axis -------------------------------------------------------
//
// Fixed CNF families; every benchmark exports the sat::Solver::Stats
// counters (conflicts/s, propagations/s, restarts, learnts deleted) into
// BENCH_micro_perf.json so solver PRs have a reference axis next to the
// sim-throughput one. items == conflicts, so items_per_second is the
// conflict throughput and real_time is the time-to-solve trajectory.

/// Accumulator for per-iteration solver stats; report once after the loop
/// (assigning counters inside the loop would clobber their rate flags).
void accumulate_stats(sat::Solver::Stats& into, const sat::Solver::Stats& s) {
  into.conflicts += s.conflicts;
  into.propagations += s.propagations;
  into.restarts += s.restarts;
  into.learnts_deleted += s.learnts_deleted;
  into.minimized_literals += s.minimized_literals;
  into.vars_eliminated += s.vars_eliminated;
  into.clauses_subsumed += s.clauses_subsumed;
  into.vivified_lits += s.vivified_lits;
  into.arena_gc_bytes += s.arena_gc_bytes;
}

void report_solver_stats(benchmark::State& state,
                         const sat::Solver::Stats& total) {
  using benchmark::Counter;
  state.counters["conflicts_per_s"] =
      Counter(static_cast<double>(total.conflicts), Counter::kIsRate);
  state.counters["propagations_per_s"] =
      Counter(static_cast<double>(total.propagations), Counter::kIsRate);
  state.counters["restarts"] =
      Counter(static_cast<double>(total.restarts), Counter::kAvgIterations);
  state.counters["learnts_deleted"] = Counter(
      static_cast<double>(total.learnts_deleted), Counter::kAvgIterations);
  state.counters["minimized_lits"] = Counter(
      static_cast<double>(total.minimized_literals), Counter::kAvgIterations);
  // Deterministic per-iteration trajectory counters: the CI baseline diff
  // hard-fails on any drift in these (tools/check_bench_baseline.py).
  state.counters["conflicts"] =
      Counter(static_cast<double>(total.conflicts), Counter::kAvgIterations);
  state.counters["vars_eliminated"] = Counter(
      static_cast<double>(total.vars_eliminated), Counter::kAvgIterations);
  state.counters["clauses_subsumed"] = Counter(
      static_cast<double>(total.clauses_subsumed), Counter::kAvgIterations);
  state.counters["vivified_lits"] = Counter(
      static_cast<double>(total.vivified_lits), Counter::kAvgIterations);
  state.counters["arena_gc_bytes"] = Counter(
      static_cast<double>(total.arena_gc_bytes), Counter::kAvgIterations);
  state.SetItemsProcessed(static_cast<std::int64_t>(total.conflicts));
}

void add_pigeon_hole(sat::Solver& solver, int n) {
  std::vector<std::vector<sat::Var>> p(
      static_cast<std::size_t>(n),
      std::vector<sat::Var>(static_cast<std::size_t>(n - 1)));
  for (auto& row : p) {
    for (sat::Var& v : row) v = solver.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<sat::Lit> clause;
    for (int j = 0; j < n - 1; ++j) {
      clause.push_back(sat::pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]));
    }
    solver.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        solver.add_binary(
            sat::neg(p[static_cast<std::size_t>(i1)][static_cast<std::size_t>(j)]),
            sat::neg(p[static_cast<std::size_t>(i2)][static_cast<std::size_t>(j)]));
      }
    }
  }
}

std::vector<sat::Var> add_random_3sat(sat::Solver& solver, util::Rng& rng,
                                      int nv, int nc) {
  std::vector<sat::Var> vars;
  for (int i = 0; i < nv; ++i) vars.push_back(solver.new_var());
  for (int c = 0; c < nc; ++c) {
    std::vector<sat::Lit> clause;
    for (int l = 0; l < 3; ++l) {
      const std::size_t v = rng.next_below(static_cast<std::uint64_t>(nv));
      clause.push_back(sat::Lit(vars[v], rng.chance(1, 2)));
    }
    solver.add_clause(clause);
  }
  return vars;
}

void BM_SolverPlantedSat(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  sat::Solver::Stats total;
  for (auto _ : state) {
    util::Rng rng(42);
    sat::Solver solver;
    std::vector<sat::Var> vars;
    std::vector<bool> planted;
    for (int i = 0; i < nv; ++i) {
      vars.push_back(solver.new_var());
      planted.push_back(rng.chance(1, 2));
    }
    for (int c = 0; c < 4 * nv; ++c) {
      std::vector<sat::Lit> clause;
      const std::size_t sat_pos = rng.next_below(3);
      for (std::size_t l = 0; l < 3; ++l) {
        const std::size_t v = rng.next_below(static_cast<std::uint64_t>(nv));
        bool neg = rng.chance(1, 2);
        if (l == sat_pos) neg = !planted[v];
        clause.push_back(sat::Lit(vars[v], neg));
      }
      solver.add_clause(clause);
    }
    benchmark::DoNotOptimize(solver.solve());
    accumulate_stats(total, solver.stats());
  }
  report_solver_stats(state, total);
}
BENCHMARK(BM_SolverPlantedSat)->Arg(200)->Arg(800);

/// Same planted family as BM_SolverPlantedSat/800, but with bounded variable
/// elimination before search and subsumption/vivification at restart
/// boundaries — the preprocessing axis (vars_eliminated, clauses_subsumed,
/// vivified_lits counters come from here).
void BM_SolverPreprocessedPlantedSat(benchmark::State& state) {
  const int nv = static_cast<int>(state.range(0));
  sat::Solver::Stats total;
  for (auto _ : state) {
    util::Rng rng(42);
    sat::Solver solver;
    solver.set_inprocess(true);
    std::vector<sat::Var> vars;
    std::vector<bool> planted;
    for (int i = 0; i < nv; ++i) {
      vars.push_back(solver.new_var());
      planted.push_back(rng.chance(1, 2));
    }
    for (int c = 0; c < 4 * nv; ++c) {
      std::vector<sat::Lit> clause;
      const std::size_t sat_pos = rng.next_below(3);
      for (std::size_t l = 0; l < 3; ++l) {
        const std::size_t v = rng.next_below(static_cast<std::uint64_t>(nv));
        bool neg = rng.chance(1, 2);
        if (l == sat_pos) neg = !planted[v];
        clause.push_back(sat::Lit(vars[v], neg));
      }
      solver.add_clause(clause);
    }
    solver.preprocess();
    benchmark::DoNotOptimize(solver.solve());
    accumulate_stats(total, solver.stats());
  }
  report_solver_stats(state, total);
}
BENCHMARK(BM_SolverPreprocessedPlantedSat)->Arg(800);

void BM_SolverHardUnsatPigeonHole(benchmark::State& state) {
  // PHP(n, n-1): exponentially hard UNSAT for resolution — the
  // learnt-clause machinery (reduction, restarts, minimization) dominates.
  const int n = static_cast<int>(state.range(0));
  sat::Solver::Stats total;
  for (auto _ : state) {
    sat::Solver solver;
    add_pigeon_hole(solver, n);
    benchmark::DoNotOptimize(solver.solve());
    accumulate_stats(total, solver.stats());
  }
  report_solver_stats(state, total);
}
BENCHMARK(BM_SolverHardUnsatPigeonHole)->Arg(8);

void BM_SolverRandom3SatPhaseTransition(benchmark::State& state) {
  // A fixed mix of 6 seeds at the SAT/UNSAT phase transition (ratio 4.26).
  const int nv = static_cast<int>(state.range(0));
  const int nc = static_cast<int>(nv * 4.26);
  sat::Solver::Stats total;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      util::Rng rng(seed);
      sat::Solver solver;
      add_random_3sat(solver, rng, nv, nc);
      benchmark::DoNotOptimize(solver.solve());
      accumulate_stats(total, solver.stats());
    }
  }
  report_solver_stats(state, total);
}
BENCHMARK(BM_SolverRandom3SatPhaseTransition)->Arg(150);

void BM_SolverIncrementalAssumptions(benchmark::State& state) {
  // The KC2/sat_attack pattern: one growing clause database, repeated
  // solve({assumption}) calls with blocking clauses added between calls.
  const int nv = 120;
  sat::Solver::Stats total;
  for (auto _ : state) {
    util::Rng rng(2026);
    sat::Solver solver;
    const auto vars = add_random_3sat(solver, rng, nv, 4 * nv);
    const sat::Lit assumption = sat::pos(vars[0]);
    for (int round = 0; round < 24; ++round) {
      if (solver.solve({assumption}) != sat::Result::Sat) break;
      std::vector<sat::Lit> block;
      for (int b = 1; b <= 12; ++b) {
        const sat::Var v = vars[static_cast<std::size_t>(b)];
        block.push_back(sat::Lit(v, solver.model_value(v)));
      }
      solver.add_clause(block);
    }
    accumulate_stats(total, solver.stats());
  }
  report_solver_stats(state, total);
}
BENCHMARK(BM_SolverIncrementalAssumptions);

void BM_SolverPortfolioRace(benchmark::State& state) {
  // N diversified workers racing the phase-transition mix; first winner
  // cancels the rest. Wall time (UseRealTime) is the honest comparison
  // against the single-solver BM_SolverRandom3SatPhaseTransition above.
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  const int nv = 150;
  const int nc = static_cast<int>(nv * 4.26);
  sat::Solver::Stats total;
  for (auto _ : state) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      util::Rng rng(seed);
      sat::PortfolioSolver solver(workers);
      add_random_3sat(solver, rng, nv, nc);
      benchmark::DoNotOptimize(solver.solve());
      accumulate_stats(total, solver.stats());
    }
  }
  report_solver_stats(state, total);
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_SolverPortfolioRace)->Arg(4)->UseRealTime();

void BM_BitSim64Lanes(benchmark::State& state) {
  const auto circuit = benchgen::make_circuit("b14");
  sim::BitSim simulator(circuit.netlist);
  util::Rng rng(7);
  for (auto _ : state) {
    for (auto i : circuit.netlist.inputs()) simulator.set(i, rng.next_u64());
    simulator.eval();
    simulator.step();
    benchmark::DoNotOptimize(simulator.get(circuit.netlist.outputs()[0]));
  }
  // 64 parallel lanes per eval.
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BitSim64Lanes);

// ---- Simulation throughput axis -------------------------------------------
//
// items == pattern·gates, so items_per_second in BENCH_micro_perf.json is
// the sim-throughput trajectory (divide by 1e6 for million pattern·gates/s).
// ReferenceSim is the frozen pre-compilation evaluator: the compiled
// engine's speedup target (>= 5x single-thread on the largest catalog
// circuit) is measured against BM_ReferenceSimEval on the same b19.

constexpr const char* k_large_circuit = "b19";  // largest catalog circuit

/// Generated once per process: b19 is 231k gates and several benchmarks
/// share it.
const benchgen::SyntheticCircuit& large_circuit() {
  static const benchgen::SyntheticCircuit c =
      benchgen::make_circuit(k_large_circuit);
  return c;
}

void BM_ReferenceSimEval(benchmark::State& state) {
  const auto& circuit = large_circuit();
  const std::size_t gates = circuit.netlist.stats().gates;
  sim::ReferenceSim simulator(circuit.netlist);
  util::Rng rng(7);
  for (auto _ : state) {
    for (auto i : circuit.netlist.inputs()) simulator.set(i, rng.next_u64());
    simulator.eval();
    simulator.step();
    benchmark::DoNotOptimize(simulator.get(circuit.netlist.outputs()[0]));
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(gates));
}
BENCHMARK(BM_ReferenceSimEval);

void BM_CompiledSimWide(benchmark::State& state) {
  const std::size_t lane_words = static_cast<std::size_t>(state.range(0));
  const auto& circuit = large_circuit();
  const std::size_t gates = circuit.netlist.stats().gates;
  sim::SimConfig config;
  config.lanes = lane_words;
  config.jobs = 1;  // single-thread: the honest 5x comparison
  sim::WideSim simulator(circuit.netlist, config);
  util::Rng rng(7);
  for (auto _ : state) {
    for (auto i : circuit.netlist.inputs()) {
      for (std::size_t w = 0; w < lane_words; ++w) {
        simulator.set_word(i, w, rng.next_u64());
      }
    }
    simulator.eval();
    simulator.step();
    benchmark::DoNotOptimize(
        simulator.get_word(circuit.netlist.outputs()[0], 0));
  }
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(lane_words) *
                          static_cast<std::int64_t>(gates));
}
BENCHMARK(BM_CompiledSimWide)->Arg(1)->Arg(4)->Arg(16);

// ---- sim-ISA axis ----------------------------------------------------------
//
// One row per (kernel tier, lane width) available on this host, registered
// dynamically in main(): BM_CompiledSimIsa/<isa>/<lane_words>. The circuit is
// b14 (cache-resident buffers even at 16 lane words), so the rows compare
// kernel throughput rather than memory bandwidth. Only the generic rows live
// in the checked-in baseline — AVX rows exist only on hosts that report the
// extension, and tools/check_bench_baseline.py hard-fails on baseline rows
// missing from a fresh run. sim_gates / sim_lane_words are deterministic
// counters the baseline diff pins, like the SAT trajectory counters.

const benchgen::SyntheticCircuit& isa_circuit() {
  static const benchgen::SyntheticCircuit c = benchgen::make_circuit("b14");
  return c;
}

void BM_CompiledSimIsa(benchmark::State& state, util::SimIsa isa,
                       std::size_t lane_words) {
  const auto& circuit = isa_circuit();
  const std::size_t gates = circuit.netlist.stats().gates;
  const util::SimIsa previous = sim::kernels::active_isa();
  sim::kernels::set_active_isa(isa);
  sim::SimConfig config;
  config.lanes = lane_words;
  config.jobs = 1;
  sim::WideSim simulator(circuit.netlist, config);
  util::Rng rng(7);
  for (auto _ : state) {
    for (auto i : circuit.netlist.inputs()) {
      for (std::size_t w = 0; w < lane_words; ++w) {
        simulator.set_word(i, w, rng.next_u64());
      }
    }
    simulator.eval();
    simulator.step();
    benchmark::DoNotOptimize(
        simulator.get_word(circuit.netlist.outputs()[0], 0));
  }
  sim::kernels::set_active_isa(previous);
  state.counters["sim_gates"] = static_cast<double>(gates);
  state.counters["sim_lane_words"] = static_cast<double>(lane_words);
  state.SetItemsProcessed(state.iterations() * 64 *
                          static_cast<std::int64_t>(lane_words) *
                          static_cast<std::int64_t>(gates));
}

void register_sim_isa_benchmarks() {
  using util::SimIsa;
  for (SimIsa isa : {SimIsa::Generic, SimIsa::Avx2, SimIsa::Avx512}) {
    if (!sim::kernels::available(isa)) continue;
    for (std::size_t lane_words : {std::size_t{4}, std::size_t{16}}) {
      const std::string name = std::string("BM_CompiledSimIsa/") +
                               util::sim_isa_name(isa) + "/" +
                               std::to_string(lane_words);
      benchmark::RegisterBenchmark(
          name.c_str(), [isa, lane_words](benchmark::State& s) {
            BM_CompiledSimIsa(s, isa, lane_words);
          });
    }
  }
}

/// Generated + compiled once per process: Google Benchmark re-invokes the
/// benchmark function while calibrating iteration counts, and regenerating
/// a million-gate netlist per re-entry would swamp the run.
const sim::CompiledNetlist& sharded_circuit() {
  static const benchgen::SyntheticCircuit circuit =
      benchgen::make_circuit(bench::small_run() ? "syn64k" : "syn1m");
  static const sim::CompiledNetlist compiled(circuit.netlist);
  return compiled;
}

void BM_CompiledSimSharded(benchmark::State& state) {
  // The million-gate suite through the level-parallel path; worker count
  // from CUTELOCK_JOBS.
  const sim::CompiledNetlist& compiled = sharded_circuit();
  const std::size_t gates = compiled.num_gates();
  static util::ThreadPool pool(util::jobs_from_env());
  constexpr std::size_t k_lanes = 4;
  std::vector<std::uint64_t> values(compiled.buffer_words(k_lanes), 0);
  std::vector<std::uint64_t> scratch;
  compiled.reset_words(values.data(), k_lanes);
  util::Rng rng(7);
  for (auto _ : state) {
    for (auto i : compiled.inputs()) {
      for (std::size_t w = 0; w < k_lanes; ++w) {
        values[i * k_lanes + w] = rng.next_u64();
      }
    }
    compiled.eval_sharded(values.data(), k_lanes, pool);
    compiled.step_words(values.data(), k_lanes, scratch);
    benchmark::DoNotOptimize(values[compiled.outputs()[0] * k_lanes]);
  }
  state.counters["jobs"] = static_cast<double>(pool.size());
  state.SetItemsProcessed(state.iterations() * 64 * k_lanes *
                          static_cast<std::int64_t>(gates));
}
// Wall time: the work happens on pool workers, so main-thread CPU time
// would overstate throughput.
BENCHMARK(BM_CompiledSimSharded)->UseRealTime();

void BM_CuteLockStr(benchmark::State& state) {
  const auto circuit = benchgen::make_circuit("b12");
  for (auto _ : state) {
    core::StrOptions options;
    options.num_keys = 8;
    options.key_bits = 8;
    options.locked_ffs = 4;
    options.seed = 5;
    benchmark::DoNotOptimize(core::cute_lock_str(circuit.netlist, options));
  }
}
BENCHMARK(BM_CuteLockStr);

void BM_CuteLockBehSynth(benchmark::State& state) {
  const fsm::Stg stg = benchgen::make_fsm(benchgen::find_fsm_spec("cpu"));
  for (auto _ : state) {
    core::BehOptions options;
    options.num_keys = 4;
    options.key_bits = 14;
    options.seed = 3;
    const core::BehLock lock(stg, options);
    benchmark::DoNotOptimize(
        lock.synthesize(fsm::SynthStyle::DirectTransitions, "cpu_locked"));
  }
}
BENCHMARK(BM_CuteLockBehSynth);

void BM_QuineMcCluskey(benchmark::State& state) {
  util::Rng rng(11);
  std::vector<std::uint64_t> onset;
  for (std::uint64_t m = 0; m < 1024; ++m) {
    if (rng.chance(1, 3)) onset.push_back(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(logic::minimize(onset, {}, 10));
  }
}
BENCHMARK(BM_QuineMcCluskey);

void BM_TechMap(benchmark::State& state) {
  const auto circuit = benchgen::make_circuit("b14");
  for (auto _ : state) {
    benchmark::DoNotOptimize(tech::map_to_cells(circuit.netlist));
  }
}
BENCHMARK(BM_TechMap);

}  // namespace

// BENCHMARK_MAIN(), plus the CUTELOCK_BENCH_SMALL=1 contract the other
// harnesses honour: smoke runs cap per-benchmark measurement time. The flag
// is inserted before user arguments so an explicit --benchmark_min_time
// still wins. Like the Runner-based harnesses, a BENCH_micro_perf.json
// baseline is emitted (Google Benchmark's own JSON reporter) unless
// CUTELOCK_BENCH_JSON=0; CUTELOCK_BENCH_JSON_DIR selects the directory.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string small_min_time = "--benchmark_min_time=0.01";
  if (bench::small_run()) args.insert(args.begin() + 1, small_min_time.data());
  std::string json_out, json_fmt = "--benchmark_out_format=json";
  bool user_out = false;
  for (char* a : args) {
    if (std::string(a).rfind("--benchmark_out=", 0) == 0) user_out = true;
  }
  if (!user_out && bench::json_enabled()) {
    json_out = "--benchmark_out=" + bench::json_dir() + "/BENCH_micro_perf.json";
    args.insert(args.begin() + 1, json_out.data());
    args.insert(args.begin() + 2, json_fmt.data());
  }
  int n = static_cast<int>(args.size());
  register_sim_isa_benchmarks();
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
