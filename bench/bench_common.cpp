#include "bench_common.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cl::bench {

namespace {

/// Strict strtod: the whole string (modulo surrounding spaces the caller did
/// not strip) must parse, otherwise report failure. atof would silently read
/// "2s" as 2 and "abc" as 0.
bool parse_double_strict(const char* text, double* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  // Reject "inf"/"nan" too: a non-finite budget fed into
  // Solver::set_time_budget would overflow the duration_cast.
  if (end == text || *end != '\0' || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool parse_size_strict(const char* text, std::size_t* out) {
  if (text == nullptr || *text == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || v < 0) return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool env_flag(const char* name) {
  const char* env = std::getenv(name);
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

}  // namespace

double attack_seconds(double fallback) {
  const char* env = std::getenv("CUTELOCK_ATTACK_SECONDS");
  if (env == nullptr) return fallback;
  double v = 0.0;
  if (!parse_double_strict(env, &v) || v <= 0) {
    std::fprintf(stderr,
                 "warning: ignoring invalid CUTELOCK_ATTACK_SECONDS=\"%s\" "
                 "(want a positive number); using %.1fs\n",
                 env, fallback);
    return fallback;
  }
  return v;
}

bool small_run() { return env_flag("CUTELOCK_BENCH_SMALL"); }

bool stable_cells() { return env_flag("CUTELOCK_BENCH_STABLE"); }

std::size_t jobs_from_env() {
  const char* env = std::getenv("CUTELOCK_JOBS");
  if (env == nullptr) return util::ThreadPool::default_thread_count();
  std::size_t v = 0;
  if (!parse_size_strict(env, &v) || v == 0) {
    std::fprintf(stderr,
                 "warning: ignoring invalid CUTELOCK_JOBS=\"%s\" "
                 "(want a positive integer); using %zu\n",
                 env, util::ThreadPool::default_thread_count());
    return util::ThreadPool::default_thread_count();
  }
  return v;
}

bool json_enabled() {
  const char* env = std::getenv("CUTELOCK_BENCH_JSON");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

std::string json_dir() {
  if (const char* env = std::getenv("CUTELOCK_BENCH_JSON_DIR")) {
    if (env[0] != '\0') return env;
  }
  return ".";
}

attack::AttackBudget table_budget(double seconds) {
  attack::AttackBudget b;
  b.time_limit_s = seconds;
  b.max_iterations = 500;
  b.max_depth = 24;
  b.conflict_budget = 4'000'000;
  if (stable_cells()) {
    // Byte-identical output requires outcomes that do not depend on the
    // clock: replace wall deadlines (attack and candidate-key verification)
    // with the deterministic budgets above (iterations, depth, conflicts).
    b.time_limit_s = 1e9;
    b.verify_time_limit_s = 1e9;
  }
  return b;
}

std::string attack_cell(const attack::AttackResult& r) {
  if (stable_cells()) return attack::outcome_label(r.outcome);
  return std::string(attack::outcome_label(r.outcome)) + " " +
         util::format_duration(r.seconds);
}

std::string time_cell(double seconds) {
  if (stable_cells()) return "-";
  return util::format_duration(seconds);
}

std::vector<benchgen::CircuitSpec> selected_circuits(
    const std::vector<benchgen::CircuitSpec>& suite) {
  constexpr std::size_t kSmallGateCutoff = 1200;
  std::vector<benchgen::CircuitSpec> out;
  for (const benchgen::CircuitSpec& spec : suite) {
    if (small_run() && spec.gates > kSmallGateCutoff) continue;
    out.push_back(spec);
  }
  return out;
}

std::vector<benchgen::FsmSpec> selected_fsms(
    const std::vector<benchgen::FsmSpec>& suite) {
  std::vector<benchgen::FsmSpec> out;
  for (const benchgen::FsmSpec& spec : suite) {
    if (small_run() && std::strcmp(spec.tier, "small") != 0) continue;
    out.push_back(spec);
  }
  return out;
}

}  // namespace cl::bench
