#include "bench_common.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#include "util/env.hpp"
#include "util/timer.hpp"

namespace cl::bench {

namespace {

bool env_flag(const char* name) { return util::env_flag(name); }

}  // namespace

double attack_seconds(double fallback) {
  return util::env_double_or("CUTELOCK_ATTACK_SECONDS", fallback);
}

bool small_run() { return env_flag("CUTELOCK_BENCH_SMALL"); }

bool stable_cells() { return env_flag("CUTELOCK_BENCH_STABLE"); }

std::size_t jobs_from_env() { return util::jobs_from_env(); }

bool json_enabled() {
  const char* env = std::getenv("CUTELOCK_BENCH_JSON");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}

std::string json_dir() {
  if (const char* env = std::getenv("CUTELOCK_BENCH_JSON_DIR")) {
    if (env[0] != '\0') return env;
  }
  return ".";
}

attack::AttackBudget table_budget(double seconds) {
  attack::AttackBudget b;
  b.time_limit_s = seconds;
  b.max_iterations = 500;
  b.max_depth = 24;
  b.conflict_budget = 4'000'000;
  b.sat_workers = util::sat_portfolio_from_env();
  b.sat_preprocess = util::sat_preprocess_from_env();
  if (stable_cells()) {
    // Byte-identical output requires outcomes that do not depend on the
    // clock: replace wall deadlines (attack and candidate-key verification)
    // with the deterministic budgets above (iterations, depth, conflicts),
    // and race no portfolio (the winning worker — hence the recovered key
    // model — depends on scheduling).
    b.time_limit_s = 1e9;
    b.verify_time_limit_s = 1e9;
    b.sat_workers = 1;
    // sat_preprocess_from_env already yields false under stable mode; force
    // it here too so a direct table_budget caller cannot drift.
    b.sat_preprocess = false;
  }
  return b;
}

std::string attack_cell(const attack::AttackResult& r) {
  if (stable_cells()) return attack::outcome_label(r.outcome);
  return std::string(attack::outcome_label(r.outcome)) + " " +
         util::format_duration(r.seconds);
}

std::string time_cell(double seconds) {
  if (stable_cells()) return "-";
  return util::format_duration(seconds);
}

std::vector<benchgen::CircuitSpec> selected_circuits(
    const std::vector<benchgen::CircuitSpec>& suite) {
  constexpr std::size_t kSmallGateCutoff = 1200;
  std::vector<benchgen::CircuitSpec> out;
  for (const benchgen::CircuitSpec& spec : suite) {
    if (small_run() && spec.gates > kSmallGateCutoff) continue;
    out.push_back(spec);
  }
  return out;
}

std::vector<benchgen::FsmSpec> selected_fsms(
    const std::vector<benchgen::FsmSpec>& suite) {
  std::vector<benchgen::FsmSpec> out;
  for (const benchgen::FsmSpec& spec : suite) {
    if (small_run() && std::strcmp(spec.tier, "small") != 0) continue;
    out.push_back(spec);
  }
  return out;
}

}  // namespace cl::bench
