// Table II — Cute-Lock-Str validation.
//
// s27 (ISCAS'89) locked with the paper's keys {1, 3, 2, 0} (k=4, ki=2).
// Flip-flops power up unknown, exactly as in the paper's table (the 'x'
// row at time 0). G17ck must track the original G17; G17wk (a static key)
// diverges.
//
// A single Runner job (the stimulus search is one sequential scan), run on
// the Runner for the BENCH_*.json baseline record.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/s27.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "sim/sequence.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Validation {
  std::size_t cycles = 15;
  std::vector<sim::BitVec> stim;
  std::vector<std::vector<sim::Trit>> y, yck, ywk;
  bool ck_ok = true;
  bool wk_diverged = false;
};

}  // namespace

int main() {
  using namespace cl;
  std::printf("TABLE II: Cute-Lock-Str validation (s27, keys 1,3,2,0)\n\n");

  Validation v;
  bench::Runner runner("table2_str_validation");
  runner.add({"ISCAS'89", "s27", "validation", 4, 2}, [&v]() {
    netlist::Netlist s27 = benchgen::make_s27();
    // Power-up-unknown flip-flops (the paper's waveform shows 'x' at t=0).
    for (netlist::SignalId q : s27.dffs()) {
      s27.set_dff_init(q, netlist::DffInit::X);
    }
    core::StrOptions options;
    options.num_keys = 4;
    options.key_bits = 2;
    options.locked_ffs = 1;
    options.explicit_keys = {1, 3, 2, 0};
    const lock::LockResult locked = core::cute_lock_str(s27, options);

    // The paper's table uses a demonstrative stimulus where the wrong-key
    // divergence is visible on G17 (s27's single output masks heavily);
    // search the seed space for one deterministically.
    const auto correct_keys = locked.keys_for(v.cycles);
    const std::vector<sim::BitVec> wrong_keys(v.cycles, sim::BitVec{1, 0});
    std::uint64_t seeds_scanned = 0;
    for (std::uint64_t seed = 1; seed < 4000; ++seed) {
      ++seeds_scanned;
      util::Rng rng(seed);
      auto candidate = sim::random_stimulus(rng, v.cycles, s27.inputs().size());
      auto ref = sim::run_sequence_x(s27, candidate);
      auto wk = sim::run_sequence_x(locked.locked, candidate, wrong_keys);
      int visible = 0;
      for (std::size_t t = 0; t < v.cycles; ++t) {
        if (ref[t][0] != sim::Trit::X && wk[t][0] != sim::Trit::X &&
            ref[t][0] != wk[t][0]) {
          ++visible;
        }
      }
      if (visible >= 2) {
        v.stim = std::move(candidate);
        v.y = std::move(ref);
        v.ywk = std::move(wk);
        v.yck = sim::run_sequence_x(locked.locked, v.stim, correct_keys);
        break;
      }
    }
    if (v.stim.empty()) {
      return bench::JobOutcome{"FAIL", -1.0, seeds_scanned};
    }
    for (std::size_t t = 0; t < v.cycles; ++t) {
      v.ck_ok = v.ck_ok && (v.yck[t][0] == v.y[t][0]);
      v.wk_diverged = v.wk_diverged ||
                      (v.ywk[t][0] != v.y[t][0] && v.y[t][0] != sim::Trit::X &&
                       v.ywk[t][0] != sim::Trit::X);
    }
    return bench::JobOutcome{v.ck_ok ? "PASS" : "FAIL", -1.0, seeds_scanned};
  });
  runner.run();

  if (v.stim.empty()) {
    std::printf("no demonstrative stimulus found (unexpected)\n");
    return 1;
  }

  util::Table table({"Time (ns)", "G0", "G1", "G2", "G3", "G17", "G17ck", "G17wk"});
  for (std::size_t t = 0; t < v.cycles; ++t) {
    table.add_row({std::to_string(20 * t),
                   std::string(1, v.stim[t][0] ? '1' : '0'),
                   std::string(1, v.stim[t][1] ? '1' : '0'),
                   std::string(1, v.stim[t][2] ? '1' : '0'),
                   std::string(1, v.stim[t][3] ? '1' : '0'),
                   std::string(1, sim::trit_char(v.y[t][0])),
                   std::string(1, sim::trit_char(v.yck[t][0])),
                   std::string(1, sim::trit_char(v.ywk[t][0]))});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("correct keys: %s\n",
              v.ck_ok ? "G17ck == G17 on every cycle (PASS)"
                      : "MISMATCH (FAIL)");
  std::printf("wrong key:    %s\n",
              v.wk_diverged ? "G17wk diverges (PASS)"
                            : "no observable divergence on this stimulus");
  return v.ck_ok ? 0 : 1;
}
