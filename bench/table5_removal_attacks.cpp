// Table V — Cute-Lock-Str security against removal attacks.
//
// Every ITC'99 circuit is locked with Cute-Lock-Str and handed to:
//  * DANA — register clustering scored by NMI against the generator's
//    ground-truth register groups. The original circuits score high (the
//    DANA paper reports 0.87-0.99, average 0.95); the locked ones must drop
//    sharply (the Cute-Lock paper reports 0.00-0.99, average 0.41).
//  * FALL — structural/functional key extraction. Expected: 0 candidates,
//    0 confirmed keys on every locked circuit.
//  * SCOPE — oracle-free synthesis-differential key inference. Expected:
//    0 bits decided (every Cute-Lock-Str bit reads as Complex and stays
//    Unknown — honest, rather than wrong).
//
// Four Runner jobs per circuit (DANA original / DANA locked / FALL / SCOPE),
// each rebuilding its own circuit and lock deterministically.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/dana.hpp"
#include "attack/fall.hpp"
#include "attack/scope.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace cl;

struct Row {
  benchgen::CircuitSpec spec;
  double nmi_orig = 0.0;
  double nmi_locked = 0.0;
  attack::FallResult fall;
  attack::ScopeResult scope;
};

lock::LockResult lock_circuit(const benchgen::SyntheticCircuit& circuit,
                              const benchgen::CircuitSpec& spec) {
  core::StrOptions options;
  options.num_keys = spec.lock_keys;
  options.key_bits = spec.lock_bits;
  // More locked FFs = more dataflow blending (paper §III-C); scale with
  // the circuit.
  options.locked_ffs =
      std::clamp<std::size_t>(circuit.netlist.dffs().size() / 8, 2, 12);
  options.seed = 0xdada + spec.gates;
  return core::cute_lock_str(circuit.netlist, options);
}

}  // namespace

int main() {
  using namespace cl;
  std::printf("TABLE V: Cute-Lock-Str vs removal attacks (DANA, FALL)\n\n");
  const double fall_seconds = bench::attack_seconds(5.0);

  std::vector<Row> rows;
  for (const benchgen::CircuitSpec& spec :
       bench::selected_circuits(benchgen::itc99_specs())) {
    rows.push_back(Row{spec, 0.0, 0.0, {}, {}});
  }

  bench::Runner runner("table5_removal_attacks");
  for (Row& row : rows) {
    const benchgen::CircuitSpec spec = row.spec;
    const auto meta = [&](const char* attack_name) {
      return bench::JobMeta{"ITC'99", spec.name, attack_name,
                            static_cast<int>(spec.lock_keys),
                            static_cast<int>(spec.lock_bits)};
    };
    runner.add(meta("DANA-original"), [&row, spec]() {
      const auto circuit = benchgen::make_circuit(spec);
      const attack::DanaResult dana = attack::dana_attack(circuit.netlist);
      row.nmi_orig = attack::nmi_score(circuit.netlist, dana, circuit.groups);
      char nmi[16];
      std::snprintf(nmi, sizeof nmi, "%.2f", row.nmi_orig);
      return bench::JobOutcome{nmi, -1.0, 0};
    });
    runner.add(meta("DANA-locked"), [&row, spec]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      const attack::DanaResult dana = attack::dana_attack(locked.locked);
      row.nmi_locked = attack::nmi_score(locked.locked, dana, circuit.groups);
      char nmi[16];
      std::snprintf(nmi, sizeof nmi, "%.2f", row.nmi_locked);
      return bench::JobOutcome{nmi, -1.0, 0};
    });
    runner.add(meta("FALL"), [&row, spec, fall_seconds]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      attack::SequentialOracle oracle(circuit.netlist);
      attack::FallOptions fall_options;
      fall_options.budget = bench::table_budget(fall_seconds);
      row.fall = attack::fall_attack(locked.locked, oracle, fall_options);
      return bench::JobOutcome{attack::outcome_label(row.fall.result.outcome),
                               row.fall.result.seconds,
                               row.fall.result.iterations};
    });
    runner.add(meta("SCOPE"), [&row, spec, fall_seconds]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      // Oracle-free: SCOPE only sees the locked netlist.
      attack::ScopeOptions scope_options;
      scope_options.budget = bench::table_budget(fall_seconds);
      row.scope = attack::scope_attack(locked.locked, nullptr, scope_options);
      return bench::JobOutcome{attack::outcome_label(row.scope.result.outcome),
                               row.scope.result.seconds,
                               row.scope.result.iterations};
    });
  }
  runner.run();

  util::Table table({"circuit", "NMI orig", "NMI locked", "FALL cand",
                     "FALL keys", "FALL time", "SCOPE dec", "SCOPE time"});
  double nmi_orig_sum = 0, nmi_locked_sum = 0;
  std::size_t fall_keys_total = 0, scope_decided_total = 0;
  for (const Row& row : rows) {
    char orig_s[16], locked_s[16];
    std::snprintf(orig_s, sizeof orig_s, "%.2f", row.nmi_orig);
    std::snprintf(locked_s, sizeof locked_s, "%.2f", row.nmi_locked);
    table.add_row({row.spec.name, orig_s, locked_s,
                   std::to_string(row.fall.candidates),
                   std::to_string(row.fall.confirmed),
                   bench::time_cell(row.fall.result.seconds),
                   std::to_string(row.scope.decided) + "/" +
                       std::to_string(row.scope.report.key_bits),
                   bench::time_cell(row.scope.result.seconds)});
    nmi_orig_sum += row.nmi_orig;
    nmi_locked_sum += row.nmi_locked;
    fall_keys_total += row.fall.confirmed;
    scope_decided_total += row.scope.decided;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("DANA NMI average: %.2f original -> %.2f locked "
              "(paper: 0.95 -> 0.41)\n",
              nmi_orig_sum / static_cast<double>(rows.size()),
              nmi_locked_sum / static_cast<double>(rows.size()));
  std::printf("FALL confirmed keys: %zu (paper: 0)\n", fall_keys_total);
  std::printf("SCOPE decided bits: %zu (expected: 0 — every bit Unknown)\n",
              scope_decided_total);
  const bool shape_holds = nmi_locked_sum < nmi_orig_sum &&
                           fall_keys_total == 0 && scope_decided_total == 0;
  return shape_holds ? 0 : 1;
}
