// Table V — Cute-Lock-Str security against removal attacks.
//
// Every ITC'99 circuit is locked with Cute-Lock-Str and handed to:
//  * DANA — register clustering scored by NMI against the generator's
//    ground-truth register groups. The original circuits score high (the
//    DANA paper reports 0.87-0.99, average 0.95); the locked ones must drop
//    sharply (the Cute-Lock paper reports 0.00-0.99, average 0.41).
//  * FALL — structural/functional key extraction. Expected: 0 candidates,
//    0 confirmed keys on every locked circuit.
#include <algorithm>
#include <cstdio>

#include "attack/dana.hpp"
#include "attack/fall.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace cl;
  std::printf("TABLE V: Cute-Lock-Str vs removal attacks (DANA, FALL)\n\n");

  util::Table table({"circuit", "NMI orig", "NMI locked", "FALL cand",
                     "FALL keys", "FALL time"});
  double nmi_orig_sum = 0, nmi_locked_sum = 0;
  std::size_t rows = 0, fall_keys_total = 0;
  for (const benchgen::CircuitSpec& spec : benchgen::itc99_specs()) {
    if (bench::small_run() && spec.gates > 1200) continue;
    const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(spec);
    core::StrOptions options;
    options.num_keys = spec.lock_keys;
    options.key_bits = spec.lock_bits;
    // More locked FFs = more dataflow blending (paper §III-C); scale with
    // the circuit.
    options.locked_ffs = std::clamp<std::size_t>(circuit.netlist.dffs().size() / 8,
                                                 2, 12);
    options.seed = 0xdada + spec.gates;
    const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);

    const attack::DanaResult dana_orig = attack::dana_attack(circuit.netlist);
    const double nmi_orig =
        attack::nmi_score(circuit.netlist, dana_orig, circuit.groups);
    const attack::DanaResult dana_locked = attack::dana_attack(locked.locked);
    const double nmi_locked =
        attack::nmi_score(locked.locked, dana_locked, circuit.groups);

    attack::SequentialOracle oracle(circuit.netlist);
    attack::FallOptions fall_options;
    fall_options.budget = bench::table_budget(bench::attack_seconds(5.0));
    const attack::FallResult fall =
        attack::fall_attack(locked.locked, oracle, fall_options);

    char orig_s[16], locked_s[16];
    std::snprintf(orig_s, sizeof orig_s, "%.2f", nmi_orig);
    std::snprintf(locked_s, sizeof locked_s, "%.2f", nmi_locked);
    table.add_row({spec.name, orig_s, locked_s,
                   std::to_string(fall.candidates), std::to_string(fall.confirmed),
                   util::format_duration(fall.result.seconds)});
    nmi_orig_sum += nmi_orig;
    nmi_locked_sum += nmi_locked;
    fall_keys_total += fall.confirmed;
    ++rows;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("DANA NMI average: %.2f original -> %.2f locked "
              "(paper: 0.95 -> 0.41)\n",
              nmi_orig_sum / static_cast<double>(rows),
              nmi_locked_sum / static_cast<double>(rows));
  std::printf("FALL confirmed keys: %zu (paper: 0)\n", fall_keys_total);
  const bool shape_holds =
      nmi_locked_sum < nmi_orig_sum && fall_keys_total == 0;
  return shape_holds ? 0 : 1;
}
