// Mega-suite attack table — lock/attack outcomes at compiled-simulator
// scale (first step toward the ROADMAP mega-table item).
//
// With simulation (PR 3) and SAT (PR 4) off the critical path, the attacks
// themselves are the bottleneck on the synthetic mega circuits. This
// harness locks syn64k/syn256k with Cute-Lock-Str at small key counts and
// runs the engine-based oracle-guided suite (INT / KC2 / periodic) against
// each instance. Unroll depth and iteration budgets are deliberately tiny —
// one miter frame of syn256k is already ~half a million SAT variables — so
// the table records how far each attack gets (expected: N/A / CNS, never
// Equal), plus the oracle-query split when the ObservationBank is on.
//
// Small profile (CI smoke): one row — syn64k at k=2 — with the INT attack
// only. The full run adds syn256k, k=4, and the KC2/periodic columns.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/periodic_attack.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Row {
  benchgen::CircuitSpec spec;
  std::size_t k = 0;
  bool full = false;  // KC2/periodic columns run only in the full profile
  attack::AttackResult bmc, kc2, periodic;
};

lock::LockResult lock_circuit(const benchgen::SyntheticCircuit& circuit,
                              const benchgen::CircuitSpec& spec,
                              std::size_t k) {
  core::StrOptions options;
  options.num_keys = k;
  options.key_bits = 4;
  options.locked_ffs =
      std::min<std::size_t>(4, circuit.netlist.dffs().size());
  options.seed = 0x3e6a + spec.gates + k;
  return core::cute_lock_str(circuit.netlist, options);
}

/// Deterministic budget sized for million-variable miters: a couple of
/// shallow frames, a handful of DIS rounds. Wall deadlines still come from
/// CUTELOCK_ATTACK_SECONDS outside stable mode.
attack::AttackBudget mega_budget(double seconds) {
  attack::AttackBudget b = bench::table_budget(seconds);
  b.max_iterations = 6;
  b.max_depth = 4;
  b.conflict_budget = 200'000;
  return b;
}

}  // namespace

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(30.0);
  std::printf("TABLE MEGA: Cute-Lock-Str on the mega suite vs oracle-guided "
              "attacks (per-attack budget %.1fs)\n\n", seconds);

  std::vector<Row> rows;
  const bool small = bench::small_run();
  for (const benchgen::CircuitSpec& spec : benchgen::mega_specs()) {
    if (spec.name == "syn1m") continue;  // sim-only until attacks scale further
    if (small && spec.name != "syn64k") continue;
    for (const std::size_t k : {2u, 4u}) {
      if (small && k != 2) continue;
      rows.push_back(Row{spec, k, !small, {}, {}, {}});
    }
  }

  bench::Runner runner("table_mega");
  for (Row& row : rows) {
    const benchgen::CircuitSpec spec = row.spec;
    const std::size_t k = row.k;
    const attack::AttackBudget budget = mega_budget(seconds);
    const auto meta = [&](const char* attack_name) {
      return bench::JobMeta{"mega", spec.name, attack_name,
                            static_cast<int>(k), 4};
    };
    runner.add_attack(meta("INT"), &row.bmc, [spec, k, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec, k);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::bmc_attack(locked.locked, oracle, budget);
    });
    if (!row.full) continue;
    runner.add_attack(meta("KC2"), &row.kc2, [spec, k, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec, k);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::kc2_attack(locked.locked, oracle, budget);
    });
    runner.add_attack(meta("periodic"), &row.periodic, [spec, k, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec, k);
      attack::SequentialOracle oracle(circuit.netlist);
      attack::PeriodicAttackOptions o;
      o.budget = budget;
      o.max_period = k;
      return attack::periodic_key_attack(locked.locked, oracle, o).result;
    });
  }
  runner.run();

  util::Table table({"suite", "circuit", "k", "ki", "INT", "KC2", "periodic"});
  std::size_t attacks_run = 0, defenses_held = 0;
  for (const Row& row : rows) {
    attacks_run += row.full ? 3 : 1;
    if (attack::defense_held(row.bmc.outcome)) ++defenses_held;
    if (row.full && attack::defense_held(row.kc2.outcome)) ++defenses_held;
    if (row.full && attack::defense_held(row.periodic.outcome)) ++defenses_held;
    table.add_row({"mega", row.spec.name, std::to_string(row.k), "4",
                   bench::attack_cell(row.bmc),
                   row.full ? bench::attack_cell(row.kc2) : "-",
                   row.full ? bench::attack_cell(row.periodic) : "-"});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("defense held in %zu / %zu attack runs "
              "(Equal would mean a recovered key)\n",
              defenses_held, attacks_run);
  return defenses_held == attacks_run ? 0 : 1;
}
