// §IV-A sanity — single-key reductions ARE broken.
//
// "Locking benchmarks with the same key values (i.e., reduced to a
// single-key solution) leads to SAT attacks ... to find the correct key as
// expected." This harness validates both directions at once: the attack
// implementations genuinely work (they recover keys from reduced locks) and
// the multi-key schedule is what provides the security (same circuits, same
// parameters, keys varied per slot -> attacks fail).
#include <algorithm>
#include <cstdio>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(10.0);
  std::printf("VALIDATION: single-key reduction vs multi-key Cute-Lock-Str\n\n");

  util::Table table({"circuit", "mode", "BMC", "KC2", "BBO"});
  std::size_t reduced_broken = 0, reduced_total = 0;
  std::size_t multi_held = 0, multi_total = 0;
  for (const char* name : {"s27", "s298", "b01", "b03", "b06"}) {
    const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(name);
    attack::SequentialOracle oracle(circuit.netlist);
    const attack::AttackBudget budget = bench::table_budget(seconds);

    for (const bool reduced : {true, false}) {
      core::StrOptions options;
      options.num_keys = 4;
      options.key_bits = 3;
      options.locked_ffs = std::min<std::size_t>(2, circuit.netlist.dffs().size());
      options.seed = 0x5111 + (reduced ? 1 : 0);
      options.single_key_reduction = reduced;
      const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);

      const attack::AttackResult bmc =
          attack::bmc_attack(locked.locked, oracle, budget);
      const attack::AttackResult kc2 =
          attack::kc2_attack(locked.locked, oracle, budget);
      attack::BboOptions bbo_options;
      bbo_options.budget = budget;
      const attack::AttackResult bbo =
          attack::bbo_attack(locked.locked, oracle, bbo_options);

      for (const auto* r : {&bmc, &kc2, &bbo}) {
        if (reduced) {
          ++reduced_total;
          if (r->outcome == attack::Outcome::Equal) ++reduced_broken;
        } else {
          ++multi_total;
          if (attack::defense_held(r->outcome)) ++multi_held;
        }
      }
      table.add_row({name, reduced ? "single-key (reduced)" : "multi-key",
                     bench::attack_cell(bmc), bench::attack_cell(kc2),
                     bench::attack_cell(bbo)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("single-key reductions broken: %zu / %zu (expected: all)\n",
              reduced_broken, reduced_total);
  std::printf("multi-key defenses held:      %zu / %zu (expected: all)\n",
              multi_held, multi_total);
  return (reduced_broken == reduced_total && multi_held == multi_total) ? 0 : 1;
}
