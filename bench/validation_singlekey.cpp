// §IV-A sanity — single-key reductions ARE broken.
//
// "Locking benchmarks with the same key values (i.e., reduced to a
// single-key solution) leads to SAT attacks ... to find the correct key as
// expected." This harness validates both directions at once: the attack
// implementations genuinely work (they recover keys from reduced locks) and
// the multi-key schedule is what provides the security (same circuits, same
// parameters, keys varied per slot -> attacks fail).
//
// One Runner job per (circuit x mode x attack), each with its own circuit,
// lock and oracle.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Row {
  const char* name;
  bool reduced;
  attack::AttackResult bmc, kc2, bbo;
};

lock::LockResult lock_circuit(const benchgen::SyntheticCircuit& circuit,
                              bool reduced) {
  core::StrOptions options;
  options.num_keys = 4;
  options.key_bits = 3;
  options.locked_ffs =
      std::min<std::size_t>(2, circuit.netlist.dffs().size());
  options.seed = 0x5111 + (reduced ? 1 : 0);
  options.single_key_reduction = reduced;
  return core::cute_lock_str(circuit.netlist, options);
}

}  // namespace

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(10.0);
  std::printf("VALIDATION: single-key reduction vs multi-key Cute-Lock-Str\n\n");

  std::vector<Row> rows;
  for (const char* name : {"s27", "s298", "b01", "b03", "b06"}) {
    for (const bool reduced : {true, false}) {
      rows.push_back(Row{name, reduced, {}, {}, {}});
    }
  }

  bench::Runner runner("validation_singlekey");
  for (Row& row : rows) {
    const char* name = row.name;
    const bool reduced = row.reduced;
    const attack::AttackBudget budget = bench::table_budget(seconds);
    const auto meta = [&](const char* attack_name) {
      bench::JobMeta m{reduced ? "single-key" : "multi-key", name, attack_name,
                       4, 3};
      return m;
    };
    runner.add_attack(meta("INT"), &row.bmc, [name, reduced, budget]() {
      const auto circuit = benchgen::make_circuit(name);
      const auto locked = lock_circuit(circuit, reduced);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::bmc_attack(locked.locked, oracle, budget);
    });
    runner.add_attack(meta("KC2"), &row.kc2, [name, reduced, budget]() {
      const auto circuit = benchgen::make_circuit(name);
      const auto locked = lock_circuit(circuit, reduced);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::kc2_attack(locked.locked, oracle, budget);
    });
    runner.add_attack(meta("BBO"), &row.bbo, [name, reduced, budget]() {
      const auto circuit = benchgen::make_circuit(name);
      const auto locked = lock_circuit(circuit, reduced);
      attack::SequentialOracle oracle(circuit.netlist);
      attack::BboOptions bbo_options;
      bbo_options.budget = budget;
      // The Runner already saturates cores across table cells; intra-attack
      // screening threads would only multiply contention here.
      bbo_options.jobs = 1;
      return attack::bbo_attack(locked.locked, oracle, bbo_options);
    });
  }
  runner.run();

  util::Table table({"circuit", "mode", "BMC", "KC2", "BBO"});
  std::size_t reduced_broken = 0, reduced_total = 0;
  std::size_t multi_held = 0, multi_total = 0;
  for (const Row& row : rows) {
    for (const auto* r : {&row.bmc, &row.kc2, &row.bbo}) {
      if (row.reduced) {
        ++reduced_total;
        if (r->outcome == attack::Outcome::Equal) ++reduced_broken;
      } else {
        ++multi_total;
        if (attack::defense_held(r->outcome)) ++multi_held;
      }
    }
    table.add_row({row.name, row.reduced ? "single-key (reduced)" : "multi-key",
                   bench::attack_cell(row.bmc), bench::attack_cell(row.kc2),
                   bench::attack_cell(row.bbo)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("single-key reductions broken: %zu / %zu (expected: all)\n",
              reduced_broken, reduced_total);
  std::printf("multi-key defenses held:      %zu / %zu (expected: all)\n",
              multi_held, multi_total);
  return (reduced_broken == reduced_total && multi_held == multi_total) ? 0 : 1;
}
