// Table IV — Cute-Lock-Str security against logic attacks.
//
// Every ISCAS'89 / ITC'99 circuit is locked with Cute-Lock-Str using the
// paper's per-circuit (k, ki) and attacked with BBO / INT / KC2 / RANE.
// Expected shape: no attack recovers a working key.
#include <algorithm>
#include <cstdio>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(2.0);
  std::printf("TABLE IV: Cute-Lock-Str vs oracle-guided attacks "
              "(per-attack budget %.1fs)\n\n", seconds);

  util::Table table({"suite", "circuit", "k", "ki", "BBO", "INT", "KC2", "RANE"});
  std::size_t attacks_run = 0, defenses_held = 0;

  const auto run_suite = [&](const char* suite,
                             const std::vector<benchgen::CircuitSpec>& specs) {
    for (const benchgen::CircuitSpec& spec : specs) {
      if (spec.name == "s27") continue;  // validation circuit (Table II)
      if (bench::small_run() && spec.gates > 1200) continue;
      const benchgen::SyntheticCircuit bench_circuit =
          benchgen::make_circuit(spec);
      core::StrOptions options;
      options.num_keys = spec.lock_keys;
      options.key_bits = spec.lock_bits;
      options.locked_ffs =
          std::min<std::size_t>(4, bench_circuit.netlist.dffs().size());
      options.seed = 0x57a + spec.gates;
      const lock::LockResult locked =
          core::cute_lock_str(bench_circuit.netlist, options);
      attack::SequentialOracle oracle(bench_circuit.netlist);

      const attack::AttackBudget budget = bench::table_budget(seconds);
      attack::BboOptions bbo_options;
      bbo_options.budget = budget;
      const attack::AttackResult bbo =
          attack::bbo_attack(locked.locked, oracle, bbo_options);
      const attack::AttackResult bmc =
          attack::bmc_attack(locked.locked, oracle, budget);
      const attack::AttackResult kc2 =
          attack::kc2_attack(locked.locked, oracle, budget);
      const attack::AttackResult rane =
          attack::rane_attack(locked.locked, oracle, budget);
      for (const auto* r : {&bbo, &bmc, &kc2, &rane}) {
        ++attacks_run;
        if (attack::defense_held(r->outcome)) ++defenses_held;
      }
      table.add_row({suite, spec.name, std::to_string(spec.lock_keys),
                     std::to_string(spec.lock_bits), bench::attack_cell(bbo),
                     bench::attack_cell(bmc), bench::attack_cell(kc2),
                     bench::attack_cell(rane)});
    }
  };
  run_suite("ISCAS'89", benchgen::iscas89_specs());
  run_suite("ITC'99", benchgen::itc99_specs());

  std::printf("%s\n", table.to_string().c_str());
  std::printf("defense held in %zu / %zu attack runs "
              "(paper: all; Equal would mean a recovered key)\n",
              defenses_held, attacks_run);
  return defenses_held == attacks_run ? 0 : 1;
}
