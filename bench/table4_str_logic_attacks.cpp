// Table IV — Cute-Lock-Str security against logic attacks.
//
// Every ISCAS'89 / ITC'99 circuit is locked with Cute-Lock-Str using the
// paper's per-circuit (k, ki) and attacked with BBO / INT / KC2 / RANE.
// Expected shape: no attack recovers a working key.
//
// Each (circuit x attack) pair is one independent Runner job: the job builds
// its own circuit, lock and oracle (all deterministic), so the table is
// byte-identical however many workers CUTELOCK_JOBS grants.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Row {
  const char* suite;
  benchgen::CircuitSpec spec;
  attack::AttackResult bbo, bmc, kc2, rane;
};

lock::LockResult lock_circuit(const benchgen::SyntheticCircuit& circuit,
                              const benchgen::CircuitSpec& spec) {
  core::StrOptions options;
  options.num_keys = spec.lock_keys;
  options.key_bits = spec.lock_bits;
  options.locked_ffs =
      std::min<std::size_t>(4, circuit.netlist.dffs().size());
  options.seed = 0x57a + spec.gates;
  return core::cute_lock_str(circuit.netlist, options);
}

}  // namespace

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(2.0);
  std::printf("TABLE IV: Cute-Lock-Str vs oracle-guided attacks "
              "(per-attack budget %.1fs)\n\n", seconds);

  std::vector<Row> rows;
  const auto collect = [&](const char* suite,
                           const std::vector<benchgen::CircuitSpec>& specs) {
    for (const benchgen::CircuitSpec& spec : bench::selected_circuits(specs)) {
      if (spec.name == "s27") continue;  // validation circuit (Table II)
      rows.push_back(Row{suite, spec, {}, {}, {}, {}});
    }
  };
  collect("ISCAS'89", benchgen::iscas89_specs());
  collect("ITC'99", benchgen::itc99_specs());

  bench::Runner runner("table4_str_logic_attacks");
  for (Row& row : rows) {
    const benchgen::CircuitSpec spec = row.spec;
    const attack::AttackBudget budget = bench::table_budget(seconds);
    const auto meta = [&](const char* attack_name) {
      return bench::JobMeta{row.suite, spec.name, attack_name,
                            static_cast<int>(spec.lock_keys),
                            static_cast<int>(spec.lock_bits)};
    };
    runner.add_attack(meta("BBO"), &row.bbo, [spec, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      attack::SequentialOracle oracle(circuit.netlist);
      attack::BboOptions bbo_options;
      bbo_options.budget = budget;
      // The Runner already saturates cores across table cells; intra-attack
      // screening threads would only multiply contention here.
      bbo_options.jobs = 1;
      return attack::bbo_attack(locked.locked, oracle, bbo_options);
    });
    runner.add_attack(meta("INT"), &row.bmc, [spec, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::bmc_attack(locked.locked, oracle, budget);
    });
    runner.add_attack(meta("KC2"), &row.kc2, [spec, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::kc2_attack(locked.locked, oracle, budget);
    });
    runner.add_attack(meta("RANE"), &row.rane, [spec, budget]() {
      const auto circuit = benchgen::make_circuit(spec);
      const auto locked = lock_circuit(circuit, spec);
      attack::SequentialOracle oracle(circuit.netlist);
      return attack::rane_attack(locked.locked, oracle, budget);
    });
  }
  runner.run();

  util::Table table({"suite", "circuit", "k", "ki", "BBO", "INT", "KC2", "RANE"});
  std::size_t attacks_run = 0, defenses_held = 0;
  for (const Row& row : rows) {
    for (const auto* r : {&row.bbo, &row.bmc, &row.kc2, &row.rane}) {
      ++attacks_run;
      if (attack::defense_held(r->outcome)) ++defenses_held;
    }
    table.add_row({row.suite, row.spec.name,
                   std::to_string(row.spec.lock_keys),
                   std::to_string(row.spec.lock_bits),
                   bench::attack_cell(row.bbo), bench::attack_cell(row.bmc),
                   bench::attack_cell(row.kc2), bench::attack_cell(row.rane)});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("defense held in %zu / %zu attack runs "
              "(paper: all; Equal would mean a recovered key)\n",
              defenses_held, attacks_run);
  return defenses_held == attacks_run ? 0 : 1;
}
