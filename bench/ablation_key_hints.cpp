// Ablation — structural key hints vs oracle-query cost.
//
// The SCOPE-style inference (docs/structural-analysis.md) reads inline
// XOR/MUX key gates from the locked netlist alone. This harness measures
// what those free bits are worth to an oracle-guided attack: each circuit
// is locked with the XOR and MUX baseline locks, scan-exposed, and attacked
// twice with the classic SAT attack — cold, and with the inferred
// high-confidence bits installed as unit assumptions
// (SatAttackOptions::hints). Both runs must recover the key (hints are
// advisory and cannot flip a verdict); the hinted run must need strictly
// fewer fresh oracle queries in total — with fully correct hints on a
// combinational lock, zero.
//
// Four Runner jobs per circuit (XOR / XOR+hints / MUX / MUX+hints), each
// rebuilding its own circuit, lock, oracle and hint set.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/key_infer.hpp"
#include "attack/sat_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/transform.hpp"
#include "runner.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

constexpr std::size_t k_key_bits = 8;
constexpr double k_min_confidence = 0.75;

struct Row {
  std::string circuit;
  bool mux = false;  // false = xor_lock, true = mux_lock
  attack::AttackResult plain;
  attack::AttackResult hinted;
};

/// Scan-exposed (locked, original) pair under the row's baseline lock.
struct Instance {
  netlist::Netlist locked;
  netlist::Netlist original;
};

Instance make_instance(const Row& row) {
  const netlist::Netlist nl = benchgen::make_circuit(row.circuit).netlist;
  util::Rng rng(0x4153 + row.circuit.size());
  const lock::LockResult lr = row.mux ? lock::mux_lock(nl, k_key_bits, rng)
                                      : lock::xor_lock(nl, k_key_bits, rng);
  return {netlist::scan_expose(lr.locked), netlist::scan_expose(nl)};
}

attack::AttackResult run_attack(const Row& row, double seconds, bool hints) {
  const Instance inst = make_instance(row);
  attack::SequentialOracle oracle(inst.original);
  attack::SatAttackOptions options;
  options.budget = bench::table_budget(seconds);
  if (hints) {
    analysis::InferOptions infer;
    infer.time_limit_s = seconds;
    options.hints =
        analysis::infer_key_hints(inst.locked, infer).decided_bits(k_min_confidence);
  }
  return attack::sat_attack(inst.locked, oracle, options);
}

}  // namespace

int main() {
  using namespace cl;
  std::printf("ABLATION: structural key hints vs SAT-attack oracle queries\n\n");
  const double seconds = bench::attack_seconds(5.0);

  std::vector<Row> rows;
  for (const char* circuit : {"s27", "s298", "b01"}) {
    rows.push_back(Row{circuit, false, {}, {}});
    rows.push_back(Row{circuit, true, {}, {}});
  }

  bench::Runner runner("ablation_key_hints");
  for (Row& row : rows) {
    const char* scheme = row.mux ? "MUX" : "XOR";
    const auto meta = [&](const char* attack_name) {
      return bench::JobMeta{scheme, row.circuit, attack_name, -1,
                            static_cast<int>(k_key_bits)};
    };
    runner.add_attack(meta("SAT"), &row.plain,
                      [&row, seconds]() { return run_attack(row, seconds, false); });
    runner.add_attack(meta("SAT+hints"), &row.hinted,
                      [&row, seconds]() { return run_attack(row, seconds, true); });
  }
  runner.run();

  util::Table table({"circuit", "lock", "SAT", "fresh", "SAT+hints",
                     "fresh (hinted)", "hints", "hint acc"});
  std::uint64_t plain_fresh = 0, hinted_fresh = 0;
  bool all_equal = true;
  for (const Row& row : rows) {
    plain_fresh += row.plain.fresh_queries;
    hinted_fresh += row.hinted.fresh_queries;
    all_equal = all_equal && row.plain.outcome == attack::Outcome::Equal &&
                row.hinted.outcome == attack::Outcome::Equal;
    char acc[16];
    if (row.hinted.hint_accuracy >= 0) {
      std::snprintf(acc, sizeof acc, "%.2f", row.hinted.hint_accuracy);
    } else {
      std::snprintf(acc, sizeof acc, "-");
    }
    table.add_row({row.circuit, row.mux ? "MUX" : "XOR",
                   bench::attack_cell(row.plain),
                   std::to_string(row.plain.fresh_queries),
                   bench::attack_cell(row.hinted),
                   std::to_string(row.hinted.fresh_queries),
                   std::to_string(row.hinted.hinted_bits) + "/" +
                       std::to_string(k_key_bits),
                   acc});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("fresh oracle queries: %llu cold -> %llu hinted "
              "(expected: strict reduction; 0 when every bit is inferred)\n",
              static_cast<unsigned long long>(plain_fresh),
              static_cast<unsigned long long>(hinted_fresh));
  const bool shape_holds = all_equal && hinted_fresh < plain_fresh;
  return shape_holds ? 0 : 1;
}
