// Table I — Cute-Lock-Beh validation.
//
// The bcomp FSM (8 inputs x[7:0], 39 outputs y[38:0]) is locked with
// Cute-Lock-Beh using 19 key bits (paper §IV-A). The table shows, per
// simulation time step: the input word, the original output y, the locked
// output under the correct key schedule (yck — must equal y), and the
// locked output under wrong keys (ywk — diverges).
//
// A single Runner job: the validation is one indivisible trace, but running
// it on the Runner still yields the BENCH_*.json baseline record.
#include <cstdio>

#include "bench_common.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "fsm/synth.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Validation {
  std::vector<std::uint32_t> inputs;
  std::vector<fsm::Stg::StepResult> original, with_ck, with_wk;
  std::size_t synth_gates = 0, synth_ffs = 0, synth_key_bits = 0;
  bool ck_matches = true;
  bool wk_diverges = false;
};

}  // namespace

int main() {
  using namespace cl;
  std::printf("TABLE I: Cute-Lock-Beh validation (bcomp, k=6, ki=19)\n\n");

  Validation v;
  bench::Runner runner("table1_beh_validation");
  runner.add({"synthezza", "bcomp", "validation", 6, 19}, [&v]() {
    const benchgen::FsmSpec& spec = benchgen::find_fsm_spec("bcomp");
    const fsm::Stg bcomp = benchgen::make_fsm(spec);

    core::BehOptions options;
    options.num_keys = 6;
    options.key_bits = 19;
    options.seed = 0xbc09;
    const core::BehLock lock(bcomp, options);

    // Stimulus in the paper's style: alternating characteristic input words.
    util::Rng rng(0x7ab1e1);
    for (int t = 0; t < 16; ++t) {
      v.inputs.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
    }
    std::vector<std::uint64_t> correct_keys, wrong_keys;
    for (std::size_t t = 0; t < v.inputs.size(); ++t) {
      correct_keys.push_back(lock.keys()[t % lock.num_keys()]);
      // Wrong keys: correct value applied one slot late (right key, wrong
      // time — the failure mode unique to time-based locking).
      wrong_keys.push_back(lock.keys()[(t + 1) % lock.num_keys()]);
    }
    v.original = bcomp.run(v.inputs);
    v.with_ck = lock.run(v.inputs, correct_keys);
    v.with_wk = lock.run(v.inputs, wrong_keys);
    for (std::size_t t = 0; t < v.inputs.size(); ++t) {
      v.ck_matches = v.ck_matches &&
                     (v.with_ck[t].output == v.original[t].output);
      v.wk_diverges = v.wk_diverges ||
                      (v.with_wk[t].output != v.original[t].output);
    }

    // The gate-level synthesis of the same lock, as the paper implements it.
    const auto locked = lock.synthesize(fsm::SynthStyle::DirectTransitions,
                                        "bcomp_locked");
    v.synth_gates = locked.locked.stats().gates;
    v.synth_ffs = locked.locked.dffs().size();
    v.synth_key_bits = locked.locked.key_inputs().size();
    return bench::JobOutcome{
        (v.ck_matches && v.wk_diverges) ? "PASS" : "FAIL", -1.0,
        v.inputs.size()};
  });
  runner.run();

  util::Table table({"Time (ns)", "x[7:0]", "y[38:0]", "yck[38:0]", "ywk[38:0]"});
  for (std::size_t t = 0; t < v.inputs.size(); ++t) {
    char xs[16], ys[24], cks[24], wks[24];
    std::snprintf(xs, sizeof xs, "%02x", v.inputs[t]);
    std::snprintf(ys, sizeof ys, "%010llx",
                  static_cast<unsigned long long>(v.original[t].output));
    std::snprintf(cks, sizeof cks, "%010llx",
                  static_cast<unsigned long long>(v.with_ck[t].output));
    std::snprintf(wks, sizeof wks, "%010llx",
                  static_cast<unsigned long long>(v.with_wk[t].output));
    table.add_row({std::to_string(20 * (t + 1)), xs, ys, cks, wks});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("correct keys:  %s\n",
              v.ck_matches ? "yck == y on every cycle (PASS)"
                           : "MISMATCH (FAIL)");
  std::printf("wrong keys:    %s\n",
              v.wk_diverges ? "ywk diverges from y (PASS)"
                            : "no divergence observed (FAIL)");
  std::printf("\nsynthesized locked bcomp: %zu gates, %zu FFs, %zu key bits\n",
              v.synth_gates, v.synth_ffs, v.synth_key_bits);
  return (v.ck_matches && v.wk_diverges) ? 0 : 1;
}
