// Table I — Cute-Lock-Beh validation.
//
// The bcomp FSM (8 inputs x[7:0], 39 outputs y[38:0]) is locked with
// Cute-Lock-Beh using 19 key bits (paper §IV-A). The table shows, per
// simulation time step: the input word, the original output y, the locked
// output under the correct key schedule (yck — must equal y), and the
// locked output under wrong keys (ywk — diverges).
#include <cstdio>

#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "fsm/synth.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  std::printf("TABLE I: Cute-Lock-Beh validation (bcomp, k=6, ki=19)\n\n");

  const benchgen::FsmSpec& spec = benchgen::find_fsm_spec("bcomp");
  const fsm::Stg bcomp = benchgen::make_fsm(spec);

  core::BehOptions options;
  options.num_keys = 6;
  options.key_bits = 19;
  options.seed = 0xbc09;
  const core::BehLock lock(bcomp, options);

  // Stimulus in the paper's style: alternating characteristic input words.
  util::Rng rng(0x7ab1e1);
  std::vector<std::uint32_t> inputs;
  for (int t = 0; t < 16; ++t) {
    inputs.push_back(static_cast<std::uint32_t>(rng.next_below(256)));
  }
  std::vector<std::uint64_t> correct_keys, wrong_keys;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    correct_keys.push_back(lock.keys()[t % lock.num_keys()]);
    // Wrong keys: correct value applied one slot late (right key, wrong
    // time — the failure mode unique to time-based locking).
    wrong_keys.push_back(lock.keys()[(t + 1) % lock.num_keys()]);
  }
  const auto original = bcomp.run(inputs);
  const auto with_ck = lock.run(inputs, correct_keys);
  const auto with_wk = lock.run(inputs, wrong_keys);

  util::Table table({"Time (ns)", "x[7:0]", "y[38:0]", "yck[38:0]", "ywk[38:0]"});
  bool ck_matches = true;
  bool wk_diverges = false;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    char xs[16], ys[24], cks[24], wks[24];
    std::snprintf(xs, sizeof xs, "%02x", inputs[t]);
    std::snprintf(ys, sizeof ys, "%010llx",
                  static_cast<unsigned long long>(original[t].output));
    std::snprintf(cks, sizeof cks, "%010llx",
                  static_cast<unsigned long long>(with_ck[t].output));
    std::snprintf(wks, sizeof wks, "%010llx",
                  static_cast<unsigned long long>(with_wk[t].output));
    table.add_row({std::to_string(20 * (t + 1)), xs, ys, cks, wks});
    ck_matches = ck_matches && (with_ck[t].output == original[t].output);
    wk_diverges = wk_diverges || (with_wk[t].output != original[t].output);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("correct keys:  %s\n",
              ck_matches ? "yck == y on every cycle (PASS)"
                         : "MISMATCH (FAIL)");
  std::printf("wrong keys:    %s\n",
              wk_diverges ? "ywk diverges from y (PASS)"
                          : "no divergence observed (FAIL)");

  // The gate-level synthesis of the same lock, as the paper implements it.
  const auto locked = lock.synthesize(fsm::SynthStyle::DirectTransitions,
                                      "bcomp_locked");
  std::printf("\nsynthesized locked bcomp: %zu gates, %zu FFs, %zu key bits\n",
              locked.locked.stats().gates, locked.locked.dffs().size(),
              locked.locked.key_inputs().size());
  return (ck_matches && wk_diverges) ? 0 : 1;
}
