// TABLE RIVALS — lock x attack success matrix under rival acceptance
// criteria.
//
// Every registered defense (lock::lock_registry: XOR, K-Gate, CAC 2.0,
// latch-based, Cute-Lock-Str) is attacked with the sequential engines
// (INT/KC2/RANE), the scan-model SAT attack and BBO on small ISCAS'89
// circuits, and every reported key is judged twice (attack/accept.hpp):
//
//   exact — the one-key premise: key equals the ground-truth bit vector
//   any   — the key is functionally passing, decoy bits free
//
// The point of the table (Hu et al., "On the One-Key Premise") is the gap
// column: cells where `any` accepts and `exact` denies are defenses the
// classic scoreboard would call unbroken when the attacker in fact holds a
// working key. The harness exits nonzero when NO such cell exists — the gap
// is a property of multi-key locks this repo must reproduce, not a fluke.
//
// Scan-model cells for locks that add their own state (latch, Cute-Lock-Str)
// are structurally inapplicable (scan exposure widens the interface past the
// oracle's) and rendered as "n/a (scan)".
#include <cstdio>
#include <optional>
#include <vector>

#include "attack/accept.hpp"
#include "attack/bbo.hpp"
#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "lock/lock_registry.hpp"
#include "netlist/transform.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

const char* const k_attacks[] = {"INT", "KC2", "RANE", "SAT", "BBO"};

struct Cell {
  std::string circuit;
  const lock::RegisteredLock* entry;
  const char* attack_name;
  bool applicable;
  attack::AttackResult result;
};

/// Deterministic per-(circuit, lock) lock seed so every attack in a row
/// faces the same instance and the table is reproducible.
std::uint64_t lock_seed(const std::string& circuit, const std::string& lock) {
  std::uint64_t h = 0x21a17ULL;
  for (const char c : circuit + "/" + lock) h = h * 131 + c;
  return h;
}

attack::AttackResult run_cell(const Cell& cell,
                              const attack::AttackBudget& budget) {
  const auto circuit = benchgen::make_circuit(cell.circuit);
  util::Rng rng(lock_seed(cell.circuit, cell.entry->name));
  const lock::LockResult lr = cell.entry->build(circuit.netlist, rng);
  const std::string mode = cell.attack_name;

  attack::AttackResult r;
  if (mode == "SAT") {
    const auto locked_scan = netlist::scan_expose(lr.locked);
    const auto original_scan = netlist::scan_expose(circuit.netlist);
    attack::SequentialOracle scan_oracle(original_scan);
    attack::SatAttackOptions o;
    o.budget = budget;
    r = attack::sat_attack(locked_scan, scan_oracle, o);
  } else {
    attack::SequentialOracle oracle(circuit.netlist);
    if (mode == "INT") r = attack::bmc_attack(lr.locked, oracle, budget);
    else if (mode == "KC2") r = attack::kc2_attack(lr.locked, oracle, budget);
    else if (mode == "RANE") r = attack::rane_attack(lr.locked, oracle, budget);
    else {
      attack::BboOptions o;
      o.budget = budget;
      o.jobs = 1;
      r = attack::bbo_attack(lr.locked, oracle, o);
    }
  }
  // Judge the reported key under both criteria in one evaluation. Dynamic
  // locks have no static ground truth, so their acceptance fields stay -1.
  if (!cell.entry->dynamic_key && !r.key.empty()) {
    const attack::AcceptReport rep = attack::verify_any_key(
        lr.locked, r.key, circuit.netlist, &lr.correct_key);
    attack::apply_acceptance(rep, &r);
  }
  return r;
}

std::string tri(int v) { return v < 0 ? "-" : (v == 1 ? "yes" : "no"); }

}  // namespace

int main() {
  using namespace cl;
  const double seconds = bench::attack_seconds(2.0);
  std::printf("TABLE RIVALS: registered locks vs attacks under exact-key / "
              "any-passing-key acceptance (per-attack budget %.1fs)\n\n",
              seconds);

  const std::vector<std::string> circuits =
      bench::small_run() ? std::vector<std::string>{"s27", "s298"}
                         : std::vector<std::string>{"s27", "s298", "s349"};

  std::vector<Cell> cells;
  for (const std::string& circuit : circuits) {
    for (const lock::RegisteredLock& entry : lock::lock_registry()) {
      for (const char* attack_name : k_attacks) {
        const bool scan_cell = std::string(attack_name) == "SAT";
        cells.push_back(Cell{circuit, &entry, attack_name,
                             !(scan_cell && entry.adds_state), {}});
      }
    }
  }

  bench::Runner runner("table_rivals");
  const attack::AttackBudget budget = bench::table_budget(seconds);
  for (Cell& cell : cells) {
    if (!cell.applicable) continue;
    const Cell snapshot = cell;
    runner.add_attack(
        bench::JobMeta{cell.entry->name, cell.circuit, cell.attack_name, -1,
                       -1},
        &cell.result, [snapshot, budget]() { return run_cell(snapshot, budget); });
  }
  runner.run();

  util::Table table({"circuit", "lock", "attack", "outcome", "exact", "any",
                     "corruption"});
  std::size_t broken_exact = 0, broken_any = 0, gap_cells = 0, run = 0;
  for (const Cell& cell : cells) {
    if (!cell.applicable) {
      table.add_row({cell.circuit, cell.entry->name, cell.attack_name,
                     "n/a (scan)", "-", "-", "-"});
      continue;
    }
    ++run;
    const attack::AttackResult& r = cell.result;
    if (r.key_exact == 1) ++broken_exact;
    if (r.any_key_pass == 1) ++broken_any;
    if (r.any_key_pass == 1 && r.key_exact == 0) ++gap_cells;
    char corr[32] = "-";
    if (r.corruption_rate >= 0) {
      std::snprintf(corr, sizeof corr, "%.4f", r.corruption_rate);
    }
    table.add_row({cell.circuit, cell.entry->name, cell.attack_name,
                   bench::attack_cell(r), tri(r.key_exact),
                   tri(r.any_key_pass), corr});
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("%zu cells run: %zu broken under exact-key, %zu under "
              "any-passing-key, %zu one-key-premise gap cell(s)\n",
              run, broken_exact, broken_any, gap_cells);
  if (gap_cells == 0) {
    std::printf("FAIL: expected at least one cell where the criteria "
                "disagree (a passing key that is not the secret)\n");
    return 1;
  }
  return 0;
}
