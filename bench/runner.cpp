#include "runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "bench_common.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cl::bench {

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Runner::Runner(std::string harness)
    : harness_(std::move(harness)), threads_(jobs_from_env()) {}

std::size_t Runner::add(JobMeta meta, std::function<JobOutcome()> fn) {
  if (ran_) throw std::logic_error("Runner::add: run() already happened");
  jobs_.push_back(Job{std::move(meta), std::move(fn), JobOutcome{}});
  return jobs_.size() - 1;
}

std::size_t Runner::add_attack(JobMeta meta, attack::AttackResult* slot,
                               std::function<attack::AttackResult()> fn) {
  return add(std::move(meta), [slot, fn = std::move(fn)]() {
    *slot = fn();
    return JobOutcome{attack::outcome_label(slot->outcome), slot->seconds,
                      slot->iterations, slot->replayed_queries,
                      slot->fresh_queries, slot->preloaded_facts,
                      slot->batched_queries, slot->oracle_batches,
                      slot->hinted_bits, slot->hint_accuracy,
                      slot->key_exact, slot->any_key_pass,
                      slot->corruption_rate};
  });
}

void Runner::set_threads(std::size_t n) {
  if (ran_) throw std::logic_error("Runner::set_threads: run() already happened");
  threads_ = std::max<std::size_t>(1, n);
}

void Runner::execute(Job& job) {
  util::Timer timer;
  job.out = job.fn();
  if (job.out.seconds < 0) job.out.seconds = timer.seconds();
}

void Runner::run() {
  if (ran_) throw std::logic_error("Runner::run: run() already happened");
  ran_ = true;
  if (threads_ <= 1 || jobs_.size() <= 1) {
    effective_threads_ = 1;  // inline on the calling thread
    for (Job& job : jobs_) execute(job);
  } else {
    effective_threads_ = std::min(threads_, jobs_.size());
    util::ThreadPool pool(effective_threads_);
    for (Job& job : jobs_) {
      pool.submit([this, &job] { execute(job); });
    }
    pool.wait();
  }
  write_json();
}

const JobOutcome& Runner::outcome(std::size_t id) const {
  if (!ran_) throw std::logic_error("Runner::outcome: call run() first");
  return jobs_.at(id).out;
}

std::string Runner::json() const {
  std::string out = "{\n  \"harness\": ";
  append_json_string(out, harness_);
  out += ",\n  \"threads\": " + std::to_string(effective_threads_);
  out += ",\n  \"small_profile\": ";
  out += small_run() ? "true" : "false";
  out += ",\n  \"records\": [";
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const Job& job = jobs_[i];
    out += (i == 0) ? "\n" : ",\n";
    out += "    {\"suite\": ";
    append_json_string(out, job.meta.suite);
    out += ", \"circuit\": ";
    append_json_string(out, job.meta.circuit);
    out += ", \"attack\": ";
    append_json_string(out, job.meta.attack);
    if (job.meta.k >= 0) out += ", \"k\": " + std::to_string(job.meta.k);
    if (job.meta.ki >= 0) out += ", \"ki\": " + std::to_string(job.meta.ki);
    out += ", \"outcome\": ";
    append_json_string(out, job.out.outcome);
    double duration = job.out.seconds;
    if (!std::isfinite(duration)) {
      // %.6f would emit "nan"/"inf" — invalid JSON that poisons every
      // downstream baseline differ.
      std::fprintf(stderr,
                   "warning: %s/%s/%s reported a non-finite duration; "
                   "writing 0.0 to the JSON baseline\n",
                   job.meta.suite.c_str(), job.meta.circuit.c_str(),
                   job.meta.attack.c_str());
      duration = 0.0;
    }
    char seconds[32];
    std::snprintf(seconds, sizeof seconds, "%.6f", duration);
    out += ", \"seconds\": ";
    out += seconds;
    out += ", \"iterations\": " + std::to_string(job.out.iterations);
    out += ", \"replayed_queries\": " + std::to_string(job.out.replayed_queries);
    out += ", \"fresh_queries\": " + std::to_string(job.out.fresh_queries);
    out += ", \"preloaded_facts\": " + std::to_string(job.out.preloaded_facts);
    if (job.out.oracle_batches > 0) {
      // Only attacks that issued wide-lane oracle passes carry the batch
      // fields, mirroring the hint-fields pattern: per-query baselines stay
      // byte-identical.
      out += ", \"batched_queries\": " + std::to_string(job.out.batched_queries);
      out += ", \"oracle_batches\": " + std::to_string(job.out.oracle_batches);
    }
    if (job.out.key_exact >= 0 || job.out.any_key_pass >= 0) {
      // Only acceptance-judged jobs carry the criterion fields, mirroring
      // the hint-fields pattern below: pre-acceptance baselines stay
      // byte-identical.
      if (job.out.key_exact >= 0) {
        out += ", \"key_exact\": ";
        out += job.out.key_exact ? "true" : "false";
      }
      if (job.out.any_key_pass >= 0) {
        out += ", \"any_key_pass\": ";
        out += job.out.any_key_pass ? "true" : "false";
      }
      if (job.out.corruption_rate >= 0) {
        char rate[32];
        std::snprintf(rate, sizeof rate, "%.4f", job.out.corruption_rate);
        out += ", \"corruption_rate\": ";
        out += rate;
      }
    }
    if (job.out.hinted_bits > 0) {
      // Only hinted jobs carry the fields: hint-free baselines stay
      // byte-identical to those written before hints existed.
      out += ", \"hinted_bits\": " + std::to_string(job.out.hinted_bits);
      if (job.out.hint_accuracy >= 0) {
        char acc[32];
        std::snprintf(acc, sizeof acc, "%.4f", job.out.hint_accuracy);
        out += ", \"hint_accuracy\": ";
        out += acc;
      }
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string Runner::json_path() const {
  if (!json_enabled()) return "";
  return json_dir() + "/BENCH_" + harness_ + ".json";
}

void Runner::write_json() const {
  const std::string path = json_path();
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write bench baseline %s\n",
                 path.c_str());
    return;
  }
  out << json();
}

}  // namespace cl::bench
