// Ablation — time-base period (k) vs overhead and attack behaviour.
//
// Sweeps the number of keys k on one circuit: overhead grows with the MUX
// tree height (log2(k)+1 layers, k layer-1 slots) while the oracle-guided
// attack outcome stays at CNS for every k >= 2.
#include <cstdio>

#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "tech/overhead.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  std::printf("ABLATION: key count k vs overhead and BMC outcome (b10)\n\n");

  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b10");
  const tech::OverheadReport base = tech::analyze_overhead(circuit.netlist);
  attack::SequentialOracle oracle(circuit.netlist);
  const attack::AttackBudget budget = bench::table_budget(bench::attack_seconds(2.0));

  util::Table table({"k", "counter FFs", "area ovh %", "cells ovh %", "BMC"});
  double prev_area = -1;
  bool area_grows = true;
  bool all_held = true;
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    core::StrOptions options;
    options.num_keys = k;
    options.key_bits = 4;
    options.locked_ffs = 2;
    options.seed = 0xab2b;
    const auto locked = core::cute_lock_str(circuit.netlist, options);
    const tech::OverheadReport r = tech::analyze_overhead(locked.locked);
    const attack::AttackResult bmc =
        attack::bmc_attack(locked.locked, oracle, budget);
    all_held = all_held && attack::defense_held(bmc.outcome);
    char area[16], cells[16];
    std::snprintf(area, sizeof area, "%.1f", r.area_overhead_pct(base));
    std::snprintf(cells, sizeof cells, "%.1f", r.cells_overhead_pct(base));
    table.add_row({std::to_string(k),
                   std::to_string(locked.locked.dffs().size() -
                                  circuit.netlist.dffs().size()),
                   area, cells, bench::attack_cell(bmc)});
    if (prev_area >= 0 && r.area_overhead_pct(base) < prev_area) {
      area_grows = false;
    }
    prev_area = r.area_overhead_pct(base);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("area overhead grows with k: %s; defense held for all k: %s\n",
              area_grows ? "yes" : "no", all_held ? "yes" : "no");
  return all_held ? 0 : 1;
}
