// Ablation — time-base period (k) vs overhead and attack behaviour.
//
// Sweeps the number of keys k on one circuit: overhead grows with the MUX
// tree height (log2(k)+1 layers, k layer-1 slots) while the oracle-guided
// attack outcome stays at CNS for every k >= 2.
//
// One Runner job per k; every job rebuilds circuit, lock and oracle.
#include <cstdio>
#include <vector>

#include "attack/seq_attack.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "tech/overhead.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Sweep {
  std::size_t k = 0;
  std::size_t counter_ffs = 0;
  double area_pct = 0.0;
  double cells_pct = 0.0;
  attack::AttackResult bmc;
};

lock::LockResult lock_circuit(const netlist::Netlist& nl, std::size_t k) {
  core::StrOptions options;
  options.num_keys = k;
  options.key_bits = 4;
  options.locked_ffs = 2;
  options.seed = 0xab2b;
  return core::cute_lock_str(nl, options);
}

}  // namespace

int main() {
  using namespace cl;
  std::printf("ABLATION: key count k vs overhead and BMC outcome (b10)\n\n");
  const double seconds = bench::attack_seconds(2.0);

  std::vector<Sweep> sweeps;
  for (const std::size_t k : {2u, 4u, 8u, 16u}) {
    Sweep sweep;
    sweep.k = k;
    sweeps.push_back(std::move(sweep));
  }

  bench::Runner runner("ablation_key_count");
  for (Sweep& sweep : sweeps) {
    const std::size_t k = sweep.k;
    runner.add({"ITC'99", "b10", "overhead", static_cast<int>(k), 4},
               [&sweep, k]() {
                 const auto circuit = benchgen::make_circuit("b10");
                 const tech::OverheadReport base =
                     tech::analyze_overhead(circuit.netlist);
                 const auto locked = lock_circuit(circuit.netlist, k);
                 const tech::OverheadReport r =
                     tech::analyze_overhead(locked.locked);
                 sweep.counter_ffs = locked.locked.dffs().size() -
                                     circuit.netlist.dffs().size();
                 sweep.area_pct = r.area_overhead_pct(base);
                 sweep.cells_pct = r.cells_overhead_pct(base);
                 char area[16];
                 std::snprintf(area, sizeof area, "%.1f", sweep.area_pct);
                 return bench::JobOutcome{area, -1.0, 0};
               });
    runner.add_attack({"ITC'99", "b10", "INT", static_cast<int>(k), 4},
                      &sweep.bmc, [k, seconds]() {
                        const auto circuit = benchgen::make_circuit("b10");
                        const auto locked = lock_circuit(circuit.netlist, k);
                        attack::SequentialOracle oracle(circuit.netlist);
                        return attack::bmc_attack(
                            locked.locked, oracle,
                            bench::table_budget(seconds));
                      });
  }
  runner.run();

  util::Table table({"k", "counter FFs", "area ovh %", "cells ovh %", "BMC"});
  double prev_area = -1;
  bool area_grows = true;
  bool all_held = true;
  for (const Sweep& sweep : sweeps) {
    all_held = all_held && attack::defense_held(sweep.bmc.outcome);
    char area[16], cells[16];
    std::snprintf(area, sizeof area, "%.1f", sweep.area_pct);
    std::snprintf(cells, sizeof cells, "%.1f", sweep.cells_pct);
    table.add_row({std::to_string(sweep.k), std::to_string(sweep.counter_ffs),
                   area, cells, bench::attack_cell(sweep.bmc)});
    if (prev_area >= 0 && sweep.area_pct < prev_area) area_grows = false;
    prev_area = sweep.area_pct;
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("area overhead grows with k: %s; defense held for all k: %s\n",
              area_grows ? "yes" : "no", all_held ? "yes" : "no");
  return all_held ? 0 : 1;
}
