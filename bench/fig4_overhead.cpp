// Figure 4 (a-d) — Overhead comparison of Cute-Lock-Str with DK-Lock.
//
// For every ITC'99 circuit, three Cute-Lock-Str configurations (the paper's
// Test Runs) and the average of two DK-Lock setups are synthesized onto the
// 45 nm-class library; the series report percentage overhead over the
// unlocked original for power, area, cell count, and I/O count:
//   Test Run 1: k = 2,  ki = n (circuit input count)
//   Test Run 2: k = 4,  ki = 3
//   Test Run 3: k = 16, ki = 5
//   DK-Lock:    average of a 10-bit-key setup and a ki = n setup
//               (no data for b20-b22, as in the paper).
//
// One Runner job per (circuit x series); every job rebuilds the circuit and
// its base overhead report, so jobs share nothing.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/seq_locks.hpp"
#include "runner.hpp"
#include "tech/overhead.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

struct Series {
  benchgen::CircuitSpec spec;
  // power, area, cells, ios
  double run1[4] = {0, 0, 0, 0};
  double run2[4] = {0, 0, 0, 0};
  double run3[4] = {0, 0, 0, 0};
  double dk[4] = {0, 0, 0, 0};
  bool has_dk = false;
};

void str_overhead(const benchgen::CircuitSpec& spec, std::size_t k,
                  std::size_t ki, double out[4]) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(spec);
  const netlist::Netlist& original = circuit.netlist;
  const tech::OverheadReport base = tech::analyze_overhead(original);
  core::StrOptions options;
  options.num_keys = k;
  options.key_bits = ki;
  options.locked_ffs = std::min<std::size_t>(4, original.dffs().size());
  options.seed = 0xf14 + spec.gates;
  const auto locked = core::cute_lock_str(original, options);
  const tech::OverheadReport r = tech::analyze_overhead(locked.locked);
  out[0] = r.power_overhead_pct(base);
  out[1] = r.area_overhead_pct(base);
  out[2] = r.cells_overhead_pct(base);
  out[3] = r.ios_overhead_pct(base);
}

void dk_overhead(const benchgen::CircuitSpec& spec, double out[4]) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(spec);
  const netlist::Netlist& original = circuit.netlist;
  const tech::OverheadReport base = tech::analyze_overhead(original);
  double acc[4] = {0, 0, 0, 0};
  for (const std::size_t kb : {std::size_t{10}, spec.inputs}) {
    util::Rng rng(0xdc + spec.gates);
    const auto locked = lock::dk_lock(
        original, std::max<std::size_t>(1, kb), 2,
        std::min<std::size_t>(kb, original.dffs().size()), rng);
    const tech::OverheadReport r = tech::analyze_overhead(locked.locked);
    acc[0] += r.power_overhead_pct(base);
    acc[1] += r.area_overhead_pct(base);
    acc[2] += r.cells_overhead_pct(base);
    acc[3] += r.ios_overhead_pct(base);
  }
  for (int m = 0; m < 4; ++m) out[m] = acc[m] / 2.0;
}

}  // namespace

int main() {
  using namespace cl;
  std::printf("FIGURE 4: overhead of Cute-Lock-Str Test Runs 1-3 vs DK-Lock "
              "(percent over unlocked original)\n\n");

  std::vector<Series> rows;
  for (const benchgen::CircuitSpec& spec :
       bench::selected_circuits(benchgen::itc99_specs())) {
    Series s;
    s.spec = spec;
    // The paper has no DK-Lock data for b20-b22.
    s.has_dk =
        !(spec.name == "b20" || spec.name == "b21" || spec.name == "b22");
    rows.push_back(std::move(s));
  }

  bench::Runner runner("fig4_overhead");
  for (Series& s : rows) {
    const benchgen::CircuitSpec spec = s.spec;
    const auto meta = [&](const char* series, int k, int ki) {
      return bench::JobMeta{"ITC'99", spec.name, series, k, ki};
    };
    const auto overhead_job = [](double* out, const benchgen::CircuitSpec c,
                                 std::size_t k, std::size_t ki) {
      return [out, c, k, ki]() {
        str_overhead(c, k, ki, out);
        char area[16];
        std::snprintf(area, sizeof area, "%.1f", out[1]);
        return bench::JobOutcome{area, -1.0, 0};
      };
    };
    runner.add(meta("TestRun1", 2, static_cast<int>(spec.inputs)),
               overhead_job(s.run1, spec, 2, spec.inputs));
    runner.add(meta("TestRun2", 4, 3), overhead_job(s.run2, spec, 4, 3));
    runner.add(meta("TestRun3", 16, 5), overhead_job(s.run3, spec, 16, 5));
    if (s.has_dk) {
      runner.add(meta("DK-Lock", -1, -1), [&s, spec]() {
        dk_overhead(spec, s.dk);
        char area[16];
        std::snprintf(area, sizeof area, "%.1f", s.dk[1]);
        return bench::JobOutcome{area, -1.0, 0};
      });
    }
  }
  runner.run();

  const char* metric_names[4] = {"(a) Power", "(b) Area", "(c) Cell Count",
                                 "(d) Number of IOs"};
  for (int m = 0; m < 4; ++m) {
    std::printf("Fig. 4%s — overhead %% \n", metric_names[m]);
    util::Table table({"circuit", "TestRun1", "TestRun2", "TestRun3", "DK-Lock"});
    for (const Series& s : rows) {
      char r1[16], r2[16], r3[16], dk[16];
      std::snprintf(r1, sizeof r1, "%.1f", s.run1[m]);
      std::snprintf(r2, sizeof r2, "%.1f", s.run2[m]);
      std::snprintf(r3, sizeof r3, "%.1f", s.run3[m]);
      if (s.has_dk) {
        std::snprintf(dk, sizeof dk, "%.1f", s.dk[m]);
      } else {
        std::snprintf(dk, sizeof dk, "-");
      }
      table.add_row({s.spec.name, r1, r2, r3, dk});
    }
    std::printf("%s\n", table.to_string().c_str());
  }

  // Shape checks the paper calls out: overhead shrinks as circuits grow;
  // small circuits can exceed 100%, the largest stay in the few-percent
  // range for Test Runs 1-2.
  double small_avg = 0, large_avg = 0;
  int small_n = 0, large_n = 0;
  for (const Series& s : rows) {
    if (s.spec.gates < 1200) {
      small_avg += s.run1[1];
      ++small_n;
    } else if (s.spec.gates > 9000) {
      large_avg += s.run1[1];
      ++large_n;
    }
  }
  if (small_n > 0 && large_n > 0) {
    small_avg /= small_n;
    large_avg /= large_n;
    std::printf("area overhead (Test Run 1): small circuits avg %.1f%% vs "
                "large circuits avg %.1f%% — %s\n",
                small_avg, large_avg,
                large_avg < small_avg ? "scales down with size (PASS)"
                                      : "unexpected shape");
    return large_avg < small_avg ? 0 : 1;
  }
  return 0;
}
