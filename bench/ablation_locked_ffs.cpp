// Ablation — locked-FF count vs dataflow resistance.
//
// The paper (§III-C): "locking one FF with different keys is enough to
// resist oracle-guided SAT attacks, locking more FFs would provide more
// resilience against dataflow and removal attacks." This sweep measures
// DANA's NMI as the number of locked flip-flops grows.
//
// One Runner job per (circuit x locked_ffs) cell.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "attack/dana.hpp"
#include "bench_common.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "runner.hpp"
#include "util/table.hpp"

namespace {

using namespace cl;

constexpr std::size_t kFfSweep[] = {0, 1, 2, 4, 8};

struct Row {
  const char* name;
  std::size_t dffs = 0;
  double nmi[5] = {0, 0, 0, 0, 0};
};

}  // namespace

int main() {
  using namespace cl;
  std::printf("ABLATION: DANA NMI vs number of locked flip-flops\n\n");

  std::vector<Row> rows;
  for (const char* name : {"b03", "b04", "b10", "b12", "b07"}) {
    Row row;
    row.name = name;
    row.dffs = benchgen::make_circuit(name).netlist.dffs().size();
    rows.push_back(row);
  }

  bench::Runner runner("ablation_locked_ffs");
  for (Row& row : rows) {
    const char* name = row.name;
    for (std::size_t i = 0; i < std::size(kFfSweep); ++i) {
      const std::size_t locked_ffs = kFfSweep[i];
      double* slot = &row.nmi[i];
      runner.add({"ITC'99", name,
                  "DANA@" + std::to_string(locked_ffs) + "ffs", 4, 4},
                 [slot, name, locked_ffs]() {
                   const auto circuit = benchgen::make_circuit(name);
                   if (locked_ffs == 0) {
                     const auto dana = attack::dana_attack(circuit.netlist);
                     *slot = attack::nmi_score(circuit.netlist, dana,
                                               circuit.groups);
                   } else {
                     core::StrOptions options;
                     options.num_keys = 4;
                     options.key_bits = 4;
                     options.locked_ffs = std::min<std::size_t>(
                         locked_ffs, circuit.netlist.dffs().size());
                     options.seed = 0xab1a;
                     const auto lr =
                         core::cute_lock_str(circuit.netlist, options);
                     const auto dana = attack::dana_attack(lr.locked);
                     *slot = attack::nmi_score(lr.locked, dana, circuit.groups);
                   }
                   char nmi[16];
                   std::snprintf(nmi, sizeof nmi, "%.2f", *slot);
                   return bench::JobOutcome{nmi, -1.0, 0};
                 });
    }
  }
  runner.run();

  util::Table table({"circuit", "ffs", "NMI@0", "NMI@1", "NMI@2", "NMI@4",
                     "NMI@8"});
  bool monotone_overall = true;
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name, std::to_string(row.dffs)};
    for (double nmi : row.nmi) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.2f", nmi);
      cells.push_back(buf);
    }
    monotone_overall =
        monotone_overall && (row.nmi[std::size(kFfSweep) - 1] <= row.nmi[0]);
    table.add_row(cells);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("locking more FFs %s dataflow recovery\n",
              monotone_overall ? "degrades (PASS)" : "did not degrade");
  return monotone_overall ? 0 : 1;
}
