// Ablation — locked-FF count vs dataflow resistance.
//
// The paper (§III-C): "locking one FF with different keys is enough to
// resist oracle-guided SAT attacks, locking more FFs would provide more
// resilience against dataflow and removal attacks." This sweep measures
// DANA's NMI as the number of locked flip-flops grows.
#include <cstdio>

#include "attack/dana.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;
  std::printf("ABLATION: DANA NMI vs number of locked flip-flops\n\n");

  util::Table table({"circuit", "ffs", "NMI@0", "NMI@1", "NMI@2", "NMI@4", "NMI@8"});
  bool monotone_overall = true;
  for (const char* name : {"b03", "b04", "b10", "b12", "b07"}) {
    const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(name);
    std::vector<std::string> row{name,
                                 std::to_string(circuit.netlist.dffs().size())};
    double first = -1, last = -1;
    for (const std::size_t locked_ffs : {0u, 1u, 2u, 4u, 8u}) {
      double nmi;
      if (locked_ffs == 0) {
        const auto dana = attack::dana_attack(circuit.netlist);
        nmi = attack::nmi_score(circuit.netlist, dana, circuit.groups);
      } else {
        core::StrOptions options;
        options.num_keys = 4;
        options.key_bits = 4;
        options.locked_ffs =
            std::min<std::size_t>(locked_ffs, circuit.netlist.dffs().size());
        options.seed = 0xab1a;
        const auto lr = core::cute_lock_str(circuit.netlist, options);
        const auto dana = attack::dana_attack(lr.locked);
        nmi = attack::nmi_score(lr.locked, dana, circuit.groups);
      }
      if (first < 0) first = nmi;
      last = nmi;
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.2f", nmi);
      row.push_back(buf);
    }
    monotone_overall = monotone_overall && (last <= first);
    table.add_row(row);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("locking more FFs %s dataflow recovery\n",
              monotone_overall ? "degrades (PASS)" : "did not degrade");
  return monotone_overall ? 0 : 1;
}
