// Shared helpers for the table/figure harnesses (the cutelock_bench
// library).
//
// Every harness honours:
//   CUTELOCK_ATTACK_SECONDS  per-attack wall-clock budget (strict double;
//                            trailing junk is rejected with a warning)
//   CUTELOCK_BENCH_SMALL=1   restrict suites to their small members
//   CUTELOCK_JOBS            worker threads for the bench::Runner (default:
//                            hardware_concurrency)
//   CUTELOCK_BENCH_STABLE=1  omit wall-clock durations from table cells so
//                            the rendered table is byte-identical across
//                            runs and thread counts (also forces the SAT
//                            portfolio off)
//   CUTELOCK_SAT_PORTFOLIO   diversified CDCL workers racing each solver
//                            call (default 1 = off)
//
// Full reference: docs/benchmarks.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "attack/result.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/fsm_suite.hpp"

namespace cl::bench {

/// CUTELOCK_ATTACK_SECONDS, or `fallback` when unset/invalid. Invalid values
/// (trailing junk, non-numeric, <= 0) warn on stderr once per call.
double attack_seconds(double fallback);

/// CUTELOCK_BENCH_SMALL=1: smoke-run profile.
bool small_run();

/// CUTELOCK_BENCH_STABLE=1: deterministic table cells (outcome only).
bool stable_cells();

/// Worker count for the Runner: CUTELOCK_JOBS, or hardware_concurrency when
/// unset. Invalid values warn on stderr and fall back; the result is >= 1.
std::size_t jobs_from_env();

/// BENCH_*.json emission toggle (CUTELOCK_BENCH_JSON=0 disables) and
/// directory (CUTELOCK_BENCH_JSON_DIR, default cwd) — shared by the Runner
/// and bench_micro_perf.
bool json_enabled();
std::string json_dir();

attack::AttackBudget table_budget(double seconds);

/// "outcome (time)" cell in the paper's style; outcome only under
/// CUTELOCK_BENCH_STABLE=1.
std::string attack_cell(const attack::AttackResult& r);

/// A bare duration cell, "-" under CUTELOCK_BENCH_STABLE=1.
std::string time_cell(double seconds);

/// The suite members selected for this run: everything, or only members at
/// or below the small-profile gate cutoff (1200) when CUTELOCK_BENCH_SMALL=1.
/// This retires the per-harness copy-pasted gate-count filters.
std::vector<benchgen::CircuitSpec> selected_circuits(
    const std::vector<benchgen::CircuitSpec>& suite);

/// Same for FSM suites: small profile keeps the "small" tier only.
std::vector<benchgen::FsmSpec> selected_fsms(
    const std::vector<benchgen::FsmSpec>& suite);

}  // namespace cl::bench
