// Shared helpers for the table/figure harnesses.
//
// Every harness honours CUTELOCK_ATTACK_SECONDS (per-attack wall-clock
// budget, default tuned so the whole bench suite finishes in minutes) and
// CUTELOCK_BENCH_SMALL=1 (restrict suites to their small members for smoke
// runs).
#pragma once

#include <cstdlib>
#include <string>

#include "attack/result.hpp"
#include "util/timer.hpp"

namespace cl::bench {

inline double attack_seconds(double fallback) {
  if (const char* env = std::getenv("CUTELOCK_ATTACK_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

inline bool small_run() {
  const char* env = std::getenv("CUTELOCK_BENCH_SMALL");
  return env != nullptr && env[0] == '1';
}

inline attack::AttackBudget table_budget(double seconds) {
  attack::AttackBudget b;
  b.time_limit_s = seconds;
  b.max_iterations = 500;
  b.max_depth = 24;
  b.conflict_budget = 4'000'000;
  return b;
}

/// "outcome (time)" cell in the paper's style.
inline std::string attack_cell(const attack::AttackResult& r) {
  return std::string(attack::outcome_label(r.outcome)) + " " +
         util::format_duration(r.seconds);
}

}  // namespace cl::bench
