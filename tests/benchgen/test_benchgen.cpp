#include <gtest/gtest.h>

#include "attack/dana.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/fsm_suite.hpp"
#include "benchgen/s27.hpp"
#include "fsm/synth.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace cl::benchgen {
namespace {

TEST(S27, MatchesPublishedInterface) {
  const auto nl = make_s27();
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.stats().gates, 10u);
}

TEST(Catalog, SpecsCoverPaperTables) {
  EXPECT_EQ(iscas89_specs().size(), 15u);  // 14 Table-IV rows + s27
  EXPECT_EQ(itc99_specs().size(), 20u);    // b01..b22 minus b13/b16
  EXPECT_NO_THROW(find_spec("b17"));
  EXPECT_NO_THROW(find_spec("s35932"));
  EXPECT_THROW(find_spec("b99"), std::invalid_argument);
}

TEST(Catalog, GeneratedCircuitsMatchSpecInterface) {
  for (const char* name : {"s298", "b01", "b06", "b10"}) {
    const CircuitSpec& spec = find_spec(name);
    const SyntheticCircuit c = make_circuit(spec);
    EXPECT_EQ(c.netlist.inputs().size(), spec.inputs) << name;
    EXPECT_EQ(c.netlist.outputs().size(), spec.outputs) << name;
    EXPECT_EQ(c.netlist.dffs().size(), spec.dffs) << name;
    // Gate counts approximate the target within a reasonable factor.
    const double ratio = static_cast<double>(c.netlist.stats().gates) /
                         static_cast<double>(spec.gates);
    EXPECT_GT(ratio, 0.4) << name << " gates=" << c.netlist.stats().gates;
    EXPECT_LT(ratio, 2.5) << name << " gates=" << c.netlist.stats().gates;
    c.netlist.check();
  }
}

TEST(Catalog, GenerationIsDeterministic) {
  const SyntheticCircuit a = make_circuit("b03");
  const SyntheticCircuit b = make_circuit("b03");
  EXPECT_EQ(a.netlist.size(), b.netlist.size());
  EXPECT_EQ(a.groups, b.groups);
}

TEST(Catalog, GroundTruthGroupsCoverAllDffs) {
  const SyntheticCircuit c = make_circuit("b04");
  std::size_t grouped = 0;
  for (const auto& g : c.groups) grouped += g.size();
  EXPECT_EQ(grouped, c.netlist.dffs().size());
}

TEST(Catalog, DanaScoresHighOnOriginals) {
  // The DANA baseline requirement (Table V): word-structured originals must
  // cluster well. Not all circuits reach NMI 1.0 (the original paper
  // reports 0.87-0.99); require a healthy score on a sample.
  double total = 0;
  int count = 0;
  for (const char* name : {"b03", "b04", "b10", "b12"}) {
    const SyntheticCircuit c = make_circuit(name);
    const attack::DanaResult r = attack::dana_attack(c.netlist);
    const double nmi = attack::nmi_score(c.netlist, r, c.groups);
    total += nmi;
    ++count;
    EXPECT_GT(nmi, 0.5) << name;
  }
  EXPECT_GT(total / count, 0.75);
}

TEST(Catalog, S27ViaCatalogIsExact) {
  const SyntheticCircuit c = make_circuit("s27");
  EXPECT_EQ(c.netlist.stats().gates, 10u);
  EXPECT_EQ(c.groups.size(), 3u);
}

TEST(Synthetic, RejectsDegenerateSpecs) {
  SyntheticSpec s;
  s.inputs = 0;
  EXPECT_THROW(make_synthetic(s, 1), std::invalid_argument);
}

TEST(Synthetic, CircuitsAreAlive) {
  // Outputs must respond to inputs (not constant) for the attack oracles to
  // be meaningful.
  const SyntheticCircuit c = make_circuit("b03");
  util::Rng rng(1);
  bool saw_zero = false, saw_one = false;
  for (int trial = 0; trial < 8; ++trial) {
    const auto stim = sim::random_stimulus(rng, 32, c.netlist.inputs().size());
    const auto out = sim::run_sequence(c.netlist, stim);
    for (const auto& cycle : out) {
      for (auto bit : cycle) {
        (bit ? saw_one : saw_zero) = true;
      }
    }
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_one);
}

TEST(FsmSuite, SpecsCoverTableThree) {
  EXPECT_EQ(synthezza_specs().size(), 33u);
  EXPECT_NO_THROW(find_fsm_spec("bcomp"));
  EXPECT_NO_THROW(find_fsm_spec("tiger"));
  EXPECT_THROW(find_fsm_spec("nope"), std::invalid_argument);
}

TEST(FsmSuite, MachinesAreWellFormedAndSized) {
  for (const char* name : {"bcomp", "dmac", "acdl", "absurd"}) {
    const FsmSpec& spec = find_fsm_spec(name);
    const fsm::Stg stg = make_fsm(spec);
    EXPECT_EQ(stg.num_states(), spec.states) << name;
    EXPECT_EQ(stg.num_inputs(), spec.inputs) << name;
    EXPECT_EQ(stg.num_outputs(), spec.outputs) << name;
    EXPECT_NO_THROW(stg.check()) << name;
    // Most states reachable (generator biases toward a connected ring).
    EXPECT_GT(stg.reachable_states().size(),
              static_cast<std::size_t>(spec.states / 2))
        << name;
  }
}

TEST(FsmSuite, BcompMatchesTableOneInterface) {
  // Table I shows x[7:0] inputs and y[38:0] outputs for bcomp.
  const FsmSpec& spec = find_fsm_spec("bcomp");
  EXPECT_EQ(spec.inputs, 8);
  EXPECT_EQ(spec.outputs, 39);
}

TEST(FsmSuite, MachinesSynthesizeAndSimulate) {
  const fsm::Stg stg = make_fsm(find_fsm_spec("dmac"));
  const auto nl = fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, "dmac");
  util::Rng rng(3);
  std::vector<std::uint32_t> minterms;
  std::vector<sim::BitVec> stim;
  for (int t = 0; t < 64; ++t) {
    const auto m = static_cast<std::uint32_t>(
        rng.next_below(1ULL << stg.num_inputs()));
    minterms.push_back(m);
    stim.push_back(sim::u64_to_bits(m, static_cast<std::size_t>(stg.num_inputs())));
  }
  const auto want = stg.run(minterms);
  const auto got = sim::run_sequence(nl, stim);
  for (std::size_t t = 0; t < stim.size(); ++t) {
    EXPECT_EQ(sim::bits_to_u64(got[t]), want[t].output) << "cycle " << t;
  }
}

TEST(FsmSuite, DeterministicGeneration) {
  const fsm::Stg a = make_fsm(find_fsm_spec("cat"));
  const fsm::Stg b = make_fsm(find_fsm_spec("cat"));
  EXPECT_EQ(a.num_transitions(), b.num_transitions());
}

}  // namespace
}  // namespace cl::benchgen
