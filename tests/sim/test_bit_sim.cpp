#include "sim/bit_sim.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::sim {
namespace {

using netlist::Netlist;
using netlist::SignalId;

TEST(BitSim, CombinationalGateSemantics) {
  Netlist nl("gates");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId and_g = nl.add_and(a, b, "and_g");
  const SignalId or_g = nl.add_or(a, b, "or_g");
  const SignalId xor_g = nl.add_xor(a, b, "xor_g");
  const SignalId nand_g = nl.add_gate(netlist::GateType::Nand, {a, b}, "nand_g");
  const SignalId nor_g = nl.add_gate(netlist::GateType::Nor, {a, b}, "nor_g");
  const SignalId xnor_g = nl.add_xnor(a, b, "xnor_g");
  const SignalId not_g = nl.add_not(a, "not_g");
  nl.add_output(and_g);

  BitSim sim(nl);
  // Lanes encode the 4 input combinations: a=0101..., b=0011...
  sim.set(a, 0b0101);
  sim.set(b, 0b0011);
  sim.eval();
  EXPECT_EQ(sim.get(and_g) & 0xf, 0b0001u);
  EXPECT_EQ(sim.get(or_g) & 0xf, 0b0111u);
  EXPECT_EQ(sim.get(xor_g) & 0xf, 0b0110u);
  EXPECT_EQ(sim.get(nand_g) & 0xf, 0b1110u);
  EXPECT_EQ(sim.get(nor_g) & 0xf, 0b1000u);
  EXPECT_EQ(sim.get(xnor_g) & 0xf, 0b1001u);
  EXPECT_EQ(sim.get(not_g) & 0xf, 0b1010u);
}

TEST(BitSim, MuxSelectsPerLane) {
  Netlist nl("mux");
  const SignalId s = nl.add_input("s");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId y = nl.add_mux(s, a, b, "y");
  nl.add_output(y);
  BitSim sim(nl);
  sim.set(s, 0b01);
  sim.set(a, 0b10);
  sim.set(b, 0b11);
  sim.eval();
  // lane0: s=1 -> b=1 ; lane1: s=0 -> a=1
  EXPECT_EQ(sim.get(y) & 0b11, 0b11u);
}

TEST(BitSim, ConstantsEvaluate) {
  Netlist nl("c");
  const SignalId one = nl.add_const(true, "one");
  const SignalId zero = nl.add_const(false, "zero");
  nl.add_output(one);
  BitSim sim(nl);
  sim.eval();
  EXPECT_EQ(sim.get(one), ~0ULL);
  EXPECT_EQ(sim.get(zero), 0ULL);
}

TEST(BitSim, MultiInputGates) {
  Netlist nl("multi");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId c = nl.add_input("c");
  const SignalId and3 = nl.add_gate(netlist::GateType::And, {a, b, c}, "and3");
  const SignalId xor3 = nl.add_gate(netlist::GateType::Xor, {a, b, c}, "xor3");
  nl.add_output(and3);
  BitSim sim(nl);
  sim.set(a, 0b1111'0000);  // lanes 4..7
  sim.set(b, 0b1100'1100);
  sim.set(c, 0b1010'1010);
  sim.eval();
  EXPECT_EQ(sim.get(and3) & 0xff, 0b1000'0000u);
  // xor3 = parity.
  EXPECT_EQ(sim.get(xor3) & 0xff, 0b1001'0110u);
}

TEST(BitSim, SequentialCounterSteps) {
  // 1-bit toggler: q <= ~q, init 0.
  Netlist nl("tog");
  SignalId q = nl.add_dff(netlist::k_no_signal, netlist::DffInit::Zero, "q");
  nl.set_dff_input(q, nl.add_not(q, "nq"));
  nl.add_output(q);
  BitSim sim(nl);
  std::vector<std::uint64_t> seen;
  for (int t = 0; t < 4; ++t) {
    sim.eval();
    seen.push_back(sim.get(q) & 1ULL);
    sim.step();
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{0, 1, 0, 1}));
}

TEST(BitSim, DffInitRespectedOnReset) {
  Netlist nl("init");
  const SignalId a = nl.add_input("a");
  const SignalId q1 = nl.add_dff(a, netlist::DffInit::One, "q1");
  const SignalId q0 = nl.add_dff(a, netlist::DffInit::Zero, "q0");
  nl.add_output(q1);
  BitSim sim(nl);
  EXPECT_EQ(sim.get(q1), ~0ULL);
  EXPECT_EQ(sim.get(q0), 0ULL);
  sim.set(a, 0);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.get(q1), 0ULL);
  sim.reset();
  EXPECT_EQ(sim.get(q1), ~0ULL);
}

TEST(BitSim, RegisterToRegisterShiftIsTwoPhase) {
  // Shift register: q2 <= q1, q1 <= a. A one-cycle pulse on `a` must take
  // exactly two steps to reach q2 (no shoot-through).
  Netlist nl("shift");
  const SignalId a = nl.add_input("a");
  const SignalId q1 = nl.add_dff(a, netlist::DffInit::Zero, "q1");
  const SignalId q2 = nl.add_dff(q1, netlist::DffInit::Zero, "q2");
  nl.add_output(q2);
  BitSim sim(nl);
  sim.set(a, ~0ULL);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.get(q1), ~0ULL);
  EXPECT_EQ(sim.get(q2), 0ULL);  // not yet
  sim.set(a, 0);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.get(q2), ~0ULL);
}

TEST(BitSim, SetRejectsNonInputs) {
  Netlist nl("x");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  BitSim sim(nl);
  EXPECT_THROW(sim.set(g, 1), std::invalid_argument);
}

TEST(BitSim, OutputsReadsLastEvalWithoutReEvaluating) {
  // outputs() is a pure reader: callers own eval(). A stale input must not
  // leak into outputs() until the caller evaluates.
  Netlist nl("out");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  BitSim sim(nl);
  sim.set(a, 0);
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], ~0ULL);
  sim.set(a, ~0ULL);  // no eval: outputs() must still report the old word
  EXPECT_EQ(sim.outputs()[0], ~0ULL);
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], 0ULL);
}

TEST(BitSim, OutputsDoesNotAdvanceToggleBookkeeping) {
  Netlist nl("tglout");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  BitSim sim(nl);
  sim.enable_toggle_counting(true);
  sim.set(a, 0);
  sim.eval();
  sim.set(a, ~0ULL);
  // Reading outputs repeatedly must not count the pending input flip.
  (void)sim.outputs();
  (void)sim.outputs();
  EXPECT_EQ(sim.toggle_counts()[g], 0u);
  sim.eval();
  EXPECT_EQ(sim.toggle_counts()[g], 64u);
}

TEST(BitSim, ToggleCountingCountsTransitions) {
  Netlist nl("tgl");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  BitSim sim(nl);
  sim.enable_toggle_counting(true);
  sim.set(a, 0);
  sim.eval();
  sim.set(a, ~0ULL);  // all 64 lanes flip
  sim.eval();
  EXPECT_EQ(sim.toggle_counts()[a], 64u);
  EXPECT_EQ(sim.toggle_counts()[g], 64u);
  sim.clear_toggles();
  EXPECT_EQ(sim.toggle_counts()[a], 0u);
}

}  // namespace
}  // namespace cl::sim
