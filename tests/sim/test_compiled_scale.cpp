// Scale regression: the mega catalog's syn1m compiles to >= 10^6
// combinational gates and simulates through the sharded level-parallel path
// with results bit-identical to the serial path. This is the compiled
// engine's reason to exist; keep it cheap (a handful of evals) so it stays
// inside the CI budget.
#include <gtest/gtest.h>

#include "benchgen/catalog.hpp"
#include "sim/compiled.hpp"
#include "sim/kernels.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cl::sim {
namespace {

using netlist::SignalId;

TEST(CompiledScale, MillionGateSuiteSimulatesThroughShardedPath) {
  const auto circuit = benchgen::make_circuit("syn1m");
  const auto stats = circuit.netlist.stats();
  ASSERT_GE(stats.gates, 1'000'000u);

  const CompiledNetlist compiled(circuit.netlist);
  EXPECT_EQ(compiled.num_gates(), stats.gates);
  EXPECT_GT(compiled.num_levels(), 1u);
  // syn1m must actually be above the default auto-shard threshold.
  EXPECT_GE(compiled.num_gates(), SimConfig{}.shard_threshold);

  util::ThreadPool pool(4);
  util::Rng rng(11);
  std::vector<std::uint64_t> serial(compiled.buffer_words(1), 0);
  std::vector<std::uint64_t> sharded(compiled.buffer_words(1), 0);
  compiled.reset_words(serial.data(), 1);
  compiled.reset_words(sharded.data(), 1);
  std::vector<std::uint64_t> scratch_a, scratch_b;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (SignalId i : compiled.inputs()) {
      const std::uint64_t w = rng.next_u64();
      serial[i] = w;
      sharded[i] = w;
    }
    compiled.eval(serial.data(), 1);
    compiled.eval_sharded(sharded.data(), 1, pool);
    for (SignalId o : compiled.outputs()) {
      ASSERT_EQ(serial[o], sharded[o]) << "cycle " << cycle;
    }
    ASSERT_EQ(serial, sharded) << "cycle " << cycle;
    compiled.step_words(serial.data(), 1, scratch_a);
    compiled.step_words(sharded.data(), 1, scratch_b);
  }
  // The outputs must be alive (not stuck) for the suite to be useful in
  // attack studies.
  bool saw_one = false;
  for (SignalId o : compiled.outputs()) saw_one |= serial[o] != 0;
  EXPECT_TRUE(saw_one);
}

TEST(CompiledScale, MillionGateWideLanesMatchForcedGenericKernels) {
  // The lanes=1 test above never leaves the scalar kernels (SIMD needs at
  // least one full register per signal), so rerun the sharded path at 4 lane
  // words — wide enough for the AVX tiers on hosts that have them — once
  // under the host's active tier and once with the generic kernels forced,
  // and require bit-identical buffers. On a generic-only host both runs take
  // the same kernels and the test degenerates to a determinism check.
  const auto circuit = benchgen::make_circuit("syn1m");
  const CompiledNetlist compiled(circuit.netlist);
  constexpr std::size_t kLanes = 4;

  util::ThreadPool pool(4);
  util::Rng rng(23);
  util::AlignedVec<std::uint64_t> active(compiled.buffer_words(kLanes), 0);
  util::AlignedVec<std::uint64_t> generic(compiled.buffer_words(kLanes), 0);
  compiled.reset_words(active.data(), kLanes);
  compiled.reset_words(generic.data(), kLanes);

  const util::SimIsa before = kernels::active_isa();
  util::AlignedVec<std::uint64_t> scratch_a, scratch_g;
  for (int cycle = 0; cycle < 2; ++cycle) {
    for (SignalId i : compiled.inputs()) {
      for (std::size_t w = 0; w < kLanes; ++w) {
        const std::uint64_t word = rng.next_u64();
        active[i * kLanes + w] = word;
        generic[i * kLanes + w] = word;
      }
    }
    ASSERT_TRUE(kernels::set_active_isa(before));
    compiled.eval_sharded(active.data(), kLanes, pool);
    compiled.step_words(active.data(), kLanes, scratch_a);
    ASSERT_TRUE(kernels::set_active_isa(util::SimIsa::Generic));
    compiled.eval_sharded(generic.data(), kLanes, pool);
    compiled.step_words(generic.data(), kLanes, scratch_g);
    ASSERT_TRUE(kernels::set_active_isa(before));
    // ASSERT_EQ would print millions of words on failure.
    ASSERT_TRUE(active == generic) << "buffers diverged at cycle " << cycle;
  }
}

TEST(CompiledScale, FullScaleB18B19Specs) {
  // Regression for the catalog lift: b18/b19 report full published scale
  // (previously generated at 1/4 and 1/8 gate count).
  const auto& b18 = benchgen::find_spec("b18");
  EXPECT_EQ(b18.gates, 114620u);
  EXPECT_EQ(b18.dffs, 3320u);
  const auto& b19 = benchgen::find_spec("b19");
  EXPECT_EQ(b19.gates, 231320u);
  EXPECT_EQ(b19.dffs, 6640u);

  // And the generator honours the lifted spec (interface exact, gate count
  // within the usual synthetic tolerance).
  const auto c = benchgen::make_circuit("b18");
  EXPECT_EQ(c.netlist.inputs().size(), b18.inputs);
  EXPECT_EQ(c.netlist.outputs().size(), b18.outputs);
  EXPECT_EQ(c.netlist.dffs().size(), b18.dffs);
  const double ratio = static_cast<double>(c.netlist.stats().gates) /
                       static_cast<double>(b18.gates);
  EXPECT_GT(ratio, 0.6);
  EXPECT_LT(ratio, 1.5);
}

TEST(CompiledScale, MegaSuiteSpecsResolvable) {
  EXPECT_EQ(benchgen::mega_specs().size(), 3u);
  EXPECT_NO_THROW(benchgen::find_spec("syn64k"));
  EXPECT_NO_THROW(benchgen::find_spec("syn256k"));
  EXPECT_NO_THROW(benchgen::find_spec("syn1m"));
}

}  // namespace
}  // namespace cl::sim
