#include "sim/sequence.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::sim {
namespace {

using netlist::Netlist;

// 2-bit counter with enable; output = (count == 3).
const char* k_counter = R"(
INPUT(en)
OUTPUT(hit)
q0 = DFF(d0)
q1 = DFF(d1)
nq0 = NOT(q0)
d0 = XOR(q0, en)
carry = AND(q0, en)
d1 = XOR(q1, carry)
hit = AND(q0, q1)
)";

TEST(Sequence, CounterCountsWhenEnabled) {
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  std::vector<BitVec> inputs(6, BitVec{1});
  const auto out = run_sequence(nl, inputs);
  ASSERT_EQ(out.size(), 6u);
  // count: 0,1,2,3,0,1 -> hit at cycle 3 only.
  for (std::size_t c = 0; c < 6; ++c) {
    EXPECT_EQ(out[c][0], c == 3 ? 1 : 0) << "cycle " << c;
  }
}

TEST(Sequence, DisabledCounterHolds) {
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  std::vector<BitVec> inputs(4, BitVec{0});
  const auto out = run_sequence(nl, inputs);
  for (const auto& cycle : out) EXPECT_EQ(cycle[0], 0);
}

TEST(Sequence, WidthValidation) {
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  EXPECT_THROW(run_sequence(nl, {BitVec{1, 0}}), std::invalid_argument);
}

TEST(Sequence, KeyedCircuitRequiresKeys) {
  const char* locked = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)";
  const Netlist nl = netlist::read_bench_string(locked, "l");
  EXPECT_THROW(run_sequence(nl, {BitVec{1}}), std::invalid_argument);
  // Static key (single entry) is broadcast.
  const auto out = run_sequence(nl, {BitVec{1}, BitVec{1}}, {BitVec{1}});
  EXPECT_EQ(out[0][0], 0);
  EXPECT_EQ(out[1][0], 0);
  // Per-cycle keys flip the output.
  const auto out2 = run_sequence(nl, {BitVec{1}, BitVec{1}}, {BitVec{1}, BitVec{0}});
  EXPECT_EQ(out2[0][0], 0);
  EXPECT_EQ(out2[1][0], 1);
}

TEST(Sequence, KeyedLanesMatchScalarRuns) {
  const char* locked = R"(
INPUT(a)
INPUT(keyinput0)
INPUT(keyinput1)
OUTPUT(y)
q = DFF(d)
d = XOR(a, keyinput0)
t = XOR(q, keyinput1)
y = NOT(t)
)";
  const Netlist nl = netlist::read_bench_string(locked, "l2");
  util::Rng rng(5);
  const auto inputs = random_stimulus(rng, 5, 1);
  // 4 candidate keys in lanes 0..3.
  std::vector<std::uint64_t> key_words(2, 0);
  const std::vector<BitVec> keys{{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  for (int lane = 0; lane < 4; ++lane) {
    if (keys[static_cast<std::size_t>(lane)][0]) key_words[0] |= 1ULL << lane;
    if (keys[static_cast<std::size_t>(lane)][1]) key_words[1] |= 1ULL << lane;
  }
  const auto lanes = run_sequence_keyed_lanes(nl, inputs, key_words);
  for (int lane = 0; lane < 4; ++lane) {
    const auto scalar = run_sequence(nl, inputs, {keys[static_cast<std::size_t>(lane)]});
    for (std::size_t c = 0; c < inputs.size(); ++c) {
      EXPECT_EQ((lanes[c][0] >> lane) & 1ULL, scalar[c][0])
          << "lane " << lane << " cycle " << c;
    }
  }
}

TEST(Sequence, FirstDivergenceFindsCycle) {
  std::vector<BitVec> a{{0}, {1}, {0}};
  std::vector<BitVec> b{{0}, {1}, {1}};
  EXPECT_EQ(first_divergence(a, a), -1);
  EXPECT_EQ(first_divergence(a, b), 2);
  std::vector<BitVec> c{{0}, {1}};
  EXPECT_THROW(first_divergence(a, c), std::invalid_argument);
}

TEST(Sequence, BitPackingRoundTrip) {
  const BitVec v{1, 0, 1, 1};
  EXPECT_EQ(bits_to_u64(v), 0b1101u);
  EXPECT_EQ(u64_to_bits(0b1101, 4), v);
  EXPECT_EQ(bits_to_string(v), "1011");
}

TEST(Sequence, RandomStimulusShape) {
  util::Rng rng(3);
  const auto s = random_stimulus(rng, 7, 3);
  EXPECT_EQ(s.size(), 7u);
  for (const auto& v : s) EXPECT_EQ(v.size(), 3u);
}

TEST(Sequence, XVariantShowsPowerUpX) {
  const char* seq = R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)  # init q x
)";
  const Netlist nl = netlist::read_bench_string(seq, "x");
  const auto out = run_sequence_x(nl, {BitVec{1}, BitVec{1}});
  EXPECT_EQ(out[0][0], Trit::X);
  EXPECT_EQ(out[1][0], Trit::One);
}

}  // namespace
}  // namespace cl::sim
