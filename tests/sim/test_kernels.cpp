// Randomized cross-check of the per-ISA simulation kernels: every Op code
// (including N-ary arities that exercise the fanin pool), every kernel tier
// available on the host, lane counts that hit full registers, scalar tails
// and sub-register widths, and deliberately misaligned buffers. The SIMD
// tiers are pure bitwise logic, so the contract is exact bit equality with
// the generic tier — any mismatch is a kernel bug, never tolerance.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "benchgen/catalog.hpp"
#include "sim/compiled.hpp"
#include "sim/kernels.hpp"
#include "util/aligned.hpp"
#include "util/cpu.hpp"
#include "util/rng.hpp"

namespace cl::sim {
namespace {

using kernels::EvalSpanFn;
using netlist::SignalId;
using util::SimIsa;

/// A hand-built instruction stream covering every opcode. Signals
/// [0, num_inputs) are free inputs; every instruction defines the next
/// signal, and the second half reads earlier instruction outputs so values
/// chain through the stream like a real levelized netlist.
struct Playground {
  static constexpr std::size_t num_inputs = 12;
  std::vector<Instr> instrs;
  std::vector<SignalId> pool;
  SignalId next = num_inputs;

  SignalId op1(Op op, std::uint32_t a) {
    instrs.push_back(Instr{next, a, 0, 0, op});
    return next++;
  }
  SignalId op2(Op op, std::uint32_t a, std::uint32_t b) {
    instrs.push_back(Instr{next, a, b, 0, op});
    return next++;
  }
  SignalId mux(std::uint32_t sel, std::uint32_t d0, std::uint32_t d1) {
    instrs.push_back(Instr{next, sel, d0, d1, Op::Mux});
    return next++;
  }
  SignalId opn(Op op, const std::vector<SignalId>& fanins) {
    const auto offset = static_cast<std::uint32_t>(pool.size());
    pool.insert(pool.end(), fanins.begin(), fanins.end());
    instrs.push_back(
        Instr{next, offset, static_cast<std::uint32_t>(fanins.size()), 0, op});
    return next++;
  }

  Playground() {
    // Layer 1: every opcode over raw inputs.
    const SignalId b = op1(Op::Buf, 0);
    const SignalId n = op1(Op::Not, 1);
    op2(Op::And2, 2, 3);
    op2(Op::Nand2, 4, 5);
    op2(Op::Or2, 6, 7);
    op2(Op::Nor2, 8, 9);
    op2(Op::Xor2, 10, 11);
    op2(Op::Xnor2, 0, 6);
    mux(1, 2, 3);
    const SignalId a2 = opn(Op::AndN, {0, 7});
    const SignalId x3 = opn(Op::XorN, {1, 4, 9});
    opn(Op::NandN, {2, 5, 8});
    opn(Op::OrN, {3, 6, 9, 0, 1});
    opn(Op::NorN, {0, 1, 2, 3, 4, 5, 6, 7, 8});
    opn(Op::XnorN, {10, 11, 0, 5, 7, 9, 2});
    // Layer 2: the same opcodes over layer-1 outputs, so lane words flow
    // through dependent instructions.
    op2(Op::Xor2, b, n);
    mux(a2, x3, b);
    opn(Op::XorN, {b, n, a2, x3});
    opn(Op::AndN, {n, a2, x3});
  }

  std::size_t num_signals() const { return next; }
};

/// Evaluate the playground with `fn` at `lanes` words per signal, the value
/// block starting `offset` words into a 64-byte-aligned allocation (offset 1
/// = deliberately misaligned base, legal because all kernel loads/stores are
/// unaligned ops). Returns the full value buffer.
std::vector<std::uint64_t> run_playground(const Playground& pg, EvalSpanFn fn,
                                          std::size_t lanes,
                                          std::size_t offset) {
  util::AlignedVec<std::uint64_t> buf(pg.num_signals() * lanes + offset, 0);
  std::uint64_t* v = buf.data() + offset;
  util::Rng rng(0xc0ffee);  // same stimulus for every tier
  for (std::size_t s = 0; s < Playground::num_inputs; ++s) {
    for (std::size_t w = 0; w < lanes; ++w) v[s * lanes + w] = rng.next_u64();
  }
  fn(pg.instrs.data(), pg.instrs.data() + pg.instrs.size(), pg.pool.data(), v,
     lanes);
  return {buf.begin(), buf.end()};
}

TEST(Kernels, GenericTierAlwaysPresent) {
  EXPECT_TRUE(kernels::compiled_in(SimIsa::Generic));
  EXPECT_TRUE(kernels::available(SimIsa::Generic));
  EXPECT_EQ(kernels::eval_span_for(1, SimIsa::Generic),
            &kernels::eval_span_generic);
}

TEST(Kernels, SimdTiersMatchGenericBitForBit) {
  const Playground pg;
  const struct {
    SimIsa isa;
    EvalSpanFn fn;
  } tiers[] = {
      {SimIsa::Avx2, &kernels::eval_span_avx2},
      {SimIsa::Avx512, &kernels::eval_span_avx512},
  };
  for (const auto& tier : tiers) {
    if (!kernels::available(tier.isa)) {
      GTEST_LOG_(INFO) << util::sim_isa_name(tier.isa)
                       << " not available on this host; skipping";
      continue;
    }
    // Widths below, at, above and straddling both register sizes.
    for (const std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 12u, 16u}) {
      for (const std::size_t offset : {0u, 1u}) {
        const auto want =
            run_playground(pg, &kernels::eval_span_generic, lanes, offset);
        const auto got = run_playground(pg, tier.fn, lanes, offset);
        EXPECT_EQ(want, got)
            << util::sim_isa_name(tier.isa) << " lanes=" << lanes
            << " offset=" << offset;
      }
    }
  }
}

TEST(Kernels, DispatchRefusesTiersWiderThanTheLaneBlock) {
  // A tier is only eligible when one full register fits the lane count;
  // anything narrower falls through to the next tier down.
  for (const std::size_t lanes : {1u, 2u, 3u}) {
    EXPECT_EQ(kernels::eval_span_for(lanes, SimIsa::Avx512),
              &kernels::eval_span_generic)
        << lanes;
  }
  if (kernels::available(SimIsa::Avx2)) {
    EXPECT_EQ(kernels::eval_span_for(4, SimIsa::Avx2),
              &kernels::eval_span_avx2);
    // 7 lane words cannot feed a 512-bit register, so even an AVX-512
    // request degrades to the 256-bit tier.
    EXPECT_EQ(kernels::eval_span_for(7, SimIsa::Avx512),
              &kernels::eval_span_avx2);
  }
  if (kernels::available(SimIsa::Avx512)) {
    EXPECT_EQ(kernels::eval_span_for(8, SimIsa::Avx512),
              &kernels::eval_span_avx512);
    EXPECT_EQ(kernels::eval_span_for(16, SimIsa::Avx512),
              &kernels::eval_span_avx512);
  }
}

TEST(Kernels, SetActiveIsaRejectsUnavailableTiers) {
  const SimIsa before = kernels::active_isa();
  EXPECT_TRUE(kernels::set_active_isa(SimIsa::Generic));
  EXPECT_EQ(kernels::active_isa(), SimIsa::Generic);
  for (const SimIsa isa : {SimIsa::Avx2, SimIsa::Avx512}) {
    if (kernels::available(isa)) {
      EXPECT_TRUE(kernels::set_active_isa(isa));
      EXPECT_EQ(kernels::active_isa(), isa);
    } else {
      EXPECT_FALSE(kernels::set_active_isa(isa));
      EXPECT_NE(kernels::active_isa(), isa);
    }
  }
  EXPECT_TRUE(kernels::set_active_isa(before));
}

TEST(Kernels, WideSimIdenticalAcrossTiersOnRealCircuit) {
  // End-to-end: a real benchmark circuit through WideSim under every
  // available tier produces byte-identical buffers, sequential state
  // included (3 eval/step cycles).
  const auto circuit = benchgen::make_circuit("s5378");
  const SimIsa before = kernels::active_isa();
  std::vector<std::vector<std::uint64_t>> per_tier;
  for (const SimIsa isa :
       {SimIsa::Generic, SimIsa::Avx2, SimIsa::Avx512}) {
    if (!kernels::available(isa)) continue;
    ASSERT_TRUE(kernels::set_active_isa(isa));
    SimConfig config;
    config.lanes = 16;
    WideSim simulator(circuit.netlist, config);
    util::Rng rng(99);
    std::vector<std::uint64_t> trace;
    for (int cycle = 0; cycle < 3; ++cycle) {
      for (SignalId i : circuit.netlist.inputs()) {
        for (std::size_t w = 0; w < 16; ++w) {
          simulator.set_word(i, w, rng.next_u64());
        }
      }
      simulator.eval();
      for (SignalId o : circuit.netlist.outputs()) {
        for (std::size_t w = 0; w < 16; ++w) {
          trace.push_back(simulator.get_word(o, w));
        }
      }
      simulator.step();
    }
    per_tier.push_back(std::move(trace));
  }
  ASSERT_TRUE(kernels::set_active_isa(before));
  for (std::size_t t = 1; t < per_tier.size(); ++t) {
    EXPECT_EQ(per_tier[0], per_tier[t]) << "tier index " << t;
  }
}

}  // namespace
}  // namespace cl::sim
