#include "sim/x_sim.hpp"

#include <gtest/gtest.h>

namespace cl::sim {
namespace {

using netlist::Netlist;
using netlist::SignalId;

TEST(Trit, KleeneConnectives) {
  EXPECT_EQ(trit_and(Trit::Zero, Trit::X), Trit::Zero);
  EXPECT_EQ(trit_and(Trit::One, Trit::X), Trit::X);
  EXPECT_EQ(trit_and(Trit::One, Trit::One), Trit::One);
  EXPECT_EQ(trit_or(Trit::One, Trit::X), Trit::One);
  EXPECT_EQ(trit_or(Trit::Zero, Trit::X), Trit::X);
  EXPECT_EQ(trit_xor(Trit::One, Trit::X), Trit::X);
  EXPECT_EQ(trit_xor(Trit::One, Trit::Zero), Trit::One);
  EXPECT_EQ(trit_not(Trit::X), Trit::X);
  EXPECT_EQ(trit_not(Trit::Zero), Trit::One);
}

TEST(Trit, MuxWithUnknownSelect) {
  // X select with agreeing data resolves; disagreeing stays X.
  EXPECT_EQ(trit_mux(Trit::X, Trit::One, Trit::One), Trit::One);
  EXPECT_EQ(trit_mux(Trit::X, Trit::Zero, Trit::One), Trit::X);
  EXPECT_EQ(trit_mux(Trit::Zero, Trit::One, Trit::Zero), Trit::One);
  EXPECT_EQ(trit_mux(Trit::One, Trit::One, Trit::Zero), Trit::Zero);
}

TEST(Trit, CharRendering) {
  EXPECT_EQ(trit_char(Trit::Zero), '0');
  EXPECT_EQ(trit_char(Trit::One), '1');
  EXPECT_EQ(trit_char(Trit::X), 'x');
}

TEST(XSim, PowerUpXPropagatesToOutput) {
  // q init X feeds output through a buffer: first cycle shows X, after one
  // clock with a known D the X clears.
  Netlist nl("x0");
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(a, netlist::DffInit::X, "q");
  nl.add_output(q);
  XSim sim(nl);
  sim.set(a, Trit::One);
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], Trit::X);
  sim.step();
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], Trit::One);
}

TEST(XSim, ControllingValuesMaskX) {
  Netlist nl("mask");
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(a, netlist::DffInit::X, "q");
  const SignalId g = nl.add_and(a, q, "g");
  const SignalId h = nl.add_or(a, q, "h");
  nl.add_output(g);
  nl.add_output(h);
  XSim sim(nl);
  sim.set(a, Trit::Zero);
  sim.eval();
  EXPECT_EQ(sim.get(g), Trit::Zero);  // 0 AND x = 0
  EXPECT_EQ(sim.get(h), Trit::X);     // 0 OR x = x
  sim.set(a, Trit::One);
  sim.eval();
  EXPECT_EQ(sim.get(g), Trit::X);     // 1 AND x = x
  EXPECT_EQ(sim.get(h), Trit::One);   // 1 OR x = 1
}

TEST(XSim, OutputsReadsLastEvalWithoutReEvaluating) {
  // Same contract as BitSim::outputs(): a pure reader, callers own eval().
  Netlist nl("outx");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  XSim sim(nl);
  sim.set(a, Trit::Zero);
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], Trit::One);
  sim.set(a, Trit::One);  // no eval: stale input must not leak through
  EXPECT_EQ(sim.outputs()[0], Trit::One);
  sim.eval();
  EXPECT_EQ(sim.outputs()[0], Trit::Zero);
}

TEST(XSim, ResetRestoresInit) {
  Netlist nl("r");
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(a, netlist::DffInit::One, "q");
  nl.add_output(q);
  XSim sim(nl);
  EXPECT_EQ(sim.get(q), Trit::One);
  sim.set(a, Trit::Zero);
  sim.eval();
  sim.step();
  EXPECT_EQ(sim.get(q), Trit::Zero);
  sim.reset();
  EXPECT_EQ(sim.get(q), Trit::One);
}

TEST(XSim, XnorNorNandOfX) {
  Netlist nl("inv");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId xnor_g = nl.add_xnor(a, b, "xnor_g");
  const SignalId nand_g = nl.add_gate(netlist::GateType::Nand, {a, b}, "nand_g");
  nl.add_output(xnor_g);
  XSim sim(nl);
  sim.set(a, Trit::X);
  sim.set(b, Trit::Zero);
  sim.eval();
  EXPECT_EQ(sim.get(xnor_g), Trit::X);
  EXPECT_EQ(sim.get(nand_g), Trit::One);  // NAND with a 0 input is 1
}

}  // namespace
}  // namespace cl::sim
