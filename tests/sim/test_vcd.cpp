#include "sim/vcd.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::sim {
namespace {

using netlist::Netlist;

const char* k_toggler = R"(
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
)";

TEST(Vcd, EmitsHeaderAndDefinitions) {
  const Netlist nl = netlist::read_bench_string(k_toggler, "tog");
  const std::string vcd =
      write_vcd_string(nl, {BitVec{1}, BitVec{1}, BitVec{0}});
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module tog $end"), std::string::npos);
  EXPECT_NE(vcd.find(" en $end"), std::string::npos);
  EXPECT_NE(vcd.find(" q $end"), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, TimestampsUseCyclePeriod) {
  const Netlist nl = netlist::read_bench_string(k_toggler, "tog");
  VcdOptions options;
  options.cycle_ns = 20;
  const std::string vcd =
      write_vcd_string(nl, {BitVec{1}, BitVec{1}}, {}, options);
  EXPECT_NE(vcd.find("#0\n"), std::string::npos);
  EXPECT_NE(vcd.find("#20\n"), std::string::npos);
  EXPECT_NE(vcd.find("#40\n"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumpedAfterFirstCycle) {
  const Netlist nl = netlist::read_bench_string(k_toggler, "tog");
  // en held at 0: q never changes, so cycles beyond the first dump nothing
  // for q's id. Count value-change lines.
  const std::string vcd =
      write_vcd_string(nl, {BitVec{0}, BitVec{0}, BitVec{0}});
  std::size_t changes = 0;
  for (std::size_t pos = 0; (pos = vcd.find("\n0", pos)) != std::string::npos;
       ++pos) {
    ++changes;
  }
  // First cycle dumps every signal once; later cycles dump nothing.
  EXPECT_LE(changes, nl.size() + 1);
}

TEST(Vcd, PowerUpXVisible) {
  const char* text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)  # init q x\n";
  const Netlist nl = netlist::read_bench_string(text, "x");
  const std::string vcd = write_vcd_string(nl, {BitVec{1}, BitVec{1}});
  EXPECT_NE(vcd.find("\nx"), std::string::npos);
}

TEST(Vcd, KeyedCircuitsAcceptSchedules) {
  const char* text = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)";
  const Netlist nl = netlist::read_bench_string(text, "k");
  const std::string vcd = write_vcd_string(
      nl, {BitVec{1}, BitVec{1}}, {BitVec{0}, BitVec{1}});
  EXPECT_NE(vcd.find(" keyinput0 $end"), std::string::npos);
}

}  // namespace
}  // namespace cl::sim
