// Randomized cross-checks of the compiled simulation engine against
// sim::ReferenceSim (the frozen pre-compilation evaluator): every GateType,
// DFF X-init, wide-lane widths W in {1, 4, 16}, sharded evaluation, and the
// sharding-threshold boundary.
#include "sim/compiled.hpp"

#include <gtest/gtest.h>

#include "sim/bit_sim.hpp"
#include "sim/reference_sim.hpp"
#include "sim/sequence.hpp"
#include "sim/x_sim.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cl::sim {
namespace {

using netlist::DffInit;
using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

/// Random sequential netlist exercising every GateType: sources (inputs,
/// key inputs, both constants), every combinational gate at arities 2..4
/// (plus Buf/Not/Mux), and DFFs with all three power-up inits.
Netlist random_netlist(util::Rng& rng, std::size_t gates) {
  Netlist nl("rand");
  std::vector<SignalId> sigs;
  for (int i = 0; i < 5; ++i) sigs.push_back(nl.add_input("pi" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) {
    sigs.push_back(nl.add_key_input("k" + std::to_string(i)));
  }
  sigs.push_back(nl.add_const(false, "c0"));
  sigs.push_back(nl.add_const(true, "c1"));
  std::vector<SignalId> dffs;
  constexpr DffInit inits[] = {DffInit::Zero, DffInit::One, DffInit::X};
  for (int i = 0; i < 6; ++i) {
    const SignalId q = nl.add_dff(netlist::k_no_signal, inits[i % 3],
                                  "q" + std::to_string(i));
    dffs.push_back(q);
    sigs.push_back(q);
  }
  constexpr GateType kinds[] = {GateType::Buf, GateType::Not, GateType::And,
                                GateType::Nand, GateType::Or, GateType::Nor,
                                GateType::Xor, GateType::Xnor, GateType::Mux};
  const auto pick = [&] { return sigs[rng.next_below(sigs.size())]; };
  for (std::size_t g = 0; g < gates; ++g) {
    const GateType t = kinds[g % std::size(kinds)];
    std::vector<SignalId> fanins;
    if (t == GateType::Buf || t == GateType::Not) {
      fanins = {pick()};
    } else if (t == GateType::Mux) {
      fanins = {pick(), pick(), pick()};
    } else {
      const std::size_t arity = 2 + rng.next_below(3);  // 2..4
      for (std::size_t f = 0; f < arity; ++f) fanins.push_back(pick());
    }
    sigs.push_back(nl.add_gate(t, fanins, nl.fresh_name("g")));
  }
  for (SignalId q : dffs) nl.set_dff_input(q, pick());
  for (int o = 0; o < 4; ++o) nl.add_output(pick());
  nl.check();
  return nl;
}

std::uint64_t rand_word(util::Rng& rng) { return rng.next_u64(); }

TEST(CompiledNetlist, MatchesReferenceOnRandomCircuits) {
  util::Rng rng(0xc0de);
  for (int trial = 0; trial < 12; ++trial) {
    const Netlist nl = random_netlist(rng, 40 + 20 * trial);
    ReferenceSim ref(nl);
    BitSim fast(nl);
    for (int cycle = 0; cycle < 6; ++cycle) {
      for (SignalId i : nl.inputs()) {
        const std::uint64_t w = rand_word(rng);
        ref.set(i, w);
        fast.set(i, w);
      }
      for (SignalId k : nl.key_inputs()) {
        const std::uint64_t w = rand_word(rng);
        ref.set(k, w);
        fast.set(k, w);
      }
      ref.eval();
      fast.eval();
      for (SignalId s = 0; s < nl.size(); ++s) {
        ASSERT_EQ(fast.get(s), ref.get(s))
            << "trial " << trial << " cycle " << cycle << " signal "
            << nl.signal_name(s);
      }
      ref.step();
      fast.step();
    }
  }
}

TEST(CompiledNetlist, WideLanesMatchPerWordReferenceRuns) {
  // W words per signal == W independent 64-lane simulations: word w of the
  // wide run must equal a separate ReferenceSim run driven with word w.
  util::Rng rng(0x31de);
  for (const std::size_t lane_words : {std::size_t{1}, std::size_t{4},
                                       std::size_t{16}}) {
    const Netlist nl = random_netlist(rng, 120);
    SimConfig config;
    config.lanes = lane_words;
    config.jobs = 1;
    WideSim wide(nl, config);
    std::vector<ReferenceSim> refs(lane_words, ReferenceSim(nl));
    for (int cycle = 0; cycle < 4; ++cycle) {
      for (SignalId s : nl.all_inputs()) {
        for (std::size_t w = 0; w < lane_words; ++w) {
          const std::uint64_t word = rand_word(rng);
          wide.set_word(s, w, word);
          refs[w].set(s, word);
        }
      }
      wide.eval();
      for (auto& r : refs) r.eval();
      for (SignalId s = 0; s < nl.size(); ++s) {
        for (std::size_t w = 0; w < lane_words; ++w) {
          ASSERT_EQ(wide.get_word(s, w), refs[w].get(s))
              << "W=" << lane_words << " word " << w << " signal "
              << nl.signal_name(s);
        }
      }
      wide.step();
      for (auto& r : refs) r.step();
    }
  }
}

TEST(CompiledNetlist, ShardedEvalIsBitIdenticalToSerial) {
  util::Rng rng(0x5a5a);
  util::ThreadPool pool(3);
  for (int trial = 0; trial < 6; ++trial) {
    const Netlist nl = random_netlist(rng, 150);
    const CompiledNetlist compiled(nl);
    const std::size_t lanes = 4;
    std::vector<std::uint64_t> serial(compiled.buffer_words(lanes), 0);
    std::vector<std::uint64_t> sharded(compiled.buffer_words(lanes), 0);
    compiled.reset_words(serial.data(), lanes);
    compiled.reset_words(sharded.data(), lanes);
    for (SignalId s : nl.all_inputs()) {
      for (std::size_t w = 0; w < lanes; ++w) {
        const std::uint64_t word = rand_word(rng);
        serial[s * lanes + w] = word;
        sharded[s * lanes + w] = word;
      }
    }
    compiled.eval(serial.data(), lanes);
    compiled.eval_sharded(sharded.data(), lanes, pool);
    EXPECT_EQ(serial, sharded) << "trial " << trial;
  }
}

TEST(CompiledNetlist, ShardThresholdBoundaryDoesNotChangeResults) {
  // BitSim shards iff gates >= threshold; results must agree on both sides
  // of the boundary.
  util::Rng rng(0x7007);
  const Netlist nl = random_netlist(rng, 200);
  const std::size_t gates = nl.stats().gates;
  SimConfig below;  // gates < threshold: serial path
  below.shard_threshold = gates + 1;
  below.jobs = 3;
  SimConfig at;     // gates >= threshold: sharded path
  at.shard_threshold = gates;
  at.jobs = 3;
  BitSim serial(nl, below);
  BitSim sharded(nl, at);
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (SignalId s : nl.all_inputs()) {
      const std::uint64_t w = rand_word(rng);
      serial.set(s, w);
      sharded.set(s, w);
    }
    serial.eval();
    sharded.eval();
    for (SignalId s = 0; s < nl.size(); ++s) {
      ASSERT_EQ(serial.get(s), sharded.get(s)) << nl.signal_name(s);
    }
    serial.step();
    sharded.step();
  }
}

TEST(CompiledNetlist, DffXInitIsZeroInWordSimAndXInXSim) {
  // The two-valued engines (Reference and compiled) treat X power-up as 0;
  // XSim preserves the X through the compiled instruction stream.
  Netlist nl("xinit");
  const SignalId a = nl.add_input("a");
  const SignalId qx = nl.add_dff(a, DffInit::X, "qx");
  const SignalId g = nl.add_gate(GateType::Buf, {qx}, "g");
  nl.add_output(g);
  BitSim fast(nl);
  ReferenceSim ref(nl);
  fast.eval();
  ref.eval();
  EXPECT_EQ(fast.get(g), 0ULL);
  EXPECT_EQ(ref.get(g), 0ULL);
  XSim xs(nl);
  xs.set(a, Trit::One);
  xs.eval();
  EXPECT_EQ(xs.get(g), Trit::X);
  xs.step();
  xs.eval();
  EXPECT_EQ(xs.get(g), Trit::One);
}

TEST(CompiledNetlist, XSimMatchesBitSimLaneZeroWhenFullyDefined) {
  // With all inputs driven and no X power-up, Kleene semantics collapse to
  // two-valued: XSim over the compiled stream must track BitSim lane 0.
  util::Rng rng(0xfade);
  for (int trial = 0; trial < 4; ++trial) {
    Netlist nl = random_netlist(rng, 100);
    for (SignalId d : nl.dffs()) {
      if (nl.dff_init(d) == DffInit::X) nl.set_dff_init(d, DffInit::Zero);
    }
    BitSim bits(nl);
    XSim xs(nl);
    for (int cycle = 0; cycle < 5; ++cycle) {
      for (SignalId s : nl.all_inputs()) {
        const bool bit = rng.chance(1, 2);
        bits.set(s, bit ? ~0ULL : 0ULL);
        xs.set(s, bit ? Trit::One : Trit::Zero);
      }
      bits.eval();
      xs.eval();
      for (SignalId s = 0; s < nl.size(); ++s) {
        const Trit want = (bits.get(s) & 1ULL) ? Trit::One : Trit::Zero;
        ASSERT_EQ(xs.get(s), want) << nl.signal_name(s);
      }
      bits.step();
      xs.step();
    }
  }
}

TEST(CompiledNetlist, BatchedSequencesMatchIndividualRuns) {
  util::Rng rng(0xbeef);
  // Batched runs serve the oracle, which is key-free: build a keyless
  // random sequential netlist.
  Netlist plain("plain");
  {
    std::vector<SignalId> sigs;
    for (int i = 0; i < 6; ++i) {
      sigs.push_back(plain.add_input("pi" + std::to_string(i)));
    }
    std::vector<SignalId> dffs;
    for (int i = 0; i < 4; ++i) {
      const SignalId q = plain.add_dff(netlist::k_no_signal,
                                       i % 2 ? DffInit::One : DffInit::Zero,
                                       "q" + std::to_string(i));
      dffs.push_back(q);
      sigs.push_back(q);
    }
    const auto pick = [&] { return sigs[rng.next_below(sigs.size())]; };
    for (int g = 0; g < 60; ++g) {
      sigs.push_back(plain.add_xor(pick(), pick(), plain.fresh_name("g")));
      sigs.push_back(plain.add_and(pick(), pick(), plain.fresh_name("g")));
    }
    for (SignalId q : dffs) plain.set_dff_input(q, pick());
    for (int o = 0; o < 3; ++o) plain.add_output(pick());
    plain.check();
  }
  const CompiledNetlist compiled(plain);
  // 70 sequences -> 2 lane words.
  std::vector<std::vector<BitVec>> seqs;
  for (int j = 0; j < 70; ++j) {
    seqs.push_back(random_stimulus(rng, 8, plain.inputs().size()));
  }
  const auto batched = run_sequences_batched(compiled, seqs);
  ASSERT_EQ(batched.size(), seqs.size());
  for (std::size_t j = 0; j < seqs.size(); ++j) {
    EXPECT_EQ(batched[j], run_sequence(compiled, seqs[j])) << "sequence " << j;
  }
}

}  // namespace
}  // namespace cl::sim
