#include "runner.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace cl::bench {
namespace {

/// Scoped environment override (restored on destruction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// ---- minimal JSON parser (validation only) ---------------------------------

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' ||
                                 text[pos] == '\t' || text[pos] == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool parse_string() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') ++pos;
      ++pos;
    }
    return eat('"');
  }
  bool parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      ++pos;
    }
    return pos > start;
  }
  bool parse_literal(const char* lit) {
    skip_ws();
    const std::size_t n = std::string(lit).size();
    if (text.compare(pos, n, lit) == 0) {
      pos += n;
      return true;
    }
    return false;
  }
  bool parse_value() {
    skip_ws();
    if (pos >= text.size()) return false;
    switch (text[pos]) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }
  bool parse_object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      if (!parse_string() || !eat(':') || !parse_value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool parse_array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      if (!parse_value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool valid_json_document(const std::string& text) {
  JsonCursor c{text};
  if (!c.parse_value()) return false;
  c.skip_ws();
  return c.pos == text.size();
}

// ---- Runner ----------------------------------------------------------------

TEST(Runner, CollectsResultsInRegistrationOrder) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("order");
  runner.set_threads(4);
  std::vector<int> slots(32, -1);
  for (int i = 0; i < 32; ++i) {
    runner.add({"suite", "c" + std::to_string(i), "probe", -1, -1},
               [&slots, i]() {
                 slots[static_cast<std::size_t>(i)] = i * i;
                 return JobOutcome{"ok", -1.0, static_cast<std::uint64_t>(i)};
               });
  }
  runner.run();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(slots[static_cast<std::size_t>(i)], i * i);
    EXPECT_EQ(runner.outcome(static_cast<std::size_t>(i)).iterations,
              static_cast<std::uint64_t>(i));
  }
}

TEST(Runner, SerialAndParallelProduceIdenticalResults) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  const auto run_with = [](std::size_t threads) {
    Runner runner("det");
    runner.set_threads(threads);
    std::vector<std::uint64_t> values(40, 0);
    for (std::size_t i = 0; i < values.size(); ++i) {
      runner.add({"s", "c" + std::to_string(i), "a", 2, 3}, [&values, i]() {
        // Deterministic per-job computation.
        std::uint64_t v = i + 1;
        for (int r = 0; r < 1000; ++r) v = v * 6364136223846793005ULL + 1442695040888963407ULL;
        values[i] = v;
        return JobOutcome{"ok", -1.0, v};
      });
    }
    runner.run();
    return values;
  };
  EXPECT_EQ(run_with(1), run_with(8));
}

TEST(Runner, AttackJobFillsCallerSlot) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("attack_slot");
  runner.set_threads(2);
  attack::AttackResult slot;
  runner.add_attack({"ISCAS'89", "s27", "KC2", 4, 2}, &slot, []() {
    attack::AttackResult r;
    r.outcome = attack::Outcome::Cns;
    r.seconds = 0.25;
    r.iterations = 17;
    return r;
  });
  runner.run();
  EXPECT_EQ(slot.outcome, attack::Outcome::Cns);
  EXPECT_EQ(runner.outcome(0).outcome, "CNS");
  EXPECT_DOUBLE_EQ(runner.outcome(0).seconds, 0.25);
  EXPECT_EQ(runner.outcome(0).iterations, 17u);
}

TEST(Runner, JobExceptionPropagatesFromRun) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("boom");
  runner.set_threads(2);
  runner.add({"s", "c", "a", -1, -1},
             []() -> JobOutcome { throw std::runtime_error("job died"); });
  EXPECT_THROW(runner.run(), std::runtime_error);
}

TEST(Runner, JsonDocumentIsValidAndCarriesTheSchema) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("schema_check");
  runner.set_threads(1);
  runner.add({"ITC'99", "b10\"quoted\"", "INT", 4, 11},
             []() { return JobOutcome{"CNS", 1.5, 42}; });
  runner.add({"-", "freeform", "overhead", -1, -1},
             []() { return JobOutcome{"12.5", -1.0, 0}; });
  runner.run();
  const std::string doc = runner.json();
  EXPECT_TRUE(valid_json_document(doc)) << doc;
  EXPECT_NE(doc.find("\"harness\": \"schema_check\""), std::string::npos);
  EXPECT_NE(doc.find("\"threads\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"suite\": \"ITC'99\""), std::string::npos);
  EXPECT_NE(doc.find("\"circuit\": \"b10\\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"k\": 4"), std::string::npos);
  EXPECT_NE(doc.find("\"ki\": 11"), std::string::npos);
  EXPECT_NE(doc.find("\"outcome\": \"CNS\""), std::string::npos);
  EXPECT_NE(doc.find("\"iterations\": 42"), std::string::npos);
  // k/ki omitted when not applicable.
  EXPECT_EQ(doc.find("\"k\": -1"), std::string::npos);
}

TEST(Runner, NonFiniteSecondsAreSanitizedInJson) {
  // nan/inf are not JSON; a single crashed timer must not poison the whole
  // baseline document for every downstream consumer.
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("nonfinite");
  runner.set_threads(1);
  runner.add({"s", "bad_timer_a", "x", -1, -1},
             []() { return JobOutcome{"ok", 0.0 / 0.0, 3}; });
  runner.add({"s", "bad_timer_b", "x", -1, -1},
             []() { return JobOutcome{"ok", 1.0 / 0.0, 4}; });
  runner.run();
  const std::string doc = runner.json();
  EXPECT_TRUE(valid_json_document(doc)) << doc;
  EXPECT_EQ(doc.find("nan"), std::string::npos) << doc;
  EXPECT_EQ(doc.find("inf"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"seconds\": 0"), std::string::npos) << doc;
}

TEST(Runner, WritesBaselineFileIntoConfiguredDirectory) {
  const std::string dir = ::testing::TempDir();
  ScopedEnv json_dir("CUTELOCK_BENCH_JSON_DIR", dir.c_str());
  ScopedEnv json_on("CUTELOCK_BENCH_JSON", nullptr);
  Runner runner("file_emit");
  runner.set_threads(1);
  runner.add({"s", "c", "a", 2, 2}, []() { return JobOutcome{"ok", -1.0, 1}; });
  runner.run();
  std::ifstream in(runner.json_path());
  ASSERT_TRUE(in.good()) << runner.json_path();
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(valid_json_document(buffer.str()));
  EXPECT_EQ(buffer.str(), runner.json());
}

TEST(Runner, JsonDisabledByEnv) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("disabled");
  EXPECT_TRUE(runner.json_path().empty());
}

TEST(Runner, RunIsSingleShot) {
  ScopedEnv no_json("CUTELOCK_BENCH_JSON", "0");
  Runner runner("once");
  runner.set_threads(1);
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
  EXPECT_THROW(runner.add({"s", "c", "a", -1, -1},
                          []() { return JobOutcome{}; }),
               std::logic_error);
}

// ---- env parsing ------------------------------------------------------------

TEST(BenchEnv, AttackSecondsStrictParse) {
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "2.5");
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 2.5);
  }
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "2s");  // atof would read 2
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "abc");
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "-3");
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
  {
    // Non-finite budgets would overflow Solver::set_time_budget's
    // duration_cast; rejected like any other invalid value.
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "inf");
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", "nan");
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
  {
    ScopedEnv env("CUTELOCK_ATTACK_SECONDS", nullptr);
    EXPECT_DOUBLE_EQ(attack_seconds(9.0), 9.0);
  }
}

TEST(BenchEnv, JobsStrictParse) {
  {
    ScopedEnv env("CUTELOCK_JOBS", "3");
    EXPECT_EQ(jobs_from_env(), 3u);
  }
  {
    ScopedEnv env("CUTELOCK_JOBS", "4x");
    EXPECT_GE(jobs_from_env(), 1u);  // falls back to hardware_concurrency
  }
  {
    ScopedEnv env("CUTELOCK_JOBS", "0");
    EXPECT_GE(jobs_from_env(), 1u);
  }
  {
    ScopedEnv env("CUTELOCK_JOBS", "1");
    Runner runner("env_threads");
    EXPECT_EQ(runner.threads(), 1u);
  }
}

TEST(BenchEnv, StableCellsDropDurations) {
  attack::AttackResult r;
  r.outcome = attack::Outcome::Cns;
  r.seconds = 1.25;
  {
    ScopedEnv env("CUTELOCK_BENCH_STABLE", "1");
    EXPECT_EQ(attack_cell(r), "CNS");
    EXPECT_EQ(time_cell(3.0), "-");
  }
  {
    ScopedEnv env("CUTELOCK_BENCH_STABLE", nullptr);
    EXPECT_EQ(attack_cell(r), "CNS 1.250s");
    EXPECT_EQ(time_cell(3.0), "3.000s");
  }
}

TEST(BenchEnv, SmallProfileFiltersSuites) {
  {
    ScopedEnv env("CUTELOCK_BENCH_SMALL", "1");
    for (const auto& spec : selected_circuits(benchgen::iscas89_specs())) {
      EXPECT_LE(spec.gates, 1200u) << spec.name;
    }
    for (const auto& spec : selected_fsms(benchgen::synthezza_specs())) {
      EXPECT_STREQ(spec.tier, "small") << spec.name;
    }
  }
  {
    ScopedEnv env("CUTELOCK_BENCH_SMALL", nullptr);
    EXPECT_EQ(selected_circuits(benchgen::iscas89_specs()).size(),
              benchgen::iscas89_specs().size());
    EXPECT_EQ(selected_fsms(benchgen::synthezza_specs()).size(),
              benchgen::synthezza_specs().size());
  }
}

}  // namespace
}  // namespace cl::bench
