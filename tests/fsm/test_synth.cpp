#include "fsm/synth.hpp"

#include <gtest/gtest.h>

#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace cl::fsm {
namespace {

/// Random deterministic Mealy machine for property tests.
Stg random_stg(util::Rng& rng, int states, int inputs, int outputs) {
  Stg stg(inputs, outputs);
  for (int s = 0; s < states; ++s) stg.add_state("S" + std::to_string(s));
  stg.set_initial(0);
  // Full-cover transitions: one per input minterm (grouped randomly is
  // harder to keep disjoint; minterm granularity is always safe).
  for (int s = 0; s < states; ++s) {
    for (std::uint32_t m = 0; m < (1u << inputs); ++m) {
      if (rng.chance(1, 5)) continue;  // leave some holes to exercise holds
      const int to = static_cast<int>(rng.next_below(states));
      const std::uint64_t out = rng.next_below(1ULL << outputs);
      stg.add_transition(s, logic::Cube::minterm(m, inputs), to, out);
    }
  }
  return stg;
}

/// Compare netlist behaviour against the STG reference over random runs.
void check_equivalence(const Stg& stg, const netlist::Netlist& nl,
                       util::Rng& rng, int cycles) {
  ASSERT_EQ(nl.inputs().size(), static_cast<std::size_t>(stg.num_inputs()));
  ASSERT_EQ(nl.outputs().size(), static_cast<std::size_t>(stg.num_outputs()));
  std::vector<std::uint32_t> minterms;
  std::vector<sim::BitVec> stim;
  for (int c = 0; c < cycles; ++c) {
    const std::uint32_t m =
        static_cast<std::uint32_t>(rng.next_below(1ULL << stg.num_inputs()));
    minterms.push_back(m);
    stim.push_back(sim::u64_to_bits(m, static_cast<std::size_t>(stg.num_inputs())));
  }
  const auto expected = stg.run(minterms);
  const auto got = sim::run_sequence(nl, stim);
  for (int c = 0; c < cycles; ++c) {
    const std::uint64_t got_bits =
        sim::bits_to_u64(got[static_cast<std::size_t>(c)]);
    EXPECT_EQ(got_bits, expected[static_cast<std::size_t>(c)].output)
        << "cycle " << c;
  }
}

TEST(Synth, StateBitsCeilLog) {
  Stg one(1, 1);
  one.add_state("A");
  EXPECT_EQ(state_bits(one), 1);
  Stg five(1, 1);
  for (int i = 0; i < 5; ++i) five.add_state("S" + std::to_string(i));
  EXPECT_EQ(state_bits(five), 3);
}

TEST(Synth, DetectorDirectMatchesStg) {
  const Stg stg = make_1001_detector();
  const auto nl = synthesize(stg, SynthStyle::DirectTransitions, "det");
  util::Rng rng(1);
  check_equivalence(stg, nl, rng, 200);
}

TEST(Synth, DetectorMinimizedMatchesStg) {
  const Stg stg = make_1001_detector();
  const auto nl = synthesize(stg, SynthStyle::TwoLevelMinimized, "det");
  util::Rng rng(2);
  check_equivalence(stg, nl, rng, 200);
}

TEST(Synth, MinimizedIsSmallerForSmallMachines) {
  const Stg stg = make_1001_detector();
  const auto direct = synthesize(stg, SynthStyle::DirectTransitions, "d");
  const auto mini = synthesize(stg, SynthStyle::TwoLevelMinimized, "m");
  EXPECT_LE(mini.stats().gates, direct.stats().gates);
}

TEST(Synth, NonZeroInitialStateEncodedInDffInit) {
  Stg stg(1, 1);
  stg.add_state("A");
  stg.add_state("B");
  stg.add_state("C");
  stg.set_initial(2);  // code 10
  stg.add_transition(2, logic::Cube::parse("-"), 0, 1);
  const auto nl = synthesize(stg, SynthStyle::DirectTransitions, "init");
  ASSERT_EQ(nl.dffs().size(), 2u);
  EXPECT_EQ(nl.dff_init(nl.find("state0")), netlist::DffInit::Zero);
  EXPECT_EQ(nl.dff_init(nl.find("state1")), netlist::DffInit::One);
}

class SynthProperty : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(SynthProperty, RandomMachinesMatchReference) {
  const auto [states, inputs, outputs, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const Stg stg = random_stg(rng, states, inputs, outputs);
  const auto direct = synthesize(stg, SynthStyle::DirectTransitions, "d");
  check_equivalence(stg, direct, rng, 100);
  if (state_bits(stg) + inputs <= 10) {
    const auto mini = synthesize(stg, SynthStyle::TwoLevelMinimized, "m");
    check_equivalence(stg, mini, rng, 100);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SynthProperty,
    ::testing::Values(std::make_tuple(2, 1, 1, 10), std::make_tuple(4, 2, 2, 11),
                      std::make_tuple(5, 2, 3, 12), std::make_tuple(8, 3, 2, 13),
                      std::make_tuple(13, 2, 4, 14), std::make_tuple(16, 4, 1, 15),
                      std::make_tuple(23, 3, 5, 16), std::make_tuple(32, 2, 8, 17)));

TEST(Synth, ComposableLogicRespectsWidthChecks) {
  const Stg stg = make_1001_detector();
  netlist::Netlist nl("x");
  const auto a = nl.add_input("a");
  EXPECT_THROW(
      build_transition_logic(nl, stg, {a}, {a}, SynthStyle::DirectTransitions, "p"),
      std::invalid_argument);
}

TEST(Synth, MinimizedRefusesHugeMachines) {
  Stg big(10, 1);  // 10 inputs + state bits > 16 triggers the guard
  for (int i = 0; i < 200; ++i) big.add_state("S" + std::to_string(i));
  big.set_initial(0);
  big.add_transition(0, logic::Cube::minterm(0, 10), 1, 1);
  EXPECT_THROW(synthesize(big, SynthStyle::TwoLevelMinimized, "big"),
               std::invalid_argument);
}

}  // namespace
}  // namespace cl::fsm
