#include "fsm/stg.hpp"

#include <gtest/gtest.h>

namespace cl::fsm {
namespace {

TEST(Stg, DetectorRecognizes1001) {
  const Stg stg = make_1001_detector();
  EXPECT_EQ(stg.num_states(), 4);
  EXPECT_EQ(stg.num_inputs(), 1);
  // Feed 1 0 0 1 0 0 1 : matches at step 3 (0-based) and step 6 (overlap
  // handling: after detection we are in S1 with "1" matched; 0 0 1 completes
  // again).
  const std::vector<std::uint32_t> seq{1, 0, 0, 1, 0, 0, 1};
  const auto run = stg.run(seq);
  std::vector<int> detected;
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (run[i].output) detected.push_back(static_cast<int>(i));
  }
  EXPECT_EQ(detected, (std::vector<int>{3, 6}));
}

TEST(Stg, DetectorRejectsNonMatches) {
  const Stg stg = make_1001_detector();
  const std::vector<std::uint32_t> seq{1, 1, 1, 0, 1, 1, 0, 0, 0, 1};
  const auto run = stg.run(seq);
  // 1001 appears at positions ending index 9? sequence: 1110110001
  //   suffixes: ...1 0 0 0 1 -> the last four are 0001, no. Let's trust the
  //   reference implementation cross-check below instead.
  int state = 0;
  std::string window;
  for (std::size_t i = 0; i < seq.size(); ++i) {
    window += seq[i] ? '1' : '0';
    const bool expect_hit =
        window.size() >= 4 && window.substr(window.size() - 4) == "1001";
    EXPECT_EQ(run[i].output != 0, expect_hit) << "step " << i;
    state = run[i].next_state;
  }
  (void)state;
}

TEST(Stg, HoldSemanticsWhenNoCubeMatches) {
  Stg stg(2, 1);
  const int a = stg.add_state("A");
  const int b = stg.add_state("B");
  stg.set_initial(a);
  stg.add_transition(a, logic::Cube::parse("11"), b, 1);
  // Input 00 matches nothing: hold in A with output 0.
  const auto r = stg.step(a, 0b00);
  EXPECT_EQ(r.next_state, a);
  EXPECT_EQ(r.output, 0u);
  const auto r2 = stg.step(a, 0b11);
  EXPECT_EQ(r2.next_state, b);
  EXPECT_EQ(r2.output, 1u);
}

TEST(Stg, OverlappingCubesRejected) {
  Stg stg(2, 1);
  const int a = stg.add_state("A");
  stg.add_transition(a, logic::Cube::parse("1-"), a, 0);
  EXPECT_THROW(stg.add_transition(a, logic::Cube::parse("11"), a, 1),
               std::invalid_argument);
  // Disjoint cube is fine.
  EXPECT_NO_THROW(stg.add_transition(a, logic::Cube::parse("01"), a, 1));
}

TEST(Stg, DuplicateStateNamesRejected) {
  Stg stg(1, 1);
  stg.add_state("A");
  EXPECT_THROW(stg.add_state("A"), std::invalid_argument);
}

TEST(Stg, ReachabilityIgnoresOrphans) {
  Stg stg(1, 1);
  const int a = stg.add_state("A");
  const int b = stg.add_state("B");
  stg.add_state("orphan");
  stg.set_initial(a);
  stg.add_transition(a, logic::Cube::parse("1"), b, 0);
  const auto reach = stg.reachable_states();
  EXPECT_EQ(reach.size(), 2u);
}

TEST(Stg, CheckCatchesWideOutput) {
  Stg stg(1, 1);
  const int a = stg.add_state("A");
  stg.set_initial(a);
  stg.add_transition(a, logic::Cube::parse("1"), a, 0b10);  // 2 bits, .o 1
  EXPECT_THROW(stg.check(), std::logic_error);
}

TEST(Stg, TransitionCounting) {
  const Stg stg = make_1001_detector();
  EXPECT_EQ(stg.num_transitions(), 8u);
}

}  // namespace
}  // namespace cl::fsm
