#include "fsm/kiss_io.hpp"

#include <gtest/gtest.h>

namespace cl::fsm {
namespace {

const char* k_toy = R"(
.i 2
.o 1
.s 2
.r OFF
11 OFF ON 1
0- ON OFF 0
)";

TEST(KissIo, ParsesDirectivesAndRows) {
  const Stg stg = read_kiss_string(k_toy);
  EXPECT_EQ(stg.num_inputs(), 2);
  EXPECT_EQ(stg.num_outputs(), 1);
  EXPECT_EQ(stg.num_states(), 2);
  EXPECT_EQ(stg.state_name(stg.initial()), "OFF");
  EXPECT_EQ(stg.num_transitions(), 2u);
}

TEST(KissIo, RoundTripPreservesBehaviour) {
  const Stg a = read_kiss_string(k_toy);
  const Stg b = read_kiss_string(write_kiss_string(a));
  EXPECT_EQ(a.num_states(), b.num_states());
  // Behavioural equality over all inputs from each state.
  for (int s = 0; s < a.num_states(); ++s) {
    const int bs = b.find_state(a.state_name(s));
    ASSERT_GE(bs, 0);
    for (std::uint32_t m = 0; m < 4; ++m) {
      const auto ra = a.step(s, m);
      const auto rb = b.step(bs, m);
      EXPECT_EQ(ra.output, rb.output);
      EXPECT_EQ(b.state_name(rb.next_state), a.state_name(ra.next_state));
    }
  }
}

TEST(KissIo, DetectorRoundTrip) {
  const Stg a = make_1001_detector();
  const Stg b = read_kiss_string(write_kiss_string(a));
  const std::vector<std::uint32_t> seq{1, 0, 0, 1, 1, 0, 0, 1};
  const auto ra = a.run(seq);
  const auto rb = b.run(seq);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(ra[i].output, rb[i].output) << i;
  }
}

TEST(KissIo, MissingHeaderRejected) {
  EXPECT_THROW(read_kiss_string("11 A B 1\n"), std::runtime_error);
}

TEST(KissIo, WidthMismatchesRejected) {
  EXPECT_THROW(read_kiss_string(".i 2\n.o 1\n111 A B 1\n"), std::runtime_error);
  EXPECT_THROW(read_kiss_string(".i 2\n.o 1\n11 A B 11\n"), std::runtime_error);
}

TEST(KissIo, UnknownResetStateRejected) {
  EXPECT_THROW(read_kiss_string(".i 1\n.o 1\n.r GHOST\n1 A B 1\n"),
               std::runtime_error);
}

TEST(KissIo, DontCareOutputsReadAsZero) {
  const Stg stg = read_kiss_string(".i 1\n.o 2\n1 A B -1\n");
  const auto r = stg.step(stg.find_state("A"), 1);
  EXPECT_EQ(r.output, 0b10u);
}

}  // namespace
}  // namespace cl::fsm
