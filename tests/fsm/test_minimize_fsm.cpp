#include "fsm/minimize_fsm.hpp"

#include <gtest/gtest.h>

#include "benchgen/fsm_suite.hpp"
#include "util/rng.hpp"

namespace cl::fsm {
namespace {

/// Behavioural equivalence over random input sequences.
void expect_equivalent(const Stg& a, const Stg& b, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> inputs;
  for (int t = 0; t < 300; ++t) {
    inputs.push_back(static_cast<std::uint32_t>(
        rng.next_below(1ULL << a.num_inputs())));
  }
  const auto ra = a.run(inputs);
  const auto rb = b.run(inputs);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    ASSERT_EQ(ra[t].output, rb[t].output) << "cycle " << t;
  }
}

TEST(MinimizeFsm, DetectorIsAlreadyMinimal) {
  const Stg stg = make_1001_detector();
  EXPECT_EQ(count_distinct_states(stg), 4);
  const Stg min = minimize_states(stg);
  EXPECT_EQ(min.num_states(), 4);
  expect_equivalent(stg, min, 1);
}

TEST(MinimizeFsm, MergesDuplicatedStates) {
  // Build a machine with two behaviourally identical states B1/B2.
  Stg stg(1, 1);
  const int a = stg.add_state("A");
  const int b1 = stg.add_state("B1");
  const int b2 = stg.add_state("B2");
  stg.set_initial(a);
  const auto c0 = logic::Cube::parse("0");
  const auto c1 = logic::Cube::parse("1");
  stg.add_transition(a, c0, b1, 0);
  stg.add_transition(a, c1, b2, 0);
  stg.add_transition(b1, c0, a, 1);
  stg.add_transition(b1, c1, b1, 0);
  stg.add_transition(b2, c0, a, 1);
  stg.add_transition(b2, c1, b2, 0);
  EXPECT_EQ(count_distinct_states(stg), 2);
  const Stg min = minimize_states(stg);
  EXPECT_EQ(min.num_states(), 2);
  expect_equivalent(stg, min, 2);
}

TEST(MinimizeFsm, DistinguishesByDeepBehaviour) {
  // Two states with identical outputs but successors that diverge two steps
  // later must NOT merge.
  Stg stg(1, 1);
  for (int i = 0; i < 4; ++i) stg.add_state("S" + std::to_string(i));
  stg.set_initial(0);
  const auto any = logic::Cube::parse("-");
  stg.add_transition(0, any, 1, 0);
  stg.add_transition(1, any, 2, 0);
  stg.add_transition(2, any, 3, 0);
  stg.add_transition(3, any, 0, 1);  // only S3 emits
  EXPECT_EQ(count_distinct_states(stg), 4);
}

TEST(MinimizeFsm, SuiteMachinesStayEquivalent) {
  for (const char* name : {"dmac", "cat", "e17"}) {
    const Stg stg = benchgen::make_fsm(benchgen::find_fsm_spec(name));
    const Stg min = minimize_states(stg);
    EXPECT_LE(min.num_states(), stg.num_states()) << name;
    expect_equivalent(stg, min, 3);
  }
}

TEST(MinimizeFsm, RefusesHugeInputSpaces) {
  Stg wide(11, 1);
  wide.add_state("A");
  EXPECT_THROW(count_distinct_states(wide), std::invalid_argument);
}

}  // namespace
}  // namespace cl::fsm
