// Preprocessing (BVE + model reconstruction), inprocessing, and arena-GC
// coverage: every verdict is cross-checked against an unpreprocessed solver
// or a brute-force oracle, and every reconstructed model is checked against
// the ORIGINAL clause set (not the reduced one the solver searched).
#include "sat/preprocess.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cnf_test_util.hpp"
#include "sat/portfolio.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cl::sat {
namespace {

/// Does the solver's model satisfy every clause of a signed-int CNF?
bool model_satisfies(const Solver& s, const std::vector<std::vector<int>>& cnf,
                     const std::vector<Var>& vars) {
  for (const auto& clause : cnf) {
    bool any = false;
    for (int l : clause) {
      const Var v = vars[static_cast<std::size_t>(std::abs(l) - 1)];
      if (s.model_value(v) == (l > 0)) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  return true;
}

TEST(Preprocess, PureLiteralEliminated) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  // `a` occurs only positively; `c` occurs only negatively.
  s.add_clause({pos(a), pos(b)});
  s.add_clause({pos(a), neg(b), neg(c)});
  EXPECT_TRUE(s.preprocess());
  EXPECT_GE(s.stats().vars_eliminated, 2u);
  EXPECT_TRUE(s.eliminated(a));
  ASSERT_EQ(s.solve(), Result::Sat);
  // Reconstructed values must satisfy the original clauses.
  EXPECT_TRUE(s.model_value(a) || s.model_value(b));
  EXPECT_TRUE(s.model_value(a) || !s.model_value(b) || !s.model_value(c));
}

TEST(Preprocess, FrozenVariablesSurvive) {
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < 8; ++i) vars.push_back(s.new_var());
  util::Rng rng(3);
  const auto cnf = test_util::random_cnf(rng, 8, 20);
  test_util::load_cnf(s, cnf, vars);
  for (const Var v : vars) s.set_frozen(v, true);
  EXPECT_TRUE(s.preprocess());
  EXPECT_EQ(s.stats().vars_eliminated, 0u);
  for (const Var v : vars) EXPECT_FALSE(s.eliminated(v));
}

TEST(Preprocess, RandomizedBveMatchesUnpreprocessed) {
  // Same CNF into a plain solver and a preprocessed one: identical verdict,
  // and the preprocessed solver's reconstructed model satisfies every
  // original clause. Densities straddle the 3-SAT phase transition so both
  // verdicts appear.
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng(seed);
    const int nv = 16;
    const int nc = 40 + static_cast<int>(seed % 50);
    const auto cnf = test_util::random_cnf(rng, nv, nc);

    Solver plain;
    std::vector<Var> pv;
    for (int i = 0; i < nv; ++i) pv.push_back(plain.new_var());
    test_util::load_cnf(plain, cnf, pv);
    const Result expect = plain.solve();

    Solver pre;
    std::vector<Var> qv;
    for (int i = 0; i < nv; ++i) qv.push_back(pre.new_var());
    test_util::load_cnf(pre, cnf, qv);
    pre.preprocess();
    const Result got = pre.solve();
    EXPECT_EQ(got, expect) << "seed " << seed;
    if (got == Result::Sat) {
      EXPECT_TRUE(model_satisfies(pre, cnf, qv)) << "seed " << seed;
    }
  }
}

TEST(Preprocess, RevivalViaAddClause) {
  // Eliminate, then mention the variable again: the solver must revive it
  // (restore its removed clauses) and keep the database equivalent.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed * 77);
    const int nv = 12;
    auto cnf = test_util::random_cnf(rng, nv, 24);

    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    test_util::load_cnf(s, cnf, vars);
    s.preprocess();
    if (s.remapper().eliminated_count() == 0) continue;
    // Add a fresh clause over every variable, eliminated or not.
    std::vector<int> extra;
    for (int i = 1; i <= nv; ++i) {
      if (rng.chance(1, 3)) extra.push_back(rng.chance(1, 2) ? i : -i);
    }
    if (extra.empty()) extra.push_back(1);
    cnf.push_back(extra);
    test_util::load_cnf(s, {extra}, vars);
    for (int l : extra) {
      EXPECT_FALSE(s.eliminated(vars[static_cast<std::size_t>(std::abs(l) - 1)]))
          << "seed " << seed;
    }
    const bool expect = test_util::brute_force_sat(cnf, nv);
    const Result got = s.solve();
    EXPECT_EQ(got, expect ? Result::Sat : Result::Unsat) << "seed " << seed;
    if (got == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf, vars)) << "seed " << seed;
    }
  }
}

TEST(Preprocess, IncrementalAssumptionSessions) {
  // KC2-style usage: preprocess once with the assumption variables frozen,
  // then run many solve-under-assumptions rounds interleaved with blocking
  // clauses, cross-checking every verdict against brute force.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed * 1234567);
    const int nv = 14;
    const int n_assume = 4;  // variables 1..4 play the key-input role
    auto cnf = test_util::random_cnf(rng, nv, 30);

    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    test_util::load_cnf(s, cnf, vars);
    for (int i = 0; i < n_assume; ++i) s.set_frozen(vars[static_cast<std::size_t>(i)], true);
    s.preprocess();

    for (int round = 0; round < 6; ++round) {
      std::vector<Lit> assumptions;
      std::vector<int> signed_assumptions;
      for (int i = 0; i < n_assume; ++i) {
        if (rng.chance(1, 2)) continue;
        const bool negate = rng.chance(1, 2);
        assumptions.push_back(Lit(vars[static_cast<std::size_t>(i)], negate));
        signed_assumptions.push_back(negate ? -(i + 1) : i + 1);
      }
      const bool expect = test_util::brute_force_sat(cnf, nv, signed_assumptions);
      const Result got = s.solve(assumptions);
      ASSERT_EQ(got, expect ? Result::Sat : Result::Unsat)
          << "seed " << seed << " round " << round;
      if (got == Result::Sat) {
        EXPECT_TRUE(model_satisfies(s, cnf, vars))
            << "seed " << seed << " round " << round;
        // Block this assignment of the assumption variables and continue.
        std::vector<Lit> block;
        std::vector<int> block_signed;
        for (int i = 0; i < n_assume; ++i) {
          const bool val = s.model_value(vars[static_cast<std::size_t>(i)]);
          block.push_back(Lit(vars[static_cast<std::size_t>(i)], val));
          block_signed.push_back(val ? -(i + 1) : i + 1);
        }
        if (!s.add_clause(block)) break;
        cnf.push_back(block_signed);
      }
    }
  }
}

TEST(Preprocess, AssumptionOverEliminatedVariableRevives) {
  // Deliberately leave an eliminable variable unfrozen, then assume it:
  // solve() must revive it and still report sound verdicts.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_clause({neg(a), pos(c)});
  ASSERT_TRUE(s.preprocess());
  ASSERT_TRUE(s.eliminated(a));
  ASSERT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_FALSE(s.eliminated(a));
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(c));  // a -> c must hold again after revival
  ASSERT_EQ(s.solve({pos(a), neg(c)}), Result::Unsat);
}

TEST(Preprocess, InprocessingKeepsVerdictsAndModels) {
  // Force heavy inprocessing: restart after every conflict so the
  // 10-restart trigger fires early and often, plus constant arena GC.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    util::Rng rng(seed * 31);
    const int nv = 15;
    const int nc = 55 + static_cast<int>(seed % 20);
    const auto cnf = test_util::random_cnf(rng, nv, nc);

    Solver s;
    Solver::Config cfg;
    cfg.restart_unit = 1;
    s.set_config(cfg);
    s.set_inprocess(true);
    s.set_gc_frac(0.0);  // GC at every opportunity (stress)
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    test_util::load_cnf(s, cnf, vars);
    const bool expect = test_util::brute_force_sat(cnf, nv);
    const Result got = s.solve();
    EXPECT_EQ(got, expect ? Result::Sat : Result::Unsat) << "seed " << seed;
    if (got == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf, vars)) << "seed " << seed;
    }
  }
}

TEST(Preprocess, GcStressMatchesBaseline) {
  // Identical search with GC forced at every boundary vs. never: relocation
  // must be behavior-neutral, so verdicts AND conflict counts agree.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng rng(seed * 97);
    const auto cnf = test_util::random_cnf(rng, 16, 70);

    Solver never;
    never.set_gc_frac(2.0);  // > 1: never due
    std::vector<Var> nvars;
    for (int i = 0; i < 16; ++i) nvars.push_back(never.new_var());
    test_util::load_cnf(never, cnf, nvars);
    const Result r1 = never.solve();

    Solver always;
    always.set_gc_frac(0.0);
    std::vector<Var> avars;
    for (int i = 0; i < 16; ++i) avars.push_back(always.new_var());
    test_util::load_cnf(always, cnf, avars);
    const Result r2 = always.solve();

    EXPECT_EQ(r1, r2) << "seed " << seed;
    EXPECT_EQ(never.stats().conflicts, always.stats().conflicts)
        << "seed " << seed;
    EXPECT_EQ(never.stats().decisions, always.stats().decisions)
        << "seed " << seed;
  }
}

TEST(Preprocess, UnsatDetectedDuringPreprocessing) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_clause({pos(a), pos(b)});
  s.add_clause({pos(a), neg(b)});
  s.add_clause({neg(a), pos(b)});
  s.add_clause({neg(a), neg(b)});
  // Distribution on either variable yields the empty clause eventually.
  EXPECT_FALSE(s.preprocess());
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Preprocess, PortfolioModelsAreReconstructed) {
  // A preprocessed master racing workers: the workers carry no elimination
  // records, so the folded model must be extended by the master's remapper.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed * 11);
    const auto cnf = test_util::random_cnf(rng, 14, 35);
    PortfolioSolver s(3);
    std::vector<Var> vars;
    for (int i = 0; i < 14; ++i) vars.push_back(s.new_var());
    test_util::load_cnf(s, cnf, vars);
    s.preprocess();
    const bool expect = test_util::brute_force_sat(cnf, 14);
    const Result got = s.solve();
    EXPECT_EQ(got, expect ? Result::Sat : Result::Unsat) << "seed " << seed;
    if (got == Result::Sat) {
      EXPECT_TRUE(model_satisfies(s, cnf, vars)) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cl::sat
