// Shared CNF generators and oracles for the sat tests: pigeon-hole
// instances, random width-k CNFs, brute-force verdicts, and clause loading.
// Kept header-only so both test_solver.cpp and test_portfolio.cpp use the
// exact same instance distributions.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cl::sat::test_util {

/// PHP(n, n-1) pigeon-hole clauses: hard UNSAT driver for DB-reduction and
/// budget tests.
inline void add_pigeon_hole(Solver& s, int n) {
  std::vector<std::vector<Var>> p(static_cast<std::size_t>(n),
                                  std::vector<Var>(static_cast<std::size_t>(n - 1)));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < n - 1; ++j) {
      clause.push_back(pos(p[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]));
    }
    s.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        s.add_binary(neg(p[static_cast<std::size_t>(i1)][static_cast<std::size_t>(j)]),
                     neg(p[static_cast<std::size_t>(i2)][static_cast<std::size_t>(j)]));
      }
    }
  }
}

/// Random width-`width` CNF over variables 1..nv in DIMACS-style signed
/// ints (negative = negated).
inline std::vector<std::vector<int>> random_cnf(util::Rng& rng, int nv, int nc,
                                                int width = 3) {
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < nc; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < width; ++l) {
      const int var = 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nv)));
      clause.push_back(rng.chance(1, 2) ? var : -var);
    }
    clauses.push_back(clause);
  }
  return clauses;
}

/// Exhaustive verdict over all 2^nv assignments (nv <= ~20).
inline bool brute_force_sat(const std::vector<std::vector<int>>& clauses, int nv,
                            const std::vector<int>& assumptions = {}) {
  for (std::uint32_t m = 0; m < (1u << nv); ++m) {
    const auto holds = [&](int l) {
      const bool val = (m >> (std::abs(l) - 1)) & 1u;
      return (l > 0) == val;
    };
    bool all = true;
    for (int l : assumptions) all = all && holds(l);
    for (const auto& clause : clauses) {
      if (!all) break;
      bool any = false;
      for (int l : clause) any = any || holds(l);
      all = all && any;
    }
    if (all) return true;
  }
  return false;
}

/// Load a signed-int CNF into a solver via a var mapping (vars[i] is
/// DIMACS variable i+1).
inline void load_cnf(Solver& s, const std::vector<std::vector<int>>& clauses,
                     const std::vector<Var>& vars) {
  for (const auto& clause : clauses) {
    std::vector<Lit> lits;
    for (int l : clause) {
      lits.push_back(Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
    }
    s.add_clause(lits);
  }
}

}  // namespace cl::sat::test_util
