// Randomized DIMACS write -> read -> solve equivalence: the parsed copy of
// a written CNF must be literally identical, and both copies must solve to
// the brute-force verdict.
#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cnf_test_util.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace cl::sat {
namespace {

/// Random CNF with distinct variables per clause (the parser rejects
/// duplicate/contradictory literals by design, so the generator must not
/// produce them).
std::vector<std::vector<int>> random_strict_cnf(util::Rng& rng, int nv,
                                                int nc, int width) {
  std::vector<std::vector<int>> cnf;
  std::vector<int> pool(static_cast<std::size_t>(nv));
  for (int i = 0; i < nv; ++i) pool[static_cast<std::size_t>(i)] = i + 1;
  for (int c = 0; c < nc; ++c) {
    // Partial Fisher-Yates draw of `width` distinct variables.
    for (int l = 0; l < width; ++l) {
      const auto j = static_cast<std::size_t>(
          l + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nv - l))));
      std::swap(pool[static_cast<std::size_t>(l)], pool[j]);
    }
    std::vector<int> clause;
    for (int l = 0; l < width; ++l) {
      const int v = pool[static_cast<std::size_t>(l)];
      clause.push_back(rng.chance(1, 2) ? v : -v);
    }
    cnf.push_back(clause);
  }
  return cnf;
}

TEST(DimacsRoundTrip, WriteReadSolveEquivalence) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng rng(seed * 101);
    const int nv = 12;
    const int nc = 30 + static_cast<int>(seed % 30);
    Dimacs d;
    d.num_vars = nv;
    d.clauses = random_strict_cnf(rng, nv, nc, 3);

    const std::string text = write_dimacs_string(d);
    const Dimacs back = read_dimacs_string(text);
    EXPECT_EQ(back.num_vars, d.num_vars) << "seed " << seed;
    EXPECT_EQ(back.clauses, d.clauses) << "seed " << seed;

    Solver s1;
    const Var base1 = load_dimacs(s1, d);
    Solver s2;
    const Var base2 = load_dimacs(s2, back);
    const bool expect = test_util::brute_force_sat(d.clauses, nv);
    const Result r1 = s1.solve();
    const Result r2 = s2.solve();
    EXPECT_EQ(r1, expect ? Result::Sat : Result::Unsat) << "seed " << seed;
    EXPECT_EQ(r2, r1) << "seed " << seed;
    if (r1 == Result::Sat) {
      // Each model satisfies its own copy of the formula.
      for (const auto& clause : d.clauses) {
        bool any1 = false;
        bool any2 = false;
        for (int l : clause) {
          const Var off = static_cast<Var>(std::abs(l) - 1);
          any1 = any1 || (s1.model_value(base1 + off) == (l > 0));
          any2 = any2 || (s2.model_value(base2 + off) == (l > 0));
        }
        EXPECT_TRUE(any1) << "seed " << seed;
        EXPECT_TRUE(any2) << "seed " << seed;
      }
    }
  }
}

TEST(DimacsRoundTrip, RoundTripUnderPreprocessing) {
  // The parsed copy fed through BVE must agree with the plain written copy.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng(seed * 7);
    Dimacs d;
    d.num_vars = 14;
    d.clauses = random_strict_cnf(rng, 14, 40, 3);
    const Dimacs back = read_dimacs_string(write_dimacs_string(d));

    Solver plain;
    load_dimacs(plain, d);
    Solver pre;
    load_dimacs(pre, back);
    pre.preprocess();
    EXPECT_EQ(pre.solve(), plain.solve()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cl::sat
