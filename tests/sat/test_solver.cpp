#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cl::sat {
namespace {

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a), pos(a), pos(a)});
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, UnknownVariableRejected) {
  Solver s;
  EXPECT_THROW(s.add_unit(pos(3)), std::invalid_argument);
}

TEST(Solver, ImplicationChainPropagates) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 50; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i) {
    s.add_binary(neg(v[static_cast<std::size_t>(i)]),
                 pos(v[static_cast<std::size_t>(i + 1)]));
  }
  s.add_unit(pos(v[0]));
  EXPECT_EQ(s.solve(), Result::Sat);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)]));
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) s.add_binary(pos(p[i][0]), pos(p[i][1]));
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int n = 5;
  std::vector<std::vector<Var>> p(n, std::vector<Var>(n - 1));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < n - 1; ++j) clause.push_back(pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, XorChainSatWithOddParity) {
  // x1 ^ x2 ^ ... ^ x8 = 1 via ternary xor encodings and aux vars.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.new_var());
  Var acc = x[0];
  for (int i = 1; i < 8; ++i) {
    const Var y = s.new_var();
    // y = acc xor x[i]
    s.add_ternary(neg(y), pos(acc), pos(x[static_cast<std::size_t>(i)]));
    s.add_ternary(neg(y), neg(acc), neg(x[static_cast<std::size_t>(i)]));
    s.add_ternary(pos(y), neg(acc), pos(x[static_cast<std::size_t>(i)]));
    s.add_ternary(pos(y), pos(acc), neg(x[static_cast<std::size_t>(i)]));
    acc = y;
  }
  s.add_unit(pos(acc));
  ASSERT_EQ(s.solve(), Result::Sat);
  int parity = 0;
  for (Var v : x) parity ^= s.model_value(v) ? 1 : 0;
  EXPECT_EQ(parity, 1);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));  // a -> b
  EXPECT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({pos(a), neg(b)}), Result::Unsat);
  // Solver is reusable after an assumption failure.
  EXPECT_EQ(s.solve({neg(b)}), Result::Sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_EQ(s.solve(), Result::Sat);
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Unsat);
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  // A hard instance (PHP 7/6) with a tiny conflict budget.
  Solver s;
  constexpr int n = 7;
  std::vector<std::vector<Var>> p(n, std::vector<Var>(n - 1));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < n - 1; ++j) clause.push_back(pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::Unknown);
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, RandomInstancesAgreeWithBruteForce) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int nv = 6;
    const int nc = 3 + static_cast<int>(rng.next_below(22));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < nc; ++c) {
      std::vector<int> clause;
      const int width = 1 + static_cast<int>(rng.next_below(3));
      for (int l = 0; l < width; ++l) {
        const int var = 1 + static_cast<int>(rng.next_below(nv));
        clause.push_back(rng.chance(1, 2) ? var : -var);
      }
      clauses.push_back(clause);
    }
    // Brute force.
    bool brute_sat = false;
    for (std::uint32_t m = 0; m < (1u << nv) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          const bool val = (m >> (std::abs(l) - 1)) & 1u;
          if ((l > 0) == val) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    // Solver.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (int l : clause) {
        lits.push_back(Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
      }
      s.add_clause(lits);
    }
    const Result r = s.solve();
    EXPECT_EQ(r == Result::Sat, brute_sat) << "trial " << trial;
    if (r == Result::Sat) {
      // Verify the model satisfies every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          if (s.model_value(vars[static_cast<std::size_t>(std::abs(l) - 1)]) == (l > 0)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model violates clause in trial " << trial;
      }
    }
  }
}

TEST(Solver, StatisticsAdvance) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_GE(s.num_decisions(), 1u);
}

TEST(Solver, ManyVariablesLargeRandomSat) {
  // A satisfiable planted instance: plant an assignment, generate clauses
  // containing at least one satisfied literal.
  util::Rng rng(555);
  Solver s;
  const int nv = 300;
  std::vector<Var> vars;
  std::vector<bool> planted;
  for (int i = 0; i < nv; ++i) {
    vars.push_back(s.new_var());
    planted.push_back(rng.chance(1, 2));
  }
  for (int c = 0; c < 1200; ++c) {
    std::vector<Lit> clause;
    const std::size_t sat_pos = rng.next_below(3);
    for (std::size_t l = 0; l < 3; ++l) {
      const std::size_t v = static_cast<std::size_t>(rng.next_below(nv));
      bool negate = rng.chance(1, 2);
      if (l == sat_pos) negate = !planted[v];  // force satisfied literal
      clause.push_back(Lit(vars[v], negate));
    }
    s.add_clause(clause);
  }
  EXPECT_EQ(s.solve(), Result::Sat);
}

}  // namespace
}  // namespace cl::sat
