#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "cnf_test_util.hpp"
#include "util/rng.hpp"

namespace cl::sat {
namespace {

TEST(Solver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause({}));
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause({pos(a), pos(a), pos(a)});
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, UnknownVariableRejected) {
  Solver s;
  EXPECT_THROW(s.add_unit(pos(3)), std::invalid_argument);
}

TEST(Solver, ImplicationChainPropagates) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 50; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i) {
    s.add_binary(neg(v[static_cast<std::size_t>(i)]),
                 pos(v[static_cast<std::size_t>(i + 1)]));
  }
  s.add_unit(pos(v[0]));
  EXPECT_EQ(s.solve(), Result::Sat);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(s.model_value(v[static_cast<std::size_t>(i)]));
}

TEST(Solver, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. p[i][j] = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) s.add_binary(pos(p[i][0]), pos(p[i][1]));
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, PigeonHole5Into4IsUnsat) {
  Solver s;
  constexpr int n = 5;
  std::vector<std::vector<Var>> p(n, std::vector<Var>(n - 1));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < n - 1; ++j) clause.push_back(pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, XorChainSatWithOddParity) {
  // x1 ^ x2 ^ ... ^ x8 = 1 via ternary xor encodings and aux vars.
  Solver s;
  std::vector<Var> x;
  for (int i = 0; i < 8; ++i) x.push_back(s.new_var());
  Var acc = x[0];
  for (int i = 1; i < 8; ++i) {
    const Var y = s.new_var();
    // y = acc xor x[i]
    s.add_ternary(neg(y), pos(acc), pos(x[static_cast<std::size_t>(i)]));
    s.add_ternary(neg(y), neg(acc), neg(x[static_cast<std::size_t>(i)]));
    s.add_ternary(pos(y), neg(acc), pos(x[static_cast<std::size_t>(i)]));
    s.add_ternary(pos(y), pos(acc), neg(x[static_cast<std::size_t>(i)]));
    acc = y;
  }
  s.add_unit(pos(acc));
  ASSERT_EQ(s.solve(), Result::Sat);
  int parity = 0;
  for (Var v : x) parity ^= s.model_value(v) ? 1 : 0;
  EXPECT_EQ(parity, 1);
}

TEST(Solver, AssumptionsSatAndUnsat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));  // a -> b
  EXPECT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({pos(a), neg(b)}), Result::Unsat);
  // Solver is reusable after an assumption failure.
  EXPECT_EQ(s.solve({neg(b)}), Result::Sat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, IncrementalClauseAddition) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_EQ(s.solve(), Result::Sat);
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Unsat);
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(Solver, ConflictBudgetReturnsUnknown) {
  // A hard instance (PHP 7/6) with a tiny conflict budget.
  Solver s;
  constexpr int n = 7;
  std::vector<std::vector<Var>> p(n, std::vector<Var>(n - 1));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < n - 1; ++j) clause.push_back(pos(p[i][j]));
    s.add_clause(clause);
  }
  for (int j = 0; j < n - 1; ++j) {
    for (int i1 = 0; i1 < n; ++i1) {
      for (int i2 = i1 + 1; i2 < n; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::Unknown);
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Solver, RandomInstancesAgreeWithBruteForce) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const int nv = 6;
    const int nc = 3 + static_cast<int>(rng.next_below(22));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < nc; ++c) {
      std::vector<int> clause;
      const int width = 1 + static_cast<int>(rng.next_below(3));
      for (int l = 0; l < width; ++l) {
        const int var = 1 + static_cast<int>(rng.next_below(nv));
        clause.push_back(rng.chance(1, 2) ? var : -var);
      }
      clauses.push_back(clause);
    }
    // Brute force.
    bool brute_sat = false;
    for (std::uint32_t m = 0; m < (1u << nv) && !brute_sat; ++m) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          const bool val = (m >> (std::abs(l) - 1)) & 1u;
          if ((l > 0) == val) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      brute_sat = all;
    }
    // Solver.
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (int l : clause) {
        lits.push_back(Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
      }
      s.add_clause(lits);
    }
    const Result r = s.solve();
    EXPECT_EQ(r == Result::Sat, brute_sat) << "trial " << trial;
    if (r == Result::Sat) {
      // Verify the model satisfies every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          if (s.model_value(vars[static_cast<std::size_t>(std::abs(l) - 1)]) == (l > 0)) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any) << "model violates clause in trial " << trial;
      }
    }
  }
}

TEST(Solver, StatisticsAdvance) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_GE(s.num_decisions(), 1u);
}

TEST(Solver, ManyVariablesLargeRandomSat) {
  // A satisfiable planted instance: plant an assignment, generate clauses
  // containing at least one satisfied literal.
  util::Rng rng(555);
  Solver s;
  const int nv = 300;
  std::vector<Var> vars;
  std::vector<bool> planted;
  for (int i = 0; i < nv; ++i) {
    vars.push_back(s.new_var());
    planted.push_back(rng.chance(1, 2));
  }
  for (int c = 0; c < 1200; ++c) {
    std::vector<Lit> clause;
    const std::size_t sat_pos = rng.next_below(3);
    for (std::size_t l = 0; l < 3; ++l) {
      const std::size_t v = static_cast<std::size_t>(rng.next_below(nv));
      bool negate = rng.chance(1, 2);
      if (l == sat_pos) negate = !planted[v];  // force satisfied literal
      clause.push_back(Lit(vars[v], negate));
    }
    s.add_clause(clause);
  }
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, ReusedSolverHonoursFreshlyShortenedTimeBudget) {
  // Regression: set_time_budget() must reset the deadline-check countdown —
  // a reused solver re-armed with a shorter deadline used to coast for up to
  // 256 conflicts on the previous budget's countdown.
  util::Rng rng(99);
  Solver s;
  const int nv = 120;
  std::vector<Var> vars;
  std::vector<bool> planted;
  for (int i = 0; i < nv; ++i) {
    vars.push_back(s.new_var());
    planted.push_back(rng.chance(1, 2));
  }
  for (int c = 0; c < 4 * nv; ++c) {
    std::vector<Lit> clause;
    const std::size_t sat_pos = rng.next_below(3);
    for (std::size_t l = 0; l < 3; ++l) {
      const std::size_t v = static_cast<std::size_t>(rng.next_below(nv));
      bool negate = rng.chance(1, 2);
      if (l == sat_pos) negate = !planted[v];
      clause.push_back(Lit(vars[v], negate));
    }
    s.add_clause(clause);
  }
  s.set_time_budget(60.0);
  ASSERT_EQ(s.solve(), Result::Sat);  // consumes part of the 256-countdown
  // Re-arm with an already-expired deadline: the very next solve must see it.
  s.set_time_budget(0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(s.solve(), Result::Unknown);
  // Disabling the budget restores normal solving on the same instance.
  s.set_time_budget(-1.0);
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(Solver, IncrementalAssumptionSolvesAgreeWithBruteForce) {
  // Regression for the assumption-prefix backtracking clamp: randomized
  // incremental solves under assumptions, cross-checked against brute force
  // over the full truth table, with clauses added between solves.
  util::Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    const int nv = 7;
    std::vector<std::vector<int>> clauses;
    const int nc = 6 + static_cast<int>(rng.next_below(20));
    for (int c = 0; c < nc; ++c) {
      std::vector<int> clause;
      const int width = 2 + static_cast<int>(rng.next_below(2));
      for (int l = 0; l < width; ++l) {
        const int var = 1 + static_cast<int>(rng.next_below(nv));
        clause.push_back(rng.chance(1, 2) ? var : -var);
      }
      clauses.push_back(clause);
    }
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    const auto add = [&](const std::vector<int>& clause) {
      std::vector<Lit> lits;
      for (int l : clause) {
        lits.push_back(Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
      }
      s.add_clause(lits);
    };
    for (const auto& clause : clauses) add(clause);

    // 8 solve rounds per trial; a random extra clause lands between rounds.
    for (int round = 0; round < 8; ++round) {
      std::vector<int> assumptions;
      const int na = 1 + static_cast<int>(rng.next_below(4));
      for (int a = 0; a < na; ++a) {
        const int var = 1 + static_cast<int>(rng.next_below(nv));
        assumptions.push_back(rng.chance(1, 2) ? var : -var);
      }
      bool brute_sat = false;
      for (std::uint32_t m = 0; m < (1u << nv) && !brute_sat; ++m) {
        const auto holds = [&](int l) {
          const bool val = (m >> (std::abs(l) - 1)) & 1u;
          return (l > 0) == val;
        };
        bool all = true;
        for (int l : assumptions) all = all && holds(l);
        for (const auto& clause : clauses) {
          if (!all) break;
          bool any = false;
          for (int l : clause) any = any || holds(l);
          all = all && any;
        }
        brute_sat = all;
      }
      std::vector<Lit> assumption_lits;
      for (int l : assumptions) {
        assumption_lits.push_back(
            Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
      }
      const Result r = s.solve(assumption_lits);
      ASSERT_EQ(r == Result::Sat, brute_sat)
          << "trial " << trial << " round " << round;
      if (r == Result::Sat) {
        // Model respects assumptions and clauses.
        for (const Lit& a : assumption_lits) EXPECT_TRUE(s.model_value(a));
        for (const auto& clause : clauses) {
          bool any = false;
          for (int l : clause) {
            any = any ||
                  s.model_value(vars[static_cast<std::size_t>(std::abs(l) - 1)]) ==
                      (l > 0);
          }
          EXPECT_TRUE(any);
        }
      }
      std::vector<int> extra;
      const int width = 2 + static_cast<int>(rng.next_below(2));
      for (int l = 0; l < width; ++l) {
        const int var = 1 + static_cast<int>(rng.next_below(nv));
        extra.push_back(rng.chance(1, 2) ? var : -var);
      }
      clauses.push_back(extra);
      add(extra);
    }
  }
}

TEST(Solver, Kc2StyleKeyEnumerationUnderAssumptions) {
  // The KC2 attack pattern: repeated solve({assumption}) with a blocking
  // clause over the "key" variables added after every model. The number of
  // distinct key projections found must match brute-force model counting.
  util::Rng rng(777);
  const int nv = 10;      // vars 0..5 are "key" bits, the rest internal
  const int key_bits = 6;
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < 18; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < 3; ++l) {
      const int var = 1 + static_cast<int>(rng.next_below(nv));
      clause.push_back(rng.chance(1, 2) ? var : -var);
    }
    clauses.push_back(clause);
    std::vector<Lit> lits;
    for (int l : clause) {
      lits.push_back(Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
    }
    s.add_clause(lits);
  }
  const Lit assumption = pos(vars[static_cast<std::size_t>(nv - 1)]);

  // Brute force: key projections that extend to a model with the assumption.
  std::set<std::uint32_t> expected;
  for (std::uint32_t m = 0; m < (1u << nv); ++m) {
    if (((m >> (nv - 1)) & 1u) == 0) continue;  // assumption
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (int l : clause) {
        const bool val = (m >> (std::abs(l) - 1)) & 1u;
        any = any || ((l > 0) == val);
      }
      all = all && any;
    }
    if (all) expected.insert(m & ((1u << key_bits) - 1));
  }

  std::set<std::uint32_t> found;
  for (;;) {
    const Result r = s.solve({assumption});
    if (r != Result::Sat) {
      EXPECT_EQ(r, Result::Unsat);
      break;
    }
    std::uint32_t key = 0;
    for (int b = 0; b < key_bits; ++b) {
      if (s.model_value(vars[static_cast<std::size_t>(b)])) key |= 1u << b;
    }
    EXPECT_TRUE(found.insert(key).second) << "duplicate key " << key;
    // Block this projection (legal at level 0, i.e. outside solve()).
    std::vector<Lit> block;
    for (int b = 0; b < key_bits; ++b) {
      block.push_back(Lit(vars[static_cast<std::size_t>(b)], (key >> b) & 1u));
    }
    s.add_clause(block);
    ASSERT_LE(found.size(), std::size_t{1} << key_bits);
  }
  EXPECT_EQ(found, expected);
}

using test_util::add_pigeon_hole;
using test_util::brute_force_sat;
using test_util::load_cnf;
using test_util::random_cnf;

TEST(Solver, StatsStructTracksSearchWork) {
  Solver s;
  add_pigeon_hole(s, 6);
  EXPECT_EQ(s.solve(), Result::Unsat);
  const Solver::Stats& st = s.stats();
  EXPECT_GT(st.conflicts, 0u);
  EXPECT_GT(st.decisions, 0u);
  EXPECT_GT(st.propagations, 0u);
  EXPECT_GT(st.learned, 0u);
  // The legacy accessors are views of the same struct.
  EXPECT_EQ(st.conflicts, s.num_conflicts());
  EXPECT_EQ(st.decisions, s.num_decisions());
  EXPECT_EQ(st.propagations, s.num_propagations());
  EXPECT_EQ(st.learned, s.num_learned());
}

TEST(Solver, ReductionDeletesLearntsButProtectsGlue) {
  // A tiny learnt-DB cap forces many reduce_db sweeps on a hard instance.
  // The sweep must delete clauses (learnts_deleted advances) while the glue
  // policy keeps every LBD<=2 clause (glue_protected counts the saves).
  Solver s;
  Solver::Config config;
  config.max_learnts = 12;  // small enough that glue clauses fill the quota
  s.set_config(config);
  add_pigeon_hole(s, 7);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().learnts_deleted, 0u);
  EXPECT_GT(s.stats().glue_protected, 0u);
}

TEST(Solver, ClauseMinimizationShrinksLearnts) {
  Solver s;
  add_pigeon_hole(s, 7);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().minimized_literals, 0u);
}

TEST(Solver, LubyRestartsHappen) {
  Solver s;
  add_pigeon_hole(s, 7);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.stats().restarts, 0u);
}

TEST(Solver, PhaseSavingDeterministicAtFixedSeed) {
  // Two solvers with the identical (randomized) configuration must walk the
  // identical search tree: same verdict, same model, same counters.
  util::Rng rng(31337);
  const int nv = 60;
  const auto clauses = random_cnf(rng, nv, 4 * nv);
  Solver::Config config;
  config.seed = 7;
  config.random_initial_phase = true;
  config.random_decision_freq = 0.05;

  std::vector<Result> results;
  std::vector<std::vector<bool>> models;
  std::vector<std::uint64_t> conflict_counts;
  for (int run = 0; run < 2; ++run) {
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    s.set_config(config);
    load_cnf(s, clauses, vars);
    const Result r = s.solve();
    results.push_back(r);
    conflict_counts.push_back(s.stats().conflicts);
    std::vector<bool> model;
    if (r == Result::Sat) {
      for (Var v : vars) model.push_back(s.model_value(v));
    }
    models.push_back(model);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(models[0], models[1]);
  EXPECT_EQ(conflict_counts[0], conflict_counts[1]);
}

TEST(Solver, DiversifiedConfigsAgreeWithBruteForce) {
  // Cross-check: every diversification axis (polarity defaults, random
  // phases, random decisions, best-phase off, restart pacing) must preserve
  // the verdict of the reference behavior on randomized instances.
  std::vector<Solver::Config> configs(5);
  configs[1].default_phase = true;
  configs[1].restart_unit = 32;
  configs[2].seed = 11;
  configs[2].random_initial_phase = true;
  configs[2].random_decision_freq = 0.05;
  configs[3].use_best_phase = false;
  configs[3].restart_unit = 256;
  configs[4].seed = 99;
  configs[4].random_initial_phase = true;
  configs[4].max_learnts = 16;

  util::Rng rng(909);
  for (int trial = 0; trial < 12; ++trial) {
    const int nv = 8;
    const auto clauses = random_cnf(rng, nv, 8 + static_cast<int>(rng.next_below(30)));
    const bool expected = brute_force_sat(clauses, nv);
    for (std::size_t ci = 0; ci < configs.size(); ++ci) {
      Solver s;
      std::vector<Var> vars;
      for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
      s.set_config(configs[ci]);
      load_cnf(s, clauses, vars);
      const Result r = s.solve();
      EXPECT_EQ(r == Result::Sat, expected)
          << "trial " << trial << " config " << ci;
      if (r == Result::Sat) {
        for (const auto& clause : clauses) {
          bool any = false;
          for (int l : clause) {
            any = any || s.model_value(vars[static_cast<std::size_t>(
                             std::abs(l) - 1)]) == (l > 0);
          }
          EXPECT_TRUE(any) << "trial " << trial << " config " << ci;
        }
      }
    }
  }
}

TEST(Solver, InterruptFlagStopsSolve) {
  Solver s;
  add_pigeon_hole(s, 8);  // hard enough that it cannot finish instantly
  std::atomic<bool> stop{true};
  s.set_interrupt(&stop);
  EXPECT_EQ(s.solve(), Result::Unknown);  // pre-fired flag: no search at all
  // Clearing the flag resumes normal solving on the same instance.
  stop.store(false);
  s.set_conflict_budget(50);
  EXPECT_EQ(s.solve(), Result::Unknown);  // still hard: budget trips instead
  s.set_conflict_budget(-1);
  s.set_interrupt(nullptr);
  Solver easy;
  const Var a = easy.new_var();
  easy.add_unit(pos(a));
  EXPECT_EQ(easy.solve(), Result::Sat);
}

TEST(Solver, InterruptFiredFromAnotherThread) {
  Solver s;
  add_pigeon_hole(s, 9);  // far beyond what solves in the sleep window
  std::atomic<bool> stop{false};
  s.set_interrupt(&stop);
  std::thread killer([&stop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
  });
  EXPECT_EQ(s.solve(), Result::Unknown);
  killer.join();
}

TEST(Solver, DuplicatedAssumptionsPushLevelsPastVarCount) {
  // Regression: an assumption literal that is already true when placed gets
  // a dummy decision level, so heavy duplication pushes decision levels
  // past num_vars. The exact-LBD scratch array must grow on demand instead
  // of indexing out of bounds (caught under ASan before the fix).
  util::Rng rng(1212);
  for (int trial = 0; trial < 20; ++trial) {
    const int nv = 6;
    const auto clauses = random_cnf(rng, nv, 14 + static_cast<int>(rng.next_below(12)));
    Solver s;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    load_cnf(s, clauses, vars);
    std::vector<Lit> assumptions(static_cast<std::size_t>(4 * nv), pos(vars[0]));
    const bool expected = brute_force_sat(clauses, nv, {1});
    EXPECT_EQ(s.solve(assumptions) == Result::Sat, expected) << "trial " << trial;
  }
}

TEST(Solver, CopyProblemIntoPreservesProblem) {
  util::Rng rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    const int nv = 7;
    const auto clauses = random_cnf(rng, nv, 10 + static_cast<int>(rng.next_below(20)));
    Solver original;
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(original.new_var());
    load_cnf(original, clauses, vars);
    // Solve once so the original carries learnts + root units to replay.
    const Result first = original.solve();

    Solver clone;
    original.copy_problem_into(clone);
    EXPECT_EQ(clone.num_vars(), original.num_vars());
    const Result r = clone.solve();
    EXPECT_EQ(r, first) << "trial " << trial;
    EXPECT_EQ(r == Result::Sat, brute_force_sat(clauses, nv)) << "trial " << trial;
    // Assumption solving agrees too.
    const Lit a = pos(vars[0]);
    EXPECT_EQ(clone.solve({a}), original.solve({a})) << "trial " << trial;
  }
}

TEST(Solver, UnsatAssumptionSubsetExcludesImpliedUnits) {
  // After the clamp fix, literals implied inside the assumption prefix carry
  // a real reason clause; unsat_assumptions() must report only genuine
  // assumption decisions.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  s.add_binary(neg(a), pos(b));   // a -> b
  s.add_binary(neg(b), pos(c));   // b -> c
  EXPECT_EQ(s.solve({pos(a), neg(c)}), Result::Unsat);
  for (const Lit& l : s.unsat_assumptions()) {
    EXPECT_TRUE(l == pos(a) || l == neg(c) || l == ~pos(a) || l == ~neg(c));
  }
  EXPECT_FALSE(s.unsat_assumptions().empty());
  // Still reusable.
  EXPECT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(c));
}

}  // namespace
}  // namespace cl::sat
