#include "sat/exchange.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "cnf_test_util.hpp"
#include "sat/portfolio.hpp"
#include "util/rng.hpp"

namespace cl::sat {
namespace {

using test_util::brute_force_sat;
using test_util::load_cnf;
using test_util::random_cnf;

std::vector<Lit> make_clause(std::initializer_list<int> codes) {
  std::vector<Lit> lits;
  for (int c : codes) lits.push_back(Lit::from_code(c));
  return lits;
}

std::vector<std::vector<Lit>> drain(const ClauseExchange& x,
                                    ClauseExchange::Cursor& cursor,
                                    std::size_t self) {
  std::vector<std::vector<Lit>> out;
  x.collect(cursor, self, [&](const Lit* lits, std::size_t n) {
    out.emplace_back(lits, lits + n);
  });
  return out;
}

TEST(ClauseExchange, PublishAndCollect) {
  ClauseExchange x;
  const auto c1 = make_clause({0, 3});
  const auto c2 = make_clause({5});
  x.publish(0, c1.data(), c1.size());
  x.publish(0, c2.data(), c2.size());
  EXPECT_EQ(x.published(), 2u);

  ClauseExchange::Cursor reader;
  const auto got = drain(x, reader, 1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], c1);
  EXPECT_EQ(got[1], c2);
  // The cursor advanced: nothing new to collect.
  EXPECT_TRUE(drain(x, reader, 1).empty());
}

TEST(ClauseExchange, ReaderSkipsItsOwnClauses) {
  ClauseExchange x;
  const auto mine = make_clause({2});
  const auto theirs = make_clause({4});
  x.publish(7, mine.data(), mine.size());
  x.publish(3, theirs.data(), theirs.size());
  ClauseExchange::Cursor reader;
  const auto got = drain(x, reader, 7);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], theirs);
}

TEST(ClauseExchange, OversizedClausesAreDropped) {
  ClauseExchange x;
  std::vector<Lit> wide;
  for (int i = 0; i <= static_cast<int>(ClauseExchange::k_max_lits); ++i) {
    wide.push_back(Lit::from_code(2 * i));
  }
  x.publish(0, wide.data(), wide.size());
  EXPECT_EQ(x.published(), 0u);
  EXPECT_EQ(x.dropped(), 1u);
  ClauseExchange::Cursor reader;
  EXPECT_TRUE(drain(x, reader, 1).empty());
}

TEST(ClauseExchange, LaggingReaderSkipsAheadInsteadOfTearing) {
  ClauseExchange x(64);  // minimum ring
  const auto unit = make_clause({8});
  for (int i = 0; i < 200; ++i) x.publish(0, unit.data(), unit.size());
  ClauseExchange::Cursor reader;  // 200 - 0 > 64: must clamp to the last ring
  const auto got = drain(x, reader, 1);
  EXPECT_LE(got.size(), 64u);
  for (const auto& c : got) EXPECT_EQ(c, unit);
}

TEST(ClauseExchange, ConcurrentHammerDeliversOnlyIntactClauses) {
  // W writers publish distinct self-describing clauses while a reader
  // drains; every delivered clause must be one that some writer published
  // (no torn or invented payloads).
  ClauseExchange x(128);
  constexpr int k_writers = 4;
  constexpr int k_per_writer = 3000;
  std::atomic<int> running{k_writers};
  std::vector<std::thread> writers;
  for (int w = 0; w < k_writers; ++w) {
    writers.emplace_back([&x, &running, w] {
      for (int i = 0; i < k_per_writer; ++i) {
        // Clause encodes its writer in every literal: [b+2, b+20, b+40].
        const Lit lits[3] = {Lit::from_code(100 * w + 2),
                             Lit::from_code(100 * w + 20),
                             Lit::from_code(100 * w + 40)};
        x.publish(static_cast<std::size_t>(w), lits, 3);
      }
      running.fetch_sub(1);
    });
  }
  std::size_t delivered = 0, corrupt = 0;
  ClauseExchange::Cursor cursor;
  const auto check = [&](const Lit* lits, std::size_t n) {
    ++delivered;
    if (n != 3) {
      ++corrupt;
      return;
    }
    const int base = lits[0].code() - 2;
    if (base < 0 || base % 100 != 0 || lits[1].code() != base + 20 ||
        lits[2].code() != base + 40) {
      ++corrupt;
    }
  };
  while (running.load() > 0) x.collect(cursor, k_writers, check);
  for (auto& t : writers) t.join();
  x.collect(cursor, k_writers, check);  // final drain
  EXPECT_EQ(corrupt, 0u);
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(x.published() + x.dropped(),
            static_cast<std::uint64_t>(k_writers) * k_per_writer);
}

TEST(ClauseExchange, SharingRaceMatchesSingleWorkerVerdicts) {
  // The satellite cross-check: randomized SAT/UNSAT instances solved by a
  // sharing portfolio race must agree with a single deterministic worker.
  util::Rng rng(0x5a7e);
  for (int trial = 0; trial < 30; ++trial) {
    const int nv = 9;
    const auto clauses =
        random_cnf(rng, nv, 18 + static_cast<int>(rng.next_below(26)));
    const bool expected = brute_force_sat(clauses, nv);

    PortfolioSolver shared(4);
    shared.set_share(true);
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(shared.new_var());
    load_cnf(shared, clauses, vars);
    const Result r = shared.solve();
    ASSERT_EQ(r == Result::Sat, expected) << "trial " << trial;
    if (r == Result::Sat) {
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          any = any || shared.model_value(vars[static_cast<std::size_t>(
                           std::abs(l) - 1)]) == (l > 0);
        }
        EXPECT_TRUE(any) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace cl::sat
