#include "sat/portfolio.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "cnf_test_util.hpp"
#include "util/rng.hpp"

namespace cl::sat {
namespace {

using test_util::add_pigeon_hole;
using test_util::brute_force_sat;
using test_util::load_cnf;
using test_util::random_cnf;

TEST(PortfolioSolver, SingleWorkerIsPlainSolver) {
  PortfolioSolver s(1);
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(neg(a), pos(b));
  EXPECT_EQ(s.solve({pos(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({pos(a), neg(b)}), Result::Unsat);
}

TEST(PortfolioSolver, ZeroWorkersClampedToOne) {
  PortfolioSolver s(0);
  EXPECT_EQ(s.workers(), 1u);
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_EQ(s.solve(), Result::Sat);
}

TEST(PortfolioSolver, RandomCrossCheckAgainstBruteForce) {
  util::Rng rng(8080);
  for (int trial = 0; trial < 20; ++trial) {
    const int nv = 8;
    const auto clauses = random_cnf(rng, nv, 10 + static_cast<int>(rng.next_below(28)));
    const bool expected = brute_force_sat(clauses, nv);
    PortfolioSolver s(4);
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    load_cnf(s, clauses, vars);
    const Result r = s.solve();
    ASSERT_EQ(r == Result::Sat, expected) << "trial " << trial;
    if (r == Result::Sat) {
      // Whatever worker won, its model must satisfy every clause.
      for (const auto& clause : clauses) {
        bool any = false;
        for (int l : clause) {
          any = any || s.model_value(vars[static_cast<std::size_t>(
                           std::abs(l) - 1)]) == (l > 0);
        }
        EXPECT_TRUE(any) << "trial " << trial;
      }
    }
  }
}

TEST(PortfolioSolver, AssumptionVerdictsMatchSingleWorker) {
  util::Rng rng(5151);
  for (int trial = 0; trial < 12; ++trial) {
    const int nv = 7;
    const auto clauses = random_cnf(rng, nv, 8 + static_cast<int>(rng.next_below(20)));
    std::vector<int> assumptions;
    const int na = 1 + static_cast<int>(rng.next_below(3));
    for (int a = 0; a < na; ++a) {
      const int var = 1 + static_cast<int>(rng.next_below(nv));
      assumptions.push_back(rng.chance(1, 2) ? var : -var);
    }
    const bool expected = brute_force_sat(clauses, nv, assumptions);

    PortfolioSolver s(3);
    std::vector<Var> vars;
    for (int i = 0; i < nv; ++i) vars.push_back(s.new_var());
    load_cnf(s, clauses, vars);
    std::vector<Lit> assumption_lits;
    for (int l : assumptions) {
      assumption_lits.push_back(
          Lit(vars[static_cast<std::size_t>(std::abs(l) - 1)], l < 0));
    }
    const Result r = s.solve(assumption_lits);
    ASSERT_EQ(r == Result::Sat, expected) << "trial " << trial;
    if (r == Result::Sat) {
      for (const Lit& a : assumption_lits) EXPECT_TRUE(s.model_value(a));
    } else {
      // The failed-assumption subset only mentions assumption literals.
      EXPECT_FALSE(s.unsat_assumptions().empty());
      for (const Lit& l : s.unsat_assumptions()) {
        bool known = false;
        for (const Lit& a : assumption_lits) known = known || l == a || l == ~a;
        EXPECT_TRUE(known) << "trial " << trial;
      }
    }
  }
}

TEST(PortfolioSolver, Kc2StyleKeyEnumerationMatchesSingleWorker) {
  // The KC2 regression CNF pattern: repeated solve({assumption}) with a
  // blocking clause over the key projection added after every model. The
  // portfolio must enumerate exactly the same key set as a single worker —
  // answer equivalence, not model equivalence (models may differ per race).
  util::Rng rng(777);
  const int nv = 10;
  const int key_bits = 6;
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < 18; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < 3; ++l) {
      const int var = 1 + static_cast<int>(rng.next_below(nv));
      clause.push_back(rng.chance(1, 2) ? var : -var);
    }
    clauses.push_back(clause);
  }

  const auto enumerate = [&](Solver& s, const std::vector<Var>& vars) {
    const Lit assumption = pos(vars[static_cast<std::size_t>(nv - 1)]);
    std::set<std::uint32_t> found;
    for (;;) {
      const Result r = s.solve({assumption});
      if (r != Result::Sat) {
        EXPECT_EQ(r, Result::Unsat);
        break;
      }
      std::uint32_t key = 0;
      for (int b = 0; b < key_bits; ++b) {
        if (s.model_value(vars[static_cast<std::size_t>(b)])) key |= 1u << b;
      }
      EXPECT_TRUE(found.insert(key).second) << "duplicate key " << key;
      std::vector<Lit> block;
      for (int b = 0; b < key_bits; ++b) {
        block.push_back(Lit(vars[static_cast<std::size_t>(b)], (key >> b) & 1u));
      }
      s.add_clause(block);
      if (found.size() > (std::size_t{1} << key_bits)) break;  // safety net
    }
    return found;
  };

  Solver single;
  std::vector<Var> single_vars;
  for (int i = 0; i < nv; ++i) single_vars.push_back(single.new_var());
  load_cnf(single, clauses, single_vars);
  const std::set<std::uint32_t> expected = enumerate(single, single_vars);

  PortfolioSolver portfolio(4);
  std::vector<Var> portfolio_vars;
  for (int i = 0; i < nv; ++i) portfolio_vars.push_back(portfolio.new_var());
  load_cnf(portfolio, clauses, portfolio_vars);
  const std::set<std::uint32_t> got = enumerate(portfolio, portfolio_vars);

  EXPECT_EQ(got, expected);
}

TEST(PortfolioSolver, IncrementalClauseAdditionBetweenRaces) {
  PortfolioSolver s(3);
  const Var a = s.new_var();
  const Var b = s.new_var();
  EXPECT_EQ(s.solve(), Result::Sat);
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Sat);
  EXPECT_TRUE(s.model_value(b));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve({neg(a)}), Result::Unsat);
  EXPECT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(a));
  s.add_unit(neg(a));
  EXPECT_EQ(s.solve(), Result::Unsat);  // root-level unsat sticks
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(PortfolioSolver, ConflictBudgetReturnsUnknownAcrossRace) {
  // PHP(7,6): hard enough that 5 conflicts per worker cannot settle it.
  PortfolioSolver s(3);
  add_pigeon_hole(s, 7);
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::Unknown);
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(PortfolioSolver, WorkerConfigsAreDiversified) {
  // The first four workers must differ somewhere that matters: seeds or
  // polarity/restart/randomization settings.
  const Solver::Config c0 = PortfolioSolver::worker_config(0);
  const Solver::Config c1 = PortfolioSolver::worker_config(1);
  const Solver::Config c2 = PortfolioSolver::worker_config(2);
  const Solver::Config c3 = PortfolioSolver::worker_config(3);
  EXPECT_TRUE(c1.default_phase);
  EXPECT_FALSE(c0.default_phase);
  EXPECT_TRUE(c2.random_initial_phase);
  EXPECT_GT(c2.random_decision_freq, 0.0);
  EXPECT_FALSE(c3.use_best_phase);
  EXPECT_NE(c0.seed, c2.seed);
  EXPECT_NE(c0.restart_unit, c1.restart_unit);
  // Workers past the first cycle must not repeat a deterministic config
  // verbatim: seeded randomness is forced in, so distinct seeds matter.
  for (std::size_t i = 4; i < 10; ++i) {
    const Solver::Config c = PortfolioSolver::worker_config(i);
    EXPECT_TRUE(c.random_initial_phase) << "worker " << i;
    EXPECT_NE(c.seed, PortfolioSolver::worker_config(i % 4).seed) << "worker " << i;
  }
}

TEST(PortfolioSolver, SharingRaceProvesPigeonHole) {
  // PHP(8,7) UNSAT with live clause sharing on: same verdict as the
  // single-solver baseline, and the race actually traded clauses (workers
  // restart often enough on PHP that imports are guaranteed).
  PortfolioSolver s(4);
  s.set_share(true);
  add_pigeon_hole(s, 8);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_GT(s.shared_published(), 0u);
}

TEST(PortfolioSolver, SharingOffLeavesExchangeUntouched) {
  PortfolioSolver s(3);
  s.set_share(false);
  add_pigeon_hole(s, 7);
  EXPECT_EQ(s.solve(), Result::Unsat);
  EXPECT_EQ(s.shared_published(), 0u);
  EXPECT_EQ(s.stats().shared_exported, 0u);
  EXPECT_EQ(s.stats().shared_imported, 0u);
}

TEST(PortfolioSolver, SharingKc2EnumerationMatchesSingleWorker) {
  // The incremental attack-loop shape under sharing: blocking clauses added
  // between races must compose with imported learnts (both are implied, so
  // the enumerated answer set cannot change).
  util::Rng rng(424242);
  for (int trial = 0; trial < 10; ++trial) {
    const int nv = 8;
    const auto clauses =
        random_cnf(rng, nv, 14 + static_cast<int>(rng.next_below(16)));

    const auto count_models_over = [&](Solver& s, const std::vector<Var>& vars,
                                       int bits) {
      std::set<std::uint32_t> found;
      while (s.solve() == Result::Sat) {
        std::uint32_t key = 0;
        for (int b = 0; b < bits; ++b) {
          if (s.model_value(vars[static_cast<std::size_t>(b)])) key |= 1u << b;
        }
        EXPECT_TRUE(found.insert(key).second);
        std::vector<Lit> block;
        for (int b = 0; b < bits; ++b) {
          block.push_back(Lit(vars[static_cast<std::size_t>(b)], (key >> b) & 1u));
        }
        s.add_clause(block);
        if (found.size() > 16u) break;  // safety net
      }
      return found;
    };

    Solver single;
    std::vector<Var> sv;
    for (int i = 0; i < nv; ++i) sv.push_back(single.new_var());
    load_cnf(single, clauses, sv);
    const auto expected = count_models_over(single, sv, 4);

    PortfolioSolver shared(4);
    shared.set_share(true);
    std::vector<Var> pv;
    for (int i = 0; i < nv; ++i) pv.push_back(shared.new_var());
    load_cnf(shared, clauses, pv);
    const auto got = count_models_over(shared, pv, 4);

    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cl::sat
