#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

namespace cl::sat {
namespace {

TEST(Dimacs, ParsesHeaderAndClauses) {
  const Dimacs d = read_dimacs_string("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(d.num_vars, 3);
  ASSERT_EQ(d.clauses.size(), 2u);
  EXPECT_EQ(d.clauses[0], (std::vector<int>{1, -2}));
  EXPECT_EQ(d.clauses[1], (std::vector<int>{2, 3}));
}

TEST(Dimacs, HeaderlessInputInfersVars) {
  const Dimacs d = read_dimacs_string("1 -4 0\n");
  EXPECT_EQ(d.num_vars, 4);
}

TEST(Dimacs, LoadsIntoSolverAndSolves) {
  const Dimacs d = read_dimacs_string("p cnf 2 2\n1 0\n-1 2 0\n");
  Solver s;
  const Var base = load_dimacs(s, d);
  ASSERT_EQ(s.solve(), Result::Sat);
  EXPECT_TRUE(s.model_value(base));
  EXPECT_TRUE(s.model_value(base + 1));
}

TEST(Dimacs, UnsatInstance) {
  const Dimacs d = read_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  Solver s;
  load_dimacs(s, d);
  EXPECT_EQ(s.solve(), Result::Unsat);
}

TEST(Dimacs, WriteRoundTrip) {
  Dimacs d;
  d.num_vars = 3;
  d.clauses = {{1, -2}, {3}};
  const Dimacs again = read_dimacs_string(write_dimacs_string(d));
  EXPECT_EQ(again.num_vars, 3);
  EXPECT_EQ(again.clauses, d.clauses);
}

TEST(Dimacs, LiteralBeyondHeaderRejected) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n3 0\n"), std::runtime_error);
}

TEST(Dimacs, DuplicateLiteralRejected) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 2 1 0\n"), std::runtime_error);
}

TEST(Dimacs, ContradictoryLiteralRejected) {
  EXPECT_THROW(read_dimacs_string("p cnf 2 1\n1 -1 0\n"), std::runtime_error);
  EXPECT_THROW(read_dimacs_string("p cnf 3 1\n2 3 -2 0\n"), std::runtime_error);
}

}  // namespace
}  // namespace cl::sat
