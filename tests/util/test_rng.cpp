#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace cl::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  Rng r(7);
  EXPECT_THROW(r.next_below(0), std::invalid_argument);
}

TEST(Rng, NextInCoversInclusiveRange) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.next_in(-3, 3));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.begin(), -3);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(Rng, NextInRejectsInvertedRange) {
  Rng r(9);
  EXPECT_THROW(r.next_in(4, 3), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0, 10));
    EXPECT_TRUE(r.chance(10, 10));
  }
  EXPECT_THROW(r.chance(11, 10), std::invalid_argument);
  EXPECT_THROW(r.chance(1, 0), std::invalid_argument);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (r.chance(1, 4)) ++hits;
  }
  const double p = static_cast<double>(hits) / trials;
  EXPECT_NEAR(p, 0.25, 0.02);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  auto resorted = v;
  std::sort(resorted.begin(), resorted.end());
  EXPECT_EQ(resorted, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(23);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  r.shuffle(v);
  EXPECT_NE(v, before);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child stream should not replay the parent stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, PickReturnsMember) {
  Rng r(37);
  const std::vector<int> v{5, 6, 7};
  std::map<int, int> histogram;
  for (int i = 0; i < 3000; ++i) ++histogram[r.pick(v)];
  EXPECT_EQ(histogram.size(), 3u);
  for (const auto& [value, count] : histogram) {
    EXPECT_GE(count, 800) << "value " << value << " under-represented";
  }
}

TEST(SplitMix, KnownFirstValueStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace cl::util
