// util::cpu: the runtime half of the kernel-tier decision. These tests can
// only assert host-independent invariants (nothing here may assume AVX
// hardware), plus the strict CUTELOCK_SIM_ISA parse.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/cpu.hpp"

namespace cl::util {
namespace {

/// Scoped CUTELOCK_SIM_ISA override, restoring the previous value on exit so
/// the test leaves the process environment untouched.
class ScopedSimIsaEnv {
 public:
  explicit ScopedSimIsaEnv(const char* value) {
    const char* old = std::getenv("CUTELOCK_SIM_ISA");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("CUTELOCK_SIM_ISA");
    } else {
      ::setenv("CUTELOCK_SIM_ISA", value, 1);
    }
  }
  ~ScopedSimIsaEnv() {
    if (had_old_) {
      ::setenv("CUTELOCK_SIM_ISA", old_.c_str(), 1);
    } else {
      ::unsetenv("CUTELOCK_SIM_ISA");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(Cpu, SimIsaNames) {
  EXPECT_STREQ(sim_isa_name(SimIsa::Generic), "generic");
  EXPECT_STREQ(sim_isa_name(SimIsa::Avx2), "avx2");
  EXPECT_STREQ(sim_isa_name(SimIsa::Avx512), "avx512");
}

TEST(Cpu, GenericIsAlwaysSupported) {
  EXPECT_TRUE(cpu_supports(SimIsa::Generic));
}

TEST(Cpu, SupportIsMonotoneInTheTierOrder) {
  // The enum ordering promises: supporting a tier implies supporting every
  // tier below it, so best_cpu_sim_isa() is a meaningful max.
  const SimIsa best = best_cpu_sim_isa();
  EXPECT_TRUE(cpu_supports(best));
  if (best >= SimIsa::Avx2) {
    EXPECT_TRUE(cpu_supports(SimIsa::Avx2));
  }
  if (best >= SimIsa::Avx512) {
    EXPECT_TRUE(cpu_supports(SimIsa::Avx512));
    EXPECT_TRUE(cpu_supports(SimIsa::Avx2));
  }
  if (!cpu_supports(SimIsa::Avx2)) {
    EXPECT_FALSE(cpu_supports(SimIsa::Avx512));
  }
}

TEST(Cpu, SimIsaFromEnvParsesStrictly) {
  SimIsa out = SimIsa::Avx512;
  {
    ScopedSimIsaEnv env(nullptr);  // unset: silently absent
    EXPECT_FALSE(sim_isa_from_env(&out));
  }
  {
    ScopedSimIsaEnv env("generic");
    EXPECT_TRUE(sim_isa_from_env(&out));
    EXPECT_EQ(out, SimIsa::Generic);
  }
  {
    ScopedSimIsaEnv env("avx2");
    EXPECT_TRUE(sim_isa_from_env(&out));
    EXPECT_EQ(out, SimIsa::Avx2);
  }
  {
    ScopedSimIsaEnv env("avx512");
    EXPECT_TRUE(sim_isa_from_env(&out));
    EXPECT_EQ(out, SimIsa::Avx512);
  }
  {
    // Anything else is a warning + fallback, never a guess: "AVX2",
    // "avx-512" and "" are all rejected.
    ScopedSimIsaEnv env("AVX2");
    EXPECT_FALSE(sim_isa_from_env(&out));
  }
  {
    ScopedSimIsaEnv env("");
    EXPECT_FALSE(sim_isa_from_env(&out));
  }
}

}  // namespace
}  // namespace cl::util
