#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cl::util {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, TasksOwnDistinctResultSlots) {
  // The Runner contract: each task writes only its own slot, no locking.
  ThreadPool pool(8);
  std::vector<int> slots(256, 0);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    pool.submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.wait();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1) << "slot " << i;
  }
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool stays usable after the error is consumed.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, WaitThenSubmitMore) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait(): the destructor must still run everything.
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(TaskGroup, WaitScopesToOwnTasksOnly) {
  // Group A's wait() must not block on group B's still-running task (which
  // ThreadPool::wait() would) nor steal B's exception.
  ThreadPool pool(2);
  std::atomic<bool> release_b{false};
  std::atomic<bool> b_ran{false};
  TaskGroup b(pool);
  b.submit([&] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (!release_b.load() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    b_ran.store(true);
    throw std::runtime_error("belongs to B");
  });
  TaskGroup a(pool);
  std::atomic<int> a_done{0};
  for (int i = 0; i < 4; ++i) {
    a.submit([&a_done] { a_done.fetch_add(1); });
  }
  a.wait();  // returns while B's task is still parked
  EXPECT_EQ(a_done.load(), 4);
  EXPECT_FALSE(b_ran.load());
  release_b.store(true);
  EXPECT_THROW(b.wait(), std::runtime_error);  // B's error stays with B
}

TEST(TaskGroup, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  group.submit([&] { count.fetch_add(1); });
  group.wait();
  group.submit([&] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ActuallyRunsConcurrently) {
  // Two tasks that each wait for the other can only finish with >= 2 workers.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&arrived] {
      arrived.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (arrived.load() < 2 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
      }
    });
  }
  pool.wait();
  EXPECT_EQ(arrived.load(), 2);
}

}  // namespace
}  // namespace cl::util
