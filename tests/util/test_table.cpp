#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/timer.hpp"

namespace cl::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string s = t.to_string();
  // Every data row should be at least as wide as the longest cell per column.
  EXPECT_NE(s.find("name       value"), std::string::npos);
  EXPECT_NE(s.find("long-name  22"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CountsRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(FormatDuration, MatchesPaperStyle) {
  EXPECT_EQ(format_duration(385.446), "6m25.446s");
  EXPECT_EQ(format_duration(0.885), "0.885s");
  EXPECT_EQ(format_duration(0.0), "0.000s");
  // 6h44m50s from Table IV.
  EXPECT_EQ(format_duration(6 * 3600 + 44 * 60 + 50), "6h44m50s");
}

TEST(FormatDuration, NegativeClampsToZero) {
  EXPECT_EQ(format_duration(-1.0), "0.000s");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace cl::util
