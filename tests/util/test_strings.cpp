#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace cl::util {
namespace {

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a b \n"), "a b");
}

TEST(Strings, SplitDropsEmptyFields) {
  EXPECT_EQ(split("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(" a,b ,, c ", ", "), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(split("").empty());
  EXPECT_TRUE(split("   ").empty());
}

TEST(Strings, SplitSingleToken) {
  EXPECT_EQ(split("hello"), (std::vector<std::string>{"hello"}));
}

TEST(Strings, IequalsIsCaseInsensitive) {
  EXPECT_TRUE(iequals("AND", "and"));
  EXPECT_TRUE(iequals("DfF", "dFf"));
  EXPECT_FALSE(iequals("AND", "ANDx"));
  EXPECT_FALSE(iequals("AND", "ORR"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("KeyInput3"), "keyinput3");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("keyinput12", "keyinput"));
  EXPECT_FALSE(starts_with("key", "keyinput"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, ToBinaryMsbFirst) {
  EXPECT_EQ(to_binary(0b1011, 4), "1011");
  EXPECT_EQ(to_binary(1, 4), "0001");
  EXPECT_EQ(to_binary(0, 3), "000");
  EXPECT_EQ(to_binary(0b101, 5), "00101");
}

}  // namespace
}  // namespace cl::util
