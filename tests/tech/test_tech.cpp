#include <gtest/gtest.h>

#include "benchgen/s27.hpp"
#include "sim/sequence.hpp"
#include "tech/cell_library.hpp"
#include "tech/mapper.hpp"
#include "tech/overhead.hpp"
#include "util/rng.hpp"

namespace cl::tech {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

TEST(CellLibrary, AllCellsPresentWithSaneValues) {
  const CellLibrary& lib = CellLibrary::nangate45_like();
  for (const Cell& c : lib.cells()) {
    EXPECT_GT(c.area_um2, 0.0) << c.name;
    EXPECT_GT(c.leakage_nw, 0.0) << c.name;
    EXPECT_GE(c.switch_energy_fj, 0.0) << c.name;
  }
  // Relative sanity: a DFF is the largest leaf cell, an inverter the
  // smallest logic cell.
  EXPECT_GT(lib.cell(CellType::Dff).area_um2, lib.cell(CellType::Mux2).area_um2);
  EXPECT_LT(lib.cell(CellType::Inv).area_um2, lib.cell(CellType::Nand2).area_um2);
}

TEST(Mapper, TwoInputGatesMapOneToOne) {
  const Netlist nl = benchgen::make_s27();
  const MappedDesign m = map_to_cells(nl);
  // s27 is already 2-input: 10 gates + 3 DFFs = 13 cells.
  EXPECT_EQ(m.total_cells(), 13u);
  EXPECT_EQ(m.cell_counts.at(CellType::Dff), 3u);
}

TEST(Mapper, WideGatesDecomposeToTrees) {
  Netlist nl("wide");
  std::vector<SignalId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  nl.add_output(nl.add_gate(GateType::And, ins, "y"));
  const MappedDesign m = map_to_cells(nl);
  // 5-input AND -> 4 AND2 cells (+1 BUF preserving the name).
  EXPECT_EQ(m.cell_counts.at(CellType::And2), 4u);
  for (SignalId s = 0; s < m.netlist.size(); ++s) {
    EXPECT_LE(m.netlist.node(s).fanins.size(), 3u);  // MUX has 3
  }
}

TEST(Mapper, WideNandGetsInvertedRoot) {
  Netlist nl("wnand");
  std::vector<SignalId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  nl.add_output(nl.add_gate(GateType::Nand, ins, "y"));
  const MappedDesign m = map_to_cells(nl);
  EXPECT_EQ(m.cell_counts.at(CellType::And2), 3u);
  EXPECT_EQ(m.cell_counts.at(CellType::Inv), 1u);
}

TEST(Mapper, MappedDesignIsFunctionallyEquivalent) {
  const Netlist nl = benchgen::make_s27();
  const MappedDesign m = map_to_cells(nl);
  util::Rng rng(5);
  const auto stim = sim::random_stimulus(rng, 64, nl.inputs().size());
  EXPECT_EQ(sim::run_sequence(nl, stim), sim::run_sequence(m.netlist, stim));
}

TEST(Mapper, WideXnorEquivalence) {
  Netlist nl("wx");
  std::vector<SignalId> ins;
  for (int i = 0; i < 5; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  nl.add_output(nl.add_gate(GateType::Xnor, ins, "y"));
  const MappedDesign m = map_to_cells(nl);
  util::Rng rng(6);
  const auto stim = sim::random_stimulus(rng, 64, nl.inputs().size());
  EXPECT_EQ(sim::run_sequence(nl, stim), sim::run_sequence(m.netlist, stim));
}

TEST(Overhead, ReportsPositiveNumbers) {
  const Netlist nl = benchgen::make_s27();
  const OverheadReport r = analyze_overhead(nl);
  EXPECT_GT(r.power_w, 0.0);
  EXPECT_GT(r.area_um2, 0.0);
  EXPECT_EQ(r.cells, 13u);
  EXPECT_EQ(r.ios, 4u + 1u + 1u);  // 4 PI + 1 PO + clk
}

TEST(Overhead, LockedCircuitCostsMore) {
  const Netlist nl = benchgen::make_s27();
  Netlist bigger = nl.clone("bigger");
  const SignalId k = bigger.add_key_input("keyinput0");
  const SignalId g17 = bigger.find("G17");
  const SignalId x = bigger.add_xor(g17, k, "locked_out");
  bigger.replace_all_readers(g17, x, {x});
  const OverheadReport base = analyze_overhead(nl);
  const OverheadReport locked = analyze_overhead(bigger);
  EXPECT_GT(locked.area_um2, base.area_um2);
  EXPECT_GT(locked.cells, base.cells);
  EXPECT_GT(locked.ios, base.ios);
  EXPECT_GT(locked.area_overhead_pct(base), 0.0);
  EXPECT_GT(locked.ios_overhead_pct(base), 0.0);
}

TEST(Overhead, PercentagesAgainstZeroBaseAreZero) {
  OverheadReport a, b;
  a.power_w = 1.0;
  EXPECT_EQ(a.power_overhead_pct(b), 0.0);
}

TEST(Overhead, DeterministicForSameSeed) {
  const Netlist nl = benchgen::make_s27();
  const OverheadReport a = analyze_overhead(nl);
  const OverheadReport b = analyze_overhead(nl);
  EXPECT_DOUBLE_EQ(a.power_w, b.power_w);
  EXPECT_DOUBLE_EQ(a.area_um2, b.area_um2);
}

}  // namespace
}  // namespace cl::tech
