#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

namespace cl::netlist {
namespace {

// The real ISCAS'89 s27 netlist (public domain benchmark).
const char* k_s27 = R"(
# s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(BenchIo, ParsesS27) {
  const Netlist nl = read_bench_string(k_s27, "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.stats().gates, 10u);
  EXPECT_EQ(nl.signal_name(nl.outputs()[0]), "G17");
  // G10 drives the D pin of G5.
  const SignalId g5 = nl.find("G5");
  EXPECT_EQ(nl.signal_name(nl.dff_input(g5)), "G10");
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist a = read_bench_string(k_s27, "s27");
  const Netlist b = read_bench_string(write_bench_string(a), "s27");
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.stats().gates, b.stats().gates);
  EXPECT_EQ(a.dffs().size(), b.dffs().size());
  for (SignalId id = 0; id < a.size(); ++id) {
    const SignalId other = b.find(a.signal_name(id));
    ASSERT_NE(other, k_no_signal) << a.signal_name(id);
    EXPECT_EQ(a.type(id), b.type(other));
  }
}

TEST(BenchIo, KeyInputConventionDetected) {
  const char* text = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.key_inputs().size(), 1u);
}

TEST(BenchIo, DffInitCommentRoundTrips) {
  const char* text = R"(
INPUT(a)
OUTPUT(q)
q = DFF(a)  # init q 1
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.dff_init(nl.find("q")), DffInit::One);
  const Netlist again = read_bench_string(write_bench_string(nl));
  EXPECT_EQ(again.dff_init(again.find("q")), DffInit::One);
}

TEST(BenchIo, ForwardReferencesResolve) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = AND(b, a)
b = NOT(a)
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.stats().gates, 2u);
}

TEST(BenchIo, SingleInputAndBecomesBuf) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = AND(a)
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Buf);
}

TEST(BenchIo, MuxSupported) {
  const char* text = R"(
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
y = MUX(s, a, b)
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Mux);
}

TEST(BenchIo, ErrorsCarryLineNumbers) {
  EXPECT_THROW(read_bench_string("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n"),
               std::runtime_error);
  try {
    read_bench_string("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bench:"), std::string::npos);
  }
}

TEST(BenchIo, UndefinedSignalRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, DuplicateDefinitionRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n"),
      std::runtime_error);
}

TEST(BenchIo, CombinationalCycleRejected) {
  EXPECT_THROW(
      read_bench_string("INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = NOT(x)\n"),
      std::runtime_error);
}

TEST(BenchIo, OutputOfUndefinedSignalRejected) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(ghost)\n"),
               std::runtime_error);
}

TEST(BenchIo, SequentialCycleThroughDffAccepted) {
  const char* text = R"(
INPUT(a)
OUTPUT(q)
q = DFF(g)
g = NOT(q)
)";
  const Netlist nl = read_bench_string(text);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.stats().gates, 1u);
}

}  // namespace
}  // namespace cl::netlist
