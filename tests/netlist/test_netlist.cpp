#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

namespace cl::netlist {
namespace {

Netlist tiny() {
  // q = DFF(a AND q); out = q XOR b
  Netlist nl("tiny");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  SignalId q = nl.add_dff(k_no_signal, DffInit::Zero, "q");
  const SignalId g = nl.add_and(a, q, "g");
  nl.set_dff_input(q, g);
  const SignalId out = nl.add_xor(q, b, "out");
  nl.add_output(out);
  nl.check();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  const NetlistStats st = nl.stats();
  EXPECT_EQ(st.gates, 2u);
  EXPECT_EQ(st.key_inputs, 0u);
}

TEST(Netlist, FindByName) {
  const Netlist nl = tiny();
  EXPECT_NE(nl.find("g"), k_no_signal);
  EXPECT_EQ(nl.find("nope"), k_no_signal);
  EXPECT_EQ(nl.signal_name(nl.find("out")), "out");
}

TEST(Netlist, DuplicateNamesRejected) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), std::invalid_argument);
}

TEST(Netlist, ArityValidation) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::And, {a}, "bad"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::Not, {a, a}, "bad"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::Mux, {a, a}, "bad"), std::invalid_argument);
}

TEST(Netlist, AddGateRejectsNonCombTypes) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateType::Dff, {a}, "bad"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateType::Input, {}, "bad"), std::invalid_argument);
}

TEST(Netlist, FaninOutOfRangeRejected) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  EXPECT_THROW(nl.add_and(a, 999, "bad"), std::invalid_argument);
}

TEST(Netlist, KeyInputsTrackedSeparately) {
  Netlist nl;
  nl.add_input("x");
  nl.add_key_input("keyinput0");
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.key_inputs().size(), 1u);
  EXPECT_EQ(nl.all_inputs().size(), 2u);
  EXPECT_EQ(nl.type(nl.find("keyinput0")), GateType::KeyInput);
}

TEST(Netlist, DffInitRoundTrip) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(a, DffInit::One, "q");
  EXPECT_EQ(nl.dff_init(q), DffInit::One);
  nl.set_dff_init(q, DffInit::X);
  EXPECT_EQ(nl.dff_init(q), DffInit::X);
  EXPECT_EQ(nl.dff_input(q), a);
}

TEST(Netlist, DffAccessorsRejectNonDff) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  EXPECT_THROW(nl.dff_input(a), std::invalid_argument);
  EXPECT_THROW(nl.set_dff_init(a, DffInit::One), std::invalid_argument);
  EXPECT_THROW(nl.set_dff_input(a, a), std::invalid_argument);
}

TEST(Netlist, ReplaceFanin) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId c = nl.add_input("c");
  const SignalId g = nl.add_and(a, b, "g");
  nl.replace_fanin(g, a, c);
  EXPECT_EQ(nl.node(g).fanins[0], c);
  EXPECT_THROW(nl.replace_fanin(g, a, c), std::invalid_argument);
}

TEST(Netlist, ReplaceAllReadersRespectsExceptions) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId g1 = nl.add_and(a, b, "g1");
  const SignalId g2 = nl.add_or(a, b, "g2");
  nl.add_output(a);
  const SignalId replacement = nl.add_not(a, "na");
  nl.replace_all_readers(a, replacement, {replacement, g2});
  EXPECT_EQ(nl.node(g1).fanins[0], replacement);
  EXPECT_EQ(nl.node(g2).fanins[0], a);          // excluded
  EXPECT_EQ(nl.node(replacement).fanins[0], a); // excluded (no self-loop)
  EXPECT_EQ(nl.outputs()[0], replacement);
}

TEST(Netlist, FreshNamesNeverCollide) {
  Netlist nl;
  nl.add_input("n0");
  const std::string f1 = nl.fresh_name("n");
  EXPECT_NE(f1, "n0");
  nl.add_input(f1);
  const std::string f2 = nl.fresh_name("n");
  EXPECT_NE(f2, f1);
}

TEST(Netlist, CheckDetectsCombinationalCycle) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId g1 = nl.add_and(a, a, "g1");
  const SignalId g2 = nl.add_or(g1, a, "g2");
  // Manufacture a cycle g1 <- g2 via replace_fanin.
  nl.replace_fanin(g1, a, g2);
  EXPECT_THROW(nl.check(), std::logic_error);
}

TEST(Netlist, SequentialLoopIsLegal) {
  // DFF in the loop: q -> g -> q is fine.
  EXPECT_NO_THROW(tiny().check());
}

TEST(Netlist, CloneIsDeepAndRenames) {
  Netlist nl = tiny();
  Netlist copy = nl.clone("copy");
  EXPECT_EQ(copy.name(), "copy");
  EXPECT_EQ(copy.size(), nl.size());
  // Mutating the copy must not affect the original.
  copy.set_dff_init(copy.dffs()[0], DffInit::One);
  EXPECT_EQ(nl.dff_init(nl.dffs()[0]), DffInit::Zero);
}

TEST(Netlist, GateTypeNamesRoundTrip) {
  for (GateType t : {GateType::And, GateType::Nand, GateType::Or, GateType::Nor,
                     GateType::Xor, GateType::Xnor, GateType::Not, GateType::Buf,
                     GateType::Mux, GateType::Dff}) {
    const auto parsed = gate_type_from_name(gate_type_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(gate_type_from_name("FROB").has_value());
  EXPECT_EQ(*gate_type_from_name("buff"), GateType::Buf);
  EXPECT_EQ(*gate_type_from_name("inv"), GateType::Not);
}

TEST(Netlist, OutputMayRepeat) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  nl.add_output(a);
  nl.add_output(a);
  EXPECT_EQ(nl.outputs().size(), 2u);
  nl.check();
}

}  // namespace
}  // namespace cl::netlist
