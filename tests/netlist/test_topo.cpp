#include "netlist/topo.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cl::netlist {
namespace {

Netlist chain3() {
  // a -> g1 -> g2 -> g3 -> out; q feeds g2 as well.
  Netlist nl("chain3");
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(k_no_signal, DffInit::Zero, "q");
  const SignalId g1 = nl.add_not(a, "g1");
  const SignalId g2 = nl.add_and(g1, q, "g2");
  const SignalId g3 = nl.add_or(g2, a, "g3");
  nl.set_dff_input(q, g3);
  nl.add_output(g3);
  return nl;
}

TEST(Topo, OrderRespectsFaninBeforeGate) {
  const Netlist nl = chain3();
  const auto order = topo_order(nl);
  EXPECT_EQ(order.size(), nl.size());
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (SignalId id = 0; id < nl.size(); ++id) {
    if (!is_comb_gate(nl.type(id))) continue;
    for (SignalId f : nl.node(id).fanins) {
      EXPECT_LT(pos[f], pos[id]) << "fanin after gate";
    }
  }
}

TEST(Topo, LevelsIncreaseAlongChain) {
  const Netlist nl = chain3();
  const auto level = logic_levels(nl);
  EXPECT_EQ(level[nl.find("a")], 0);
  EXPECT_EQ(level[nl.find("q")], 0);
  EXPECT_EQ(level[nl.find("g1")], 1);
  EXPECT_EQ(level[nl.find("g2")], 2);
  EXPECT_EQ(level[nl.find("g3")], 3);
}

TEST(Topo, FanoutsListReaders) {
  const Netlist nl = chain3();
  const auto fo = fanouts(nl);
  const SignalId a = nl.find("a");
  // a feeds g1 and g3.
  EXPECT_EQ(fo[a].size(), 2u);
  // g3 feeds the DFF D-pin.
  const SignalId g3 = nl.find("g3");
  ASSERT_EQ(fo[g3].size(), 1u);
  EXPECT_EQ(fo[g3][0], nl.find("q"));
}

TEST(Topo, ConeStopsAtDffOutputs) {
  const Netlist nl = chain3();
  const auto cone = comb_fanin_cone(nl, {nl.find("g2")});
  EXPECT_TRUE(cone[nl.find("g2")]);
  EXPECT_TRUE(cone[nl.find("g1")]);
  EXPECT_TRUE(cone[nl.find("a")]);
  EXPECT_TRUE(cone[nl.find("q")]);   // included as a cone leaf
  EXPECT_FALSE(cone[nl.find("g3")]); // not in the fanin of g2
}

TEST(Topo, KeysInConeFindsOnlyReachableKeys) {
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId k0 = nl.add_key_input("keyinput0");
  nl.add_key_input("keyinput1");  // not connected to g
  const SignalId g = nl.add_xor(a, k0, "g");
  nl.add_output(g);
  const auto keys = keys_in_cone(nl, g);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], k0);
}

TEST(Topo, DffDependenciesFormRegisterGraph) {
  // q2's D depends on q1; q1's D depends on input only.
  Netlist nl;
  const SignalId a = nl.add_input("a");
  const SignalId q1 = nl.add_dff(k_no_signal, DffInit::Zero, "q1");
  const SignalId q2 = nl.add_dff(k_no_signal, DffInit::Zero, "q2");
  nl.set_dff_input(q1, nl.add_not(a, "g1"));
  nl.set_dff_input(q2, nl.add_and(q1, a, "g2"));
  const auto deps = dff_dependencies(nl);
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_TRUE(deps[0].empty());
  ASSERT_EQ(deps[1].size(), 1u);
  EXPECT_EQ(deps[1][0], q1);
  (void)q2;
}

TEST(Topo, SelfLoopThroughDffAllowed) {
  Netlist nl;
  SignalId q = nl.add_dff(k_no_signal, DffInit::Zero, "q");
  const SignalId g = nl.add_not(q, "g");
  nl.set_dff_input(q, g);
  nl.add_output(q);
  const auto deps = dff_dependencies(nl);
  ASSERT_EQ(deps.size(), 1u);
  ASSERT_EQ(deps[0].size(), 1u);
  EXPECT_EQ(deps[0][0], q);
}

}  // namespace
}  // namespace cl::netlist
