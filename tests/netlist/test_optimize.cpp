#include "netlist/optimize.hpp"

#include <gtest/gtest.h>

#include "benchgen/catalog.hpp"
#include "netlist/bench_io.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace cl::netlist {
namespace {

/// Behavioural equivalence over random stimulus (with keys if present).
void expect_equivalent(const Netlist& a, const Netlist& b, std::uint64_t seed) {
  util::Rng rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    const auto stim = sim::random_stimulus(rng, 32, a.inputs().size());
    std::vector<sim::BitVec> keys;
    if (!a.key_inputs().empty()) {
      keys.push_back(sim::random_bits(rng, a.key_inputs().size()));
    }
    EXPECT_EQ(sim::run_sequence(a, stim, keys), sim::run_sequence(b, stim, keys))
        << "trial " << trial;
  }
}

TEST(Optimize, ConstantPropagation) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
one = CONST1()
zero = CONST0()
t1 = AND(a, one)
t2 = OR(t1, zero)
t3 = XOR(t2, zero)
y = BUF(t3)
)";
  const Netlist nl = read_bench_string(text, "cp");
  const Netlist opt = optimize(nl);
  // Everything folds away: y == a.
  EXPECT_EQ(opt.stats().gates, 0u);
  expect_equivalent(nl, opt, 1);
}

TEST(Optimize, DominatedGatesBecomeConstants) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
zero = CONST0()
dead = AND(a, zero)
y = OR(dead, b)
)";
  const Netlist nl = read_bench_string(text, "dom");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.stats().gates, 0u);  // y == b
  expect_equivalent(nl, opt, 2);
}

TEST(Optimize, DoubleInverterRemoved) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
n1 = NOT(a)
n2 = NOT(n1)
y = BUF(n2)
)";
  const Netlist nl = read_bench_string(text, "dinv");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.stats().gates, 0u);
  expect_equivalent(nl, opt, 3);
}

TEST(Optimize, XorSelfCancels) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t = XOR(a, a, b)
y = BUF(t)
)";
  const Netlist nl = read_bench_string(text, "xs");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.stats().gates, 0u);  // y == b
  expect_equivalent(nl, opt, 4);
}

TEST(Optimize, MuxSimplifications) {
  const char* text = R"(
INPUT(s)
INPUT(a)
OUTPUT(y1)
OUTPUT(y2)
zero = CONST0()
one = CONST1()
y1 = MUX(s, zero, one)
y2 = MUX(s, a, a)
)";
  const Netlist nl = read_bench_string(text, "mx");
  const Netlist opt = optimize(nl);
  // y1 == s, y2 == a; no MUX gates left.
  for (SignalId id = 0; id < opt.size(); ++id) {
    EXPECT_NE(opt.type(id), GateType::Mux);
  }
  expect_equivalent(nl, opt, 5);
}

TEST(Optimize, IdempotentAndDuplicateFanins) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t = AND(a, a, b)
y = BUF(t)
)";
  const Netlist nl = read_bench_string(text, "idem");
  const Netlist opt = optimize(nl);
  EXPECT_EQ(opt.stats().gates, 1u);  // AND(a, b)
  expect_equivalent(nl, opt, 6);
}

TEST(Optimize, PreservesSequentialBehaviour) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b03");
  const Netlist opt = optimize(circuit.netlist);
  EXPECT_LE(opt.stats().gates, circuit.netlist.stats().gates);
  expect_equivalent(circuit.netlist, opt, 7);
}

TEST(Optimize, PreservesInterface) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b06");
  const Netlist opt = optimize(circuit.netlist);
  EXPECT_EQ(opt.inputs().size(), circuit.netlist.inputs().size());
  EXPECT_EQ(opt.outputs().size(), circuit.netlist.outputs().size());
}

TEST(Optimize, IsIdempotent) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b06");
  const Netlist once = optimize(circuit.netlist);
  const Netlist twice = optimize(once);
  EXPECT_EQ(once.size(), twice.size());
}

TEST(Optimize, RandomCircuitsStayEquivalent) {
  for (const char* name : {"b01", "b08", "s298"}) {
    const benchgen::SyntheticCircuit circuit = benchgen::make_circuit(name);
    const Netlist opt = optimize(circuit.netlist);
    expect_equivalent(circuit.netlist, opt, 11);
  }
}

TEST(Optimize, StatsCountConstantPropagation) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
zero = CONST0()
dead = AND(a, zero)
n = NOT(dead)
y = AND(n, a)
)";
  const Netlist nl = read_bench_string(text, "st");
  OptimizeStats stats;
  const Netlist opt = optimize(nl, stats);
  // dead -> 0 and n -> 1 are constant folds; y collapses to a wire to a.
  EXPECT_GE(stats.constants_propagated, 2u);
  EXPECT_EQ(stats.gates_removed, nl.stats().gates - opt.stats().gates);
  EXPECT_EQ(stats.ffs_swept, 0u);
  EXPECT_GE(stats.rounds, 1u);
  expect_equivalent(nl, opt, 21);
}

TEST(Optimize, StatsCountSweptFlipFlops) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
dead_ff = DFF(a)
also_dead = AND(dead_ff, a)
y = BUF(a)
)";
  const Netlist nl = read_bench_string(text, "ffst");
  OptimizeStats stats;
  const Netlist opt = optimize(nl, stats);
  EXPECT_EQ(opt.stats().dffs, 0u);
  EXPECT_EQ(stats.ffs_swept, 1u);
  EXPECT_EQ(stats.gates_removed, nl.stats().gates - opt.stats().gates);
}

TEST(Optimize, StatsAreQuietOnIrreducibleCircuits) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
)";
  const Netlist nl = read_bench_string(text, "quiet");
  OptimizeStats stats;
  const Netlist opt = optimize(nl, stats);
  EXPECT_EQ(opt.stats().gates, 1u);
  EXPECT_EQ(stats.gates_removed, 0u);
  EXPECT_EQ(stats.constants_propagated, 0u);
  EXPECT_EQ(stats.ffs_swept, 0u);
}

TEST(Optimize, StatsOverloadMatchesPlainOverload) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b03");
  OptimizeStats stats;
  const Netlist with_stats = optimize(circuit.netlist, stats);
  const Netlist plain = optimize(circuit.netlist);
  EXPECT_EQ(with_stats.size(), plain.size());
  EXPECT_EQ(stats.gates_removed,
            circuit.netlist.stats().gates - with_stats.stats().gates);
}

}  // namespace
}  // namespace cl::netlist
