#include "netlist/blif_io.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::netlist {
namespace {

TEST(BlifIo, ParsesSimpleModel) {
  const char* text = R"(
.model toy
.inputs a b
.outputs y
.names a b y
11 1
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.name(), "toy");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(BlifIo, MultiRowCoverBecomesSop) {
  // y = a'b + ab' (xor as SOP)
  const char* text = R"(
.model x
.inputs a b
.outputs y
.names a b y
10 1
01 1
.end
)";
  const Netlist nl = read_blif_string(text);
  // 2 NOTs + 2 ANDs + 1 OR + output BUF collapse possibilities; just check it
  // parsed into some gates and is well-formed.
  EXPECT_GE(nl.stats().gates, 3u);
  nl.check();
}

TEST(BlifIo, OffSetCoverComplemented) {
  const char* text = R"(
.model x
.inputs a
.outputs y
.names a y
1 0
.end
)";
  const Netlist nl = read_blif_string(text);
  // y is NOT(a).
  EXPECT_EQ(nl.type(nl.find("y")), GateType::Not);
}

TEST(BlifIo, LatchWithInitValue) {
  const char* text = R"(
.model seq
.inputs a
.outputs q
.latch d q re clk 1
.names a d
1 1
.end
)";
  const Netlist nl = read_blif_string(text);
  ASSERT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.dff_init(nl.find("q")), DffInit::One);
}

TEST(BlifIo, ConstantCovers) {
  const char* text = R"(
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.type(nl.find("one")), GateType::Const1);
  EXPECT_EQ(nl.type(nl.find("zero")), GateType::Const0);
}

TEST(BlifIo, KeyInputConvention) {
  const char* text = R"(
.model k
.inputs a keyinput0
.outputs y
.names a keyinput0 y
11 1
.end
)";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.key_inputs().size(), 1u);
}

TEST(BlifIo, RoundTripThroughBlifPreservesInterface) {
  const char* bench = R"(
INPUT(G0)
INPUT(G1)
OUTPUT(y)
q = DFF(g2)
g2 = AND(G0, q)
y = XOR(q, G1)
)";
  const Netlist a = read_bench_string(bench, "rt");
  const Netlist b = read_blif_string(write_blif_string(a));
  EXPECT_EQ(b.inputs().size(), a.inputs().size());
  EXPECT_EQ(b.outputs().size(), a.outputs().size());
  EXPECT_EQ(b.dffs().size(), a.dffs().size());
  b.check();
}

TEST(BlifIo, LineContinuationSupported) {
  const char* text = ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
  const Netlist nl = read_blif_string(text);
  EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(BlifIo, MixedOnOffSetRejected) {
  const char* text = R"(
.model bad
.inputs a b
.outputs y
.names a b y
11 1
00 0
.end
)";
  EXPECT_THROW(read_blif_string(text), std::runtime_error);
}

TEST(BlifIo, RowOutsideNamesRejected) {
  EXPECT_THROW(read_blif_string(".model m\n.inputs a\n.outputs y\n11 1\n.end\n"),
               std::runtime_error);
}

TEST(BlifIo, CoverWidthMismatchRejected) {
  const char* text = R"(
.model bad
.inputs a b
.outputs y
.names a b y
111 1
.end
)";
  EXPECT_THROW(read_blif_string(text), std::runtime_error);
}

}  // namespace
}  // namespace cl::netlist
