#include "netlist/verilog_io.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::netlist {
namespace {

TEST(VerilogIo, EmitsModuleWithPorts) {
  Netlist nl("mod");
  const SignalId a = nl.add_input("a");
  const SignalId k = nl.add_key_input("keyinput0");
  const SignalId y = nl.add_xor(a, k, "y");
  nl.add_output(y);
  const std::string v = write_verilog_string(nl);
  EXPECT_NE(v.find("module mod"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("input keyinput0;"), std::string::npos);
  EXPECT_NE(v.find("output po0;"), std::string::npos);
  EXPECT_NE(v.find("assign y = a ^ keyinput0;"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogIo, DffBecomesAlwaysBlock) {
  Netlist nl("seq");
  const SignalId a = nl.add_input("a");
  const SignalId q = nl.add_dff(a, DffInit::One, "q");
  nl.add_output(q);
  const std::string v = write_verilog_string(nl);
  EXPECT_NE(v.find("reg q;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk) q <= a;"), std::string::npos);
  EXPECT_NE(v.find("initial q = 1'b1;"), std::string::npos);
}

TEST(VerilogIo, InvertedGatesWrapInNot) {
  Netlist nl("n");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId y = nl.add_gate(GateType::Nand, {a, b}, "y");
  nl.add_output(y);
  const std::string v = write_verilog_string(nl);
  EXPECT_NE(v.find("assign y = ~(a & b);"), std::string::npos);
}

TEST(VerilogIo, MuxUsesTernary) {
  Netlist nl("m");
  const SignalId s = nl.add_input("s");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId y = nl.add_mux(s, a, b, "y");
  nl.add_output(y);
  const std::string v = write_verilog_string(nl);
  EXPECT_NE(v.find("assign y = s ? b : a;"), std::string::npos);
}

TEST(VerilogIo, SanitizesHostileNames) {
  Netlist nl("sani");
  const SignalId a = nl.add_input("3bad.name");
  nl.add_output(nl.add_not(a, "x-y"));
  const std::string v = write_verilog_string(nl);
  // No raw '.' or '-' may survive in identifiers.
  EXPECT_EQ(v.find("3bad.name"), std::string::npos);
  EXPECT_EQ(v.find("x-y"), std::string::npos);
  EXPECT_NE(v.find("s_3bad_name"), std::string::npos);
}

TEST(VerilogIo, ConstantsEmitted) {
  Netlist nl("c");
  nl.add_output(nl.add_const(true, "one"));
  nl.add_output(nl.add_const(false, "zero"));
  const std::string v = write_verilog_string(nl);
  EXPECT_NE(v.find("assign one = 1'b1;"), std::string::npos);
  EXPECT_NE(v.find("assign zero = 1'b0;"), std::string::npos);
}

}  // namespace
}  // namespace cl::netlist
