// Serialization regression: write -> read -> write must be a fixpoint for
// .bench and BLIF, and every round trip must preserve the interface that
// locking correctness depends on — key inputs (names and order) and flip-
// flops (names, D-pin wiring, init values). Runs over catalog circuits both
// unlocked and after Cute-Lock-Str, so keyinput handling is exercised for
// real locked netlists, not just hand-written fixtures.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/verilog_io.hpp"

namespace cl::netlist {
namespace {

std::vector<Netlist> golden_circuits() {
  std::vector<Netlist> out;
  for (const char* name : {"s27", "s298", "s349"}) {
    const auto circuit = benchgen::make_circuit(name);
    out.push_back(circuit.netlist);

    core::StrOptions options;
    const auto& spec = benchgen::find_spec(name);
    options.num_keys = spec.lock_keys;
    options.key_bits = spec.lock_bits;
    options.locked_ffs = 2;
    options.seed = 7;
    out.push_back(core::cute_lock_str(circuit.netlist, options).locked);
  }
  return out;
}

// compare_gates is off for BLIF trips: the BLIF reader decomposes .names
// covers into AND/OR/NOT networks (see blif_io.hpp), which changes the gate
// count but must never change the interface.
void expect_same_interface(const Netlist& a, const Netlist& b,
                           bool compare_gates = true) {
  const NetlistStats sa = a.stats();
  const NetlistStats sb = b.stats();
  EXPECT_EQ(sa.inputs, sb.inputs);
  EXPECT_EQ(sa.key_inputs, sb.key_inputs);
  EXPECT_EQ(sa.outputs, sb.outputs);
  EXPECT_EQ(sa.dffs, sb.dffs);
  if (compare_gates) {
    EXPECT_EQ(sa.gates, sb.gates);
  }

  ASSERT_EQ(a.key_inputs().size(), b.key_inputs().size());
  for (std::size_t i = 0; i < a.key_inputs().size(); ++i) {
    EXPECT_EQ(a.signal_name(a.key_inputs()[i]),
              b.signal_name(b.key_inputs()[i]));
  }

  ASSERT_EQ(a.dffs().size(), b.dffs().size());
  for (std::size_t i = 0; i < a.dffs().size(); ++i) {
    const SignalId da = a.dffs()[i];
    const SignalId db = b.dffs()[i];
    EXPECT_EQ(a.signal_name(da), b.signal_name(db));
    EXPECT_EQ(a.dff_init(da), b.dff_init(db));
    EXPECT_EQ(a.signal_name(a.dff_input(da)), b.signal_name(b.dff_input(db)));
  }
}

TEST(RoundtripGolden, BenchWriteReadWriteIsFixpoint) {
  for (const Netlist& nl : golden_circuits()) {
    SCOPED_TRACE(nl.name());
    const std::string first = write_bench_string(nl);
    const Netlist back = read_bench_string(first, nl.name());
    EXPECT_EQ(first, write_bench_string(back));
    expect_same_interface(nl, back);
  }
}

TEST(RoundtripGolden, BlifWriteReadWriteIsFixpoint) {
  for (const Netlist& nl : golden_circuits()) {
    SCOPED_TRACE(nl.name());
    // One write/read pass normalizes the netlist into the reader's
    // AND/OR/NOT vocabulary; from then on write -> read -> write must be a
    // text-level fixpoint.
    const Netlist normalized = read_blif_string(write_blif_string(nl));
    expect_same_interface(nl, normalized, /*compare_gates=*/false);
    const std::string first = write_blif_string(normalized);
    const Netlist back = read_blif_string(first);
    EXPECT_EQ(first, write_blif_string(back));
    expect_same_interface(normalized, back);
  }
}

// There is no Verilog reader; the guarantee is that the Verilog view is a
// pure function of the netlist, i.e. unchanged by a .bench round trip.
TEST(RoundtripGolden, VerilogStableAcrossBenchRoundtrip) {
  for (const Netlist& nl : golden_circuits()) {
    SCOPED_TRACE(nl.name());
    const Netlist back = read_bench_string(write_bench_string(nl), nl.name());
    EXPECT_EQ(write_verilog_string(nl), write_verilog_string(back));
  }
}

TEST(RoundtripGolden, BenchToBlifToBenchPreservesInterface) {
  for (const Netlist& nl : golden_circuits()) {
    SCOPED_TRACE(nl.name());
    const Netlist via_blif = read_blif_string(write_blif_string(nl));
    expect_same_interface(nl, via_blif, /*compare_gates=*/false);
  }
}

}  // namespace
}  // namespace cl::netlist
