#include "netlist/transform.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/bench_io.hpp"
#include "netlist/topo.hpp"

namespace cl::netlist {
namespace {

TEST(Transform, RemoveDanglingDropsUnreachableGates) {
  Netlist nl("d");
  const SignalId a = nl.add_input("a");
  const SignalId keep = nl.add_not(a, "keep");
  nl.add_and(a, keep, "dead");  // never used
  nl.add_output(keep);
  const Netlist out = remove_dangling(nl);
  EXPECT_EQ(out.find("dead"), k_no_signal);
  EXPECT_NE(out.find("keep"), k_no_signal);
  EXPECT_EQ(out.stats().gates, 1u);
}

TEST(Transform, RemoveDanglingKeepsPorts) {
  Netlist nl("p");
  nl.add_input("unused_in");
  nl.add_key_input("keyinput0");
  const SignalId a = nl.add_input("a");
  nl.add_output(nl.add_not(a, "y"));
  const Netlist out = remove_dangling(nl);
  EXPECT_NE(out.find("unused_in"), k_no_signal);
  EXPECT_NE(out.find("keyinput0"), k_no_signal);
}

TEST(Transform, RemoveDanglingKeepsSequentialLoops) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(g)
g = XOR(q, a)
y = NOT(q)
)";
  const Netlist nl = read_bench_string(text);
  const Netlist out = remove_dangling(nl);
  EXPECT_EQ(out.dffs().size(), 1u);
  EXPECT_NE(out.find("g"), k_no_signal);
}

TEST(Transform, RemoveDanglingDropsDeadDff) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
deadq = DFF(a)
y = NOT(a)
)";
  const Netlist nl = read_bench_string(text);
  const Netlist out = remove_dangling(nl);
  EXPECT_EQ(out.dffs().size(), 0u);
  EXPECT_EQ(out.find("deadq"), k_no_signal);
}

TEST(Transform, DecomposeMuxesRemovesAllMuxGates) {
  Netlist nl("m");
  const SignalId s = nl.add_input("s");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  nl.add_output(nl.add_mux(s, a, b, "y"));
  const Netlist out = decompose_muxes(nl);
  for (SignalId id = 0; id < out.size(); ++id) {
    EXPECT_NE(out.type(id), GateType::Mux);
  }
  // y survives with the same name.
  EXPECT_NE(out.find("y"), k_no_signal);
}

TEST(Transform, StrashMergesDuplicateGates) {
  Netlist nl("s");
  const SignalId a = nl.add_input("a");
  const SignalId b = nl.add_input("b");
  const SignalId g1 = nl.add_and(a, b, "g1");
  const SignalId g2 = nl.add_and(b, a, "g2");  // commutative duplicate
  nl.add_output(nl.add_xor(g1, g2, "y"));
  const Netlist out = strash(nl);
  // g1 and g2 merge; XOR(x, x) remains structurally (no const propagation).
  EXPECT_EQ(out.stats().gates, 2u);
}

TEST(Transform, StrashCollapsesBuffers) {
  Netlist nl("b");
  const SignalId a = nl.add_input("a");
  const SignalId buf = nl.add_gate(GateType::Buf, {a}, "buf");
  nl.add_output(nl.add_not(buf, "y"));
  const Netlist out = strash(nl);
  const SignalId y = out.find("y");
  ASSERT_NE(y, k_no_signal);
  EXPECT_EQ(out.node(y).fanins[0], out.find("a"));
}

TEST(Transform, StrashPreservesDffBoundary) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q1 = DFF(g)
q2 = DFF(g)
g = NOT(a)
y = XOR(q1, q2)
)";
  // Two DFFs with identical D must NOT merge (state duplication is
  // semantically meaningful under different init values).
  const Netlist nl = read_bench_string(text);
  const Netlist out = strash(nl);
  EXPECT_EQ(out.dffs().size(), 2u);
}

TEST(Transform, NameMapCoversEverySignal) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(a)
)";
  const Netlist nl = read_bench_string(text);
  const auto m = name_map(nl);
  EXPECT_EQ(m.size(), nl.size());
  EXPECT_EQ(m.at("y"), nl.find("y"));
}

TEST(Transform, PinSignalReplacesKeyInputWithConstant) {
  Netlist nl("pin");
  const SignalId a = nl.add_input("a");
  const SignalId k = nl.add_key_input("keyinput0");
  nl.add_output(nl.add_xor(a, k, "y"));
  const Netlist pinned = pin_signal(nl, k, true);
  EXPECT_EQ(pinned.key_inputs().size(), 0u);
  EXPECT_EQ(pinned.inputs().size(), 1u);
  const SignalId pk = pinned.find("keyinput0");
  ASSERT_NE(pk, k_no_signal);
  EXPECT_EQ(pinned.type(pk), GateType::Const1);
  EXPECT_EQ(pinned.outputs().size(), 1u);
}

TEST(Transform, PinSignalKeepsSequentialStructure) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(t)
t = AND(a, q)
y = NOT(q)
)";
  const Netlist nl = read_bench_string(text, "seq");
  const Netlist pinned = pin_signal(nl, nl.find("a"), false);
  EXPECT_EQ(pinned.inputs().size(), 0u);
  EXPECT_EQ(pinned.dffs().size(), 1u);
  EXPECT_EQ(pinned.type(pinned.find("a")), GateType::Const0);
  EXPECT_EQ(pinned.stats().gates, nl.stats().gates);
}

TEST(Transform, PinSignalRejectsNonPorts) {
  Netlist nl("bad");
  const SignalId a = nl.add_input("a");
  const SignalId g = nl.add_not(a, "g");
  nl.add_output(g);
  EXPECT_THROW((void)pin_signal(nl, g, true), std::invalid_argument);
}

}  // namespace
}  // namespace cl::netlist
