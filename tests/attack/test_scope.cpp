#include "attack/scope.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = OR(c, d)
y = XOR(t1, t2)
)";

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(Scope, BreaksXorLockWithOracleConfirmation) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  std::size_t equal = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::xor_lock(nl, 3, rng);
    SequentialOracle oracle(nl);
    const ScopeResult sr = scope_attack(lr.locked, &oracle);
    if (sr.result.outcome == Outcome::Equal) {
      ++equal;
      EXPECT_EQ(sr.result.key, lr.correct_key) << "seed " << seed;
    } else {
      // A partial verdict must still never contradict the real key.
      for (const auto& [bit, value] : sr.report.decided_bits()) {
        EXPECT_EQ(value, lr.correct_key[bit] != 0) << "seed " << seed;
      }
    }
  }
  EXPECT_GE(equal, 3u);  // >= 90% of bits overall: most seeds fully decided
}

TEST(Scope, BreaksMuxLockWithOracleConfirmation) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  std::size_t decided_total = 0, bits_total = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::mux_lock(nl, 4, rng);
    SequentialOracle oracle(nl);
    const ScopeResult sr = scope_attack(lr.locked, &oracle);
    bits_total += lr.correct_key.size();
    decided_total += sr.decided;
    for (const auto& [bit, value] : sr.report.decided_bits()) {
      EXPECT_EQ(value, lr.correct_key[bit] != 0) << "seed " << seed;
    }
  }
  EXPECT_GE(decided_total * 10, bits_total * 9)
      << decided_total << "/" << bits_total;
}

TEST(Scope, OracleFreeModeReportsVerdictsWithoutClaimingEqual) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(2);
  const auto lr = lock::xor_lock(nl, 3, rng);
  const ScopeResult sr = scope_attack(lr.locked);  // no oracle at all
  EXPECT_NE(sr.result.outcome, Outcome::Equal);
  for (const auto& [bit, value] : sr.report.decided_bits()) {
    EXPECT_EQ(value, lr.correct_key[bit] != 0);
  }
  EXPECT_NE(sr.result.detail.find("bits decided"), std::string::npos);
}

TEST(Scope, HoldsOnCuteLockStr) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    core::StrOptions opt;
    opt.num_keys = 4;
    opt.key_bits = 2;
    opt.locked_ffs = 2;
    opt.seed = seed;
    const auto lr = core::cute_lock_str(nl, opt);
    SequentialOracle oracle(nl);
    const ScopeResult sr = scope_attack(lr.locked, &oracle);
    EXPECT_EQ(sr.decided, 0u) << "seed " << seed;
    EXPECT_NE(sr.result.outcome, Outcome::Equal)
        << "seed " << seed << ": " << sr.result.summary();
    // Every bit is unknown — the honest answer, not a wrong guess.
    for (const auto& h : sr.report.bits) {
      EXPECT_EQ(h.verdict, analysis::BitVerdict::Unknown) << "seed " << seed;
    }
  }
}

TEST(Scope, TimeoutWhenBudgetDiesMidSweep) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(4);
  const auto lr = lock::xor_lock(nl, 3, rng);
  ScopeOptions opt;
  opt.budget.time_limit_s = 1e-12;
  const ScopeResult sr = scope_attack(lr.locked, nullptr, opt);
  EXPECT_EQ(sr.result.outcome, Outcome::Timeout);
}

}  // namespace
}  // namespace cl::attack
