#include "attack/verify.hpp"

#include <gtest/gtest.h>

#include "attack/oracle.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(Verify, AcceptsCorrectKey) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 5, rng);
  const auto v = verify_static_key(lr.locked, lr.correct_key, nl);
  EXPECT_TRUE(v.equivalent);
  EXPECT_TRUE(v.counterexample.empty());
}

TEST(Verify, RejectsWrongKeyWithCounterexample) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 5, rng);
  sim::BitVec wrong = lr.correct_key;
  wrong[2] ^= 1;
  const auto v = verify_static_key(lr.locked, wrong, nl);
  EXPECT_FALSE(v.equivalent);
  ASSERT_FALSE(v.counterexample.empty());
  // The counterexample must genuinely distinguish.
  const auto want = sim::run_sequence(nl, v.counterexample);
  const auto got = sim::run_sequence(lr.locked, v.counterexample, {wrong});
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(Verify, SatPhaseCatchesRarelyObservableDifferences) {
  // A lock whose corruption triggers on exactly one input pattern: random
  // simulation is unlikely to see it, the SAT phase must.
  const char* comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = AND(a, b, c, d)
)";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(5);
  const auto lr = lock::sar_lock(nl, 4, rng);
  sim::BitVec wrong = lr.correct_key;
  wrong[0] ^= 1;
  VerifyOptions opts;
  opts.random_sequences = 1;  // cripple the simulation phase
  opts.sequence_cycles = 1;
  const auto v = verify_static_key(lr.locked, wrong, nl, opts);
  EXPECT_FALSE(v.equivalent);
}

TEST(Verify, KeyWidthMismatchRejected) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 5, rng);
  EXPECT_THROW(verify_static_key(lr.locked, sim::BitVec{1}, nl),
               std::invalid_argument);
}

TEST(Oracle, CountsQueriesAndRejectsKeyedReference) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  SequentialOracle oracle(nl);
  EXPECT_EQ(oracle.num_queries(), 0u);
  oracle.query({sim::BitVec{0, 0, 0, 0}});
  oracle.query_comb(sim::BitVec{1, 0, 1, 0});
  EXPECT_EQ(oracle.num_queries(), 2u);
  EXPECT_EQ(oracle.num_inputs(), 4u);

  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  EXPECT_THROW(SequentialOracle{lr.locked}, std::invalid_argument);
}

TEST(Oracle, BatchedQueryCountsPatternsAndMatchesScalarQueries) {
  // num_queries() counts patterns (lanes actually used), not call sites: a
  // 70-sequence batch costs 70, exactly what 70 scalar queries would.
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  SequentialOracle oracle(nl);
  util::Rng rng(9);
  std::vector<std::vector<sim::BitVec>> seqs;
  for (int j = 0; j < 70; ++j) {
    seqs.push_back(sim::random_stimulus(rng, 6, oracle.num_inputs()));
  }
  const auto batched = oracle.query_batch(seqs);
  EXPECT_EQ(oracle.num_queries(), 70u);
  ASSERT_EQ(batched.size(), seqs.size());
  SequentialOracle scalar(nl);
  for (std::size_t j = 0; j < seqs.size(); ++j) {
    EXPECT_EQ(batched[j], scalar.query(seqs[j])) << "sequence " << j;
  }
  EXPECT_EQ(scalar.num_queries(), 70u);
}

}  // namespace
}  // namespace cl::attack
