#include "attack/bbo.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(Bbo, ExhaustiveSearchFindsSingleKey) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 5, rng);
  SequentialOracle oracle(nl);
  const AttackResult r = bbo_attack(lr.locked, oracle);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_EQ(r.key, lr.correct_key);
}

TEST(Bbo, MultiKeyCuteLockProvedUnsolvable) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 3;
  opt.locked_ffs = 2;
  opt.seed = 5;
  const auto lr = core::cute_lock_str(nl, opt);
  SequentialOracle oracle(nl);
  BboOptions opts;
  opts.screen_cycles = 48;
  opts.screen_sequences = 12;
  const AttackResult r = bbo_attack(lr.locked, oracle, opts);
  // The exhaustive screen may either kill every static key (CNS) or leave a
  // low-observability survivor that then fails exact verification. Either
  // way the defense holds.
  EXPECT_TRUE(defense_held(r.outcome)) << r.summary();
}

TEST(Bbo, SingleKeyReductionRecovered) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 3;
  opt.locked_ffs = 1;
  opt.seed = 6;
  opt.single_key_reduction = true;
  const auto lr = core::cute_lock_str(nl, opt);
  SequentialOracle oracle(nl);
  const AttackResult r = bbo_attack(lr.locked, oracle);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(Bbo, ParallelScreeningIsDeterministicAcrossJobCounts) {
  // The pool inside the attack must not change anything observable: outcome,
  // key, iteration accounting, and oracle pattern count are fixed by the
  // seed alone, for any job count.
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 3;
  opt.locked_ffs = 2;
  opt.seed = 5;
  const auto lr = core::cute_lock_str(nl, opt);
  std::vector<AttackResult> results;
  std::vector<std::uint64_t> oracle_patterns;
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{3}}) {
    SequentialOracle oracle(nl);
    BboOptions opts;
    opts.screen_cycles = 24;
    opts.screen_sequences = 6;
    opts.jobs = jobs;
    results.push_back(bbo_attack(lr.locked, oracle, opts));
    oracle_patterns.push_back(oracle.num_queries());
  }
  EXPECT_EQ(results[0].outcome, results[1].outcome);
  EXPECT_EQ(results[0].key, results[1].key);
  EXPECT_EQ(results[0].iterations, results[1].iterations);
  EXPECT_EQ(results[0].detail, results[1].detail);
  EXPECT_EQ(oracle_patterns[0], oracle_patterns[1]);
}

TEST(Bbo, TimeBudgetRespected) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(7);
  const auto lr = lock::xor_lock(nl, 5, rng);
  SequentialOracle oracle(nl);
  BboOptions opts;
  opts.budget.time_limit_s = 0.0;
  const AttackResult r = bbo_attack(lr.locked, oracle, opts);
  EXPECT_EQ(r.outcome, Outcome::Timeout);
}

}  // namespace
}  // namespace cl::attack
