#include "attack/periodic_attack.hpp"

#include <gtest/gtest.h>

#include "benchgen/s27.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"

namespace cl::attack {
namespace {

PeriodicAttackOptions quick(std::size_t max_period) {
  PeriodicAttackOptions o;
  o.max_period = max_period;
  o.budget.time_limit_s = 30.0;
  o.budget.max_iterations = 200;
  return o;
}

TEST(PeriodicAttack, RecoversCuteLockSchedule) {
  // The adaptive attacker who models the time base DOES break Cute-Lock —
  // the defense margin is the schedule-space blowup, not impossibility.
  const auto s27 = benchgen::make_s27();
  core::StrOptions options;
  options.num_keys = 4;
  options.key_bits = 2;
  options.locked_ffs = 2;
  options.seed = 3;
  const auto locked = core::cute_lock_str(s27, options);
  SequentialOracle oracle(s27);
  const PeriodicAttackResult r =
      periodic_key_attack(locked.locked, oracle, quick(4));
  ASSERT_EQ(r.result.outcome, Outcome::Equal) << r.result.summary();
  // Period 4 (or a divisor pattern that happens to work) with a schedule
  // that genuinely unlocks; the recovered schedule must replay the oracle.
  EXPECT_GE(r.recovered_period, 1u);
  EXPECT_LE(r.recovered_period, 4u);
  EXPECT_FALSE(r.recovered_schedule.empty());
}

TEST(PeriodicAttack, StaticLockIsPeriodOne) {
  const auto s27 = benchgen::make_s27();
  util::Rng rng(5);
  const auto locked = lock::xor_lock(s27, 4, rng);
  SequentialOracle oracle(s27);
  const PeriodicAttackResult r =
      periodic_key_attack(locked.locked, oracle, quick(3));
  ASSERT_EQ(r.result.outcome, Outcome::Equal) << r.result.summary();
  EXPECT_EQ(r.recovered_period, 1u);
  EXPECT_EQ(r.recovered_schedule[0], locked.correct_key);
}

TEST(PeriodicAttack, TooSmallPeriodHypothesisRefuted) {
  // Capping the hypothesized period below the real one must end in CNS,
  // not a bogus key.
  const auto s27 = benchgen::make_s27();
  core::StrOptions options;
  options.num_keys = 4;
  options.key_bits = 2;
  options.locked_ffs = 2;
  options.seed = 7;
  options.explicit_keys = {0, 1, 2, 3};  // genuinely period-4
  const auto locked = core::cute_lock_str(s27, options);
  SequentialOracle oracle(s27);
  const PeriodicAttackResult r =
      periodic_key_attack(locked.locked, oracle, quick(2));
  EXPECT_NE(r.result.outcome, Outcome::Equal) << r.result.summary();
}

}  // namespace
}  // namespace cl::attack
