#include "attack/fall.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = OR(c, d)
y = XOR(t1, t2)
)";

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(Fall, BreaksTtLock) {
  // The FALL result the original paper reports: point-function locks leak
  // their protected pattern structurally.
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::tt_lock(nl, 4, rng);
    SequentialOracle oracle(nl);
    const FallResult fr = fall_attack(lr.locked, oracle);
    EXPECT_GE(fr.candidates, 1u) << "seed " << seed;
    EXPECT_EQ(fr.result.outcome, Outcome::Equal)
        << "seed " << seed << ": " << fr.result.summary();
    EXPECT_EQ(fr.result.key, lr.correct_key) << "seed " << seed;
  }
}

TEST(Fall, BreaksSfllHd0) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(9);
  const auto lr = lock::sfll_hd(nl, 4, 0, rng);
  SequentialOracle oracle(nl);
  const FallResult fr = fall_attack(lr.locked, oracle);
  // h=0 degenerates to a point function; the comparator is findable.
  EXPECT_GE(fr.candidates, 1u);
  EXPECT_EQ(fr.result.outcome, Outcome::Equal) << fr.result.summary();
}

TEST(Fall, ZeroCandidatesOnCuteLockStr) {
  // Table V's FALL row: Cute-Lock-Str has no input-pattern comparator
  // feeding flip logic, so structural analysis extracts nothing.
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    core::StrOptions opt;
    opt.num_keys = 4;
    opt.key_bits = 2;
    opt.locked_ffs = 2;
    opt.seed = seed;
    const auto lr = core::cute_lock_str(nl, opt);
    SequentialOracle oracle(nl);
    const FallResult fr = fall_attack(lr.locked, oracle);
    EXPECT_EQ(fr.candidates, 0u) << "seed " << seed;
    EXPECT_EQ(fr.confirmed, 0u) << "seed " << seed;
    EXPECT_NE(fr.result.outcome, Outcome::Equal) << fr.result.summary();
  }
}

TEST(Fall, XorLockYieldsNoPointFunctionCandidates) {
  // XOR key gates are not comparator structures either; FALL finds no
  // candidates (it was designed for stripped-functionality locks).
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(11);
  const auto lr = lock::xor_lock(nl, 3, rng);
  SequentialOracle oracle(nl);
  const FallResult fr = fall_attack(lr.locked, oracle);
  EXPECT_EQ(fr.confirmed, 0u);
  EXPECT_NE(fr.result.outcome, Outcome::Equal);
}

}  // namespace
}  // namespace cl::attack
