#include "attack/seq_attack.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

AttackBudget small_budget() {
  AttackBudget b;
  b.time_limit_s = 30.0;
  b.max_iterations = 200;
  b.max_depth = 16;
  return b;
}

TEST(SeqAttack, BmcBreaksSequentialXorLock) {
  const Netlist nl = s27();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::xor_lock(nl, 4, rng);
    SequentialOracle oracle(nl);
    const AttackResult r = bmc_attack(lr.locked, oracle, small_budget());
    EXPECT_EQ(r.outcome, Outcome::Equal) << "seed " << seed << ": " << r.summary();
  }
}

TEST(SeqAttack, Kc2BreaksSequentialXorLock) {
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  const AttackResult r = kc2_attack(lr.locked, oracle, small_budget());
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(SeqAttack, RaneBreaksSequentialXorLock) {
  const Netlist nl = s27();
  util::Rng rng(7);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  // The symbolic reset state multiplies the hypothesis space (key x init),
  // so RANE needs a larger discrimination budget than plain BMC.
  AttackBudget budget = small_budget();
  budget.max_iterations = 1500;
  budget.time_limit_s = 60.0;
  const AttackResult r = rane_attack(lr.locked, oracle, budget);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(SeqAttack, SingleKeyReductionOfCuteLockIsBroken) {
  // Paper §IV-A: reducing Cute-Lock-Str to a single key must make the
  // oracle-guided attacks succeed — validating both the lock construction
  // and the attack implementations.
  const Netlist nl = s27();
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 1;
  opt.seed = 42;
  opt.single_key_reduction = true;
  const auto lr = core::cute_lock_str(nl, opt);
  SequentialOracle oracle(nl);
  const AttackResult r = bmc_attack(lr.locked, oracle, small_budget());
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_EQ(r.key, lr.key_schedule[0]);
}

class MultiKeyDefense : public ::testing::TestWithParam<int> {};

TEST_P(MultiKeyDefense, CuteLockStrDefeatsStaticKeyAttacks) {
  // The paper's central claim (Tables III-IV): multi-key time-based locking
  // drives static-key attacks to a dead end — CNS, a wrong key, or budget
  // exhaustion, never a verified key.
  const Netlist nl = s27();
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 2;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  const auto lr = core::cute_lock_str(nl, opt);
  SequentialOracle oracle(nl);

  const AttackResult bmc = bmc_attack(lr.locked, oracle, small_budget());
  EXPECT_TRUE(defense_held(bmc.outcome)) << "bmc: " << bmc.summary();
  const AttackResult kc2 = kc2_attack(lr.locked, oracle, small_budget());
  EXPECT_TRUE(defense_held(kc2.outcome)) << "kc2: " << kc2.summary();
  const AttackResult rane = rane_attack(lr.locked, oracle, small_budget());
  EXPECT_TRUE(defense_held(rane.outcome)) << "rane: " << rane.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiKeyDefense, ::testing::Values(1, 2, 3));

TEST(SeqAttack, TimeoutOnZeroBudget) {
  const Netlist nl = s27();
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  AttackBudget b;
  b.max_iterations = 0;
  b.time_limit_s = 30.0;
  const AttackResult r = bmc_attack(lr.locked, oracle, b);
  EXPECT_EQ(r.outcome, Outcome::Timeout);
}

TEST(SeqAttack, RequiresKeyInputs) {
  const Netlist nl = s27();
  SequentialOracle oracle(nl);
  EXPECT_THROW(bmc_attack(nl, oracle, small_budget()), std::invalid_argument);
}

}  // namespace
}  // namespace cl::attack
