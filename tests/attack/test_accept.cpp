#include "attack/accept.hpp"

#include <gtest/gtest.h>

#include "lock/cac_lock.hpp"
#include "lock/comb_locks.hpp"
#include "lock/latch_lock.hpp"
#include "netlist/bench_io.hpp"
#include "sim/compiled.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

// AND-masked so that inverting an internal net corrupts only the input
// words where the other operand enables it — wrong keys with corruption
// rates strictly between 0 and 1 exist, which the ε tests below need.
const char* k_comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = OR(c, d)
y = AND(t1, t2)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

/// The correct key with the decoy positions overwritten by `word`'s bits.
/// Every such assignment is a functionally correct key by construction.
sim::BitVec decoy_variant(const lock::LockResult& lr, std::uint64_t word) {
  sim::BitVec key = lr.correct_key;
  for (std::size_t b = 0; b < lr.decoy_key_bits.size(); ++b) {
    key[lr.decoy_key_bits[b]] = (word >> b) & 1;
  }
  return key;
}

// The multi-key satellite: every enumerated correct key of a CAC 2.0
// instance is accepted under AnyPassingKey, while the one-key (ExactKey)
// criterion accepts only the ground-truth assignment — the gap Hu et al.
// identify between "recovered the secret" and "broke the lock".
TEST(Accept, CacAcceptsEveryEnumeratedCorrectKey) {
  const Netlist nl = s27();
  util::Rng rng(11);
  const lock::LockResult lr = lock::cac_lock(nl, 4, 3, rng);
  ASSERT_EQ(lr.decoy_key_bits.size(), 3u);
  std::size_t exact_hits = 0, inexact_passes = 0;
  for (std::uint64_t word = 0; word < 8; ++word) {
    const sim::BitVec key = decoy_variant(lr, word);
    const AcceptReport rep =
        verify_any_key(lr.locked, key, nl, &lr.correct_key);
    EXPECT_TRUE(rep.accepted) << "decoy word " << word;
    EXPECT_EQ(rep.any_key_pass, 1) << "decoy word " << word;
    EXPECT_EQ(rep.corruption_rate, 0.0) << "decoy word " << word;
    if (rep.key_exact == 1) ++exact_hits;
    if (rep.key_exact == 0 && rep.any_key_pass == 1) ++inexact_passes;
  }
  // Exactly one assignment matches the stored secret; the other seven are
  // the one-key-premise gap cells (passing keys the exact criterion denies).
  EXPECT_EQ(exact_hits, 1u);
  EXPECT_EQ(inexact_passes, 7u);
}

TEST(Accept, LatchDecoyBitsAreDontCares) {
  const Netlist nl = s27();
  util::Rng rng(5);
  const lock::LockResult lr = lock::latch_lock(nl, 3, 2, rng);
  ASSERT_EQ(lr.decoy_key_bits.size(), 2u);
  for (std::uint64_t word = 0; word < 4; ++word) {
    const AcceptReport rep = verify_any_key(
        lr.locked, decoy_variant(lr, word), nl, &lr.correct_key);
    EXPECT_TRUE(rep.accepted) << "decoy word " << word;
  }
}

TEST(Accept, RejectsCorruptingKeys) {
  const Netlist nl = s27();
  util::Rng rng(13);
  const lock::LockResult lr = lock::cac_lock(nl, 4, 3, rng);
  std::vector<bool> is_decoy(lr.correct_key.size(), false);
  for (std::size_t pos : lr.decoy_key_bits) is_decoy[pos] = true;
  for (std::size_t pos = 0; pos < lr.correct_key.size(); ++pos) {
    if (is_decoy[pos]) continue;
    sim::BitVec key = lr.correct_key;
    key[pos] ^= 1;
    const AcceptReport rep = verify_any_key(lr.locked, key, nl, nullptr);
    EXPECT_FALSE(rep.accepted) << "real bit " << pos;
    EXPECT_EQ(rep.any_key_pass, 0) << "real bit " << pos;
    // No ground truth supplied, so exactness must stay unevaluated.
    EXPECT_EQ(rep.key_exact, -1);
  }
}

TEST(Accept, ExactCriterionNeedsGroundTruth) {
  const Netlist nl = s27();
  util::Rng rng(3);
  const lock::LockResult lr = lock::cac_lock(nl, 4, 2, rng);
  AcceptOptions opt;
  opt.criterion = AcceptCriterion::ExactKey;
  const AcceptReport rep =
      verify_any_key(lr.locked, lr.correct_key, nl, nullptr, opt);
  EXPECT_FALSE(rep.accepted);
  EXPECT_EQ(rep.key_exact, -1);
  EXPECT_NE(rep.detail.find("ground truth unknown"), std::string::npos);
  const AcceptReport with_truth =
      verify_any_key(lr.locked, lr.correct_key, nl, &lr.correct_key, opt);
  EXPECT_TRUE(with_truth.accepted);
  EXPECT_EQ(with_truth.key_exact, 1);
}

TEST(Accept, WidthMismatchIsRejectedUnderEveryCriterion) {
  const Netlist nl = s27();
  util::Rng rng(9);
  const lock::LockResult lr = lock::cac_lock(nl, 4, 2, rng);
  const sim::BitVec narrow(lr.correct_key.size() - 1, 1);
  for (const AcceptCriterion c :
       {AcceptCriterion::ExactKey, AcceptCriterion::AnyPassingKey,
        AcceptCriterion::Approximate}) {
    AcceptOptions opt;
    opt.criterion = c;
    const AcceptReport rep =
        verify_any_key(lr.locked, narrow, nl, &lr.correct_key, opt);
    EXPECT_FALSE(rep.accepted) << criterion_name(c);
    EXPECT_EQ(rep.corruption_rate, -1.0) << criterion_name(c);
    EXPECT_NE(rep.detail.find("width"), std::string::npos);
  }
}

// ε-acceptance cross-checked against an independent brute-force corruption
// count: on a 4-input combinational circuit the exhaustive evaluator must
// report exactly the enumerated corrupted-word fraction, and acceptance must
// be monotone in ε with the threshold sitting at that rate.
TEST(Accept, EpsilonAcceptanceMatchesBruteForceAndIsMonotone) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(17);
  const lock::LockResult lr = lock::xor_lock(nl, 3, rng);

  // Independent brute force: every input word, one cycle, plain interpreter.
  const std::size_t words = 1u << nl.inputs().size();
  const auto brute_rate = [&](const sim::BitVec& key) {
    std::size_t corrupted = 0;
    for (std::uint64_t word = 0; word < words; ++word) {
      const std::vector<sim::BitVec> stim{
          sim::u64_to_bits(word, nl.inputs().size())};
      const auto want = sim::run_sequence(nl, stim);
      const auto got = sim::run_sequence(lr.locked, stim, {key});
      if (want != got) ++corrupted;
    }
    return static_cast<double>(corrupted) / words;
  };

  // Find a single-bit flip whose corruption is partial (an XOR on t1 or t2
  // is masked by the AND output; one on y itself corrupts everywhere).
  sim::BitVec wrong;
  double rate = 0.0;
  for (std::size_t pos = 0; pos < lr.correct_key.size(); ++pos) {
    sim::BitVec candidate = lr.correct_key;
    candidate[pos] ^= 1;
    const double r = brute_rate(candidate);
    if (r > 0.0 && r < 1.0) {
      wrong = candidate;
      rate = r;
      break;
    }
  }
  ASSERT_FALSE(wrong.empty()) << "no wrong key with partial corruption";

  AcceptOptions opt;
  opt.criterion = AcceptCriterion::Approximate;
  opt.exhaustive = true;
  opt.sample_cycles = 1;
  const auto judge = [&](double eps) {
    opt.epsilon = eps;
    return verify_any_key(lr.locked, wrong, nl, &lr.correct_key, opt);
  };

  EXPECT_EQ(judge(0.0).corruption_rate, rate);
  bool prev = false;
  for (const double eps : {0.0, rate / 2, rate - 1e-9, rate, rate + 1e-9,
                           0.999, 1.0}) {
    const bool now = judge(eps).accepted;
    EXPECT_EQ(now, eps >= rate) << "eps " << eps;
    EXPECT_TRUE(now || !prev) << "acceptance not monotone at eps " << eps;
    prev = now;
  }
  // The correct key trivially meets every ε, including zero.
  opt.epsilon = 0.0;
  EXPECT_TRUE(
      verify_any_key(lr.locked, lr.correct_key, nl, &lr.correct_key, opt)
          .accepted);
}

TEST(Accept, ApplyAcceptanceCopiesVerdictIntoAttackResult) {
  AcceptReport rep;
  rep.key_exact = 0;
  rep.any_key_pass = 1;
  rep.corruption_rate = 0.25;
  AttackResult result;
  EXPECT_EQ(result.key_exact, -1);
  EXPECT_EQ(result.any_key_pass, -1);
  apply_acceptance(rep, &result);
  EXPECT_EQ(result.key_exact, 0);
  EXPECT_EQ(result.any_key_pass, 1);
  EXPECT_EQ(result.corruption_rate, 0.25);
}

TEST(Accept, CriterionNamesRoundTrip) {
  for (const char* name : {"exact", "any", "approx"}) {
    const auto parsed = parse_criterion(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_STREQ(criterion_name(*parsed), name);
  }
  EXPECT_FALSE(parse_criterion("strict").has_value());
  EXPECT_FALSE(parse_criterion("").has_value());
}

}  // namespace
}  // namespace cl::attack
