#include "attack/sat_attack.hpp"

#include <gtest/gtest.h>

#include "attack/verify.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

/// Scan-model attack fixture: lock sequential s27, then expose scan chains
/// on both the locked circuit and the oracle's reference.
struct ScanFixture {
  Netlist original;
  Netlist original_scan;
  Netlist locked_scan;
  sim::BitVec correct_key;

  ScanFixture(const lock::LockResult& lr, const Netlist& orig)
      : original(orig.clone(orig.name())),
        original_scan(netlist::scan_expose(orig)),
        locked_scan(netlist::scan_expose(lr.locked)),
        correct_key(lr.correct_key) {}
};

TEST(SatAttack, BreaksXorLockOnScanModel) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::xor_lock(nl, 6, rng);
    const ScanFixture fx(lr, nl);
    SequentialOracle oracle(fx.original_scan);
    const AttackResult r = sat_attack(fx.locked_scan, oracle);
    EXPECT_EQ(r.outcome, Outcome::Equal) << "seed " << seed << ": " << r.summary();
    EXPECT_EQ(r.key, fx.correct_key) << "seed " << seed;
  }
}

TEST(SatAttack, BreaksXorLockWithSatPreprocessing) {
  // Same attack with SAT pre/inprocessing enabled: bounded variable
  // elimination runs on every rebuilt miter (key and state variables
  // frozen) and the recovered key must still verify against the oracle —
  // i.e. model reconstruction hands back real key bits, not artifacts of
  // the reduced formula.
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::xor_lock(nl, 6, rng);
    const ScanFixture fx(lr, nl);
    SequentialOracle oracle(fx.original_scan);
    SatAttackOptions options;
    options.budget.sat_preprocess = true;
    const AttackResult r = sat_attack(fx.locked_scan, oracle, options);
    ASSERT_EQ(r.outcome, Outcome::Equal) << "seed " << seed << ": " << r.summary();
    EXPECT_EQ(r.key, fx.correct_key) << "seed " << seed;
    const VerifyResult vr =
        verify_static_key(fx.locked_scan, r.key, fx.original_scan);
    EXPECT_TRUE(vr.equivalent) << "seed " << seed;
  }
}

TEST(SatAttack, BreaksMuxLockOnScanModel) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(7);
  const auto lr = lock::mux_lock(nl, 5, rng);
  const ScanFixture fx(lr, nl);
  SequentialOracle oracle(fx.original_scan);
  const AttackResult r = sat_attack(fx.locked_scan, oracle);
  // MUX locks can have multiple functionally correct keys (decoy == true
  // net); Equal is what matters, not bit-exactness.
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(SatAttack, BreaksAntiSatEventually) {
  // Anti-SAT on a tiny input space: the DIP count is bounded by 2^|X| and
  // the attack must still converge to a working key (K1 == K2).
  const char* comb = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(9);
  const auto lr = lock::anti_sat(nl, 4, rng);
  SequentialOracle oracle(nl);
  const AttackResult r = sat_attack(lr.locked, oracle);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(SatAttack, SarLockForcesManyDips) {
  // The SARLock property: one DIP eliminates one key, so breaking a k-bit
  // SARLock needs on the order of 2^k iterations.
  const char* comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
y = AND(a, b, c, d)
)";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(11);
  const auto lr = lock::sar_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  const AttackResult r = sat_attack(lr.locked, oracle);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_GE(r.iterations, 8u);  // ~2^4 minus corner effects
}

TEST(SatAttack, TimeoutOnTinyBudget) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(13);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const ScanFixture fx(lr, nl);
  SequentialOracle oracle(fx.original_scan);
  SatAttackOptions opts;
  opts.budget.max_iterations = 0;
  const AttackResult r = sat_attack(fx.locked_scan, oracle, opts);
  EXPECT_EQ(r.outcome, Outcome::Timeout);
}

TEST(SatAttack, RejectsSequentialInput) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  SequentialOracle oracle(nl);
  EXPECT_THROW(sat_attack(lr.locked, oracle), std::invalid_argument);
}

TEST(SatAttack, DoubleDipBreaksXorLockWithFewerRounds) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  util::Rng rng(17);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const ScanFixture fx(lr, nl);
  SequentialOracle oracle(fx.original_scan);
  SatAttackOptions opts;
  opts.mode = SatAttackOptions::Mode::DoubleDip;
  const AttackResult r = sat_attack(fx.locked_scan, oracle, opts);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
}

TEST(SatAttack, AppSatSettlesOnLowCorruptionLock) {
  // Anti-SAT has single-minterm corruption per wrong key: AppSAT's random
  // sampling sees (near-)zero error and settles early.
  const char* comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
INPUT(f)
OUTPUT(y)
t1 = XOR(a, b)
t2 = AND(c, d)
t3 = OR(e, f)
t4 = XOR(t1, t2)
y = AND(t4, t3)
)";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(19);
  const auto lr = lock::anti_sat(nl, 8, rng);
  SequentialOracle oracle(nl);
  SatAttackOptions opts;
  opts.mode = SatAttackOptions::Mode::AppSat;
  opts.appsat_sample_every = 2;
  const AttackResult r = sat_attack(lr.locked, oracle, opts);
  // Either it settles (approximate key verified exactly Equal/WrongKey) or
  // converges classically; it must not time out on this tiny circuit.
  EXPECT_NE(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_NE(r.outcome, Outcome::Fail) << r.summary();
}

}  // namespace
}  // namespace cl::attack
