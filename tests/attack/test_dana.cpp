#include "attack/dana.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "netlist/netlist.hpp"

namespace cl::attack {
namespace {

using netlist::DffInit;
using netlist::k_no_signal;
using netlist::Netlist;
using netlist::SignalId;

/// Two 4-bit register words A -> B (a pipeline), bit-sliced: the word
/// structure DANA is designed to recover.
Netlist two_word_pipeline() {
  Netlist nl("pipe");
  std::vector<SignalId> in;
  for (int i = 0; i < 4; ++i) in.push_back(nl.add_input("x" + std::to_string(i)));
  std::vector<SignalId> a, b;
  for (int i = 0; i < 4; ++i) {
    a.push_back(nl.add_dff(in[static_cast<std::size_t>(i)], DffInit::Zero,
                           "A" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    const SignalId g = nl.add_not(a[static_cast<std::size_t>(i)],
                                  "g" + std::to_string(i));
    b.push_back(nl.add_dff(g, DffInit::Zero, "B" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) nl.add_output(b[static_cast<std::size_t>(i)]);
  nl.check();
  return nl;
}

RegisterGroups pipeline_truth() {
  return {{"A0", "A1", "A2", "A3"}, {"B0", "B1", "B2", "B3"}};
}

TEST(Dana, RecoversWordStructure) {
  const Netlist nl = two_word_pipeline();
  const DanaResult r = dana_attack(nl);
  // Exactly two clusters: {A*}, {B*}.
  ASSERT_EQ(r.clusters.size(), 2u);
  const double nmi = nmi_score(nl, r, pipeline_truth());
  EXPECT_DOUBLE_EQ(nmi, 1.0);
}

TEST(Dana, LockingDegradesClustering) {
  const Netlist nl = two_word_pipeline();
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 3;
  opt.seed = 3;
  const auto lr = core::cute_lock_str(nl, opt);
  const DanaResult locked = dana_attack(lr.locked);
  const double nmi_locked = nmi_score(lr.locked, locked, pipeline_truth());
  const DanaResult orig = dana_attack(nl);
  const double nmi_orig = nmi_score(nl, orig, pipeline_truth());
  EXPECT_LT(nmi_locked, nmi_orig);
}

TEST(Dana, SelfFeedingRegistersSplitFromPipeline) {
  Netlist nl("mix");
  const SignalId x = nl.add_input("x");
  // Word W: two FFs fed by the input.
  const SignalId w0 = nl.add_dff(x, DffInit::Zero, "W0");
  const SignalId w1 = nl.add_dff(x, DffInit::Zero, "W1");
  // Counter-ish FF feeding itself.
  SignalId c = nl.add_dff(k_no_signal, DffInit::Zero, "C");
  nl.set_dff_input(c, nl.add_not(c, "nc"));
  nl.add_output(w0);
  nl.add_output(w1);
  nl.add_output(c);
  const DanaResult r = dana_attack(nl);
  // W0/W1 share a cluster; C is alone.
  ASSERT_EQ(r.clusters.size(), 2u);
  const double nmi = nmi_score(nl, r, {{"W0", "W1"}, {"C"}});
  EXPECT_DOUBLE_EQ(nmi, 1.0);
}

TEST(Dana, EmptyCircuitYieldsNoClusters) {
  Netlist nl("none");
  const SignalId a = nl.add_input("a");
  nl.add_output(nl.add_not(a, "y"));
  const DanaResult r = dana_attack(nl);
  EXPECT_TRUE(r.clusters.empty());
  EXPECT_EQ(nmi_score(nl, r, {}), 0.0);
}

TEST(Dana, NmiProperties) {
  const Netlist nl = two_word_pipeline();
  const DanaResult r = dana_attack(nl);
  // Perfect match scores 1 (tested above); a maximally-wrong ground truth
  // (grouping one bit of each word together) scores lower.
  const double mismatched =
      nmi_score(nl, r, {{"A0", "B0"}, {"A1", "B1"}, {"A2", "B2"}, {"A3", "B3"}});
  EXPECT_LT(mismatched, 1.0);
  EXPECT_GE(mismatched, 0.0);
}

TEST(Dana, ConvergesWithinRoundLimit) {
  const Netlist nl = two_word_pipeline();
  DanaOptions opts;
  opts.max_rounds = 2;
  const DanaResult r = dana_attack(nl, opts);
  EXPECT_LE(r.rounds, 2u);
}

}  // namespace
}  // namespace cl::attack
