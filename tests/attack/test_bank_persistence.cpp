// Disk persistence for the cross-attack ObservationBank: the versioned
// binary format round-trips facts exactly, merges like record() (dedup +
// cap), and rejects corrupt or truncated files instead of loading garbage
// constraints into future attacks.
#include "attack/observation_bank.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sequence.hpp"

namespace cl::attack {
namespace {

namespace fs = std::filesystem;

std::vector<sim::BitVec> seq(std::initializer_list<std::string> frames) {
  std::vector<sim::BitVec> out;
  for (const std::string& frame : frames) {
    sim::BitVec bits;
    for (char c : frame) bits.push_back(c == '1' ? 1 : 0);
    out.push_back(std::move(bits));
  }
  return out;
}

/// Little-endian u64, byte-compatible with the persistence format.
void put_u64(std::ostream& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
  out.write(bytes, sizeof bytes);
}

/// A complete registry file holding one bank under `key` — what
/// save_observation_banks would write from another process, built by hand so
/// loading can be observed creating a brand-new bank in this one.
std::string registry_file_with(std::uint64_t key, const ObservationBank& bank) {
  std::ostringstream out(std::ios::binary);
  out.write("CLOBANK1", 8);
  put_u64(out, 1);  // one bank
  put_u64(out, key);
  bank.serialize(out);
  return out.str();
}

class BankPersistence : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cutelock_bank_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    path_ = (dir_ / "bank.bin").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void write_file(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(BankPersistence, SerializeRoundTripsThroughAStream) {
  ObservationBank bank;
  const auto in_a = seq({"0101", "1100"});
  const auto out_a = seq({"1", "0"});
  const auto in_b = seq({"1111"});
  const auto out_b = seq({"1"});
  bank.record(in_a, out_a);
  bank.record(in_b, out_b);

  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  bank.serialize(stream);

  ObservationBank restored;
  ASSERT_TRUE(restored.deserialize(stream));
  ASSERT_EQ(restored.size(), 2u);
  const auto hit = restored.lookup(in_a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, out_a);
  const auto facts = restored.snapshot();
  EXPECT_EQ(facts[0].inputs, in_a);
  EXPECT_EQ(facts[0].outputs, out_a);
  EXPECT_EQ(facts[1].inputs, in_b);
  EXPECT_EQ(facts[1].outputs, out_b);
}

TEST_F(BankPersistence, DeserializeMergesLikeRecord) {
  ObservationBank bank;
  bank.record(seq({"01"}), seq({"1"}));
  std::string bytes;
  {
    std::ostringstream out(std::ios::binary);
    bank.serialize(out);
    bytes = out.str();
  }
  ObservationBank target;
  target.record(seq({"10"}), seq({"0"}));  // pre-existing distinct fact
  {
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(target.deserialize(in));
  }
  EXPECT_EQ(target.size(), 2u);
  {
    // Merging the same stream again is a no-op: exact duplicates dedup.
    std::istringstream in(bytes, std::ios::binary);
    ASSERT_TRUE(target.deserialize(in));
  }
  EXPECT_EQ(target.size(), 2u);
}

TEST_F(BankPersistence, LoadCreatesBanksFromAForeignFile) {
  // A file written by another process references bank keys this process has
  // never seen; loading must create those banks with the facts intact.
  const std::uint64_t key = 0x5eaf00d5eaf00d01ULL;
  ObservationBank source;
  const auto inputs = seq({"0011", "1010"});
  const auto outputs = seq({"0", "1"});
  source.record(inputs, outputs);
  write_file(registry_file_with(key, source));

  std::string error;
  ASSERT_TRUE(load_observation_banks(path_, &error)) << error;
  ObservationBank& loaded = observation_bank_for_key(key);
  ASSERT_EQ(loaded.size(), 1u);
  const auto hit = loaded.lookup(inputs);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, outputs);
}

TEST_F(BankPersistence, SaveThenLoadRoundTripsTheRegistry) {
  const std::uint64_t key = 0x5eaf00d5eaf00d02ULL;
  ObservationBank& bank = observation_bank_for_key(key);
  bank.record(seq({"110", "001"}), seq({"01", "10"}));
  const std::size_t before = bank.size();

  std::string error;
  ASSERT_TRUE(save_observation_banks(path_, &error)) << error;
  ASSERT_TRUE(fs::exists(path_));
  EXPECT_FALSE(fs::exists(path_ + ".tmp")) << "temp file must be renamed away";

  // Loading back into the same registry is a dedup merge: nothing grows,
  // nothing is lost.
  ASSERT_TRUE(load_observation_banks(path_, &error)) << error;
  EXPECT_EQ(observation_bank_for_key(key).size(), before);
}

TEST_F(BankPersistence, BadMagicIsRejected) {
  write_file("NOTABANKjunkjunkjunk");
  std::string error;
  EXPECT_FALSE(load_observation_banks(path_, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(BankPersistence, TruncatedFileIsRejected) {
  const std::uint64_t key = 0x5eaf00d5eaf00d03ULL;
  ObservationBank source;
  source.record(seq({"0101", "1100"}), seq({"1", "0"}));
  const std::string bytes = registry_file_with(key, source);
  write_file(bytes.substr(0, bytes.size() - 5));  // cut mid-fact
  std::string error;
  EXPECT_FALSE(load_observation_banks(path_, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(BankPersistence, AbsurdFactCountIsRejected) {
  // A corrupt count must fail fast, not attempt a 2^40-entry allocation.
  std::ostringstream out(std::ios::binary);
  out.write("CLOBANK1", 8);
  put_u64(out, 1);
  put_u64(out, 0x5eaf00d5eaf00d04ULL);
  put_u64(out, std::uint64_t{1} << 40);  // fact count far past the cap
  write_file(out.str());
  std::string error;
  EXPECT_FALSE(load_observation_banks(path_, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(BankPersistence, MissingFileIsAnError) {
  std::string error;
  EXPECT_FALSE(load_observation_banks((dir_ / "nope.bin").string(), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;
}

}  // namespace
}  // namespace cl::attack
