#include "attack/og_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <utility>
#include <vector>

#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

/// Strategy that plants a candidate, then starves the solver so the next
/// diff solve returns Unknown — the path that historically (sat_attack.cpp's
/// conflict-budget branch) dropped the candidate from the Timeout report.
class StarveAfterCandidateStrategy : public DipStrategy {
 public:
  const char* name() const override { return "starve"; }
  Spec spec() const override {
    Spec s;
    s.start_depth = 2;
    s.caller = "starve";
    return s;
  }
  RoundAction after_round(OgEngine& engine, std::size_t, AttackResult*) override {
    engine.set_candidate({1, 0, 1});
    // A zero propagation budget trips on the very next solve, regardless of
    // how easy the instance is (conflict budgets only trip on conflicts).
    engine.solver().set_propagation_budget(0);
    return RoundAction::kContinue;
  }
};

TEST(OgEngine, SolverBudgetTimeoutReportsTheCandidate) {
  // The historical sat_attack bug: the budget-exhausted *solver* path
  // (Result::Unknown) returned Timeout without the current best candidate,
  // unlike the wall-clock path. The engine reports it on every Timeout path.
  const Netlist nl = s27();
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 6, rng);
  SequentialOracle oracle(nl);
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  OgEngine engine(lr.locked, oracle, budget);
  StarveAfterCandidateStrategy strategy;
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_EQ(r.key, sim::BitVec({1, 0, 1})) << "the candidate must survive "
                                              "into the Timeout report";
  EXPECT_NE(r.detail.find("solver budget exhausted"), std::string::npos)
      << r.detail;
}

TEST(OgEngine, SeqTimeoutWithNoCandidateReportsEmptyKey) {
  // The complementary case to the starvation test above: when the budget
  // trips before any consistency solve produced a candidate, the Timeout
  // report carries an empty key rather than an invented one.
  const Netlist nl = s27();
  util::Rng rng(11);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  AttackBudget b;
  b.time_limit_s = 30.0;
  b.max_iterations = 0;  // warmupless instant trip
  SeqAttackOptions o;
  o.budget = b;
  o.warmup_sequences = 0;
  const AttackResult r = seq_attack(lr.locked, oracle, o);
  EXPECT_EQ(r.outcome, Outcome::Timeout);
  EXPECT_TRUE(r.key.empty());  // no candidate existed yet: reported as-is
}

TEST(OgEngine, EngineAttacksMatchTheirLegacyContracts) {
  // The engine-based entry points keep their observable behaviour: classic
  // SAT recovers XOR-lock keys, Double-DIP agrees, BMC/KC2 break the
  // sequential lock and report identical keys for identical budgets.
  const Netlist nl = s27();
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);

  const AttackResult classic = sat_attack(locked_scan, oracle);
  EXPECT_EQ(classic.outcome, Outcome::Equal) << classic.summary();
  EXPECT_EQ(classic.key, lr.correct_key);
  EXPECT_EQ(classic.fresh_queries, classic.iterations);

  SatAttackOptions dd;
  dd.mode = SatAttackOptions::Mode::DoubleDip;
  const AttackResult doubled = sat_attack(locked_scan, oracle, dd);
  EXPECT_EQ(doubled.outcome, Outcome::Equal) << doubled.summary();
  EXPECT_EQ(doubled.key, lr.correct_key);
}

TEST(OgEngine, BatchedOracleQueriesMatchSerialAndCountTraffic) {
  // query_oracle_batch answers like N query_oracle calls, but groups the
  // misses into wide-lane oracle passes (consecutive equal lengths share a
  // pass) and accounts them as batched_queries / oracle_batches on top of
  // the fresh/replayed split.
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  ObservationBank bank;
  OgEngine engine(lr.locked, oracle, AttackBudget{}, &bank);

  std::vector<std::vector<sim::BitVec>> seqs;
  seqs.push_back(sim::random_stimulus(engine.rng(), 3, oracle.num_inputs()));
  seqs.push_back(sim::random_stimulus(engine.rng(), 3, oracle.num_inputs()));
  seqs.push_back(sim::random_stimulus(engine.rng(), 5, oracle.num_inputs()));

  const auto batched = engine.query_oracle_batch(seqs);
  ASSERT_EQ(batched.size(), seqs.size());
  EXPECT_EQ(engine.result().fresh_queries, 3u);
  EXPECT_EQ(engine.result().batched_queries, 3u);
  EXPECT_EQ(engine.result().oracle_batches, 2u);  // lengths {3,3} and {5}
  EXPECT_EQ(engine.result().replayed_queries, 0u);

  // Element-for-element equal to the serial path — which now answers every
  // repeat from the bank the batch recorded into, costing no fresh queries.
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(batched[i], engine.query_oracle(seqs[i])) << "sequence " << i;
  }
  EXPECT_EQ(engine.result().fresh_queries, 3u);
  EXPECT_EQ(engine.result().replayed_queries, 3u);

  // A second batch over already-banked sequences is all replays: no new
  // batches, no new oracle traffic.
  const auto replayed = engine.query_oracle_batch(seqs);
  EXPECT_EQ(replayed, batched);
  EXPECT_EQ(engine.result().fresh_queries, 3u);
  EXPECT_EQ(engine.result().batched_queries, 3u);
  EXPECT_EQ(engine.result().oracle_batches, 2u);
  EXPECT_EQ(engine.result().replayed_queries, 6u);
}

TEST(OgEngine, WarmupSequencesRideOneOracleBatch) {
  // The shared DIP loop's warmup sampling goes through add_io_batch: the
  // stimuli retire in one wide pass and the accounting shows up in the
  // result (and from there in the BENCH json).
  const Netlist nl = s27();
  util::Rng rng(7);
  const auto lr = lock::xor_lock(nl, 4, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);
  SeqAttackOptions o;
  o.warmup_sequences = 6;
  o.warmup_cycles = 3;
  const AttackResult r = seq_attack(locked_scan, oracle, o);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_EQ(r.batched_queries, 6u);
  EXPECT_EQ(r.oracle_batches, 1u);
  EXPECT_GE(r.fresh_queries, r.batched_queries);
}

TEST(OgEngine, ValidationErrorsKeepTheirCallers) {
  const Netlist nl = s27();
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  SequentialOracle oracle(nl);
  // Sequential circuit into the scan-model attack: rejected.
  EXPECT_THROW(sat_attack(lr.locked, oracle), std::invalid_argument);
  // Key-less circuit into the sequential attack: rejected.
  EXPECT_THROW(bmc_attack(nl, oracle), std::invalid_argument);
}

/// A minimal custom strategy: proves the DipStrategy contract is genuinely
/// pluggable from outside the built-in attacks. It runs the shared loop as a
/// plain BMC but gives up (kDone) after the first round.
class OneRoundStrategy : public DipStrategy {
 public:
  const char* name() const override { return "one-round"; }
  Spec spec() const override {
    Spec s;
    s.start_depth = 2;
    s.caller = "one_round";
    return s;
  }
  RoundAction after_round(OgEngine& engine, std::size_t rounds,
                          AttackResult* done) override {
    rounds_seen = rounds;
    *done = engine.finish(Outcome::Fail, "gave up after one round");
    return RoundAction::kDone;
  }
  std::size_t rounds_seen = 0;
};

TEST(OgEngine, CustomStrategiesPlugIn) {
  const Netlist nl = s27();
  util::Rng rng(2);
  const auto lr = lock::xor_lock(nl, 4, rng);
  SequentialOracle oracle(nl);
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  OgEngine engine(lr.locked, oracle, budget);
  OneRoundStrategy strategy;
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(strategy.rounds_seen, 1u);
  EXPECT_EQ(r.outcome, Outcome::Fail);
  EXPECT_EQ(r.detail, "gave up after one round");
  EXPECT_EQ(r.iterations, 1u);  // exactly one DIS was extracted and queried
}

TEST(OgEngine, BudgetHelperIsFloorFree) {
  // The historical per-attack lambdas armed a 0.05 s deadline even after the
  // budget was exhausted; the engine's helper reports zero instead.
  const Netlist nl = s27();
  util::Rng rng(2);
  const auto lr = lock::xor_lock(nl, 2, rng);
  SequentialOracle oracle(nl);
  AttackBudget budget;
  budget.time_limit_s = 0.0;  // exhausted on arrival
  OgEngine engine(lr.locked, oracle, budget);
  EXPECT_EQ(engine.remaining_s(), 0.0);
  EXPECT_TRUE(engine.out_of_budget());
  // And the attack as a whole reports Timeout rather than hanging on a
  // grace-period deadline.
  const AttackResult r = bmc_attack(lr.locked, oracle, budget);
  EXPECT_EQ(r.outcome, Outcome::Timeout);
}

/// Shared-loop strategy with a configurable multi-DIP round width — the
/// Double-DIP shape taken to an extreme, so the inner loop's budget
/// behaviour becomes observable.
class WideRoundStrategy : public DipStrategy {
 public:
  explicit WideRoundStrategy(std::size_t dips) : dips_(dips) {}
  const char* name() const override { return "wide"; }
  Spec spec() const override {
    Spec s;
    s.combinational = true;
    s.dips_per_round = dips_;
    s.caller = "wide";
    return s;
  }

 private:
  std::size_t dips_;
};

TEST(OgEngine, MultiDipInnerLoopHonoursIterationBudget) {
  // Regression: the multi-DIP inner loop issued its extra solves without
  // re-checking the budget or re-arming the deadline, so one wide round
  // (dips_per_round >> 1) could run arbitrarily far past max_iterations
  // before the next round's check noticed.
  const Netlist nl = s27();
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 8, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  budget.max_iterations = 3;
  OgEngine engine(locked_scan, oracle, budget);
  WideRoundStrategy strategy(1000);
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_EQ(r.iterations, 3u)
      << "the inner loop must stop exactly at the iteration budget";
}

/// Strategy that starves the solver after the first round of a multi-DIP
/// attack: the next round's diff solve returns Unknown *inside a
/// dips_per_round > 1 spec*, the path that historically read as "no DIP
/// remains" and fell through to the consistency phase.
class StarveSecondRoundStrategy : public DipStrategy {
 public:
  const char* name() const override { return "starve2"; }
  Spec spec() const override {
    Spec s;
    s.combinational = true;
    s.dips_per_round = 2;
    s.caller = "starve2";
    return s;
  }
  RoundAction after_round(OgEngine& engine, std::size_t, AttackResult*) override {
    engine.solver().set_propagation_budget(0);
    return RoundAction::kContinue;
  }
};

TEST(OgEngine, StarvedMultiDipRoundReportsTimeoutNotAVerdict) {
  const Netlist nl = s27();
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 8, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  OgEngine engine(locked_scan, oracle, budget);
  StarveSecondRoundStrategy strategy;
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_NE(r.detail.find("solver conflict budget exhausted"),
            std::string::npos)
      << r.detail;
}

TEST(OgEngine, PreSetCancelFlagAbortsBeforeAnyOracleQuery) {
  // The service's per-job kill switch: a budget whose cancel flag is already
  // set unwinds with Timeout before the attack pays a single oracle query.
  const Netlist nl = s27();
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 6, rng);
  SequentialOracle oracle(nl);
  std::atomic<bool> cancel{true};
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  budget.cancel = &cancel;
  const AttackResult r = bmc_attack(lr.locked, oracle, budget);
  EXPECT_EQ(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_EQ(r.fresh_queries, 0u);
  EXPECT_EQ(oracle.num_queries(), 0u);
}

/// Cooperative cancellation mid-attack: the flag flips after the first
/// round, as a service connection thread would flip it from outside.
class CancelAfterFirstRoundStrategy : public DipStrategy {
 public:
  explicit CancelAfterFirstRoundStrategy(std::atomic<bool>* flag)
      : flag_(flag) {}
  const char* name() const override { return "cancel"; }
  Spec spec() const override {
    Spec s;
    s.start_depth = 2;
    s.caller = "cancel";
    return s;
  }
  RoundAction after_round(OgEngine&, std::size_t, AttackResult*) override {
    flag_->store(true, std::memory_order_relaxed);
    return RoundAction::kContinue;
  }

 private:
  std::atomic<bool>* flag_;
};

/// The shared loop as a plain scan-model attack — the shape under which the
/// structural key hints are observable.
class PlainCombStrategy : public DipStrategy {
 public:
  const char* name() const override { return "plain"; }
  Spec spec() const override {
    Spec s;
    s.combinational = true;
    s.caller = "plain";
    return s;
  }
};

TEST(OgEngine, CorrectHintsCutFreshQueriesToZero) {
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);

  SequentialOracle baseline_oracle(original_scan);
  OgEngine baseline(locked_scan, baseline_oracle, AttackBudget{});
  PlainCombStrategy strategy;
  const AttackResult plain = baseline.run(strategy);
  ASSERT_EQ(plain.outcome, Outcome::Equal) << plain.summary();
  ASSERT_GT(plain.fresh_queries, 0u);
  EXPECT_EQ(plain.hinted_bits, 0u);
  EXPECT_EQ(plain.hint_accuracy, -1.0);

  // Every key bit hinted correctly: the first diff solve is Unsat inside the
  // hinted subspace, the consistency solve names the key, and external
  // verification confirms it — no oracle query was ever needed.
  std::vector<std::pair<std::size_t, bool>> hints;
  for (std::size_t i = 0; i < lr.correct_key.size(); ++i) {
    hints.emplace_back(i, lr.correct_key[i] != 0);
  }
  SequentialOracle oracle(original_scan);
  OgEngine engine(locked_scan, oracle, AttackBudget{});
  engine.set_hints(hints);
  const AttackResult hinted = engine.run(strategy);
  EXPECT_EQ(hinted.outcome, Outcome::Equal) << hinted.summary();
  EXPECT_EQ(hinted.key, lr.correct_key);
  EXPECT_EQ(hinted.fresh_queries, 0u);
  EXPECT_EQ(hinted.hinted_bits, lr.correct_key.size());
  EXPECT_EQ(hinted.hint_accuracy, 1.0);
}

TEST(OgEngine, WrongHintsAreDroppedNotTrusted) {
  // One deliberately flipped hint: the hinted subspace's best candidate
  // fails verification, the engine sheds the hints, and the attack still
  // converges on the correct key — never a WrongKey verdict on hint say-so.
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  std::vector<std::pair<std::size_t, bool>> hints;
  for (std::size_t i = 0; i < lr.correct_key.size(); ++i) {
    const bool truth = lr.correct_key[i] != 0;
    hints.emplace_back(i, i == 0 ? !truth : truth);
  }
  SequentialOracle oracle(original_scan);
  OgEngine engine(locked_scan, oracle, AttackBudget{});
  engine.set_hints(hints);
  PlainCombStrategy strategy;
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_EQ(r.key, lr.correct_key);
  EXPECT_EQ(r.hinted_bits, lr.correct_key.size());
  // Accuracy is scored against the verified key: exactly one hint was wrong.
  EXPECT_NEAR(r.hint_accuracy, 5.0 / 6.0, 1e-9);
}

TEST(OgEngine, OutOfRangeHintsAreDiscardedAtRun) {
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);
  OgEngine engine(locked_scan, oracle, AttackBudget{});
  engine.set_hints({{lr.correct_key.size() + 7, true}});
  PlainCombStrategy strategy;
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Equal) << r.summary();
  EXPECT_EQ(r.hinted_bits, 0u);
}

TEST(OgEngine, EnvFlagSeedsHintsFromTheStructuralPass) {
  // CUTELOCK_KEY_HINTS=1 routes analysis::infer_key_hints into every
  // engine-based attack; on an XOR lock the pass decides all bits, so the
  // hinted run needs strictly fewer oracle queries than the plain one.
  const Netlist nl = s27();
  util::Rng rng(7);
  const auto lr = lock::xor_lock(nl, 6, rng);
  const Netlist locked_scan = netlist::scan_expose(lr.locked);
  const Netlist original_scan = netlist::scan_expose(nl);
  SequentialOracle oracle(original_scan);
  const AttackResult plain = sat_attack(locked_scan, oracle);
  ASSERT_EQ(plain.outcome, Outcome::Equal) << plain.summary();

  ASSERT_EQ(setenv("CUTELOCK_KEY_HINTS", "1", 1), 0);
  const AttackResult hinted = sat_attack(locked_scan, oracle);
  // Stable mode wins over the hints flag: tables stay byte-identical.
  ASSERT_EQ(setenv("CUTELOCK_BENCH_STABLE", "1", 1), 0);
  const AttackResult stable = sat_attack(locked_scan, oracle);
  unsetenv("CUTELOCK_BENCH_STABLE");
  unsetenv("CUTELOCK_KEY_HINTS");

  EXPECT_EQ(hinted.outcome, Outcome::Equal) << hinted.summary();
  EXPECT_EQ(hinted.key, lr.correct_key);
  EXPECT_GT(hinted.hinted_bits, 0u);
  EXPECT_EQ(hinted.hint_accuracy, 1.0);
  EXPECT_LT(hinted.fresh_queries, plain.fresh_queries);

  EXPECT_EQ(stable.outcome, Outcome::Equal) << stable.summary();
  EXPECT_EQ(stable.hinted_bits, 0u);
  EXPECT_EQ(stable.fresh_queries, plain.fresh_queries);
}

TEST(OgEngine, CancelFlagSetMidRunUnwindsWithTimeout) {
  const Netlist nl = s27();
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 6, rng);
  SequentialOracle oracle(nl);
  std::atomic<bool> cancel{false};
  AttackBudget budget;
  budget.time_limit_s = 30.0;
  budget.cancel = &cancel;
  OgEngine engine(lr.locked, oracle, budget);
  CancelAfterFirstRoundStrategy strategy(&cancel);
  const AttackResult r = engine.run(strategy);
  EXPECT_EQ(r.outcome, Outcome::Timeout) << r.summary();
  EXPECT_NE(r.detail.find("budget exhausted"), std::string::npos) << r.detail;
}

}  // namespace
}  // namespace cl::attack
