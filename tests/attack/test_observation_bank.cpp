#include "attack/observation_bank.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "attack/seq_attack.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"

namespace cl::attack {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

TEST(ObservationBank, RecordsDedupsAndSnapshots) {
  ObservationBank bank;
  const std::vector<sim::BitVec> in1 = {{1, 0}, {0, 1}};
  const std::vector<sim::BitVec> out1 = {{1}, {0}};
  const std::vector<sim::BitVec> in2 = {{0, 0}};
  const std::vector<sim::BitVec> out2 = {{0}};
  bank.record(in1, out1);
  bank.record(in2, out2);
  bank.record(in1, out1);  // exact duplicate: dropped
  EXPECT_EQ(bank.size(), 2u);
  const auto snap = bank.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].inputs, in1);
  EXPECT_EQ(snap[0].outputs, out1);
  EXPECT_EQ(snap[1].inputs, in2);
  bank.record({}, {});  // empty sequences are not facts
  EXPECT_EQ(bank.size(), 2u);
}

TEST(ObservationBank, LockInstanceKeySeparatesInstances) {
  const Netlist nl = s27();
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 2;
  opt.seed = 1;
  const auto a = core::cute_lock_str(nl, opt);
  opt.seed = 2;
  const auto b = core::cute_lock_str(nl, opt);
  // Same circuit, same parameters, different lock seed: different banks.
  EXPECT_NE(lock_instance_key(a.locked), lock_instance_key(b.locked));
  EXPECT_NE(lock_instance_key(a.locked), lock_instance_key(nl));
  // Independently rebuilt identical instances: the same bank.
  opt.seed = 1;
  const auto a_again = core::cute_lock_str(nl, opt);
  EXPECT_EQ(lock_instance_key(a.locked), lock_instance_key(a_again.locked));
  // Bank identity covers the oracle too: the same locked structure queried
  // against a different reference chip must never share facts.
  EXPECT_EQ(bank_key(a.locked, nl), bank_key(a_again.locked, nl));
  EXPECT_NE(bank_key(a.locked, nl), bank_key(a.locked, b.locked));
}

TEST(ObservationBank, LockInstanceKeyIgnoresTheTopLevelName) {
  // The daemon names circuits by request field ("locked"), the one-shot CLI
  // by file stem — the same structure must map to the same bank either way,
  // or facts saved by one front-end never replay in the other.
  const Netlist by_stem = netlist::read_bench_string(k_s27, "s27");
  const Netlist by_field = netlist::read_bench_string(k_s27, "locked");
  EXPECT_EQ(lock_instance_key(by_stem), lock_instance_key(by_field));
  EXPECT_EQ(bank_key(by_stem, by_field), bank_key(by_field, by_stem));
}

TEST(ObservationBank, RegistryIsKeyedAndStable) {
  ObservationBank& b1 = observation_bank_for_key(0x1234);
  ObservationBank& b2 = observation_bank_for_key(0x5678);
  EXPECT_NE(&b1, &b2);
  EXPECT_EQ(&b1, &observation_bank_for_key(0x1234));
}

TEST(ObservationBank, DisabledWithoutEnvFlag) {
  ASSERT_EQ(getenv("CUTELOCK_OBS_BANK"), nullptr)
      << "test environment must not pre-set CUTELOCK_OBS_BANK";
  const Netlist nl = s27();
  EXPECT_EQ(observation_bank_for(nl, nl), nullptr);
}

TEST(ObservationBank, ReplaySavesFreshQueriesAndKeepsTheVerdict) {
  // The acceptance shape: attack the same locked instance twice. The second
  // run replays the first run's oracle facts as constraints and must reach
  // the same verdict with fewer fresh oracle queries.
  const Netlist nl = s27();
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 4, rng);
  const std::uint64_t key = bank_key(lr.locked, nl);

  AttackBudget budget;
  budget.time_limit_s = 30.0;
  budget.max_iterations = 200;
  budget.max_depth = 16;

  SequentialOracle oracle(nl);
  SeqAttackOptions options;
  options.budget = budget;

  ObservationBank& bank = observation_bank_for_key(key);
  ASSERT_EQ(bank.size(), 0u);

  // Baseline: bank disabled, count the fresh queries the attack needs.
  const AttackResult cold = seq_attack(lr.locked, oracle, options);
  EXPECT_EQ(cold.outcome, Outcome::Equal) << cold.summary();
  EXPECT_EQ(cold.replayed_queries, 0u);
  EXPECT_GT(cold.fresh_queries, 0u);

  // Bank enabled: one run populates the bank, the next replays from it.
  {
    setenv("CUTELOCK_OBS_BANK", "1", 1);
    const AttackResult warmup = seq_attack(lr.locked, oracle, options);
    EXPECT_EQ(warmup.outcome, Outcome::Equal) << warmup.summary();
    EXPECT_GT(bank.size(), 0u);

    const AttackResult warm = seq_attack(lr.locked, oracle, options);
    unsetenv("CUTELOCK_OBS_BANK");
    EXPECT_EQ(warm.outcome, Outcome::Equal) << warm.summary();
    EXPECT_EQ(warm.key, cold.key);
    EXPECT_GT(warm.replayed_queries, 0u);
    // Banked facts installed as startup constraints count separately from
    // replayed (avoided) queries: they are prior knowledge the attack never
    // asked for, and must not inflate the avoided-oracle-calls statistic.
    EXPECT_GT(warm.preloaded_facts, 0u);
    EXPECT_EQ(cold.preloaded_facts, 0u);
    EXPECT_LT(warm.fresh_queries, cold.fresh_queries) << warm.summary();
  }
}

TEST(ObservationBank, CrossAttackReplayDrivesMultiKeyLockToCnsCheaper) {
  // Table-harness shape: INT then KC2 on the same Cute-Lock-Str instance.
  // KC2 must still conclude CNS, now partly from INT's banked facts.
  const Netlist nl = s27();
  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 2;
  opt.seed = 0xba44;
  const auto lr = core::cute_lock_str(nl, opt);

  AttackBudget budget;
  budget.time_limit_s = 30.0;
  budget.max_iterations = 200;
  budget.max_depth = 16;
  SequentialOracle oracle(nl);

  const AttackResult kc2_cold = kc2_attack(lr.locked, oracle, budget);
  ASSERT_TRUE(defense_held(kc2_cold.outcome)) << kc2_cold.summary();

  setenv("CUTELOCK_OBS_BANK", "1", 1);
  const AttackResult bmc = bmc_attack(lr.locked, oracle, budget);
  const AttackResult kc2_warm = kc2_attack(lr.locked, oracle, budget);
  unsetenv("CUTELOCK_OBS_BANK");

  EXPECT_TRUE(defense_held(bmc.outcome)) << bmc.summary();
  EXPECT_TRUE(defense_held(kc2_warm.outcome)) << kc2_warm.summary();
  EXPECT_EQ(kc2_warm.outcome, kc2_cold.outcome);
  EXPECT_GT(kc2_warm.replayed_queries, 0u);
  EXPECT_LT(kc2_warm.fresh_queries, kc2_cold.fresh_queries)
      << "replay should substitute for fresh oracle queries: "
      << kc2_warm.summary();
}

}  // namespace
}  // namespace cl::attack
