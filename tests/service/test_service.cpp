// Integration tests for the attack service: a real Server on a Unix socket
// in a temp directory, driven through the real Client. Covers the job
// lifecycle (submit/wait/status/cancel), per-job budgets, the acceptance
// property that a resubmitted attack replays oracle facts from the
// observation bank (fresh queries strictly below the cold run, identical
// verdict), error paths, and save-on-shutdown persistence.
#include "service/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "attack/observation_bank.hpp"
#include "attack/seq_attack.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "netlist/bench_io.hpp"
#include "service/client.hpp"
#include "util/rng.hpp"

namespace cl::service {
namespace {

namespace fs = std::filesystem;

struct LockedPair {
  std::string locked_text;
  std::string original_text;
};

/// A Cute-Lock-Str instance over s27 as wire-ready bench text. Different
/// seeds give structurally different locks, so each test that needs a cold
/// observation bank picks its own seed (the process-wide bank registry is
/// never cleared).
LockedPair s27_pair(std::uint64_t seed, std::size_t k = 4, std::size_t ki = 4) {
  const netlist::Netlist nl = benchgen::make_circuit("s27").netlist;
  core::StrOptions options;
  options.num_keys = k;
  options.key_bits = ki;
  options.locked_ffs = 1;
  options.seed = seed;
  const lock::LockResult lr = core::cute_lock_str(nl, options);
  return {netlist::write_bench_string(lr.locked),
          netlist::write_bench_string(nl)};
}

Json attack_request(const LockedPair& pair, const std::string& mode,
                    double seconds = 30.0) {
  Json request = Json::object();
  request.set("op", Json::string("submit"));
  request.set("job", Json::string("attack"));
  request.set("locked", Json::string(pair.locked_text));
  request.set("oracle", Json::string(pair.original_text));
  request.set("attack", Json::string(mode));
  request.set("seconds", Json::number(seconds));
  return request;
}

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cutelock_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string socket_path() const { return (dir_ / "cl.sock").string(); }

  /// Start a server on the fixture socket; registers no teardown — the
  /// Server destructor stops it.
  void start(Server& server) {
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_TRUE(server.running());
  }

  Json rpc(Client& client, const Json& request) {
    Json response;
    std::string error;
    EXPECT_TRUE(client.request(request, &response, &error)) << error;
    return response;
  }

  /// submit + wait, returning the wait response.
  Json submit_and_wait(Client& client, const Json& request) {
    const Json submitted = rpc(client, request);
    EXPECT_TRUE(submitted.bool_or("ok", false)) << submitted.dump();
    Json wait = Json::object();
    wait.set("op", Json::string("wait"));
    wait.set("id", Json::number(submitted.u64_or("id", 0)));
    return rpc(client, wait);
  }

  fs::path dir_;
};

TEST_F(ServiceTest, PingStatsAndProtocolErrorsOverTheSocket) {
  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 2;
  Server server(options);
  start(server);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  Json ping = Json::object();
  ping.set("op", Json::string("ping"));
  EXPECT_TRUE(rpc(client, ping).bool_or("ok", false));

  Json stats = Json::object();
  stats.set("op", Json::string("stats"));
  const Json s = rpc(client, stats);
  EXPECT_TRUE(s.bool_or("ok", false));
  ASSERT_NE(s.find("jobs"), nullptr);
  EXPECT_EQ(s.find("jobs")->u64_or("submitted", 99), 0u);

  Json bogus = Json::object();
  bogus.set("op", Json::string("frobnicate"));
  const Json rejected = rpc(client, bogus);
  EXPECT_FALSE(rejected.bool_or("ok", true));
  EXPECT_NE(rejected.str_or("error", "").find("unknown op"), std::string::npos);

  Json missing = Json::object();
  missing.set("op", Json::string("status"));
  missing.set("id", Json::number(std::uint64_t{777}));
  EXPECT_FALSE(rpc(client, missing).bool_or("ok", true));

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ServiceTest, TcpLoopbackServesTheSameProtocol) {
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.workers = 1;
  Server server(options);
  start(server);
  ASSERT_GT(server.port(), 0);

  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_tcp(server.port(), &error)) << error;
  Json ping = Json::object();
  ping.set("op", Json::string("ping"));
  EXPECT_TRUE(rpc(client, ping).bool_or("ok", false));
}

TEST_F(ServiceTest, AttackJobMatchesInProcessRunAndResubmissionReplays) {
  const LockedPair pair = s27_pair(0xc01d);

  // In-process reference run, no bank: what the one-shot CLI would report.
  attack::AttackResult reference;
  {
    const netlist::Netlist locked =
        netlist::read_bench_string(pair.locked_text, "locked");
    const netlist::Netlist original =
        netlist::read_bench_string(pair.original_text, "original");
    attack::SequentialOracle oracle(original);
    attack::AttackBudget budget;
    budget.time_limit_s = 30.0;
    reference = attack::bmc_attack(locked, oracle, budget);
    ASSERT_GT(reference.fresh_queries, 0u);
  }

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 2;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  // Cold submission: empty bank, so the job must walk the exact same path
  // as the in-process run — same verdict, same DIP count, same queries.
  const Json cold = submit_and_wait(client, attack_request(pair, "bmc"));
  ASSERT_EQ(cold.str_or("status", "?"), "done") << cold.dump();
  const Json* cr = cold.find("result");
  ASSERT_NE(cr, nullptr);
  EXPECT_EQ(cr->str_or("outcome", ""),
            attack::outcome_label(reference.outcome));
  EXPECT_EQ(cr->u64_or("iterations", 0), reference.iterations);
  EXPECT_EQ(cr->u64_or("fresh_queries", 0), reference.fresh_queries);
  EXPECT_EQ(cr->u64_or("replayed_queries", 1), 0u);
  EXPECT_EQ(cr->u64_or("preloaded_facts", 1), 0u);

  // Resubmission: the bank now holds the cold run's facts. Same verdict,
  // strictly fewer fresh oracle queries — the acceptance property.
  const Json warm = submit_and_wait(client, attack_request(pair, "bmc"));
  ASSERT_EQ(warm.str_or("status", "?"), "done") << warm.dump();
  const Json* wr = warm.find("result");
  ASSERT_NE(wr, nullptr);
  EXPECT_EQ(wr->str_or("outcome", ""), cr->str_or("outcome", "x"));
  EXPECT_LT(wr->u64_or("fresh_queries", 99), reference.fresh_queries);
  EXPECT_GT(wr->u64_or("replayed_queries", 0) +
                wr->u64_or("preloaded_facts", 0),
            0u);
  // The circuit cache served the resubmission without re-parsing.
  EXPECT_GT(wr->u64_or("cache_hits", 0), 0u);

  Json stats = Json::object();
  stats.set("op", Json::string("stats"));
  const Json s = rpc(client, stats);
  EXPECT_EQ(s.find("jobs")->u64_or("done", 0), 2u);
  EXPECT_GT(s.find("observation_bank")->u64_or("facts", 0), 0u);
  EXPECT_GT(s.find("circuit_cache")->u64_or("hits", 0), 0u);
}

TEST_F(ServiceTest, ConcurrentJobsCarryTheirOwnBudgets) {
  // Two structurally different instances in flight together, one of them
  // with an iteration budget so small it must time out while the other
  // concludes: per-job AttackBudgets, not a shared one.
  const LockedPair quick = s27_pair(0xaaa1);
  const LockedPair starved = s27_pair(0xbbb2);

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 2;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  Json starved_request = attack_request(starved, "bmc");
  starved_request.set("max_iterations", Json::number(std::uint64_t{0}));
  const Json a = rpc(client, attack_request(quick, "bmc"));
  const Json b = rpc(client, starved_request);
  ASSERT_TRUE(a.bool_or("ok", false));
  ASSERT_TRUE(b.bool_or("ok", false));

  Json wait_a = Json::object();
  wait_a.set("op", Json::string("wait"));
  wait_a.set("id", Json::number(a.u64_or("id", 0)));
  Json wait_b = Json::object();
  wait_b.set("op", Json::string("wait"));
  wait_b.set("id", Json::number(b.u64_or("id", 0)));

  const Json ra = rpc(client, wait_a);
  const Json rb = rpc(client, wait_b);
  ASSERT_EQ(ra.str_or("status", "?"), "done") << ra.dump();
  ASSERT_EQ(rb.str_or("status", "?"), "done") << rb.dump();
  EXPECT_NE(ra.find("result")->str_or("outcome", ""), "N/A");
  EXPECT_EQ(rb.find("result")->str_or("outcome", ""), "N/A");  // timeout
}

TEST_F(ServiceTest, CancelAbortsAQueuedJob) {
  // One worker, and the queue head is an attack on a four-digit-gate ITC'99
  // circuit with a 2 s wall budget: the worker is pinned long enough that
  // cancelling the queued job behind it is race-free for any realistic
  // scheduler hiccup. The cancelled job must come back "cancelled" without
  // ever running its attack.
  const netlist::Netlist big = benchgen::make_circuit("b14").netlist;
  core::StrOptions big_options;
  big_options.num_keys = 4;
  big_options.key_bits = 4;
  big_options.seed = 7;
  const lock::LockResult big_lock = core::cute_lock_str(big, big_options);
  LockedPair slow{netlist::write_bench_string(big_lock.locked),
                  netlist::write_bench_string(big)};
  const LockedPair fast = s27_pair(0xccc3);

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  const Json a = rpc(client, attack_request(slow, "bmc", 2.0));
  ASSERT_TRUE(a.bool_or("ok", false)) << a.dump();
  const Json b = rpc(client, attack_request(fast, "bmc"));
  ASSERT_TRUE(b.bool_or("ok", false)) << b.dump();

  Json cancel = Json::object();
  cancel.set("op", Json::string("cancel"));
  cancel.set("id", Json::number(b.u64_or("id", 0)));
  const Json cancelled = rpc(client, cancel);
  EXPECT_TRUE(cancelled.bool_or("ok", false));
  EXPECT_TRUE(cancelled.bool_or("cancelled", false));

  Json wait_b = Json::object();
  wait_b.set("op", Json::string("wait"));
  wait_b.set("id", Json::number(b.u64_or("id", 0)));
  const Json rb = rpc(client, wait_b);
  EXPECT_EQ(rb.str_or("status", "?"), "cancelled") << rb.dump();

  // The pinned job still finishes on its own budget.
  Json wait_a = Json::object();
  wait_a.set("op", Json::string("wait"));
  wait_a.set("id", Json::number(a.u64_or("id", 0)));
  EXPECT_EQ(rpc(client, wait_a).str_or("status", "?"), "done");
}

TEST_F(ServiceTest, VerifyAndLockJobsWork) {
  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  const std::string original_text =
      netlist::write_bench_string(benchgen::make_circuit("s27").netlist);

  // Lock job: returns the locked bench text and the key schedule.
  Json lock_request = Json::object();
  lock_request.set("op", Json::string("submit"));
  lock_request.set("job", Json::string("lock"));
  lock_request.set("circuit", Json::string(original_text));
  lock_request.set("k", Json::number(std::uint64_t{2}));
  lock_request.set("ki", Json::number(std::uint64_t{2}));
  const Json locked_reply = submit_and_wait(client, lock_request);
  ASSERT_EQ(locked_reply.str_or("status", "?"), "done") << locked_reply.dump();
  const Json* lr = locked_reply.find("result");
  ASSERT_NE(lr, nullptr);
  const std::string locked_text = lr->str_or("locked", "");
  ASSERT_FALSE(locked_text.empty());
  ASSERT_NE(lr->find("key_schedule"), nullptr);
  EXPECT_EQ(lr->find("key_schedule")->elements().size(), 2u);

  // Verify job: a deliberately wrong static key against the dynamic lock
  // must come back non-equivalent.
  Json verify_request = Json::object();
  verify_request.set("op", Json::string("submit"));
  verify_request.set("job", Json::string("verify"));
  verify_request.set("locked", Json::string(locked_text));
  verify_request.set("oracle", Json::string(original_text));
  verify_request.set("key", Json::string("00"));
  const Json verified = submit_and_wait(client, verify_request);
  ASSERT_EQ(verified.str_or("status", "?"), "done") << verified.dump();
  EXPECT_FALSE(verified.find("result")->bool_or("equivalent", true));

  // Malformed verify: wrong key width surfaces as a job error, not a crash.
  verify_request.set("key", Json::string("010101"));
  const Json bad = submit_and_wait(client, verify_request);
  EXPECT_EQ(bad.str_or("status", "?"), "error");
  EXPECT_NE(bad.str_or("error", "").find("key inputs"), std::string::npos);

  // Unparsable netlist surfaces as a job error too.
  Json garbage = attack_request({"NOT A NETLIST", original_text}, "bmc");
  const Json rejected = submit_and_wait(client, garbage);
  EXPECT_EQ(rejected.str_or("status", "?"), "error") << rejected.dump();
}

TEST_F(ServiceTest, AnalyzeJobReportsLintAndKeyInference) {
  const netlist::Netlist nl = benchgen::make_circuit("s27").netlist;
  util::Rng rng(5);
  const lock::LockResult lr = lock::xor_lock(nl, 6, rng);

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  Json request = Json::object();
  request.set("op", Json::string("submit"));
  request.set("job", Json::string("analyze"));
  request.set("circuit", Json::string(netlist::write_bench_string(lr.locked)));
  const Json done = submit_and_wait(client, request);
  ASSERT_EQ(done.str_or("status", "?"), "done") << done.dump();
  const Json* r = done.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->bool_or("lint_ok", false)) << r->dump();
  ASSERT_NE(r->find("stats"), nullptr);
  EXPECT_EQ(r->find("stats")->u64_or("key_inputs", 0), 6u);
  // Inline XOR key gates are exactly the shape the synthesis differential
  // reads, so the sweep must decide bits and report one entry per key bit.
  EXPECT_EQ(r->str_or("verdicts", "").size(), 6u);
  EXPECT_GT(r->u64_or("decided", 0), 0u);
  ASSERT_NE(r->find("bits"), nullptr);
  EXPECT_EQ(r->find("bits")->elements().size(), 6u);

  // A key-free circuit gets lint + stats but no inference block.
  Json plain = Json::object();
  plain.set("op", Json::string("submit"));
  plain.set("job", Json::string("analyze"));
  plain.set("circuit", Json::string(netlist::write_bench_string(nl)));
  const Json done_plain = submit_and_wait(client, plain);
  ASSERT_EQ(done_plain.str_or("status", "?"), "done") << done_plain.dump();
  const Json* rp = done_plain.find("result");
  ASSERT_NE(rp, nullptr);
  EXPECT_TRUE(rp->bool_or("lint_ok", false));
  EXPECT_EQ(rp->find("bits"), nullptr);
  // Resubmitting the same analyze must hit the circuit cache.
  const Json again = submit_and_wait(client, request);
  ASSERT_EQ(again.str_or("status", "?"), "done");
  EXPECT_GT(again.find("result")->u64_or("cache_hits", 0), 0u);
}

TEST_F(ServiceTest, AttackSubmissionsFailingLintAreRejected) {
  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  // A "locked" circuit with no key inputs: nothing to attack, so lint must
  // stop the job before any solver time is spent.
  const std::string original_text =
      netlist::write_bench_string(benchgen::make_circuit("s27").netlist);
  const Json rejected = submit_and_wait(
      client, attack_request({original_text, original_text}, "bmc"));
  EXPECT_EQ(rejected.str_or("status", "?"), "error") << rejected.dump();
  EXPECT_NE(rejected.str_or("error", "").find("netlist lint"),
            std::string::npos);
  EXPECT_NE(rejected.str_or("error", "").find("no-key-inputs"),
            std::string::npos);
}

TEST_F(ServiceTest, ScopeAttackModeRunsOracleFreeInference) {
  const netlist::Netlist nl = benchgen::make_circuit("s27").netlist;
  util::Rng rng(5);
  const lock::LockResult lr = lock::xor_lock(nl, 6, rng);
  const LockedPair pair{netlist::write_bench_string(lr.locked),
                        netlist::write_bench_string(nl)};

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  const Json done = submit_and_wait(client, attack_request(pair, "scope"));
  ASSERT_EQ(done.str_or("status", "?"), "done") << done.dump();
  const Json* r = done.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->str_or("attack", ""), "scope");
  EXPECT_EQ(r->str_or("verdicts", "").size(), 6u);
  EXPECT_GT(r->u64_or("decided", 0), 0u);
  // Oracle-free by construction: the oracle only confirms a complete key.
  EXPECT_EQ(r->u64_or("fresh_queries", 99), 0u);
}

TEST_F(ServiceTest, ShutdownSavesBanksAndRejectsLateSubmissions) {
  const LockedPair pair = s27_pair(0xddd4);
  const std::string bank_path = (dir_ / "bank.bin").string();

  ServerOptions options;
  options.unix_socket = socket_path();
  options.workers = 1;
  options.obs_bank_path = bank_path;
  Server server(options);
  start(server);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect_unix(socket_path(), &error)) << error;

  const Json done = submit_and_wait(client, attack_request(pair, "bmc"));
  ASSERT_EQ(done.str_or("status", "?"), "done") << done.dump();

  server.stop();
  ASSERT_TRUE(fs::exists(bank_path)) << "stop() must persist the banks";
  EXPECT_FALSE(fs::exists(bank_path + ".tmp"));

  // The persisted file is a loadable registry image (the true cross-process
  // reload is exercised end-to-end by the CLI serve test).
  std::string load_error;
  EXPECT_TRUE(attack::load_observation_banks(bank_path, &load_error))
      << load_error;

  // After stop, the dispatcher refuses new work instead of touching a
  // drained pool.
  const Json late = server.handle_request(attack_request(pair, "bmc"));
  EXPECT_FALSE(late.bool_or("ok", true));
  EXPECT_NE(late.str_or("error", "").find("shutting down"), std::string::npos);
}

}  // namespace
}  // namespace cl::service
