// Wire-format tests for the service's self-contained JSON value type:
// dump/parse round trips, escape handling, typed-lookup fallbacks, and the
// error paths a daemon fed garbage must survive.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cl::service {
namespace {

Json parsed(const std::string& text) {
  Json out;
  std::string error;
  EXPECT_TRUE(Json::parse(text, &out, &error)) << text << ": " << error;
  return out;
}

TEST(Protocol, DumpKeepsInsertionOrderAndRoundTrips) {
  Json j = Json::object();
  j.set("op", Json::string("submit"));
  j.set("id", Json::number(std::uint64_t{42}));
  j.set("ok", Json::boolean(true));
  j.set("ratio", Json::number(0.5));
  Json arr = Json::array();
  arr.push_back(Json::string("a"));
  arr.push_back(Json::null());
  j.set("tags", std::move(arr));

  const std::string wire = j.dump();
  EXPECT_EQ(wire,
            "{\"op\": \"submit\", \"id\": 42, \"ok\": true, \"ratio\": 0.5, "
            "\"tags\": [\"a\", null]}");

  const Json back = parsed(wire);
  EXPECT_EQ(back.dump(), wire);
  EXPECT_EQ(back.str_or("op", ""), "submit");
  EXPECT_EQ(back.u64_or("id", 0), 42u);
  EXPECT_TRUE(back.bool_or("ok", false));
  EXPECT_DOUBLE_EQ(back.num_or("ratio", 0.0), 0.5);
  ASSERT_NE(back.find("tags"), nullptr);
  EXPECT_EQ(back.find("tags")->elements().size(), 2u);
}

TEST(Protocol, StringEscapesRoundTrip) {
  // Bench text goes over the wire verbatim: newlines, quotes, backslashes,
  // tabs, and control characters must all survive a dump/parse cycle.
  const std::string nasty = "INPUT(G0)\n\"quoted\\path\"\ttab\r\x01end";
  Json j = Json::object();
  j.set("text", Json::string(nasty));
  const Json back = parsed(j.dump());
  EXPECT_EQ(back.str_or("text", ""), nasty);
}

TEST(Protocol, UnicodeEscapesDecodeToUtf8) {
  const Json j = parsed("{\"s\": \"\\u0041\\u00e9\\u20ac\"}");
  EXPECT_EQ(j.str_or("s", ""), "A\xc3\xa9\xe2\x82\xac");  // A, é, €
}

TEST(Protocol, LargeIntegersDumpExactly) {
  // Job ids and query counters are integers; they must not pick up an
  // exponent or fraction on the wire (counters fit in 2^53 exactly).
  Json j = Json::object();
  j.set("n", Json::number(std::uint64_t{9007199254740992ULL}));  // 2^53
  EXPECT_EQ(j.dump(), "{\"n\": 9007199254740992}");
  EXPECT_EQ(parsed(j.dump()).u64_or("n", 0), 9007199254740992ULL);
}

TEST(Protocol, NonFiniteNumbersDumpAsZero) {
  // JSON has no nan/inf; emitting them would poison every consumer.
  Json j = Json::object();
  j.set("bad", Json::number(0.0 / 0.0));
  EXPECT_EQ(j.dump(), "{\"bad\": 0}");
}

TEST(Protocol, TypedLookupsFallBackOnWrongTypeOrAbsence) {
  const Json j = parsed("{\"s\": \"text\", \"n\": 7, \"b\": true}");
  EXPECT_EQ(j.str_or("n", "fb"), "fb");    // wrong type
  EXPECT_EQ(j.u64_or("s", 9), 9u);         // wrong type
  EXPECT_EQ(j.u64_or("missing", 3), 3u);   // absent
  EXPECT_TRUE(j.bool_or("b", false));
  EXPECT_FALSE(j.bool_or("n", false));     // number is not a bool
}

TEST(Protocol, ParseRejectsGarbage) {
  Json out;
  std::string error;
  EXPECT_FALSE(Json::parse("", &out, &error));
  EXPECT_FALSE(Json::parse("{oops", &out, &error));
  EXPECT_FALSE(Json::parse("{\"a\": 1,}", &out, &error));
  EXPECT_FALSE(Json::parse("{\"a\": 1} trailing", &out, &error));
  EXPECT_FALSE(Json::parse("\"unterminated", &out, &error));
  EXPECT_FALSE(Json::parse("{\"a\": 01}", &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Protocol, ParseRejectsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  Json out;
  std::string error;
  EXPECT_FALSE(Json::parse(deep, &out, &error));
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

}  // namespace
}  // namespace cl::service
