// Lock x attack conformance matrix: every registered defense must run
// through every attack mode without crashing, produce lint-clean instances,
// and end in a documented verdict. The only allowed "does not apply" cell is
// the scan-model family (sat/appsat/double-dip) on locks that add their own
// state, where scan exposure changes the I/O interface — the same rejection
// the CLI and service give.
//
// The matrix is also where the one-key-premise gap (Hu et al.) must show up
// in the wild: at least one cell has to end with a functionally passing key
// that is NOT the ground-truth bit vector (any_key_pass = 1, key_exact = 0),
// which is exactly the regime where the classic scoreboard undercounts
// broken defenses.
#include <gtest/gtest.h>

#include <optional>

#include "analysis/lint.hpp"
#include "attack/accept.hpp"
#include "attack/bbo.hpp"
#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "fsm/synth.hpp"
#include "lock/lock_registry.hpp"
#include "netlist/transform.hpp"

namespace cl {
namespace {

attack::AttackBudget matrix_budget() {
  attack::AttackBudget b;
  b.time_limit_s = 5.0;
  b.max_iterations = 80;
  b.max_depth = 8;
  b.verify_time_limit_s = 2.0;
  return b;
}

const char* const k_attacks[] = {"bmc", "kc2", "rane", "sat", "bbo"};

/// One matrix cell. nullopt = the documented scan-interface rejection.
std::optional<attack::AttackResult> run_attack(
    const std::string& mode, const netlist::Netlist& locked,
    const netlist::Netlist& original) {
  const attack::AttackBudget budget = matrix_budget();
  attack::SequentialOracle oracle(original);
  if (mode == "bmc") return attack::bmc_attack(locked, oracle, budget);
  if (mode == "kc2") return attack::kc2_attack(locked, oracle, budget);
  if (mode == "rane") return attack::rane_attack(locked, oracle, budget);
  if (mode == "bbo") {
    attack::BboOptions o;
    o.budget = budget;
    o.jobs = 1;
    return attack::bbo_attack(locked, oracle, o);
  }
  // Scan-access model: full scan turns both circuits combinational. A lock
  // that added flip-flops of its own widens the scan interface past the
  // oracle's, and the attack does not apply (CLI/service reject the same
  // way).
  const netlist::Netlist locked_scan = netlist::scan_expose(locked);
  const netlist::Netlist original_scan = netlist::scan_expose(original);
  if (locked_scan.inputs().size() != original_scan.inputs().size() ||
      locked_scan.outputs().size() != original_scan.outputs().size()) {
    return std::nullopt;
  }
  attack::SequentialOracle scan_oracle(original_scan);
  attack::SatAttackOptions o;
  o.budget = matrix_budget();
  return attack::sat_attack(locked_scan, scan_oracle, o);
}

struct GapTally {
  std::size_t cells_run = 0;
  std::size_t skipped = 0;
  std::size_t gap_cells = 0;  // any_key_pass == 1 && key_exact == 0
};

void run_matrix(const netlist::Netlist& original, std::uint64_t seed,
                GapTally& tally) {
  for (const lock::RegisteredLock& entry : lock::lock_registry()) {
    util::Rng rng(seed);
    const lock::LockResult lr = entry.build(original, rng);
    EXPECT_EQ(lr.scheme, entry.scheme);
    EXPECT_EQ(lr.locked.dffs().size() > original.dffs().size(),
              entry.adds_state)
        << entry.name;
    EXPECT_EQ(lr.is_dynamic(), entry.dynamic_key) << entry.name;

    // Every instance must be lint-clean: no errors gating an attack, and no
    // dead-logic mislabeling of deliberate decoy structure.
    const analysis::LintReport inst = analysis::lint(lr.locked);
    EXPECT_EQ(inst.errors(), 0u)
        << entry.name << ":\n" << analysis::format_diagnostics(inst);
    const analysis::LintReport pair =
        analysis::lint_attack_inputs(lr.locked, original);
    EXPECT_EQ(pair.errors(), 0u)
        << entry.name << ":\n" << analysis::format_diagnostics(pair);

    for (const char* mode : k_attacks) {
      SCOPED_TRACE(std::string(entry.name) + " x " + mode);
      const auto result = run_attack(mode, lr.locked, original);
      if (!result) {
        // Only the scan family on state-adding locks may bail out.
        EXPECT_STREQ(mode, "sat");
        EXPECT_TRUE(entry.adds_state);
        ++tally.skipped;
        continue;
      }
      ++tally.cells_run;
      if (entry.dynamic_key) {
        // No static key exists; an Equal here would be a verifier bug.
        EXPECT_TRUE(attack::defense_held(result->outcome))
            << result->summary();
        continue;
      }
      if (result->outcome != attack::Outcome::Equal) continue;
      // The attack claims success: the acceptance layer must agree that the
      // reported key is functionally passing, whichever bits it picked for
      // the decoys.
      const attack::AcceptReport rep = attack::verify_any_key(
          lr.locked, result->key, original, &lr.correct_key);
      EXPECT_TRUE(rep.accepted) << rep.detail;
      EXPECT_EQ(rep.any_key_pass, 1);
      // No exactness assertion even for locks not flagged multi_key: two
      // XOR key gates placed in series on one path constrain only their
      // XOR-sum, so equivalence classes appear in any randomized placement.
      if (rep.any_key_pass == 1 && rep.key_exact == 0) ++tally.gap_cells;
    }
  }
}

TEST(LockAttackMatrix, S27EveryLockEveryAttack) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("s27");
  GapTally tally;
  run_matrix(circuit.netlist, 23, tally);
  EXPECT_GT(tally.cells_run, 0u);
  // The one-key-premise gap is not hypothetical: some attack on some
  // multi-key lock recovered a passing key that differs from the secret.
  EXPECT_GE(tally.gap_cells, 1u)
      << tally.cells_run << " cells run, " << tally.skipped << " skipped";
}

TEST(LockAttackMatrix, S298EveryLockEveryAttack) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("s298");
  GapTally tally;
  run_matrix(circuit.netlist, 31, tally);
  EXPECT_GT(tally.cells_run, 0u);
}

// Cute-Lock-Beh locks an STG rather than a netlist, so it sits outside the
// registry; cover it the way the bench harnesses do — synthesize the locked
// and reference FSMs, then run the sequential attacks against the pair.
TEST(LockAttackMatrix, BehSynthesizedPairSurvivesSequentialAttacks) {
  const fsm::Stg stg = benchgen::make_fsm(benchgen::find_fsm_spec("dmac"));
  core::BehOptions options;
  options.num_keys = 2;
  options.key_bits = 7;
  options.seed = 6;
  const core::BehLock lock(stg, options);
  const lock::LockResult lr =
      lock.synthesize(fsm::SynthStyle::DirectTransitions, "dmac_l");
  const netlist::Netlist original =
      fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, "dmac");
  const analysis::LintReport pair =
      analysis::lint_attack_inputs(lr.locked, original);
  EXPECT_EQ(pair.errors(), 0u) << analysis::format_diagnostics(pair);
  for (const char* mode : {"bmc", "kc2"}) {
    SCOPED_TRACE(mode);
    const auto result = run_attack(mode, lr.locked, original);
    ASSERT_TRUE(result.has_value());
    // The correct key is a per-cycle schedule; no static key can be Equal.
    EXPECT_TRUE(attack::defense_held(result->outcome)) << result->summary();
  }
}

}  // namespace
}  // namespace cl
