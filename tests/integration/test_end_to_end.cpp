// End-to-end integration: the full pipeline the bench harnesses rely on,
// exercised through the public API including file-format round trips.
#include <gtest/gtest.h>

#include "attack/bbo.hpp"
#include "attack/dana.hpp"
#include "attack/fall.hpp"
#include "attack/seq_attack.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/fsm_suite.hpp"
#include "core/cute_lock_beh.hpp"
#include "core/cute_lock_str.hpp"
#include "fsm/synth.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/blif_io.hpp"
#include "netlist/verilog_io.hpp"
#include "tech/overhead.hpp"

namespace cl {
namespace {

attack::AttackBudget quick_budget() {
  attack::AttackBudget b;
  b.time_limit_s = 15.0;
  b.max_iterations = 150;
  b.max_depth = 12;
  return b;
}

TEST(EndToEnd, LockSerializeReloadAttack) {
  // Generate -> lock -> write .bench -> read back -> attack the reloaded
  // netlist. Catches any information the serialization might drop.
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b01");
  core::StrOptions options;
  options.num_keys = 2;
  options.key_bits = 2;
  options.locked_ffs = 1;
  options.seed = 99;
  const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);

  const std::string text = netlist::write_bench_string(locked.locked);
  const netlist::Netlist reloaded = netlist::read_bench_string(text, "b01_l");
  EXPECT_EQ(reloaded.key_inputs().size(), locked.locked.key_inputs().size());
  EXPECT_EQ(reloaded.dffs().size(), locked.locked.dffs().size());

  // The reloaded circuit behaves identically under the schedule.
  util::Rng rng(5);
  const auto stim = sim::random_stimulus(rng, 24, circuit.netlist.inputs().size());
  EXPECT_EQ(sim::run_sequence(reloaded, stim, locked.keys_for(24)),
            sim::run_sequence(circuit.netlist, stim));

  // And the attack verdict is the same: defense holds.
  attack::SequentialOracle oracle(circuit.netlist);
  const attack::AttackResult r = attack::bmc_attack(reloaded, oracle, quick_budget());
  EXPECT_TRUE(attack::defense_held(r.outcome)) << r.summary();
}

TEST(EndToEnd, BehFlowFromFsmToAttackedNetlist) {
  const fsm::Stg stg = benchgen::make_fsm(benchgen::find_fsm_spec("dmac"));
  core::BehOptions options;
  options.num_keys = 2;
  options.key_bits = 7;
  options.seed = 4;
  const core::BehLock lock(stg, options);
  const auto locked = lock.synthesize(fsm::SynthStyle::DirectTransitions, "dmac_l");
  const auto original = fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, "dmac");
  attack::SequentialOracle oracle(original);
  const attack::AttackResult kc2 =
      attack::kc2_attack(locked.locked, oracle, quick_budget());
  EXPECT_TRUE(attack::defense_held(kc2.outcome)) << kc2.summary();
  // The behavioral RTL emission stays syntactically plausible.
  const std::string rtl = lock.behavioral_verilog("dmac_l");
  EXPECT_NE(rtl.find("module dmac_l"), std::string::npos);
}

TEST(EndToEnd, AllFormatsCarryTheLockedDesign) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b06");
  core::StrOptions options;
  options.num_keys = 2;
  options.key_bits = 1;
  options.seed = 7;
  const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);

  // BLIF round trip preserves behaviour.
  const netlist::Netlist via_blif =
      netlist::read_blif_string(netlist::write_blif_string(locked.locked));
  util::Rng rng(8);
  const auto stim = sim::random_stimulus(rng, 16, circuit.netlist.inputs().size());
  const auto keys = locked.keys_for(16);
  EXPECT_EQ(sim::run_sequence(via_blif, stim, keys),
            sim::run_sequence(locked.locked, stim, keys));
  // Verilog emission contains the key ports.
  const std::string v = netlist::write_verilog_string(locked.locked);
  EXPECT_NE(v.find("keyinput0"), std::string::npos);
}

TEST(EndToEnd, OverheadPipelineOnLockedDesigns) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b06");
  const tech::OverheadReport base = tech::analyze_overhead(circuit.netlist);
  core::StrOptions options;
  options.num_keys = 4;
  options.key_bits = 3;
  options.seed = 9;
  const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);
  const tech::OverheadReport r = tech::analyze_overhead(locked.locked);
  EXPECT_GT(r.cells, base.cells);
  EXPECT_GT(r.area_um2, base.area_um2);
  EXPECT_GT(r.power_w, base.power_w);
  EXPECT_EQ(r.ios, base.ios + 3);  // +ki key pins
}

TEST(EndToEnd, RemovalAttacksPipelineMatchesTableFive) {
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b03");
  core::StrOptions options;
  options.num_keys = 2;
  options.key_bits = 4;
  options.locked_ffs = 4;
  options.seed = 10;
  const lock::LockResult locked = core::cute_lock_str(circuit.netlist, options);

  const auto dana_orig = attack::dana_attack(circuit.netlist);
  const auto dana_locked = attack::dana_attack(locked.locked);
  EXPECT_LT(attack::nmi_score(locked.locked, dana_locked, circuit.groups),
            attack::nmi_score(circuit.netlist, dana_orig, circuit.groups));

  attack::SequentialOracle oracle(circuit.netlist);
  const attack::FallResult fall = attack::fall_attack(locked.locked, oracle);
  EXPECT_EQ(fall.confirmed, 0u);
}

TEST(EndToEnd, ScaledSuiteMembersStayConsistent) {
  // Spot-check that the largest generated circuits build, simulate and map
  // without issues (b17 is the biggest unscaled ITC member).
  const benchgen::SyntheticCircuit big = benchgen::make_circuit("b17");
  EXPECT_GT(big.netlist.stats().gates, 20000u);
  util::Rng rng(11);
  const auto stim = sim::random_stimulus(rng, 4, big.netlist.inputs().size());
  EXPECT_EQ(sim::run_sequence(big.netlist, stim).size(), 4u);
  const tech::MappedDesign mapped = tech::map_to_cells(big.netlist);
  EXPECT_GT(mapped.total_cells(), 20000u);
}

}  // namespace
}  // namespace cl
