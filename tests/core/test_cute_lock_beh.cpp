#include "core/cute_lock_beh.hpp"

#include <gtest/gtest.h>

#include "sim/sequence.hpp"

namespace cl::core {
namespace {

BehOptions opts(std::size_t k, std::size_t ki, std::uint64_t seed) {
  BehOptions o;
  o.num_keys = k;
  o.key_bits = ki;
  o.seed = seed;
  return o;
}

TEST(CuteLockBeh, CorrectScheduleReplaysOriginal) {
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(4, 4, 1));
  util::Rng rng(10);
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint64_t> keys;
  for (int t = 0; t < 200; ++t) {
    inputs.push_back(static_cast<std::uint32_t>(rng.next_below(2)));
    keys.push_back(lock.keys()[static_cast<std::size_t>(t) % lock.num_keys()]);
  }
  const auto want = stg.run(inputs);
  const auto got = lock.run(inputs, keys);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    EXPECT_EQ(got[t].output, want[t].output) << "cycle " << t;
    EXPECT_EQ(got[t].next_state, want[t].next_state) << "cycle " << t;
  }
}

TEST(CuteLockBeh, WrongKeyTakesWrongfulTransition) {
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(4, 4, 2));
  const std::uint64_t wrong = lock.keys()[0] ^ 1ULL;
  const auto r = lock.step(stg.initial(), 0, wrong, 1);
  EXPECT_EQ(r.next_state, lock.wrongful_target(stg.initial(), 0));
  // The redirect never self-loops (it must visibly leave the state).
  EXPECT_NE(r.next_state, stg.initial());
}

TEST(CuteLockBeh, RightKeyAtWrongTimeFails) {
  // The essence of time-based keys: K[1] applied at time 0 is wrong unless
  // K[0] == K[1] (excluded by construction).
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(4, 4, 3));
  ASSERT_NE(lock.keys()[0], lock.keys()[1]);
  const auto r = lock.step(stg.initial(), 0, lock.keys()[1], 1);
  EXPECT_EQ(r.next_state, lock.wrongful_target(stg.initial(), 0));
}

TEST(CuteLockBeh, SingleKeyReductionUsesOneValue) {
  BehOptions o = opts(4, 6, 4);
  o.single_key_reduction = true;
  const BehLock lock(fsm::make_1001_detector(), o);
  for (std::size_t t = 1; t < lock.num_keys(); ++t) {
    EXPECT_EQ(lock.keys()[t], lock.keys()[0]);
  }
}

class BehSynthSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(BehSynthSweep, SynthesizedNetlistMatchesReferenceSemantics) {
  const auto [k, ki, seed] = GetParam();
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(k, ki, seed));
  const auto lr = lock.synthesize(fsm::SynthStyle::DirectTransitions, "beh");
  ASSERT_EQ(lr.key_schedule.size(), k);
  ASSERT_EQ(lr.locked.key_inputs().size(), ki);

  util::Rng rng(seed * 17 + 1);
  // Mixed key material: sometimes correct, sometimes random — the netlist
  // must track the reference semantics cycle-by-cycle either way.
  std::vector<std::uint32_t> inputs;
  std::vector<std::uint64_t> keys;
  std::vector<sim::BitVec> stim;
  std::vector<sim::BitVec> key_vecs;
  const std::uint64_t mask = (1ULL << ki) - 1;
  for (int t = 0; t < 120; ++t) {
    const std::uint32_t x = static_cast<std::uint32_t>(rng.next_below(2));
    const std::uint64_t key =
        rng.chance(2, 3) ? lock.keys()[static_cast<std::size_t>(t) % k]
                         : (rng.next_u64() & mask);
    inputs.push_back(x);
    keys.push_back(key);
    stim.push_back(sim::u64_to_bits(x, 1));
    key_vecs.push_back(sim::u64_to_bits(key, ki));
  }
  const auto want = lock.run(inputs, keys);
  const auto got = sim::run_sequence(lr.locked, stim, key_vecs);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    EXPECT_EQ(sim::bits_to_u64(got[t]), want[t].output) << "cycle " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BehSynthSweep,
                         ::testing::Values(std::make_tuple(2, 2, 1ULL),
                                           std::make_tuple(3, 4, 2ULL),
                                           std::make_tuple(4, 4, 3ULL),
                                           std::make_tuple(4, 8, 4ULL),
                                           std::make_tuple(6, 5, 5ULL),
                                           std::make_tuple(8, 6, 6ULL)));

TEST(CuteLockBeh, SynthesizedLockValidatesAgainstOriginalNetlist) {
  const fsm::Stg stg = fsm::make_1001_detector();
  const auto original = fsm::synthesize(stg, fsm::SynthStyle::DirectTransitions, "det");
  const BehLock lock(stg, opts(4, 4, 9));
  const auto lr = lock.synthesize(fsm::SynthStyle::DirectTransitions, "det_locked");
  util::Rng rng(55);
  EXPECT_EQ(lock::validate_lock(original, lr, rng), "");
}

TEST(CuteLockBeh, BehavioralVerilogEmits) {
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(4, 4, 11));
  const std::string v = lock.behavioral_verilog("det_beh");
  EXPECT_NE(v.find("module det_beh"), std::string::npos);
  EXPECT_NE(v.find("key_ok"), std::string::npos);
  EXPECT_NE(v.find("Wrongful STG"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  // One key comparison per counter slot.
  std::size_t count = 0;
  for (std::size_t pos = v.find("key =="); pos != std::string::npos;
       pos = v.find("key ==", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(CuteLockBeh, OptionValidation) {
  const fsm::Stg stg = fsm::make_1001_detector();
  EXPECT_THROW(BehLock(stg, opts(1, 4, 1)), std::invalid_argument);
  EXPECT_THROW(BehLock(stg, opts(4, 0, 1)), std::invalid_argument);
  EXPECT_THROW(BehLock(stg, opts(4, 65, 1)), std::invalid_argument);
}

TEST(CuteLockBeh, WrongfulTargetsAvoidSelfLoops) {
  const fsm::Stg stg = fsm::make_1001_detector();
  const BehLock lock(stg, opts(4, 4, 13));
  for (int s = 0; s < stg.num_states(); ++s) {
    for (std::size_t t = 0; t < lock.num_keys(); ++t) {
      EXPECT_NE(lock.wrongful_target(s, t), s) << "state " << s << " time " << t;
    }
  }
}

}  // namespace
}  // namespace cl::core
