#include "core/cute_lock_str.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/topo.hpp"

namespace cl::core {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

class StrSweep : public ::testing::TestWithParam<
                     std::tuple<std::size_t, std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(StrSweep, CorrectScheduleIsTransparent) {
  const auto [k, ki, ffs, seed] = GetParam();
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = k;
  opt.key_bits = ki;
  opt.locked_ffs = ffs;
  opt.seed = seed;
  const auto lr = cute_lock_str(nl, opt);
  EXPECT_EQ(lr.key_schedule.size(), k);
  EXPECT_EQ(lr.locked.key_inputs().size(), ki);
  util::Rng rng(seed + 1000);
  EXPECT_EQ(validate_lock(nl, lr, rng), "")
      << "k=" << k << " ki=" << ki << " ffs=" << ffs << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrSweep,
    ::testing::Values(std::make_tuple(2, 2, 1, 1ULL), std::make_tuple(2, 4, 2, 2ULL),
                      std::make_tuple(3, 3, 1, 3ULL), std::make_tuple(4, 2, 1, 4ULL),
                      std::make_tuple(4, 4, 3, 5ULL), std::make_tuple(5, 3, 2, 6ULL),
                      std::make_tuple(6, 5, 3, 7ULL), std::make_tuple(8, 4, 2, 8ULL),
                      std::make_tuple(8, 8, 3, 9ULL),
                      std::make_tuple(16, 5, 2, 10ULL)));

TEST(CuteLockStr, EveryStaticKeyDerailsTheStateMachine) {
  // The core security property: because K[0] != K[1], no static key can
  // satisfy all counter slots, so every static assignment corrupts the
  // *state trajectory*. (Whether that reaches an output immediately depends
  // on the circuit's observability — s27 has a single, highly masking
  // output — so this test compares the functional registers directly.)
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 3;
  opt.locked_ffs = 2;
  opt.seed = 77;
  const auto lr = cute_lock_str(nl, opt);
  util::Rng rng(123);
  for (std::uint64_t key = 0; key < 8; ++key) {
    bool state_diverged = false;
    for (int trial = 0; trial < 4 && !state_diverged; ++trial) {
      const auto stim = sim::random_stimulus(rng, 64, nl.inputs().size());
      sim::BitSim orig(nl);
      sim::BitSim locked(lr.locked);
      const auto kv = sim::u64_to_bits(key, 3);
      for (std::size_t t = 0; t < stim.size() && !state_diverged; ++t) {
        for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
          orig.set(nl.inputs()[i], stim[t][i] ? ~0ULL : 0ULL);
          locked.set(lr.locked.inputs()[i], stim[t][i] ? ~0ULL : 0ULL);
        }
        for (std::size_t b = 0; b < kv.size(); ++b) {
          locked.set(lr.locked.key_inputs()[b], kv[b] ? ~0ULL : 0ULL);
        }
        orig.eval();
        locked.eval();
        for (netlist::SignalId q : nl.dffs()) {
          const netlist::SignalId lq = lr.locked.find(nl.signal_name(q));
          if ((orig.get(q) & 1ULL) != (locked.get(lq) & 1ULL)) {
            state_diverged = true;
          }
        }
        orig.step();
        locked.step();
      }
    }
    EXPECT_TRUE(state_diverged) << "static key " << key;
  }
}

TEST(CuteLockStr, SingleKeyReductionAcceptsStaticKey) {
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 3;
  opt.locked_ffs = 2;
  opt.seed = 78;
  opt.single_key_reduction = true;
  const auto lr = cute_lock_str(nl, opt);
  // All schedule entries coincide.
  for (const auto& kv : lr.key_schedule) EXPECT_EQ(kv, lr.key_schedule[0]);
  util::Rng rng(124);
  const auto stim = sim::random_stimulus(rng, 48, nl.inputs().size());
  const auto want = sim::run_sequence(nl, stim);
  const auto got = sim::run_sequence(lr.locked, stim, {lr.key_schedule[0]});
  EXPECT_EQ(sim::first_divergence(want, got), -1);
}

TEST(CuteLockStr, PaperKeysOnS27) {
  // The paper's Table II configuration: s27 locked with keys 1, 3, 2, 0.
  // Our generator draws keys from the seed, so emulate by checking the
  // schedule has period 4 and width 2 and validates.
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 1;
  opt.seed = 2025;
  const auto lr = cute_lock_str(nl, opt);
  EXPECT_EQ(lr.key_schedule.size(), 4u);
  EXPECT_EQ(lr.key_schedule[0].size(), 2u);
  util::Rng rng(99);
  EXPECT_EQ(validate_lock(nl, lr, rng), "");
}

TEST(CuteLockStr, AddsCounterAndMuxTree) {
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 2;
  opt.locked_ffs = 1;
  opt.seed = 5;
  const auto lr = cute_lock_str(nl, opt);
  // 2 counter FFs for k=4.
  EXPECT_EQ(lr.locked.dffs().size(), nl.dffs().size() + 2);
  // MUX gates exist (layer 1 slots + upper layers).
  std::size_t muxes = 0;
  for (netlist::SignalId s = 0; s < lr.locked.size(); ++s) {
    if (lr.locked.type(s) == netlist::GateType::Mux) ++muxes;
  }
  EXPECT_GE(muxes, opt.num_keys);  // at least one slot MUX per time
  EXPECT_NO_THROW(netlist::topo_order(lr.locked));
}

TEST(CuteLockStr, WrongfulHardwareIsRepurposedNotDuplicated) {
  // Lock 1 FF of s27: the wrongful inputs of the layer-1 slots must be
  // pre-existing next-state signals (G10/G11/G13), not fresh logic clones.
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 2;
  opt.key_bits = 2;
  opt.locked_ffs = 3;
  opt.seed = 6;
  const auto lr = cute_lock_str(nl, opt);
  // Gate growth should be bounded: counter + comparators + MUX trees only.
  // Duplicating even one next-state cone of s27 would add ~10 gates per
  // slot; the whole lock must stay well under that.
  const std::size_t added = lr.locked.stats().gates - nl.stats().gates;
  EXPECT_LT(added, 120u);
  util::Rng rng(7);
  EXPECT_EQ(validate_lock(nl, lr, rng), "");
}

TEST(CuteLockStr, OptionValidation) {
  const Netlist nl = s27();
  StrOptions opt;
  opt.num_keys = 1;
  EXPECT_THROW(cute_lock_str(nl, opt), std::invalid_argument);
  opt.num_keys = 2;
  opt.key_bits = 0;
  EXPECT_THROW(cute_lock_str(nl, opt), std::invalid_argument);
  opt.key_bits = 2;
  opt.locked_ffs = 0;
  EXPECT_THROW(cute_lock_str(nl, opt), std::invalid_argument);
  // No flip-flops at all:
  Netlist comb("c");
  const auto a = comb.add_input("a");
  comb.add_output(comb.add_not(a, "y"));
  StrOptions ok;
  EXPECT_THROW(cute_lock_str(comb, ok), std::invalid_argument);
}

TEST(CuteLockStr, DeterministicForSameSeed) {
  const Netlist nl = s27();
  StrOptions opt;
  opt.seed = 42;
  const auto a = cute_lock_str(nl, opt);
  const auto b = cute_lock_str(nl, opt);
  EXPECT_EQ(a.key_schedule, b.key_schedule);
  EXPECT_EQ(a.locked.size(), b.locked.size());
}

TEST(CuteLockStr, AdjacentScheduleEntriesDiffer) {
  const Netlist nl = s27();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    StrOptions opt;
    opt.num_keys = 4;
    opt.key_bits = 2;
    opt.seed = seed;
    const auto lr = cute_lock_str(nl, opt);
    for (std::size_t t = 1; t < lr.key_schedule.size(); ++t) {
      EXPECT_NE(lr.key_schedule[t], lr.key_schedule[t - 1]) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace cl::core
