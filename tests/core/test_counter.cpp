#include "core/counter.hpp"

#include <gtest/gtest.h>

#include "sim/bit_sim.hpp"

namespace cl::core {
namespace {

using netlist::Netlist;

TEST(TimeBase, CounterBitsCeilLog) {
  EXPECT_EQ(counter_bits(2), 1);
  EXPECT_EQ(counter_bits(3), 2);
  EXPECT_EQ(counter_bits(4), 2);
  EXPECT_EQ(counter_bits(5), 3);
  EXPECT_EQ(counter_bits(16), 4);
  EXPECT_THROW(counter_bits(1), std::invalid_argument);
}

class TimeBaseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimeBaseSweep, CountsModuloKWithOneHotIndicators) {
  const std::size_t k = GetParam();
  Netlist nl("tb");
  const TimeBase tb = build_time_base(nl, k, "t");
  // Anchor the indicators so the netlist has outputs for cleanliness.
  for (auto s : tb.is_time) nl.add_output(s);
  nl.check();
  sim::BitSim sim(nl);
  for (std::size_t cycle = 0; cycle < 3 * k + 1; ++cycle) {
    sim.eval();
    const std::size_t expect = cycle % k;
    // Counter value.
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < tb.counter_ffs.size(); ++b) {
      if (sim.get(tb.counter_ffs[b]) & 1ULL) value |= 1ULL << b;
    }
    EXPECT_EQ(value, expect) << "cycle " << cycle;
    // Indicators are one-hot at the current slot.
    for (std::size_t t = 0; t < k; ++t) {
      EXPECT_EQ(sim.get(tb.is_time[t]) & 1ULL, t == expect ? 1ULL : 0ULL)
          << "cycle " << cycle << " slot " << t;
    }
    sim.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, TimeBaseSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 21));

TEST(TimeBase, NonPowerOfTwoPeriodsWrapToZeroNotIntoDeadStates) {
  // For k not a power of two the counter register can encode values
  // k..2^bits-1 that must never be visited: the wrap must jump from k-1
  // straight to 0. Checked for three full periods each.
  for (const std::size_t k : {std::size_t{3}, std::size_t{5}, std::size_t{6}}) {
    Netlist nl("wrap" + std::to_string(k));
    const TimeBase tb = build_time_base(nl, k, "t");
    for (auto s : tb.is_time) nl.add_output(s);
    nl.check();
    sim::BitSim sim(nl);
    std::size_t wraps_seen = 0;
    std::size_t prev = 0;
    for (std::size_t cycle = 0; cycle < 3 * k + 1; ++cycle) {
      sim.eval();
      std::uint64_t value = 0;
      for (std::size_t b = 0; b < tb.counter_ffs.size(); ++b) {
        if (sim.get(tb.counter_ffs[b]) & 1ULL) value |= 1ULL << b;
      }
      // Never inside the dead zone [k, 2^bits).
      ASSERT_LT(value, k) << "k=" << k << " cycle " << cycle;
      if (cycle > 0) {
        // Successor is +1 mod k; in particular k-1 -> 0, not k-1 -> k.
        EXPECT_EQ(value, (prev + 1) % k) << "k=" << k << " cycle " << cycle;
        if (prev == k - 1) {
          EXPECT_EQ(value, 0u);
          ++wraps_seen;
        }
      }
      // One-hot indicator agrees with the register value.
      for (std::size_t t = 0; t < k; ++t) {
        EXPECT_EQ(sim.get(tb.is_time[t]) & 1ULL, t == value ? 1ULL : 0ULL)
            << "k=" << k << " cycle " << cycle << " slot " << t;
      }
      prev = value;
      sim.step();
    }
    EXPECT_EQ(wraps_seen, 3u) << "k=" << k;
  }
}

}  // namespace
}  // namespace cl::core
