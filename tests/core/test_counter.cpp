#include "core/counter.hpp"

#include <gtest/gtest.h>

#include "sim/bit_sim.hpp"

namespace cl::core {
namespace {

using netlist::Netlist;

TEST(TimeBase, CounterBitsCeilLog) {
  EXPECT_EQ(counter_bits(2), 1);
  EXPECT_EQ(counter_bits(3), 2);
  EXPECT_EQ(counter_bits(4), 2);
  EXPECT_EQ(counter_bits(5), 3);
  EXPECT_EQ(counter_bits(16), 4);
  EXPECT_THROW(counter_bits(1), std::invalid_argument);
}

class TimeBaseSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TimeBaseSweep, CountsModuloKWithOneHotIndicators) {
  const std::size_t k = GetParam();
  Netlist nl("tb");
  const TimeBase tb = build_time_base(nl, k, "t");
  // Anchor the indicators so the netlist has outputs for cleanliness.
  for (auto s : tb.is_time) nl.add_output(s);
  nl.check();
  sim::BitSim sim(nl);
  for (std::size_t cycle = 0; cycle < 3 * k + 1; ++cycle) {
    sim.eval();
    const std::size_t expect = cycle % k;
    // Counter value.
    std::uint64_t value = 0;
    for (std::size_t b = 0; b < tb.counter_ffs.size(); ++b) {
      if (sim.get(tb.counter_ffs[b]) & 1ULL) value |= 1ULL << b;
    }
    EXPECT_EQ(value, expect) << "cycle " << cycle;
    // Indicators are one-hot at the current slot.
    for (std::size_t t = 0; t < k; ++t) {
      EXPECT_EQ(sim.get(tb.is_time[t]) & 1ULL, t == expect ? 1ULL : 0ULL)
          << "cycle " << cycle << " slot " << t;
    }
    sim.step();
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, TimeBaseSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 12, 16, 21));

}  // namespace
}  // namespace cl::core
