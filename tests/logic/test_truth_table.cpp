#include "logic/truth_table.hpp"

#include <gtest/gtest.h>

namespace cl::logic {
namespace {

TEST(TruthTable, ConstructsAllZero) {
  const TruthTable t(3);
  EXPECT_EQ(t.num_vars(), 3);
  EXPECT_EQ(t.num_minterms(), 8u);
  EXPECT_TRUE(t.is_const_zero());
  EXPECT_FALSE(t.is_const_one());
}

TEST(TruthTable, RejectsBadArity) {
  EXPECT_THROW(TruthTable(-1), std::invalid_argument);
  EXPECT_THROW(TruthTable(21), std::invalid_argument);
}

TEST(TruthTable, SetGetRoundTrip) {
  TruthTable t(4);
  t.set(5, true);
  t.set(11, true);
  EXPECT_TRUE(t.get(5));
  EXPECT_TRUE(t.get(11));
  EXPECT_FALSE(t.get(6));
  t.set(5, false);
  EXPECT_FALSE(t.get(5));
  EXPECT_THROW(t.get(16), std::out_of_range);
}

TEST(TruthTable, FromFunctionMajority) {
  const TruthTable maj = TruthTable::from_function(3, [](std::uint64_t m) {
    const int ones = ((m >> 0) & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    return ones >= 2;
  });
  EXPECT_EQ(maj.count_ones(), 4u);
  EXPECT_TRUE(maj.get(0b011));
  EXPECT_FALSE(maj.get(0b001));
}

TEST(TruthTable, OperatorsMatchSemantics) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const TruthTable and_tt = a & b;
  const TruthTable or_tt = a | b;
  const TruthTable xor_tt = a ^ b;
  for (std::uint64_t m = 0; m < 4; ++m) {
    const bool av = (m >> 0) & 1, bv = (m >> 1) & 1;
    EXPECT_EQ(and_tt.get(m), av && bv);
    EXPECT_EQ(or_tt.get(m), av || bv);
    EXPECT_EQ(xor_tt.get(m), av != bv);
  }
  EXPECT_TRUE((~a | a).is_const_one());
  EXPECT_TRUE((~a & a).is_const_zero());
}

TEST(TruthTable, EqualityIgnoresPaddingBits) {
  // For < 6 vars the top word has unused bits; ~ fills them with 1s, which
  // must not break equality.
  const TruthTable a = TruthTable::variable(3, 0);
  const TruthTable twice_negated = ~~a;
  EXPECT_TRUE(a == twice_negated);
}

TEST(TruthTable, CofactorShannon) {
  // f = x0 & x1 | x2
  const TruthTable f = (TruthTable::variable(3, 0) & TruthTable::variable(3, 1)) |
                       TruthTable::variable(3, 2);
  const TruthTable f_x2_1 = f.cofactor(2, true);
  EXPECT_TRUE(f_x2_1.is_const_one());
  const TruthTable f_x2_0 = f.cofactor(2, false);
  const TruthTable expect = TruthTable::variable(3, 0) & TruthTable::variable(3, 1);
  EXPECT_TRUE(f_x2_0 == expect);
}

TEST(TruthTable, IndependenceDetection) {
  const TruthTable f = TruthTable::variable(3, 0);
  EXPECT_TRUE(f.is_independent_of(1));
  EXPECT_TRUE(f.is_independent_of(2));
  EXPECT_FALSE(f.is_independent_of(0));
}

TEST(TruthTable, UnatenessDetection) {
  const TruthTable a = TruthTable::variable(2, 0);
  const TruthTable b = TruthTable::variable(2, 1);
  const TruthTable and_tt = a & b;
  EXPECT_TRUE(and_tt.is_positive_unate(0));
  EXPECT_TRUE(and_tt.is_positive_unate(1));
  EXPECT_FALSE((~a).is_positive_unate(0));
  EXPECT_TRUE((~a).is_negative_unate(0));
  const TruthTable xor_tt = a ^ b;
  EXPECT_FALSE(xor_tt.is_positive_unate(0));
  EXPECT_FALSE(xor_tt.is_negative_unate(0));
}

TEST(TruthTable, OnsetEnumeration) {
  TruthTable t(3);
  t.set(1, true);
  t.set(6, true);
  EXPECT_EQ(t.onset(), (std::vector<std::uint64_t>{1, 6}));
}

TEST(TruthTable, LargeArityWorks) {
  const TruthTable t = TruthTable::from_function(
      10, [](std::uint64_t m) { return (m % 3) == 0; });
  EXPECT_EQ(t.num_minterms(), 1024u);
  EXPECT_EQ(t.count_ones(), 342u);  // ceil(1024/3)
}

TEST(TruthTable, ZeroVarTable) {
  TruthTable t(0);
  EXPECT_EQ(t.num_minterms(), 1u);
  EXPECT_TRUE(t.is_const_zero());
  t.set(0, true);
  EXPECT_TRUE(t.is_const_one());
}

}  // namespace
}  // namespace cl::logic
