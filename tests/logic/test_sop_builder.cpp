#include "logic/sop_builder.hpp"

#include <gtest/gtest.h>

#include "logic/minimize.hpp"
#include "sim/bit_sim.hpp"
#include "util/rng.hpp"

namespace cl::logic {
namespace {

using netlist::Netlist;
using netlist::SignalId;

/// Evaluate a single-output combinational netlist on minterm m (inputs in
/// declaration order, input i = bit i).
bool eval_netlist(const Netlist& nl, SignalId out, std::uint64_t m) {
  sim::BitSim bs(nl);
  for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
    bs.set(nl.inputs()[i], ((m >> i) & 1ULL) ? ~0ULL : 0ULL);
  }
  bs.eval();
  return bs.get(out) & 1ULL;
}

TEST(SopBuilder, BuildsCoverSemantics) {
  Netlist nl("sop");
  std::vector<SignalId> ins;
  for (int i = 0; i < 3; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  const Cover cover{Cube::parse("11-"), Cube::parse("--1")};
  const SignalId y = build_sop(nl, ins, cover, "f");
  nl.add_output(y);
  for (std::uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(eval_netlist(nl, y, m), cover_eval(cover, static_cast<std::uint32_t>(m)))
        << "minterm " << m;
  }
}

TEST(SopBuilder, EmptyCoverIsConstZero) {
  Netlist nl("z");
  std::vector<SignalId> ins{nl.add_input("a")};
  const SignalId y = build_sop(nl, ins, {}, "f");
  nl.add_output(y);
  EXPECT_EQ(nl.type(y), netlist::GateType::Const0);
}

TEST(SopBuilder, TautologyCubeIsConstOne) {
  Netlist nl("t");
  std::vector<SignalId> ins{nl.add_input("a")};
  const SignalId y = build_sop(nl, ins, {Cube{}}, "f");
  nl.add_output(y);
  EXPECT_EQ(nl.type(y), netlist::GateType::Const1);
}

TEST(SopBuilder, InvertersAreShared) {
  Netlist nl("shared");
  std::vector<SignalId> ins{nl.add_input("a"), nl.add_input("b")};
  // Two cubes both needing a' — only one NOT gate should be created.
  const Cover cover{Cube::parse("00"), Cube::parse("01")};
  build_sop(nl, ins, cover, "f");
  std::size_t nots = 0;
  for (SignalId s = 0; s < nl.size(); ++s) {
    if (nl.type(s) == netlist::GateType::Not) ++nots;
  }
  // a' shared, b' appears once: exactly 2 inverters.
  EXPECT_EQ(nots, 2u);
}

TEST(SopBuilder, TreeBuildersBalance) {
  Netlist nl("tree");
  std::vector<SignalId> ins;
  for (int i = 0; i < 7; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  const SignalId y = build_and_tree(nl, ins, "t");
  nl.add_output(y);
  // AND of 7: result true only on all-ones.
  EXPECT_TRUE(eval_netlist(nl, y, 0x7f));
  EXPECT_FALSE(eval_netlist(nl, y, 0x3f));
  EXPECT_THROW(build_and_tree(nl, {}, "t"), std::invalid_argument);
  EXPECT_THROW(build_or_tree(nl, {}, "t"), std::invalid_argument);
}

TEST(SopBuilder, EqualsConstComparator) {
  Netlist nl("cmp");
  std::vector<SignalId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
  const SignalId y = build_equals_const(nl, ins, 0b1010, "eq");
  nl.add_output(y);
  for (std::uint64_t m = 0; m < 16; ++m) {
    EXPECT_EQ(eval_netlist(nl, y, m), m == 0b1010) << m;
  }
}

TEST(SopBuilder, MinimizedRandomFunctionsMatchReference) {
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 4;
    TruthTable tt(n);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) {
      if (rng.chance(1, 2)) tt.set(m, true);
    }
    const Cover cover = minimize(tt);
    Netlist nl("rand");
    std::vector<SignalId> ins;
    for (int i = 0; i < n; ++i) ins.push_back(nl.add_input("x" + std::to_string(i)));
    const SignalId y = build_sop(nl, ins, cover, "f");
    nl.add_output(y);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) {
      EXPECT_EQ(eval_netlist(nl, y, m), tt.get(m)) << "trial " << trial << " m " << m;
    }
  }
}

}  // namespace
}  // namespace cl::logic
