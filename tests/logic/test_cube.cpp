#include "logic/cube.hpp"

#include <gtest/gtest.h>

namespace cl::logic {
namespace {

TEST(Cube, ParseAndToString) {
  const Cube c = Cube::parse("1-0");
  EXPECT_EQ(c.to_string(3), "1-0");
  EXPECT_EQ(c.literal_count(), 2);
  EXPECT_THROW(Cube::parse("12"), std::invalid_argument);
}

TEST(Cube, MintermConstruction) {
  const Cube c = Cube::minterm(0b101, 3);
  EXPECT_EQ(c.to_string(3), "101");
  EXPECT_EQ(c.literal_count(), 3);
  EXPECT_TRUE(c.contains_minterm(0b101));
  EXPECT_FALSE(c.contains_minterm(0b100));
}

TEST(Cube, ContainsMinterm) {
  const Cube c = Cube::parse("1-");
  EXPECT_TRUE(c.contains_minterm(0b01));
  EXPECT_TRUE(c.contains_minterm(0b11));
  EXPECT_FALSE(c.contains_minterm(0b00));
}

TEST(Cube, CoversIsSupersetRelation) {
  const Cube wide = Cube::parse("1--");
  const Cube narrow = Cube::parse("1-0");
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
  const Cube other = Cube::parse("0--");
  EXPECT_FALSE(wide.covers(other));
}

TEST(Cube, CombineAdjacentCubes) {
  const Cube a = Cube::parse("10");
  const Cube b = Cube::parse("11");
  const auto merged = a.combine(b);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->to_string(2), "1-");
}

TEST(Cube, CombineRejectsNonAdjacent) {
  EXPECT_FALSE(Cube::parse("00").combine(Cube::parse("11")).has_value());
  // Different masks cannot combine.
  EXPECT_FALSE(Cube::parse("0-").combine(Cube::parse("01")).has_value());
}

TEST(Cube, CoverEvalIsDisjunction) {
  const Cover cover{Cube::parse("11-"), Cube::parse("--1")};
  EXPECT_TRUE(cover_eval(cover, 0b011));   // matches 11-
  EXPECT_TRUE(cover_eval(cover, 0b100));   // matches --1
  EXPECT_FALSE(cover_eval(cover, 0b010));
  EXPECT_FALSE(cover_eval({}, 0));
}

TEST(Cube, CoverLiteralsSums) {
  const Cover cover{Cube::parse("11-"), Cube::parse("--1")};
  EXPECT_EQ(cover_literals(cover), 3);
}

}  // namespace
}  // namespace cl::logic
