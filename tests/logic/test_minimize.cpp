#include "logic/minimize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cl::logic {
namespace {

TEST(Minimize, TextbookExample) {
  // f(a,b,c,d) onset = {4,8,10,11,12,15}, dc = {9,14} — the classic QM
  // example; minimal cover uses 3-4 cubes.
  const std::vector<std::uint64_t> onset{4, 8, 10, 11, 12, 15};
  const std::vector<std::uint64_t> dc{9, 14};
  const Cover cover = minimize(onset, dc, 4);
  EXPECT_TRUE(cover_equals(cover, onset, dc, 4));
  EXPECT_LE(cover.size(), 4u);
}

TEST(Minimize, XorHasNoMergedCubes) {
  const TruthTable x = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  const Cover cover = minimize(x);
  EXPECT_EQ(cover.size(), 2u);  // a'b + ab'
  EXPECT_EQ(cover_literals(cover), 4);
}

TEST(Minimize, FullCubeCollapsesToTautology) {
  const std::vector<std::uint64_t> onset{0, 1, 2, 3};
  const Cover cover = minimize(onset, {}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 0);
}

TEST(Minimize, EmptyOnsetGivesEmptyCover) {
  EXPECT_TRUE(minimize({}, {}, 3).empty());
}

TEST(Minimize, SingleMinterm) {
  const Cover cover = minimize({5}, {}, 3);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].to_string(3), "101");
}

TEST(Minimize, DontCaresEnableLargerCubes) {
  // onset {0}, dc {1,2,3} over 2 vars: minimal cover is the tautology cube.
  const Cover cover = minimize({0}, {1, 2, 3}, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(), 0);
}

TEST(Minimize, PrimeImplicantsOfAndFunction) {
  // f = ab over 2 vars: single prime "11".
  const auto primes = prime_implicants({3}, {}, 2);
  ASSERT_EQ(primes.size(), 1u);
  EXPECT_EQ(primes[0].to_string(2), "11");
}

TEST(Minimize, PrimesCoverOnsetNeverOffset) {
  util::Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(3));  // 4..6 vars
    std::vector<std::uint64_t> onset;
    for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
      if (rng.chance(1, 3)) onset.push_back(m);
    }
    const Cover cover = minimize(onset, {}, n);
    EXPECT_TRUE(cover_equals(cover, onset, {}, n)) << "trial " << trial;
  }
}

TEST(Minimize, CoverUsesOnlyPrimeImplicants) {
  util::Rng rng(7);
  const int n = 4;
  std::vector<std::uint64_t> onset;
  for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng.chance(1, 2)) onset.push_back(m);
  }
  const auto primes = prime_implicants(onset, {}, n);
  const Cover cover = minimize(onset, {}, n);
  for (const Cube& c : cover) {
    const bool is_prime =
        std::find(primes.begin(), primes.end(), c) != primes.end();
    EXPECT_TRUE(is_prime) << c.to_string(n);
  }
}

TEST(Minimize, RandomFunctionsWithDontCares) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5;
    std::vector<std::uint64_t> onset, dc;
    for (std::uint64_t m = 0; m < (1ULL << n); ++m) {
      const auto r = rng.next_below(4);
      if (r == 0) onset.push_back(m);
      else if (r == 1) dc.push_back(m);
    }
    const Cover cover = minimize(onset, dc, n);
    EXPECT_TRUE(cover_equals(cover, onset, dc, n)) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cl::logic
