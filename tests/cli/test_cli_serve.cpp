// End-to-end test for `cutelock serve` / `cutelock submit`: a real daemon
// process on a Unix socket, driven by the real client binary. This is the
// only place the acceptance property "a restarted daemon reloads the
// observation bank from disk" can be tested honestly — the in-process bank
// registry lives for the whole process, so cross-restart replay needs two
// separate daemon processes sharing a bank file.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "benchgen/catalog.hpp"
#include "netlist/bench_io.hpp"

namespace {

namespace fs = std::filesystem;

std::string quoted(const fs::path& p) { return "\"" + p.string() + "\""; }

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct CliRun {
  int exit_code = -1;
  std::string output;  // stdout only
};

class CliServe : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cutelock_cli_serve_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    s27_ = dir_ / "s27.bench";
    locked_ = dir_ / "s27_locked.bench";
    socket_ = dir_ / "cl.sock";
    bank_ = dir_ / "bank.bin";
    cl::netlist::write_bench_file(s27_.string(),
                                  cl::benchgen::make_circuit("s27").netlist);
    ASSERT_EQ(run("lock " + quoted(s27_) + " -o " + quoted(locked_) +
                  " --k 4 --ki 4 --seed 1")
                  .exit_code,
              0);
  }

  void TearDown() override {
    // Belt and braces: if a test failed before its shutdown, don't leak the
    // daemon past the test process.
    run("submit --socket " + quoted(socket_) + " --op shutdown");
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Run the CLI to completion, capturing stdout (stderr silenced).
  CliRun run(const std::string& args) {
    const fs::path out_file = dir_ / "out.txt";
    const std::string cmd = std::string(CUTELOCK_CLI_PATH) + " " + args +
                            " > " + quoted(out_file) + " 2> /dev/null";
    const int status = std::system(cmd.c_str());
    CliRun result;
    EXPECT_NE(status, -1) << "failed to spawn: " << cmd;
    EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination: " << cmd;
    if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
    result.output = slurp(out_file);
    return result;
  }

  /// Start a daemon in the background and wait until it answers a ping.
  void start_daemon() {
    const std::string cmd = std::string(CUTELOCK_CLI_PATH) +
                            " serve --socket " + quoted(socket_) + " --bank " +
                            quoted(bank_) + " --workers 2 > " +
                            quoted(dir_ / "serve.log") + " 2>&1 &";
    ASSERT_NE(std::system(cmd.c_str()), -1);
    for (int i = 0; i < 100; ++i) {
      if (run("submit --socket " + quoted(socket_) + " --op ping").exit_code ==
          0) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    FAIL() << "daemon never answered ping; log:\n"
           << slurp(dir_ / "serve.log");
  }

  /// Shut the daemon down and wait for it to unlink its socket on exit.
  void stop_daemon() {
    ASSERT_EQ(
        run("submit --socket " + quoted(socket_) + " --op shutdown").exit_code,
        0);
    for (int i = 0; i < 100; ++i) {
      if (!fs::exists(socket_)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    FAIL() << "daemon never removed its socket; log:\n"
           << slurp(dir_ / "serve.log");
  }

  CliRun submit_attack() {
    return run("submit --socket " + quoted(socket_) + " " + quoted(locked_) +
               " --oracle " + quoted(s27_) + " --attack bmc --seconds 20");
  }

  /// The verdict line with its wall-clock suffix stripped:
  /// "bmc attack: CNS iters=3 queries=3f/0r (key space ...)" stays, the
  /// trailing " (0.004s)" goes.
  static std::string verdict_of(const std::string& output) {
    const std::size_t eol = output.find('\n');
    std::string line = output.substr(0, eol);
    const std::size_t paren = line.rfind(" (");
    if (paren != std::string::npos && line.find('s', paren) != std::string::npos
        && line.back() == ')') {
      line.resize(paren);
    }
    return line;
  }

  fs::path dir_, s27_, locked_, socket_, bank_;
};

TEST_F(CliServe, DaemonMatchesInProcessAttackAndReplaysAcrossRestart) {
  // Reference: the one-shot CLI attack, no daemon, no bank.
  const CliRun direct = run("attack " + quoted(locked_) + " --oracle " +
                            quoted(s27_) + " --attack bmc --seconds 20");
  ASSERT_EQ(direct.exit_code, 0) << direct.output;  // multi-key lock holds

  start_daemon();

  // Cold daemon run: same verdict line (minus timing), same exit code.
  const CliRun cold = submit_attack();
  EXPECT_EQ(cold.exit_code, direct.exit_code) << cold.output;
  EXPECT_EQ(verdict_of(cold.output), verdict_of(direct.output));
  EXPECT_EQ(cold.output.find("replayed from the observation bank"),
            std::string::npos)
      << "cold run must not replay: " << cold.output;

  // Warm run in the same daemon: replay kicks in.
  const CliRun warm = submit_attack();
  EXPECT_EQ(warm.exit_code, direct.exit_code) << warm.output;
  EXPECT_NE(warm.output.find("replayed from the observation bank"),
            std::string::npos)
      << warm.output;

  stop_daemon();
  ASSERT_TRUE(fs::exists(bank_)) << "shutdown must persist the bank";

  // A brand-new daemon process with the same --bank: its FIRST attack must
  // already replay — the facts came back from disk, not from memory.
  start_daemon();
  const CliRun reloaded = submit_attack();
  EXPECT_EQ(reloaded.exit_code, direct.exit_code) << reloaded.output;
  EXPECT_NE(reloaded.output.find("replayed from the observation bank"),
            std::string::npos)
      << "restart lost the bank: " << reloaded.output;
  stop_daemon();
}

TEST_F(CliServe, SubmitWithoutDaemonFailsWithTransportExitCode) {
  const CliRun lost = run("submit --socket " + quoted(dir_ / "no.sock") +
                          " --op ping");
  EXPECT_EQ(lost.exit_code, 69);  // EX_UNAVAILABLE: connect/transport failure
}

TEST_F(CliServe, ServeUsageErrors) {
  // Neither --socket nor --port: usage error before any bind.
  EXPECT_EQ(run("submit --op ping").exit_code, 64);
}

}  // namespace
