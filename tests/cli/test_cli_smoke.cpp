// End-to-end smoke test for the cutelock CLI binary: lock s27, attack it,
// and assert the documented exit-code contract (0 = defense held, 2 = key
// recovered, 64 = usage error). The binary path is injected by CMake as
// CUTELOCK_CLI_PATH.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "benchgen/catalog.hpp"
#include "netlist/bench_io.hpp"

namespace {

namespace fs = std::filesystem;

std::string quoted(const fs::path& p) { return "\"" + p.string() + "\""; }

// Runs the CLI with stdout/stderr silenced; returns the process exit code.
int run_cli(const std::string& args) {
  const std::string cmd =
      std::string(CUTELOCK_CLI_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  EXPECT_NE(status, -1) << "failed to spawn: " << cmd;
  // A signal death must not masquerade as exit 0 ("defense held").
  EXPECT_TRUE(WIFEXITED(status)) << "abnormal termination: " << cmd;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

class CliSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cutelock_cli_smoke_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    s27_ = dir_ / "s27.bench";
    cl::netlist::write_bench_file(s27_.string(),
                                  cl::benchgen::make_circuit("s27").netlist);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  fs::path s27_;
};

TEST_F(CliSmoke, InfoSucceeds) {
  EXPECT_EQ(run_cli("info " + quoted(s27_)), 0);
}

TEST_F(CliSmoke, UsageErrorIs64) {
  EXPECT_EQ(run_cli("lock"), 64);
  EXPECT_EQ(run_cli("no-such-command x"), 64);
}

TEST_F(CliSmoke, MultiKeyDefenseHoldsExitZero) {
  const fs::path locked = dir_ / "s27_locked.bench";
  ASSERT_EQ(run_cli("lock " + quoted(s27_) + " -o " + quoted(locked) +
                    " --k 4 --ki 4 --seed 1"),
            0);
  ASSERT_TRUE(fs::exists(locked));
  // A true multi-key time-base lock defeats the static-key attack: exit 0.
  EXPECT_EQ(run_cli("attack " + quoted(locked) + " --oracle " + quoted(s27_) +
                    " --attack bmc --seconds 20"),
            0);
}

TEST_F(CliSmoke, SingleKeyReductionIsBrokenExitTwo) {
  const fs::path locked = dir_ / "s27_single.bench";
  ASSERT_EQ(run_cli("lock " + quoted(s27_) + " -o " + quoted(locked) +
                    " --k 2 --ki 4 --seed 1 --single-key"),
            0);
  // The single-key reduction (validation mode) must fall to the same
  // attack: exit 2 = key recovered.
  EXPECT_EQ(run_cli("attack " + quoted(locked) + " --oracle " + quoted(s27_) +
                    " --attack bmc --seconds 20"),
            2);
}

TEST_F(CliSmoke, OverheadReportSucceeds) {
  const fs::path locked = dir_ / "s27_locked.bench";
  ASSERT_EQ(run_cli("lock " + quoted(s27_) + " -o " + quoted(locked) +
                    " --k 4 --ki 4 --seed 1"),
            0);
  EXPECT_EQ(run_cli("overhead " + quoted(locked) + " --baseline " +
                    quoted(s27_)),
            0);
}

}  // namespace
