#include "lock/comb_locks.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/topo.hpp"

namespace cl::lock {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

class CombLockValidation
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {};

TEST_P(CombLockValidation, CorrectKeyTransparentWrongKeyCorrupts) {
  const auto [scheme, seed] = GetParam();
  const Netlist nl = s27();
  util::Rng rng(seed);
  LockResult lr{Netlist(""), {}, {}, ""};
  const std::string name(scheme);
  if (name == "xor") lr = xor_lock(nl, 5, rng);
  else if (name == "mux") lr = mux_lock(nl, 4, rng);
  else if (name == "sar") lr = sar_lock(nl, 4, rng);
  else if (name == "antisat") lr = anti_sat(nl, 6, rng);
  else if (name == "tt") lr = tt_lock(nl, 4, rng);
  else if (name == "sfll") lr = sfll_hd(nl, 4, 1, rng);
  else FAIL() << "unknown scheme";
  const std::string err = validate_lock(nl, lr, rng);
  EXPECT_EQ(err, "") << scheme << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CombLockValidation,
    ::testing::Values(std::make_tuple("xor", 1ULL), std::make_tuple("xor", 2ULL),
                      std::make_tuple("mux", 3ULL), std::make_tuple("mux", 4ULL),
                      std::make_tuple("sar", 5ULL), std::make_tuple("sar", 6ULL),
                      std::make_tuple("antisat", 7ULL),
                      std::make_tuple("antisat", 8ULL),
                      std::make_tuple("tt", 9ULL), std::make_tuple("tt", 10ULL),
                      std::make_tuple("sfll", 11ULL),
                      std::make_tuple("sfll", 12ULL)));

TEST(CombLocks, XorLockAddsRequestedKeyBits) {
  const Netlist nl = s27();
  util::Rng rng(42);
  const LockResult lr = xor_lock(nl, 5, rng);
  EXPECT_EQ(lr.locked.key_inputs().size(), 5u);
  EXPECT_EQ(lr.correct_key.size(), 5u);
  EXPECT_FALSE(lr.is_dynamic());
  // Key gates present: 5 extra XOR/XNOR gates.
  EXPECT_EQ(lr.locked.stats().gates, nl.stats().gates + 5);
}

TEST(CombLocks, XorLockRejectsOversizedKeys) {
  const Netlist nl = s27();
  util::Rng rng(1);
  EXPECT_THROW(xor_lock(nl, 1000, rng), std::invalid_argument);
}

TEST(CombLocks, MuxLockNeverCreatesCycles) {
  const Netlist nl = s27();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    util::Rng rng(seed);
    const LockResult lr = mux_lock(nl, 5, rng);
    EXPECT_NO_THROW(netlist::topo_order(lr.locked)) << "seed " << seed;
  }
}

TEST(CombLocks, SarLockFlipsExactlyOnePatternPerWrongKey) {
  // On a combinational circuit, a wrong key corrupts exactly the input
  // minterm equal to that key (the SARLock signature).
  const char* comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
y = AND(a, b, c)
)";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(9);
  const LockResult lr = sar_lock(nl, 3, rng);
  for (std::uint64_t wrong = 0; wrong < 8; ++wrong) {
    const sim::BitVec key = sim::u64_to_bits(wrong, 3);
    if (key == lr.correct_key) continue;
    int mismatches = 0;
    std::uint64_t mismatch_at = 99;
    for (std::uint64_t m = 0; m < 8; ++m) {
      const auto inp = sim::u64_to_bits(m, 3);
      const auto want = sim::run_sequence(nl, {inp});
      const auto got = sim::run_sequence(lr.locked, {inp}, {key});
      if (want != got) {
        ++mismatches;
        mismatch_at = m;
      }
    }
    EXPECT_EQ(mismatches, 1) << "key " << wrong;
    EXPECT_EQ(mismatch_at, wrong);
  }
}

TEST(CombLocks, AntiSatRequiresEvenKey) {
  const Netlist nl = s27();
  util::Rng rng(2);
  EXPECT_THROW(anti_sat(nl, 5, rng), std::invalid_argument);
}

TEST(CombLocks, AntiSatAnyEqualHalvesAreCorrect) {
  // The Anti-SAT property: any key with K1 == K2 unlocks.
  const char* comb = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(3);
  const LockResult lr = anti_sat(nl, 4, rng);
  for (std::uint64_t half = 0; half < 4; ++half) {
    sim::BitVec key = sim::u64_to_bits(half, 2);
    const sim::BitVec copy = key;
    key.insert(key.end(), copy.begin(), copy.end());
    for (std::uint64_t m = 0; m < 4; ++m) {
      const auto inp = sim::u64_to_bits(m, 2);
      EXPECT_EQ(sim::run_sequence(nl, {inp}),
                sim::run_sequence(lr.locked, {inp}, {key}))
          << "half " << half << " minterm " << m;
    }
  }
}

TEST(CombLocks, TtLockCorrectKeyIsProtectedPattern) {
  const char* comb = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(4);
  const LockResult lr = tt_lock(nl, 2, rng);
  // Wrong key corrupts exactly two minterms: the protected pattern and the
  // wrong-key pattern (classic TTLock signature).
  for (std::uint64_t wrong = 0; wrong < 4; ++wrong) {
    const sim::BitVec key = sim::u64_to_bits(wrong, 2);
    if (key == lr.correct_key) continue;
    int mismatches = 0;
    for (std::uint64_t m = 0; m < 4; ++m) {
      const auto inp = sim::u64_to_bits(m, 2);
      if (sim::run_sequence(nl, {inp}) !=
          sim::run_sequence(lr.locked, {inp}, {key})) {
        ++mismatches;
      }
    }
    EXPECT_EQ(mismatches, 2) << "key " << wrong;
  }
}

TEST(CombLocks, SfllHdRejectsBadDistance) {
  const Netlist nl = s27();
  util::Rng rng(5);
  EXPECT_THROW(sfll_hd(nl, 4, 5, rng), std::invalid_argument);
  EXPECT_THROW(sfll_hd(nl, 4, -1, rng), std::invalid_argument);
}

TEST(CombLocks, SfllHdZeroDegeneratesToPointFunction) {
  const char* comb = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n";
  const Netlist nl = netlist::read_bench_string(comb, "c");
  util::Rng rng(6);
  const LockResult lr = sfll_hd(nl, 2, 0, rng);
  util::Rng vrng(7);
  EXPECT_EQ(validate_lock(nl, lr, vrng), "");
}

}  // namespace
}  // namespace cl::lock
