#include "lock/cac_lock.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::lock {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

/// Does `key` make the locked circuit transparent over random stimuli?
bool transparent(const Netlist& original, const Netlist& locked,
                 const sim::BitVec& key, util::Rng& rng,
                 std::size_t sequences = 8, std::size_t cycles = 32) {
  for (std::size_t trial = 0; trial < sequences; ++trial) {
    const auto stim =
        sim::random_stimulus(rng, cycles, original.inputs().size());
    const auto want = sim::run_sequence(original, stim);
    const auto got = sim::run_sequence(locked, stim, {key});
    if (sim::first_divergence(want, got) != -1) return false;
  }
  return true;
}

class CacLockValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacLockValidation, CorrectKeyTransparentWrongKeyCorrupts) {
  const Netlist nl = s27();
  util::Rng rng(GetParam());
  const LockResult lr = cac_lock(nl, 4, 3, rng);
  EXPECT_EQ(lr.scheme, "cac_lock");
  EXPECT_EQ(validate_lock(nl, lr, rng), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacLockValidation,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

TEST(CacLock, PortShapeAndDecoyBookkeeping) {
  const Netlist nl = s27();
  util::Rng rng(7);
  const LockResult lr = cac_lock(nl, 4, 3, rng);
  EXPECT_EQ(lr.locked.key_inputs().size(), 7u);
  EXPECT_EQ(lr.correct_key.size(), 7u);
  EXPECT_FALSE(lr.is_dynamic());
  ASSERT_EQ(lr.decoy_key_bits.size(), 3u);
  for (std::size_t pos : lr.decoy_key_bits) EXPECT_LT(pos, 7u);
  // Positions are sorted and unique.
  for (std::size_t i = 1; i < lr.decoy_key_bits.size(); ++i) {
    EXPECT_LT(lr.decoy_key_bits[i - 1], lr.decoy_key_bits[i]);
  }
}

TEST(CacLock, EveryDecoyAssignmentIsAPassingKey) {
  const Netlist nl = s27();
  util::Rng rng(11);
  const LockResult lr = cac_lock(nl, 4, 3, rng);
  ASSERT_EQ(lr.decoy_key_bits.size(), 3u);
  for (std::uint64_t word = 0; word < 8; ++word) {
    sim::BitVec key = lr.correct_key;
    for (std::size_t b = 0; b < 3; ++b) {
      key[lr.decoy_key_bits[b]] = (word >> b) & 1;
    }
    EXPECT_TRUE(transparent(nl, lr.locked, key, rng))
        << "decoy word " << word << " should be accepted";
  }
}

TEST(CacLock, FlippingAnyRealBitCorrupts) {
  const Netlist nl = s27();
  util::Rng rng(13);
  const LockResult lr = cac_lock(nl, 4, 3, rng);
  std::vector<bool> is_decoy(lr.correct_key.size(), false);
  for (std::size_t pos : lr.decoy_key_bits) is_decoy[pos] = true;
  for (std::size_t pos = 0; pos < lr.correct_key.size(); ++pos) {
    if (is_decoy[pos]) continue;
    sim::BitVec key = lr.correct_key;
    key[pos] ^= 1;
    EXPECT_FALSE(transparent(nl, lr.locked, key, rng))
        << "real bit " << pos << " flip should corrupt";
  }
}

TEST(CacLock, RejectsDegenerateInputs) {
  const Netlist nl = s27();
  util::Rng rng(1);
  EXPECT_THROW(cac_lock(nl, 0, 2, rng), std::invalid_argument);
  Netlist empty("empty");
  EXPECT_THROW(cac_lock(empty, 4, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cl::lock
