#include "lock/latch_lock.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::lock {
namespace {

using netlist::Netlist;

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

Netlist s27() { return netlist::read_bench_string(k_s27, "s27"); }

bool transparent(const Netlist& original, const Netlist& locked,
                 const sim::BitVec& key, util::Rng& rng,
                 std::size_t sequences = 8, std::size_t cycles = 32) {
  for (std::size_t trial = 0; trial < sequences; ++trial) {
    const auto stim =
        sim::random_stimulus(rng, cycles, original.inputs().size());
    const auto want = sim::run_sequence(original, stim);
    const auto got = sim::run_sequence(locked, stim, {key});
    if (sim::first_divergence(want, got) != -1) return false;
  }
  return true;
}

class LatchLockValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatchLockValidation, CorrectKeyTransparentWrongKeyCorrupts) {
  const Netlist nl = s27();
  util::Rng rng(GetParam());
  const LockResult lr = latch_lock(nl, 3, 2, rng);
  EXPECT_EQ(lr.scheme, "latch_lock");
  EXPECT_EQ(validate_lock(nl, lr, rng), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatchLockValidation,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

TEST(LatchLock, AddsOneRegisterPerPair) {
  const Netlist nl = s27();
  util::Rng rng(5);
  const LockResult lr = latch_lock(nl, 3, 2, rng);
  // 3 real shadow registers + 2 decoy cells on top of the original 3 DFFs.
  EXPECT_EQ(lr.locked.dffs().size(), nl.dffs().size() + 5);
  EXPECT_EQ(lr.locked.key_inputs().size(), 5u);
  EXPECT_EQ(lr.correct_key.size(), 5u);
  EXPECT_EQ(lr.decoy_key_bits.size(), 2u);
}

TEST(LatchLock, EveryDecoyAssignmentIsAPassingKey) {
  const Netlist nl = s27();
  util::Rng rng(9);
  const LockResult lr = latch_lock(nl, 3, 2, rng);
  ASSERT_EQ(lr.decoy_key_bits.size(), 2u);
  for (std::uint64_t word = 0; word < 4; ++word) {
    sim::BitVec key = lr.correct_key;
    for (std::size_t b = 0; b < 2; ++b) {
      key[lr.decoy_key_bits[b]] = (word >> b) & 1;
    }
    EXPECT_TRUE(transparent(nl, lr.locked, key, rng))
        << "decoy word " << word << " should be accepted";
  }
}

TEST(LatchLock, FlippingAnyRealBitCorrupts) {
  const Netlist nl = s27();
  util::Rng rng(17);
  const LockResult lr = latch_lock(nl, 3, 2, rng);
  std::vector<bool> is_decoy(lr.correct_key.size(), false);
  for (std::size_t pos : lr.decoy_key_bits) is_decoy[pos] = true;
  for (std::size_t pos = 0; pos < lr.correct_key.size(); ++pos) {
    if (is_decoy[pos]) continue;
    sim::BitVec key = lr.correct_key;
    key[pos] ^= 1;
    EXPECT_FALSE(transparent(nl, lr.locked, key, rng))
        << "real bit " << pos << " flip should retime and corrupt";
  }
}

TEST(LatchLock, RejectsDegenerateInputs) {
  util::Rng rng(1);
  Netlist empty("empty");
  EXPECT_THROW(latch_lock(empty, 2, 1, rng), std::invalid_argument);
  const Netlist nl = s27();
  EXPECT_THROW(latch_lock(nl, 0, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cl::lock
