#include "lock/kgate_lock.hpp"

#include <gtest/gtest.h>

#include "attack/dana.hpp"
#include "benchgen/catalog.hpp"
#include "benchgen/s27.hpp"

namespace cl::lock {
namespace {

TEST(KGateLock, Validates) {
  const auto s27 = benchgen::make_s27();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const LockResult lr = kgate_lock(s27, 6, 3, rng);
    EXPECT_EQ(lr.locked.key_inputs().size(), 6u);
    util::Rng vrng(seed + 50);
    EXPECT_EQ(validate_lock(s27, lr, vrng), "") << "seed " << seed;
  }
}

TEST(KGateLock, IsFullyCombinationalAddition) {
  // K-Gate adds no state holders (the property the paper contrasts with).
  const auto s27 = benchgen::make_s27();
  util::Rng rng(4);
  const LockResult lr = kgate_lock(s27, 4, 2, rng);
  EXPECT_EQ(lr.locked.dffs().size(), s27.dffs().size());
}

TEST(KGateLock, CosetKeysAlsoUnlock) {
  // The multi-key property: keys in the correct XOR-coset of each lattice
  // are also functional. Flipping two key bits tapped by the same lattice
  // preserves k_a XOR k_b. With a single encoded input and 2 key bits, the
  // complement of the correct key must also work.
  const auto s27 = benchgen::make_s27();
  util::Rng rng(5);
  const LockResult lr = kgate_lock(s27, 2, 1, rng);
  sim::BitVec flipped = lr.correct_key;
  flipped[0] ^= 1;
  flipped[1] ^= 1;
  util::Rng srng(6);
  const auto stim = sim::random_stimulus(srng, 32, s27.inputs().size());
  EXPECT_EQ(sim::run_sequence(s27, stim),
            sim::run_sequence(lr.locked, stim, {flipped}));
}

TEST(KGateLock, NoDataflowBenefit) {
  // The paper's point about combinational multi-key schemes: register
  // clustering is untouched, so DANA scores exactly as on the original.
  const benchgen::SyntheticCircuit circuit = benchgen::make_circuit("b04");
  util::Rng rng(7);
  const LockResult lr = kgate_lock(circuit.netlist, 8, 4, rng);
  const auto orig = attack::dana_attack(circuit.netlist);
  const auto locked = attack::dana_attack(lr.locked);
  EXPECT_DOUBLE_EQ(attack::nmi_score(circuit.netlist, orig, circuit.groups),
                   attack::nmi_score(lr.locked, locked, circuit.groups));
}

TEST(KGateLock, ParameterValidation) {
  const auto s27 = benchgen::make_s27();
  util::Rng rng(1);
  EXPECT_THROW(kgate_lock(s27, 0, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace cl::lock
