#include "lock/seq_locks.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"

namespace cl::lock {
namespace {

using netlist::Netlist;

const char* k_counter = R"(
INPUT(en)
OUTPUT(hit)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
carry = AND(q0, en)
d1 = XOR(q1, carry)
hit = AND(q0, q1)
)";

Netlist counter() { return netlist::read_bench_string(k_counter, "cnt"); }

TEST(SeqLocks, HarpoonValidates) {
  const Netlist nl = counter();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const LockResult lr = harpoon(nl, 4, 3, rng);
    EXPECT_EQ(lr.startup_cycles, 3u);
    EXPECT_FALSE(lr.periodic_schedule);
    EXPECT_EQ(lr.key_schedule.size(), 3u);
    util::Rng vrng(seed + 100);
    EXPECT_EQ(validate_lock(nl, lr, vrng), "") << "seed " << seed;
  }
}

TEST(SeqLocks, HarpoonOutputsCorruptedBeforeUnlock) {
  const Netlist nl = counter();
  util::Rng rng(7);
  const LockResult lr = harpoon(nl, 4, 2, rng);
  // With an all-zero (wrong) static key the device stays obfuscated; outputs
  // must differ from the original's on some cycle.
  util::Rng srng(8);
  const auto stim = sim::random_stimulus(srng, 16, nl.inputs().size());
  const auto want = sim::run_sequence(nl, stim);
  sim::BitVec wrong(4, 0);
  if (wrong == lr.key_schedule[0]) wrong[0] = 1;
  const auto got = sim::run_sequence(lr.locked, stim, {wrong});
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(SeqLocks, HarpoonPartialUnlockStaysLocked) {
  const Netlist nl = counter();
  util::Rng rng(11);
  const LockResult lr = harpoon(nl, 4, 3, rng);
  // Apply only the first unlock word, then garbage.
  std::vector<sim::BitVec> keys(16, sim::BitVec(4, 0));
  keys[0] = lr.key_schedule[0];
  util::Rng srng(12);
  const auto stim = sim::random_stimulus(srng, 16, nl.inputs().size());
  const auto want = sim::run_sequence(nl, stim);
  const auto got = sim::run_sequence(lr.locked, stim, keys);
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(SeqLocks, DkLockValidates) {
  const Netlist nl = counter();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const LockResult lr = dk_lock(nl, 4, 2, 3, rng);
    EXPECT_EQ(lr.startup_cycles, 2u);
    EXPECT_EQ(lr.key_schedule.size(), 3u);  // 2 activation + 1 functional
    util::Rng vrng(seed + 200);
    EXPECT_EQ(validate_lock(nl, lr, vrng), "") << "seed " << seed;
  }
}

TEST(SeqLocks, DkLockNeedsFunctionalKeyAfterActivation) {
  const Netlist nl = counter();
  util::Rng rng(21);
  const LockResult lr = dk_lock(nl, 4, 2, 3, rng);
  // Activate correctly but then hold a wrong functional key.
  sim::BitVec bad_f = lr.key_schedule.back();
  bad_f[0] ^= 1;
  std::vector<sim::BitVec> keys;
  keys.push_back(lr.key_schedule[0]);
  keys.push_back(lr.key_schedule[1]);
  for (int t = 0; t < 14; ++t) keys.push_back(bad_f);
  util::Rng srng(22);
  auto stim = sim::random_stimulus(srng, 14, nl.inputs().size());
  std::vector<sim::BitVec> padded(2, sim::BitVec(nl.inputs().size(), 0));
  padded.insert(padded.end(), stim.begin(), stim.end());
  const auto want = sim::run_sequence(nl, stim);
  const auto got_full = sim::run_sequence(lr.locked, padded, keys);
  const std::vector<sim::BitVec> got(got_full.begin() + 2, got_full.end());
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(SeqLocks, SledValidates) {
  const Netlist nl = counter();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    const LockResult lr = sled(nl, 4, 3, rng);
    EXPECT_FALSE(lr.is_dynamic());  // the *seed* is static
    EXPECT_EQ(lr.correct_key.size(), 4u);
    util::Rng vrng(seed + 300);
    EXPECT_EQ(validate_lock(nl, lr, vrng), "") << "seed " << seed;
  }
}

TEST(SeqLocks, SledWrongSeedCorruptsEventually) {
  const Netlist nl = counter();
  util::Rng rng(31);
  const LockResult lr = sled(nl, 4, 3, rng);
  sim::BitVec wrong = lr.correct_key;
  wrong[1] ^= 1;
  util::Rng srng(32);
  const auto stim = sim::random_stimulus(srng, 24, nl.inputs().size());
  const auto want = sim::run_sequence(nl, stim);
  const auto got = sim::run_sequence(lr.locked, stim, {wrong});
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(SeqLocks, ParameterValidation) {
  const Netlist nl = counter();
  util::Rng rng(1);
  EXPECT_THROW(harpoon(nl, 4, 0, rng), std::invalid_argument);
  EXPECT_THROW(dk_lock(nl, 4, 0, 2, rng), std::invalid_argument);
  EXPECT_THROW(sled(nl, 1, 2, rng), std::invalid_argument);
}

TEST(SeqLocks, AperiodicScheduleClamping) {
  const Netlist nl = counter();
  util::Rng rng(41);
  const LockResult lr = dk_lock(nl, 4, 2, 2, rng);
  const auto keys = lr.keys_for(6);
  ASSERT_EQ(keys.size(), 6u);
  EXPECT_EQ(keys[0], lr.key_schedule[0]);
  EXPECT_EQ(keys[1], lr.key_schedule[1]);
  for (std::size_t t = 2; t < 6; ++t) EXPECT_EQ(keys[t], lr.key_schedule[2]);
}

}  // namespace
}  // namespace cl::lock
