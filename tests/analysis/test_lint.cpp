#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "lock/comb_locks.hpp"
#include "lock/latch_lock.hpp"
#include "netlist/bench_io.hpp"
#include "util/rng.hpp"

namespace cl::analysis {
namespace {

using netlist::Netlist;

bool has_code(const LintReport& rep, const std::string& code) {
  return std::any_of(rep.diagnostics.begin(), rep.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const char* k_clean = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t = AND(a, b)
y = NOT(t)
)";

TEST(Lint, CleanCircuitPasses) {
  const Netlist nl = netlist::read_bench_string(k_clean, "clean");
  const LintReport rep = lint(nl);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.diagnostics.size(), 0u);
}

TEST(Lint, NoOutputsIsAnError) {
  Netlist nl("noout");
  const auto a = nl.add_input("a");
  nl.add_not(a, "n");
  const LintReport rep = lint(nl);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_code(rep, "no-outputs"));
}

TEST(Lint, UnwiredDffSurfacesAsSelfLoopWarning) {
  // add_dff(k_no_signal) wires D to the DFF's own Q (the IR never leaves a
  // floating D pin), so a forgotten set_dff_input shows up as self-loop-dff.
  Netlist nl("float");
  const auto a = nl.add_input("a");
  nl.add_dff(netlist::k_no_signal, netlist::DffInit::Zero, "q");
  nl.add_output(a);
  const LintReport rep = lint(nl);
  EXPECT_TRUE(has_code(rep, "self-loop-dff"));
}

TEST(Lint, SelfLoopDffIsAWarning) {
  Netlist nl("loopff");
  const auto a = nl.add_input("a");
  const auto q = nl.add_dff(netlist::k_no_signal, netlist::DffInit::Zero, "q");
  nl.set_dff_input(q, q);
  nl.add_output(a);
  nl.add_output(q);
  const LintReport rep = lint(nl);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(has_code(rep, "self-loop-dff"));
}

TEST(Lint, CombinationalLoopIsAnError) {
  Netlist nl("loop");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto g = nl.add_and(a, b, "g");
  const auto h = nl.add_or(g, a, "h");
  nl.replace_fanin(g, b, h);  // g <- h <- g
  nl.add_output(h);
  const LintReport rep = lint(nl);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_code(rep, "comb-loop"));
}

TEST(Lint, DeadLogicAndUnusedInputsWarn) {
  const char* text = R"(
INPUT(a)
INPUT(unused)
OUTPUT(y)
dead = AND(a, a)
y = NOT(a)
)";
  const Netlist nl = netlist::read_bench_string(text, "warns");
  const LintReport rep = lint(nl);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(has_code(rep, "dead-logic"));
  EXPECT_TRUE(has_code(rep, "unused-input"));
  EXPECT_EQ(rep.warnings(), rep.diagnostics.size());
}

TEST(Lint, DuplicateGatesWarn) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = AND(a, b)
g2 = AND(b, a)
y = OR(g1, g2)
)";
  const Netlist nl = netlist::read_bench_string(text, "dup");
  const LintReport rep = lint(nl);
  EXPECT_TRUE(has_code(rep, "duplicate-gates"));
}

TEST(Lint, ConstantOutputWarns) {
  Netlist nl("constout");
  nl.add_input("a");
  const auto c = nl.add_const(true, "c1");
  nl.add_output(c);
  const LintReport rep = lint(nl);
  EXPECT_TRUE(has_code(rep, "constant-output"));
  EXPECT_TRUE(has_code(rep, "unused-input"));
}

TEST(Lint, AttackInputsAcceptAProperPair) {
  const Netlist nl = netlist::read_bench_string(k_clean, "ref");
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  const LintReport rep = lint_attack_inputs(lr.locked, nl);
  EXPECT_TRUE(rep.ok()) << format_diagnostics(rep);
}

TEST(Lint, AttackInputsRejectKeylessLocked) {
  const Netlist nl = netlist::read_bench_string(k_clean, "ref");
  const LintReport rep = lint_attack_inputs(nl, nl);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_code(rep, "no-key-inputs"));
}

TEST(Lint, AttackInputsRejectKeyedOracle) {
  const Netlist nl = netlist::read_bench_string(k_clean, "ref");
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  const LintReport rep = lint_attack_inputs(lr.locked, lr.locked);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_code(rep, "keyed-oracle"));
}

TEST(Lint, AttackInputsRejectInterfaceMismatch) {
  const Netlist nl = netlist::read_bench_string(k_clean, "ref");
  const char* other = R"(
INPUT(p)
OUTPUT(q)
q = NOT(p)
)";
  const Netlist small = netlist::read_bench_string(other, "small");
  util::Rng rng(1);
  const auto lr = lock::xor_lock(nl, 2, rng);
  const LintReport rep = lint_attack_inputs(lr.locked, small);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(has_code(rep, "interface-mismatch"));
}

TEST(Lint, SubmissionDiagnosticsNameTheSide) {
  Netlist locked("locked");
  const auto a = locked.add_input("a");
  locked.add_key_input("keyinput0");
  locked.add_dff(netlist::k_no_signal, netlist::DffInit::Zero, "q");
  locked.add_output(a);
  const Netlist oracle = netlist::read_bench_string(k_clean, "oracle");
  const LintReport rep = lint_attack_inputs(locked, oracle);
  EXPECT_FALSE(rep.ok());
  const std::string text = format_diagnostics(rep);
  EXPECT_NE(text.find("locked/q"), std::string::npos) << text;
}

TEST(Lint, FormatDiagnosticsRendersCodes) {
  Netlist nl("noout");
  nl.add_input("a");
  const std::string text = format_diagnostics(lint(nl));
  EXPECT_NE(text.find("error[no-outputs]"), std::string::npos) << text;
}

const char* k_seq = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(t)
t = AND(a, b)
u = OR(t, q)
y = NOT(u)
)";

TEST(Lint, LatchLockDecoysAreInfoNotDeadLogic) {
  // Regression: latch-based locking plants decoy cones (key input -> MUX ->
  // self-refreshing DFF, never observable). These used to count as
  // dead-logic; they must surface as the info-level latch-only-key finding
  // instead, and must never gate an attack (errors stay 0).
  const Netlist nl = netlist::read_bench_string(k_seq, "seq");
  util::Rng rng(3);
  const auto lr = lock::latch_lock(nl, 2, 2, rng);
  const LintReport rep = lint(lr.locked);
  EXPECT_TRUE(rep.ok()) << format_diagnostics(rep);
  EXPECT_FALSE(has_code(rep, "dead-logic")) << format_diagnostics(rep);
  EXPECT_TRUE(has_code(rep, "latch-only-key"));
  EXPECT_EQ(rep.infos(), lr.decoy_key_bits.size());
  for (const Diagnostic& d : rep.diagnostics) {
    if (d.code == "latch-only-key") {
      EXPECT_EQ(d.severity, Severity::Info);
    }
  }
  EXPECT_NE(format_diagnostics(rep).find("info[latch-only-key]"),
            std::string::npos)
      << format_diagnostics(rep);
}

TEST(Lint, DeadKeyConeWithoutStateIsStillDeadLogic) {
  // The carve-out is specific: a dead key cone with no sequential element is
  // ordinary dead logic, not a latch decoy.
  Netlist nl("deadkey");
  const auto a = nl.add_input("a");
  const auto k = nl.add_key_input("keyinput0");
  nl.add_and(a, k, "deadgate");
  nl.add_output(nl.add_not(a, "y"));
  const LintReport rep = lint(nl);
  EXPECT_TRUE(has_code(rep, "dead-logic"));
  EXPECT_FALSE(has_code(rep, "latch-only-key"));
}

TEST(Lint, WarningsExcludeInfos) {
  const Netlist nl = netlist::read_bench_string(k_seq, "seq");
  util::Rng rng(5);
  const auto lr = lock::latch_lock(nl, 2, 1, rng);
  const LintReport rep = lint(lr.locked);
  EXPECT_EQ(rep.errors() + rep.warnings() + rep.infos(),
            rep.diagnostics.size());
  EXPECT_GE(rep.infos(), 1u);
}

}  // namespace
}  // namespace cl::analysis
