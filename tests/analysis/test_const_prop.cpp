#include "analysis/const_prop.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"

namespace cl::analysis {
namespace {

using netlist::Netlist;
using sim::Trit;

const char* k_chain = R"(
INPUT(a)
INPUT(b)
INPUT(k)
OUTPUT(y)
g1 = AND(a, k)
g2 = AND(g1, b)
g3 = OR(g2, a)
y = BUF(g3)
)";

TEST(ConstProp, NothingPinnedNothingDetermined) {
  const Netlist nl = netlist::read_bench_string(k_chain, "c");
  const ConstPropResult r = const_prop(nl);
  EXPECT_EQ(r.determined, 0u);
  EXPECT_EQ(r.determined_outputs, 0u);
  for (netlist::SignalId s : nl.inputs()) EXPECT_EQ(r.values[s], Trit::X);
}

TEST(ConstProp, ZeroPinCollapsesAndChain) {
  const Netlist nl = netlist::read_bench_string(k_chain, "c");
  const auto names = netlist::name_map(nl);
  // k=0 kills g1 and g2; g3 = OR(0, a) forwards a, still X.
  const ConstPropResult r = const_prop(nl, {{names.at("k"), Trit::Zero}});
  EXPECT_EQ(r.values[names.at("g1")], Trit::Zero);
  EXPECT_EQ(r.values[names.at("g2")], Trit::Zero);
  EXPECT_EQ(r.values[names.at("g3")], Trit::X);
  EXPECT_EQ(r.determined, 2u);
  EXPECT_EQ(r.determined_outputs, 0u);
}

TEST(ConstProp, OnePinDeterminesNothingHere) {
  const Netlist nl = netlist::read_bench_string(k_chain, "c");
  const auto names = netlist::name_map(nl);
  const ConstPropResult r = const_prop(nl, {{names.at("k"), Trit::One}});
  EXPECT_EQ(r.determined, 0u);
}

TEST(ConstProp, ConstantsAndDominatedGates) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
one = CONST1()
t = OR(a, one)
y = AND(t, one)
)";
  const Netlist nl = netlist::read_bench_string(text, "c");
  const auto names = netlist::name_map(nl);
  const ConstPropResult r = const_prop(nl);
  EXPECT_EQ(r.values[names.at("t")], Trit::One);
  EXPECT_EQ(r.values[names.at("y")], Trit::One);
  EXPECT_EQ(r.determined, 2u);
  EXPECT_EQ(r.determined_outputs, 1u);
}

TEST(ConstProp, MuxSelectPinForwardsBranch) {
  const char* text = R"(
INPUT(a)
INPUT(s)
OUTPUT(y)
zero = CONST0()
y = MUX(s, zero, a)
)";
  const Netlist nl = netlist::read_bench_string(text, "c");
  const auto names = netlist::name_map(nl);
  // sel=0 forwards the first data pin (the constant); sel=1 forwards a (X).
  EXPECT_EQ(const_prop(nl, {{names.at("s"), Trit::Zero}}).values[names.at("y")],
            Trit::Zero);
  EXPECT_EQ(const_prop(nl, {{names.at("s"), Trit::One}}).values[names.at("y")],
            Trit::X);
}

TEST(ConstProp, PinningAnInternalGateCutsItsCone) {
  const Netlist nl = netlist::read_bench_string(k_chain, "c");
  const auto names = netlist::name_map(nl);
  const ConstPropResult r = const_prop(nl, {{names.at("g3"), Trit::One}});
  EXPECT_EQ(r.values[names.at("g3")], Trit::One);
  EXPECT_EQ(r.values[names.at("y")], Trit::One);
  EXPECT_EQ(r.determined_outputs, 1u);
  // Upstream of the pin stays X: the pin overrides, not propagates backward.
  EXPECT_EQ(r.values[names.at("g1")], Trit::X);
}

TEST(ConstProp, DffQsStayUnknown) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(a)
y = AND(q, a)
)";
  const Netlist nl = netlist::read_bench_string(text, "c");
  const auto names = netlist::name_map(nl);
  const ConstPropResult r = const_prop(nl);
  EXPECT_EQ(r.values[names.at("q")], Trit::X);
  EXPECT_EQ(r.determined, 0u);
}

TEST(ConstProp, PinProfileIsAsymmetricForAndKeys) {
  const Netlist nl = netlist::read_bench_string(k_chain, "c");
  const auto names = netlist::name_map(nl);
  const PinProfile p = pin_profile(nl, names.at("k"));
  EXPECT_EQ(p.baseline, 0u);
  EXPECT_EQ(p.zero, 2u);  // the AND chain collapses
  EXPECT_EQ(p.one, 0u);   // AND with 1 forwards, nothing determined
}

}  // namespace
}  // namespace cl::analysis
