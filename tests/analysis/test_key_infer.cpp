#include "analysis/key_infer.hpp"

#include <gtest/gtest.h>

#include "core/cute_lock_str.hpp"
#include "lock/cac_lock.hpp"
#include "lock/comb_locks.hpp"
#include "lock/latch_lock.hpp"
#include "netlist/bench_io.hpp"
#include "util/rng.hpp"

namespace cl::analysis {
namespace {

using netlist::Netlist;

const char* k_comb = R"(
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
t1 = AND(a, b)
t2 = OR(c, d)
y = XOR(t1, t2)
)";

const char* k_s27 = R"(
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

struct Tally {
  std::size_t bits = 0;
  std::size_t decided = 0;
  std::size_t correct = 0;
  std::size_t wrong = 0;
};

void tally(const KeyHintReport& rep, const sim::BitVec& correct_key,
           Tally& t) {
  ASSERT_EQ(rep.bits.size(), correct_key.size());
  for (std::size_t i = 0; i < rep.bits.size(); ++i) {
    ++t.bits;
    const BitVerdict v = rep.bits[i].verdict;
    if (v == BitVerdict::Unknown) continue;
    ++t.decided;
    const bool value = v == BitVerdict::One;
    if (value == (correct_key[i] != 0)) ++t.correct;
    else ++t.wrong;
  }
}

TEST(KeyInfer, RoleClassificationGolden) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(keyinput0)
INPUT(keyinput1)
INPUT(keyinput2)
OUTPUT(y)
OUTPUT(z)
OUTPUT(w)
t = AND(a, b)
kg = XNOR(t, keyinput0)
y = BUF(kg)
z = MUX(keyinput1, a, b)
u1 = AND(keyinput2, a)
u2 = OR(keyinput2, b)
w = AND(u1, u2)
)";
  const Netlist nl = netlist::read_bench_string(text, "roles");
  ASSERT_EQ(nl.key_inputs().size(), 3u);
  InferOptions opt;
  opt.profile_unateness = false;
  const KeyHintReport rep = infer_key_hints(nl, opt);
  EXPECT_EQ(rep.bits[0].role, KeyRole::XorGate);
  EXPECT_EQ(rep.bits[1].role, KeyRole::MuxSelect);
  EXPECT_EQ(rep.bits[2].role, KeyRole::Complex);
  EXPECT_EQ(rep.bits[2].verdict, BitVerdict::Unknown);
  EXPECT_EQ(rep.bits[2].confidence, 0.0);
}

// The satellite regression: >= 90% of XOR/MUX comb-lock bits decided and
// decided bits NEVER wrong, across seeds.
TEST(KeyInfer, XorLockBitsRecovered) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  Tally t;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::xor_lock(nl, 3, rng);
    const KeyHintReport rep = infer_key_hints(lr.locked);
    tally(rep, lr.correct_key, t);
  }
  EXPECT_EQ(t.wrong, 0u);
  EXPECT_GE(t.correct * 10, t.bits * 9) << t.correct << "/" << t.bits;
}

TEST(KeyInfer, MuxLockBitsRecovered) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  Tally t;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::mux_lock(nl, 4, rng);
    const KeyHintReport rep = infer_key_hints(lr.locked);
    tally(rep, lr.correct_key, t);
  }
  EXPECT_EQ(t.wrong, 0u);
  EXPECT_GE(t.correct * 10, t.bits * 9) << t.correct << "/" << t.bits;
}

// Cute-Lock-Str's key bits feed per-slot comparators (many readers), so the
// pass must refuse to vote — unknown, never wrong.
TEST(KeyInfer, CuteLockStrStaysUnknown) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    core::StrOptions opt;
    opt.num_keys = 4;
    opt.key_bits = 2;
    opt.locked_ffs = 2;
    opt.seed = seed;
    const auto lr = core::cute_lock_str(nl, opt);
    const KeyHintReport rep = infer_key_hints(lr.locked);
    EXPECT_EQ(rep.decided(), 0u) << "seed " << seed << ": "
                                 << rep.verdict_string();
    for (const BitHint& h : rep.bits) {
      EXPECT_EQ(h.role, KeyRole::Complex) << "seed " << seed;
      EXPECT_EQ(h.verdict, BitVerdict::Unknown) << "seed " << seed;
    }
  }
}

// CAC 2.0's whole point (Aksoy et al.) is structural-analysis resistance:
// every key bit — correction or decoy — is tapped by the obfuscation block's
// comparators, so no bit has the single-reader XOR/MUX shape SCOPE votes on.
// The pass must stay honest: unknown on every bit, never a confident wrong
// hint about an obfuscated or decoy position.
TEST(KeyInfer, CacLockBitsStayUnknown) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::cac_lock(nl, 4, 4, rng);
    const KeyHintReport rep = infer_key_hints(lr.locked);
    EXPECT_EQ(rep.decided(), 0u) << "seed " << seed << ": "
                                 << rep.verdict_string();
    for (const BitHint& h : rep.bits) {
      EXPECT_EQ(h.role, KeyRole::Complex) << "seed " << seed;
      EXPECT_EQ(h.verdict, BitVerdict::Unknown) << "seed " << seed;
    }
  }
}

// Latch-based locking routes every key bit through a Buf/Not polarity stage
// before its MUX select (real pairs) or decoy cell, so the reader shape is
// opaque too — same honesty requirement as CAC 2.0 above.
TEST(KeyInfer, LatchLockBitsStayUnknown) {
  const Netlist nl = netlist::read_bench_string(k_s27, "s27");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    util::Rng rng(seed);
    const auto lr = lock::latch_lock(nl, 3, 2, rng);
    const KeyHintReport rep = infer_key_hints(lr.locked);
    EXPECT_EQ(rep.decided(), 0u) << "seed " << seed << ": "
                                 << rep.verdict_string();
    for (const BitHint& h : rep.bits) {
      EXPECT_EQ(h.verdict, BitVerdict::Unknown) << "seed " << seed;
    }
  }
}

TEST(KeyInfer, UnatenessGolden) {
  const char* text = R"(
INPUT(a)
INPUT(keyinput0)
INPUT(keyinput1)
INPUT(keyinput2)
OUTPUT(y)
OUTPUT(z)
kg = XOR(a, keyinput0)
y = BUF(kg)
z = AND(a, keyinput1)
dead = AND(keyinput2, a)
)";
  const Netlist nl = netlist::read_bench_string(text, "un");
  const KeyHintReport rep = infer_key_hints(nl);
  EXPECT_EQ(rep.bits[0].unate, Unateness::Binate);      // XOR flips both ways
  EXPECT_EQ(rep.bits[1].unate, Unateness::Positive);    // AND only raises z
  EXPECT_EQ(rep.bits[2].unate, Unateness::Insensitive); // cone never observed
}

TEST(KeyInfer, DecidedBitsRespectConfidenceFloor) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(7);
  const auto lr = lock::xor_lock(nl, 3, rng);
  const KeyHintReport rep = infer_key_hints(lr.locked);
  for (const auto& [bit, value] : rep.decided_bits(0.75)) {
    EXPECT_GE(rep.bits[bit].confidence, 0.75);
    EXPECT_NE(rep.bits[bit].verdict, BitVerdict::Unknown);
    (void)value;
  }
  // Filtering at an impossible confidence returns nothing.
  EXPECT_TRUE(rep.decided_bits(1.1).empty());
}

TEST(KeyInfer, BudgetExhaustionLeavesBitsUnknown) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(3);
  const auto lr = lock::xor_lock(nl, 3, rng);
  InferOptions opt;
  opt.time_limit_s = 1e-12;
  const KeyHintReport rep = infer_key_hints(lr.locked, opt);
  EXPECT_TRUE(rep.budget_exhausted);
  EXPECT_EQ(rep.decided(), 0u);
  EXPECT_NE(rep.summary().find("budget exhausted"), std::string::npos);
}

TEST(KeyInfer, ReportSummaryShape) {
  const Netlist nl = netlist::read_bench_string(k_comb, "c");
  util::Rng rng(5);
  const auto lr = lock::xor_lock(nl, 2, rng);
  const KeyHintReport rep = infer_key_hints(lr.locked);
  EXPECT_EQ(rep.key_bits, 2u);
  EXPECT_EQ(rep.verdict_string().size(), 2u);
  EXPECT_NE(rep.summary().find("bits decided"), std::string::npos);
}

}  // namespace
}  // namespace cl::analysis
