#include "cnf/unroller.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

namespace cl::cnf {
namespace {

using netlist::Netlist;
using sat::Lit;
using sat::Result;
using sat::Solver;

// 2-bit counter; output = (count == 3).
const char* k_counter = R"(
INPUT(en)
OUTPUT(hit)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = XOR(q0, en)
carry = AND(q0, en)
d1 = XOR(q1, carry)
hit = AND(q0, q1)
)";

TEST(Unroller, UnrolledOutputsMatchSequentialSim) {
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  util::Rng rng(42);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t depth = 1 + rng.next_below(6);
    const auto stim = sim::random_stimulus(rng, depth, nl.inputs().size());
    const auto expected = sim::run_sequence(nl, stim);

    Solver solver;
    Unroller unroller(solver, nl);
    unroller.extend_to(depth);
    std::vector<Lit> assumptions;
    for (std::size_t t = 0; t < depth; ++t) {
      for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
        assumptions.push_back(Lit(unroller.input_vars(t)[i], stim[t][i] == 0));
      }
    }
    ASSERT_EQ(solver.solve(assumptions), Result::Sat);
    for (std::size_t t = 0; t < depth; ++t) {
      const auto out_vars = unroller.output_vars(t);
      for (std::size_t o = 0; o < out_vars.size(); ++o) {
        EXPECT_EQ(solver.model_value(out_vars[o]), expected[t][o] != 0)
            << "trial " << trial << " frame " << t;
      }
    }
  }
}

TEST(Unroller, ReachabilityQuery) {
  // Can the counter reach hit==1 within d frames? Needs >= 4 frames of
  // en=1 from reset; at depth 3 it must be unreachable, at 4 reachable.
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  {
    Solver solver;
    Unroller u(solver, nl);
    u.extend_to(3);
    std::vector<Lit> assume{Lit(u.output_vars(2)[0], false)};  // hit@2 == 1
    EXPECT_EQ(solver.solve(assume), Result::Unsat);
  }
  {
    Solver solver;
    Unroller u(solver, nl);
    u.extend_to(4);
    std::vector<Lit> assume{Lit(u.output_vars(3)[0], false)};  // hit@3 == 1
    ASSERT_EQ(solver.solve(assume), Result::Sat);
    // The model must drive en=1 in the first 3 frames (the increments).
    for (std::size_t t = 0; t < 3; ++t) {
      EXPECT_TRUE(solver.model_value(u.input_vars(t)[0])) << "frame " << t;
    }
  }
}

TEST(Unroller, StaticKeysSharedAcrossFrames) {
  const char* locked = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
q = DFF(d)
d = XOR(a, keyinput0)
y = BUF(q)
)";
  const Netlist nl = netlist::read_bench_string(locked, "lk");
  Solver solver;
  Unroller u(solver, nl, KeyMode::Static);
  u.extend_to(2);
  EXPECT_EQ(u.key_vars(0), u.key_vars(1));
  // Force key=1 and a=0 at both frames: y@1 = d@0 = 1, y@2(d@1)=1.
  std::vector<Lit> assume{Lit(u.key_vars()[0], false),
                          Lit(u.input_vars(0)[0], true),
                          Lit(u.input_vars(1)[0], true)};
  ASSERT_EQ(solver.solve(assume), Result::Sat);
  EXPECT_FALSE(solver.model_value(u.output_vars(0)[0]));  // q init 0
  EXPECT_TRUE(solver.model_value(u.output_vars(1)[0]));
}

TEST(Unroller, PerFrameKeysAreIndependent) {
  const char* locked = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)";
  const Netlist nl = netlist::read_bench_string(locked, "lk2");
  Solver solver;
  Unroller u(solver, nl, KeyMode::PerFrame);
  u.extend_to(2);
  EXPECT_NE(u.key_vars(0), u.key_vars(1));
  // key@0=0, key@1=1, a=1 both frames: y@0=1, y@1=0.
  std::vector<Lit> assume{
      Lit(u.key_vars(0)[0], true), Lit(u.key_vars(1)[0], false),
      Lit(u.input_vars(0)[0], false), Lit(u.input_vars(1)[0], false)};
  ASSERT_EQ(solver.solve(assume), Result::Sat);
  EXPECT_TRUE(solver.model_value(u.output_vars(0)[0]));
  EXPECT_FALSE(solver.model_value(u.output_vars(1)[0]));
}

TEST(Unroller, SymbolicInitialStateIsFree) {
  // With symbolic init, hit@0 == 1 becomes satisfiable (state 11 chosen).
  const Netlist nl = netlist::read_bench_string(k_counter, "cnt");
  Solver solver;
  Unroller u(solver, nl, KeyMode::Static, /*symbolic_initial_state=*/true);
  u.extend_to(1);
  std::vector<Lit> assume{Lit(u.output_vars(0)[0], false)};
  ASSERT_EQ(solver.solve(assume), Result::Sat);
  EXPECT_TRUE(solver.model_value(u.initial_state_vars()[0]));
  EXPECT_TRUE(solver.model_value(u.initial_state_vars()[1]));
}

TEST(Unroller, DffInitOneRespected) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(a)  # init q 1
y = BUF(q)
)";
  const Netlist nl = netlist::read_bench_string(text, "i1");
  Solver solver;
  Unroller u(solver, nl);
  u.extend_to(1);
  std::vector<Lit> assume{Lit(u.output_vars(0)[0], true)};  // y@0 == 0
  EXPECT_EQ(solver.solve(assume), Result::Unsat);
}

}  // namespace
}  // namespace cl::cnf
