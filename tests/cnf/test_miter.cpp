#include "cnf/miter.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "util/rng.hpp"

namespace cl::cnf {
namespace {

using netlist::Netlist;
using sat::Lit;
using sat::Result;
using sat::Solver;

// Single-key XOR-locked toggler: correct key = 1 (XNOR cancels).
const char* k_locked = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
q = DFF(d)
t = XOR(q, a)
d = XNOR(t, keyinput0)
y = BUF(q)
)";

TEST(SequentialMiter, FindsDiscriminatingSequence) {
  const Netlist nl = netlist::read_bench_string(k_locked, "lk");
  Solver solver;
  SequentialMiter miter(solver, nl);
  miter.extend_to(2);
  ASSERT_EQ(solver.solve({miter.diff_within(2)}), Result::Sat);
  const auto ka = miter.extract_key_a();
  const auto kb = miter.extract_key_b();
  EXPECT_NE(ka, kb);  // a discriminating pair must use different keys
  const auto dis = miter.extract_inputs(2);
  // Replaying the DIS with the two keys must actually produce different
  // outputs (sanity of the construction).
  const auto out_a = sim::run_sequence(nl, dis, {ka});
  const auto out_b = sim::run_sequence(nl, dis, {kb});
  EXPECT_NE(sim::first_divergence(out_a, out_b), -1);
}

TEST(SequentialMiter, NoDifferenceAtDepthZeroOutput) {
  // At depth 1 output y = q(init 0) regardless of key: miter UNSAT.
  const Netlist nl = netlist::read_bench_string(k_locked, "lk");
  Solver solver;
  SequentialMiter miter(solver, nl);
  miter.extend_to(1);
  EXPECT_EQ(solver.solve({miter.diff_within(1)}), Result::Unsat);
}

TEST(SequentialMiter, DiffWithinRequiresUnrolledDepth) {
  const Netlist nl = netlist::read_bench_string(k_locked, "lk");
  Solver solver;
  SequentialMiter miter(solver, nl);
  miter.extend_to(1);
  EXPECT_THROW(miter.diff_within(2), std::out_of_range);
  EXPECT_THROW(miter.diff_within(0), std::out_of_range);
}

TEST(SequentialMiter, OracleConstraintsEliminateWrongKey) {
  const Netlist locked = netlist::read_bench_string(k_locked, "lk");
  // Oracle: the same circuit with the correct key (1) hard-wired.
  util::Rng rng(31);
  const auto stim = sim::random_stimulus(rng, 4, locked.inputs().size());
  const auto oracle_out = sim::run_sequence(locked, stim, {sim::BitVec{1}});

  Solver solver;
  SequentialMiter miter(solver, locked);
  miter.extend_to(2);
  constrain_key_on_sequence(solver, locked, miter.keys_a(), stim, oracle_out);
  constrain_key_on_sequence(solver, locked, miter.keys_b(), stim, oracle_out);
  // After feeding the oracle response, both keys must equal 1, so no
  // discriminating sequence remains.
  EXPECT_EQ(solver.solve({miter.diff_within(2)}), Result::Unsat);
  // And the consistency formula alone pins the key to 1.
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.model_value(miter.keys_a()[0]));
  EXPECT_TRUE(solver.model_value(miter.keys_b()[0]));
}

TEST(Miter, ConstrainKeyLengthMismatchRejected) {
  const Netlist locked = netlist::read_bench_string(k_locked, "lk");
  Solver solver;
  SequentialMiter miter(solver, locked);
  EXPECT_THROW(constrain_key_on_sequence(solver, locked, miter.keys_a(),
                                         {sim::BitVec{1}}, {}),
               std::invalid_argument);
}

TEST(Miter, ExtractBitsReadsModel) {
  Solver solver;
  const auto v1 = solver.new_var();
  const auto v2 = solver.new_var();
  solver.add_unit(sat::pos(v1));
  solver.add_unit(sat::neg(v2));
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_EQ(extract_bits(solver, {v1, v2}), (sim::BitVec{1, 0}));
}

}  // namespace
}  // namespace cl::cnf
