#include "cnf/encoder.hpp"

#include <gtest/gtest.h>

#include "netlist/bench_io.hpp"
#include "sim/bit_sim.hpp"
#include "util/rng.hpp"

namespace cl::cnf {
namespace {

using netlist::Netlist;
using netlist::SignalId;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

/// Property: for random input assignments, constraining the frame inputs to
/// those constants forces every signal variable to the simulator's value.
void check_encoding_matches_sim(const Netlist& nl, std::uint64_t seed) {
  util::Rng rng(seed);
  Solver solver;
  const FrameVars frame = encode_frame(solver, nl);
  sim::BitSim sim(nl);

  for (int trial = 0; trial < 16; ++trial) {
    std::vector<Lit> assumptions;
    for (SignalId i : nl.inputs()) {
      const bool v = rng.chance(1, 2);
      sim.set(i, v ? ~0ULL : 0ULL);
      assumptions.push_back(Lit(frame.var[i], !v));
    }
    for (SignalId k : nl.key_inputs()) {
      const bool v = rng.chance(1, 2);
      sim.set(k, v ? ~0ULL : 0ULL);
      assumptions.push_back(Lit(frame.var[k], !v));
    }
    // DFF outputs are frame sources too; drive them explicitly.
    // (BitSim reset state is 0 for these circuits.)
    for (SignalId d : nl.dffs()) {
      assumptions.push_back(Lit(frame.var[d], true));  // q = 0
    }
    sim.eval();
    ASSERT_EQ(solver.solve(assumptions), Result::Sat);
    for (SignalId s = 0; s < nl.size(); ++s) {
      if (frame.var[s] < 0) continue;
      const bool sim_val = sim.get(s) & 1ULL;
      EXPECT_EQ(solver.model_value(frame.var[s]), sim_val)
          << nl.signal_name(s) << " trial " << trial;
    }
  }
}

TEST(Encoder, AllGateTypesMatchSimulation) {
  const char* text = R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n1 = NOT(a)
n2 = AND(a, b, c)
n3 = NAND(a, b)
n4 = OR(n1, n2)
n5 = NOR(b, c)
n6 = XOR(a, b, c)
n7 = XNOR(n3, n4)
n8 = MUX(a, n5, n6)
n9 = BUF(n7)
y = AND(n8, n9)
)";
  check_encoding_matches_sim(netlist::read_bench_string(text, "gates"), 11);
}

TEST(Encoder, SequentialFrameExposesStateSources) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(q, a)
y = NOT(q)
)";
  check_encoding_matches_sim(netlist::read_bench_string(text, "seq"), 13);
}

TEST(Encoder, ConstantsForced) {
  Netlist nl("c");
  const SignalId one = nl.add_const(true, "one");
  const SignalId zero = nl.add_const(false, "zero");
  const SignalId y = nl.add_and(one, zero, "y");
  nl.add_output(y);
  Solver solver;
  const FrameVars frame = encode_frame(solver, nl);
  ASSERT_EQ(solver.solve(), Result::Sat);
  EXPECT_TRUE(solver.model_value(frame.var[one]));
  EXPECT_FALSE(solver.model_value(frame.var[zero]));
  EXPECT_FALSE(solver.model_value(frame.var[y]));
}

TEST(Encoder, SharedSourceVarsTieFramesTogether) {
  // Two frames with the same key var: forcing the key in frame A fixes the
  // corresponding signal in frame B.
  const char* text = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
y = XOR(a, keyinput0)
)";
  const Netlist nl = netlist::read_bench_string(text, "k");
  Solver solver;
  const Var key = solver.new_var();
  FrameSources src_a;
  src_a.keys = {key};
  FrameSources src_b;
  src_b.keys = {key};
  const FrameVars fa = encode_frame(solver, nl, src_a);
  const FrameVars fb = encode_frame(solver, nl, src_b);
  const SignalId y = nl.find("y");
  const SignalId a = nl.find("a");
  // a_A=0, y_A=1 => key=1 ; then a_B=1 must give y_B=0.
  std::vector<Lit> assumptions{
      Lit(fa.var[a], true), Lit(fa.var[y], false), Lit(fb.var[a], false)};
  ASSERT_EQ(solver.solve(assumptions), Result::Sat);
  EXPECT_TRUE(solver.model_value(key));
  EXPECT_FALSE(solver.model_value(fb.var[y]));
}

TEST(Encoder, SourceArityMismatchRejected) {
  const Netlist nl = netlist::read_bench_string("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  Solver solver;
  FrameSources src;
  src.inputs = {solver.new_var(), solver.new_var()};  // too many
  EXPECT_THROW(encode_frame(solver, nl, src), std::invalid_argument);
}

}  // namespace
}  // namespace cl::cnf
