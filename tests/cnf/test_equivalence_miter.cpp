#include <gtest/gtest.h>

#include "cnf/miter.hpp"
#include "netlist/bench_io.hpp"

namespace cl::cnf {
namespace {

using netlist::Netlist;
using sat::Lit;
using sat::Result;
using sat::Solver;

const char* k_ref = R"(
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = XOR(q, a)
y = BUF(q)
)";

// Same circuit with an XNOR key gate on the D path; key=1 is correct.
const char* k_locked = R"(
INPUT(a)
INPUT(keyinput0)
OUTPUT(y)
q = DFF(d)
t = XOR(q, a)
d = XNOR(t, keyinput0)
y = BUF(q)
)";

TEST(EquivalenceMiter, CorrectKeyIsUnsatAtEveryDepth) {
  const Netlist locked = netlist::read_bench_string(k_locked, "l");
  const Netlist ref = netlist::read_bench_string(k_ref, "r");
  Solver solver;
  EquivalenceMiter miter(solver, locked, ref);
  solver.add_unit(sat::pos(miter.keys_a()[0]));  // key = 1
  for (std::size_t depth = 1; depth <= 8; ++depth) {
    miter.extend_to(depth);
    EXPECT_EQ(solver.solve({miter.diff_within(depth)}), Result::Unsat)
        << "depth " << depth;
  }
}

TEST(EquivalenceMiter, WrongKeyYieldsCounterexample) {
  const Netlist locked = netlist::read_bench_string(k_locked, "l");
  const Netlist ref = netlist::read_bench_string(k_ref, "r");
  Solver solver;
  EquivalenceMiter miter(solver, locked, ref);
  solver.add_unit(sat::neg(miter.keys_a()[0]));  // key = 0 (wrong)
  miter.extend_to(4);
  ASSERT_EQ(solver.solve({miter.diff_within(4)}), Result::Sat);
  const auto ce = miter.extract_inputs(4);
  ASSERT_EQ(ce.size(), 4u);
  // Replay: the counterexample must genuinely distinguish.
  const auto want = sim::run_sequence(ref, ce);
  const auto got = sim::run_sequence(locked, ce, {sim::BitVec{0}});
  EXPECT_NE(sim::first_divergence(want, got), -1);
}

TEST(EquivalenceMiter, InterfaceMismatchRejected) {
  const Netlist locked = netlist::read_bench_string(k_locked, "l");
  const Netlist two_in = netlist::read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  Solver solver;
  EXPECT_THROW(EquivalenceMiter(solver, locked, two_in), std::invalid_argument);
}

TEST(EquivalenceMiter, KeyedReferenceRejected) {
  const Netlist locked = netlist::read_bench_string(k_locked, "l");
  Solver solver;
  EXPECT_THROW(EquivalenceMiter(solver, locked, locked), std::invalid_argument);
}

TEST(EquivalenceMiter, DiffWithinBoundsChecked) {
  const Netlist locked = netlist::read_bench_string(k_locked, "l");
  const Netlist ref = netlist::read_bench_string(k_ref, "r");
  Solver solver;
  EquivalenceMiter miter(solver, locked, ref);
  miter.extend_to(2);
  EXPECT_THROW(miter.diff_within(3), std::out_of_range);
  EXPECT_THROW(miter.diff_within(0), std::out_of_range);
}

}  // namespace
}  // namespace cl::cnf
