// Dataflow clustering: run the DANA register-clustering attack on a
// word-structured circuit before and after Cute-Lock-Str, and show how the
// lock blends the register dependency structure (the Table V effect).
//
//   $ ./dataflow_clustering
#include <cstdio>

#include "attack/dana.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"

int main() {
  using namespace cl;

  const benchgen::SyntheticCircuit bench = benchgen::make_circuit("b12");
  const netlist::Netlist& original = bench.netlist;
  std::printf("b12: %zu FFs in %zu ground-truth register groups\n\n",
              original.dffs().size(), bench.groups.size());

  const attack::DanaResult before = attack::dana_attack(original);
  std::printf("DANA on the original: %zu clusters, NMI = %.3f\n",
              before.clusters.size(),
              attack::nmi_score(original, before, bench.groups));

  core::StrOptions opt;
  opt.num_keys = 4;
  opt.key_bits = 4;
  opt.locked_ffs = 6;
  opt.seed = 12;
  const auto locked = core::cute_lock_str(original, opt);
  const attack::DanaResult after = attack::dana_attack(locked.locked);
  std::printf("DANA on the locked:   %zu clusters, NMI = %.3f\n\n",
              after.clusters.size(),
              attack::nmi_score(locked.locked, after, bench.groups));

  std::printf("first clusters found on the locked netlist:\n");
  std::size_t shown = 0;
  for (const auto& cluster : after.clusters) {
    if (shown++ == 8) break;
    std::printf("  {");
    for (std::size_t i = 0; i < cluster.size() && i < 8; ++i) {
      std::printf("%s%s", i ? ", " : "",
                  locked.locked.signal_name(cluster[i]).c_str());
    }
    if (cluster.size() > 8) std::printf(", ...");
    std::printf("}\n");
  }
  return 0;
}
