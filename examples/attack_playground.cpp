// Attack playground: the same circuit locked two ways — a classic
// single-key XOR lock and Cute-Lock-Str — attacked with the oracle-guided
// sequential suite. The XOR lock falls; the multi-key lock drives every
// attack to a dead end (CNS / wrong key / budget).
//
//   $ ./attack_playground
#include <cstdio>

#include "attack/bbo.hpp"
#include "attack/seq_attack.hpp"
#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "lock/comb_locks.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace cl;

  const benchgen::SyntheticCircuit bench = benchgen::make_circuit("b03");
  const netlist::Netlist& original = bench.netlist;
  std::printf("circuit b03: %zu FFs, %zu gates\n\n",
              original.dffs().size(), original.stats().gates);

  util::Rng rng(11);
  const lock::LockResult weak = lock::xor_lock(original, 4, rng);
  core::StrOptions str_options;
  str_options.num_keys = 4;
  str_options.key_bits = 4;
  str_options.locked_ffs = 2;
  str_options.seed = 11;
  const lock::LockResult strong = core::cute_lock_str(original, str_options);

  attack::SequentialOracle oracle(original);
  attack::AttackBudget budget;
  budget.time_limit_s = 20.0;
  budget.max_iterations = 400;

  util::Table table({"lock", "attack", "outcome", "iterations", "time"});
  const auto run = [&](const char* lock_name, const lock::LockResult& lr) {
    struct Entry {
      const char* name;
      attack::AttackResult result;
    };
    const Entry entries[] = {
        {"BMC (int)", attack::bmc_attack(lr.locked, oracle, budget)},
        {"KC2", attack::kc2_attack(lr.locked, oracle, budget)},
        {"RANE", attack::rane_attack(lr.locked, oracle, budget)},
        {"BBO", attack::bbo_attack(lr.locked, oracle,
                                   attack::BboOptions{budget, 8, 32, 22, 1})},
    };
    for (const Entry& e : entries) {
      table.add_row({lock_name, e.name, attack::outcome_label(e.result.outcome),
                     std::to_string(e.result.iterations),
                     util::format_duration(e.result.seconds)});
    }
  };
  run("xor_lock (single key)", weak);
  run("cute_lock_str (multi-key)", strong);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("legend: Equal = key recovered; CNS = proved no static key "
              "exists; x..x = wrong key; N/A = budget exhausted\n");
  return 0;
}
