// Behavioral flow: lock the paper's 1001-sequence-detector FSM with
// Cute-Lock-Beh, print the locked RTL (what the paper feeds to Vivado),
// synthesize a gate-level implementation, and validate both.
//
//   $ ./lock_fsm_beh
#include <cstdio>

#include "core/cute_lock_beh.hpp"
#include "fsm/kiss_io.hpp"
#include "lock/lock_result.hpp"

int main() {
  using namespace cl;

  // 1. The paper's running example (Fig. 1).
  const fsm::Stg detector = fsm::make_1001_detector();
  std::printf("original STG (KISS2):\n%s\n",
              fsm::write_kiss_string(detector).c_str());

  // 2. Lock behaviorally: 4 keys of 4 bits on a 2-bit counter, exactly the
  //    Fig. 1 configuration.
  core::BehOptions options;
  options.num_keys = 4;
  options.key_bits = 4;
  options.seed = 7;
  const core::BehLock lock(detector, options);
  std::printf("key schedule: ");
  for (std::size_t t = 0; t < lock.num_keys(); ++t) {
    std::printf("K[%zu]=%llu ", t,
                static_cast<unsigned long long>(lock.keys()[t]));
  }
  std::printf("\nwrongful redirects (state, t) -> state:\n");
  for (int s = 0; s < detector.num_states(); ++s) {
    std::printf("  %s:", detector.state_name(s).c_str());
    for (std::size_t t = 0; t < lock.num_keys(); ++t) {
      std::printf(" t%zu->%s", t,
                  detector.state_name(lock.wrongful_target(s, t)).c_str());
    }
    std::printf("\n");
  }

  // 3. The locked RTL.
  std::printf("\nlocked behavioral Verilog:\n%s\n",
              lock.behavioral_verilog("detector_cutelock").c_str());

  // 4. Gate-level synthesis + validation against the original netlist.
  const auto original =
      fsm::synthesize(detector, fsm::SynthStyle::TwoLevelMinimized, "detector");
  const auto locked =
      lock.synthesize(fsm::SynthStyle::TwoLevelMinimized, "detector_locked");
  util::Rng rng(99);
  const std::string verdict = lock::validate_lock(original, locked, rng);
  std::printf("gate-level validation: %s\n",
              verdict.empty() ? "PASS (correct schedule transparent, wrong keys corrupt)"
                              : verdict.c_str());
  std::printf("original: %zu gates; locked: %zu gates, %zu FFs\n",
              original.stats().gates, locked.locked.stats().gates,
              locked.locked.dffs().size());
  return 0;
}
