// Quickstart: lock the ISCAS'89 s27 circuit with Cute-Lock-Str, show that
// the correct per-cycle key schedule is transparent while a static key
// corrupts, and emit the locked netlist in .bench format.
//
//   $ ./quickstart
#include <cstdio>

#include "benchgen/s27.hpp"
#include "core/cute_lock_str.hpp"
#include "netlist/bench_io.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"

int main() {
  using namespace cl;

  // 1. The victim circuit.
  const netlist::Netlist s27 = benchgen::make_s27();
  std::printf("s27: %zu inputs, %zu outputs, %zu FFs, %zu gates\n",
              s27.inputs().size(), s27.outputs().size(), s27.dffs().size(),
              s27.stats().gates);

  // 2. Lock it: k = 4 time-base keys of ki = 2 bits (the paper's Table II
  //    configuration, keys 1, 3, 2, 0).
  core::StrOptions options;
  options.num_keys = 4;
  options.key_bits = 2;
  options.locked_ffs = 1;
  options.explicit_keys = {1, 3, 2, 0};
  const lock::LockResult locked = core::cute_lock_str(s27, options);
  std::printf("locked: +%zu gates, +%zu FFs (counter), %zu-bit key port\n",
              locked.locked.stats().gates - s27.stats().gates,
              locked.locked.dffs().size() - s27.dffs().size(),
              locked.locked.key_inputs().size());
  std::printf("key schedule (cycle t expects K[t %% 4]): ");
  for (const auto& kv : locked.key_schedule) {
    std::printf("%llu ", static_cast<unsigned long long>(sim::bits_to_u64(kv)));
  }
  std::printf("\n\n");

  // 3. Simulate: correct schedule replays the original; a static key does
  //    not.
  util::Rng rng(2025);
  const auto stimulus = sim::random_stimulus(rng, 24, s27.inputs().size());
  const auto want = sim::run_sequence(s27, stimulus);
  const auto with_schedule = locked.run_with_correct_key(stimulus);
  std::printf("correct schedule: %s\n",
              sim::first_divergence(want, with_schedule) == -1
                  ? "outputs identical to the original (unlocked)"
                  : "MISMATCH (bug!)");
  const auto with_static = sim::run_sequence(locked.locked, stimulus,
                                             {locked.key_schedule[0]});
  const int diverge = sim::first_divergence(want, with_static);
  std::printf("static key K[0]:  %s (first divergence at cycle %d)\n\n",
              diverge == -1 ? "accidentally matched this stimulus"
                            : "outputs corrupted",
              diverge);

  // 4. Export for external tools.
  std::printf("locked netlist (.bench):\n%s\n",
              netlist::write_bench_string(locked.locked).c_str());
  return 0;
}
