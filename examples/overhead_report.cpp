// Overhead report: synthesize (map + activity-estimate) a circuit before
// and after Cute-Lock-Str and print the Genus-style comparison the paper's
// Fig. 4 is built from.
//
//   $ ./overhead_report
#include <cstdio>

#include "benchgen/catalog.hpp"
#include "core/cute_lock_str.hpp"
#include "tech/overhead.hpp"
#include "util/table.hpp"

int main() {
  using namespace cl;

  const benchgen::SyntheticCircuit bench = benchgen::make_circuit("b10");
  const netlist::Netlist& original = bench.netlist;

  util::Table table({"design", "power(uW)", "area(um2)", "cells", "IOs",
                     "dPower%", "dArea%", "dCells%"});
  const tech::OverheadReport base = tech::analyze_overhead(original);
  const auto add = [&](const char* name, const tech::OverheadReport& r) {
    char power[32], area[32], dp[16], da[16], dc[16];
    std::snprintf(power, sizeof power, "%.1f", r.power_w * 1e6);
    std::snprintf(area, sizeof area, "%.1f", r.area_um2);
    std::snprintf(dp, sizeof dp, "%+.1f", r.power_overhead_pct(base));
    std::snprintf(da, sizeof da, "%+.1f", r.area_overhead_pct(base));
    std::snprintf(dc, sizeof dc, "%+.1f", r.cells_overhead_pct(base));
    table.add_row({name, power, area, std::to_string(r.cells),
                   std::to_string(r.ios), dp, da, dc});
  };
  add("b10 (original)", base);

  for (const auto& [label, k, ki] :
       {std::tuple<const char*, std::size_t, std::size_t>{"cute-lock k=2", 2, 11},
        {"cute-lock k=4 ki=3", 4, 3},
        {"cute-lock k=16 ki=5", 16, 5}}) {
    core::StrOptions opt;
    opt.num_keys = k;
    opt.key_bits = ki;
    opt.locked_ffs = 2;
    opt.seed = 3;
    const auto locked = core::cute_lock_str(original, opt);
    add(label, tech::analyze_overhead(locked.locked));
  }
  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
