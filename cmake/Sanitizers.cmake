# ASan + UBSan toggle, applied globally so the static library and every
# binary linked against it agree on the runtime.
if(CUTELOCK_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
