# Sanitizer toggles, applied globally so the static library and every
# binary linked against it agree on the runtime. ASan and TSan cannot be
# combined in one build.
if(CUTELOCK_SANITIZE AND CUTELOCK_TSAN)
  message(FATAL_ERROR "CUTELOCK_SANITIZE and CUTELOCK_TSAN are mutually exclusive")
endif()
if(CUTELOCK_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
if(CUTELOCK_TSAN)
  add_compile_options(-fsanitize=thread -fno-omit-frame-pointer)
  add_link_options(-fsanitize=thread)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # GCC warns (-Wtsan) that TSan does not instrument std::atomic_thread_fence
    # (the clause exchange's seqlock publish/collect fences). The warning is
    # real but not actionable here — the fences are correct, TSan just models
    # them conservatively — so keep it visible without failing the build.
    add_compile_options(-Wno-error=tsan)
  endif()
endif()
