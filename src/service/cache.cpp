#include "service/cache.hpp"

#include <stdexcept>
#include <utility>

#include "attack/observation_bank.hpp"
#include "netlist/bench_io.hpp"
#include "util/fnv.hpp"

namespace cl::service {

const attack::SequentialOracle& CachedCircuit::oracle() const {
  std::lock_guard<std::mutex> lock(oracle_mu_);
  if (oracle_ == nullptr) {
    oracle_ = std::make_unique<attack::SequentialOracle>(netlist_);
  }
  return *oracle_;
}

std::shared_ptr<const CachedCircuit> CircuitCache::get_or_parse(
    const std::string& bench_text, const std::string& name, bool* hit,
    std::string* error) {
  const std::uint64_t text_key = util::fnv1a(bench_text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto t = text_to_structure_.find(text_key);
    if (t != text_to_structure_.end()) {
      const auto s = by_structure_.find(t->second);
      if (s != by_structure_.end()) {
        ++hits_;
        if (hit != nullptr) *hit = true;
        return s->second;
      }
    }
  }
  netlist::Netlist nl;
  try {
    nl = netlist::read_bench_string(bench_text, name);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return nullptr;
  }
  const std::uint64_t structural_key = attack::lock_instance_key(nl);
  std::lock_guard<std::mutex> lock(mu_);
  text_to_structure_[text_key] = structural_key;
  const auto it = by_structure_.find(structural_key);
  if (it != by_structure_.end()) {
    ++hits_;
    if (hit != nullptr) *hit = true;
    return it->second;
  }
  ++misses_;
  if (hit != nullptr) *hit = false;
  return insert_locked(structural_key,
                       std::make_shared<const CachedCircuit>(std::move(nl)));
}

std::shared_ptr<const CachedCircuit> CircuitCache::get_or_add(
    netlist::Netlist&& nl, bool* hit) {
  const std::uint64_t structural_key = attack::lock_instance_key(nl);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_structure_.find(structural_key);
  if (it != by_structure_.end()) {
    ++hits_;
    if (hit != nullptr) *hit = true;
    return it->second;
  }
  ++misses_;
  if (hit != nullptr) *hit = false;
  return insert_locked(structural_key,
                       std::make_shared<const CachedCircuit>(std::move(nl)));
}

std::shared_ptr<const CachedCircuit> CircuitCache::insert_locked(
    std::uint64_t structural_key, std::shared_ptr<const CachedCircuit> entry) {
  by_structure_[structural_key] = entry;
  insertion_order_.push_back(structural_key);
  while (insertion_order_.size() > k_max_entries) {
    by_structure_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
  return entry;
}

std::size_t CircuitCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_structure_.size();
}

std::uint64_t CircuitCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t CircuitCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace cl::service
