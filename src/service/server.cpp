#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "analysis/key_infer.hpp"
#include "analysis/lint.hpp"
#include "attack/accept.hpp"
#include "attack/observation_bank.hpp"
#include "attack/periodic_attack.hpp"
#include "attack/sat_attack.hpp"
#include "attack/scope.hpp"
#include "attack/seq_attack.hpp"
#include "attack/verify.hpp"
#include "core/cute_lock_str.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/transform.hpp"
#include "sim/sequence.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace cl::service {
namespace {

Json error_reply(const std::string& message) {
  Json reply = Json::object();
  reply.set("ok", Json::boolean(false));
  reply.set("error", Json::string(message));
  return reply;
}

bool read_text_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool bits_from_string(const std::string& text, sim::BitVec* out) {
  out->clear();
  out->reserve(text.size());
  for (char c : text) {
    if (c != '0' && c != '1') return false;
    out->push_back(c == '1' ? 1 : 0);
  }
  return true;
}

Json schedule_to_json(const std::vector<sim::BitVec>& schedule) {
  Json arr = Json::array();
  for (const auto& kv : schedule) arr.push_back(Json::string(sim::bits_to_string(kv)));
  return arr;
}

Json diagnostics_to_json(const analysis::LintReport& report) {
  Json arr = Json::array();
  for (const analysis::Diagnostic& d : report.diagnostics) {
    Json item = Json::object();
    item.set("severity",
             Json::string(d.severity == analysis::Severity::Error
                              ? "error"
                              : (d.severity == analysis::Severity::Warning
                                     ? "warning"
                                     : "info")));
    item.set("code", Json::string(d.code));
    if (!d.signal.empty()) item.set("signal", Json::string(d.signal));
    item.set("message", Json::string(d.message));
    arr.push_back(std::move(item));
  }
  return arr;
}

/// Write the whole buffer; MSG_NOSIGNAL so a client that hung up mid-reply
/// costs us an EPIPE, not a SIGPIPE.
bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.obs_bank_path.empty()) {
    options_.obs_bank_path = util::obs_bank_path_from_env();
  }
}

Server::~Server() { stop(); }

const char* Server::state_label(Job::State s) {
  switch (s) {
    case Job::State::Queued: return "queued";
    case Job::State::Running: return "running";
    case Job::State::Done: return "done";
    case Job::State::Cancelled: return "cancelled";
    case Job::State::Error: return "error";
  }
  return "?";
}

bool Server::bind_listener(std::string* error) {
  if (!options_.unix_socket.empty()) {
    sockaddr_un addr{};
    if (options_.unix_socket.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "socket path too long: " + options_.unix_socket;
      return false;
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unix_socket.c_str(),
                options_.unix_socket.size() + 1);
    // A leftover socket file from a dead daemon would make bind fail forever.
    ::unlink(options_.unix_socket.c_str());
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      if (error != nullptr) {
        *error = "bind " + options_.unix_socket + ": " + std::strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) < 0) {
      if (error != nullptr) {
        *error = "bind 127.0.0.1:" + std::to_string(options_.tcp_port) + ": " +
                 std::strerror(errno);
      }
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (::listen(listen_fd_, 16) < 0) {
    if (error != nullptr) *error = std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

bool Server::start(std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_ || stopping_) {
      if (error != nullptr) *error = "server already started (one start per instance)";
      return false;
    }
  }
  if (!bind_listener(error)) return false;
  if (options_.use_observation_bank) {
    attack::set_observation_bank_forced(true);
  }
  if (!options_.obs_bank_path.empty()) {
    // A missing file is a cold start, not an error; a corrupt file is
    // rejected loudly but must not keep the daemon from serving.
    std::ifstream probe(options_.obs_bank_path, std::ios::binary);
    if (probe) {
      probe.close();
      std::string load_error;
      if (!attack::load_observation_banks(options_.obs_bank_path, &load_error)) {
        std::fprintf(stderr,
                     "cutelock serve: warning: ignoring observation-bank file: "
                     "%s\n",
                     load_error.c_str());
      }
    }
  }
  pool_ = std::make_unique<util::ThreadPool>(
      options_.workers == 0 ? util::jobs_from_env() : options_.workers);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
  }
  accept_thread_ = std::thread(&Server::accept_loop, this);
  return true;
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_ || stopping_) return;
    stopping_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    for (auto& [id, job] : jobs_) {
      job->cancel.store(true, std::memory_order_relaxed);
    }
  }
  // Unblock accept() and stop taking connections.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain the pool: running jobs see their cancel flag through the solver
  // interrupt and unwind with Timeout; queued jobs run, observe the flag
  // immediately, and go terminal as Cancelled. Every job reaching a terminal
  // state notifies job_cv_, so connection threads blocked in `wait` answer
  // their clients before we cut the sockets.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : connection_threads_) {
    if (t.joinable()) t.join();
  }
  connection_threads_.clear();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!options_.obs_bank_path.empty()) {
    std::string save_error;
    if (!attack::save_observation_banks(options_.obs_bank_path, &save_error)) {
      std::fprintf(stderr,
                   "cutelock serve: warning: could not save observation banks: "
                   "%s\n",
                   save_error.c_str());
    }
  }
  // The socket file disappears last: scripts that poll for it to vanish may
  // immediately start a successor daemon, which must find the bank on disk.
  if (!options_.unix_socket.empty()) ::unlink(options_.unix_socket.c_str());
  if (options_.use_observation_bank) {
    attack::set_observation_bank_forced(false);
  }
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void Server::serve_forever() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
  }
  stop();
}

bool Server::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && !stopping_;
}

int Server::port() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bound_port_;
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down by stop()
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(&Server::handle_connection, this, fd);
  }
}

void Server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while (open && (eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      Json request;
      std::string parse_error;
      Json response;
      bool defer_shutdown = false;
      if (!Json::parse(line, &request, &parse_error)) {
        response = error_reply("bad request: " + parse_error);
      } else if (!request.is_object()) {
        response = error_reply("bad request: expected a JSON object");
      } else {
        response = handle_request(request, &defer_shutdown);
      }
      if (!send_all(fd, response.dump() + "\n")) open = false;
      // Only signal once the client has its acknowledgement: stop() tears
      // down this very connection.
      if (defer_shutdown) request_shutdown();
    }
  }
  // The thread owns the close; stop() only ever shutdown()s a still-listed
  // fd, so marking the slot under the lock keeps the two from racing.
  std::lock_guard<std::mutex> lock(mu_);
  for (int& slot : connection_fds_) {
    if (slot == fd) {
      ::close(fd);
      slot = -1;
      break;
    }
  }
}

void Server::request_shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

Json Server::handle_request(const Json& request) {
  bool defer_shutdown = false;
  Json response = handle_request(request, &defer_shutdown);
  if (defer_shutdown) request_shutdown();
  return response;
}

Json Server::handle_request(const Json& request, bool* defer_shutdown) {
  const std::string op = request.str_or("op", "");
  if (op == "ping") {
    Json reply = Json::object();
    reply.set("ok", Json::boolean(true));
    reply.set("op", Json::string("ping"));
    return reply;
  }
  if (op == "submit") return submit_job(request);
  if (op == "status" || op == "wait") {
    const std::uint64_t id = request.u64_or("id", 0);
    if (id == 0) return error_reply(op + ": missing job \"id\"");
    return job_status(id, op == "wait");
  }
  if (op == "cancel") {
    const std::uint64_t id = request.u64_or("id", 0);
    if (id == 0) return error_reply("cancel: missing job \"id\"");
    return cancel_job(id);
  }
  if (op == "stats") return stats();
  if (op == "shutdown") {
    *defer_shutdown = true;
    Json reply = Json::object();
    reply.set("ok", Json::boolean(true));
    reply.set("op", Json::string("shutdown"));
    return reply;
  }
  return error_reply("unknown op \"" + op +
                     "\" (want ping/submit/status/wait/cancel/stats/shutdown)");
}

Json Server::submit_job(const Json& request) {
  const std::string kind = request.str_or("job", "attack");
  if (kind != "attack" && kind != "verify" && kind != "lock" &&
      kind != "analyze") {
    return error_reply("unknown job kind \"" + kind +
                       "\" (want attack/verify/lock/analyze)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!started_ || stopping_) return error_reply("server is shutting down");
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->kind = kind;
  job->request = request;
  Job* raw = job.get();
  jobs_[id] = std::move(job);
  // Submitting under mu_ is what makes shutdown sound: stop() flips
  // stopping_ under the same lock before draining the pool, so no task can
  // slip into a pool that is being destroyed.
  pool_->submit([this, raw] { run_job(*raw); });
  Json reply = Json::object();
  reply.set("ok", Json::boolean(true));
  reply.set("id", Json::number(id));
  reply.set("status", Json::string(state_label(Job::State::Queued)));
  return reply;
}

Json Server::job_status(std::uint64_t id, bool wait) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return error_reply("no such job id " + std::to_string(id));
  }
  Job& job = *it->second;
  if (wait) {
    job_cv_.wait(lock, [&] {
      return job.state != Job::State::Queued && job.state != Job::State::Running;
    });
  }
  Json reply = Json::object();
  reply.set("ok", Json::boolean(true));
  reply.set("id", Json::number(id));
  reply.set("status", Json::string(state_label(job.state)));
  if (job.state == Job::State::Done) reply.set("result", job.result);
  if (job.state == Job::State::Error) reply.set("error", Json::string(job.error));
  return reply;
}

Json Server::cancel_job(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return error_reply("no such job id " + std::to_string(id));
  }
  Job& job = *it->second;
  const bool terminal = job.state == Job::State::Done ||
                        job.state == Job::State::Cancelled ||
                        job.state == Job::State::Error;
  if (!terminal) job.cancel.store(true, std::memory_order_relaxed);
  Json reply = Json::object();
  reply.set("ok", Json::boolean(true));
  reply.set("id", Json::number(id));
  reply.set("status", Json::string(state_label(job.state)));
  reply.set("cancelled", Json::boolean(!terminal));
  return reply;
}

Json Server::stats() const {
  Json jobs = Json::object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t queued = 0, running = 0, done = 0, cancelled = 0, errors = 0;
    for (const auto& [id, job] : jobs_) {
      switch (job->state) {
        case Job::State::Queued: ++queued; break;
        case Job::State::Running: ++running; break;
        case Job::State::Done: ++done; break;
        case Job::State::Cancelled: ++cancelled; break;
        case Job::State::Error: ++errors; break;
      }
    }
    jobs.set("submitted", Json::number(static_cast<std::uint64_t>(jobs_.size())));
    jobs.set("queued", Json::number(queued));
    jobs.set("running", Json::number(running));
    jobs.set("done", Json::number(done));
    jobs.set("cancelled", Json::number(cancelled));
    jobs.set("errors", Json::number(errors));
  }
  Json cache = Json::object();
  cache.set("entries", Json::number(static_cast<std::uint64_t>(cache_.size())));
  cache.set("hits", Json::number(cache_.hits()));
  cache.set("misses", Json::number(cache_.misses()));
  Json bank = Json::object();
  std::uint64_t facts = 0;
  const auto keys = attack::observation_bank_keys();
  for (std::uint64_t key : keys) {
    facts += attack::observation_bank_for_key(key).size();
  }
  bank.set("banks", Json::number(static_cast<std::uint64_t>(keys.size())));
  bank.set("facts", Json::number(facts));
  Json reply = Json::object();
  reply.set("ok", Json::boolean(true));
  reply.set("jobs", std::move(jobs));
  reply.set("circuit_cache", std::move(cache));
  reply.set("observation_bank", std::move(bank));
  return reply;
}

void Server::run_job(Job& job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job.cancel.load(std::memory_order_relaxed)) {
      job.state = Job::State::Cancelled;
      job_cv_.notify_all();
      return;
    }
    job.state = Job::State::Running;
  }
  Json result = Json::object();
  std::string error;
  try {
    if (job.kind == "attack") {
      run_attack_job(job, &result);
    } else if (job.kind == "verify") {
      run_verify_job(job, &result);
    } else if (job.kind == "analyze") {
      run_analyze_job(job, &result);
    } else {
      run_lock_job(job, &result);
    }
  } catch (const std::exception& e) {
    error = e.what();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (job.cancel.load(std::memory_order_relaxed)) {
    job.state = Job::State::Cancelled;
  } else if (!error.empty()) {
    job.state = Job::State::Error;
    job.error = error;
  } else {
    job.state = Job::State::Done;
    job.result = std::move(result);
  }
  job_cv_.notify_all();
}

std::shared_ptr<const CachedCircuit> Server::circuit_from(
    const Json& request, const std::string& field, std::size_t* cache_hits,
    std::string* error) {
  std::string text = request.str_or(field, "");
  std::string name = field;
  if (text.empty()) {
    const std::string path = request.str_or(field + "_file", "");
    if (path.empty()) {
      *error = "missing \"" + field + "\" (inline bench text) or \"" + field +
               "_file\" (server-side path)";
      return nullptr;
    }
    if (!read_text_file(path, &text)) {
      *error = "cannot read " + path;
      return nullptr;
    }
    name = path;
  }
  bool hit = false;
  auto circuit = cache_.get_or_parse(text, name, &hit, error);
  if (circuit != nullptr && hit && cache_hits != nullptr) ++*cache_hits;
  return circuit;
}

void Server::run_attack_job(Job& job, Json* result) {
  std::string error;
  std::size_t cache_hits = 0;
  const auto locked = circuit_from(job.request, "locked", &cache_hits, &error);
  if (locked == nullptr) throw std::runtime_error("attack: " + error);
  const auto reference = circuit_from(job.request, "oracle", &cache_hits, &error);
  if (reference == nullptr) throw std::runtime_error("attack: " + error);

  // Reject malformed submissions up front: a truncated upload or a
  // mismatched oracle would otherwise burn a worker slot on a solver run
  // that can only end in nonsense.
  const analysis::LintReport lint_rep =
      analysis::lint_attack_inputs(locked->netlist(), reference->netlist());
  if (!lint_rep.ok()) {
    throw std::runtime_error("attack: rejected by netlist lint\n" +
                             analysis::format_diagnostics(lint_rep));
  }

  attack::AttackBudget budget;
  budget.time_limit_s = job.request.num_or("seconds", 10.0);
  budget.max_iterations = job.request.u64_or("max_iterations", budget.max_iterations);
  budget.max_depth = static_cast<std::size_t>(
      job.request.u64_or("max_depth", budget.max_depth));
  budget.sat_workers = util::sat_portfolio_from_env();
  budget.sat_preprocess = util::sat_preprocess_from_env();
  budget.cancel = &job.cancel;

  const std::string mode = job.request.str_or("attack", "bmc");
  attack::AttackResult r;
  std::size_t recovered_period = 0;
  std::vector<sim::BitVec> recovered_schedule;
  std::size_t scope_decided = 0;
  std::string scope_verdicts;
  if (mode == "bmc") {
    r = attack::bmc_attack(locked->netlist(), reference->oracle(), budget);
  } else if (mode == "kc2") {
    r = attack::kc2_attack(locked->netlist(), reference->oracle(), budget);
  } else if (mode == "rane") {
    r = attack::rane_attack(locked->netlist(), reference->oracle(), budget);
  } else if (mode == "sat" || mode == "appsat" || mode == "double-dip") {
    // Scan-access threat model, like the CLI: both circuits are scan-exposed
    // first. The derived views are cached under their own structural keys,
    // so a resubmission skips the transform's compile cost too.
    bool hit = false;
    const auto locked_scan =
        cache_.get_or_add(netlist::scan_expose(locked->netlist()), &hit);
    if (hit) ++cache_hits;
    const auto reference_scan =
        cache_.get_or_add(netlist::scan_expose(reference->netlist()), &hit);
    if (hit) ++cache_hits;
    const auto& ls = locked_scan->netlist();
    const auto& rs = reference_scan->netlist();
    if (ls.inputs().size() != rs.inputs().size() ||
        ls.outputs().size() != rs.outputs().size()) {
      throw std::runtime_error(
          "attack: scan interfaces differ (" + std::to_string(ls.inputs().size()) +
          " vs " + std::to_string(rs.inputs().size()) + " inputs, " +
          std::to_string(ls.outputs().size()) + " vs " +
          std::to_string(rs.outputs().size()) +
          " outputs): the lock adds state elements, so the scan-model attacks "
          "do not apply; use bmc/kc2/rane instead");
    }
    attack::SatAttackOptions o;
    o.budget = budget;
    if (mode == "appsat") o.mode = attack::SatAttackOptions::Mode::AppSat;
    if (mode == "double-dip") o.mode = attack::SatAttackOptions::Mode::DoubleDip;
    r = attack::sat_attack(ls, reference_scan->oracle(), o);
  } else if (mode == "scope") {
    // Oracle-free structural inference; the oracle only confirms a fully
    // decided key, matching attack::scope_attack's contract.
    attack::ScopeOptions o;
    o.budget = budget;
    const attack::ScopeResult sr =
        attack::scope_attack(locked->netlist(), &reference->oracle(), o);
    r = sr.result;
    scope_decided = sr.decided;
    scope_verdicts = sr.report.verdict_string();
  } else if (mode == "periodic") {
    attack::PeriodicAttackOptions o;
    o.budget = budget;
    o.max_period =
        static_cast<std::size_t>(job.request.u64_or("max_period", o.max_period));
    const attack::PeriodicAttackResult pr =
        attack::periodic_key_attack(locked->netlist(), reference->oracle(), o);
    r = pr.result;
    recovered_period = pr.recovered_period;
    recovered_schedule = pr.recovered_schedule;
  } else {
    throw std::runtime_error(
        "attack: unknown mode \"" + mode +
        "\" (want bmc/kc2/rane/sat/appsat/double-dip/scope/periodic)");
  }

  // Acceptance-criterion judgement (docs/locking.md): when the request names
  // a criterion, the reported key is re-judged under it and the verdict
  // rides along in the result, so clients can score multi-key locks without
  // the one-key premise baked into Equal/not-Equal.
  const std::string accept_name = job.request.str_or("accept", "");
  bool accept_ran = false;
  attack::AcceptReport accept_report;
  if (!accept_name.empty()) {
    const auto criterion = attack::parse_criterion(accept_name);
    if (!criterion) {
      throw std::runtime_error(
          "attack: \"accept\" must be exact, any or approx");
    }
    accept_ran = true;
    accept_report.criterion = *criterion;
    if (r.key.empty()) {
      accept_report.detail = "no key reported";
    } else {
      attack::AcceptOptions accept_options;
      accept_options.criterion = *criterion;
      accept_options.epsilon = job.request.num_or("epsilon", 0.0);
      sim::BitVec truth;
      const sim::BitVec* truth_ptr = nullptr;
      const std::string truth_text = job.request.str_or("true_key", "");
      if (!truth_text.empty()) {
        if (!bits_from_string(truth_text, &truth)) {
          throw std::runtime_error(
              "attack: \"true_key\" must be a 0/1 string");
        }
        truth_ptr = &truth;
      }
      accept_report = attack::verify_any_key(locked->netlist(), r.key,
                                             reference->netlist(), truth_ptr,
                                             accept_options);
      attack::apply_acceptance(accept_report, &r);
    }
  }

  Json& out = *result;
  out.set("attack", Json::string(mode));
  out.set("outcome", Json::string(attack::outcome_label(r.outcome)));
  out.set("summary", Json::string(r.summary()));
  if (!r.key.empty()) out.set("key", Json::string(sim::bits_to_string(r.key)));
  out.set("seconds", Json::number(r.seconds));
  out.set("iterations", Json::number(r.iterations));
  out.set("fresh_queries", Json::number(r.fresh_queries));
  out.set("replayed_queries", Json::number(r.replayed_queries));
  out.set("preloaded_facts", Json::number(r.preloaded_facts));
  if (!r.detail.empty()) out.set("detail", Json::string(r.detail));
  if (accept_ran) {
    out.set("accept", Json::string(accept_name));
    out.set("accepted", Json::boolean(accept_report.accepted));
    if (accept_report.key_exact >= 0) {
      out.set("key_exact", Json::boolean(accept_report.key_exact == 1));
    }
    if (accept_report.any_key_pass >= 0) {
      out.set("any_key_pass", Json::boolean(accept_report.any_key_pass == 1));
    }
    if (accept_report.corruption_rate >= 0) {
      out.set("corruption_rate", Json::number(accept_report.corruption_rate));
    }
    if (!accept_report.detail.empty()) {
      out.set("accept_detail", Json::string(accept_report.detail));
    }
  }
  out.set("cache_hits", Json::number(static_cast<std::uint64_t>(cache_hits)));
  if (recovered_period != 0) {
    out.set("period", Json::number(static_cast<std::uint64_t>(recovered_period)));
    out.set("schedule", schedule_to_json(recovered_schedule));
  }
  if (mode == "scope") {
    out.set("decided", Json::number(static_cast<std::uint64_t>(scope_decided)));
    out.set("verdicts", Json::string(scope_verdicts));
  }
}

void Server::run_verify_job(Job& job, Json* result) {
  std::string error;
  std::size_t cache_hits = 0;
  const auto locked = circuit_from(job.request, "locked", &cache_hits, &error);
  if (locked == nullptr) throw std::runtime_error("verify: " + error);
  const auto reference = circuit_from(job.request, "oracle", &cache_hits, &error);
  if (reference == nullptr) throw std::runtime_error("verify: " + error);
  const std::string key_text = job.request.str_or("key", "");
  sim::BitVec key;
  if (key_text.empty() || !bits_from_string(key_text, &key)) {
    throw std::runtime_error("verify: \"key\" must be a non-empty 0/1 string");
  }
  if (key.size() != locked->netlist().key_inputs().size()) {
    throw std::runtime_error(
        "verify: key has " + std::to_string(key.size()) + " bits but the " +
        "locked circuit has " +
        std::to_string(locked->netlist().key_inputs().size()) + " key inputs");
  }
  attack::VerifyOptions options;
  options.time_limit_s = job.request.num_or("seconds", options.time_limit_s);
  util::Timer timer;
  const attack::VerifyResult vr = attack::verify_static_key(
      locked->netlist(), key, reference->netlist(), options);
  Json& out = *result;
  out.set("equivalent", Json::boolean(vr.equivalent));
  out.set("counterexample_cycles",
          Json::number(static_cast<std::uint64_t>(vr.counterexample.size())));
  out.set("seconds", Json::number(timer.seconds()));
  out.set("cache_hits", Json::number(static_cast<std::uint64_t>(cache_hits)));
}

void Server::run_lock_job(Job& job, Json* result) {
  std::string error;
  std::size_t cache_hits = 0;
  const auto circuit = circuit_from(job.request, "circuit", &cache_hits, &error);
  if (circuit == nullptr) throw std::runtime_error("lock: " + error);
  core::StrOptions options;
  options.num_keys = job.request.u64_or("k", 4);
  options.key_bits = job.request.u64_or("ki", 4);
  options.locked_ffs = job.request.u64_or("ffs", 1);
  options.seed = job.request.u64_or("seed", 1);
  options.single_key_reduction = job.request.bool_or("single_key", false);
  const lock::LockResult lr = core::cute_lock_str(circuit->netlist(), options);
  Json& out = *result;
  out.set("locked", Json::string(netlist::write_bench_string(lr.locked)));
  out.set("scheme", Json::string(lr.scheme));
  out.set("key_schedule", schedule_to_json(lr.key_schedule));
  out.set("cache_hits", Json::number(static_cast<std::uint64_t>(cache_hits)));
}

void Server::run_analyze_job(Job& job, Json* result) {
  std::string error;
  std::size_t cache_hits = 0;
  const auto circuit = circuit_from(job.request, "circuit", &cache_hits, &error);
  if (circuit == nullptr) throw std::runtime_error("analyze: " + error);
  const netlist::Netlist& nl = circuit->netlist();
  util::Timer timer;

  Json& out = *result;
  Json stats = Json::object();
  stats.set("signals", Json::number(static_cast<std::uint64_t>(nl.size())));
  stats.set("inputs", Json::number(static_cast<std::uint64_t>(nl.inputs().size())));
  stats.set("key_inputs",
            Json::number(static_cast<std::uint64_t>(nl.key_inputs().size())));
  stats.set("outputs",
            Json::number(static_cast<std::uint64_t>(nl.outputs().size())));
  stats.set("dffs", Json::number(static_cast<std::uint64_t>(nl.dffs().size())));
  out.set("stats", std::move(stats));

  const analysis::LintReport lint_rep = analysis::lint(nl);
  out.set("lint_ok", Json::boolean(lint_rep.ok()));
  out.set("lint_errors",
          Json::number(static_cast<std::uint64_t>(lint_rep.errors())));
  out.set("lint_warnings",
          Json::number(static_cast<std::uint64_t>(lint_rep.warnings())));
  if (lint_rep.infos() > 0) {
    out.set("lint_infos",
            Json::number(static_cast<std::uint64_t>(lint_rep.infos())));
  }
  if (!lint_rep.diagnostics.empty()) {
    out.set("diagnostics", diagnostics_to_json(lint_rep));
  }

  if (!nl.key_inputs().empty()) {
    analysis::InferOptions opt;
    opt.time_limit_s = job.request.num_or("seconds", 10.0);
    opt.profile_unateness = job.request.bool_or("unateness", true);
    const analysis::KeyHintReport report = analysis::infer_key_hints(nl, opt);
    out.set("verdicts", Json::string(report.verdict_string()));
    out.set("decided",
            Json::number(static_cast<std::uint64_t>(report.decided())));
    out.set("summary", Json::string(report.summary()));
    if (report.budget_exhausted) {
      out.set("budget_exhausted", Json::boolean(true));
    }
    Json bits = Json::array();
    for (const analysis::BitHint& h : report.bits) {
      Json bit = Json::object();
      bit.set("name", Json::string(h.name));
      bit.set("role", Json::string(analysis::role_name(h.role)));
      bit.set("verdict",
              Json::string(std::string(1, analysis::verdict_char(h.verdict))));
      bit.set("confidence", Json::number(h.confidence));
      bit.set("unateness", Json::string(analysis::unate_name(h.unate)));
      bits.push_back(std::move(bit));
    }
    out.set("bits", std::move(bits));
  }

  out.set("seconds", Json::number(timer.seconds()));
  out.set("cache_hits", Json::number(static_cast<std::uint64_t>(cache_hits)));
}

}  // namespace cl::service
