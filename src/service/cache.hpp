// Persistent compiled-circuit cache for the attack service.
//
// Every one-shot CLI/bench invocation re-parses its netlists and re-compiles
// the oracle's simulation kernel from scratch; a daemon serving many jobs
// against the same (netlist, oracle) pair should pay those costs once. The
// cache keys entries by the same structural content hash the observation
// bank uses (attack::lock_instance_key), so textually different but
// structurally identical submissions — re-synthesized copies, reformatted
// files — share one entry, while different circuits never collide. A
// text-hash front map additionally short-circuits re-parsing byte-identical
// submissions (the common case: a client resubmitting the same file).
//
// Entries are immutable after construction: the netlist never changes and
// SequentialOracle's compiled kernel is const-thread-safe (its query counter
// is atomic), so one entry can serve any number of concurrent jobs. Eviction
// is FIFO past k_max_entries; shared_ptr keeps an evicted entry alive for
// jobs still holding it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "attack/oracle.hpp"
#include "netlist/netlist.hpp"

namespace cl::service {

/// One parsed netlist plus, lazily, a compiled oracle over it. Address-
/// stable (held by shared_ptr) so the oracle's internal reference to the
/// netlist never dangles.
class CachedCircuit {
 public:
  explicit CachedCircuit(netlist::Netlist nl) : netlist_(std::move(nl)) {}

  const netlist::Netlist& netlist() const { return netlist_; }

  /// The compiled oracle, built on first use (locked netlists are cached
  /// too and never queried as oracles; compiling them eagerly would double
  /// the cache's compile cost for nothing). Throws std::invalid_argument if
  /// the circuit has key inputs. Thread-safe.
  const attack::SequentialOracle& oracle() const;

 private:
  netlist::Netlist netlist_;
  mutable std::mutex oracle_mu_;
  mutable std::unique_ptr<attack::SequentialOracle> oracle_;
};

class CircuitCache {
 public:
  /// Look up (or parse, insert, and return) the circuit for one bench-format
  /// submission. Returns nullptr with a diagnostic in *error when the text
  /// does not parse. *hit reports whether a cached entry was reused.
  std::shared_ptr<const CachedCircuit> get_or_parse(const std::string& bench_text,
                                                    const std::string& name,
                                                    bool* hit,
                                                    std::string* error);

  /// Same, for an already-built netlist (derived views like scan_expose()).
  std::shared_ptr<const CachedCircuit> get_or_add(netlist::Netlist&& nl,
                                                  bool* hit);

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;

  /// Entries retained at most; the oldest is evicted past this.
  static constexpr std::size_t k_max_entries = 64;

 private:
  std::shared_ptr<const CachedCircuit> insert_locked(
      std::uint64_t structural_key, std::shared_ptr<const CachedCircuit> entry);

  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<const CachedCircuit>> by_structure_;
  std::map<std::uint64_t, std::uint64_t> text_to_structure_;
  std::deque<std::uint64_t> insertion_order_;  // structural keys, oldest first
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cl::service
