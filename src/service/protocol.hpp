// Wire format of the cutelock attack service.
//
// The protocol is newline-delimited JSON: every request is one JSON object
// on one line, and every request gets exactly one JSON object back on one
// line (the `wait` op simply delays its line until the job completes).
// docs/service.md specifies the request/response schema op by op.
//
// Json is a deliberately small self-contained value type — objects keep
// insertion order so dumps are deterministic, numbers are doubles (job ids
// and counters fit exactly up to 2^53, far beyond any real job table), and
// parse() accepts exactly the JSON this code dumps plus standard escapes.
// No third-party dependency, by constraint and by taste.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cl::service {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Object, Array };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool b) {
    Json j;
    j.type_ = Type::Bool;
    j.bool_ = b;
    return j;
  }
  static Json number(double v) {
    Json j;
    j.type_ = Type::Number;
    j.number_ = v;
    return j;
  }
  static Json number(std::uint64_t v) {
    return number(static_cast<double>(v));
  }
  static Json string(std::string s) {
    Json j;
    j.type_ = Type::String;
    j.string_ = std::move(s);
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }
  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::Object; }

  /// Object field access. set() replaces an existing key in place (keeping
  /// its position) or appends; find() returns nullptr when absent.
  Json& set(const std::string& key, Json value);
  const Json* find(const std::string& key) const;

  /// Typed lookups with fallbacks — the request-handling idiom. A present
  /// field of the wrong type falls back too (a malformed request must not
  /// crash the daemon).
  std::string str_or(const std::string& key, const std::string& fallback) const;
  double num_or(const std::string& key, double fallback) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<std::pair<std::string, Json>>& items() const {
    return object_;
  }
  const std::vector<Json>& elements() const { return array_; }
  void push_back(Json value) { array_.push_back(std::move(value)); }

  /// Single-line serialization (no newline appended): the wire format.
  std::string dump() const;

  /// Parse one JSON document; trailing non-whitespace is an error. On
  /// failure returns false and describes the problem in *error.
  static bool parse(const std::string& text, Json* out, std::string* error);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<std::pair<std::string, Json>> object_;
  std::vector<Json> array_;
};

}  // namespace cl::service
