#include "service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cl::service {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Client::connect_tcp(int port, std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) {
      *error = "connect 127.0.0.1:" + std::to_string(port) + ": " +
               std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool Client::connect_unix(const std::string& path, std::string* error) {
  close();
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "socket path too long: " + path;
    return false;
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    if (error != nullptr) {
      *error = "connect " + path + ": " + std::strerror(errno);
    }
    close();
    return false;
  }
  return true;
}

bool Client::request(const Json& req, Json* response, std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  const std::string line = req.dump() + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error != nullptr) *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  char chunk[4096];
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      const std::string reply_line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      std::string parse_error;
      if (!Json::parse(reply_line, response, &parse_error)) {
        if (error != nullptr) *error = "bad response: " + parse_error;
        return false;
      }
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (error != nullptr) {
        *error = n == 0 ? "connection closed by server"
                        : std::string("recv: ") + std::strerror(errno);
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace cl::service
