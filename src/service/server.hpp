// Attack-as-a-service daemon.
//
// `cutelock serve` turns the one-shot CLI/bench world into a long-running
// service: clients submit lock/attack/verify jobs as newline-delimited JSON
// over a TCP or Unix socket (service/protocol.hpp), the server schedules
// them asynchronously on a util::ThreadPool with a per-job AttackBudget and
// a cooperative cancel flag (plumbed through the SAT solver's atomic
// interrupt hook via AttackBudget::cancel), and clients poll (`status`),
// block (`wait`), or abort (`cancel`) by job id.
//
// What makes the daemon worth running instead of the CLI is what persists
// between jobs:
//   * a CircuitCache keyed by structural content hash — repeated
//     submissions of the same netlist/oracle skip parsing and simulation-
//     kernel compilation (service/cache.hpp);
//   * the process-wide attack::ObservationBank registry, forced on for the
//     daemon's lifetime, so every attack's oracle facts prime the next
//     attack on the same (locked, oracle) pair — a repeated job replays
//     from the bank and reports strictly fewer fresh_queries;
//   * optional disk persistence for the banks (ServerOptions::obs_bank_path,
//     default CUTELOCK_OBS_BANK_PATH): loaded on start, saved on shutdown,
//     so oracle knowledge survives restarts and can be shipped between
//     machines.
//
// Protocol schema, job lifecycle, and the persistence format: docs/service.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "util/thread_pool.hpp"

namespace cl::service {

struct ServerOptions {
  /// Non-empty: listen on this Unix-domain socket path (a stale file from a
  /// dead daemon is replaced). Takes precedence over tcp_port.
  std::string unix_socket;
  /// When unix_socket is empty: listen on 127.0.0.1:tcp_port (0 picks an
  /// ephemeral port; read it back with port()).
  int tcp_port = 0;
  /// Attack workers (concurrent jobs); 0 = CUTELOCK_JOBS / hardware.
  std::size_t workers = 0;
  /// Observation-bank persistence file: loaded on start (missing file is
  /// fine, corrupt is rejected with a warning), saved on stop. Empty = no
  /// persistence.
  std::string obs_bank_path;
  /// Force the cross-run observation bank on for the daemon's lifetime —
  /// cross-job caching is the service's point, so it must not depend on the
  /// client's CUTELOCK_OBS_BANK environment.
  bool use_observation_bank = true;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, load persisted banks, start the accept loop. False + *error on
  /// bind/listen failure.
  bool start(std::string* error);

  /// Graceful shutdown: stop accepting, cancel queued and running jobs,
  /// drain the pool, answer blocked waiters, save banks, join every thread.
  /// Idempotent.
  void stop();

  /// Block until a client's `shutdown` request (or stop()), then shut down.
  void serve_forever();

  bool running() const;
  /// The bound TCP port (after start(); 0 when serving a Unix socket).
  int port() const;
  const std::string& socket_path() const { return options_.unix_socket; }

  /// One request against this server's job table (the same dispatcher the
  /// socket connections use; `wait` blocks). Exposed for in-process tests.
  Json handle_request(const Json& request);

 private:
  /// The socket path defers acting on a `shutdown` op until the reply line
  /// is on the wire — signalling from inside the dispatcher would let stop()
  /// cut the connection before the client hears its acknowledgement.
  Json handle_request(const Json& request, bool* defer_shutdown);
  void request_shutdown();

 public:

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string kind;  // "attack" | "verify" | "lock" | "analyze"
    enum class State { Queued, Running, Done, Cancelled, Error };
    State state = State::Queued;
    std::atomic<bool> cancel{false};
    Json request;
    Json result;        // payload, valid when state == Done
    std::string error;  // diagnostic, valid when state == Error
  };

  static const char* state_label(Job::State s);

  bool bind_listener(std::string* error);
  void accept_loop();
  void handle_connection(int fd);

  Json submit_job(const Json& request);
  Json job_status(std::uint64_t id, bool wait);
  Json cancel_job(std::uint64_t id);
  Json stats() const;
  void run_job(Job& job);
  void run_attack_job(Job& job, Json* result);
  void run_verify_job(Job& job, Json* result);
  void run_lock_job(Job& job, Json* result);
  void run_analyze_job(Job& job, Json* result);

  /// Netlist source for a job: inline bench text under `field`, or a
  /// server-side path under `field` + "_file". Null + *error when absent or
  /// unparsable; *cache_hits advances when the cache already had it.
  std::shared_ptr<const CachedCircuit> circuit_from(const Json& request,
                                                    const std::string& field,
                                                    std::size_t* cache_hits,
                                                    std::string* error);

  ServerOptions options_;
  CircuitCache cache_;

  mutable std::mutex mu_;
  std::condition_variable job_cv_;       // a job reached a terminal state
  std::condition_variable shutdown_cv_;  // a client requested shutdown
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;
  bool shutdown_requested_ = false;

  std::unique_ptr<util::ThreadPool> pool_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> connection_threads_;
  std::vector<int> connection_fds_;
};

}  // namespace cl::service
