#include "service/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace cl::service {

Json& Json::set(const std::string& key, Json value) {
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Json::str_or(const std::string& key,
                         const std::string& fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::String) ? v->string_ : fallback;
}

double Json::num_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::Number) ? v->number_ : fallback;
}

std::uint64_t Json::u64_or(const std::string& key,
                           std::uint64_t fallback) const {
  const Json* v = find(key);
  if (v == nullptr || v->type_ != Type::Number || v->number_ < 0 ||
      !std::isfinite(v->number_)) {
    return fallback;
  }
  return static_cast<std::uint64_t>(v->number_);
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->type_ == Type::Bool) ? v->bool_ : fallback;
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";  // JSON has no inf/nan; 0 is the least-surprising stand-in
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string* error;

  bool fail(const std::string& message) {
    if (error != nullptr) {
      *error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json::string(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      *out = Json::boolean(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      *out = Json::boolean(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      *out = Json::null();
      return true;
    }
    return parse_number(out);
  }

  bool parse_object(Json* out, int depth) {
    ++pos;  // '{'
    *out = Json::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return false;
      if (!consume(':')) return fail("expected ':'");
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      out->set(key, std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(Json* out, int depth) {
    ++pos;  // '['
    *out = Json::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      Json value;
      if (!parse_value(&value, depth + 1)) return false;
      out->push_back(std::move(value));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out->clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos >= text.size()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // The wire carries ASCII plus escaped control characters; encode
          // the BMP code point as UTF-8 for completeness.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text[pos]))) digits = true;
      ++pos;
    }
    if (!digits) {
      pos = start;
      return fail("expected a value");
    }
    const std::string token = text.substr(start, pos - start);
    // JSON forbids leading zeros ("01"); strtod would quietly accept them.
    std::size_t first = token[0] == '-' || token[0] == '+' ? 1 : 0;
    if (token.size() > first + 1 && token[first] == '0' &&
        std::isdigit(static_cast<unsigned char>(token[first + 1]))) {
      pos = start;
      return fail("malformed number");
    }
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos = start;
      return fail("malformed number");
    }
    *out = Json::number(v);
    return true;
  }
};

void dump_value(std::string& out, const Json& j) {
  switch (j.type()) {
    case Json::Type::Null:
      out += "null";
      break;
    case Json::Type::Bool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Type::Number:
      dump_number(out, j.as_number());
      break;
    case Json::Type::String:
      dump_string(out, j.as_string());
      break;
    case Json::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : j.items()) {
        if (!first) out += ", ";
        first = false;
        dump_string(out, k);
        out += ": ";
        dump_value(out, v);
      }
      out += '}';
      break;
    }
    case Json::Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& v : j.elements()) {
        if (!first) out += ", ";
        first = false;
        dump_value(out, v);
      }
      out += ']';
      break;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

bool Json::parse(const std::string& text, Json* out, std::string* error) {
  Parser p{text, 0, error};
  if (!p.parse_value(out, 0)) return false;
  p.skip_ws();
  if (p.pos != text.size()) return p.fail("trailing characters");
  return true;
}

}  // namespace cl::service
