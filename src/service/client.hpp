// Blocking client for the attack service: one connection, one request line
// out, one response line back (requests on one connection are answered in
// order, so a Client is usable from one thread at a time). Used by
// `cutelock submit` and the service tests.
#pragma once

#include <string>

#include "service/protocol.hpp"

namespace cl::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a daemon on 127.0.0.1:port / a Unix socket path. False with
  /// a diagnostic in *error on failure.
  bool connect_tcp(int port, std::string* error);
  bool connect_unix(const std::string& path, std::string* error);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send one request, block for its response line. False on transport or
  /// parse failure; a server-side error still returns true (inspect the
  /// response's "ok"/"error" fields).
  bool request(const Json& req, Json* response, std::string* error);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the last response line
};

}  // namespace cl::service
