#include "attack/observation_bank.hpp"

#include <algorithm>
#include <map>

#include "util/env.hpp"
#include "util/fnv.hpp"

namespace cl::attack {

namespace {

std::uint64_t hash_sequence(const std::vector<sim::BitVec>& inputs) {
  std::uint64_t h = util::k_fnv_offset;
  util::fnv1a_mix(h, inputs.size());
  for (const sim::BitVec& frame : inputs) {
    util::fnv1a_mix(h, frame.size());
    for (const auto bit : frame) util::fnv1a_mix(h, bit != 0 ? 1 : 2);
  }
  return h;
}

}  // namespace

void ObservationBank::record(const std::vector<sim::BitVec>& inputs,
                             const std::vector<sim::BitVec>& outputs) {
  if (inputs.empty()) return;
  const std::uint64_t h = hash_sequence(inputs);
  std::lock_guard<std::mutex> lock(mu_);
  if (observations_.size() >= k_max_observations) return;
  auto it = std::lower_bound(
      seen_.begin(), seen_.end(), h,
      [](const Entry& e, std::uint64_t v) { return e.hash < v; });
  for (; it != seen_.end() && it->hash == h; ++it) {
    if (observations_[it->index].inputs == inputs) return;  // duplicate fact
  }
  seen_.insert(it, Entry{h, observations_.size()});
  observations_.push_back(Observation{inputs, outputs});
}

std::optional<std::vector<sim::BitVec>> ObservationBank::lookup(
    const std::vector<sim::BitVec>& inputs) const {
  if (inputs.empty()) return std::nullopt;
  const std::uint64_t h = hash_sequence(inputs);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = std::lower_bound(
           seen_.begin(), seen_.end(), h,
           [](const Entry& e, std::uint64_t v) { return e.hash < v; });
       it != seen_.end() && it->hash == h; ++it) {
    const Observation& obs = observations_[it->index];
    if (obs.inputs == inputs) return obs.outputs;  // hash-collision safe
  }
  return std::nullopt;
}

std::vector<Observation> ObservationBank::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

std::size_t ObservationBank::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_.size();
}

std::uint64_t lock_instance_key(const netlist::Netlist& nl) {
  std::uint64_t h = util::k_fnv_offset;
  util::fnv1a_mix_bytes(h, nl.name().data(), nl.name().size());
  util::fnv1a_mix(h, nl.size());
  for (netlist::SignalId s = 0; s < nl.size(); ++s) {
    const netlist::Node& node = nl.node(s);
    util::fnv1a_mix(h, static_cast<std::uint64_t>(node.type));
    util::fnv1a_mix(h, static_cast<std::uint64_t>(node.init));
    util::fnv1a_mix_bytes(h, node.name.data(), node.name.size());
    util::fnv1a_mix(h, node.fanins.size());
    for (const netlist::SignalId f : node.fanins) util::fnv1a_mix(h, f);
  }
  util::fnv1a_mix(h, nl.outputs().size());
  for (const netlist::SignalId o : nl.outputs()) util::fnv1a_mix(h, o);
  return h;
}

std::uint64_t bank_key(const netlist::Netlist& locked,
                       const netlist::Netlist& reference) {
  std::uint64_t h = lock_instance_key(locked);
  util::fnv1a_mix(h, lock_instance_key(reference));
  return h;
}

namespace {

struct Registry {
  std::mutex mu;
  // std::map: node-stable, so returned bank references never move.
  std::map<std::uint64_t, ObservationBank> banks;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: banks outlive static teardown
  return *r;
}

}  // namespace

ObservationBank& observation_bank_for_key(std::uint64_t key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.banks[key];
}

ObservationBank* observation_bank_for(const netlist::Netlist& locked,
                                      const netlist::Netlist& reference) {
  if (!util::obs_bank_from_env()) return nullptr;
  return &observation_bank_for_key(bank_key(locked, reference));
}

}  // namespace cl::attack
