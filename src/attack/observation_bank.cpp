#include "attack/observation_bank.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>

#include "util/env.hpp"
#include "util/fnv.hpp"

namespace cl::attack {

namespace {

// Persistence format (docs/service.md): a fixed magic naming the version,
// then little-endian u64 counts/lengths throughout. Bumping the layout means
// bumping the magic — old daemons reject new files instead of misreading
// them, and vice versa.
constexpr char k_bank_magic[8] = {'C', 'L', 'O', 'B', 'A', 'N', 'K', '1'};

// Caps a well-formed file can never exceed (serialize only writes banks that
// respect k_max_observations and real circuit interfaces). A length beyond
// them means corruption — reject instead of attempting a huge allocation.
constexpr std::uint64_t k_max_frames_per_fact = 1u << 16;
constexpr std::uint64_t k_max_bits_per_frame = 1u << 20;

void write_u64(std::ostream& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.write(bytes, 8);
}

bool read_u64(std::istream& in, std::uint64_t* v) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
          << (8 * i);
  }
  return true;
}

void write_frames(std::ostream& out, const std::vector<sim::BitVec>& frames) {
  write_u64(out, frames.size());
  for (const sim::BitVec& frame : frames) {
    write_u64(out, frame.size());
    for (const std::uint8_t bit : frame) {
      out.put(bit != 0 ? '\1' : '\0');
    }
  }
}

bool read_frames(std::istream& in, std::vector<sim::BitVec>* frames) {
  std::uint64_t count = 0;
  if (!read_u64(in, &count) || count > k_max_frames_per_fact) return false;
  frames->clear();
  frames->reserve(count);
  for (std::uint64_t f = 0; f < count; ++f) {
    std::uint64_t bits = 0;
    if (!read_u64(in, &bits) || bits > k_max_bits_per_frame) return false;
    sim::BitVec frame(bits);
    if (bits != 0 &&
        !in.read(reinterpret_cast<char*>(frame.data()),
                 static_cast<std::streamsize>(bits))) {
      return false;
    }
    for (const std::uint8_t bit : frame) {
      if (bit > 1) return false;  // facts are bits; anything else is damage
    }
    frames->push_back(std::move(frame));
  }
  return true;
}

std::uint64_t hash_sequence(const std::vector<sim::BitVec>& inputs) {
  std::uint64_t h = util::k_fnv_offset;
  util::fnv1a_mix(h, inputs.size());
  for (const sim::BitVec& frame : inputs) {
    util::fnv1a_mix(h, frame.size());
    for (const auto bit : frame) util::fnv1a_mix(h, bit != 0 ? 1 : 2);
  }
  return h;
}

}  // namespace

void ObservationBank::record(const std::vector<sim::BitVec>& inputs,
                             const std::vector<sim::BitVec>& outputs) {
  if (inputs.empty()) return;
  const std::uint64_t h = hash_sequence(inputs);
  std::lock_guard<std::mutex> lock(mu_);
  if (observations_.size() >= k_max_observations) return;
  auto it = std::lower_bound(
      seen_.begin(), seen_.end(), h,
      [](const Entry& e, std::uint64_t v) { return e.hash < v; });
  for (; it != seen_.end() && it->hash == h; ++it) {
    if (observations_[it->index].inputs == inputs) return;  // duplicate fact
  }
  seen_.insert(it, Entry{h, observations_.size()});
  observations_.push_back(Observation{inputs, outputs});
}

std::optional<std::vector<sim::BitVec>> ObservationBank::lookup(
    const std::vector<sim::BitVec>& inputs) const {
  if (inputs.empty()) return std::nullopt;
  const std::uint64_t h = hash_sequence(inputs);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = std::lower_bound(
           seen_.begin(), seen_.end(), h,
           [](const Entry& e, std::uint64_t v) { return e.hash < v; });
       it != seen_.end() && it->hash == h; ++it) {
    const Observation& obs = observations_[it->index];
    if (obs.inputs == inputs) return obs.outputs;  // hash-collision safe
  }
  return std::nullopt;
}

std::vector<Observation> ObservationBank::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

std::size_t ObservationBank::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_.size();
}

void ObservationBank::serialize(std::ostream& out) const {
  const std::vector<Observation> facts = snapshot();
  write_u64(out, facts.size());
  for (const Observation& obs : facts) {
    write_frames(out, obs.inputs);
    write_frames(out, obs.outputs);
  }
}

bool ObservationBank::deserialize(std::istream& in) {
  std::uint64_t count = 0;
  if (!read_u64(in, &count) || count > k_max_observations) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    Observation obs;
    if (!read_frames(in, &obs.inputs) || !read_frames(in, &obs.outputs)) {
      return false;
    }
    record(obs.inputs, obs.outputs);  // dedup + cap, same as a live fact
  }
  return true;
}

std::uint64_t lock_instance_key(const netlist::Netlist& nl) {
  // Purely structural: the top-level netlist name is presentation metadata
  // (a file stem here, a request field in the daemon) and must not split
  // banks for the same circuit. Node names *are* hashed — they come from
  // the bench text itself and renaming signals genuinely changes identity.
  std::uint64_t h = util::k_fnv_offset;
  util::fnv1a_mix(h, nl.size());
  for (netlist::SignalId s = 0; s < nl.size(); ++s) {
    const netlist::Node& node = nl.node(s);
    util::fnv1a_mix(h, static_cast<std::uint64_t>(node.type));
    util::fnv1a_mix(h, static_cast<std::uint64_t>(node.init));
    util::fnv1a_mix_bytes(h, node.name.data(), node.name.size());
    util::fnv1a_mix(h, node.fanins.size());
    for (const netlist::SignalId f : node.fanins) util::fnv1a_mix(h, f);
  }
  util::fnv1a_mix(h, nl.outputs().size());
  for (const netlist::SignalId o : nl.outputs()) util::fnv1a_mix(h, o);
  return h;
}

std::uint64_t bank_key(const netlist::Netlist& locked,
                       const netlist::Netlist& reference) {
  std::uint64_t h = lock_instance_key(locked);
  util::fnv1a_mix(h, lock_instance_key(reference));
  return h;
}

namespace {

struct Registry {
  std::mutex mu;
  // std::map: node-stable, so returned bank references never move.
  std::map<std::uint64_t, ObservationBank> banks;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: banks outlive static teardown
  return *r;
}

std::atomic<bool> g_bank_forced{false};

}  // namespace

ObservationBank& observation_bank_for_key(std::uint64_t key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.banks[key];
}

void set_observation_bank_forced(bool on) {
  g_bank_forced.store(on, std::memory_order_relaxed);
}

ObservationBank* observation_bank_for(const netlist::Netlist& locked,
                                      const netlist::Netlist& reference) {
  if (!g_bank_forced.load(std::memory_order_relaxed) &&
      !util::obs_bank_from_env()) {
    return nullptr;
  }
  return &observation_bank_for_key(bank_key(locked, reference));
}

std::vector<std::uint64_t> observation_bank_keys() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::uint64_t> keys;
  keys.reserve(r.banks.size());
  for (const auto& [key, bank] : r.banks) keys.push_back(key);
  return keys;  // std::map iteration: already sorted
}

bool save_observation_banks(const std::string& path, std::string* error) {
  const std::vector<std::uint64_t> keys = observation_bank_keys();
  // Write-then-rename: a daemon crashing mid-save (or two processes saving
  // the same file) never leaves a reader a torn bank.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write " + tmp;
      return false;
    }
    out.write(k_bank_magic, sizeof k_bank_magic);
    write_u64(out, keys.size());
    for (const std::uint64_t key : keys) {
      write_u64(out, key);
      observation_bank_for_key(key).serialize(out);
    }
    if (!out) {
      if (error != nullptr) *error = "short write to " + tmp;
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_observation_banks(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  char magic[sizeof k_bank_magic];
  if (!in.read(magic, sizeof magic) ||
      !std::equal(magic, magic + sizeof magic, k_bank_magic)) {
    if (error != nullptr) {
      *error = path + ": not an observation-bank file (bad magic/version)";
    }
    return false;
  }
  std::uint64_t bank_count = 0;
  if (!read_u64(in, &bank_count)) {
    if (error != nullptr) *error = path + ": truncated bank count";
    return false;
  }
  for (std::uint64_t b = 0; b < bank_count; ++b) {
    std::uint64_t key = 0;
    if (!read_u64(in, &key) ||
        !observation_bank_for_key(key).deserialize(in)) {
      if (error != nullptr) {
        *error = path + ": corrupt or truncated bank record " +
                 std::to_string(b);
      }
      return false;
    }
  }
  return true;
}

}  // namespace cl::attack
