#include "attack/result.hpp"

#include <sstream>

namespace cl::attack {

const char* outcome_label(Outcome o) {
  switch (o) {
    case Outcome::Equal: return "Equal";
    case Outcome::Cns: return "CNS";
    case Outcome::WrongKey: return "x..x";
    case Outcome::Fail: return "FAIL";
    case Outcome::Timeout: return "N/A";
  }
  return "?";
}

std::string AttackResult::summary() const {
  std::ostringstream out;
  out << outcome_label(outcome);
  if (!key.empty()) out << " key=" << sim::bits_to_string(key);
  out << " iters=" << iterations;
  if (fresh_queries != 0 || replayed_queries != 0 || preloaded_facts != 0) {
    out << " queries=" << fresh_queries << "f/" << replayed_queries << "r";
    if (preloaded_facts != 0) out << "/" << preloaded_facts << "p";
  }
  if (!detail.empty()) out << " (" << detail << ")";
  return out.str();
}

}  // namespace cl::attack
