// FALL — Functional Analysis attack on Logic Locking (Sirone & Subramanyan,
// DATE'19), the removal-style attack of the paper's Table V.
//
// Pipeline (as in the original tool):
//   1. Structural analysis: locate comparator structures in the locked
//      netlist — AND-trees whose leaves are (possibly inverted) primary
//      input literals. These are the hidden-pattern comparators that
//      TTLock/SFLL-style stripped-functionality locks contain.
//   2. Functional analysis: key-unateness profiling prunes gates whose
//      functions cannot be key comparators.
//   3. Candidate keys: the literal polarities of each surviving comparator.
//   4. Confirmation: each candidate is verified against the oracle (SAT +
//      simulation equivalence); only verified keys count.
//
// Cute-Lock-Str contains comparators over *key* inputs feeding MUX selects,
// not input-pattern comparators feeding output-flip logic, so step 1 finds
// nothing — the paper's "0 candidates / 0 keys" row.
#pragma once

#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct FallOptions {
  AttackBudget budget;
  std::size_t min_pattern_bits = 2;  // smallest comparator worth reporting
};

struct FallResult {
  AttackResult result;
  std::size_t candidates = 0;   // patterns extracted by structural analysis
  std::size_t confirmed = 0;    // candidates passing oracle verification
};

FallResult fall_attack(const netlist::Netlist& locked,
                       const SequentialOracle& oracle,
                       const FallOptions& options = {});

}  // namespace cl::attack
