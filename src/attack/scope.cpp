#include "attack/scope.hpp"

#include "attack/verify.hpp"
#include "util/timer.hpp"

namespace cl::attack {

ScopeResult scope_attack(const netlist::Netlist& locked,
                         const SequentialOracle* oracle,
                         const ScopeOptions& options) {
  util::Timer timer;
  ScopeResult out;
  analysis::InferOptions infer = options.infer;
  if (infer.time_limit_s <= 0) {
    infer.time_limit_s = options.budget.time_limit_s;
  }
  out.report = analysis::infer_key_hints(locked, infer);
  out.decided = out.report.decided();

  AttackResult& r = out.result;
  r.iterations = out.decided;
  const std::size_t ki = out.report.bits.size();
  // Reported key: decided bits at their verdicts, undecided bits at 0. Only
  // a fully decided key is ever claimed as an answer.
  r.key.assign(ki, 0);
  for (const auto& [bit, value] : out.report.decided_bits()) {
    r.key[bit] = value ? 1 : 0;
  }
  r.detail = out.report.summary();

  if (out.report.budget_exhausted) {
    r.outcome = Outcome::Timeout;
  } else if (ki == 0 || out.decided < ki) {
    r.outcome = Outcome::Fail;  // honest partial verdict, no key claimed
  } else if (oracle == nullptr) {
    r.outcome = Outcome::Fail;
    r.detail += "; no oracle to confirm the key";
  } else {
    const VerifyResult v =
        verify_static_key(locked, r.key, oracle->reference(),
                          verify_options_for(options.budget));
    r.outcome = v.equivalent ? Outcome::Equal : Outcome::WrongKey;
  }
  r.seconds = timer.seconds();
  return out;
}

}  // namespace cl::attack
