// Unified oracle-guided attack engine.
//
// Every oracle-guided attack in the suite — SAT (HOST'15), Double-DIP,
// AppSAT, BMC/INT (ICCAD'17), KC2 (DATE'19), RANE (GLSVLSI'21), and the
// adaptive periodic-schedule attacker — is the same loop wearing different
// hats: build a miter over hypothesis copies of the locked circuit, solve
// for a discriminating input (sequence), query the oracle, constrain, and
// conclude when the hypothesis space is discriminated. OgEngine owns that
// loop once: solver + miter construction, budget and deadline arming,
// iteration accounting, candidate tracking, and candidate verification.
// What actually differs per attack is reduced to a DipStrategy — how many
// DIPs per round (Double-DIP), settling on an approximate key (AppSAT),
// blocking refuted candidates (KC2), depth extension policy (BMC vs KC2's
// incremental solver), a symbolic reset state (RANE), or replacing the
// static-key hypothesis with a periodic schedule sweep (periodic).
//
// The engine is also where the cross-attack ObservationBank plugs in: when a
// bank is attached, recorded oracle facts are installed as constraints
// before the first solve (counted as `preloaded_facts`), exact repeats of a
// banked input sequence are answered from the bank instead of the oracle
// (`replayed_queries`), and every genuine query is recorded for the attacks
// that follow (`fresh_queries`). All three counters land in AttackResult
// and, via bench::Runner, in BENCH_*.json.
//
// The public attack entry points (sat_attack, bmc_attack, kc2_attack,
// rane_attack, periodic_key_attack) are thin wrappers that pick a strategy
// and run it here; their signatures and semantics are unchanged.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "attack/observation_bank.hpp"
#include "attack/oracle.hpp"
#include "attack/result.hpp"
#include "attack/verify.hpp"
#include "cnf/miter.hpp"
#include "sat/portfolio.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cl::attack {

class DipStrategy;

class OgEngine {
 public:
  /// Static description of a strategy's loop shape. The engine reads it once
  /// at run() and drives the shared loop accordingly.
  struct Spec {
    bool combinational = false;  ///< scan model: fixed depth 1, no deepening
    bool symbolic_init = false;  ///< RANE: reset state as a shared secret
    bool incremental = false;    ///< persist solver across depths (KC2)
    std::size_t start_depth = 1;
    std::size_t depth_step = 2;
    std::size_t warmup_sequences = 0;  ///< random oracle traces before DIS
    std::size_t warmup_cycles = 0;
    std::size_t dips_per_round = 1;  ///< Double-DIP: 2
    std::uint64_t seed = 0;          ///< engine RNG (warmup, AppSAT samples)
    const char* caller = "attack";   ///< prefix of input-validation errors
  };

  /// `bank` may be nullptr (no cross-attack sharing; the default behaviour
  /// is then bit-identical to the pre-engine per-attack loops).
  OgEngine(const netlist::Netlist& locked, const SequentialOracle& oracle,
           const AttackBudget& budget, ObservationBank* bank = nullptr);

  /// Validate inputs against the strategy's Spec and run it to completion.
  AttackResult run(DipStrategy& strategy);

  // ---- services for strategies -------------------------------------------

  const netlist::Netlist& locked() const { return locked_; }
  const SequentialOracle& oracle() const { return oracle_; }
  const AttackBudget& budget() const { return budget_; }
  const Spec& spec() const { return spec_; }
  AttackResult& result() { return result_; }
  util::Rng& rng() { return rng_; }
  ObservationBank* bank() { return bank_; }

  /// Engine-owned solver/miter; valid inside the shared DIP loop (the first
  /// rebuild happens when run_dip_loop starts).
  sat::Solver& solver() { return *solver_; }
  cnf::SequentialMiter& miter() { return *miter_; }

  // The one copy of the formerly per-attack budget lambdas.
  bool out_of_budget() const;
  /// True when the budget's cooperative-cancel flag (AttackBudget::cancel)
  /// is armed and set; folded into out_of_budget().
  bool cancelled() const;
  double elapsed_s() const;
  /// Wall budget left: max(0, limit - elapsed). Deliberately floor-free — an
  /// exhausted budget arms a zero deadline (solve returns Unknown at entry)
  /// instead of the historical 0.05 s grace period.
  double remaining_s() const;
  void arm_deadline();
  void arm_deadline(sat::Solver& solver) const;
  /// VerifyOptions derived from the budget; `clamp_to_remaining` caps the
  /// SAT phase at the wall budget left (the sequential attacks' behaviour).
  VerifyOptions verify_options(bool clamp_to_remaining) const;

  /// Query the oracle on one input sequence: counts a fresh query, records
  /// the fact into the bank (when attached), returns the response.
  std::vector<sim::BitVec> query_oracle(const std::vector<sim::BitVec>& inputs);

  /// Batched query_oracle: element j of the result equals
  /// query_oracle(sequences[j]), with identical bank/accounting semantics
  /// (bank hits count replayed, misses fresh), but the bank misses travel to
  /// the oracle in wide-lane query_batch() passes — one per distinct
  /// sequence length — retiring up to 64*W sequences per eval charge. The
  /// batch traffic lands in AttackResult::batched_queries/oracle_batches.
  std::vector<std::vector<sim::BitVec>> query_oracle_batch(
      const std::vector<std::vector<sim::BitVec>>& sequences);

  /// Guarded snapshot of the attached bank: every fact whose interface
  /// matches this oracle, each counted as one preloaded fact. Empty without
  /// a bank. The one place the replay guard/accounting lives — both the
  /// shared loop's constraint replay and custom strategies (periodic) pull
  /// their banked facts through here.
  std::vector<Observation> banked_observations();

  /// Oracle-consistency constraint on both key copies of the engine miter
  /// (honouring the Spec's symbolic reset state). Does not query the oracle.
  void constrain_both_keys(const std::vector<sim::BitVec>& inputs,
                           const std::vector<sim::BitVec>& outputs);

  /// The DIP-loop step: query the oracle, constrain both key copies, append
  /// to the replayable I/O log, count one iteration.
  void add_io(const std::vector<sim::BitVec>& inputs);

  /// add_io over many sequences with one batched oracle pass. Constraints
  /// are added and iterations counted in element order, so the solver sees
  /// the exact clause stream of per-sequence add_io calls.
  void add_io_batch(const std::vector<std::vector<sim::BitVec>>& sequences);

  /// Fresh solver + miter at `depth`, replaying the recorded I/O log (the
  /// non-incremental deepening policy). Also the initial construction.
  void rebuild(std::size_t depth);
  void extend_to(std::size_t depth);

  /// Best key candidate so far; every Timeout path reports it uniformly.
  const sim::BitVec& candidate() const { return candidate_; }
  void set_candidate(const sim::BitVec& key) { candidate_ = key; }

  /// Structural key hints (bit index, value) installed as unit assumptions
  /// on every solve, so the DIP search starts inside the hinted subspace.
  /// The moment the hints prove unreliable — they contradict a recorded
  /// oracle fact, or their subspace's best candidate fails external
  /// verification — they are dropped for the rest of the run, so every
  /// terminal verdict (Equal is externally verified; Cns and WrongKey are
  /// concluded hint-free) is as sound as an unhinted run. Call before run();
  /// when unset, run() auto-computes hints from analysis::infer_key_hints
  /// iff CUTELOCK_KEY_HINTS=1 (and stable mode is off). Out-of-range bit
  /// indices are discarded at run().
  void set_hints(std::vector<std::pair<std::size_t, bool>> hints);

  /// Solver factory for strategies that manage their own instances (the
  /// periodic schedule sweep): portfolio width and conflict budget applied.
  std::unique_ptr<sat::PortfolioSolver> make_solver() const;

  // Terminal results: stamp seconds (and, for timeouts, the candidate).
  AttackResult finish(Outcome outcome, std::string detail);
  AttackResult finish_timeout(std::string detail);

  /// The shared loop (DipStrategy::attack's default body): bank replay,
  /// warmup, DIS search per depth, consistency check, verification,
  /// counterexample feedback, deepening.
  AttackResult run_dip_loop(DipStrategy& strategy);

 private:
  struct IoFact {
    std::vector<sim::BitVec> inputs;
    std::vector<sim::BitVec> outputs;
  };

  void replay_bank();
  void prepare_hints();
  /// solver_->solve(assumptions) with the active hints appended as unit
  /// assumptions over BOTH key copies. With `drop_on_unsat` (the consistency
  /// solve), Unsat under hints drops them permanently, re-arms the deadline,
  /// and re-solves without; diff solves pass false — there Unsat means "the
  /// hinted subspace is discriminated" and external verification arbitrates.
  sat::Result solve_hinted(std::vector<sat::Lit> assumptions,
                           bool drop_on_unsat);

  const netlist::Netlist& locked_;
  const SequentialOracle& oracle_;
  AttackBudget budget_;
  Spec spec_;
  ObservationBank* bank_;
  util::Timer timer_;
  util::Rng rng_;
  AttackResult result_;
  sim::BitVec candidate_;
  std::vector<IoFact> io_;  // replayed on rebuild()
  std::vector<std::pair<std::size_t, bool>> hints_;
  bool hints_active_ = false;
  std::unique_ptr<sat::PortfolioSolver> solver_;
  std::unique_ptr<cnf::SequentialMiter> miter_;
};

/// Per-attack behaviour plugged into the engine. Implementations live next
/// to their public entry points (sat_attack.cpp, seq_attack.cpp,
/// periodic_attack.cpp); see docs/attacks.md for the contract.
class DipStrategy {
 public:
  using Spec = OgEngine::Spec;

  /// What after_round tells the shared loop to do next.
  enum class RoundAction {
    kContinue,  ///< keep searching for DIPs at the current depth
    kBreakDis,  ///< stop the DIS search, go to the consistency phase
    kDone,      ///< attack finished; *done carries the result
  };

  virtual ~DipStrategy() = default;
  virtual const char* name() const = 0;
  virtual Spec spec() const = 0;

  /// Drive the attack. The default body is the engine's shared DIP loop;
  /// strategies whose outer structure is different (the periodic schedule
  /// hypothesis sweep) override this and use the engine services directly.
  virtual AttackResult attack(OgEngine& engine);

  /// Called once after input validation, before the first solver exists
  /// (AppSAT compiles the locked netlist here).
  virtual void on_start(OgEngine& engine);

  /// Called after each DIP round (a Sat diff solve plus its oracle
  /// constraints). AppSAT's sampling/settling lives here.
  virtual RoundAction after_round(OgEngine& engine, std::size_t dip_rounds,
                                  AttackResult* done);

  /// Called when a consistent candidate failed verification and its
  /// counterexample was fed back (KC2 adds its blocking clause here).
  virtual void on_refuted(OgEngine& engine, const sim::BitVec& key);
};

}  // namespace cl::attack
