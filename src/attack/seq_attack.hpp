// Oracle-guided sequential (scan-free) attacks by time-frame unrolling:
//
//  * bmc_attack  — the unrolling attack of El Massad et al. (ICCAD'17), the
//    algorithm behind NEOS's "int" mode: find discriminating input
//    *sequences* (DISes) at growing depths, query the oracle from reset,
//    constrain, and conclude when the key space is discriminated.
//  * kc2_attack  — Shamsi et al. (DATE'19): the same decision problem solved
//    incrementally; one solver instance persists across depths and DIS
//    rounds (learned clauses and key conditions are "crunched" instead of
//    rebuilt), plus wrong-candidate blocking clauses.
//  * rane_attack — Roshanisefat et al. (GLSVLSI'21): formal-verification
//    style formulation where the reset state is itself a symbolic secret
//    shared by all copies.
//
// All three model one *static* key vector — exactly what the original tools
// do, and exactly the assumption Cute-Lock's time-based keys break: after
// responses from two different counter phases are constrained, the key space
// becomes empty and the attacks report CNS.
#pragma once

#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct SeqAttackOptions {
  AttackBudget budget;
  bool incremental = false;    // KC2: persist the solver across depths
  bool symbolic_init = false;  // RANE: reset state as symbolic secret
  std::size_t start_depth = 2;
  std::size_t depth_step = 2;
  /// Simulation-guided preprocessing: constrain this many random oracle
  /// traces before the DIS loop (prunes the bulk of the hypothesis space;
  /// essential when the reset state is symbolic).
  std::size_t warmup_sequences = 2;
  std::size_t warmup_cycles = 12;
  std::uint64_t seed = 0x5e9a77;
};

AttackResult seq_attack(const netlist::Netlist& locked,
                        const SequentialOracle& oracle,
                        const SeqAttackOptions& options);

/// Named configurations used by the benchmark tables.
AttackResult bmc_attack(const netlist::Netlist& locked,
                        const SequentialOracle& oracle,
                        const AttackBudget& budget = {});
AttackResult kc2_attack(const netlist::Netlist& locked,
                        const SequentialOracle& oracle,
                        const AttackBudget& budget = {});
AttackResult rane_attack(const netlist::Netlist& locked,
                         const SequentialOracle& oracle,
                         const AttackBudget& budget = {});

}  // namespace cl::attack
