// Adaptive periodic-key attack — the ablation the paper's threat model
// invites (and its implicit future-work attacker).
//
// Every attack in Tables III/IV models a static key and therefore fails
// against time-base keys. An attacker who *hypothesizes the construction* —
// keys repeating with period p — can instead unroll with per-frame key
// variables tied as key(t) == key(t mod p) and search periods p = 1, 2, ...
// This harness quantifies how much harder that is: the key-search space
// grows from 2^ki to 2^(ki*p), and the attacker must also guess p.
//
// This attack is NOT part of the paper's evaluation; it exists to
// characterize the defense margin (see bench/ablation_periodic_attack).
#pragma once

#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct PeriodicAttackOptions {
  AttackBudget budget;
  std::size_t max_period = 8;   // largest hypothesized schedule period
  std::size_t start_depth = 2;  // unroll start (grows like the BMC attack)
};

struct PeriodicAttackResult {
  AttackResult result;
  std::size_t recovered_period = 0;            // when successful
  std::vector<sim::BitVec> recovered_schedule; // key per slot, when successful
};

PeriodicAttackResult periodic_key_attack(const netlist::Netlist& locked,
                                         const SequentialOracle& oracle,
                                         const PeriodicAttackOptions& options = {});

}  // namespace cl::attack
