// The oracle-guided SAT attack (Subramanyan et al., HOST'15) and its
// AppSAT / Double-DIP descendants, in the scan-access threat model: the
// attack operates on a combinational circuit (sequential designs are first
// passed through netlist::scan_expose, which models full scan-chain access).
//
// Classic loop: find a discriminating input pattern (DIP) on which two
// consistent keys disagree, query the oracle, constrain both key copies,
// repeat until no DIP remains; any consistent key is then the correct key.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct SatAttackOptions {
  AttackBudget budget;
  enum class Mode { Classic, AppSat, DoubleDip } mode = Mode::Classic;
  /// Structural key hints (key-bit index, value) installed as unit
  /// assumptions on the engine (OgEngine::set_hints): advisory, dropped on
  /// any contradiction, never able to flip a verdict. Empty = engine
  /// default (auto-compute iff CUTELOCK_KEY_HINTS=1 and not stable mode).
  std::vector<std::pair<std::size_t, bool>> hints;
  // AppSAT settling parameters (Shamsi et al., HOST'17): every
  // `appsat_sample_every` DIP rounds draw `appsat_samples` random queries;
  // if the current candidate's observed error rate is below the threshold,
  // settle on it as an approximate key.
  std::size_t appsat_sample_every = 4;
  std::size_t appsat_samples = 50;
  double appsat_error_threshold = 0.0;
  std::uint64_t seed = 0xa77acc;
};

/// `locked` must be combinational (scan-exposed); the oracle's reference
/// must have the same input/output interface.
AttackResult sat_attack(const netlist::Netlist& locked,
                        const SequentialOracle& oracle,
                        const SatAttackOptions& options = {});

}  // namespace cl::attack
