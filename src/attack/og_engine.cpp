#include "attack/og_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "analysis/key_infer.hpp"
#include "util/env.hpp"

namespace cl::attack {

using netlist::Netlist;
using sat::Result;

namespace {
// Bits below this confidence stay out of the assumption set: a wrong hint is
// recoverable (Unsat drops the whole set) but costs a wasted solve.
constexpr double k_hint_confidence = 0.75;
}  // namespace

OgEngine::OgEngine(const Netlist& locked, const SequentialOracle& oracle,
                   const AttackBudget& budget, ObservationBank* bank)
    : locked_(locked), oracle_(oracle), budget_(budget), bank_(bank),
      rng_(0) {}

AttackResult OgEngine::run(DipStrategy& strategy) {
  spec_ = strategy.spec();
  if (spec_.combinational && !locked_.dffs().empty()) {
    throw std::invalid_argument(
        std::string(spec_.caller) +
        ": expects a combinational (scan-exposed) circuit");
  }
  if (locked_.key_inputs().empty()) {
    throw std::invalid_argument(std::string(spec_.caller) +
                                ": circuit has no key inputs");
  }
  rng_ = util::Rng(spec_.seed);
  result_ = AttackResult{};
  candidate_.clear();
  io_.clear();
  miter_.reset();  // references the solver: destroy before it
  solver_.reset();
  timer_.reset();
  prepare_hints();
  strategy.on_start(*this);
  return strategy.attack(*this);
}

void OgEngine::set_hints(std::vector<std::pair<std::size_t, bool>> hints) {
  hints_ = std::move(hints);
}

void OgEngine::prepare_hints() {
  if (hints_.empty() && util::key_hints_from_env()) {
    // Auto-compute from the structural analysis pass. Its cost counts
    // against this attack's own wall budget (the timer is already running),
    // so cap it well below the total.
    analysis::InferOptions opt;
    opt.time_limit_s = budget_.time_limit_s / 4;
    hints_ = analysis::infer_key_hints(locked_, opt)
                 .decided_bits(k_hint_confidence);
  }
  const std::size_t bits = locked_.key_inputs().size();
  hints_.erase(std::remove_if(hints_.begin(), hints_.end(),
                              [bits](const std::pair<std::size_t, bool>& h) {
                                return h.first >= bits;
                              }),
               hints_.end());
  hints_active_ = !hints_.empty();
  result_.hinted_bits = hints_.size();
}

Result OgEngine::solve_hinted(std::vector<sat::Lit> assumptions,
                              bool drop_on_unsat) {
  if (!hints_active_) return solver_->solve(assumptions);
  std::vector<sat::Lit> with = assumptions;
  for (const auto& [bit, value] : hints_) {
    // Pin BOTH key copies: a hint is a claim about the key itself, and the
    // miter's two hypothesis keys must explore the same restricted space.
    const sat::Var a = miter_->keys_a()[bit];
    const sat::Var b = miter_->keys_b()[bit];
    with.push_back(value ? sat::pos(a) : sat::neg(a));
    with.push_back(value ? sat::pos(b) : sat::neg(b));
  }
  const Result r = solver_->solve(with);
  if (r != Result::Unsat || !drop_on_unsat) return r;
  // Consistency check: Unsat under hints means they contradict the recorded
  // oracle facts. They are no longer trustworthy — drop them for the rest of
  // the run and re-ask, so a Cns verdict is only ever concluded hint-free.
  // (Diff solves pass drop_on_unsat=false: there, Unsat just means the
  // hinted subspace is fully discriminated, and the loop routes that to the
  // consistency phase where external verification arbitrates.)
  hints_active_ = false;
  arm_deadline();
  return solver_->solve(assumptions);
}

bool OgEngine::out_of_budget() const {
  return cancelled() || timer_.seconds() > budget_.time_limit_s ||
         result_.iterations >= budget_.max_iterations;
}

bool OgEngine::cancelled() const {
  return budget_.cancel != nullptr &&
         budget_.cancel->load(std::memory_order_relaxed);
}

double OgEngine::elapsed_s() const { return timer_.seconds(); }

double OgEngine::remaining_s() const {
  return std::max(0.0, budget_.time_limit_s - timer_.seconds());
}

void OgEngine::arm_deadline() { arm_deadline(*solver_); }

void OgEngine::arm_deadline(sat::Solver& solver) const {
  solver.set_time_budget(remaining_s());
}

VerifyOptions OgEngine::verify_options(bool clamp_to_remaining) const {
  VerifyOptions v = verify_options_for(budget_);
  if (clamp_to_remaining) {
    v.time_limit_s = std::min(remaining_s(), v.time_limit_s);
  }
  return v;
}

std::vector<sim::BitVec> OgEngine::query_oracle(
    const std::vector<sim::BitVec>& inputs) {
  if (bank_ != nullptr) {
    // Exact repeats of a banked sequence (shared warmup traces, recurring
    // counterexamples) are answered from the bank, not the oracle.
    if (auto banked = bank_->lookup(inputs)) {
      ++result_.replayed_queries;
      return *std::move(banked);
    }
  }
  ++result_.fresh_queries;
  std::vector<sim::BitVec> outputs = oracle_.query(inputs);
  if (bank_ != nullptr) bank_->record(inputs, outputs);
  return outputs;
}

std::vector<std::vector<sim::BitVec>> OgEngine::query_oracle_batch(
    const std::vector<std::vector<sim::BitVec>>& sequences) {
  std::vector<std::vector<sim::BitVec>> outputs(sequences.size());
  // Bank hits are answered in place; the misses go to the oracle in wide
  // batches, grouped by sequence length (query_batch requires equal-length
  // lanes).
  std::vector<std::size_t> misses;
  for (std::size_t j = 0; j < sequences.size(); ++j) {
    if (bank_ != nullptr) {
      if (auto banked = bank_->lookup(sequences[j])) {
        ++result_.replayed_queries;
        outputs[j] = *std::move(banked);
        continue;
      }
    }
    misses.push_back(j);
  }
  std::size_t group_begin = 0;
  while (group_begin < misses.size()) {
    std::size_t group_end = group_begin + 1;
    const std::size_t cycles = sequences[misses[group_begin]].size();
    while (group_end < misses.size() &&
           sequences[misses[group_end]].size() == cycles) {
      ++group_end;
    }
    std::vector<std::vector<sim::BitVec>> batch;
    batch.reserve(group_end - group_begin);
    for (std::size_t g = group_begin; g < group_end; ++g) {
      batch.push_back(sequences[misses[g]]);
    }
    std::vector<std::vector<sim::BitVec>> responses =
        oracle_.query_batch(batch);
    for (std::size_t g = group_begin; g < group_end; ++g) {
      const std::size_t j = misses[g];
      ++result_.fresh_queries;
      ++result_.batched_queries;
      if (bank_ != nullptr) bank_->record(sequences[j], responses[g - group_begin]);
      outputs[j] = std::move(responses[g - group_begin]);
    }
    ++result_.oracle_batches;
    group_begin = group_end;
  }
  return outputs;
}

void OgEngine::constrain_both_keys(const std::vector<sim::BitVec>& inputs,
                                   const std::vector<sim::BitVec>& outputs) {
  const std::vector<sat::Var>* init =
      spec_.symbolic_init ? &miter_->initial_state_vars() : nullptr;
  cnf::constrain_key_on_sequence(*solver_, locked_, miter_->keys_a(), inputs,
                                 outputs, init);
  cnf::constrain_key_on_sequence(*solver_, locked_, miter_->keys_b(), inputs,
                                 outputs, init);
}

void OgEngine::add_io(const std::vector<sim::BitVec>& inputs) {
  IoFact fact{inputs, query_oracle(inputs)};
  constrain_both_keys(fact.inputs, fact.outputs);
  io_.push_back(std::move(fact));
  ++result_.iterations;
}

void OgEngine::add_io_batch(
    const std::vector<std::vector<sim::BitVec>>& sequences) {
  std::vector<std::vector<sim::BitVec>> outputs = query_oracle_batch(sequences);
  for (std::size_t j = 0; j < sequences.size(); ++j) {
    constrain_both_keys(sequences[j], outputs[j]);
    io_.push_back(IoFact{sequences[j], std::move(outputs[j])});
    ++result_.iterations;
  }
}

std::unique_ptr<sat::PortfolioSolver> OgEngine::make_solver() const {
  auto solver = std::make_unique<sat::PortfolioSolver>(budget_.sat_workers);
  solver->set_conflict_budget(budget_.conflict_budget);
  // A cancelled job must not sit out a long solve: the budget's cancel flag
  // doubles as the solver's interrupt hook (solve returns Unknown, which the
  // loop routes to finish_timeout).
  if (budget_.cancel != nullptr) solver->set_interrupt(budget_.cancel);
  solver->set_inprocess(budget_.sat_preprocess);
  return solver;
}

void OgEngine::rebuild(std::size_t depth) {
  solver_ = make_solver();
  miter_ = std::make_unique<cnf::SequentialMiter>(*solver_, locked_,
                                                  spec_.symbolic_init);
  miter_->extend_to(depth);
  if (budget_.sat_preprocess) {
    // BVE must never touch the variables the attack reads back (key bits)
    // or later re-constrains (initial state when the deepening loop extends
    // the miter): freeze them. Everything else — the unrolled copies of the
    // circuit internals — is fair game; eliminated variables revive
    // automatically if extend_to / replayed IO mentions them again.
    for (const sat::Var v : miter_->keys_a()) solver_->set_frozen(v, true);
    for (const sat::Var v : miter_->keys_b()) solver_->set_frozen(v, true);
    for (const sat::Var v : miter_->initial_state_vars()) {
      solver_->set_frozen(v, true);
    }
    solver_->preprocess();
  }
  for (const IoFact& fact : io_) {
    constrain_both_keys(fact.inputs, fact.outputs);
  }
}

void OgEngine::extend_to(std::size_t depth) { miter_->extend_to(depth); }

std::vector<Observation> OgEngine::banked_observations() {
  std::vector<Observation> out;
  if (bank_ == nullptr) return out;
  for (Observation& obs : bank_->snapshot()) {
    // Facts from a different interface cannot appear in this bank (the
    // registry keys on the locked/reference pair), but guard anyway.
    if (obs.inputs.empty() ||
        obs.inputs[0].size() != oracle_.num_inputs()) {
      continue;
    }
    out.push_back(std::move(obs));
    // Startup constraints are prior knowledge, not avoided oracle calls:
    // counting them as replayed_queries would inflate the "queries answered
    // from the bank" statistic BENCH JSON defines as avoided oracle queries.
    ++result_.preloaded_facts;
  }
  return out;
}

void OgEngine::replay_bank() {
  for (const Observation& obs : banked_observations()) {
    constrain_both_keys(obs.inputs, obs.outputs);
    io_.push_back(IoFact{obs.inputs, obs.outputs});
  }
}

AttackResult OgEngine::finish(Outcome outcome, std::string detail) {
  result_.outcome = outcome;
  result_.seconds = timer_.seconds();
  result_.detail = std::move(detail);
  if (outcome == Outcome::Equal && !hints_.empty() && !result_.key.empty()) {
    // Ground truth is only available once a key verified: score the hints
    // against it so BENCH JSON can report how good the structural pass was.
    std::size_t correct = 0;
    for (const auto& [bit, value] : hints_) {
      if (bit < result_.key.size() && (result_.key[bit] != 0) == value) {
        ++correct;
      }
    }
    result_.hint_accuracy =
        static_cast<double>(correct) / static_cast<double>(hints_.size());
  }
  return result_;
}

AttackResult OgEngine::finish_timeout(std::string detail) {
  result_.key = candidate_;
  return finish(Outcome::Timeout, std::move(detail));
}

AttackResult OgEngine::run_dip_loop(DipStrategy& strategy) {
  rebuild(spec_.start_depth);
  replay_bank();
  if (spec_.warmup_sequences > 0 && !out_of_budget()) {
    // Simulation-guided warmup: random traces prune the hypothesis space
    // before the (expensive) discriminating-sequence search starts. Warmup
    // queries are real oracle queries, so they honour the budget too — a
    // job cancelled before its first solve must not pay any, and the batch
    // is capped at the iterations the budget has left. Stimuli are drawn in
    // the same RNG order as per-sequence warmup, and add_io_batch constrains
    // in element order, so the solver sees an identical clause stream — the
    // only change is that all bank misses ride one wide oracle pass.
    const std::uint64_t room = budget_.max_iterations - result_.iterations;
    const std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(spec_.warmup_sequences, room));
    std::vector<std::vector<sim::BitVec>> warm;
    warm.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
      warm.push_back(sim::random_stimulus(rng_, spec_.warmup_cycles,
                                          oracle_.num_inputs()));
    }
    add_io_batch(warm);
  }

  std::size_t depth = spec_.start_depth;
  std::size_t dip_rounds = 0;
  while (spec_.combinational || depth <= budget_.max_depth) {
    // DIS search at the current depth.
    bool dis_exhausted = false;
    while (!dis_exhausted) {
      if (out_of_budget()) {
        return finish_timeout(
            spec_.combinational
                ? "budget exhausted after " + std::to_string(dip_rounds) +
                      " DIP rounds"
                : "budget exhausted at depth " + std::to_string(depth));
      }
      arm_deadline();
      const Result r = solve_hinted({miter_->diff_within(depth)}, false);
      if (r == Result::Unknown) {
        return finish_timeout(
            spec_.combinational
                ? "solver conflict budget exhausted"
                : "solver budget exhausted at depth " + std::to_string(depth));
      }
      if (r == Result::Unsat) break;  // no DIP/DIS remains at this depth

      for (std::size_t d = 0; d < spec_.dips_per_round; ++d) {
        Result rr = r;
        if (d != 0) {
          // Every extra DIP of a multi-DIP round is a full solve: it gets
          // the same budget check and deadline re-arm as the first, or a
          // round with a large dips_per_round blows far past
          // time_limit_s/max_iterations.
          if (out_of_budget()) {
            return finish_timeout(
                spec_.combinational
                    ? "budget exhausted after " + std::to_string(dip_rounds) +
                          " DIP rounds"
                    : "budget exhausted at depth " + std::to_string(depth));
          }
          arm_deadline();
          rr = solve_hinted({miter_->diff_within(depth)}, false);
        }
        if (rr == Result::Unknown) {
          // Solver budget death mid-round is a timeout, not "no DIP remains"
          // — conflating the two let a starved round fall through to the
          // consistency phase and report a verdict it never earned.
          return finish_timeout(
              spec_.combinational
                  ? "solver conflict budget exhausted"
                  : "solver budget exhausted at depth " +
                        std::to_string(depth));
        }
        if (rr == Result::Unsat) break;
        add_io(miter_->extract_inputs(depth));
      }
      ++dip_rounds;

      AttackResult done;
      switch (strategy.after_round(*this, dip_rounds, &done)) {
        case DipStrategy::RoundAction::kContinue:
          break;
        case DipStrategy::RoundAction::kBreakDis:
          dis_exhausted = true;
          break;
        case DipStrategy::RoundAction::kDone:
          return done;
      }
    }

    // Keys are indistinguishable within `depth` under all recorded
    // responses: any consistent key is the attack's current answer.
    arm_deadline();
    const Result consistent = solve_hinted({}, true);
    if (consistent == Result::Unknown) {
      return finish_timeout(spec_.combinational
                                ? "consistency check exceeded solver budget"
                                : "consistency check exceeded budget");
    }
    if (consistent == Result::Unsat) {
      return finish(
          Outcome::Cns,
          spec_.combinational
              ? "no static key is consistent with the oracle responses"
              : "key space empty after " + std::to_string(io_.size()) +
                    " oracle sequences (depth " + std::to_string(depth) + ")");
    }
    const sim::BitVec key = miter_->extract_key_a();
    set_candidate(key);
    const VerifyResult v =
        verify_static_key(locked_, key, oracle_.reference(),
                          verify_options(!spec_.combinational));
    if (spec_.combinational && !hints_active_) {
      // Scan-model attacks conclude here, right or wrong: with no DIP left
      // there is nothing more the oracle can discriminate. (Only hint-free:
      // under hints, "no DIP left" covers the hinted subspace, not the key
      // space — the hint-failure branch below re-enters the search instead.)
      result_.key = key;
      return finish(v.equivalent ? Outcome::Equal : Outcome::WrongKey, "");
    }
    if (v.equivalent) {
      // Externally verified, so hints (if any) didn't have to be earned off.
      result_.key = key;
      return finish(Outcome::Equal,
                    spec_.combinational
                        ? ""
                        : "verified at depth " + std::to_string(depth));
    }
    if (hints_active_) {
      // The hinted subspace's best candidate fails on the real circuit: the
      // hints were wrong. Drop them for the rest of the run and resume the
      // search over the full key space; every terminal verdict from here on
      // is reached exactly as it would have been without hints.
      hints_active_ = false;
      if (!v.counterexample.empty()) {
        add_io(v.counterexample);
        strategy.on_refuted(*this, key);
      }
      continue;
    }
    if (!v.counterexample.empty()) {
      // The candidate fails on a real sequence: feed it back as an oracle
      // constraint (this is what drives multi-key locks to CNS).
      add_io(v.counterexample);
      strategy.on_refuted(*this, key);
      continue;  // retry at the same depth with the new constraint
    }
    // No counterexample reconstructed: deepen the search.
    depth += spec_.depth_step;
    if (depth > budget_.max_depth) break;
    if (spec_.incremental) {
      extend_to(depth);
    } else {
      rebuild(depth);
    }
  }


  result_.key = candidate_;
  return finish(candidate_.empty() ? Outcome::Fail : Outcome::WrongKey,
                "max depth reached without a verified key");
}

AttackResult DipStrategy::attack(OgEngine& engine) {
  return engine.run_dip_loop(*this);
}

void DipStrategy::on_start(OgEngine&) {}

DipStrategy::RoundAction DipStrategy::after_round(OgEngine&, std::size_t,
                                                  AttackResult*) {
  return RoundAction::kContinue;
}

void DipStrategy::on_refuted(OgEngine&, const sim::BitVec&) {}

}  // namespace cl::attack
