// DANA — Dataflow Analysis for gate-level Netlist reverse engineering
// (Albartus et al., CHES'20), the paper's Table V dataflow attack.
//
// DANA groups flip-flops into candidate high-level registers by iterative
// partition refinement on the register dependency graph: two FFs stay in
// the same cluster only while their predecessor and successor register sets
// map to the same clusters. The result is scored against ground-truth
// register groups with Normalized Mutual Information (NMI), exactly the
// metric the DANA and Cute-Lock papers report.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace cl::attack {

struct DanaOptions {
  std::size_t max_rounds = 64;
};

struct DanaResult {
  /// Final clustering: each inner vector holds DFF SignalIds of one cluster.
  std::vector<std::vector<netlist::SignalId>> clusters;
  std::size_t rounds = 0;
  double seconds = 0.0;
};

DanaResult dana_attack(const netlist::Netlist& nl, const DanaOptions& options = {});

/// Ground truth for scoring: named register groups (vectors of FF names).
using RegisterGroups = std::vector<std::vector<std::string>>;

/// Normalized Mutual Information between DANA's clustering and the ground
/// truth, computed over the FFs present in both (lock-added FFs missing from
/// the ground truth are scored as their own singleton truth groups, which is
/// how the locked-netlist evaluation penalizes structural blending).
double nmi_score(const netlist::Netlist& nl, const DanaResult& dana,
                 const RegisterGroups& truth);

}  // namespace cl::attack
