// SCOPE — oracle-free structural key inference as a Table V attack row
// (after Alrahis et al., "UNSAIL/SCOPE" line of synthesis-based constant
// propagation attacks). Thin attack-shaped wrapper over
// analysis::infer_key_hints: the inference decides bits from the synthesis
// differential alone; the oracle, when one is supplied at all, is used only
// to confirm a fully decided key (matching FALL's confirmation step). With
// no oracle the result is the per-bit verdict vector itself — the honest
// oracle-free reading, where partially decided keys report Fail with the
// decided fraction in the detail string.
#pragma once

#include "analysis/key_infer.hpp"
#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct ScopeOptions {
  AttackBudget budget;
  analysis::InferOptions infer;
};

struct ScopeResult {
  AttackResult result;
  analysis::KeyHintReport report;
  std::size_t decided = 0;  ///< bits with a definite verdict
};

/// Run the inference. `oracle` may be null (pure oracle-free mode).
/// Outcomes: Equal — every bit decided and the key verified against the
/// oracle; WrongKey — every bit decided but verification failed; Fail —
/// some bits stayed unknown (detail says how many) or no oracle was given
/// to confirm a complete key; Timeout — the budget died mid-sweep.
ScopeResult scope_attack(const netlist::Netlist& locked,
                         const SequentialOracle* oracle = nullptr,
                         const ScopeOptions& options = {});

}  // namespace cl::attack
