#include "attack/oracle.hpp"

#include <stdexcept>

namespace cl::attack {

SequentialOracle::SequentialOracle(const netlist::Netlist& original)
    : original_(original) {
  if (!original.key_inputs().empty()) {
    throw std::invalid_argument(
        "SequentialOracle: the oracle is the unlocked circuit; it must not "
        "have key inputs");
  }
}

std::vector<sim::BitVec> SequentialOracle::query(
    const std::vector<sim::BitVec>& inputs) const {
  ++queries_;
  return sim::run_sequence(original_, inputs);
}

sim::BitVec SequentialOracle::query_comb(const sim::BitVec& inputs) const {
  ++queries_;
  const auto out = sim::run_sequence(original_, {inputs});
  return out[0];
}

}  // namespace cl::attack
