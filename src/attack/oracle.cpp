#include "attack/oracle.hpp"

#include <stdexcept>

namespace cl::attack {

SequentialOracle::SequentialOracle(const netlist::Netlist& original)
    : original_(original), compiled_(original) {
  if (!original.key_inputs().empty()) {
    throw std::invalid_argument(
        "SequentialOracle: the oracle is the unlocked circuit; it must not "
        "have key inputs");
  }
}

std::vector<sim::BitVec> SequentialOracle::query(
    const std::vector<sim::BitVec>& inputs) const {
  patterns_.fetch_add(1, std::memory_order_relaxed);
  return sim::run_sequence(compiled_, inputs);
}

sim::BitVec SequentialOracle::query_comb(const sim::BitVec& inputs) const {
  patterns_.fetch_add(1, std::memory_order_relaxed);
  const auto out = sim::run_sequence(compiled_, {inputs});
  return out[0];
}

std::vector<std::vector<sim::BitVec>> SequentialOracle::query_batch(
    const std::vector<std::vector<sim::BitVec>>& sequences) const {
  patterns_.fetch_add(sequences.size(), std::memory_order_relaxed);
  return sim::run_sequences_batched(compiled_, sequences);
}

}  // namespace cl::attack
