// Cross-attack oracle observation bank.
//
// An oracle I/O fact — "applied from reset, input sequence X produces output
// sequence Y" — is a property of the *chip*, independent of any attack's
// model of the key. Table harnesses run five or more attack modes against
// the same locked instance, and without sharing, every one of them re-pays
// the same oracle queries and re-derives the same key constraints from
// scratch. The ObservationBank stores those facts per locked instance so a
// later attack can replay them as constraints (each attack encodes the fact
// under its own threat model: concrete vs symbolic reset, static key vs
// periodic schedule) before issuing any fresh oracle query.
//
// Identity: banks are keyed by a structural content hash of the locked
// netlist and the oracle's reference circuit (bank_key), so independently
// rebuilt but identical (lock, oracle) pairs — the bench Runner's jobs each
// synthesize their own copies — land in the same bank, while different
// circuits, parameters, seeds, or oracles never mix. Scan-exposed and
// sequential views of the same lock hash differently, which is exactly
// right: their I/O interfaces differ.
//
// Enabled by CUTELOCK_OBS_BANK=1 (off by default: replay changes the
// solver's path, and bank content at each attack's start depends on job
// completion order, so deterministic table output additionally needs
// CUTELOCK_JOBS=1). AttackResult records how many constraints were replayed
// from the bank vs queried fresh; bench::Runner surfaces both in
// BENCH_*.json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace cl::attack {

/// One oracle fact: inputs applied from reset, observed outputs.
struct Observation {
  std::vector<sim::BitVec> inputs;
  std::vector<sim::BitVec> outputs;
};

class ObservationBank {
 public:
  /// Record a fresh oracle fact. Exact-duplicate input sequences and records
  /// beyond the per-bank cap are dropped (replay stays linear in distinct
  /// facts and memory stays bounded). Thread-safe.
  void record(const std::vector<sim::BitVec>& inputs,
              const std::vector<sim::BitVec>& outputs);

  /// Stable copy of the current contents, in recording order. Thread-safe.
  std::vector<Observation> snapshot() const;

  /// The recorded response for exactly this input sequence, if any — an
  /// attack about to pay an oracle query answers it from the bank instead
  /// (the warmup traces and counterexamples attacks share are the common
  /// hits). Thread-safe.
  std::optional<std::vector<sim::BitVec>> lookup(
      const std::vector<sim::BitVec>& inputs) const;

  std::size_t size() const;

  /// Append this bank's facts to `out` in the versioned binary persistence
  /// format (see docs/service.md). Thread-safe.
  void serialize(std::ostream& out) const;

  /// Merge facts from a stream previously written by serialize() into this
  /// bank (dedup and the per-bank cap apply, exactly like record()). Returns
  /// false — leaving the bank with whatever facts were merged before the
  /// damage — on truncated or corrupt input. Thread-safe.
  bool deserialize(std::istream& in);

  /// Observations a single bank retains at most.
  static constexpr std::size_t k_max_observations = 4096;

 private:
  struct Entry {
    std::uint64_t hash;
    std::size_t index;  // into observations_
  };

  mutable std::mutex mu_;
  std::vector<Observation> observations_;
  std::vector<Entry> seen_;  // sorted by input-sequence hash
};

/// Structural content hash of a netlist (names, node types, fanins, DFF
/// init values, output designations).
std::uint64_t lock_instance_key(const netlist::Netlist& nl);

/// Bank identity for an attack: the locked netlist *and* the oracle's
/// reference circuit. Hashing both closes a replay hazard — facts recorded
/// against one oracle must never constrain an attack on the same locked
/// structure that queries a different chip.
std::uint64_t bank_key(const netlist::Netlist& locked,
                       const netlist::Netlist& reference);

/// Process-wide bank for the (locked, reference) pair, or nullptr when
/// CUTELOCK_OBS_BANK is not enabled. Banks live for the process lifetime (a
/// table harness is one process); the registry is thread-safe.
ObservationBank* observation_bank_for(const netlist::Netlist& locked,
                                      const netlist::Netlist& reference);

/// Registry lookup bypassing the env gate (tests and explicit wiring).
ObservationBank& observation_bank_for_key(std::uint64_t key);

/// Force the registry on for this process regardless of CUTELOCK_OBS_BANK —
/// the serve daemon's switch (cross-run caching is its whole point; it must
/// not depend on the client's environment).
void set_observation_bank_forced(bool on);

/// Keys of every bank currently in the registry (facts or not), sorted.
std::vector<std::uint64_t> observation_bank_keys();

/// Persist every registry bank to `path` (versioned binary, written to a
/// temp file and renamed so readers never see a half-written bank). Returns
/// false with a diagnostic in *error on I/O failure.
bool save_observation_banks(const std::string& path, std::string* error = nullptr);

/// Merge banks from a file written by save_observation_banks into the
/// registry, creating banks as needed. Corrupt or truncated files are
/// rejected (false + *error) without clearing facts already loaded; a
/// mid-file failure keeps the banks merged before the damage.
bool load_observation_banks(const std::string& path, std::string* error = nullptr);

}  // namespace cl::attack
