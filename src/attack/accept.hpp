// Attack-success acceptance criteria — the one-key-premise layer.
//
// Hu et al. ("On the One-Key Premise of Logic Locking") observe that the
// standard scoreboard — did the attack return THE ground-truth key? —
// systematically overstates security for multi-key schemes: a lock with
// decoy or obfuscated bits (CAC 2.0, latch-based decoys, K-Gate encoding
// classes) has many functionally correct keys, and an attack that recovers
// any of them has broken the defense even though the bit-vector comparison
// says otherwise. This module makes the criterion explicit and pluggable:
//
//  * ExactKey      — the recovered key equals the ground truth bit-for-bit
//                    (the one-key premise; kept for comparison columns).
//  * AnyPassingKey — the locked circuit under the recovered key is
//                    functionally equivalent to the original
//                    (attack::verify_static_key: randomized simulation plus
//                    a bounded SAT equivalence miter).
//  * Approximate   — the observed output corruption rate on sampled (or,
//                    for small circuits, exhaustive) patterns is at most ε.
//                    An attack on an approximate lock (SFLL-style) "wins"
//                    when remaining corruption is below the target.
//
// verify_any_key always measures everything cheap (exactness when ground
// truth is provided, corruption rate on the compiled simulator) and runs the
// equivalence check when the criterion demands it, so one call yields both
// the one-key and the multi-key verdicts for a table cell.
#pragma once

#include <optional>
#include <string>

#include "attack/result.hpp"
#include "attack/verify.hpp"
#include "netlist/netlist.hpp"

namespace cl::attack {

enum class AcceptCriterion { ExactKey, AnyPassingKey, Approximate };

/// Parse "exact" / "any" / "approx"; nullopt on anything else.
std::optional<AcceptCriterion> parse_criterion(const std::string& name);
const char* criterion_name(AcceptCriterion criterion);

struct AcceptOptions {
  AcceptCriterion criterion = AcceptCriterion::AnyPassingKey;
  /// Approximate: maximum tolerated corruption rate (fraction of sampled
  /// cycles on which any output bit differs), inclusive.
  double epsilon = 0.0;
  /// Corruption sampling: this many random sequences of this many cycles.
  std::size_t sample_sequences = 64;
  std::size_t sample_cycles = 16;
  std::uint64_t seed = 0xacceb7ULL;
  /// Enumerate EVERY input word (held for sample_cycles from reset) instead
  /// of sampling. Only honored up to 2^16 words; used by brute-force
  /// cross-check tests on small circuits.
  bool exhaustive = false;
  /// Equivalence settings for the AnyPassingKey criterion.
  VerifyOptions verify;
};

struct AcceptReport {
  /// Verdict under `criterion`.
  bool accepted = false;
  AcceptCriterion criterion = AcceptCriterion::AnyPassingKey;
  /// Tri-state facts (-1 = not evaluated): recovered key equals ground
  /// truth; locked-under-key is functionally equivalent to the original.
  int key_exact = -1;
  int any_key_pass = -1;
  /// Fraction of simulated cycles with corrupted outputs; -1 when not
  /// measured (width-mismatched key).
  double corruption_rate = -1.0;
  std::string detail;
};

/// Judge `key` against the chosen acceptance criterion. `ground_truth` may
/// be null when the evaluator does not know the lock secret (then ExactKey
/// cannot accept and key_exact stays -1). A key whose width does not match
/// the locked circuit's key port is rejected under every criterion.
AcceptReport verify_any_key(const netlist::Netlist& locked,
                            const sim::BitVec& key,
                            const netlist::Netlist& original,
                            const sim::BitVec* ground_truth,
                            const AcceptOptions& options = {});

/// Copy the report's acceptance fields into an AttackResult (key_exact,
/// any_key_pass, corruption_rate), so the verdict travels with the result
/// into tables, BENCH JSON and the service protocol.
void apply_acceptance(const AcceptReport& report, AttackResult* result);

}  // namespace cl::attack
