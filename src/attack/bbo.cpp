#include "attack/bbo.hpp"

#include <algorithm>
#include <memory>

#include "attack/verify.hpp"
#include "util/env.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::Netlist;

AttackResult bbo_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const BboOptions& options) {
  if (locked.key_inputs().empty()) {
    throw std::invalid_argument("bbo_attack: circuit has no key inputs");
  }
  if (locked.key_inputs().size() > 64) {
    // Candidate keys ride in 64-bit words throughout (key_words_for, the
    // exhaustive-space mask); wider keys would shift by >= 64 (UB).
    throw std::invalid_argument("bbo_attack: more than 64 key bits");
  }
  util::Timer timer;
  util::Rng rng(options.seed);
  AttackResult result;
  const std::size_t ki = locked.key_inputs().size();

  // Screening pool: fixed random sequences + their oracle responses, fetched
  // in one batched wide-lane query (accounting: one pattern per sequence).
  std::vector<std::vector<sim::BitVec>> stimuli;
  for (std::size_t s = 0; s < options.screen_sequences; ++s) {
    stimuli.push_back(sim::random_stimulus(rng, options.screen_cycles,
                                           oracle.num_inputs()));
  }
  const std::vector<std::vector<sim::BitVec>> responses =
      oracle.query_batch(stimuli);

  const bool exhaustive = ki <= options.exhaustive_limit;
  const std::uint64_t space = exhaustive ? (1ULL << ki) : 0;

  // The locked netlist compiles once; every screening task shares the
  // instruction stream and owns only its value buffer.
  const sim::CompiledNetlist compiled(locked);

  // Screen a batch of 64 candidate keys (lane j = candidate j); returns the
  // lane mask of survivors. Thread-safe: touches only shared-const state.
  const auto screen_batch = [&](const std::vector<std::uint64_t>& key_words)
      -> std::uint64_t {
    std::uint64_t alive = ~0ULL;
    for (std::size_t s = 0; s < stimuli.size() && alive != 0; ++s) {
      const auto words = sim::run_sequence_keyed_lanes(compiled, stimuli[s],
                                                       key_words);
      for (std::size_t c = 0; c < stimuli[s].size() && alive != 0; ++c) {
        for (std::size_t o = 0; o < responses[s][c].size(); ++o) {
          const std::uint64_t want = responses[s][c][o] ? ~0ULL : 0ULL;
          alive &= ~(words[c][o] ^ want);
        }
      }
    }
    return alive;
  };

  const auto key_words_for = [&](const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> words(ki, 0);
    for (std::size_t lane = 0; lane < keys.size(); ++lane) {
      for (std::size_t b = 0; b < ki; ++b) {
        if ((keys[lane] >> b) & 1ULL) words[b] |= 1ULL << lane;
      }
    }
    return words;
  };

  const auto finish_with = [&](std::uint64_t key_value) -> AttackResult {
    const sim::BitVec key = sim::u64_to_bits(key_value, ki);
    const VerifyResult v = verify_static_key(
        locked, key, oracle.reference(), verify_options_for(options.budget));
    result.key = key;
    result.outcome = v.equivalent ? Outcome::Equal : Outcome::WrongKey;
    result.seconds = timer.seconds();
    return result;
  };

  const std::size_t jobs =
      options.jobs != 0 ? options.jobs : util::jobs_from_env();
  // Created on first multi-batch round: tiny attacks (one screening batch,
  // the common case on table-size circuits) never pay the thread spawn.
  std::unique_ptr<util::ThreadPool> pool;

  // Rounds of up to `jobs` batches: candidates are drawn serially from the
  // RNG (the draw sequence is independent of the job count), screened in
  // parallel, then examined strictly in draw order. `tried`/`iterations`
  // advance only through the batch that decides the round, so the reported
  // numbers match a serial run exactly.
  std::uint64_t tried = 0;
  std::uint64_t next = 0;
  std::uint64_t batches_drawn = 0;
  while (true) {
    if (timer.seconds() > options.budget.time_limit_s) {
      result.outcome = Outcome::Timeout;
      result.seconds = timer.seconds();
      result.detail = "screened " + std::to_string(tried) + " keys";
      return result;
    }
    std::vector<std::vector<std::uint64_t>> round;
    for (std::size_t r = 0; r < jobs; ++r) {
      std::vector<std::uint64_t> batch;
      if (exhaustive) {
        for (int j = 0; j < 64 && next < space; ++j) batch.push_back(next++);
        if (batch.empty()) break;  // whole space drawn
      } else {
        if (batches_drawn >= options.budget.max_iterations) break;
        for (int j = 0; j < 64; ++j) {
          batch.push_back(rng.next_u64() &
                          ((ki == 64) ? ~0ULL : ((1ULL << ki) - 1)));
        }
      }
      ++batches_drawn;
      round.push_back(std::move(batch));
    }
    if (round.empty()) break;  // space or iteration budget exhausted

    std::vector<std::uint64_t> alive(round.size(), 0);
    if (jobs > 1 && round.size() > 1) {
      if (pool == nullptr) pool = std::make_unique<util::ThreadPool>(jobs);
      for (std::size_t r = 0; r < round.size(); ++r) {
        pool->submit([&, r] { alive[r] = screen_batch(key_words_for(round[r])); });
      }
      pool->wait();
    } else {
      for (std::size_t r = 0; r < round.size(); ++r) {
        alive[r] = screen_batch(key_words_for(round[r]));
      }
    }

    for (std::size_t r = 0; r < round.size(); ++r) {
      tried += round[r].size();
      ++result.iterations;
      if (alive[r] == 0) continue;
      for (std::size_t lane = 0; lane < round[r].size(); ++lane) {
        if ((alive[r] >> lane) & 1ULL) {
          const AttackResult res = finish_with(round[r][lane]);
          if (res.outcome == Outcome::Equal) return res;
          // Survivor of screening but not equivalent: keep searching.
        }
      }
    }
  }

  result.seconds = timer.seconds();
  if (exhaustive) {
    // Every static key failed the oracle screen: proved unsatisfiable.
    result.outcome = Outcome::Cns;
    result.detail = "exhausted 2^" + std::to_string(ki) +
                    " static keys; none matches the oracle";
  } else {
    result.outcome = Outcome::Fail;
    result.detail = "random search exhausted (" + std::to_string(tried) +
                    " keys screened)";
  }
  return result;
}

}  // namespace cl::attack
