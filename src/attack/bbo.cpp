#include "attack/bbo.hpp"

#include "attack/verify.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::Netlist;

AttackResult bbo_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const BboOptions& options) {
  if (locked.key_inputs().empty()) {
    throw std::invalid_argument("bbo_attack: circuit has no key inputs");
  }
  util::Timer timer;
  util::Rng rng(options.seed);
  AttackResult result;
  const std::size_t ki = locked.key_inputs().size();

  // Screening pool: fixed random sequences + their oracle responses.
  std::vector<std::vector<sim::BitVec>> stimuli;
  std::vector<std::vector<sim::BitVec>> responses;
  for (std::size_t s = 0; s < options.screen_sequences; ++s) {
    stimuli.push_back(sim::random_stimulus(rng, options.screen_cycles,
                                           oracle.num_inputs()));
    responses.push_back(oracle.query(stimuli.back()));
  }

  const bool exhaustive = ki <= options.exhaustive_limit;
  const std::uint64_t space = exhaustive ? (1ULL << ki) : 0;

  // Screen a batch of 64 candidate keys (lane j = candidate j); returns the
  // lane mask of survivors.
  const auto screen_batch = [&](const std::vector<std::uint64_t>& key_words)
      -> std::uint64_t {
    std::uint64_t alive = ~0ULL;
    for (std::size_t s = 0; s < stimuli.size() && alive != 0; ++s) {
      const auto words = sim::run_sequence_keyed_lanes(locked, stimuli[s],
                                                       key_words);
      for (std::size_t c = 0; c < stimuli[s].size() && alive != 0; ++c) {
        for (std::size_t o = 0; o < responses[s][c].size(); ++o) {
          const std::uint64_t want = responses[s][c][o] ? ~0ULL : 0ULL;
          alive &= ~(words[c][o] ^ want);
        }
      }
    }
    return alive;
  };

  const auto key_words_for = [&](const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> words(ki, 0);
    for (std::size_t lane = 0; lane < keys.size(); ++lane) {
      for (std::size_t b = 0; b < ki; ++b) {
        if ((keys[lane] >> b) & 1ULL) words[b] |= 1ULL << lane;
      }
    }
    return words;
  };

  const auto finish_with = [&](std::uint64_t key_value) -> AttackResult {
    const sim::BitVec key = sim::u64_to_bits(key_value, ki);
    const VerifyResult v = verify_static_key(
        locked, key, oracle.reference(), verify_options_for(options.budget));
    result.key = key;
    result.outcome = v.equivalent ? Outcome::Equal : Outcome::WrongKey;
    result.seconds = timer.seconds();
    return result;
  };

  std::uint64_t tried = 0;
  std::uint64_t next = 0;
  while (true) {
    if (timer.seconds() > options.budget.time_limit_s) {
      result.outcome = Outcome::Timeout;
      result.seconds = timer.seconds();
      result.detail = "screened " + std::to_string(tried) + " keys";
      return result;
    }
    std::vector<std::uint64_t> batch;
    if (exhaustive) {
      for (int j = 0; j < 64 && next < space; ++j) batch.push_back(next++);
      if (batch.empty()) break;  // whole space screened
    } else {
      for (int j = 0; j < 64; ++j) {
        batch.push_back(rng.next_u64() & ((ki == 64) ? ~0ULL : ((1ULL << ki) - 1)));
      }
      if (tried >= options.budget.max_iterations * 64) break;
    }
    const std::uint64_t alive = screen_batch(key_words_for(batch));
    tried += batch.size();
    ++result.iterations;
    if (alive != 0) {
      for (std::size_t lane = 0; lane < batch.size(); ++lane) {
        if ((alive >> lane) & 1ULL) {
          const AttackResult r = finish_with(batch[lane]);
          if (r.outcome == Outcome::Equal) return r;
          // Survivor of screening but not equivalent: keep searching.
        }
      }
    }
  }

  result.seconds = timer.seconds();
  if (exhaustive) {
    // Every static key failed the oracle screen: proved unsatisfiable.
    result.outcome = Outcome::Cns;
    result.detail = "exhausted 2^" + std::to_string(ki) +
                    " static keys; none matches the oracle";
  } else {
    result.outcome = Outcome::Fail;
    result.detail = "random search exhausted (" + std::to_string(tried) +
                    " keys screened)";
  }
  return result;
}

}  // namespace cl::attack
