#include "attack/accept.hpp"

#include <algorithm>

#include "sim/compiled.hpp"

namespace cl::attack {

namespace {

/// Corrupted-cycle fraction of `locked` under `key` against `original`.
/// Exhaustive mode holds every input word for sample_cycles from reset;
/// sampling mode draws sample_sequences random sequences. Both modes run
/// the whole pattern set through wide-lane batched passes (one pair of
/// evals retires up to 64*W sequences); exhaustive enumeration is chunked
/// so a 16-input sweep does not materialize a 65536-lane buffer.
double measure_corruption(const netlist::Netlist& locked,
                          const sim::BitVec& key,
                          const netlist::Netlist& original,
                          const AcceptOptions& options) {
  const sim::CompiledNetlist locked_c(locked);
  const sim::CompiledNetlist original_c(original);
  const std::size_t num_inputs = original.inputs().size();
  const std::size_t cycles = std::max<std::size_t>(1, options.sample_cycles);
  util::Rng rng(options.seed);

  std::uint64_t corrupted = 0, total = 0;
  const auto tally_batch = [&](const std::vector<std::vector<sim::BitVec>>&
                                   stims) {
    const auto want = sim::run_sequences_batched(original_c, stims);
    const auto got = sim::run_sequences_batched(locked_c, stims, {key});
    for (std::size_t s = 0; s < stims.size(); ++s) {
      for (std::size_t c = 0; c < want[s].size(); ++c) {
        ++total;
        if (want[s][c] != got[s][c]) ++corrupted;
      }
    }
  };

  if (options.exhaustive && num_inputs <= 16) {
    constexpr std::uint64_t k_chunk = 8192;  // 128 lane words per chunk
    const std::uint64_t words = 1ULL << num_inputs;
    for (std::uint64_t base = 0; base < words; base += k_chunk) {
      const std::uint64_t end = std::min(words, base + k_chunk);
      std::vector<std::vector<sim::BitVec>> stims;
      stims.reserve(static_cast<std::size_t>(end - base));
      for (std::uint64_t word = base; word < end; ++word) {
        stims.emplace_back(cycles, sim::u64_to_bits(word, num_inputs));
      }
      tally_batch(stims);
    }
  } else {
    std::vector<std::vector<sim::BitVec>> stims;
    stims.reserve(options.sample_sequences);
    for (std::size_t s = 0; s < options.sample_sequences; ++s) {
      stims.push_back(sim::random_stimulus(rng, cycles, num_inputs));
    }
    tally_batch(stims);
  }
  return total == 0 ? 0.0 : static_cast<double>(corrupted) / total;
}

}  // namespace

std::optional<AcceptCriterion> parse_criterion(const std::string& name) {
  if (name == "exact") return AcceptCriterion::ExactKey;
  if (name == "any") return AcceptCriterion::AnyPassingKey;
  if (name == "approx") return AcceptCriterion::Approximate;
  return std::nullopt;
}

const char* criterion_name(AcceptCriterion criterion) {
  switch (criterion) {
    case AcceptCriterion::ExactKey: return "exact";
    case AcceptCriterion::AnyPassingKey: return "any";
    case AcceptCriterion::Approximate: return "approx";
  }
  return "?";
}

AcceptReport verify_any_key(const netlist::Netlist& locked,
                            const sim::BitVec& key,
                            const netlist::Netlist& original,
                            const sim::BitVec* ground_truth,
                            const AcceptOptions& options) {
  AcceptReport report;
  report.criterion = options.criterion;
  if (key.size() != locked.key_inputs().size()) {
    report.detail = "key width " + std::to_string(key.size()) +
                    " does not match key port width " +
                    std::to_string(locked.key_inputs().size());
    return report;
  }
  if (ground_truth) {
    report.key_exact = (key == *ground_truth) ? 1 : 0;
  }
  report.corruption_rate = measure_corruption(locked, key, original, options);
  // Simulation already found a corrupted cycle: no point paying for the SAT
  // equivalence phase, the key is not a passing key.
  if (report.corruption_rate > 0.0) {
    report.any_key_pass = 0;
  } else if (options.criterion != AcceptCriterion::Approximate) {
    const VerifyResult v =
        verify_static_key(locked, key, original, options.verify);
    report.any_key_pass = v.equivalent ? 1 : 0;
  }
  switch (options.criterion) {
    case AcceptCriterion::ExactKey:
      report.accepted = report.key_exact == 1;
      if (!ground_truth) report.detail = "ground truth unknown";
      break;
    case AcceptCriterion::AnyPassingKey:
      report.accepted = report.any_key_pass == 1;
      break;
    case AcceptCriterion::Approximate:
      report.accepted = report.corruption_rate <= options.epsilon;
      break;
  }
  return report;
}

void apply_acceptance(const AcceptReport& report, AttackResult* result) {
  result->key_exact = report.key_exact;
  result->any_key_pass = report.any_key_pass;
  result->corruption_rate = report.corruption_rate;
}

}  // namespace cl::attack
