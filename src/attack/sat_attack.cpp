#include "attack/sat_attack.hpp"

#include <optional>
#include <stdexcept>

#include "attack/verify.hpp"
#include "cnf/miter.hpp"
#include "sat/portfolio.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::Netlist;
using sat::Result;

AttackResult sat_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const SatAttackOptions& options) {
  if (!locked.dffs().empty()) {
    throw std::invalid_argument(
        "sat_attack: expects a combinational (scan-exposed) circuit");
  }
  if (locked.key_inputs().empty()) {
    throw std::invalid_argument("sat_attack: circuit has no key inputs");
  }
  util::Timer timer;
  util::Rng rng(options.seed);
  AttackResult result;
  // Compiled once for the AppSAT sampling loop (per-sample compilation
  // would dominate on large netlists); other modes never simulate.
  std::optional<sim::CompiledNetlist> compiled_locked;
  if (options.mode == SatAttackOptions::Mode::AppSat) {
    compiled_locked.emplace(locked);
  }

  sat::PortfolioSolver solver(options.budget.sat_workers);
  solver.set_conflict_budget(options.budget.conflict_budget);
  cnf::SequentialMiter miter(solver, locked);
  miter.extend_to(1);

  const auto out_of_budget = [&]() {
    return timer.seconds() > options.budget.time_limit_s ||
           result.iterations >= options.budget.max_iterations;
  };
  const auto arm_deadline = [&]() {
    solver.set_time_budget(
        std::max(0.05, options.budget.time_limit_s - timer.seconds()));
  };

  // Current best candidate (for AppSAT settling and timeout reporting).
  sim::BitVec candidate;
  const auto refresh_candidate = [&]() -> bool {
    if (solver.solve() != Result::Sat) return false;
    candidate = miter.extract_key_a();
    return true;
  };

  std::size_t dip_rounds = 0;
  for (;;) {
    if (out_of_budget()) {
      result.outcome = Outcome::Timeout;
      result.key = candidate;
      result.seconds = timer.seconds();
      result.detail = "budget exhausted after " +
                      std::to_string(dip_rounds) + " DIP rounds";
      return result;
    }
    arm_deadline();
    const Result r = solver.solve({miter.diff_within(1)});
    if (r == Result::Unknown) {
      result.outcome = Outcome::Timeout;
      result.seconds = timer.seconds();
      result.detail = "solver conflict budget exhausted";
      return result;
    }
    if (r == Result::Unsat) break;  // no DIP remains

    const std::size_t dips_this_round =
        options.mode == SatAttackOptions::Mode::DoubleDip ? 2 : 1;
    for (std::size_t d = 0; d < dips_this_round; ++d) {
      const Result rr = (d == 0) ? r : solver.solve({miter.diff_within(1)});
      if (rr != Result::Sat) break;
      const sim::BitVec dip = miter.extract_inputs(1)[0];
      const sim::BitVec response = oracle.query_comb(dip);
      cnf::constrain_key_on_sequence(solver, locked, miter.keys_a(), {dip},
                                     {response});
      cnf::constrain_key_on_sequence(solver, locked, miter.keys_b(), {dip},
                                     {response});
      ++result.iterations;
    }
    ++dip_rounds;

    if (options.mode == SatAttackOptions::Mode::AppSat &&
        dip_rounds % options.appsat_sample_every == 0) {
      if (!refresh_candidate()) break;  // key space empty
      std::size_t errors = 0;
      for (std::size_t s = 0; s < options.appsat_samples; ++s) {
        const sim::BitVec x = sim::random_bits(rng, locked.inputs().size());
        const auto got =
            sim::run_sequence(*compiled_locked, {x}, {candidate})[0];
        const auto want = oracle.query_comb(x);
        if (got != want) {
          ++errors;
          // AppSAT reinforces with failing samples as additional constraints.
          cnf::constrain_key_on_sequence(solver, locked, miter.keys_a(), {x},
                                         {want});
          cnf::constrain_key_on_sequence(solver, locked, miter.keys_b(), {x},
                                         {want});
        }
      }
      const double error_rate =
          static_cast<double>(errors) / static_cast<double>(options.appsat_samples);
      if (error_rate <= options.appsat_error_threshold) {
        // Settled: report the approximate key (verified below).
        const VerifyResult v =
            verify_static_key(locked, candidate, oracle.reference(),
                              verify_options_for(options.budget));
        result.outcome = v.equivalent ? Outcome::Equal : Outcome::WrongKey;
        result.key = candidate;
        result.seconds = timer.seconds();
        result.detail = "appsat settled, error rate " + std::to_string(error_rate);
        return result;
      }
    }
  }

  // No DIP remains: any consistent key is the attack's answer.
  arm_deadline();
  const Result consistent = solver.solve();
  result.seconds = timer.seconds();
  if (consistent == Result::Unknown) {
    result.outcome = Outcome::Timeout;
    result.detail = "consistency check exceeded solver budget";
    return result;
  }
  if (consistent == Result::Unsat) {
    result.outcome = Outcome::Cns;
    result.detail = "no static key is consistent with the oracle responses";
    return result;
  }
  result.key = miter.extract_key_a();
  const VerifyResult v =
      verify_static_key(locked, result.key, oracle.reference(),
                        verify_options_for(options.budget));
  result.outcome = v.equivalent ? Outcome::Equal : Outcome::WrongKey;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace cl::attack
