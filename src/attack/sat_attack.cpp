#include "attack/sat_attack.hpp"

#include <optional>
#include <string>

#include "attack/og_engine.hpp"

namespace cl::attack {

using netlist::Netlist;
using sat::Result;

namespace {

/// Classic one-DIP-per-round scan-model SAT attack; Double-DIP is the same
/// strategy with two DIPs extracted per Sat round.
class CombDipStrategy : public DipStrategy {
 public:
  explicit CombDipStrategy(const SatAttackOptions& options)
      : options_(options) {}

  const char* name() const override {
    return options_.mode == SatAttackOptions::Mode::DoubleDip ? "double-dip"
                                                              : "sat";
  }

  Spec spec() const override {
    Spec s;
    s.combinational = true;
    s.start_depth = 1;
    s.dips_per_round =
        options_.mode == SatAttackOptions::Mode::DoubleDip ? 2 : 1;
    s.seed = options_.seed;
    s.caller = "sat_attack";
    return s;
  }

 protected:
  SatAttackOptions options_;
};

/// AppSAT (Shamsi et al., HOST'17): the classic loop plus periodic random
/// sampling; settle on the candidate once its observed error rate is low.
class AppSatStrategy : public CombDipStrategy {
 public:
  using CombDipStrategy::CombDipStrategy;

  const char* name() const override { return "appsat"; }

  void on_start(OgEngine& engine) override {
    // Compiled once for the sampling loop (per-sample compilation would
    // dominate on large netlists); the other modes never simulate.
    compiled_.emplace(engine.locked());
  }

  RoundAction after_round(OgEngine& engine, std::size_t dip_rounds,
                          AttackResult* done) override {
    if (dip_rounds % options_.appsat_sample_every != 0) {
      return RoundAction::kContinue;
    }
    if (engine.solver().solve() != Result::Sat) {
      return RoundAction::kBreakDis;  // key space empty
    }
    engine.set_candidate(engine.miter().extract_key_a());
    // All samples are drawn first (the engine RNG is untouched by oracle
    // queries, so the draw order matches per-sample querying), then both the
    // candidate simulation and the oracle travel as wide-lane batches.
    // Failing samples constrain in draw order, preserving the clause stream
    // of the per-sample loop.
    std::vector<std::vector<sim::BitVec>> samples;
    samples.reserve(options_.appsat_samples);
    for (std::size_t s = 0; s < options_.appsat_samples; ++s) {
      samples.push_back(
          {sim::random_bits(engine.rng(), engine.locked().inputs().size())});
    }
    const auto got_all = sim::run_sequences_batched(
        *compiled_, samples, {engine.candidate()});
    const auto want_all = engine.query_oracle_batch(samples);
    std::size_t errors = 0;
    for (std::size_t s = 0; s < options_.appsat_samples; ++s) {
      if (got_all[s][0] != want_all[s][0]) {
        ++errors;
        // AppSAT reinforces with failing samples as additional constraints.
        engine.constrain_both_keys(samples[s], want_all[s]);
      }
    }
    const double error_rate = static_cast<double>(errors) /
                              static_cast<double>(options_.appsat_samples);
    if (error_rate <= options_.appsat_error_threshold) {
      // Settled: report the approximate key (verified exactly).
      const VerifyResult v = verify_static_key(
          engine.locked(), engine.candidate(), engine.oracle().reference(),
          engine.verify_options(false));
      engine.result().key = engine.candidate();
      *done = engine.finish(v.equivalent ? Outcome::Equal : Outcome::WrongKey,
                            "appsat settled, error rate " +
                                std::to_string(error_rate));
      return RoundAction::kDone;
    }
    return RoundAction::kContinue;
  }

 private:
  std::optional<sim::CompiledNetlist> compiled_;
};

}  // namespace

AttackResult sat_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const SatAttackOptions& options) {
  OgEngine engine(locked, oracle, options.budget,
                  observation_bank_for(locked, oracle.reference()));
  if (!options.hints.empty()) engine.set_hints(options.hints);
  if (options.mode == SatAttackOptions::Mode::AppSat) {
    AppSatStrategy strategy(options);
    return engine.run(strategy);
  }
  CombDipStrategy strategy(options);
  return engine.run(strategy);
}

}  // namespace cl::attack
