// Black-box oracle attack (NEOS "bbo" mode): no structural insight, only
// oracle queries and locked-netlist simulation. Candidate static keys are
// screened 64 at a time with bit-parallel simulation against oracle
// responses on random input sequences; survivors are verified exactly.
// Small key spaces are enumerated exhaustively — if the whole space dies,
// the attack has *proved* no static key works (CNS).
//
// Screening parallelizes across `jobs` worker threads (the locked netlist
// is compiled once and shared): candidate batches are drawn serially from
// the RNG and examined in draw order, so the outcome, key, and iteration
// counts are identical for any job count at a fixed seed.
#pragma once

#include "attack/oracle.hpp"
#include "attack/result.hpp"

namespace cl::attack {

struct BboOptions {
  AttackBudget budget;
  std::size_t screen_sequences = 8;   // random sequences per screening pool
  std::size_t screen_cycles = 32;     // cycles per sequence
  std::size_t exhaustive_limit = 22;  // enumerate up to 2^limit keys
  std::size_t jobs = 0;               // screening threads; 0 = CUTELOCK_JOBS
  std::uint64_t seed = 0xbb0;
};

AttackResult bbo_attack(const netlist::Netlist& locked,
                        const SequentialOracle& oracle,
                        const BboOptions& options = {});

}  // namespace cl::attack
