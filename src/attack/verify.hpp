// Candidate-key verification. Every attack runs its recovered key through
// this check before claiming success, so "Equal" in the tables always means
// a genuinely working key.
#pragma once

#include <optional>

#include "attack/result.hpp"
#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace cl::attack {

struct VerifyOptions {
  std::size_t random_sequences = 32;  // fast rejection phase
  std::size_t sequence_cycles = 64;
  /// Bounded exact phase. Pure CDCL equivalence proofs grow exponentially
  /// with depth (no induction), so the default stays shallow; the heavy
  /// randomized phase carries the discriminating load beyond it.
  std::size_t sat_depth = 8;
  double time_limit_s = 5.0;          // SAT-phase wall-clock cap
  std::int64_t conflict_budget = 500'000;
  std::uint64_t seed = 0xdecafULL;
};

struct VerifyResult {
  bool equivalent = false;
  /// Counterexample input sequence when not equivalent (may be empty if the
  /// mismatch came from the SAT phase at a depth beyond reconstruction).
  std::vector<sim::BitVec> counterexample;
};

/// VerifyOptions inheriting the budget's verification caps — the one place
/// attack implementations derive verifier settings from an AttackBudget.
VerifyOptions verify_options_for(const AttackBudget& budget);

/// Is `locked` with the static `key` sequentially equivalent to `original`?
/// Phase 1: randomized simulation (cheap, catches almost everything).
/// Phase 2: SAT bounded-equivalence miter up to sat_depth frames.
VerifyResult verify_static_key(const netlist::Netlist& locked,
                               const sim::BitVec& key,
                               const netlist::Netlist& original,
                               const VerifyOptions& options = {});

}  // namespace cl::attack
