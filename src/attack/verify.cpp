#include "attack/verify.hpp"

#include <stdexcept>

#include "cnf/miter.hpp"

namespace cl::attack {

using netlist::Netlist;

VerifyOptions verify_options_for(const AttackBudget& budget) {
  VerifyOptions v;
  v.time_limit_s = budget.verify_time_limit_s;
  return v;
}

VerifyResult verify_static_key(const Netlist& locked, const sim::BitVec& key,
                               const Netlist& original,
                               const VerifyOptions& options) {
  if (key.size() != locked.key_inputs().size()) {
    throw std::invalid_argument("verify_static_key: key width mismatch");
  }
  util::Rng rng(options.seed);
  // Phase 1: randomized simulation. Both circuits compile once for all
  // trials (the levelization is the expensive part on large netlists), and
  // the trials ride wide pattern lanes: one chunk of up to 64 sequences per
  // eval pair instead of one eval pair per trial. Chunks of one lane word
  // keep the early exit cheap when divergence is common (the DIP loop's
  // refuted candidates). Trials are scanned in draw order, so the returned
  // counterexample is the one per-trial simulation would have found.
  const sim::CompiledNetlist compiled_original(original);
  const sim::CompiledNetlist compiled_locked(locked);
  for (std::size_t done = 0; done < options.random_sequences;) {
    const std::size_t chunk =
        std::min<std::size_t>(64, options.random_sequences - done);
    std::vector<std::vector<sim::BitVec>> stims;
    stims.reserve(chunk);
    for (std::size_t t = 0; t < chunk; ++t) {
      stims.push_back(sim::random_stimulus(rng, options.sequence_cycles,
                                           original.inputs().size()));
    }
    const auto want = sim::run_sequences_batched(compiled_original, stims);
    const auto got = sim::run_sequences_batched(compiled_locked, stims, {key});
    for (std::size_t t = 0; t < chunk; ++t) {
      const int diverge = sim::first_divergence(want[t], got[t]);
      if (diverge != -1) {
        VerifyResult r;
        r.equivalent = false;
        r.counterexample.assign(stims[t].begin(),
                                stims[t].begin() + diverge + 1);
        return r;
      }
    }
    done += chunk;
  }
  // Phase 2: bounded SAT equivalence with the key pinned, as an incremental
  // depth ladder — each per-depth UNSAT proof reuses the learned clauses of
  // the previous one, which is far cheaper than one monolithic deep solve.
  sat::Solver solver;
  solver.set_conflict_budget(options.conflict_budget);
  solver.set_time_budget(options.time_limit_s);
  cnf::EquivalenceMiter miter(solver, locked, original);
  for (std::size_t i = 0; i < key.size(); ++i) {
    solver.add_unit(sat::Lit(miter.keys_a()[i], key[i] == 0));
  }
  VerifyResult out;
  for (std::size_t depth = 1; depth <= options.sat_depth; ++depth) {
    miter.extend_to(depth);
    const sat::Result r = solver.solve({miter.diff_within(depth)});
    if (r == sat::Result::Sat) {
      out.equivalent = false;
      out.counterexample = miter.extract_inputs(depth);
      return out;
    }
    if (r == sat::Result::Unknown) {
      // Budget exhausted: equivalence holds up to depth-1 but is unproven
      // beyond; be conservative.
      out.equivalent = false;
      return out;
    }
  }
  out.equivalent = true;
  return out;
}

}  // namespace cl::attack
