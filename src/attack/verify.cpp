#include "attack/verify.hpp"

#include <stdexcept>

#include "cnf/miter.hpp"

namespace cl::attack {

using netlist::Netlist;

VerifyOptions verify_options_for(const AttackBudget& budget) {
  VerifyOptions v;
  v.time_limit_s = budget.verify_time_limit_s;
  return v;
}

VerifyResult verify_static_key(const Netlist& locked, const sim::BitVec& key,
                               const Netlist& original,
                               const VerifyOptions& options) {
  if (key.size() != locked.key_inputs().size()) {
    throw std::invalid_argument("verify_static_key: key width mismatch");
  }
  util::Rng rng(options.seed);
  // Phase 1: randomized simulation. Both circuits compile once for all
  // trials (the levelization is the expensive part on large netlists).
  const sim::CompiledNetlist compiled_original(original);
  const sim::CompiledNetlist compiled_locked(locked);
  for (std::size_t trial = 0; trial < options.random_sequences; ++trial) {
    const auto stim = sim::random_stimulus(rng, options.sequence_cycles,
                                           original.inputs().size());
    const auto want = sim::run_sequence(compiled_original, stim);
    const auto got = sim::run_sequence(compiled_locked, stim, {key});
    const int diverge = sim::first_divergence(want, got);
    if (diverge != -1) {
      VerifyResult r;
      r.equivalent = false;
      r.counterexample.assign(stim.begin(), stim.begin() + diverge + 1);
      return r;
    }
  }
  // Phase 2: bounded SAT equivalence with the key pinned, as an incremental
  // depth ladder — each per-depth UNSAT proof reuses the learned clauses of
  // the previous one, which is far cheaper than one monolithic deep solve.
  sat::Solver solver;
  solver.set_conflict_budget(options.conflict_budget);
  solver.set_time_budget(options.time_limit_s);
  cnf::EquivalenceMiter miter(solver, locked, original);
  for (std::size_t i = 0; i < key.size(); ++i) {
    solver.add_unit(sat::Lit(miter.keys_a()[i], key[i] == 0));
  }
  VerifyResult out;
  for (std::size_t depth = 1; depth <= options.sat_depth; ++depth) {
    miter.extend_to(depth);
    const sat::Result r = solver.solve({miter.diff_within(depth)});
    if (r == sat::Result::Sat) {
      out.equivalent = false;
      out.counterexample = miter.extract_inputs(depth);
      return out;
    }
    if (r == sat::Result::Unknown) {
      // Budget exhausted: equivalence holds up to depth-1 but is unproven
      // beyond; be conservative.
      out.equivalent = false;
      return out;
    }
  }
  out.equivalent = true;
  return out;
}

}  // namespace cl::attack
