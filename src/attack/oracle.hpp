// The attacker's oracle: a working chip bought off the market. It evaluates
// the *original* (unlocked) circuit on attacker-chosen input sequences from
// reset. The attacker never sees the key schedule or the internal state —
// only input/output behaviour — matching the paper's threat model.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace cl::attack {

class SequentialOracle {
 public:
  explicit SequentialOracle(const netlist::Netlist& original);

  /// Outputs for an input sequence applied from reset.
  std::vector<sim::BitVec> query(const std::vector<sim::BitVec>& inputs) const;

  /// Scan-mode combinational query (for circuits prepared with
  /// scan_expose()): single-cycle evaluation.
  sim::BitVec query_comb(const sim::BitVec& inputs) const;

  std::uint64_t num_queries() const { return queries_; }
  std::size_t num_inputs() const { return original_.inputs().size(); }
  std::size_t num_outputs() const { return original_.outputs().size(); }
  const netlist::Netlist& reference() const { return original_; }

 private:
  const netlist::Netlist& original_;
  mutable std::uint64_t queries_ = 0;
};

}  // namespace cl::attack
