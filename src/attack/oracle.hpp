// The attacker's oracle: a working chip bought off the market. It evaluates
// the *original* (unlocked) circuit on attacker-chosen input sequences from
// reset. The attacker never sees the key schedule or the internal state —
// only input/output behaviour — matching the paper's threat model.
//
// The reference circuit is compiled once (sim::CompiledNetlist), so repeated
// queries skip per-query levelization, and query_batch() evaluates many
// sequences in one wide-lane pass.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "sim/sequence.hpp"

namespace cl::attack {

class SequentialOracle {
 public:
  explicit SequentialOracle(const netlist::Netlist& original);

  /// Outputs for an input sequence applied from reset.
  std::vector<sim::BitVec> query(const std::vector<sim::BitVec>& inputs) const;

  /// Scan-mode combinational query (for circuits prepared with
  /// scan_expose()): single-cycle evaluation.
  sim::BitVec query_comb(const sim::BitVec& inputs) const;

  /// Batched query: `sequences.size()` independent input sequences (equal
  /// length) evaluated in one wide-lane pass. Element j of the result equals
  /// query(sequences[j]).
  std::vector<std::vector<sim::BitVec>> query_batch(
      const std::vector<std::vector<sim::BitVec>>& sequences) const;

  /// Oracle budget accounting in *patterns*: every input sequence applied
  /// from reset counts once, whether it arrived through query(),
  /// query_comb(), or a lane of query_batch(). Counting lanes (not call
  /// sites) keeps attack-budget comparisons honest as lane width grows.
  /// Atomic because the service's circuit cache shares one oracle across
  /// concurrent jobs (the compiled netlist itself is immutable after
  /// construction, so const queries are otherwise race-free).
  std::uint64_t num_queries() const {
    return patterns_.load(std::memory_order_relaxed);
  }
  std::size_t num_inputs() const { return original_.inputs().size(); }
  std::size_t num_outputs() const { return original_.outputs().size(); }
  const netlist::Netlist& reference() const { return original_; }

 private:
  const netlist::Netlist& original_;
  sim::CompiledNetlist compiled_;
  mutable std::atomic<std::uint64_t> patterns_{0};
};

}  // namespace cl::attack
