#include "attack/dana.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "netlist/topo.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::Netlist;
using netlist::SignalId;

DanaResult dana_attack(const Netlist& nl, const DanaOptions& options) {
  util::Timer timer;
  DanaResult out;
  const std::vector<SignalId>& ffs = nl.dffs();
  const std::size_t n = ffs.size();
  if (n == 0) {
    out.seconds = timer.seconds();
    return out;
  }
  std::unordered_map<SignalId, std::size_t> ff_index;
  for (std::size_t i = 0; i < n; ++i) ff_index.emplace(ffs[i], i);

  // Register dependency graph: preds[i] = FFs feeding FF i's next-state
  // cone; succs derived by transposition.
  const auto deps = netlist::dff_dependencies(nl);
  std::vector<std::vector<std::size_t>> preds(n), succs(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (SignalId q : deps[i]) {
      const std::size_t j = ff_index.at(q);
      preds[i].push_back(j);
      succs[j].push_back(i);
    }
  }

  // Initial partition by structural shape — (in-degree, out-degree,
  // self-loop) over the register graph — then coarsest refinement by the
  // (predecessor-cluster set, successor-cluster set) signature until a
  // fixpoint. The shape seeding mirrors DANA's use of structural register
  // characteristics to bootstrap the grouping.
  std::vector<std::size_t> cluster(n, 0);
  {
    std::map<std::tuple<std::size_t, std::size_t, bool>, std::size_t> shapes;
    for (std::size_t i = 0; i < n; ++i) {
      const bool self =
          std::find(preds[i].begin(), preds[i].end(), i) != preds[i].end();
      const auto key = std::make_tuple(preds[i].size(), succs[i].size(), self);
      const auto it = shapes.find(key);
      if (it == shapes.end()) {
        cluster[i] = shapes.size();
        shapes.emplace(key, cluster[i]);
      } else {
        cluster[i] = it->second;
      }
    }
  }
  std::size_t num_clusters = 0;
  for (std::size_t c : cluster) num_clusters = std::max(num_clusters, c + 1);
  for (out.rounds = 0; out.rounds < options.max_rounds; ++out.rounds) {
    std::map<std::tuple<std::size_t, std::vector<std::size_t>,
                        std::vector<std::size_t>>,
             std::size_t>
        signature_map;
    std::vector<std::size_t> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<std::size_t> ps, ss;
      ps.reserve(preds[i].size());
      for (std::size_t j : preds[i]) ps.push_back(cluster[j]);
      for (std::size_t j : succs[i]) ss.push_back(cluster[j]);
      std::sort(ps.begin(), ps.end());
      ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
      std::sort(ss.begin(), ss.end());
      ss.erase(std::unique(ss.begin(), ss.end()), ss.end());
      const auto key = std::make_tuple(cluster[i], std::move(ps), std::move(ss));
      const auto it = signature_map.find(key);
      if (it == signature_map.end()) {
        const std::size_t id = signature_map.size();
        signature_map.emplace(key, id);
        next[i] = id;
      } else {
        next[i] = it->second;
      }
    }
    const std::size_t new_count = signature_map.size();
    const bool stable = (new_count == num_clusters) && (next == cluster);
    cluster = std::move(next);
    num_clusters = new_count;
    if (stable) break;
  }

  out.clusters.assign(num_clusters, {});
  for (std::size_t i = 0; i < n; ++i) out.clusters[cluster[i]].push_back(ffs[i]);
  out.seconds = timer.seconds();
  return out;
}

double nmi_score(const Netlist& nl, const DanaResult& dana,
                 const RegisterGroups& truth) {
  // Element universe: all DFFs of the netlist. Truth labels from the group
  // table; FFs absent from the table become singleton truth groups.
  std::unordered_map<std::string, int> truth_label;
  int next_label = 0;
  for (const auto& group : truth) {
    for (const std::string& name : group) truth_label[name] = next_label;
    ++next_label;
  }
  std::vector<int> x;  // DANA cluster per FF
  std::vector<int> y;  // truth label per FF
  int cluster_id = 0;
  std::unordered_map<SignalId, int> dana_cluster;
  for (const auto& cl : dana.clusters) {
    for (SignalId s : cl) dana_cluster[s] = cluster_id;
    ++cluster_id;
  }
  for (SignalId q : nl.dffs()) {
    const auto it = dana_cluster.find(q);
    if (it == dana_cluster.end()) continue;
    x.push_back(it->second);
    const auto lt = truth_label.find(nl.signal_name(q));
    if (lt != truth_label.end()) {
      y.push_back(lt->second);
    } else {
      y.push_back(next_label++);  // lock-added FF: its own truth group
    }
  }
  const std::size_t n = x.size();
  if (n == 0) return 0.0;

  std::map<int, double> px, py;
  std::map<std::pair<int, int>, double> pxy;
  for (std::size_t i = 0; i < n; ++i) {
    px[x[i]] += 1.0;
    py[y[i]] += 1.0;
    pxy[{x[i], y[i]}] += 1.0;
  }
  const double dn = static_cast<double>(n);
  double hx = 0, hy = 0, mi = 0;
  for (auto& [k, v] : px) {
    v /= dn;
    hx -= v * std::log(v);
  }
  for (auto& [k, v] : py) {
    v /= dn;
    hy -= v * std::log(v);
  }
  for (auto& [k, v] : pxy) {
    v /= dn;
    mi += v * std::log(v / (px[k.first] * py[k.second]));
  }
  if (hx <= 0.0 && hy <= 0.0) {
    // Both partitions trivial: identical iff both single-cluster.
    return 1.0;
  }
  if (hx <= 0.0 || hy <= 0.0) return 0.0;
  return std::max(0.0, std::min(1.0, 2.0 * mi / (hx + hy)));
}

}  // namespace cl::attack
