#include "attack/periodic_attack.hpp"

#include <algorithm>
#include <utility>

#include "attack/og_engine.hpp"
#include "cnf/encoder.hpp"
#include "cnf/miter.hpp"
#include "netlist/topo.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::DffInit;
using netlist::Netlist;
using netlist::SignalId;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

namespace {

/// Constrain: running `nl` with the periodic schedule given by `slots`
/// (frame t uses slots[t % p]) on the concrete `inputs` produces `outputs`.
void constrain_schedule(Solver& solver, const Netlist& nl,
                        const std::vector<std::vector<Var>>& slots,
                        const std::vector<sim::BitVec>& inputs,
                        const std::vector<sim::BitVec>& outputs) {
  std::vector<Var> state;
  const std::vector<SignalId> order = netlist::topo_order(nl);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    cnf::FrameSources src;
    src.keys = slots[t % slots.size()];
    if (t == 0) {
      state.reserve(nl.dffs().size());
      for (SignalId d : nl.dffs()) {
        const Var v = solver.new_var();
        if (nl.dff_init(d) == DffInit::Zero) cnf::encode_const(solver, v, false);
        else if (nl.dff_init(d) == DffInit::One) cnf::encode_const(solver, v, true);
        state.push_back(v);
      }
    }
    src.states = state;
    const cnf::FrameVars fv =
        cnf::encode_frame(solver, nl, std::move(src), order);
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) {
      solver.add_unit(Lit(fv.var[nl.inputs()[i]], inputs[t][i] == 0));
    }
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      solver.add_unit(Lit(fv.var[nl.outputs()[o]], outputs[t][o] == 0));
    }
    std::vector<Var> next;
    next.reserve(nl.dffs().size());
    for (SignalId d : nl.dffs()) next.push_back(fv.var[nl.dff_input(d)]);
    state = std::move(next);
  }
}

/// Heavy randomized validation of a recovered schedule. Takes pre-compiled
/// circuits: the caller tests many schedules against the same pair.
bool schedule_works(const sim::CompiledNetlist& locked,
                    const sim::CompiledNetlist& original,
                    const std::vector<sim::BitVec>& schedule, util::Rng& rng,
                    std::vector<sim::BitVec>* counterexample) {
  for (int trial = 0; trial < 48; ++trial) {
    const auto stim =
        sim::random_stimulus(rng, 64, original.inputs().size());
    std::vector<sim::BitVec> keys;
    keys.reserve(stim.size());
    for (std::size_t t = 0; t < stim.size(); ++t) {
      keys.push_back(schedule[t % schedule.size()]);
    }
    const auto want = sim::run_sequence(original, stim);
    const auto got = sim::run_sequence(locked, stim, keys);
    const int diverge = sim::first_divergence(want, got);
    if (diverge != -1) {
      counterexample->assign(stim.begin(), stim.begin() + diverge + 1);
      return false;
    }
  }
  return true;
}

/// Adaptive periodic-key attacker: the one strategy whose hypothesis is not
/// a static key but a schedule K[t mod p], swept over periods p. It replaces
/// the engine's shared DIP loop wholesale and uses the engine services —
/// budget/deadline arming, bank-aware oracle queries, iteration accounting,
/// solver factory — directly.
class PeriodicScheduleStrategy : public DipStrategy {
 public:
  explicit PeriodicScheduleStrategy(const PeriodicAttackOptions& options)
      : options_(options) {}

  const char* name() const override { return "periodic"; }

  Spec spec() const override {
    Spec s;
    s.seed = 0x9e410d1c;  // schedule-validation RNG (historical constant)
    s.caller = "periodic_key_attack";
    return s;
  }

  AttackResult attack(OgEngine& engine) override {
    const Netlist& locked = engine.locked();
    const std::size_t ki = locked.key_inputs().size();
    const sim::CompiledNetlist compiled_locked(locked);
    const sim::CompiledNetlist compiled_reference(engine.oracle().reference());

    // Shared pool of oracle responses, reused across period hypotheses.
    // Banked facts from earlier attacks on this instance join it for free.
    std::vector<std::pair<std::vector<sim::BitVec>, std::vector<sim::BitVec>>>
        io;
    for (Observation& obs : engine.banked_observations()) {
      io.emplace_back(std::move(obs.inputs), std::move(obs.outputs));
    }
    const auto add_io = [&](const std::vector<sim::BitVec>& inputs) {
      io.emplace_back(inputs, engine.query_oracle(inputs));
      ++engine.result().iterations;
    };
    // Seed with a few random traces long enough to cover every hypothesis,
    // batched into one wide oracle pass (the stimuli were always drawn
    // unconditionally, so the RNG stream is unchanged).
    {
      std::vector<std::vector<sim::BitVec>> seeds;
      seeds.reserve(4);
      for (int i = 0; i < 4; ++i) {
        seeds.push_back(sim::random_stimulus(engine.rng(),
                                             2 * options_.max_period + 6,
                                             engine.oracle().num_inputs()));
      }
      auto outs = engine.query_oracle_batch(seeds);
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        io.emplace_back(std::move(seeds[i]), std::move(outs[i]));
        ++engine.result().iterations;
      }
    }

    for (std::size_t period = 1; period <= options_.max_period; ++period) {
      const auto solver = engine.make_solver();
      std::vector<std::vector<Var>> slots(period);
      for (auto& slot : slots) {
        for (std::size_t b = 0; b < ki; ++b) slot.push_back(solver->new_var());
      }
      std::size_t constrained = 0;
      const auto sync = [&]() {
        while (constrained < io.size()) {
          constrain_schedule(*solver, locked, slots, io[constrained].first,
                             io[constrained].second);
          ++constrained;
        }
      };
      for (;;) {
        if (engine.out_of_budget()) {
          return engine.finish_timeout("budget exhausted at period " +
                                       std::to_string(period));
        }
        sync();
        engine.arm_deadline(*solver);
        const Result r = solver->solve();
        if (r == Result::Unknown) {
          return engine.finish_timeout("");
        }
        if (r == Result::Unsat) break;  // period hypothesis refuted

        std::vector<sim::BitVec> schedule;
        for (const auto& slot : slots) {
          schedule.push_back(cnf::extract_bits(*solver, slot));
        }
        std::vector<sim::BitVec> counterexample;
        if (schedule_works(compiled_locked, compiled_reference, schedule,
                           engine.rng(), &counterexample)) {
          recovered_period = period;
          recovered_schedule = std::move(schedule);
          if (!recovered_schedule.empty()) {
            engine.result().key = recovered_schedule[0];
          }
          return engine.finish(Outcome::Equal, "schedule recovered at period " +
                                                   std::to_string(period));
        }
        add_io(counterexample);
      }
    }
    return engine.finish(Outcome::Cns,
                         "no periodic schedule up to period " +
                             std::to_string(options_.max_period) +
                             " is consistent with the oracle");
  }

  std::size_t recovered_period = 0;
  std::vector<sim::BitVec> recovered_schedule;

 private:
  PeriodicAttackOptions options_;
};

}  // namespace

PeriodicAttackResult periodic_key_attack(const Netlist& locked,
                                         const SequentialOracle& oracle,
                                         const PeriodicAttackOptions& options) {
  PeriodicAttackResult out;
  OgEngine engine(locked, oracle, options.budget,
                  observation_bank_for(locked, oracle.reference()));
  PeriodicScheduleStrategy strategy(options);
  out.result = engine.run(strategy);
  out.recovered_period = strategy.recovered_period;
  out.recovered_schedule = std::move(strategy.recovered_schedule);
  return out;
}

}  // namespace cl::attack
