#include "attack/seq_attack.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "attack/verify.hpp"
#include "cnf/miter.hpp"
#include "sat/portfolio.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::Netlist;
using sat::Result;

namespace {

/// One oracle-constrained IO pair, replayed when the solver is rebuilt.
struct IoConstraint {
  std::vector<sim::BitVec> inputs;
  std::vector<sim::BitVec> outputs;
};

struct Engine {
  std::unique_ptr<sat::Solver> solver;
  std::unique_ptr<cnf::SequentialMiter> miter;
};

void rebuild(Engine& e, const Netlist& locked, const SeqAttackOptions& options,
             const std::vector<IoConstraint>& io, std::size_t depth) {
  e.solver = std::make_unique<sat::PortfolioSolver>(options.budget.sat_workers);
  e.solver->set_conflict_budget(options.budget.conflict_budget);
  e.miter = std::make_unique<cnf::SequentialMiter>(*e.solver, locked,
                                                   options.symbolic_init);
  e.miter->extend_to(depth);
  const std::vector<sat::Var>* init =
      options.symbolic_init ? &e.miter->initial_state_vars() : nullptr;
  for (const IoConstraint& c : io) {
    cnf::constrain_key_on_sequence(*e.solver, locked, e.miter->keys_a(),
                                   c.inputs, c.outputs, init);
    cnf::constrain_key_on_sequence(*e.solver, locked, e.miter->keys_b(),
                                   c.inputs, c.outputs, init);
  }
}

}  // namespace

AttackResult seq_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const SeqAttackOptions& options) {
  if (locked.key_inputs().empty()) {
    throw std::invalid_argument("seq_attack: circuit has no key inputs");
  }
  util::Timer timer;
  AttackResult result;
  std::vector<IoConstraint> io;
  sim::BitVec last_candidate;

  Engine e;
  rebuild(e, locked, options, io, options.start_depth);
  std::size_t depth = options.start_depth;
  util::Rng rng(options.seed);

  const auto out_of_time = [&]() {
    return timer.seconds() > options.budget.time_limit_s ||
           result.iterations >= options.budget.max_iterations;
  };
  const auto remaining_s = [&]() {
    return std::max(0.05, options.budget.time_limit_s - timer.seconds());
  };
  const auto verify_opts = [&]() {
    VerifyOptions v = verify_options_for(options.budget);
    v.time_limit_s = std::min(remaining_s(), v.time_limit_s);
    return v;
  };
  const auto add_io = [&](const std::vector<sim::BitVec>& inputs) {
    IoConstraint c{inputs, oracle.query(inputs)};
    const std::vector<sat::Var>* init =
        options.symbolic_init ? &e.miter->initial_state_vars() : nullptr;
    cnf::constrain_key_on_sequence(*e.solver, locked, e.miter->keys_a(),
                                   c.inputs, c.outputs, init);
    cnf::constrain_key_on_sequence(*e.solver, locked, e.miter->keys_b(),
                                   c.inputs, c.outputs, init);
    io.push_back(std::move(c));
    ++result.iterations;
  };

  // Simulation-guided warmup: random traces prune the hypothesis space
  // before the (expensive) discriminating-sequence search starts.
  for (std::size_t w = 0; w < options.warmup_sequences; ++w) {
    add_io(sim::random_stimulus(rng, options.warmup_cycles,
                                oracle.num_inputs()));
  }

  while (depth <= options.budget.max_depth) {
    // DIS loop at the current depth.
    for (;;) {
      if (out_of_time()) {
        result.outcome = Outcome::Timeout;
        result.key = last_candidate;
        result.seconds = timer.seconds();
        result.detail = "budget exhausted at depth " + std::to_string(depth);
        return result;
      }
      e.solver->set_time_budget(remaining_s());
      const Result r = e.solver->solve({e.miter->diff_within(depth)});
      if (r == Result::Unknown) {
        result.outcome = Outcome::Timeout;
        result.seconds = timer.seconds();
        result.detail = "solver budget exhausted at depth " + std::to_string(depth);
        return result;
      }
      if (r == Result::Unsat) break;
      add_io(e.miter->extract_inputs(depth));
    }

    // Keys are indistinguishable up to `depth` under all recorded responses.
    e.solver->set_time_budget(remaining_s());
    const Result consistent = e.solver->solve();
    if (consistent == Result::Unknown) {
      result.outcome = Outcome::Timeout;
      result.seconds = timer.seconds();
      result.detail = "consistency check exceeded budget";
      return result;
    }
    if (consistent == Result::Unsat) {
      result.outcome = Outcome::Cns;
      result.seconds = timer.seconds();
      result.detail = "key space empty after " + std::to_string(io.size()) +
                      " oracle sequences (depth " + std::to_string(depth) + ")";
      return result;
    }
    const sim::BitVec key = e.miter->extract_key_a();
    last_candidate = key;
    const VerifyResult v =
        verify_static_key(locked, key, oracle.reference(), verify_opts());
    if (v.equivalent) {
      result.outcome = Outcome::Equal;
      result.key = key;
      result.seconds = timer.seconds();
      result.detail = "verified at depth " + std::to_string(depth);
      return result;
    }
    if (!v.counterexample.empty()) {
      // The candidate fails on a real sequence: feed it back as an oracle
      // constraint (this is what drives multi-key locks to CNS).
      add_io(v.counterexample);
      if (options.incremental) {
        // KC2-style: additionally block this exact wrong key.
        std::vector<sat::Lit> block;
        for (std::size_t i = 0; i < key.size(); ++i) {
          block.push_back(sat::Lit(e.miter->keys_a()[i], key[i] != 0));
        }
        e.solver->add_clause(block);
      }
      continue;  // retry at the same depth with the new constraint
    }
    // No counterexample reconstructed: deepen the search.
    depth += options.depth_step;
    if (options.incremental) {
      e.miter->extend_to(depth);
    } else {
      rebuild(e, locked, options, io, depth);
    }
  }

  result.outcome = last_candidate.empty() ? Outcome::Fail : Outcome::WrongKey;
  result.key = last_candidate;
  result.seconds = timer.seconds();
  result.detail = "max depth reached without a verified key";
  return result;
}

AttackResult bmc_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = false;
  o.symbolic_init = false;
  return seq_attack(locked, oracle, o);
}

AttackResult kc2_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = true;
  o.symbolic_init = false;
  return seq_attack(locked, oracle, o);
}

AttackResult rane_attack(const Netlist& locked, const SequentialOracle& oracle,
                         const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = false;
  o.symbolic_init = true;
  // The symbolic reset state multiplies the hypothesis space; lean harder
  // on the simulation-guided preprocessing.
  o.warmup_sequences = 8;
  o.warmup_cycles = 16;
  return seq_attack(locked, oracle, o);
}

}  // namespace cl::attack
