#include "attack/seq_attack.hpp"

#include "attack/og_engine.hpp"

namespace cl::attack {

using netlist::Netlist;

namespace {

/// BMC / KC2 / RANE: the sequential DIS loop. The three differ only in
/// Spec flags (incremental solver, symbolic reset state, warmup volume) and
/// in KC2's wrong-candidate blocking clause.
class SeqDipStrategy : public DipStrategy {
 public:
  explicit SeqDipStrategy(const SeqAttackOptions& options)
      : options_(options) {}

  const char* name() const override {
    if (options_.symbolic_init) return "rane";
    return options_.incremental ? "kc2" : "bmc";
  }

  Spec spec() const override {
    Spec s;
    s.symbolic_init = options_.symbolic_init;
    s.incremental = options_.incremental;
    s.start_depth = options_.start_depth;
    s.depth_step = options_.depth_step;
    s.warmup_sequences = options_.warmup_sequences;
    s.warmup_cycles = options_.warmup_cycles;
    s.seed = options_.seed;
    s.caller = "seq_attack";
    return s;
  }

  void on_refuted(OgEngine& engine, const sim::BitVec& key) override {
    if (!options_.incremental) return;
    // KC2-style: additionally block this exact wrong key.
    std::vector<sat::Lit> block;
    for (std::size_t i = 0; i < key.size(); ++i) {
      block.push_back(sat::Lit(engine.miter().keys_a()[i], key[i] != 0));
    }
    engine.solver().add_clause(block);
  }

 private:
  SeqAttackOptions options_;
};

}  // namespace

AttackResult seq_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const SeqAttackOptions& options) {
  OgEngine engine(locked, oracle, options.budget,
                  observation_bank_for(locked, oracle.reference()));
  SeqDipStrategy strategy(options);
  return engine.run(strategy);
}

AttackResult bmc_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = false;
  o.symbolic_init = false;
  return seq_attack(locked, oracle, o);
}

AttackResult kc2_attack(const Netlist& locked, const SequentialOracle& oracle,
                        const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = true;
  o.symbolic_init = false;
  return seq_attack(locked, oracle, o);
}

AttackResult rane_attack(const Netlist& locked, const SequentialOracle& oracle,
                         const AttackBudget& budget) {
  SeqAttackOptions o;
  o.budget = budget;
  o.incremental = false;
  o.symbolic_init = true;
  // The symbolic reset state multiplies the hypothesis space; lean harder
  // on the simulation-guided preprocessing.
  o.warmup_sequences = 8;
  o.warmup_cycles = 16;
  return seq_attack(locked, oracle, o);
}

}  // namespace cl::attack
