// Attack outcome taxonomy, mirroring the paper's colour legend:
//   Equal    (green)      — correct key recovered and verified
//   Cns      (light red)  — "condition not solvable": the attack proved that
//                           no static key is consistent with the oracle
//   WrongKey (deeper red)  — a key was reported but fails verification
//   Fail     (darkest red) — the attack aborted without any key
//   Timeout  (yellow)      — budget exhausted with no verdict ("N/A")
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/sequence.hpp"

namespace cl::attack {

enum class Outcome : std::uint8_t { Equal, Cns, WrongKey, Fail, Timeout };

/// Table label in the paper's notation ("Equal", "CNS", "x..x", "FAIL",
/// "N/A").
const char* outcome_label(Outcome o);

/// True when the defense held (anything but Equal).
inline bool defense_held(Outcome o) { return o != Outcome::Equal; }

struct AttackResult {
  Outcome outcome = Outcome::Fail;
  sim::BitVec key;             // reported key, when any
  double seconds = 0.0;        // wall-clock attack time
  std::uint64_t iterations = 0;  // DIPs / oracle queries / candidates
  /// Oracle-query accounting for engine-based attacks (attack::OgEngine):
  /// `replayed_queries` counts queries the attack was about to pay that were
  /// answered from the cross-attack ObservationBank instead (genuinely
  /// avoided oracle calls); `fresh_queries` counts input sequences actually
  /// sent to the oracle; `preloaded_facts` counts banked facts installed as
  /// startup constraints before the first solve (prior knowledge, not
  /// avoided queries — the attack never asked for them). All zero for
  /// attacks that do not run on the engine (BBO, FALL, DANA). Surfaced in
  /// BENCH_*.json.
  std::uint64_t replayed_queries = 0;
  std::uint64_t fresh_queries = 0;
  std::uint64_t preloaded_facts = 0;
  /// Wide-lane oracle accounting: of the fresh_queries above,
  /// `batched_queries` counts the sequences that travelled inside a
  /// query_batch() pass (each lane counts once, same unit as fresh_queries),
  /// and `oracle_batches` counts the passes themselves. A fully batched
  /// attack phase retires up to 64*W sequences per pass for one eval charge.
  /// Both zero for attacks (or phases) that query one sequence at a time.
  std::uint64_t batched_queries = 0;
  std::uint64_t oracle_batches = 0;
  /// Key bits pinned as startup unit assumptions from a structural
  /// analysis::KeyHintReport (CUTELOCK_KEY_HINTS=1; forced off in stable
  /// mode). Zero when no hints were injected.
  std::uint64_t hinted_bits = 0;
  /// Fraction of injected hints matching the verified key, computed when
  /// the attack ends Equal with hints active; -1 = not applicable.
  double hint_accuracy = -1.0;
  /// Acceptance-criterion facts filled by attack::apply_acceptance when an
  /// evaluation harness judges the reported key (see attack/accept.hpp);
  /// -1 = not evaluated. `key_exact`: key equals ground truth (the one-key
  /// premise). `any_key_pass`: key is functionally correct regardless of
  /// ground truth. `corruption_rate`: observed output-corruption fraction.
  int key_exact = -1;
  int any_key_pass = -1;
  double corruption_rate = -1.0;
  std::string detail;          // free-form diagnostics

  std::string summary() const;
};

/// Budget shared by all attacks. Attacks stop with Timeout when exceeded.
struct AttackBudget {
  double time_limit_s = 20.0;
  std::uint64_t max_iterations = 2000;
  std::size_t max_depth = 64;          // sequential unroll bound
  std::int64_t conflict_budget = 2'000'000;  // SAT conflicts per solve
  /// Wall cap of each candidate-key verification an attack runs (the SAT
  /// phase of verify_static_key). Kept separate from time_limit_s so bench
  /// harnesses can trade wall deadlines for deterministic budgets.
  double verify_time_limit_s = 5.0;
  /// Diversified CDCL workers racing each solver call
  /// (sat::PortfolioSolver); 1 = single deterministic solver. Seeded from
  /// CUTELOCK_SAT_PORTFOLIO by the bench harnesses and the CLI, and forced
  /// to 1 under CUTELOCK_BENCH_STABLE=1 (a race winner's model is not
  /// deterministic).
  std::size_t sat_workers = 1;
  /// SAT pre/inprocessing: run bounded variable elimination (with model
  /// reconstruction) on each rebuilt miter before search, and
  /// subsumption/vivification at restart boundaries. Seeded from
  /// CUTELOCK_SAT_PREPROCESS by the bench harnesses and the CLI, and forced
  /// off under CUTELOCK_BENCH_STABLE=1 (it changes solver trajectories).
  bool sat_preprocess = false;
  /// Cooperative cancellation (the attack-service's per-job kill switch).
  /// When non-null, the engine checks the flag alongside its wall/iteration
  /// budgets and arms it as the solver's interrupt hook, so a set flag
  /// unwinds the attack with Timeout at the next budget check or solver
  /// step. The pointee must outlive the attack. Null = never cancelled.
  const std::atomic<bool>* cancel = nullptr;
};

}  // namespace cl::attack
