#include "attack/fall.hpp"

#include <algorithm>
#include <map>
#include <optional>

#include "attack/verify.hpp"
#include "netlist/topo.hpp"
#include "util/timer.hpp"

namespace cl::attack {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// A conjunction of primary-input literals: input index -> polarity.
using InputPattern = std::map<std::size_t, bool>;

/// Flatten the AND-tree rooted at `root` into primary-input literals.
/// Returns nullopt when the tree contains anything other than AND gates,
/// primary inputs, and inverted primary inputs (i.e., it is not a pure
/// input-pattern comparator).
std::optional<InputPattern> flatten_comparator(
    const Netlist& nl, SignalId root,
    const std::map<SignalId, std::size_t>& input_index) {
  InputPattern pattern;
  std::vector<SignalId> stack{root};
  while (!stack.empty()) {
    const SignalId s = stack.back();
    stack.pop_back();
    const netlist::Node& n = nl.node(s);
    switch (n.type) {
      case GateType::And:
        for (SignalId f : n.fanins) stack.push_back(f);
        break;
      case GateType::Buf:
        stack.push_back(n.fanins[0]);
        break;
      case GateType::Input: {
        const auto it = input_index.find(s);
        if (it == input_index.end()) return std::nullopt;
        const auto [pos, inserted] = pattern.emplace(it->second, true);
        if (!inserted && !pos->second) return std::nullopt;  // x & ~x
        break;
      }
      case GateType::Not: {
        SignalId in = n.fanins[0];
        while (nl.type(in) == GateType::Buf) in = nl.node(in).fanins[0];
        if (nl.type(in) != GateType::Input) return std::nullopt;
        const auto it = input_index.find(in);
        if (it == input_index.end()) return std::nullopt;
        const auto [pos, inserted] = pattern.emplace(it->second, false);
        if (!inserted && pos->second) return std::nullopt;
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return pattern;
}

/// Key-unateness profile: a comparator-driven flip structure makes outputs
/// binate (non-unate) in the affected keys; purely decorative keys show no
/// sensitivity at all. Used as the functional-analysis pruning step and
/// reported in the detail string.
std::size_t count_sensitive_keys(const Netlist& locked, util::Rng& rng) {
  // One compilation for the whole ki x trials sweep; per-call compilation
  // would dominate on large netlists.
  const sim::CompiledNetlist compiled(locked);
  std::size_t sensitive = 0;
  for (std::size_t k = 0; k < locked.key_inputs().size(); ++k) {
    bool found = false;
    for (int trial = 0; trial < 16 && !found; ++trial) {
      const auto stim = sim::random_stimulus(rng, 8, locked.inputs().size());
      sim::BitVec key = sim::random_bits(rng, locked.key_inputs().size());
      const auto base = sim::run_sequence(compiled, stim, {key});
      key[k] ^= 1;
      const auto flipped = sim::run_sequence(compiled, stim, {key});
      found = sim::first_divergence(base, flipped) != -1;
    }
    if (found) ++sensitive;
  }
  return sensitive;
}

}  // namespace

FallResult fall_attack(const Netlist& locked, const SequentialOracle& oracle,
                       const FallOptions& options) {
  util::Timer timer;
  FallResult out;
  util::Rng rng(0xfa11);

  std::map<SignalId, std::size_t> input_index;
  for (std::size_t i = 0; i < locked.inputs().size(); ++i) {
    input_index.emplace(locked.inputs()[i], i);
  }

  // Step 1+2: comparator extraction over all AND-rooted cones. Only
  // patterns wide enough to be the key comparator count as candidate keys
  // (narrower pattern fragments are sub-trees of the same comparator).
  const std::size_t ki = locked.key_inputs().size();
  std::vector<InputPattern> patterns;
  for (SignalId s = 0; s < locked.size(); ++s) {
    if (locked.type(s) != GateType::And) continue;
    const auto p = flatten_comparator(locked, s, input_index);
    if (!p || p->size() < options.min_pattern_bits) continue;
    if (p->size() != ki) continue;
    if (std::find(patterns.begin(), patterns.end(), *p) == patterns.end()) {
      patterns.push_back(*p);
    }
    if (timer.seconds() > options.budget.time_limit_s) break;
  }
  out.candidates = patterns.size();

  const std::size_t sensitive = count_sensitive_keys(locked, rng);

  // Step 3+4: candidate keys from pattern polarities, verified on the
  // oracle. The pattern over inputs {i0 < i1 < ...} maps positionally onto
  // the key inputs (the TTLock/SFLL construction compares key bit j against
  // the j-th protected input).
  for (const InputPattern& p : patterns) {
    if (timer.seconds() > options.budget.time_limit_s) {
      out.result.outcome = Outcome::Timeout;
      out.result.seconds = timer.seconds();
      return out;
    }
    if (p.size() != ki) continue;  // cannot be the key comparator
    sim::BitVec key(ki, 0);
    std::size_t j = 0;
    for (const auto& [input, polarity] : p) key[j++] = polarity ? 1 : 0;
    ++out.result.iterations;
    const VerifyResult v = verify_static_key(
        locked, key, oracle.reference(), verify_options_for(options.budget));
    if (v.equivalent) {
      ++out.confirmed;
      out.result.outcome = Outcome::Equal;
      out.result.key = key;
      out.result.seconds = timer.seconds();
      out.result.detail = std::to_string(out.candidates) + " candidates, " +
                          std::to_string(sensitive) + " sensitive keys";
      return out;
    }
  }

  out.result.outcome = Outcome::Fail;
  out.result.seconds = timer.seconds();
  out.result.detail = std::to_string(out.candidates) + " candidates, none confirmed; " +
                      std::to_string(sensitive) + " sensitive keys";
  return out;
}

}  // namespace cl::attack
