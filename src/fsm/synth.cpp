#include "fsm/synth.hpp"

#include <stdexcept>

#include "logic/minimize.hpp"
#include "logic/sop_builder.hpp"

namespace cl::fsm {

using logic::Cube;
using netlist::Netlist;
using netlist::SignalId;

int state_bits(const Stg& stg) {
  int bits = 1;
  while ((1 << bits) < stg.num_states()) ++bits;
  return bits;
}

namespace {

/// True if the transition cubes of a state cover the whole input space.
/// Cubes are disjoint (enforced on insertion), so the minterm counts add up.
bool input_cover_complete(const Stg& stg, int s) {
  const int n = stg.num_inputs();
  std::uint64_t covered = 0;
  for (const Transition& t : stg.transitions_from(s)) {
    covered += 1ULL << (n - t.when.literal_count());
  }
  return covered == (1ULL << n);
}

TransitionLogic build_direct(Netlist& nl, const Stg& stg,
                             const std::vector<SignalId>& state,
                             const std::vector<SignalId>& inputs,
                             const std::string& prefix) {
  const int sb = state_bits(stg);
  // State decoder (shared).
  std::vector<SignalId> state_eq(static_cast<std::size_t>(stg.num_states()));
  for (int s = 0; s < stg.num_states(); ++s) {
    state_eq[static_cast<std::size_t>(s)] = logic::build_equals_const(
        nl, state, static_cast<std::uint64_t>(s), prefix + "_st" + std::to_string(s));
  }
  // Shared input inverters.
  std::vector<SignalId> input_not(inputs.size(), netlist::k_no_signal);
  const auto inv = [&](std::size_t i) {
    if (input_not[i] == netlist::k_no_signal) {
      input_not[i] = nl.add_not(inputs[i], nl.fresh_name(prefix + "_nx"));
    }
    return input_not[i];
  };

  // Fire terms per transition; hold terms per incomplete state.
  std::vector<std::vector<SignalId>> next_terms(static_cast<std::size_t>(sb));
  std::vector<std::vector<SignalId>> out_terms(
      static_cast<std::size_t>(stg.num_outputs()));
  for (int s = 0; s < stg.num_states(); ++s) {
    std::vector<SignalId> fires_from_s;
    for (const Transition& t : stg.transitions_from(s)) {
      std::vector<SignalId> lits{state_eq[static_cast<std::size_t>(s)]};
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        if (((t.when.mask >> i) & 1u) == 0) continue;
        lits.push_back(((t.when.value >> i) & 1u) ? inputs[i] : inv(i));
      }
      const SignalId fire =
          lits.size() == 1 ? lits[0]
                           : logic::build_and_tree(nl, lits, prefix + "_t");
      fires_from_s.push_back(fire);
      for (int j = 0; j < sb; ++j) {
        if ((static_cast<std::uint64_t>(t.to) >> j) & 1ULL) {
          next_terms[static_cast<std::size_t>(j)].push_back(fire);
        }
      }
      for (int o = 0; o < stg.num_outputs(); ++o) {
        if ((t.output >> o) & 1ULL) {
          out_terms[static_cast<std::size_t>(o)].push_back(fire);
        }
      }
    }
    // Hold term when no cube fires (only for incomplete covers and states
    // whose code has any 1 bit — holding state 0 contributes nothing).
    if (s != 0 && !input_cover_complete(stg, s)) {
      SignalId hold = state_eq[static_cast<std::size_t>(s)];
      if (!fires_from_s.empty()) {
        const SignalId any =
            fires_from_s.size() == 1
                ? fires_from_s[0]
                : logic::build_or_tree(nl, fires_from_s, prefix + "_any");
        const SignalId none = nl.add_not(any, nl.fresh_name(prefix + "_none"));
        hold = nl.add_and(hold, none, nl.fresh_name(prefix + "_hold"));
      }
      for (int j = 0; j < sb; ++j) {
        if ((static_cast<std::uint64_t>(s) >> j) & 1ULL) {
          next_terms[static_cast<std::size_t>(j)].push_back(hold);
        }
      }
    }
  }

  TransitionLogic logic_out;
  for (int j = 0; j < sb; ++j) {
    auto& terms = next_terms[static_cast<std::size_t>(j)];
    logic_out.next_state.push_back(
        terms.empty()
            ? nl.add_const(false, nl.fresh_name(prefix + "_ns" + std::to_string(j)))
        : terms.size() == 1
            ? terms[0]
            : logic::build_or_tree(nl, terms, prefix + "_ns" + std::to_string(j)));
  }
  for (int o = 0; o < stg.num_outputs(); ++o) {
    auto& terms = out_terms[static_cast<std::size_t>(o)];
    logic_out.outputs.push_back(
        terms.empty()
            ? nl.add_const(false, nl.fresh_name(prefix + "_o" + std::to_string(o)))
        : terms.size() == 1
            ? terms[0]
            : logic::build_or_tree(nl, terms, prefix + "_o" + std::to_string(o)));
  }
  return logic_out;
}

TransitionLogic build_minimized(Netlist& nl, const Stg& stg,
                                const std::vector<SignalId>& state,
                                const std::vector<SignalId>& inputs,
                                const std::string& prefix) {
  const int sb = state_bits(stg);
  const int ni = stg.num_inputs();
  const int total_vars = ni + sb;
  if (total_vars > 16) {
    throw std::invalid_argument(
        "TwoLevelMinimized synthesis limited to inputs+state_bits <= 16; use "
        "DirectTransitions");
  }
  // Variable order: inputs first, then state bits.
  std::vector<SignalId> vars = inputs;
  vars.insert(vars.end(), state.begin(), state.end());

  const std::uint64_t space = 1ULL << total_vars;
  std::vector<std::vector<std::uint64_t>> ns_on(static_cast<std::size_t>(sb));
  std::vector<std::vector<std::uint64_t>> out_on(
      static_cast<std::size_t>(stg.num_outputs()));
  std::vector<std::uint64_t> dc;
  for (std::uint64_t m = 0; m < space; ++m) {
    const std::uint32_t input_part =
        static_cast<std::uint32_t>(m & ((1ULL << ni) - 1));
    const int state_code = static_cast<int>(m >> ni);
    if (state_code >= stg.num_states()) {
      dc.push_back(m);
      continue;
    }
    const Stg::StepResult r = stg.step(state_code, input_part);
    for (int j = 0; j < sb; ++j) {
      if ((static_cast<std::uint64_t>(r.next_state) >> j) & 1ULL) {
        ns_on[static_cast<std::size_t>(j)].push_back(m);
      }
    }
    for (int o = 0; o < stg.num_outputs(); ++o) {
      if ((r.output >> o) & 1ULL) out_on[static_cast<std::size_t>(o)].push_back(m);
    }
  }

  TransitionLogic logic_out;
  for (int j = 0; j < sb; ++j) {
    const logic::Cover cover =
        logic::minimize(ns_on[static_cast<std::size_t>(j)], dc, total_vars);
    logic_out.next_state.push_back(
        logic::build_sop(nl, vars, cover, prefix + "_ns" + std::to_string(j)));
  }
  for (int o = 0; o < stg.num_outputs(); ++o) {
    const logic::Cover cover =
        logic::minimize(out_on[static_cast<std::size_t>(o)], dc, total_vars);
    logic_out.outputs.push_back(
        logic::build_sop(nl, vars, cover, prefix + "_o" + std::to_string(o)));
  }
  return logic_out;
}

}  // namespace

TransitionLogic build_transition_logic(Netlist& nl, const Stg& stg,
                                       const std::vector<SignalId>& state,
                                       const std::vector<SignalId>& inputs,
                                       SynthStyle style,
                                       const std::string& prefix) {
  if (static_cast<int>(state.size()) != state_bits(stg)) {
    throw std::invalid_argument("build_transition_logic: state width mismatch");
  }
  if (static_cast<int>(inputs.size()) != stg.num_inputs()) {
    throw std::invalid_argument("build_transition_logic: input width mismatch");
  }
  return style == SynthStyle::DirectTransitions
             ? build_direct(nl, stg, state, inputs, prefix)
             : build_minimized(nl, stg, state, inputs, prefix);
}

Netlist synthesize(const Stg& stg, SynthStyle style, const std::string& name) {
  stg.check();
  Netlist nl(name);
  const int sb = state_bits(stg);
  std::vector<SignalId> inputs;
  for (int i = 0; i < stg.num_inputs(); ++i) {
    inputs.push_back(nl.add_input("x" + std::to_string(i)));
  }
  std::vector<SignalId> state;
  for (int j = 0; j < sb; ++j) {
    const bool init_one = (static_cast<std::uint64_t>(stg.initial()) >> j) & 1ULL;
    state.push_back(nl.add_dff(netlist::k_no_signal,
                               init_one ? netlist::DffInit::One
                                        : netlist::DffInit::Zero,
                               "state" + std::to_string(j)));
  }
  const TransitionLogic tl =
      build_transition_logic(nl, stg, state, inputs, style, "f");
  for (int j = 0; j < sb; ++j) {
    nl.set_dff_input(state[static_cast<std::size_t>(j)],
                     tl.next_state[static_cast<std::size_t>(j)]);
  }
  for (int o = 0; o < stg.num_outputs(); ++o) {
    // Outputs keep stable names for the validation tables.
    const SignalId out = nl.add_gate(netlist::GateType::Buf,
                                     {tl.outputs[static_cast<std::size_t>(o)]},
                                     "out" + std::to_string(o));
    nl.add_output(out);
  }
  nl.check();
  return nl;
}

}  // namespace cl::fsm
