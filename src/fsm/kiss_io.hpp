// KISS2 FSM format reader/writer (the format used by the classic LGSynth /
// MCNC FSM benchmark suites).
//
//   .i <inputs>   .o <outputs>   .p <terms>   .s <states>   .r <reset>
//   <input-cube> <from> <to> <output-bits>
//   .e
// Output '-' bits are read as 0 (we model concrete Mealy outputs).
#pragma once

#include <iosfwd>
#include <string>

#include "fsm/stg.hpp"

namespace cl::fsm {

Stg read_kiss(std::istream& in);
Stg read_kiss_string(const std::string& text);
Stg read_kiss_file(const std::string& path);

void write_kiss(std::ostream& out, const Stg& stg);
std::string write_kiss_string(const Stg& stg);
void write_kiss_file(const std::string& path, const Stg& stg);

}  // namespace cl::fsm
