#include "fsm/minimize_fsm.hpp"

#include <map>
#include <stdexcept>
#include <vector>

namespace cl::fsm {

namespace {

/// Partition refinement over the (output, successor-class) signature on
/// every input minterm. Exponential in inputs, fine for benchmark-sized
/// machines (inputs <= ~10).
std::vector<int> equivalence_classes(const Stg& stg) {
  const int n = stg.num_states();
  const std::uint32_t space = 1u << stg.num_inputs();
  if (stg.num_inputs() > 10) {
    throw std::invalid_argument("minimize_states: too many inputs (> 10)");
  }
  // Initial partition: states with identical output rows.
  std::vector<int> cls(static_cast<std::size_t>(n), 0);
  {
    std::map<std::vector<std::uint64_t>, int> by_row;
    for (int s = 0; s < n; ++s) {
      std::vector<std::uint64_t> row;
      row.reserve(space);
      for (std::uint32_t m = 0; m < space; ++m) {
        row.push_back(stg.step(s, m).output);
      }
      const auto [it, inserted] =
          by_row.emplace(std::move(row), static_cast<int>(by_row.size()));
      cls[static_cast<std::size_t>(s)] = it->second;
    }
  }
  // Refine on successor classes until stable.
  for (;;) {
    std::map<std::vector<int>, int> by_sig;
    std::vector<int> next(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      std::vector<int> sig{cls[static_cast<std::size_t>(s)]};
      for (std::uint32_t m = 0; m < space; ++m) {
        sig.push_back(cls[static_cast<std::size_t>(stg.step(s, m).next_state)]);
      }
      const auto [it, inserted] =
          by_sig.emplace(std::move(sig), static_cast<int>(by_sig.size()));
      next[static_cast<std::size_t>(s)] = it->second;
    }
    if (next == cls) break;
    cls = std::move(next);
  }
  return cls;
}

}  // namespace

int count_distinct_states(const Stg& stg) {
  const auto cls = equivalence_classes(stg);
  int max_class = -1;
  for (int c : cls) max_class = std::max(max_class, c);
  return max_class + 1;
}

Stg minimize_states(const Stg& stg) {
  const auto cls = equivalence_classes(stg);
  int num_classes = 0;
  for (int c : cls) num_classes = std::max(num_classes, c + 1);

  Stg out(stg.num_inputs(), stg.num_outputs());
  for (int c = 0; c < num_classes; ++c) {
    out.add_state("M" + std::to_string(c));
  }
  out.set_initial(cls[static_cast<std::size_t>(stg.initial())]);

  // Emit one representative per class. Representative transitions are taken
  // from the lowest-index member; cube structure is preserved (all members
  // behave identically, so any member's cubes are correct for the class).
  std::vector<int> representative(static_cast<std::size_t>(num_classes), -1);
  for (int s = 0; s < stg.num_states(); ++s) {
    int& rep = representative[static_cast<std::size_t>(cls[static_cast<std::size_t>(s)])];
    if (rep < 0) rep = s;
  }
  for (int c = 0; c < num_classes; ++c) {
    const int rep = representative[static_cast<std::size_t>(c)];
    for (const Transition& t : stg.transitions_from(rep)) {
      out.add_transition(c, t.when, cls[static_cast<std::size_t>(t.to)], t.output);
    }
  }
  out.check();
  return out;
}

}  // namespace cl::fsm
