#include "fsm/kiss_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace cl::fsm {

namespace {
[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("kiss:" + std::to_string(line) + ": " + msg);
}
}  // namespace

Stg read_kiss(std::istream& in) {
  int ni = -1, no = -1;
  std::string reset_name;
  struct Row {
    std::string cube, from, to, out;
    int line;
  };
  std::vector<Row> rows;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw = raw.substr(0, hash);
    }
    const auto tok = util::split(raw);
    if (tok.empty()) continue;
    if (tok[0] == ".i") {
      if (tok.size() != 2) fail(line_no, ".i needs a count");
      ni = std::stoi(tok[1]);
    } else if (tok[0] == ".o") {
      if (tok.size() != 2) fail(line_no, ".o needs a count");
      no = std::stoi(tok[1]);
    } else if (tok[0] == ".p" || tok[0] == ".s") {
      // informational; ignored
    } else if (tok[0] == ".r") {
      if (tok.size() != 2) fail(line_no, ".r needs a state");
      reset_name = tok[1];
    } else if (tok[0] == ".e" || tok[0] == ".end") {
      break;
    } else if (tok[0][0] == '.') {
      fail(line_no, "unknown directive " + tok[0]);
    } else {
      if (tok.size() != 4) fail(line_no, "transition needs 4 fields");
      rows.push_back({tok[0], tok[1], tok[2], tok[3], line_no});
    }
  }
  if (ni < 0 || no < 0) throw std::runtime_error("kiss: missing .i/.o");

  Stg stg(ni, no);
  const auto state_of = [&stg](const std::string& name) {
    const int existing = stg.find_state(name);
    return existing >= 0 ? existing : stg.add_state(name);
  };
  for (const Row& r : rows) {
    if (static_cast<int>(r.cube.size()) != ni) fail(r.line, "cube width != .i");
    if (static_cast<int>(r.out.size()) != no) fail(r.line, "output width != .o");
    const int from = state_of(r.from);
    const int to = state_of(r.to);
    std::uint64_t out_bits = 0;
    for (int o = 0; o < no; ++o) {
      if (r.out[static_cast<std::size_t>(o)] == '1') out_bits |= 1ULL << o;
    }
    logic::Cube cube;
    try {
      cube = logic::Cube::parse(r.cube);
    } catch (const std::invalid_argument& e) {
      fail(r.line, e.what());
    }
    try {
      stg.add_transition(from, cube, to, out_bits);
    } catch (const std::invalid_argument& e) {
      fail(r.line, e.what());
    }
  }
  if (!reset_name.empty()) {
    const int r = stg.find_state(reset_name);
    if (r < 0) throw std::runtime_error("kiss: unknown reset state " + reset_name);
    stg.set_initial(r);
  }
  stg.check();
  return stg;
}

Stg read_kiss_string(const std::string& text) {
  std::istringstream in(text);
  return read_kiss(in);
}

Stg read_kiss_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_kiss(in);
}

void write_kiss(std::ostream& out, const Stg& stg) {
  out << ".i " << stg.num_inputs() << '\n';
  out << ".o " << stg.num_outputs() << '\n';
  out << ".p " << stg.num_transitions() << '\n';
  out << ".s " << stg.num_states() << '\n';
  out << ".r " << stg.state_name(stg.initial()) << '\n';
  for (int s = 0; s < stg.num_states(); ++s) {
    for (const Transition& t : stg.transitions_from(s)) {
      out << t.when.to_string(stg.num_inputs()) << ' ' << stg.state_name(t.from)
          << ' ' << stg.state_name(t.to) << ' ';
      for (int o = 0; o < stg.num_outputs(); ++o) {
        out << (((t.output >> o) & 1ULL) ? '1' : '0');
      }
      out << '\n';
    }
  }
  out << ".e\n";
}

std::string write_kiss_string(const Stg& stg) {
  std::ostringstream out;
  write_kiss(out, stg);
  return out.str();
}

void write_kiss_file(const std::string& path, const Stg& stg) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_kiss(out, stg);
}

}  // namespace cl::fsm
