// Mealy-machine state transition graphs.
//
// A transition fires in state `from` when the primary inputs match `when`
// (a cube over the machine's inputs); it moves to `to` and drives `output`
// (a concrete bit-vector). Machines are deterministic: within a state,
// transition cubes must not overlap. States not matching any cube hold
// (self-loop with all-zero outputs) — the usual KISS reading.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logic/cube.hpp"

namespace cl::fsm {

struct Transition {
  int from = 0;
  logic::Cube when;          // over num_inputs variables
  int to = 0;
  std::uint64_t output = 0;  // bit o = value of output o
};

class Stg {
 public:
  Stg(int num_inputs, int num_outputs);

  int num_inputs() const { return num_inputs_; }
  int num_outputs() const { return num_outputs_; }

  /// Add a state; returns its index.
  int add_state(const std::string& name);
  int num_states() const { return static_cast<int>(state_names_.size()); }
  const std::string& state_name(int s) const { return state_names_.at(static_cast<std::size_t>(s)); }
  /// Index of a state by name; -1 when absent.
  int find_state(const std::string& name) const;

  void set_initial(int s);
  int initial() const { return initial_; }

  /// Add a deterministic transition; throws if it overlaps an existing cube
  /// of the same state.
  void add_transition(int from, const logic::Cube& when, int to,
                      std::uint64_t output);

  const std::vector<Transition>& transitions_from(int s) const {
    return by_state_.at(static_cast<std::size_t>(s));
  }
  std::size_t num_transitions() const;

  /// Step: returns {next_state, output} for a concrete input minterm. States
  /// with no matching cube hold with zero output.
  struct StepResult {
    int next_state;
    std::uint64_t output;
  };
  StepResult step(int state, std::uint32_t input_minterm) const;

  /// Run a whole input sequence from the initial state.
  std::vector<StepResult> run(const std::vector<std::uint32_t>& inputs) const;

  /// States reachable from the initial state.
  std::vector<int> reachable_states() const;

  /// Structural sanity: state indices in range, cube widths sane. Throws
  /// std::logic_error on violation. (Determinism is enforced on insertion.)
  void check() const;

 private:
  int num_inputs_;
  int num_outputs_;
  int initial_ = 0;
  std::vector<std::string> state_names_;
  std::vector<std::vector<Transition>> by_state_;
};

/// The paper's running example (Figs. 1-2): a Mealy 1001-sequence detector
/// with 4 states, 1 input, 1 output.
Stg make_1001_detector();

}  // namespace cl::fsm
