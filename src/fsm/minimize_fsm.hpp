// Mealy-machine state minimization (Hopcroft-style partition refinement).
// Used to canonicalize generated FSM benchmarks and as a sanity pass before
// behavioral locking (fewer states = fewer wrongful-transition targets to
// manage). Equivalence: two states are merged iff no input sequence
// distinguishes their output behaviour.
#pragma once

#include "fsm/stg.hpp"

namespace cl::fsm {

/// Behaviour-preserving state minimization. The initial state maps to the
/// representative of its class; transition cubes are re-emitted at minterm
/// granularity of the distinguishing partition (cube-merged per class where
/// the originals already aligned).
Stg minimize_states(const Stg& stg);

/// Number of equivalence classes (without building the machine).
int count_distinct_states(const Stg& stg);

}  // namespace cl::fsm
