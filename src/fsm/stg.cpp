#include "fsm/stg.hpp"

#include <stdexcept>

namespace cl::fsm {

Stg::Stg(int num_inputs, int num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  if (num_inputs < 0 || num_inputs > 20) {
    throw std::invalid_argument("Stg: num_inputs out of [0,20]");
  }
  if (num_outputs < 0 || num_outputs > 64) {
    throw std::invalid_argument("Stg: num_outputs out of [0,64]");
  }
}

int Stg::add_state(const std::string& name) {
  if (find_state(name) >= 0) {
    throw std::invalid_argument("Stg: duplicate state " + name);
  }
  state_names_.push_back(name);
  by_state_.emplace_back();
  return num_states() - 1;
}

int Stg::find_state(const std::string& name) const {
  for (int s = 0; s < num_states(); ++s) {
    if (state_names_[static_cast<std::size_t>(s)] == name) return s;
  }
  return -1;
}

void Stg::set_initial(int s) {
  if (s < 0 || s >= num_states()) throw std::invalid_argument("set_initial");
  initial_ = s;
}

void Stg::add_transition(int from, const logic::Cube& when, int to,
                         std::uint64_t output) {
  if (from < 0 || from >= num_states() || to < 0 || to >= num_states()) {
    throw std::invalid_argument("add_transition: state out of range");
  }
  // Determinism: the new cube must not intersect existing cubes of `from`.
  // Two cubes intersect iff they agree on all commonly-cared variables.
  for (const Transition& t : by_state_[static_cast<std::size_t>(from)]) {
    const std::uint32_t common = t.when.mask & when.mask;
    if ((t.when.value & common) == (when.value & common)) {
      throw std::invalid_argument(
          "add_transition: overlapping input cubes in state " +
          state_name(from));
    }
  }
  by_state_[static_cast<std::size_t>(from)].push_back({from, when, to, output});
}

std::size_t Stg::num_transitions() const {
  std::size_t n = 0;
  for (const auto& v : by_state_) n += v.size();
  return n;
}

Stg::StepResult Stg::step(int state, std::uint32_t input_minterm) const {
  for (const Transition& t : by_state_.at(static_cast<std::size_t>(state))) {
    if (t.when.contains_minterm(input_minterm)) return {t.to, t.output};
  }
  return {state, 0};  // hold
}

std::vector<Stg::StepResult> Stg::run(
    const std::vector<std::uint32_t>& inputs) const {
  std::vector<StepResult> out;
  out.reserve(inputs.size());
  int state = initial_;
  for (std::uint32_t in : inputs) {
    const StepResult r = step(state, in);
    out.push_back(r);
    state = r.next_state;
  }
  return out;
}

std::vector<int> Stg::reachable_states() const {
  std::vector<bool> seen(static_cast<std::size_t>(num_states()), false);
  std::vector<int> stack{initial_};
  std::vector<int> order;
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    if (seen[static_cast<std::size_t>(s)]) continue;
    seen[static_cast<std::size_t>(s)] = true;
    order.push_back(s);
    for (const Transition& t : by_state_[static_cast<std::size_t>(s)]) {
      if (!seen[static_cast<std::size_t>(t.to)]) stack.push_back(t.to);
    }
  }
  return order;
}

void Stg::check() const {
  if (num_states() == 0) throw std::logic_error("Stg: no states");
  if (initial_ < 0 || initial_ >= num_states()) {
    throw std::logic_error("Stg: bad initial state");
  }
  const std::uint32_t input_space =
      (num_inputs_ == 32) ? 0xffffffffu : ((1u << num_inputs_) - 1);
  for (const auto& list : by_state_) {
    for (const Transition& t : list) {
      if (t.to < 0 || t.to >= num_states()) {
        throw std::logic_error("Stg: transition to unknown state");
      }
      if ((t.when.mask & ~input_space) != 0) {
        throw std::logic_error("Stg: cube wider than input space");
      }
      if (num_outputs_ < 64 && (t.output >> num_outputs_) != 0) {
        throw std::logic_error("Stg: output value wider than output space");
      }
    }
  }
}

Stg make_1001_detector() {
  // States track the longest matched prefix of "1001".
  Stg stg(1, 1);
  const int s0 = stg.add_state("S0");   // no prefix
  const int s1 = stg.add_state("S1");   // "1"
  const int s2 = stg.add_state("S10");  // "10"
  const int s3 = stg.add_state("S100"); // "100"
  stg.set_initial(s0);
  const logic::Cube zero = logic::Cube::parse("0");
  const logic::Cube one = logic::Cube::parse("1");
  stg.add_transition(s0, zero, s0, 0);
  stg.add_transition(s0, one, s1, 0);
  stg.add_transition(s1, zero, s2, 0);
  stg.add_transition(s1, one, s1, 0);
  stg.add_transition(s2, zero, s3, 0);
  stg.add_transition(s2, one, s1, 0);
  stg.add_transition(s3, zero, s0, 0);
  stg.add_transition(s3, one, s1, 1);  // "1001" completed on this input
  stg.check();
  return stg;
}

}  // namespace cl::fsm
