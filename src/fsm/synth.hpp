// FSM synthesis: materialize an STG as a gate-level netlist.
//
// Two styles:
//  * DirectTransitions — one product term per transition (state decoder AND
//    input-cube literals), OR-planes for next-state/output bits, plus hold
//    terms for states with incomplete input covers. Linear in the number of
//    transitions; used for medium/large machines.
//  * TwoLevelMinimized — exact truth tables over (inputs + state bits) with
//    unreachable state codes as don't-cares, minimized with Quine-McCluskey.
//    Produces smaller logic for small machines.
//
// States use natural binary encoding of their index; the reset state's code
// is loaded into the DFF power-up values.
#pragma once

#include <string>
#include <vector>

#include "fsm/stg.hpp"
#include "netlist/netlist.hpp"

namespace cl::fsm {

enum class SynthStyle { DirectTransitions, TwoLevelMinimized };

/// Number of state flip-flops used by the natural binary encoding.
int state_bits(const Stg& stg);

/// Next-state and output logic built inside an existing netlist.
struct TransitionLogic {
  std::vector<netlist::SignalId> next_state;  // one per state bit
  std::vector<netlist::SignalId> outputs;     // one per output
};

/// Build the combinational transition/output logic of `stg` reading the
/// given current-state and input signals. Composable: Cute-Lock-Beh uses
/// this to instantiate both the correct and the wrongful next-state logic in
/// one netlist.
TransitionLogic build_transition_logic(netlist::Netlist& nl, const Stg& stg,
                                       const std::vector<netlist::SignalId>& state,
                                       const std::vector<netlist::SignalId>& inputs,
                                       SynthStyle style,
                                       const std::string& prefix);

/// Standalone synthesis: inputs "x<i>", state registers "state<j>" (reset to
/// the initial state's code), outputs "out<o>" marked as primary outputs.
netlist::Netlist synthesize(const Stg& stg,
                            SynthStyle style = SynthStyle::DirectTransitions,
                            const std::string& name = "fsm");

}  // namespace cl::fsm
