#include "analysis/lint.hpp"

#include <algorithm>
#include <map>

#include "netlist/topo.hpp"

namespace cl::analysis {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

void add(LintReport& rep, Severity sev, std::string code, std::string signal,
         std::string message) {
  rep.diagnostics.push_back(
      {sev, std::move(code), std::move(signal), std::move(message)});
}

bool is_output(const Netlist& nl, SignalId s) {
  return std::find(nl.outputs().begin(), nl.outputs().end(), s) !=
         nl.outputs().end();
}

/// Merge `sub`'s diagnostics into `rep`, prefixing signals with which
/// netlist of the submission they came from.
void merge(LintReport& rep, const LintReport& sub, const std::string& which) {
  for (Diagnostic d : sub.diagnostics) {
    d.signal = d.signal.empty() ? which : which + "/" + d.signal;
    rep.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

LintReport lint(const Netlist& nl) {
  LintReport rep;

  if (nl.outputs().empty()) {
    add(rep, Severity::Error, "no-outputs", "",
        "netlist has no primary outputs; nothing is observable");
  }

  // Floating DFFs make the fanin graph unwalkable, so find them first and
  // skip the graph-based checks when any exist.
  bool floating = false;
  for (SignalId d : nl.dffs()) {
    if (nl.dff_input(d) == netlist::k_no_signal) {
      floating = true;
      add(rep, Severity::Error, "floating-dff", nl.signal_name(d),
          "flip-flop D pin was never wired");
    } else if (nl.dff_input(d) == d) {
      add(rep, Severity::Warning, "self-loop-dff", nl.signal_name(d),
          "flip-flop D pin is wired straight back to its own Q");
    }
  }
  if (floating) return rep;

  try {
    (void)netlist::topo_order(nl);
  } catch (const std::exception& e) {
    add(rep, Severity::Error, "comb-loop", "", e.what());
    return rep;
  }

  const auto fanout = netlist::fanouts(nl);
  for (SignalId i : nl.inputs()) {
    if (fanout[i].empty() && !is_output(nl, i)) {
      add(rep, Severity::Warning, "unused-input", nl.signal_name(i),
          "primary input has no readers");
    }
  }
  for (SignalId k : nl.key_inputs()) {
    if (fanout[k].empty() && !is_output(nl, k)) {
      add(rep, Severity::Warning, "unused-input", nl.signal_name(k),
          "key input has no readers; it cannot affect the function");
    }
  }

  // Dead logic: gates/FFs unreachable from every output (remove_dangling's
  // liveness rule). Decoy-latch cones are carved out first: a key input
  // whose entire fanout cone is unobservable but holds a flip-flop is the
  // programmable-decoy shape of latch-based locking (lock/latch_lock.hpp),
  // deliberate structure rather than forgotten logic — report it as an
  // info-level `latch-only-key` finding and exempt its cone from the
  // `dead-logic` count.
  {
    std::vector<bool> live(nl.size(), false);
    std::vector<SignalId> stack(nl.outputs().begin(), nl.outputs().end());
    while (!stack.empty()) {
      const SignalId s = stack.back();
      stack.pop_back();
      if (live[s]) continue;
      live[s] = true;
      for (SignalId f : nl.node(s).fanins) {
        if (!live[f]) stack.push_back(f);
      }
    }
    std::vector<bool> decoy_cone(nl.size(), false);
    for (SignalId k : nl.key_inputs()) {
      if (fanout[k].empty()) continue;  // reported as unused-input above
      std::vector<bool> in_cone(nl.size(), false);
      std::vector<SignalId> cone;
      std::vector<SignalId> work{k};
      in_cone[k] = true;
      bool observable = false, has_dff = false;
      while (!work.empty()) {
        const SignalId s = work.back();
        work.pop_back();
        cone.push_back(s);
        if (live[s]) observable = true;
        if (nl.type(s) == GateType::Dff) has_dff = true;
        for (SignalId reader : fanout[s]) {
          if (!in_cone[reader]) {
            in_cone[reader] = true;
            work.push_back(reader);
          }
        }
      }
      if (!observable && has_dff) {
        add(rep, Severity::Info, "latch-only-key", nl.signal_name(k),
            "key input drives only unobservable sequential logic (a "
            "latch-style decoy cone of " +
                std::to_string(cone.size() - 1) + " node(s))");
        for (SignalId s : cone) decoy_cone[s] = true;
      }
    }
    std::size_t dead = 0;
    for (SignalId s = 0; s < nl.size(); ++s) {
      const GateType t = nl.type(s);
      if ((netlist::is_comb_gate(t) || t == GateType::Dff) && !live[s] &&
          !decoy_cone[s]) {
        ++dead;
      }
    }
    if (dead > 0) {
      add(rep, Severity::Warning, "dead-logic", "",
          std::to_string(dead) +
              " gate(s)/flip-flop(s) are unreachable from every output");
    }
  }

  // Duplicate gates: same type + same (canonicalized) fanin list.
  {
    const auto commutative = [](GateType t) {
      return t == GateType::And || t == GateType::Nand || t == GateType::Or ||
             t == GateType::Nor || t == GateType::Xor || t == GateType::Xnor;
    };
    std::map<std::pair<GateType, std::vector<SignalId>>, std::size_t> seen;
    std::size_t duplicates = 0;
    for (SignalId s = 0; s < nl.size(); ++s) {
      if (!netlist::is_comb_gate(nl.type(s)) || nl.type(s) == GateType::Buf) {
        continue;
      }
      std::vector<SignalId> fanins = nl.node(s).fanins;
      if (commutative(nl.type(s))) std::sort(fanins.begin(), fanins.end());
      if (++seen[{nl.type(s), std::move(fanins)}] > 1) ++duplicates;
    }
    if (duplicates > 0) {
      add(rep, Severity::Warning, "duplicate-gates", "",
          std::to_string(duplicates) +
              " gate(s) duplicate another gate's function (strash would "
              "merge them)");
    }
  }

  for (SignalId o : nl.outputs()) {
    const GateType t = nl.type(o);
    if (t == GateType::Const0 || t == GateType::Const1) {
      add(rep, Severity::Warning, "constant-output", nl.signal_name(o),
          "primary output is pinned to a constant");
    }
  }

  return rep;
}

LintReport lint_attack_inputs(const Netlist& locked, const Netlist& oracle) {
  LintReport rep;
  merge(rep, lint(locked), "locked");
  merge(rep, lint(oracle), "oracle");

  if (locked.key_inputs().empty()) {
    add(rep, Severity::Error, "no-key-inputs", "locked",
        "locked netlist has no key inputs; there is nothing to attack");
  }
  if (!oracle.key_inputs().empty()) {
    add(rep, Severity::Error, "keyed-oracle", "oracle",
        "oracle netlist has key inputs; the reference must be the unlocked "
        "design");
  }
  if (locked.inputs().size() != oracle.inputs().size() ||
      locked.outputs().size() != oracle.outputs().size()) {
    add(rep, Severity::Error, "interface-mismatch", "",
        "locked is " + std::to_string(locked.inputs().size()) + " in / " +
            std::to_string(locked.outputs().size()) + " out but oracle is " +
            std::to_string(oracle.inputs().size()) + " in / " +
            std::to_string(oracle.outputs().size()) + " out");
  }
  return rep;
}

std::size_t LintReport::errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

std::size_t LintReport::warnings() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Warning) ++n;
  }
  return n;
}

std::size_t LintReport::infos() const {
  return diagnostics.size() - errors() - warnings();
}

std::string format_diagnostics(const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.severity == Severity::Error
               ? "error["
               : (d.severity == Severity::Warning ? "warning[" : "info[");
    out += d.code;
    out += "]";
    if (!d.signal.empty()) {
      out += " ";
      out += d.signal;
    }
    out += ": ";
    out += d.message;
    out += "\n";
  }
  return out;
}

}  // namespace cl::analysis
