#include "analysis/const_prop.hpp"

#include "netlist/topo.hpp"

namespace cl::analysis {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;
using sim::Trit;

namespace {

Trit eval_gate(const Netlist& nl, SignalId id, const std::vector<Trit>& v) {
  const netlist::Node& n = nl.node(id);
  switch (n.type) {
    case GateType::Buf:
      return v[n.fanins[0]];
    case GateType::Not:
      return sim::trit_not(v[n.fanins[0]]);
    case GateType::And:
    case GateType::Nand: {
      Trit acc = Trit::One;
      for (SignalId f : n.fanins) acc = sim::trit_and(acc, v[f]);
      return n.type == GateType::Nand ? sim::trit_not(acc) : acc;
    }
    case GateType::Or:
    case GateType::Nor: {
      Trit acc = Trit::Zero;
      for (SignalId f : n.fanins) acc = sim::trit_or(acc, v[f]);
      return n.type == GateType::Nor ? sim::trit_not(acc) : acc;
    }
    case GateType::Xor:
    case GateType::Xnor: {
      Trit acc = Trit::Zero;
      for (SignalId f : n.fanins) acc = sim::trit_xor(acc, v[f]);
      return n.type == GateType::Xnor ? sim::trit_not(acc) : acc;
    }
    case GateType::Mux:
      return sim::trit_mux(v[n.fanins[0]], v[n.fanins[1]], v[n.fanins[2]]);
    default:
      return Trit::X;
  }
}

}  // namespace

ConstPropResult const_prop(const Netlist& nl, const std::vector<Pin>& pins) {
  ConstPropResult out;
  out.values.assign(nl.size(), Trit::X);
  std::vector<bool> pinned(nl.size(), false);
  for (const Pin& p : pins) {
    pinned[p.signal] = true;
    out.values[p.signal] = p.value;
  }

  for (SignalId id : netlist::topo_order(nl)) {
    if (pinned[id]) continue;
    const GateType t = nl.type(id);
    if (t == GateType::Const0) out.values[id] = Trit::Zero;
    else if (t == GateType::Const1) out.values[id] = Trit::One;
    else if (netlist::is_comb_gate(t)) out.values[id] = eval_gate(nl, id, out.values);
    // Inputs, key inputs, and DFF Qs stay X.
  }

  for (SignalId id = 0; id < nl.size(); ++id) {
    if (netlist::is_comb_gate(nl.type(id)) && out.values[id] != Trit::X) {
      ++out.determined;
    }
  }
  for (SignalId o : nl.outputs()) {
    if (out.values[o] != Trit::X) ++out.determined_outputs;
  }
  return out;
}

PinProfile pin_profile(const Netlist& nl, SignalId key_bit) {
  PinProfile p;
  p.baseline = const_prop(nl).determined;
  p.zero = const_prop(nl, {{key_bit, Trit::Zero}}).determined;
  p.one = const_prop(nl, {{key_bit, Trit::One}}).determined;
  return p;
}

}  // namespace cl::analysis
