#include "analysis/key_infer.hpp"

#include <algorithm>

#include "analysis/const_prop.hpp"
#include "netlist/optimize.hpp"
#include "netlist/topo.hpp"
#include "netlist/transform.hpp"
#include "sim/sequence.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace cl::analysis {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;
using sim::Trit;

namespace {

/// Reader-shape classification. Only the two shapes with a provable
/// synthesis differential get a decidable role; everything else — multiple
/// readers (Cute-Lock-Str's per-slot comparators), key-vs-key comparators,
/// dead bits — is Complex and will stay Unknown.
KeyRole classify(const Netlist& nl, SignalId key,
                 const std::vector<std::vector<SignalId>>& fanout) {
  std::vector<SignalId> readers = fanout[key];
  std::sort(readers.begin(), readers.end());
  readers.erase(std::unique(readers.begin(), readers.end()), readers.end());
  if (readers.size() != 1) return KeyRole::Complex;
  const netlist::Node& n = nl.node(readers[0]);
  if ((n.type == GateType::Xor || n.type == GateType::Xnor) &&
      n.fanins.size() == 2) {
    if (std::count(n.fanins.begin(), n.fanins.end(), key) != 1) {
      return KeyRole::Complex;
    }
    const SignalId other = n.fanins[0] == key ? n.fanins[1] : n.fanins[0];
    // XOR against another key bit is a comparator fragment, not a key gate.
    if (nl.type(other) == GateType::KeyInput) return KeyRole::Complex;
    return KeyRole::XorGate;
  }
  if (n.type == GateType::Mux && n.fanins[0] == key && n.fanins[1] != key &&
      n.fanins[2] != key) {
    return KeyRole::MuxSelect;
  }
  return KeyRole::Complex;
}

/// The XOR-gate degeneracy signature inverts when the key gate was inserted
/// on an inverter's output and is that inverter's only (non-output) reader:
/// the WRONG pin then rewrites the gate to NOT(NOT(x)), which synthesis
/// collapses to a wire AND sweeps the now-dangling inverter — two removals
/// against the correct side's one. Detect that shape so the vote direction
/// can be flipped instead of trusting the raw differential.
bool xor_vote_flipped(const Netlist& nl, SignalId key,
                      const std::vector<std::vector<SignalId>>& fanout) {
  const SignalId reader = fanout[key].front();
  const netlist::Node& gate = nl.node(reader);
  const SignalId other = gate.fanins[0] == key ? gate.fanins[1]
                                               : gate.fanins[0];
  if (nl.type(other) != GateType::Not) return false;
  const auto& outs = nl.outputs();
  if (std::find(outs.begin(), outs.end(), other) != outs.end()) return false;
  std::vector<SignalId> readers = fanout[other];
  std::sort(readers.begin(), readers.end());
  readers.erase(std::unique(readers.begin(), readers.end()), readers.end());
  return readers.size() == 1 && readers[0] == reader;
}

/// The SCOPE vote: optimize both pinned variants and compare how degenerate
/// synthesis found them (OptimizeStats: removals + propagated constants).
/// XOR key gate — the correct value folds the gate to a wire, the wrong one
/// leaves an inverter, so the correct side is MORE degenerate (unless the
/// gate sits on a lone inverter's output — see xor_vote_flipped). MUX select
/// — the correct value forwards the true cone while the wrong one forwards
/// the decoy and lets remove_dangling sweep the (now unread) true cone, so
/// the correct side is LESS degenerate. A zero margin stays Unknown.
void decide(const Netlist& nl, BitHint& h, bool flip_xor_vote) {
  netlist::OptimizeStats st0, st1;
  const auto s0 =
      netlist::optimize(netlist::pin_signal(nl, h.signal, false), st0).stats();
  const auto s1 =
      netlist::optimize(netlist::pin_signal(nl, h.signal, true), st1).stats();
  h.size_pinned0 = s0.gates + s0.dffs;
  h.size_pinned1 = s1.gates + s1.dffs;
  if (h.role == KeyRole::Complex) return;
  const std::size_t degen0 =
      st0.gates_removed + st0.ffs_swept + st0.constants_propagated;
  const std::size_t degen1 =
      st1.gates_removed + st1.ffs_swept + st1.constants_propagated;
  if (degen0 == degen1) return;
  const bool zero_more_degenerate = degen0 > degen1;
  bool value = h.role == KeyRole::XorGate ? !zero_more_degenerate
                                          : zero_more_degenerate;
  if (h.role == KeyRole::XorGate && flip_xor_vote) value = !value;
  h.verdict = value ? BitVerdict::One : BitVerdict::Zero;
  const std::size_t margin = zero_more_degenerate ? degen0 - degen1
                                                  : degen1 - degen0;
  h.confidence = std::min(1.0, 0.7 + 0.1 * static_cast<double>(margin));
}

/// FALL-style sampled unateness: flip one key bit against random input
/// sequences and random settings of the other bits, and record the output
/// movement direction. One compilation for the whole ki x trials sweep.
void profile_unateness(const Netlist& nl, std::vector<BitHint>& bits,
                       const InferOptions& opt) {
  if (bits.empty()) return;
  const sim::CompiledNetlist compiled(nl);
  util::Rng rng(opt.seed);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    bool pos = false, neg = false;
    for (std::size_t trial = 0; trial < opt.unate_trials; ++trial) {
      const auto stim =
          sim::random_stimulus(rng, opt.unate_cycles, nl.inputs().size());
      sim::BitVec key = sim::random_bits(rng, bits.size());
      key[k] = 0;
      const auto lo = sim::run_sequence(compiled, stim, {key});
      key[k] = 1;
      const auto hi = sim::run_sequence(compiled, stim, {key});
      for (std::size_t c = 0; c < lo.size(); ++c) {
        for (std::size_t o = 0; o < lo[c].size(); ++o) {
          if (lo[c][o] < hi[c][o]) pos = true;
          else if (lo[c][o] > hi[c][o]) neg = true;
        }
      }
      if (pos && neg) break;
    }
    bits[k].unate = pos && neg  ? Unateness::Binate
                    : pos       ? Unateness::Positive
                    : neg       ? Unateness::Negative
                                : Unateness::Insensitive;
  }
}

}  // namespace

KeyHintReport infer_key_hints(const Netlist& locked,
                              const InferOptions& options) {
  util::Timer timer;
  KeyHintReport rep;
  rep.circuit = locked.name();
  const std::vector<SignalId>& keys = locked.key_inputs();
  rep.key_bits = keys.size();
  rep.bits.resize(keys.size());

  const auto fanout = netlist::fanouts(locked);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    BitHint& h = rep.bits[i];
    h.signal = keys[i];
    h.name = locked.signal_name(keys[i]);
    h.role = classify(locked, keys[i], fanout);
  }

  if (options.profile_unateness) profile_unateness(locked, rep.bits, options);

  for (BitHint& h : rep.bits) {
    if (options.time_limit_s > 0 && timer.seconds() > options.time_limit_s) {
      rep.budget_exhausted = true;
      break;
    }
    h.determined0 =
        const_prop(locked, {{h.signal, Trit::Zero}}).determined;
    h.determined1 = const_prop(locked, {{h.signal, Trit::One}}).determined;
    decide(locked, h,
           h.role == KeyRole::XorGate &&
               xor_vote_flipped(locked, h.signal, fanout));
    // A structurally decided bit the sampler never saw move is suspicious
    // (decorative key gate or unreachable cone): keep the verdict but drop
    // it below the hint-injection confidence bar.
    if (h.verdict != BitVerdict::Unknown && h.unate == Unateness::Insensitive) {
      h.confidence *= 0.5;
    }
  }
  return rep;
}

std::size_t KeyHintReport::decided(double min_confidence) const {
  std::size_t n = 0;
  for (const BitHint& h : bits) {
    if (h.verdict != BitVerdict::Unknown && h.confidence >= min_confidence) ++n;
  }
  return n;
}

std::vector<std::pair<std::size_t, bool>> KeyHintReport::decided_bits(
    double min_confidence) const {
  std::vector<std::pair<std::size_t, bool>> out;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const BitHint& h = bits[i];
    if (h.verdict == BitVerdict::Unknown || h.confidence < min_confidence) {
      continue;
    }
    out.emplace_back(i, h.verdict == BitVerdict::One);
  }
  return out;
}

std::string KeyHintReport::verdict_string() const {
  std::string s;
  s.reserve(bits.size());
  for (const BitHint& h : bits) s.push_back(verdict_char(h.verdict));
  return s;
}

std::string KeyHintReport::summary() const {
  return std::to_string(decided()) + "/" + std::to_string(bits.size()) +
         " bits decided: " + verdict_string() +
         (budget_exhausted ? " (budget exhausted)" : "");
}

const char* role_name(KeyRole role) {
  switch (role) {
    case KeyRole::XorGate: return "xor-gate";
    case KeyRole::MuxSelect: return "mux-select";
    case KeyRole::Complex: return "complex";
  }
  return "?";
}

const char* unate_name(Unateness u) {
  switch (u) {
    case Unateness::NotProfiled: return "not-profiled";
    case Unateness::Insensitive: return "insensitive";
    case Unateness::Positive: return "positive";
    case Unateness::Negative: return "negative";
    case Unateness::Binate: return "binate";
  }
  return "?";
}

char verdict_char(BitVerdict v) {
  switch (v) {
    case BitVerdict::Zero: return '0';
    case BitVerdict::One: return '1';
    case BitVerdict::Unknown: return 'x';
  }
  return '?';
}

}  // namespace cl::analysis
