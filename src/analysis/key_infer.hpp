// SCOPE-style oracle-free key inference (after Alrahis et al.'s SCOPE:
// synthesis-based constant propagation attack). For every key bit, build two
// variants of the locked netlist — the bit pinned to 0 and to 1, all other
// keys left free — run netlist::optimize on both, and compare what synthesis
// did to them. An inline XOR/XNOR key gate folds to a wire under the correct
// value but leaves an inverter under the wrong one; a locking MUX select
// forwards the true cone under the correct value but sweeps it as dead logic
// under the wrong one. Bits whose readers match neither shape (comparator
// trees, multi-reader keys — Cute-Lock-Str's time-base slot comparators are
// the canonical case) are reported `unknown` rather than guessed, so the
// pass never votes wrong on locks it cannot read.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace cl::analysis {

/// Structural role of a key bit, from its reader shape.
enum class KeyRole : std::uint8_t {
  XorGate,    ///< single reader, 2-fanin XOR/XNOR inline key gate
  MuxSelect,  ///< single reader, select pin of a locking MUX
  Complex,    ///< anything else: comparators, multi-reader, dead bits
};

/// Sampled unateness of the outputs in one key bit (FALL's functional
/// profiling): an inline key gate makes outputs binate; a decorative or
/// deeply buried bit shows no sensitivity within the sample budget.
enum class Unateness : std::uint8_t {
  NotProfiled,
  Insensitive,
  Positive,
  Negative,
  Binate,
};

enum class BitVerdict : std::uint8_t { Zero, One, Unknown };

struct BitHint {
  netlist::SignalId signal = netlist::k_no_signal;
  std::string name;
  KeyRole role = KeyRole::Complex;
  BitVerdict verdict = BitVerdict::Unknown;
  double confidence = 0.0;  ///< 0 (unknown) .. 1 (decisive synthesis margin)
  Unateness unate = Unateness::NotProfiled;
  /// Optimized size (comb gates + FFs) with the bit pinned to 0 / to 1.
  std::size_t size_pinned0 = 0;
  std::size_t size_pinned1 = 0;
  /// Ternary const-prop determined-signal counts with the bit pinned.
  std::size_t determined0 = 0;
  std::size_t determined1 = 0;
};

struct KeyHintReport {
  std::string circuit;
  std::size_t key_bits = 0;
  std::vector<BitHint> bits;
  /// True when the time budget ran out mid-sweep; the remaining bits are
  /// reported Unknown with zero confidence.
  bool budget_exhausted = false;

  /// Bits with a definite verdict at >= min_confidence.
  std::size_t decided(double min_confidence = 0.0) const;
  /// (key-bit index, value) for every decided bit at >= min_confidence.
  std::vector<std::pair<std::size_t, bool>> decided_bits(
      double min_confidence = 0.0) const;
  /// Verdicts as a string, index 0 leftmost: '0', '1', or 'x' per bit.
  std::string verdict_string() const;
  /// One-line human summary ("5/8 bits decided: 01x1x0xx").
  std::string summary() const;
};

struct InferOptions {
  /// Run the sampled unateness profiling pass (sim-based, seeded).
  bool profile_unateness = true;
  std::size_t unate_trials = 16;
  std::size_t unate_cycles = 8;
  std::uint64_t seed = 0x5c03eULL;
  /// Wall budget for the whole sweep; 0 = unlimited. On exhaustion the
  /// remaining bits stay Unknown and budget_exhausted is set.
  double time_limit_s = 0.0;
};

/// Run the full inference: role classification, per-bit optimize
/// differential, const-prop profile, and (optionally) unateness sampling.
KeyHintReport infer_key_hints(const netlist::Netlist& locked,
                              const InferOptions& options = {});

const char* role_name(KeyRole role);
const char* unate_name(Unateness u);
char verdict_char(BitVerdict v);

}  // namespace cl::analysis
