// Structural netlist lint: the checks the service and CLI run on submitted
// circuits before spending attack budget on them. Errors are conditions an
// attack cannot survive (no outputs, combinational loops, floating DFFs);
// warnings flag suspicious-but-legal structure (dead logic, unused inputs,
// mergeable duplicate gates); infos flag structure that is intentional in
// known defenses (latch-based decoy cones) so it is visible without looking
// like a defect. Each finding is a structured diagnostic with a stable code
// so clients can match on it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace cl::analysis {

enum class Severity : std::uint8_t { Error, Warning, Info };

struct Diagnostic {
  Severity severity = Severity::Error;
  std::string code;     ///< stable kebab-case identifier, e.g. "comb-loop"
  std::string signal;   ///< offending signal name ("" for whole-netlist)
  std::string message;  ///< human-readable explanation
};

struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return errors() == 0; }
  std::size_t errors() const;
  std::size_t warnings() const;
  std::size_t infos() const;
};

/// Check one netlist in isolation.
///
/// Errors: `no-outputs`, `comb-loop`, `floating-dff` (D pin never wired).
/// Warnings: `dead-logic` (gates unreachable from any output), `unused-input`
/// (port with no readers), `duplicate-gates` (strash would merge),
/// `constant-output` (output pinned to a constant), `self-loop-dff` (D wired
/// straight back to its own Q).
/// Infos: `latch-only-key` (a key input whose entire fanout cone is
/// unobservable but holds sequential state — the decoy-latch shape of
/// latch-based locking; such cones are exempt from the `dead-logic` count).
LintReport lint(const netlist::Netlist& nl);

/// Check a (locked, oracle) attack submission: both netlists individually,
/// plus `no-key-inputs` (locked circuit has nothing to attack), `keyed-oracle`
/// (the reference must be key-free), and `interface-mismatch` (input/output
/// port counts differ, so the miter cannot be formed).
LintReport lint_attack_inputs(const netlist::Netlist& locked,
                              const netlist::Netlist& oracle);

/// Render "error[code] signal: message" lines, one per diagnostic.
std::string format_diagnostics(const LintReport& report);

}  // namespace cl::analysis
