// Ternary 0/1/X constant propagation over the combinational core: pin a few
// sources to known values, push Kleene logic through the gate graph in one
// topological pass, and count how much of the circuit the pins decide. This
// is the measurement half of the SCOPE-style key inference (key_infer.hpp):
// a key bit whose wrong polarity collapses a cone leaves a structural trace.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/x_sim.hpp"

namespace cl::analysis {

/// One (source signal, value) assignment applied before propagation.
struct Pin {
  netlist::SignalId signal = netlist::k_no_signal;
  sim::Trit value = sim::Trit::X;
};

struct ConstPropResult {
  /// Propagated value per SignalId. Sources (inputs, key inputs, DFF Qs)
  /// are X unless pinned; constants are themselves.
  std::vector<sim::Trit> values;
  /// Combinational gates whose output propagated to a definite 0/1.
  std::size_t determined = 0;
  /// Primary outputs with a definite value.
  std::size_t determined_outputs = 0;
};

/// Propagate constants with the given pins. A pinned signal takes its pin
/// value regardless of its own function (gates may be pinned too, which cuts
/// the cone at that point). Throws on combinational cycles (via topo_order).
ConstPropResult const_prop(const netlist::Netlist& nl,
                           const std::vector<Pin>& pins = {});

/// Cone-collapse profile of one key bit: determined-signal counts with the
/// bit pinned to 0 and to 1, against the nothing-pinned baseline.
struct PinProfile {
  std::size_t baseline = 0;
  std::size_t zero = 0;
  std::size_t one = 0;
};

PinProfile pin_profile(const netlist::Netlist& nl, netlist::SignalId key_bit);

}  // namespace cl::analysis
