// Sequential baseline locking schemes: HARPOON-style mode obfuscation,
// DK-Lock (the paper's Fig. 4 overhead comparison point), and SLED-style
// LFSR-generated dynamic keys.
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

/// HARPOON-style obfuscation mode: an `obf_states`-stage unlock FSM gated by
/// a ki-bit key port. The circuit starts in obfuscation mode with corrupted
/// outputs and state updates; applying the per-stage unlock words in order
/// reaches functional mode (a sticky latch). Aperiodic schedule: the unlock
/// prefix followed by a held final word.
LockResult harpoon(const netlist::Netlist& nl, std::size_t key_bits,
                   std::size_t obf_states, util::Rng& rng);

/// DK-Lock: two-key locking. Phase 1 (activation): `activation_cycles`
/// stages each expecting a stage-specific activation word on the shared
/// ki-bit key port. Phase 2 (functional): the functional key must stay
/// applied; `locked_nets` internal nets carry XOR key gates that corrupt
/// whenever the functional word is wrong or the device is not activated.
LockResult dk_lock(const netlist::Netlist& nl, std::size_t key_bits,
                   std::size_t activation_cycles, std::size_t locked_nets,
                   util::Rng& rng);

/// SLED-style dynamic keys: a seed (the static secret, loaded from the key
/// port on the first cycle) drives an LFSR whose stream XORs `locked_nets`
/// internal nets; a reference LFSR with the correct seed folded in as
/// constants cancels the stream when the seed matches.
LockResult sled(const netlist::Netlist& nl, std::size_t key_bits,
                std::size_t locked_nets, util::Rng& rng);

}  // namespace cl::lock
