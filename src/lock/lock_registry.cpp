#include "lock/lock_registry.hpp"

#include "core/cute_lock_str.hpp"
#include "lock/cac_lock.hpp"
#include "lock/comb_locks.hpp"
#include "lock/kgate_lock.hpp"
#include "lock/latch_lock.hpp"

namespace cl::lock {

const std::vector<RegisteredLock>& lock_registry() {
  static const std::vector<RegisteredLock> registry = {
      {"xor", "xor_lock", false, false, false,
       [](const netlist::Netlist& nl, util::Rng& rng) {
         return xor_lock(nl, 4, rng);
       }},
      // K-Gate is multi-key: distinct key words can select the same gate
      // function (encoding classes), so exact-key comparison undercounts.
      {"kgate", "kgate_lock", false, true, false,
       [](const netlist::Netlist& nl, util::Rng& rng) {
         return kgate_lock(nl, 4, 2, rng);
       }},
      {"cac2", "cac_lock", false, true, false,
       [](const netlist::Netlist& nl, util::Rng& rng) {
         return cac_lock(nl, 4, 4, rng);
       }},
      {"latch", "latch_lock", true, true, false,
       [](const netlist::Netlist& nl, util::Rng& rng) {
         return latch_lock(nl, 3, 2, rng);
       }},
      {"cl-str", "cute_lock_str", true, true, true,
       [](const netlist::Netlist& nl, util::Rng& rng) {
         core::StrOptions options;
         options.seed = rng.next_below(1u << 30);
         return core::cute_lock_str(nl, options);
       }},
  };
  return registry;
}

const RegisteredLock* find_lock(const std::string& name) {
  for (const RegisteredLock& entry : lock_registry()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

std::string lock_names() {
  std::string names;
  for (const RegisteredLock& entry : lock_registry()) {
    if (!names.empty()) names += ", ";
    names += entry.name;
  }
  return names;
}

}  // namespace cl::lock
