#include "lock/seq_locks.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "logic/sop_builder.hpp"
#include "netlist/topo.hpp"

namespace cl::lock {

using netlist::DffInit;
using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

std::vector<SignalId> add_key_inputs(Netlist& nl, std::size_t count) {
  std::vector<SignalId> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(nl.add_key_input("keyinput" + std::to_string(i)));
  }
  return keys;
}

/// Comparator: key port equals the given word.
SignalId key_equals(Netlist& nl, const std::vector<SignalId>& keys,
                    const sim::BitVec& word, const std::string& hint) {
  return logic::build_equals_const(nl, keys, sim::bits_to_u64(word), hint);
}

/// Nets eligible for functional key gates.
std::vector<SignalId> lockable_nets(const Netlist& nl) {
  const auto fo = netlist::fanouts(nl);
  std::vector<SignalId> nets;
  for (SignalId s = 0; s < nl.size(); ++s) {
    const GateType t = nl.type(s);
    if ((netlist::is_comb_gate(t) || t == GateType::Dff) && !fo[s].empty()) {
      nets.push_back(s);
    }
  }
  return nets;
}

/// Build a one-hot stage chain: stage_i DFFs where stage 0 starts active;
/// `advance[i]` moves activation from stage i to i+1; reaching the end sets a
/// sticky `done` latch. Returns the done signal.
SignalId build_stage_chain(Netlist& nl, const std::vector<SignalId>& keys,
                           const std::vector<sim::BitVec>& stage_words,
                           const std::string& prefix) {
  const std::size_t stages = stage_words.size();
  std::vector<SignalId> stage_q;
  for (std::size_t i = 0; i < stages; ++i) {
    stage_q.push_back(nl.add_dff(netlist::k_no_signal,
                                 i == 0 ? DffInit::One : DffInit::Zero,
                                 prefix + "_stage" + std::to_string(i)));
  }
  const SignalId done = nl.add_dff(netlist::k_no_signal, DffInit::Zero,
                                   prefix + "_done");
  std::vector<SignalId> match(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    match[i] = key_equals(nl, keys, stage_words[i],
                          prefix + "_m" + std::to_string(i));
  }
  // stage_i+1 next = stage_i & match_i  |  stage_i+1 & ~match_{i+1}
  // stage_0 next = stage_0 & ~match_0 (holds until its word arrives).
  for (std::size_t i = 0; i < stages; ++i) {
    const SignalId hold = nl.add_and(
        stage_q[i],
        nl.add_not(match[i], nl.fresh_name(prefix + "_nm")),
        nl.fresh_name(prefix + "_hold"));
    if (i == 0) {
      nl.set_dff_input(stage_q[0], hold);
    } else {
      const SignalId take = nl.add_and(stage_q[i - 1], match[i - 1],
                                       nl.fresh_name(prefix + "_adv"));
      nl.set_dff_input(stage_q[i],
                       nl.add_or(take, hold, nl.fresh_name(prefix + "_d")));
    }
  }
  // done latches when the last stage sees its word.
  const SignalId finish = nl.add_and(stage_q[stages - 1], match[stages - 1],
                                     nl.fresh_name(prefix + "_fin"));
  nl.set_dff_input(done, nl.add_or(done, finish, nl.fresh_name(prefix + "_dd")));
  return done;
}

}  // namespace

namespace {

/// Freeze every pre-existing (functional) DFF while `active` is low and
/// corrupt every distinct primary-output net with `corrupt`.
void gate_functional_mode(Netlist& out,
                          const std::vector<SignalId>& functional_dffs,
                          SignalId active, SignalId corrupt,
                          const std::string& prefix) {
  for (SignalId q : functional_dffs) {
    const SignalId d = out.dff_input(q);
    out.set_dff_input(
        q, out.add_mux(active, q, d, out.fresh_name(prefix + "_en")));
  }
  std::vector<SignalId> targets = out.outputs();
  std::sort(targets.begin(), targets.end());
  targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
  for (SignalId target : targets) {
    const SignalId bad =
        out.add_xor(target, corrupt, out.fresh_name(prefix + "_po"));
    out.replace_all_readers(target, bad, {bad});
  }
}

}  // namespace

LockResult harpoon(const Netlist& nl, std::size_t key_bits,
                   std::size_t obf_states, util::Rng& rng) {
  if (obf_states == 0) throw std::invalid_argument("harpoon: need >= 1 stage");
  LockResult result{nl.clone(nl.name() + "_harpoon"), {}, {}, "harpoon", false};
  Netlist& out = result.locked;
  const std::vector<SignalId> functional_dffs = out.dffs();
  const std::vector<SignalId> keys = add_key_inputs(out, key_bits);

  std::vector<sim::BitVec> words;
  for (std::size_t i = 0; i < obf_states; ++i) {
    words.push_back(sim::random_bits(rng, key_bits));
  }
  const SignalId done = build_stage_chain(out, keys, words, "hp");
  const SignalId obf = out.add_not(done, out.fresh_name("hp_obf"));
  gate_functional_mode(out, functional_dffs, done, obf, "hp");

  result.key_schedule = std::move(words);
  result.startup_cycles = obf_states;
  out.check();
  return result;
}

LockResult dk_lock(const Netlist& nl, std::size_t key_bits,
                   std::size_t activation_cycles, std::size_t locked_nets,
                   util::Rng& rng) {
  if (activation_cycles == 0) {
    throw std::invalid_argument("dk_lock: need >= 1 activation cycle");
  }
  LockResult result{nl.clone(nl.name() + "_dklock"), {}, {}, "dk_lock", false};
  Netlist& out = result.locked;
  const std::vector<SignalId> functional_dffs = out.dffs();
  const std::vector<SignalId> keys = add_key_inputs(out, key_bits);

  // Phase 1: activation words.
  std::vector<sim::BitVec> words;
  for (std::size_t i = 0; i < activation_cycles; ++i) {
    words.push_back(sim::random_bits(rng, key_bits));
  }
  const SignalId activated = build_stage_chain(out, keys, words, "dk");
  const SignalId inactive = out.add_not(activated, out.fresh_name("dk_off"));
  gate_functional_mode(out, functional_dffs, activated, inactive, "dk");

  // Phase 2: functional key gates. The functional word must differ from the
  // last activation word, otherwise the schedule is ambiguous.
  sim::BitVec fkey = sim::random_bits(rng, key_bits);
  if (fkey == words.back()) fkey[0] ^= 1;
  // Per-bit "wrong" indicators, shared across the key gates they drive.
  std::vector<SignalId> wrong_bit(key_bits);
  for (std::size_t kb = 0; kb < key_bits; ++kb) {
    wrong_bit[kb] = fkey[kb]
                        ? out.add_not(keys[kb], out.fresh_name("dk_w"))
                        : out.add_gate(GateType::Buf, {keys[kb]},
                                       out.fresh_name("dk_w"));
  }
  std::vector<SignalId> nets = lockable_nets(out);
  // Never lock the controller's own logic or the mode gating.
  nets.erase(std::remove_if(nets.begin(), nets.end(),
                            [&out](SignalId s) {
                              return out.signal_name(s).rfind("dk_", 0) == 0;
                            }),
             nets.end());
  rng.shuffle(nets);
  const std::size_t count = std::min(locked_nets, nets.size());
  for (std::size_t i = 0; i < count; ++i) {
    const SignalId target = nets[i];
    const SignalId gate = out.add_xor(target, wrong_bit[i % key_bits],
                                      out.fresh_name("dk_kg"));
    out.replace_all_readers(target, gate, {gate});
  }

  result.key_schedule = std::move(words);
  result.key_schedule.push_back(fkey);  // held forever (aperiodic)
  result.startup_cycles = activation_cycles;
  out.check();
  return result;
}

LockResult sled(const Netlist& nl, std::size_t key_bits,
                std::size_t locked_nets, util::Rng& rng) {
  if (key_bits < 2) throw std::invalid_argument("sled: need >= 2 seed bits");
  LockResult result{nl.clone(nl.name() + "_sled"), {}, {}, "sled"};
  Netlist& out = result.locked;
  const std::vector<SignalId> keys = add_key_inputs(out, key_bits);
  const sim::BitVec seed = sim::random_bits(rng, key_bits);

  // One-shot load flag: 0 on the first cycle (load seed), 1 afterwards.
  const SignalId loaded = out.add_dff(netlist::k_no_signal, DffInit::Zero,
                                      "sled_loaded");
  out.set_dff_input(loaded, out.add_const(true, out.fresh_name("sled_one")));

  // Fibonacci LFSR with taps on the last two registers; the user LFSR loads
  // the key port, the reference LFSR loads the correct seed (as constants).
  const auto build_lfsr = [&](const std::string& prefix,
                              const std::function<SignalId(std::size_t)>& seed_bit) {
    std::vector<SignalId> q;
    for (std::size_t i = 0; i < key_bits; ++i) {
      q.push_back(out.add_dff(netlist::k_no_signal, DffInit::Zero,
                              prefix + std::to_string(i)));
    }
    const SignalId fb = out.add_xor(q[key_bits - 1], q[key_bits - 2],
                                    out.fresh_name(prefix + "_fb"));
    for (std::size_t i = 0; i < key_bits; ++i) {
      const SignalId shifted = (i == 0) ? fb : q[i - 1];
      const SignalId d = out.add_mux(loaded, seed_bit(i), shifted,
                                     out.fresh_name(prefix + "_d"));
      out.set_dff_input(q[i], d);
    }
    return q;
  };
  const auto user = build_lfsr("sled_u", [&](std::size_t i) { return keys[i]; });
  const auto ref = build_lfsr("sled_r", [&](std::size_t i) {
    return out.add_const(seed[i] != 0, out.fresh_name("sled_c"));
  });

  // Stream difference: zero on every cycle iff the seeds match.
  const SignalId stream = out.add_xor(user[0], ref[0], out.fresh_name("sled_s"));

  std::vector<SignalId> nets = lockable_nets(out);
  nets.erase(std::remove_if(nets.begin(), nets.end(),
                            [&out](SignalId s) {
                              return out.signal_name(s).rfind("sled_", 0) == 0;
                            }),
             nets.end());
  rng.shuffle(nets);
  const std::size_t count = std::min(locked_nets, nets.size());
  if (count == 0) throw std::invalid_argument("sled: no lockable nets");
  for (std::size_t i = 0; i < count; ++i) {
    const SignalId target = nets[i];
    const SignalId gate = out.add_xor(target, stream, out.fresh_name("sled_kg"));
    out.replace_all_readers(target, gate, {gate});
  }

  result.correct_key = seed;
  out.check();
  return result;
}

}  // namespace cl::lock
