#include "lock/cac_lock.hpp"

#include <algorithm>
#include <stdexcept>

#include "logic/sop_builder.hpp"
#include "netlist/topo.hpp"

namespace cl::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Internal word the obfuscation block compares the key against: comb-gate
/// outputs of the ORIGINAL circuit, shuffled, cycled when the circuit is
/// smaller than the key. Using internal nets (not the primary inputs the
/// correction comparator reads) keeps the decoy comparator leaves
/// structurally distinct from the real ones, so strash cannot pair them up.
/// The flip target and its combinational fanout are excluded: the flip net
/// depends on every W bit, so splicing it back into a net W reads would
/// close a combinational cycle.
std::vector<SignalId> obfuscation_word(const Netlist& nl, std::size_t width,
                                       SignalId target, util::Rng& rng) {
  const auto fo = netlist::fanouts(nl);
  std::vector<bool> excluded(nl.size(), false);
  std::vector<SignalId> queue{target};
  excluded[target] = true;
  while (!queue.empty()) {
    const SignalId s = queue.back();
    queue.pop_back();
    for (SignalId reader : fo[s]) {
      if (excluded[reader] || !netlist::is_comb_gate(nl.type(reader))) continue;
      excluded[reader] = true;
      queue.push_back(reader);
    }
  }
  std::vector<SignalId> nets;
  for (SignalId s = 0; s < nl.size(); ++s) {
    if (netlist::is_comb_gate(nl.type(s)) && !excluded[s]) nets.push_back(s);
  }
  if (nets.empty()) {
    throw std::invalid_argument("cac_lock: circuit has no internal nets");
  }
  rng.shuffle(nets);
  std::vector<SignalId> word;
  word.reserve(width);
  for (std::size_t i = 0; i < width; ++i) word.push_back(nets[i % nets.size()]);
  return word;
}

}  // namespace

LockResult cac_lock(const Netlist& nl, std::size_t key_bits,
                    std::size_t decoy_bits, util::Rng& rng) {
  if (key_bits == 0) throw std::invalid_argument("cac_lock: key_bits == 0");
  if (nl.inputs().empty()) {
    throw std::invalid_argument("cac_lock: circuit has no inputs");
  }
  if (nl.outputs().empty()) {
    throw std::invalid_argument("cac_lock: circuit has no outputs");
  }
  LockResult result{nl.clone(nl.name() + "_cac2"), {}, {}, "cac_lock"};
  Netlist& out = result.locked;

  // Protected input word: the first min(key_bits, #inputs) primary inputs
  // (the point-function shape shared with TTLock/SFLL).
  const std::size_t width = std::min(key_bits, out.inputs().size());
  const std::vector<SignalId> x(out.inputs().begin(),
                                out.inputs().begin() + static_cast<long>(width));

  // Output the flip will be spliced into — chosen up front so the
  // obfuscation word can avoid its fanout cone. W is drawn now, before any
  // lock gates exist, so it only taps original design logic.
  const SignalId target = out.outputs()[rng.next_below(out.outputs().size())];
  const std::vector<SignalId> w =
      obfuscation_word(out, width + decoy_bits, target, rng);

  // One key port, real and decoy positions interleaved by the rng so the
  // port order reveals nothing.
  const std::size_t total = width + decoy_bits;
  std::vector<std::size_t> positions(total);
  for (std::size_t i = 0; i < total; ++i) positions[i] = i;
  rng.shuffle(positions);
  // positions[0..width) are the real bits, the rest decoys.
  std::vector<SignalId> keys(total);
  for (std::size_t i = 0; i < total; ++i) {
    keys[i] = out.add_key_input("keyinput" + std::to_string(i));
  }
  result.correct_key.assign(total, 0);

  // Secret protected pattern P over X.
  const sim::BitVec pattern = sim::random_bits(rng, width);

  // Corruption unit (hardwired): fires exactly on X == P.
  std::vector<SignalId> prot_bits;
  for (std::size_t i = 0; i < width; ++i) {
    prot_bits.push_back(pattern[i]
                            ? out.add_gate(GateType::Buf, {x[i]},
                                           out.fresh_name("cac_p"))
                            : out.add_not(x[i], out.fresh_name("cac_p")));
  }
  const SignalId corrupt = logic::build_and_tree(out, prot_bits, "cac_prot");

  // Correction unit (keyed): cancels the flip when the real key word encodes
  // P. Per-leaf polarity is random — an XOR leaf stores the inverted pattern
  // bit — so no gate shape reveals a key value (CAC 2.0's obfuscated bits).
  std::vector<SignalId> eq_bits;
  for (std::size_t i = 0; i < width; ++i) {
    const std::size_t pos = positions[i];
    const bool invert = rng.chance(1, 2);
    const SignalId leaf =
        invert ? out.add_xor(x[i], keys[pos], out.fresh_name("cac_eq"))
               : out.add_xnor(x[i], keys[pos], out.fresh_name("cac_eq"));
    eq_bits.push_back(leaf);
    result.correct_key[pos] = invert ? !pattern[i] : pattern[i];
  }
  const SignalId restore = logic::build_and_tree(out, eq_bits, "cac_rest");
  SignalId flip = out.add_xor(corrupt, restore, out.fresh_name("cac_flip"));

  // Obfuscation block: compare the FULL key word (real + decoy bits) against
  // an internal-net word W and against ~W. Both matching at once is
  // impossible for any width >= 1, so the conjunction is identically 0 and
  // XORing it into the flip path never changes the function — but every key
  // bit now has a second (or, for decoys, only) reader inside comparator
  // logic, which is exactly the multi-reader shape analysis::infer_key_hints
  // refuses to vote on. Decoy values are free: programmed at random into
  // correct_key, recorded in decoy_key_bits.
  {
    std::vector<SignalId> same_bits, diff_bits;
    for (std::size_t i = 0; i < total; ++i) {
      same_bits.push_back(out.add_xnor(w[i], keys[i], out.fresh_name("cac_g")));
      diff_bits.push_back(out.add_xor(w[i], keys[i], out.fresh_name("cac_h")));
    }
    const SignalId g = logic::build_and_tree(out, same_bits, "cac_gt");
    const SignalId h = logic::build_and_tree(out, diff_bits, "cac_ht");
    const SignalId never = out.add_and(g, h, out.fresh_name("cac_dead"));
    flip = out.add_xor(flip, never, out.fresh_name("cac_flip2"));
  }
  for (std::size_t i = width; i < total; ++i) {
    const std::size_t pos = positions[i];
    result.correct_key[pos] = rng.chance(1, 2) ? 1 : 0;
    result.decoy_key_bits.push_back(pos);
  }
  std::sort(result.decoy_key_bits.begin(), result.decoy_key_bits.end());

  // Splice the flip into the chosen primary output.
  const SignalId flipped = out.add_xor(target, flip, out.fresh_name("cac_out"));
  out.replace_all_readers(target, flipped, {flipped});
  out.check();
  return result;
}

}  // namespace cl::lock
