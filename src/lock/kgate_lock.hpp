// K-Gate Lock (Lopez & Rezaei, ASP-DAC'25 — the authors' prior multi-key
// scheme, paper ref [37]): input-encoding-based combinational multi-key
// locking. Selected primary inputs are re-encoded through key-controlled
// XOR lattices, so the value the core logic sees depends on which of the k
// valid key words is applied together with a matching input encoding. Fully
// combinational (no state holders), which is why — as the paper notes — it
// provides no structural benefit against dataflow/removal attacks.
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

/// Lock `encoded_inputs` primary inputs with a `key_bits`-wide port. The
/// correct key is a single static word (multi-key refers to the encoding
/// classes, not a schedule), recorded in LockResult::correct_key.
LockResult kgate_lock(const netlist::Netlist& nl, std::size_t key_bits,
                      std::size_t encoded_inputs, util::Rng& rng);

}  // namespace cl::lock
