// Combinational baseline locking schemes.
//
// These are the classic single-key techniques the paper's related-work
// section positions Cute-Lock against. They serve two purposes here:
// validating that our attack implementations genuinely break weak locks
// (XOR/MUX fall to the SAT attack; TTLock/SFLL fall to FALL), and providing
// the comparison points the evaluation tables assume.
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

/// EPIC-style random XOR/XNOR key-gate insertion on `key_bits` random
/// internal nets. Correct key bit = 0 for XOR gates, 1 for XNOR gates.
LockResult xor_lock(const netlist::Netlist& nl, std::size_t key_bits,
                    util::Rng& rng);

/// MUX locking: each key bit selects between the true net and a random decoy
/// net of similar logic level.
LockResult mux_lock(const netlist::Netlist& nl, std::size_t key_bits,
                    util::Rng& rng);

/// SARLock: flips one primary output when the (padded) input word equals the
/// key and the key is wrong. One-DIP-per-key SAT resistance profile.
LockResult sar_lock(const netlist::Netlist& nl, std::size_t key_bits,
                    util::Rng& rng);

/// Anti-SAT: two complementary AND blocks g(X xor K1) & ~g(X xor K2); the
/// flip signal stays 0 for every X iff K1 == K2 == correct pattern.
/// `key_bits` must be even (split across K1/K2).
LockResult anti_sat(const netlist::Netlist& nl, std::size_t key_bits,
                    util::Rng& rng);

/// TTLock: remove one protected input pattern from a chosen output cone and
/// restore it with a key comparator; correct key = protected pattern.
LockResult tt_lock(const netlist::Netlist& nl, std::size_t key_bits,
                   util::Rng& rng);

/// SFLL-HD: flip the output for inputs at Hamming distance `h` from the key;
/// restore-by-comparator with the same distance. h = 0 degenerates to TTLock.
LockResult sfll_hd(const netlist::Netlist& nl, std::size_t key_bits, int h,
                   util::Rng& rng);

}  // namespace cl::lock
