#include "lock/latch_lock.hpp"

#include <algorithm>
#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::lock {

using netlist::DffInit;
using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Nets eligible for retiming: combinational gates that are actually read
/// (by a gate, a DFF or a primary output). Inputs and DFF outputs are left
/// alone — the reference scheme retimes logic paths, not registers.
std::vector<SignalId> retimable_nets(const Netlist& nl) {
  const auto fo = netlist::fanouts(nl);
  std::vector<SignalId> nets;
  for (SignalId s = 0; s < nl.size(); ++s) {
    const bool read = !fo[s].empty() ||
                      std::find(nl.outputs().begin(), nl.outputs().end(), s) !=
                          nl.outputs().end();
    if (netlist::is_comb_gate(nl.type(s)) && read) nets.push_back(s);
  }
  return nets;
}

/// Polarity stage between a key input and its latch-pair select: Buf or Not
/// chosen by the rng. The stored correct bit absorbs the inversion, and the
/// key bit's only direct reader is a one-input gate — a shape
/// analysis::infer_key_hints classifies as Complex and refuses to vote on.
SignalId polarity(Netlist& nl, SignalId key, bool invert) {
  return invert ? nl.add_not(key, nl.fresh_name("llk_pol"))
                : nl.add_gate(GateType::Buf, {key}, nl.fresh_name("llk_pol"));
}

}  // namespace

LockResult latch_lock(const Netlist& nl, std::size_t key_bits,
                      std::size_t decoy_bits, util::Rng& rng) {
  if (key_bits == 0) throw std::invalid_argument("latch_lock: key_bits == 0");
  LockResult result{nl.clone(nl.name() + "_latch"), {}, {}, "latch_lock"};
  Netlist& out = result.locked;

  std::vector<SignalId> nets = retimable_nets(out);
  if (nets.empty()) {
    throw std::invalid_argument("latch_lock: no retimable nets");
  }
  rng.shuffle(nets);
  const std::size_t width = std::min(key_bits, nets.size());

  // One key port, real and decoy positions interleaved by the rng.
  const std::size_t total = width + decoy_bits;
  std::vector<std::size_t> positions(total);
  for (std::size_t i = 0; i < total; ++i) positions[i] = i;
  rng.shuffle(positions);
  std::vector<SignalId> keys(total);
  for (std::size_t i = 0; i < total; ++i) {
    keys[i] = out.add_key_input("keyinput" + std::to_string(i));
  }
  result.correct_key.assign(total, 0);

  // Real pairs: shadow register + key-selected transparency.
  for (std::size_t i = 0; i < width; ++i) {
    const SignalId n = nets[i];
    const std::size_t pos = positions[i];
    const bool invert = rng.chance(1, 2);
    // The pair is transparent when the select is 0; with a Not polarity
    // stage that means the correct stored bit is 1.
    result.correct_key[pos] = invert ? 1 : 0;
    const SignalId sel = polarity(out, keys[pos], invert);
    const SignalId shadow = out.add_dff(n, DffInit::Zero, out.fresh_name("llk_q"));
    const SignalId pair =
        out.add_mux(sel, n, shadow, out.fresh_name("llk_pair"));
    out.replace_all_readers(n, pair, {pair, shadow});
  }

  // Decoy pairs: a latch pair wired as a self-refreshing cell off a sampled
  // net. Its Q never reaches an output, so the programmed bit is free —
  // record the position so harnesses can enumerate the passing-key set.
  for (std::size_t i = width; i < total; ++i) {
    const std::size_t pos = positions[i];
    const bool invert = rng.chance(1, 2);
    result.correct_key[pos] = rng.chance(1, 2) ? 1 : 0;
    result.decoy_key_bits.push_back(pos);
    const SignalId sel = polarity(out, keys[pos], invert);
    const SignalId sample = rng.pick(nets);
    const SignalId dq =
        out.add_dff(netlist::k_no_signal, DffInit::Zero, out.fresh_name("llk_dq"));
    const SignalId hold = out.add_not(dq, out.fresh_name("llk_hold"));
    const SignalId d = out.add_mux(sel, sample, hold, out.fresh_name("llk_dd"));
    out.set_dff_input(dq, d);
  }
  std::sort(result.decoy_key_bits.begin(), result.decoy_key_bits.end());
  out.check();
  return result;
}

}  // namespace cl::lock
