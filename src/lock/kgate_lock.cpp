#include "lock/kgate_lock.hpp"

#include <algorithm>
#include <stdexcept>

#include "logic/sop_builder.hpp"

namespace cl::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

LockResult kgate_lock(const Netlist& nl, std::size_t key_bits,
                      std::size_t encoded_inputs, util::Rng& rng) {
  if (key_bits == 0) throw std::invalid_argument("kgate_lock: key_bits == 0");
  if (nl.inputs().empty()) {
    throw std::invalid_argument("kgate_lock: circuit has no inputs");
  }
  LockResult result{nl.clone(nl.name() + "_kgate"), {}, {}, "kgate_lock"};
  Netlist& out = result.locked;

  std::vector<SignalId> keys;
  for (std::size_t i = 0; i < key_bits; ++i) {
    keys.push_back(out.add_key_input("keyinput" + std::to_string(i)));
  }
  result.correct_key = sim::random_bits(rng, key_bits);

  // Input encoding: each selected input x is replaced (for all readers) by
  //   x' = x XOR (k_a XOR c_a) XOR (k_b XOR c_b)
  // where (a, b) are key taps and (c_a, c_b) the correct polarities — the
  // lattice evaluates to x only under a key word in the correct coset.
  std::vector<SignalId> pis = out.inputs();
  rng.shuffle(pis);
  const std::size_t count = std::min(encoded_inputs, pis.size());
  for (std::size_t i = 0; i < count; ++i) {
    const SignalId x = pis[i];
    const std::size_t a = rng.next_below(key_bits);
    std::size_t b = rng.next_below(key_bits);
    if (key_bits > 1 && b == a) b = (b + 1) % key_bits;
    // delta_a = k_a XOR correct_a : 0 under the correct key.
    const SignalId delta_a =
        result.correct_key[a]
            ? out.add_not(keys[a], out.fresh_name("kg_da"))
            : out.add_gate(GateType::Buf, {keys[a]}, out.fresh_name("kg_da"));
    const SignalId delta_b =
        result.correct_key[b]
            ? out.add_not(keys[b], out.fresh_name("kg_db"))
            : out.add_gate(GateType::Buf, {keys[b]}, out.fresh_name("kg_db"));
    const SignalId mix = out.add_xor(delta_a, delta_b, out.fresh_name("kg_m"));
    const SignalId encoded = out.add_xor(x, mix, out.fresh_name("kg_x"));
    out.replace_all_readers(x, encoded, {encoded});
  }
  out.check();
  return result;
}

}  // namespace cl::lock
