#include "lock/lock_result.hpp"

#include <algorithm>
#include <stdexcept>

namespace cl::lock {

std::vector<sim::BitVec> LockResult::keys_for(std::size_t cycles) const {
  if (!is_dynamic()) return {correct_key};
  std::vector<sim::BitVec> out;
  out.reserve(cycles);
  for (std::size_t t = 0; t < cycles; ++t) {
    const std::size_t idx = periodic_schedule
                                ? t % key_schedule.size()
                                : std::min(t, key_schedule.size() - 1);
    out.push_back(key_schedule[idx]);
  }
  return out;
}

std::vector<sim::BitVec> LockResult::run_with_correct_key(
    const std::vector<sim::BitVec>& inputs) const {
  return sim::run_sequence(locked, inputs, keys_for(inputs.size()));
}

std::string validate_lock(const netlist::Netlist& original,
                          const LockResult& lock, util::Rng& rng,
                          std::size_t sequences, std::size_t cycles) {
  if (lock.locked.key_inputs().empty()) {
    return "locked netlist has no key inputs";
  }
  const std::size_t ki = lock.locked.key_inputs().size();
  bool wrong_key_corrupts = false;
  for (std::size_t trial = 0; trial < sequences; ++trial) {
    const auto stim =
        sim::random_stimulus(rng, cycles, original.inputs().size());
    const auto want = sim::run_sequence(original, stim);
    // Schemes with an activation prefix replay the original shifted by
    // startup_cycles; pad the stimulus with idle cycles up front.
    std::vector<sim::BitVec> padded(
        lock.startup_cycles, sim::BitVec(original.inputs().size(), 0));
    padded.insert(padded.end(), stim.begin(), stim.end());
    const auto got_full = lock.run_with_correct_key(padded);
    const std::vector<sim::BitVec> got(
        got_full.begin() + static_cast<long>(lock.startup_cycles),
        got_full.end());
    if (sim::first_divergence(want, got) != -1) {
      return "correct key does not restore functionality (sequence " +
             std::to_string(trial) + ")";
    }
    // A random wrong key should corrupt at least one of the sequences.
    sim::BitVec wrong = sim::random_bits(rng, ki);
    const auto& reference =
        lock.is_dynamic() ? lock.key_schedule[0] : lock.correct_key;
    if (wrong == reference) wrong[0] ^= 1;
    const auto bad = sim::run_sequence(lock.locked, stim, {wrong});
    if (sim::first_divergence(want, bad) != -1) wrong_key_corrupts = true;
  }
  if (!wrong_key_corrupts) {
    return "no random wrong key corrupted any output";
  }
  return {};
}

}  // namespace cl::lock
