// CAC 2.0 (Aksoy et al., "CAC 2.0: An Improved Corrupt-and-Correct Logic
// Locking Technique Resistant to Structural Analysis"): corrupt-and-correct
// locking hardened against SCOPE-style synthesis-differential inference.
//
// The base CAC scheme is TTLock-shaped: a hardwired corruption unit flips one
// primary output on a secret protected input pattern, and a keyed correction
// comparator cancels the flip when the key equals that pattern. CAC 2.0 adds
// the two structural-analysis countermeasures this module reproduces:
//
//  * obfuscated key bits — every correction-comparator leaf picks a random
//    XOR/XNOR polarity (the stored correct key bit absorbs the inversion), so
//    no single gate's shape reveals a key value; and every key bit, real or
//    decoy, is additionally tapped by the obfuscation block below, so no bit
//    has the single-reader shape SCOPE can vote on.
//  * decoy key bits — extra key inputs routed through an obfuscation block
//    that is functionally inert by construction: two comparators test the
//    full key word against an internal-net word W and against ~W, and their
//    conjunction (both true is impossible for any width >= 1) is XORed into
//    the flip path. The block looks like live correction logic but never
//    fires, so ANY value of the decoy bits yields a working key — the lock
//    has 2^decoy_bits correct keys, the regime where the one-key premise
//    (judging attacks by ground-truth key equality) breaks down (Hu et al.).
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

/// Lock with `key_bits` real (correction) bits and `decoy_bits` obfuscated
/// decoy bits; the key port is key_bits + decoy_bits wide, with real and
/// decoy positions interleaved by `rng`. LockResult::correct_key stores the
/// protected pattern (polarity-adjusted) at real positions and the
/// rng-programmed — functionally irrelevant — values at decoy positions.
/// Every key whose real positions match is a passing key.
/// The decoy positions land in LockResult::decoy_key_bits, so harnesses can
/// enumerate the full passing-key set.
LockResult cac_lock(const netlist::Netlist& nl, std::size_t key_bits,
                    std::size_t decoy_bits, util::Rng& rng);

}  // namespace cl::lock
