// Common result type for locking transforms.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/sequence.hpp"

namespace cl::lock {

/// A locked netlist together with its secret.
///
/// Static-key schemes fill `correct_key` only. Time-based schemes fill
/// `key_schedule`: for a periodic schedule (the Cute-Lock family) the key
/// expected on cycle t is key_schedule[t % size]; for an aperiodic one
/// (DK-Lock / HARPOON activation prefixes) it is key_schedule[min(t, size-1)]
/// — the last entry is held forever. When `key_schedule` is non-empty it
/// takes precedence over `correct_key`.
struct LockResult {
  netlist::Netlist locked;
  sim::BitVec correct_key;
  std::vector<sim::BitVec> key_schedule;
  std::string scheme;
  bool periodic_schedule = true;

  /// Activation prefix length: schemes with an unlock phase (HARPOON,
  /// DK-Lock) hold the functional state at reset and corrupt outputs for the
  /// first `startup_cycles` cycles; thereafter the locked circuit replays the
  /// original from its reset state, delayed by this many cycles.
  std::size_t startup_cycles = 0;

  /// Key-bit positions (indices into correct_key / the key-input list) that
  /// do not influence the function: the lock accepts EVERY value there, so
  /// the correct-key set has 2^|decoy_key_bits| members. Multi-key schemes
  /// with obfuscated/decoy bits (CAC 2.0, latch-based decoy pairs) fill
  /// this; ground-truth key equality is a meaningless attack criterion for
  /// them (the one-key premise, Hu et al.) — use attack::verify_any_key.
  std::vector<std::size_t> decoy_key_bits{};

  bool is_dynamic() const { return !key_schedule.empty(); }

  /// Key vectors for `cycles` consecutive cycles starting at reset.
  std::vector<sim::BitVec> keys_for(std::size_t cycles) const;

  /// Run the locked circuit under the correct key material.
  std::vector<sim::BitVec> run_with_correct_key(
      const std::vector<sim::BitVec>& inputs) const;
};

/// Verify the lock is functionally transparent under the correct key and
/// corrupts outputs for a random wrong key, over random stimuli. Returns a
/// human-readable failure description or empty string on success.
std::string validate_lock(const netlist::Netlist& original,
                          const LockResult& lock, util::Rng& rng,
                          std::size_t sequences = 8, std::size_t cycles = 32);

}  // namespace cl::lock
