// Catalog of netlist-level locking schemes behind one build signature, so
// conformance tests, the rivals bench table and the CLI can iterate over
// every defense without knowing scheme-specific options. Each entry captures
// the traits evaluation code keys off: whether the lock adds state (scan
// exposure then changes the interface), whether it has more than one passing
// static key (the regime where ground-truth key equality — the one-key
// premise — is the wrong success criterion), and whether the correct key is
// a schedule rather than a static word.
//
// Cute-Lock-Beh locks an STG, not a netlist, so it is not registered here;
// harnesses that cover it synthesize from an FSM spec directly (see
// bench/table3_beh_logic_attacks.cpp).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

struct RegisteredLock {
  std::string name;    // stable handle used by tests / tables / CLI --scheme
  std::string scheme;  // LockResult::scheme the builder produces
  bool adds_state;     // inserts DFFs of its own (breaks scan exposure)
  bool multi_key;      // >1 passing key: decoy bits or a key schedule
  bool dynamic_key;    // correct key is a per-cycle schedule
  std::function<LockResult(const netlist::Netlist&, util::Rng&)> build;
};

/// All registered locks, in a stable order. Builders use small fixed key
/// widths suitable for the ISCAS'89-size circuits the tests and smoke
/// benches run on; scheme-specific options beyond that are defaulted.
const std::vector<RegisteredLock>& lock_registry();

/// Lookup by name; nullptr when absent.
const RegisteredLock* find_lock(const std::string& name);

/// Comma-separated registry names (for usage/error messages).
std::string lock_names();

}  // namespace cl::lock
