#include "lock/comb_locks.hpp"

#include <algorithm>
#include <stdexcept>

#include "logic/sop_builder.hpp"
#include "netlist/topo.hpp"

namespace cl::lock {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

namespace {

/// Internal nets eligible for key-gate insertion: combinational gate outputs
/// and DFF outputs that have at least one reader.
std::vector<SignalId> lockable_nets(const Netlist& nl) {
  const auto fo = netlist::fanouts(nl);
  std::vector<SignalId> nets;
  for (SignalId s = 0; s < nl.size(); ++s) {
    const GateType t = nl.type(s);
    const bool internal = netlist::is_comb_gate(t) || t == GateType::Dff;
    const bool read = !fo[s].empty() ||
                      std::find(nl.outputs().begin(), nl.outputs().end(), s) !=
                          nl.outputs().end();
    if (internal && read) nets.push_back(s);
  }
  return nets;
}

/// Input word used by the point-function schemes: the first
/// min(key_bits, #inputs) primary inputs.
std::vector<SignalId> input_word(const Netlist& nl, std::size_t width) {
  if (nl.inputs().empty()) {
    throw std::invalid_argument("point-function lock: circuit has no inputs");
  }
  const std::size_t w = std::min(width, nl.inputs().size());
  return {nl.inputs().begin(), nl.inputs().begin() + static_cast<long>(w)};
}

std::vector<SignalId> add_key_inputs(Netlist& nl, std::size_t count,
                                     std::size_t first_index = 0) {
  std::vector<SignalId> keys;
  keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    keys.push_back(
        nl.add_key_input("keyinput" + std::to_string(first_index + i)));
  }
  return keys;
}

/// XOR `flip` into one randomly chosen primary output.
void flip_output(Netlist& nl, SignalId flip, util::Rng& rng) {
  if (nl.outputs().empty()) {
    throw std::invalid_argument("lock: circuit has no outputs");
  }
  const std::size_t oi = rng.next_below(nl.outputs().size());
  const SignalId target = nl.outputs()[oi];
  const SignalId flipped =
      nl.add_xor(target, flip, nl.fresh_name("lockflip"));
  nl.replace_all_readers(target, flipped, {flipped});
}

/// Equality of `signals` against the constant packed in `bits`.
SignalId equals_bits(Netlist& nl, const std::vector<SignalId>& signals,
                     const sim::BitVec& bits, const std::string& hint) {
  return logic::build_equals_const(nl, signals, sim::bits_to_u64(bits), hint);
}

}  // namespace

LockResult xor_lock(const Netlist& nl, std::size_t key_bits, util::Rng& rng) {
  LockResult result{nl.clone(nl.name() + "_xorlock"), {}, {}, "xor_lock"};
  Netlist& out = result.locked;
  std::vector<SignalId> nets = lockable_nets(out);
  if (nets.size() < key_bits) {
    throw std::invalid_argument("xor_lock: not enough lockable nets");
  }
  rng.shuffle(nets);
  const std::vector<SignalId> keys = add_key_inputs(out, key_bits);
  for (std::size_t i = 0; i < key_bits; ++i) {
    const SignalId net = nets[i];
    const bool use_xnor = rng.chance(1, 2);
    const SignalId gate =
        use_xnor ? out.add_xnor(net, keys[i], out.fresh_name("kg"))
                 : out.add_xor(net, keys[i], out.fresh_name("kg"));
    out.replace_all_readers(net, gate, {gate});
    result.correct_key.push_back(use_xnor ? 1 : 0);
  }
  out.check();
  return result;
}

LockResult mux_lock(const Netlist& nl, std::size_t key_bits, util::Rng& rng) {
  LockResult result{nl.clone(nl.name() + "_muxlock"), {}, {}, "mux_lock"};
  Netlist& out = result.locked;
  const std::vector<SignalId> keys = add_key_inputs(out, key_bits);
  std::vector<SignalId> nets = lockable_nets(out);
  if (nets.size() < 2) {
    throw std::invalid_argument("mux_lock: not enough nets");
  }
  rng.shuffle(nets);
  std::size_t placed = 0;
  for (SignalId target : nets) {
    if (placed == key_bits) break;
    // Decoy must not be in the transitive fanout of the target (that would
    // create a combinational cycle through the new MUX).
    std::vector<bool> reaches(out.size(), false);
    {
      const auto fo = netlist::fanouts(out);
      std::vector<SignalId> stack{target};
      while (!stack.empty()) {
        const SignalId s = stack.back();
        stack.pop_back();
        if (reaches[s]) continue;
        reaches[s] = true;
        for (SignalId r : fo[s]) {
          if (netlist::is_comb_gate(out.type(r)) && !reaches[r]) {
            stack.push_back(r);
          }
        }
      }
    }
    std::vector<SignalId> decoys;
    for (SignalId d : nets) {
      if (d != target && !reaches[d]) decoys.push_back(d);
    }
    if (decoys.empty()) continue;
    const SignalId decoy = rng.pick(decoys);
    const bool true_on_one = rng.chance(1, 2);
    const SignalId mux =
        true_on_one
            ? out.add_mux(keys[placed], decoy, target, out.fresh_name("km"))
            : out.add_mux(keys[placed], target, decoy, out.fresh_name("km"));
    out.replace_all_readers(target, mux, {mux});
    result.correct_key.push_back(true_on_one ? 1 : 0);
    ++placed;
  }
  if (placed != key_bits) {
    throw std::invalid_argument("mux_lock: could not place all key MUXes");
  }
  out.check();
  return result;
}

LockResult sar_lock(const Netlist& nl, std::size_t key_bits, util::Rng& rng) {
  LockResult result{nl.clone(nl.name() + "_sarlock"), {}, {}, "sar_lock"};
  Netlist& out = result.locked;
  const std::vector<SignalId> x = input_word(out, key_bits);
  const std::vector<SignalId> keys = add_key_inputs(out, x.size());
  result.correct_key = sim::random_bits(rng, x.size());

  // eq = (X == K) bitwise comparator.
  std::vector<SignalId> eq_bits;
  for (std::size_t i = 0; i < x.size(); ++i) {
    eq_bits.push_back(out.add_xnor(x[i], keys[i], out.fresh_name("sar_eq")));
  }
  const SignalId x_eq_k = logic::build_and_tree(out, eq_bits, "sar_cmp");
  // mask = (K == K*): with the correct key the flip is permanently disabled.
  const SignalId k_eq_correct = equals_bits(out, keys, result.correct_key, "sar_ok");
  const SignalId not_ok = out.add_not(k_eq_correct, out.fresh_name("sar_wrong"));
  const SignalId flip = out.add_and(x_eq_k, not_ok, out.fresh_name("sar_flip"));
  flip_output(out, flip, rng);
  out.check();
  return result;
}

LockResult anti_sat(const Netlist& nl, std::size_t key_bits, util::Rng& rng) {
  if (key_bits < 2 || key_bits % 2 != 0) {
    throw std::invalid_argument("anti_sat: key_bits must be even and >= 2");
  }
  LockResult result{nl.clone(nl.name() + "_antisat"), {}, {}, "anti_sat"};
  Netlist& out = result.locked;
  const std::vector<SignalId> x = input_word(out, key_bits / 2);
  const std::size_t half = x.size();
  const std::vector<SignalId> keys = add_key_inputs(out, 2 * half);

  // g = AND(x XOR k1) ; gbar = NAND(x XOR k2) ; flip = g & gbar.
  std::vector<SignalId> t1, t2;
  for (std::size_t i = 0; i < half; ++i) {
    t1.push_back(out.add_xor(x[i], keys[i], out.fresh_name("as_a")));
    t2.push_back(out.add_xor(x[i], keys[half + i], out.fresh_name("as_b")));
  }
  const SignalId g = logic::build_and_tree(out, t1, "as_g");
  const SignalId g2 = logic::build_and_tree(out, t2, "as_h");
  const SignalId gbar = out.add_not(g2, out.fresh_name("as_nh"));
  const SignalId flip = out.add_and(g, gbar, out.fresh_name("as_flip"));
  flip_output(out, flip, rng);

  // Correct key: K1 == K2 (any shared pattern disables the flip for all X).
  const sim::BitVec r = sim::random_bits(rng, half);
  result.correct_key = r;
  result.correct_key.insert(result.correct_key.end(), r.begin(), r.end());
  out.check();
  return result;
}

LockResult tt_lock(const Netlist& nl, std::size_t key_bits, util::Rng& rng) {
  LockResult result{nl.clone(nl.name() + "_ttlock"), {}, {}, "tt_lock"};
  Netlist& out = result.locked;
  const std::vector<SignalId> x = input_word(out, key_bits);
  const std::vector<SignalId> keys = add_key_inputs(out, x.size());
  result.correct_key = sim::random_bits(rng, x.size());

  // Cube removal: corrupt the output on the protected pattern...
  const SignalId remove =
      equals_bits(out, x, result.correct_key, "tt_prot");
  // ...and the programmable restore: un-corrupt when X == K.
  std::vector<SignalId> eq_bits;
  for (std::size_t i = 0; i < x.size(); ++i) {
    eq_bits.push_back(out.add_xnor(x[i], keys[i], out.fresh_name("tt_eq")));
  }
  const SignalId restore = logic::build_and_tree(out, eq_bits, "tt_rest");
  const SignalId flip = out.add_xor(remove, restore, out.fresh_name("tt_flip"));
  flip_output(out, flip, rng);
  out.check();
  return result;
}

LockResult sfll_hd(const Netlist& nl, std::size_t key_bits, int h,
                   util::Rng& rng) {
  if (h < 0 || static_cast<std::size_t>(h) > key_bits) {
    throw std::invalid_argument("sfll_hd: h out of range");
  }
  LockResult result{nl.clone(nl.name() + "_sfll"), {}, {}, "sfll_hd"};
  Netlist& out = result.locked;
  const std::vector<SignalId> x = input_word(out, key_bits);
  const std::vector<SignalId> keys = add_key_inputs(out, x.size());
  result.correct_key = sim::random_bits(rng, x.size());

  // Popcount-equality comparator builder: sum the diff bits with a ripple
  // binary counter and compare against h.
  const auto hd_equals = [&out, h](const std::vector<SignalId>& diffs,
                                   const std::string& hint) {
    std::vector<SignalId> sum;  // binary, LSB first
    for (SignalId bit : diffs) {
      SignalId carry = bit;
      for (std::size_t j = 0; j < sum.size() && carry != netlist::k_no_signal; ++j) {
        const SignalId new_sum =
            out.add_xor(sum[j], carry, out.fresh_name(hint + "_s"));
        carry = out.add_and(sum[j], carry, out.fresh_name(hint + "_c"));
        sum[j] = new_sum;
      }
      if (carry != netlist::k_no_signal) sum.push_back(carry);
    }
    return logic::build_equals_const(out, sum, static_cast<std::uint64_t>(h),
                                     hint + "_eq");
  };

  // Corruption: HD(X, P) == h for the hidden pattern P. For h == 0 this is
  // the plain point-function comparator (X == P), which is also what the
  // degenerate hardware reduces to after constant propagation.
  SignalId corrupt = netlist::k_no_signal;
  if (h == 0) {
    corrupt = equals_bits(out, x, result.correct_key, "hd_p");
  } else {
    std::vector<SignalId> diff_p;
    for (std::size_t i = 0; i < x.size(); ++i) {
      diff_p.push_back(result.correct_key[i]
                           ? out.add_not(x[i], out.fresh_name("hd_np"))
                           : out.add_gate(GateType::Buf, {x[i]},
                                          out.fresh_name("hd_bp")));
    }
    corrupt = hd_equals(diff_p, "hd_p");
  }
  // Restore: HD(X, K) == h.
  std::vector<SignalId> diff_k;
  for (std::size_t i = 0; i < x.size(); ++i) {
    diff_k.push_back(out.add_xor(x[i], keys[i], out.fresh_name("hd_dk")));
  }
  const SignalId restore = h == 0
                               ? [&] {
                                   std::vector<SignalId> eq;
                                   for (std::size_t i = 0; i < x.size(); ++i) {
                                     eq.push_back(out.add_xnor(
                                         x[i], keys[i], out.fresh_name("hd_eq")));
                                   }
                                   return logic::build_and_tree(out, eq, "hd_k");
                                 }()
                               : hd_equals(diff_k, "hd_k");
  const SignalId flip = out.add_xor(corrupt, restore, out.fresh_name("hd_flip"));
  flip_output(out, flip, rng);
  out.check();
  return result;
}

}  // namespace cl::lock
