// Latch-based logic locking (Sweeney et al., "Latch-Based Logic Locking"):
// lock the *timing* of the design instead of its logic. The reference scheme
// retimes combinational paths through added latch pairs whose transparency
// is key-programmable; with the correct key a pair is transparent
// back-to-back and the path keeps its original cycle behavior, while a wrong
// key turns the pair into an extra register stage that skews the pipeline.
// Decoy latches that never affect the function are sprinkled in so the
// attacker cannot tell programmable timing elements from real ones.
//
// This module models the scheme on the repo's edge-triggered DFF primitive
// (the netlist has no level-sensitive latch; a transparent-or-delay pair
// collapses to "pass the net or its one-cycle-delayed copy"):
//
//  * real bit — a locked net n gains a shadow register q = DFF(n) and a
//    key-controlled MUX that feeds n's readers either n (correct key value:
//    transparent pair) or q (wrong value: the path is retimed by one cycle
//    and the state machine skews). The key input reaches the MUX select
//    through a polarity stage (Buf/Not chosen by the rng), so the stored
//    correct bit is obfuscated and the bit's reader shape is opaque to
//    SCOPE-style inference.
//  * decoy bit — a programmable latch pair wired as a self-refreshing
//    toggle cell off a sampled internal net; its output cone never reaches a
//    primary output, so EITHER key value works. The lock therefore has
//    2^decoy_bits correct keys (positions in LockResult::decoy_key_bits) —
//    like CAC 2.0, a scheme where ground-truth key equality is the wrong
//    attack-success criterion (the one-key premise, Hu et al.). Decoy cones
//    are sequential-only by design; analysis::lint reports them as the
//    info-level `latch-only-key` finding rather than dead logic.
#pragma once

#include "lock/lock_result.hpp"
#include "util/rng.hpp"

namespace cl::lock {

/// Lock `key_bits` internal nets with real latch pairs and add `decoy_bits`
/// decoy pairs; the key port is key_bits + decoy_bits wide with real and
/// decoy positions interleaved by `rng`. key_bits is capped at the number of
/// lockable internal nets. Throws when the circuit has no combinational
/// gates to retime.
LockResult latch_lock(const netlist::Netlist& nl, std::size_t key_bits,
                      std::size_t decoy_bits, util::Rng& rng);

}  // namespace cl::lock
