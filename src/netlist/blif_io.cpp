#include "netlist/blif_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "netlist/transform.hpp"
#include "util/strings.hpp"

namespace cl::netlist {

namespace {

using util::split;
using util::starts_with;
using util::trim;

struct Cover {
  std::vector<std::string> inputs;
  std::string output;
  std::vector<std::string> rows;  // "10-" style input parts
  std::vector<char> out_vals;     // '1' or '0' per row
  int line = 0;
};

struct Latch {
  std::string d;
  std::string q;
  DffInit init = DffInit::Zero;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("blif:" + std::to_string(line) + ": " + msg);
}

bool is_key_name(const std::string& name) {
  return starts_with(util::to_lower(name), "keyinput");
}

}  // namespace

Netlist read_blif(std::istream& in) {
  std::string model_name = "top";
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<Cover> covers;
  std::vector<Latch> latches;

  std::string raw;
  std::string pending;  // handles '\' line continuation
  int line_no = 0;
  Cover* open_cover = nullptr;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos) {
      raw = raw.substr(0, hash);
    }
    std::string line = std::string(trim(raw));
    if (line.empty()) continue;
    if (line.back() == '\\') {
      pending += line.substr(0, line.size() - 1) + " ";
      continue;
    }
    line = pending + line;
    pending.clear();

    if (line[0] == '.') {
      open_cover = nullptr;
      const auto tok = split(line);
      if (tok[0] == ".model") {
        if (tok.size() >= 2) model_name = tok[1];
      } else if (tok[0] == ".inputs") {
        input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".outputs") {
        output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".latch") {
        if (tok.size() < 3) fail(line_no, ".latch needs D and Q");
        Latch l;
        l.d = tok[1];
        l.q = tok[2];
        l.line = line_no;
        // Optional trailing fields: [<type> <control>] [<init-val>]
        if (tok.size() >= 4) {
          const std::string& last = tok.back();
          if (last == "0") l.init = DffInit::Zero;
          else if (last == "1") l.init = DffInit::One;
          else if (last == "2" || last == "3") l.init = DffInit::X;
        }
        latches.push_back(std::move(l));
      } else if (tok[0] == ".names") {
        if (tok.size() < 2) fail(line_no, ".names needs an output");
        Cover c;
        c.output = tok.back();
        c.inputs.assign(tok.begin() + 1, tok.end() - 1);
        c.line = line_no;
        covers.push_back(std::move(c));
        open_cover = &covers.back();
      } else if (tok[0] == ".end") {
        break;
      } else if (tok[0] == ".wire_load_slope" || tok[0] == ".default_input_arrival" ||
                 tok[0] == ".clock") {
        // Ignored physical/clock annotations.
      } else {
        fail(line_no, "unsupported directive: " + tok[0]);
      }
      continue;
    }

    // Cover row.
    if (open_cover == nullptr) fail(line_no, "cover row outside .names");
    const auto tok = split(line);
    if (open_cover->inputs.empty()) {
      // Constant: a single "1" row means const1; "0" or no rows means const0.
      if (tok.size() != 1) fail(line_no, "bad constant row");
      open_cover->rows.push_back("");
      open_cover->out_vals.push_back(tok[0][0]);
    } else {
      if (tok.size() != 2) fail(line_no, "bad cover row");
      if (tok[0].size() != open_cover->inputs.size()) {
        fail(line_no, "cover row width mismatch");
      }
      open_cover->rows.push_back(tok[0]);
      open_cover->out_vals.push_back(tok[1][0]);
    }
  }

  Netlist nl(model_name);
  for (const auto& n : input_names) {
    if (is_key_name(n)) nl.add_key_input(n);
    else nl.add_input(n);
  }
  // Latches first: Q pins are sequential sources; created floating and
  // wired once their D signals exist.
  std::vector<SignalId> latch_ids;
  for (const Latch& l : latches) {
    latch_ids.push_back(nl.add_dff(k_no_signal, l.init, l.q));
  }

  std::map<std::string, std::size_t> cover_by_output;
  for (std::size_t i = 0; i < covers.size(); ++i) {
    if (!cover_by_output.emplace(covers[i].output, i).second) {
      fail(covers[i].line, "signal defined twice: " + covers[i].output);
    }
  }

  std::vector<std::uint8_t> state(covers.size(), 0);
  const std::function<SignalId(const std::string&, int)> resolve =
      [&](const std::string& sig, int line) -> SignalId {
    const SignalId existing = nl.find(sig);
    if (existing != k_no_signal) return existing;
    const auto it = cover_by_output.find(sig);
    if (it == cover_by_output.end()) fail(line, "undefined signal: " + sig);
    const Cover& c = covers[it->second];
    if (state[it->second] == 1) fail(c.line, "combinational cycle through " + sig);
    state[it->second] = 1;

    std::vector<SignalId> ins;
    ins.reserve(c.inputs.size());
    for (const std::string& i : c.inputs) ins.push_back(resolve(i, c.line));

    SignalId out = k_no_signal;
    if (c.inputs.empty()) {
      const bool one = !c.out_vals.empty() && c.out_vals[0] == '1';
      out = nl.add_const(one, c.output);
    } else {
      // On-set rows OR'd together; each row is an AND of literals. BLIF also
      // allows off-set covers (output column '0'): complement at the end.
      // Whichever node is built last carries the cover's output name —
      // intermediates get fresh derived names — so single-gate covers read
      // back as single gates and write -> read -> write converges instead of
      // wrapping an extra Buf per round trip.
      const bool off_set = !c.out_vals.empty() && c.out_vals[0] == '0';
      for (char v : c.out_vals) {
        if ((v == '0') != off_set) fail(c.line, "mixed on/off-set cover");
      }
      const bool single_row = c.rows.size() == 1;
      std::vector<SignalId> terms;
      for (const std::string& row : c.rows) {
        const bool term_is_output = single_row && !off_set;
        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (row[i] != '-') idx.push_back(i);
        }
        if (idx.empty()) {
          terms.push_back(nl.add_const(
              true, term_is_output ? c.output : nl.fresh_name(c.output + "_t")));
        } else if (idx.size() == 1) {
          const std::size_t i = idx[0];
          if (row[i] == '0') {
            terms.push_back(nl.add_not(
                ins[i],
                term_is_output ? c.output : nl.fresh_name(c.output + "_n")));
          } else if (term_is_output) {
            terms.push_back(nl.add_gate(GateType::Buf, {ins[i]}, c.output));
          } else {
            terms.push_back(ins[i]);
          }
        } else {
          std::vector<SignalId> lits;
          for (std::size_t i : idx) {
            lits.push_back(row[i] == '0'
                               ? nl.add_not(ins[i],
                                            nl.fresh_name(c.output + "_n"))
                               : ins[i]);
          }
          terms.push_back(nl.add_gate(
              GateType::And, lits,
              term_is_output ? c.output : nl.fresh_name(c.output + "_p")));
        }
      }
      SignalId sum = k_no_signal;
      if (terms.empty()) {
        sum = nl.add_const(false, off_set ? nl.fresh_name(c.output + "_z")
                                          : c.output);
      } else if (terms.size() == 1) {
        sum = terms[0];
      } else {
        sum = nl.add_gate(GateType::Or, terms,
                          off_set ? nl.fresh_name(c.output + "_s") : c.output);
      }
      out = off_set ? nl.add_not(sum, c.output) : sum;
    }
    state[it->second] = 2;
    return out;
  };

  // Resolve covers in file order first: for topologically sorted files (such
  // as our own writer's output) node creation order then mirrors the file,
  // making write -> read -> write a fixpoint. Out-of-order references still
  // work through the recursive resolve.
  for (const Cover& c : covers) resolve(c.output, c.line);
  for (std::size_t i = 0; i < latches.size(); ++i) {
    nl.set_dff_input(latch_ids[i], resolve(latches[i].d, latches[i].line));
  }
  for (const std::string& o : output_names) {
    nl.add_output(resolve(o, 0));
  }
  nl.check();
  return nl;
}

Netlist read_blif_string(const std::string& text) {
  std::istringstream in(text);
  return read_blif(in);
}

Netlist read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_blif(in);
}

namespace {

/// Emit one gate as a .names cover.
void write_cover(std::ostream& out, const Netlist& nl, const Node& n) {
  out << ".names";
  for (SignalId f : n.fanins) out << ' ' << nl.signal_name(f);
  out << ' ' << n.name << '\n';
  const std::size_t k = n.fanins.size();
  switch (n.type) {
    case GateType::Buf: out << "1 1\n"; break;
    case GateType::Not: out << "0 1\n"; break;
    case GateType::And: out << std::string(k, '1') << " 1\n"; break;
    case GateType::Nand:
      for (std::size_t i = 0; i < k; ++i) {
        std::string row(k, '-');
        row[i] = '0';
        out << row << " 1\n";
      }
      break;
    case GateType::Or:
      for (std::size_t i = 0; i < k; ++i) {
        std::string row(k, '-');
        row[i] = '1';
        out << row << " 1\n";
      }
      break;
    case GateType::Nor: out << std::string(k, '0') << " 1\n"; break;
    case GateType::Xor:
    case GateType::Xnor: {
      // Enumerate parity rows; gates from our flows are 2-input so the
      // 2^k expansion stays tiny.
      const bool want_odd = (n.type == GateType::Xor);
      for (std::uint64_t m = 0; m < (1ULL << k); ++m) {
        const bool odd = (__builtin_popcountll(m) & 1) != 0;
        if (odd != want_odd) continue;
        std::string row(k, '0');
        for (std::size_t i = 0; i < k; ++i) {
          if ((m >> i) & 1ULL) row[i] = '1';
        }
        out << row << " 1\n";
      }
      break;
    }
    case GateType::Mux:
      out << "01- 1\n";  // sel=0 -> a
      out << "1-1 1\n";  // sel=1 -> b
      break;
    default: break;
  }
}

}  // namespace

void write_blif(std::ostream& out, const Netlist& nl) {
  out << ".model " << nl.name() << '\n';
  out << ".inputs";
  for (SignalId s : nl.inputs()) out << ' ' << nl.signal_name(s);
  for (SignalId s : nl.key_inputs()) out << ' ' << nl.signal_name(s);
  out << '\n';
  out << ".outputs";
  for (SignalId s : nl.outputs()) out << ' ' << nl.signal_name(s);
  out << '\n';
  for (SignalId s : nl.dffs()) {
    out << ".latch " << nl.signal_name(nl.dff_input(s)) << ' '
        << nl.signal_name(s) << " re clk ";
    switch (nl.dff_init(s)) {
      case DffInit::Zero: out << "0"; break;
      case DffInit::One: out << "1"; break;
      case DffInit::X: out << "2"; break;
    }
    out << '\n';
  }
  for (SignalId s = 0; s < nl.size(); ++s) {
    const Node& n = nl.node(s);
    if (n.type == GateType::Const0 || n.type == GateType::Const1) {
      out << ".names " << n.name << '\n';
      if (n.type == GateType::Const1) out << "1\n";
      continue;
    }
    if (!is_comb_gate(n.type)) continue;
    write_cover(out, nl, n);
  }
  out << ".end\n";
}

std::string write_blif_string(const Netlist& nl) {
  std::ostringstream out;
  write_blif(out, nl);
  return out.str();
}

void write_blif_file(const std::string& path, const Netlist& nl) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_blif(out, nl);
}

}  // namespace cl::netlist
