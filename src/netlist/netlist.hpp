// Gate-level sequential netlist IR.
//
// The model follows the ISCAS .bench convention: every signal is produced by
// exactly one node — a primary input, a key input, a constant, a combinational
// gate, or a D flip-flop (whose output is the FF's Q pin). Primary outputs are
// designated signals. This single-driver model keeps structural transforms
// (key-gate insertion, MUX-tree construction, cone rewiring) simple and safe.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace cl::netlist {

/// Index of a signal/node inside a Netlist. Stable across appends; transforms
/// that delete nodes invalidate ids (they return a compacted copy instead of
/// mutating in place).
using SignalId = std::uint32_t;
inline constexpr SignalId k_no_signal = 0xffffffffu;

/// Node kinds. Input/KeyInput/Const* are sources; Dff is the only sequential
/// element; the rest are combinational gates.
enum class GateType : std::uint8_t {
  Input,     // primary input, no fanins
  KeyInput,  // locking key bit, no fanins
  Const0,    // constant 0, no fanins
  Const1,    // constant 1, no fanins
  Buf,       // 1 fanin
  Not,       // 1 fanin
  And,       // >=2 fanins
  Nand,      // >=2 fanins
  Or,        // >=2 fanins
  Nor,       // >=2 fanins
  Xor,       // >=2 fanins (parity)
  Xnor,      // >=2 fanins (complemented parity)
  Mux,       // 3 fanins [sel, a, b]: out = sel ? b : a
  Dff,       // 1 fanin [d]; node's value is Q; has an init value
};

/// Human-readable gate name ("AND", "DFF", ...). Matches .bench keywords.
const char* gate_type_name(GateType t);

/// Parse a .bench keyword; case-insensitive. Returns nullopt on unknown.
std::optional<GateType> gate_type_from_name(std::string_view name);

/// True for Input/KeyInput/Const0/Const1 (no fanins).
bool is_source(GateType t);

/// True for combinational gates (everything except sources and Dff).
bool is_comb_gate(GateType t);

/// DFF power-up value.
enum class DffInit : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// One node == one signal. `fanins` are SignalIds of the driving signals.
struct Node {
  std::string name;
  GateType type = GateType::Buf;
  std::vector<SignalId> fanins;
  DffInit init = DffInit::Zero;  // meaningful only for Dff
};

/// Aggregate size statistics (used by reports and tests).
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t key_inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;  // combinational gates only
};

/// A named sequential netlist.
class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction ------------------------------------------------------

  SignalId add_input(const std::string& name);
  SignalId add_key_input(const std::string& name);
  SignalId add_const(bool value, const std::string& name = "");
  /// Add a combinational gate. Arity is validated against the type.
  SignalId add_gate(GateType type, std::vector<SignalId> fanins,
                    const std::string& name = "");
  /// Add a D flip-flop. Passing k_no_signal as `d` creates a self-looped
  /// ("floating") DFF whose D pin is wired later via set_dff_input — the
  /// standard pattern when the next-state cone is built after the register.
  SignalId add_dff(SignalId d, DffInit init = DffInit::Zero,
                   const std::string& name = "");
  /// Designate an existing signal as a primary output (duplicates allowed,
  /// matching .bench semantics where OUTPUT lines may repeat a signal).
  void add_output(SignalId s);

  /// Convenience single-output gates.
  SignalId add_not(SignalId a, const std::string& name = "");
  SignalId add_and(SignalId a, SignalId b, const std::string& name = "");
  SignalId add_or(SignalId a, SignalId b, const std::string& name = "");
  SignalId add_xor(SignalId a, SignalId b, const std::string& name = "");
  SignalId add_xnor(SignalId a, SignalId b, const std::string& name = "");
  SignalId add_mux(SignalId sel, SignalId a, SignalId b,
                   const std::string& name = "");

  // ---- access ------------------------------------------------------------

  std::size_t size() const { return nodes_.size(); }
  const Node& node(SignalId s) const { return nodes_.at(s); }
  GateType type(SignalId s) const { return nodes_.at(s).type; }
  const std::string& signal_name(SignalId s) const { return nodes_.at(s).name; }

  const std::vector<SignalId>& inputs() const { return inputs_; }
  const std::vector<SignalId>& key_inputs() const { return key_inputs_; }
  const std::vector<SignalId>& outputs() const { return outputs_; }
  const std::vector<SignalId>& dffs() const { return dffs_; }

  /// Lookup a signal by name; k_no_signal when absent.
  SignalId find(const std::string& name) const;

  /// D-pin driver of a DFF node.
  SignalId dff_input(SignalId dff) const;
  DffInit dff_init(SignalId dff) const { return nodes_.at(dff).init; }
  void set_dff_init(SignalId dff, DffInit init);

  NetlistStats stats() const;

  /// All primary inputs followed by all key inputs (the full controllable
  /// input vector, in a stable order).
  std::vector<SignalId> all_inputs() const;

  // ---- mutation ----------------------------------------------------------

  /// Re-route one fanin of `gate` from `from` to `to`.
  void replace_fanin(SignalId gate, SignalId from, SignalId to);

  /// Re-route every reader of `old_sig` (gate fanins, DFF D-pins, primary
  /// outputs) to `new_sig`, except fanins of nodes in `except`. Used to
  /// splice key gates / MUX trees onto an existing net.
  void replace_all_readers(SignalId old_sig, SignalId new_sig,
                           const std::vector<SignalId>& except = {});

  /// Change a DFF's D-pin driver.
  void set_dff_input(SignalId dff, SignalId d);

  /// Generate a signal name not yet in use, of the form <prefix><n>.
  std::string fresh_name(const std::string& prefix);

  // ---- integrity ---------------------------------------------------------

  /// Validate arities, name uniqueness, fanin ids, and combinational
  /// acyclicity. Throws std::logic_error describing the first violation.
  void check() const;

  /// Deep copy with a new name.
  Netlist clone(const std::string& new_name) const;

 private:
  SignalId add_node(Node n);

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> key_inputs_;
  std::vector<SignalId> outputs_;
  std::vector<SignalId> dffs_;
  std::unordered_map<std::string, SignalId> by_name_;
  std::uint64_t fresh_counter_ = 0;
};

}  // namespace cl::netlist
