// Structural analyses over a Netlist: topological order of the combinational
// core, logic levels, fanout lists, and transitive fanin/fanout cones.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace cl::netlist {

/// Level-sorted topological view of the combinational core — the single
/// levelization point every evaluator (compiled simulator, CNF encoder,
/// structural analyses) builds on. `order` lists sources and DFF Qs first
/// (level 0), then combinational gates grouped by logic level in ascending
/// SignalId order within each level; `level_begin[l] .. level_begin[l+1]`
/// delimits level l inside `order` (level 0 = the sources).
struct Levelization {
  std::vector<SignalId> order;
  std::vector<int> level;                 // per SignalId
  std::vector<std::size_t> level_begin;   // size num_levels + 1
  std::size_t num_levels() const { return level_begin.size() - 1; }
};

/// Compute the levelization. Throws on combinational cycles.
Levelization levelize(const Netlist& nl);

/// Topological order of all nodes such that every combinational gate appears
/// after its fanins. Sources and DFFs (whose Q is a sequential source) come
/// first. Throws on combinational cycles. (Convenience view of levelize().)
std::vector<SignalId> topo_order(const Netlist& nl);

/// Logic level per node: sources/DFF-Q are level 0; a gate is 1 + max fanin
/// level. Indexed by SignalId. (Convenience view of levelize().)
std::vector<int> logic_levels(const Netlist& nl);

/// Fanout adjacency: for each signal, the list of nodes reading it (gate
/// fanins and DFF D-pins). Primary-output designations are not included.
std::vector<std::vector<SignalId>> fanouts(const Netlist& nl);

/// Transitive fanin cone of `roots`, stopping at (and including) sources and
/// DFF outputs. Returned as a membership flag vector indexed by SignalId.
std::vector<bool> comb_fanin_cone(const Netlist& nl,
                                  const std::vector<SignalId>& roots);

/// Signals of the combinational next-state/output logic that a given signal
/// structurally depends on, restricted to key inputs. Convenience for the
/// structural attacks.
std::vector<SignalId> keys_in_cone(const Netlist& nl, SignalId root);

/// For every DFF d, the set of DFFs whose Q appears in the combinational
/// fanin cone of d's D pin — the register dependency graph used by DANA.
std::vector<std::vector<SignalId>> dff_dependencies(const Netlist& nl);

}  // namespace cl::netlist
