// Lightweight logic optimization ("synthesis cleanup"): constant
// propagation, unit/idempotence simplification, double-inverter removal,
// structural hashing, and dead-logic sweep. Applied by the overhead flow so
// the Fig. 4 numbers reflect an optimizing synthesis tool (Genus optimizes;
// a raw netlist comparison would overstate everyone's overhead).
#pragma once

#include "netlist/netlist.hpp"

namespace cl::netlist {

/// One full optimization pass (iterated internally to a fixpoint, bounded).
/// Functionally equivalence-preserving; the interface (ports, DFF count and
/// init values) is preserved except that dead flip-flops are swept.
Netlist optimize(const Netlist& nl);

}  // namespace cl::netlist
