// Lightweight logic optimization ("synthesis cleanup"): constant
// propagation, unit/idempotence simplification, double-inverter removal,
// structural hashing, and dead-logic sweep. Applied by the overhead flow so
// the Fig. 4 numbers reflect an optimizing synthesis tool (Genus optimizes;
// a raw netlist comparison would overstate everyone's overhead).
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace cl::netlist {

/// What one optimize() run did to the circuit. The analysis module's
/// SCOPE-style decision pass compares these between key-bit-pinned variants:
/// the wrong key value typically lets more constants propagate and sweeps
/// more logic than the right one (or vice versa for MUX locking).
struct OptimizeStats {
  std::size_t gates_removed = 0;        ///< comb gates in minus comb gates out
  std::size_t constants_propagated = 0; ///< gate outputs folded to 0/1
  std::size_t ffs_swept = 0;            ///< dead flip-flops removed
  std::size_t rounds = 0;               ///< sweep+strash rounds executed
};

/// One full optimization pass (iterated internally to a fixpoint, bounded).
/// Functionally equivalence-preserving; the interface (ports, DFF count and
/// init values) is preserved except that dead flip-flops are swept.
Netlist optimize(const Netlist& nl);

/// Same, reporting what the pass did into `stats`.
Netlist optimize(const Netlist& nl, OptimizeStats& stats);

}  // namespace cl::netlist
