// ISCAS .bench reader/writer.
//
// Grammar (as used by the ISCAS'89 / ITC'99 distributions and the logic-
// locking community):
//   INPUT(g)            primary input (names starting with "keyinput" are
//                       treated as locking key bits, the de-facto convention)
//   OUTPUT(g)           primary output
//   g = DFF(d)          D flip-flop; "# init g 0|1|x" comments set power-up
//   g = AND(a, b, ...)  gates: AND OR NAND NOR XOR XNOR NOT BUF MUX CONST0/1
// Comments start with '#'.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cl::netlist {

/// Parse .bench text. Throws std::runtime_error with a line number on
/// malformed input.
Netlist read_bench(std::istream& in, const std::string& name = "top");
Netlist read_bench_string(const std::string& text, const std::string& name = "top");
Netlist read_bench_file(const std::string& path);

/// Serialize to .bench. Key inputs are emitted as INPUT() lines with their
/// (keyinput-prefixed) names; DFF init values are recorded as comments.
void write_bench(std::ostream& out, const Netlist& nl);
std::string write_bench_string(const Netlist& nl);
void write_bench_file(const std::string& path, const Netlist& nl);

}  // namespace cl::netlist
