#include "netlist/topo.hpp"

#include <algorithm>
#include <stdexcept>

namespace cl::netlist {

std::vector<SignalId> topo_order(const Netlist& nl) {
  const std::size_t n = nl.size();
  std::vector<SignalId> order;
  order.reserve(n);
  // Kahn's algorithm over combinational edges only.
  std::vector<std::uint32_t> pending(n, 0);
  for (SignalId id = 0; id < n; ++id) {
    if (!is_comb_gate(nl.type(id))) continue;
    std::uint32_t deg = 0;
    for (SignalId f : nl.node(id).fanins) {
      if (is_comb_gate(nl.type(f))) ++deg;
    }
    pending[id] = deg;
  }
  std::vector<std::vector<SignalId>> fo = fanouts(nl);
  std::vector<SignalId> ready;
  for (SignalId id = 0; id < n; ++id) {
    if (!is_comb_gate(nl.type(id))) {
      order.push_back(id);  // sources and DFFs first
    } else if (pending[id] == 0) {
      ready.push_back(id);
    }
  }
  // Gates whose fanins are all sources/DFFs are immediately ready; release
  // the rest as their combinational fanins retire.
  std::size_t head = 0;
  while (head < ready.size()) {
    const SignalId id = ready[head++];
    order.push_back(id);
    for (SignalId reader : fo[id]) {
      if (!is_comb_gate(nl.type(reader))) continue;
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }
  if (order.size() != n) {
    throw std::logic_error("topo_order: combinational cycle detected");
  }
  return order;
}

std::vector<int> logic_levels(const Netlist& nl) {
  std::vector<int> level(nl.size(), 0);
  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    int best = 0;
    for (SignalId f : nl.node(id).fanins) best = std::max(best, level[f]);
    level[id] = best + 1;
  }
  return level;
}

std::vector<std::vector<SignalId>> fanouts(const Netlist& nl) {
  std::vector<std::vector<SignalId>> fo(nl.size());
  for (SignalId id = 0; id < nl.size(); ++id) {
    for (SignalId f : nl.node(id).fanins) fo[f].push_back(id);
  }
  return fo;
}

std::vector<bool> comb_fanin_cone(const Netlist& nl,
                                  const std::vector<SignalId>& roots) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<SignalId> stack = roots;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (in_cone[id]) continue;
    in_cone[id] = true;
    if (is_comb_gate(nl.type(id))) {
      for (SignalId f : nl.node(id).fanins) {
        if (!in_cone[f]) stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<SignalId> keys_in_cone(const Netlist& nl, SignalId root) {
  const std::vector<bool> cone = comb_fanin_cone(nl, {root});
  std::vector<SignalId> keys;
  for (SignalId k : nl.key_inputs()) {
    if (cone[k]) keys.push_back(k);
  }
  return keys;
}

std::vector<std::vector<SignalId>> dff_dependencies(const Netlist& nl) {
  std::vector<std::vector<SignalId>> deps;
  deps.reserve(nl.dffs().size());
  for (SignalId d : nl.dffs()) {
    const std::vector<bool> cone = comb_fanin_cone(nl, {nl.dff_input(d)});
    std::vector<SignalId> sources;
    for (SignalId q : nl.dffs()) {
      if (cone[q]) sources.push_back(q);
    }
    deps.push_back(std::move(sources));
  }
  return deps;
}

}  // namespace cl::netlist
