#include "netlist/topo.hpp"

#include <algorithm>
#include <stdexcept>

namespace cl::netlist {

Levelization levelize(const Netlist& nl) {
  const std::size_t n = nl.size();
  Levelization out;
  out.level.assign(n, 0);
  // Kahn's algorithm over combinational edges only; levels fall out of the
  // retirement order (a gate is 1 + max fanin level).
  std::vector<std::uint32_t> pending(n, 0);
  std::size_t num_gates = 0;
  for (SignalId id = 0; id < n; ++id) {
    if (!is_comb_gate(nl.type(id))) continue;
    ++num_gates;
    std::uint32_t deg = 0;
    for (SignalId f : nl.node(id).fanins) {
      if (is_comb_gate(nl.type(f))) ++deg;
    }
    pending[id] = deg;
  }
  std::vector<std::vector<SignalId>> fo = fanouts(nl);
  std::vector<SignalId> ready;
  for (SignalId id = 0; id < n; ++id) {
    if (is_comb_gate(nl.type(id)) && pending[id] == 0) ready.push_back(id);
  }
  // Gates whose fanins are all sources/DFFs are immediately ready; release
  // the rest as their combinational fanins retire.
  std::size_t head = 0;
  std::size_t retired = 0;
  int max_level = 0;
  while (head < ready.size()) {
    const SignalId id = ready[head++];
    ++retired;
    int best = 0;
    for (SignalId f : nl.node(id).fanins) {
      best = std::max(best, out.level[f]);
    }
    out.level[id] = best + 1;
    max_level = std::max(max_level, best + 1);
    for (SignalId reader : fo[id]) {
      if (!is_comb_gate(nl.type(reader))) continue;
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }
  if (retired != num_gates) {
    throw std::logic_error("levelize: combinational cycle detected");
  }
  // Counting sort into level groups: sources (level 0) first, then gates by
  // level, ascending SignalId within each level — a deterministic order the
  // sharded evaluator can chunk without synchronization inside a level.
  const std::size_t num_levels = static_cast<std::size_t>(max_level) + 1;
  std::vector<std::size_t> count(num_levels, 0);
  for (SignalId id = 0; id < n; ++id) {
    if (is_comb_gate(nl.type(id))) {
      ++count[static_cast<std::size_t>(out.level[id])];
    } else {
      ++count[0];
    }
  }
  out.level_begin.assign(num_levels + 1, 0);
  for (std::size_t l = 0; l < num_levels; ++l) {
    out.level_begin[l + 1] = out.level_begin[l] + count[l];
  }
  out.order.assign(n, 0);
  std::vector<std::size_t> cursor(out.level_begin.begin(),
                                  out.level_begin.end() - 1);
  for (SignalId id = 0; id < n; ++id) {
    const std::size_t l =
        is_comb_gate(nl.type(id)) ? static_cast<std::size_t>(out.level[id]) : 0;
    out.order[cursor[l]++] = id;
  }
  return out;
}

std::vector<SignalId> topo_order(const Netlist& nl) {
  return levelize(nl).order;
}

std::vector<int> logic_levels(const Netlist& nl) {
  return levelize(nl).level;
}

std::vector<std::vector<SignalId>> fanouts(const Netlist& nl) {
  std::vector<std::vector<SignalId>> fo(nl.size());
  for (SignalId id = 0; id < nl.size(); ++id) {
    for (SignalId f : nl.node(id).fanins) fo[f].push_back(id);
  }
  return fo;
}

std::vector<bool> comb_fanin_cone(const Netlist& nl,
                                  const std::vector<SignalId>& roots) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<SignalId> stack = roots;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (in_cone[id]) continue;
    in_cone[id] = true;
    if (is_comb_gate(nl.type(id))) {
      for (SignalId f : nl.node(id).fanins) {
        if (!in_cone[f]) stack.push_back(f);
      }
    }
  }
  return in_cone;
}

std::vector<SignalId> keys_in_cone(const Netlist& nl, SignalId root) {
  const std::vector<bool> cone = comb_fanin_cone(nl, {root});
  std::vector<SignalId> keys;
  for (SignalId k : nl.key_inputs()) {
    if (cone[k]) keys.push_back(k);
  }
  return keys;
}

std::vector<std::vector<SignalId>> dff_dependencies(const Netlist& nl) {
  std::vector<std::vector<SignalId>> deps;
  deps.reserve(nl.dffs().size());
  for (SignalId d : nl.dffs()) {
    const std::vector<bool> cone = comb_fanin_cone(nl, {nl.dff_input(d)});
    std::vector<SignalId> sources;
    for (SignalId q : nl.dffs()) {
      if (cone[q]) sources.push_back(q);
    }
    deps.push_back(std::move(sources));
  }
  return deps;
}

}  // namespace cl::netlist
