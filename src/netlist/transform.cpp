#include "netlist/transform.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::netlist {

Netlist remove_dangling(const Netlist& nl) {
  // Reachability from outputs and all DFF D-pins (a DFF is live if reachable
  // from an output through any sequential path).
  // Iterate: start from outputs; when a DFF becomes live its D-cone becomes
  // live too.
  std::vector<bool> live(nl.size(), false);
  std::vector<SignalId> stack;
  for (SignalId o : nl.outputs()) stack.push_back(o);
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (live[id]) continue;
    live[id] = true;
    const Node& n = nl.node(id);
    for (SignalId f : n.fanins) {
      if (!live[f]) stack.push_back(f);
    }
  }
  // Ports always survive (the interface must not change under cleanup).
  for (SignalId i : nl.inputs()) live[i] = true;
  for (SignalId k : nl.key_inputs()) live[k] = true;

  Netlist dst(nl.name());
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  std::vector<SignalId> live_dffs;
  // Pass 1: sources and live DFFs (Q pins are sequential sources).
  for (SignalId id = 0; id < nl.size(); ++id) {
    if (!live[id]) continue;
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  for (SignalId id : nl.dffs()) {
    if (!live[id]) continue;
    remap[id] = dst.add_dff(k_no_signal, nl.dff_init(id), nl.signal_name(id));
    live_dffs.push_back(id);
  }
  // Pass 2: combinational gates in topological order.
  for (SignalId id : topo_order(nl)) {
    if (!live[id] || !is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);
    std::vector<SignalId> fanins;
    fanins.reserve(n.fanins.size());
    for (SignalId f : n.fanins) fanins.push_back(remap[f]);
    remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
  }
  // Pass 3: wire D-pins and outputs.
  for (SignalId id : live_dffs) {
    dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  }
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  dst.check();
  return dst;
}

Netlist decompose_muxes(const Netlist& nl) {
  Netlist dst(nl.name());
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  std::vector<SignalId> dffs_src;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  for (SignalId id : nl.dffs()) {
    remap[id] = dst.add_dff(k_no_signal, nl.dff_init(id), nl.signal_name(id));
    dffs_src.push_back(id);
  }
  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);
    if (n.type == GateType::Mux) {
      const SignalId sel = remap[n.fanins[0]];
      const SignalId a = remap[n.fanins[1]];
      const SignalId b = remap[n.fanins[2]];
      const SignalId nsel = dst.add_not(sel, dst.fresh_name(n.name + "_ns"));
      const SignalId ta = dst.add_and(nsel, a, dst.fresh_name(n.name + "_a"));
      const SignalId tb = dst.add_and(sel, b, dst.fresh_name(n.name + "_b"));
      remap[id] = dst.add_or(ta, tb, n.name);
    } else {
      std::vector<SignalId> fanins;
      fanins.reserve(n.fanins.size());
      for (SignalId f : n.fanins) fanins.push_back(remap[f]);
      remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
    }
  }
  for (SignalId id : dffs_src) dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  return remove_dangling(dst);
}

Netlist strash(const Netlist& nl) {
  Netlist dst(nl.name());
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  std::vector<SignalId> dffs_src;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  for (SignalId id : nl.dffs()) {
    remap[id] = dst.add_dff(k_no_signal, nl.dff_init(id), nl.signal_name(id));
    dffs_src.push_back(id);
  }

  const auto commutative = [](GateType t) {
    return t == GateType::And || t == GateType::Nand || t == GateType::Or ||
           t == GateType::Nor || t == GateType::Xor || t == GateType::Xnor;
  };
  std::map<std::pair<GateType, std::vector<SignalId>>, SignalId> seen;
  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);
    std::vector<SignalId> fanins;
    fanins.reserve(n.fanins.size());
    for (SignalId f : n.fanins) fanins.push_back(remap[f]);
    if (n.type == GateType::Buf) {
      remap[id] = fanins[0];  // collapse; name is lost unless it is a port-like use
      continue;
    }
    std::vector<SignalId> key_fanins = fanins;
    if (commutative(n.type)) std::sort(key_fanins.begin(), key_fanins.end());
    const auto key = std::make_pair(n.type, key_fanins);
    const auto it = seen.find(key);
    if (it != seen.end()) {
      remap[id] = it->second;
    } else {
      remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
      seen.emplace(key, remap[id]);
    }
  }
  for (SignalId id : dffs_src) dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  return remove_dangling(dst);
}

Netlist scan_expose(const Netlist& nl) {
  Netlist dst(nl.name() + "_scan");
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  // Q pins become controllable primary inputs, keeping the original names so
  // cones stay recognizable.
  for (SignalId id : nl.dffs()) {
    remap[id] = dst.add_input(nl.signal_name(id));
  }
  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);
    std::vector<SignalId> fanins;
    fanins.reserve(n.fanins.size());
    for (SignalId f : n.fanins) fanins.push_back(remap[f]);
    remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
  }
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  // D pins become observable primary outputs.
  for (SignalId id : nl.dffs()) dst.add_output(remap[nl.dff_input(id)]);
  dst.check();
  return dst;
}

Netlist pin_signal(const Netlist& nl, SignalId source, bool value) {
  const GateType src_type = nl.type(source);
  if (src_type != GateType::Input && src_type != GateType::KeyInput) {
    throw std::invalid_argument("pin_signal: '" + nl.signal_name(source) +
                                "' is not an input or key input");
  }
  Netlist dst(nl.name());
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  std::vector<SignalId> dffs_src;
  for (SignalId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    if (id == source) remap[id] = dst.add_const(value, n.name);
    else if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  for (SignalId id : nl.dffs()) {
    remap[id] = dst.add_dff(k_no_signal, nl.dff_init(id), nl.signal_name(id));
    dffs_src.push_back(id);
  }
  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);
    std::vector<SignalId> fanins;
    fanins.reserve(n.fanins.size());
    for (SignalId f : n.fanins) fanins.push_back(remap[f]);
    remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
  }
  for (SignalId id : dffs_src) dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  dst.check();
  return dst;
}

std::unordered_map<std::string, SignalId> name_map(const Netlist& nl) {
  std::unordered_map<std::string, SignalId> m;
  for (SignalId id = 0; id < nl.size(); ++id) m.emplace(nl.signal_name(id), id);
  return m;
}

}  // namespace cl::netlist
