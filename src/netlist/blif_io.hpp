// Berkeley Logic Interchange Format (BLIF) reader/writer.
//
// Supported subset (what Yosys/ABC emit for mapped sequential circuits):
//   .model NAME / .inputs ... / .outputs ... / .latch D Q [type clk] [init]
//   .names <in...> <out> followed by cover rows ("1-0 1"), and .end
// On read, each .names cover becomes an AND/OR/NOT network (one product term
// per row). On write, each gate is emitted as a .names cover.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cl::netlist {

Netlist read_blif(std::istream& in);
Netlist read_blif_string(const std::string& text);
Netlist read_blif_file(const std::string& path);

void write_blif(std::ostream& out, const Netlist& nl);
std::string write_blif_string(const Netlist& nl);
void write_blif_file(const std::string& path, const Netlist& nl);

}  // namespace cl::netlist
