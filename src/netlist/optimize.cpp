#include "netlist/optimize.hpp"

#include <algorithm>
#include <map>

#include "netlist/topo.hpp"
#include "netlist/transform.hpp"

namespace cl::netlist {

namespace {

/// Tri-state constant lattice per signal.
enum class CVal : std::uint8_t { Zero, One, Unknown };

/// One rewriting sweep. Returns the rewritten netlist and sets `changed`.
/// `consts_propagated` is incremented once per gate output folded to 0/1.
Netlist sweep(const Netlist& nl, bool& changed, std::size_t& consts_propagated) {
  changed = false;
  Netlist dst(nl.name());
  std::vector<SignalId> remap(nl.size(), k_no_signal);
  std::vector<CVal> cval(nl.size(), CVal::Unknown);
  // Lazily-created shared constants.
  SignalId const0 = k_no_signal, const1 = k_no_signal;
  const auto c0 = [&]() {
    if (const0 == k_no_signal) const0 = dst.add_const(false, dst.fresh_name("opt_c0"));
    return const0;
  };
  const auto c1 = [&]() {
    if (const1 == k_no_signal) const1 = dst.add_const(true, dst.fresh_name("opt_c1"));
    return const1;
  };
  // NOT cache for inverter sharing and double-inverter removal.
  std::map<SignalId, SignalId> not_of;  // dst signal -> dst NOT(signal)

  for (SignalId id = 0; id < nl.size(); ++id) {
    const Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0) {
      remap[id] = c0();
      cval[id] = CVal::Zero;
      changed = true;  // merged into the shared constant
    } else if (n.type == GateType::Const1) {
      remap[id] = c1();
      cval[id] = CVal::One;
      changed = true;
    }
  }
  std::vector<SignalId> src_dffs = nl.dffs();
  for (SignalId id : src_dffs) {
    remap[id] = dst.add_dff(k_no_signal, nl.dff_init(id), nl.signal_name(id));
  }

  const auto mk_not = [&](SignalId s) {
    // NOT(NOT(x)) == x.
    for (const auto& [input, inverted] : not_of) {
      if (inverted == s) return input;
    }
    const auto it = not_of.find(s);
    if (it != not_of.end()) return it->second;
    const SignalId inv = dst.add_not(s, dst.fresh_name("opt_n"));
    not_of.emplace(s, inv);
    return inv;
  };

  for (SignalId id : topo_order(nl)) {
    if (!is_comb_gate(nl.type(id))) continue;
    const Node& n = nl.node(id);

    // Gather fanins with constants resolved.
    std::vector<SignalId> ins;
    std::vector<CVal> vals;
    for (SignalId f : n.fanins) {
      ins.push_back(remap[f]);
      vals.push_back(cval[f]);
    }
    const auto set_const = [&](bool one) {
      remap[id] = one ? c1() : c0();
      cval[id] = one ? CVal::One : CVal::Zero;
      changed = true;
      ++consts_propagated;
    };
    const auto forward = [&](std::size_t i) {
      remap[id] = ins[i];
      cval[id] = vals[i];
      changed = true;
    };

    switch (n.type) {
      case GateType::Buf:
        forward(0);
        break;
      case GateType::Not:
        if (vals[0] == CVal::Zero) set_const(true);
        else if (vals[0] == CVal::One) set_const(false);
        else {
          const SignalId inv = mk_not(ins[0]);
          remap[id] = inv;
          cval[id] = CVal::Unknown;
        }
        break;
      case GateType::And:
      case GateType::Nand: {
        std::vector<SignalId> live;
        bool any_zero = false;
        for (std::size_t i = 0; i < ins.size(); ++i) {
          if (vals[i] == CVal::Zero) any_zero = true;
          else if (vals[i] != CVal::One) live.push_back(ins[i]);
        }
        std::sort(live.begin(), live.end());
        live.erase(std::unique(live.begin(), live.end()), live.end());
        const bool invert = (n.type == GateType::Nand);
        if (any_zero) {
          set_const(invert);
        } else if (live.empty()) {
          set_const(!invert);
        } else if (live.size() == 1) {
          if (invert) {
            remap[id] = mk_not(live[0]);
            changed = true;
          } else {
            remap[id] = live[0];
            changed = true;
          }
        } else {
          if (live.size() != ins.size()) changed = true;
          remap[id] = dst.add_gate(n.type, live, n.name);
        }
        break;
      }
      case GateType::Or:
      case GateType::Nor: {
        std::vector<SignalId> live;
        bool any_one = false;
        for (std::size_t i = 0; i < ins.size(); ++i) {
          if (vals[i] == CVal::One) any_one = true;
          else if (vals[i] != CVal::Zero) live.push_back(ins[i]);
        }
        std::sort(live.begin(), live.end());
        live.erase(std::unique(live.begin(), live.end()), live.end());
        const bool invert = (n.type == GateType::Nor);
        if (any_one) {
          set_const(invert);
        } else if (live.empty()) {
          set_const(invert);
          // OR() of nothing is 0; NOR -> 1.
          if (invert) cval[id] = CVal::One;
        } else if (live.size() == 1) {
          if (invert) {
            remap[id] = mk_not(live[0]);
            changed = true;
          } else {
            remap[id] = live[0];
            changed = true;
          }
        } else {
          if (live.size() != ins.size()) changed = true;
          remap[id] = dst.add_gate(n.type, live, n.name);
        }
        break;
      }
      case GateType::Xor:
      case GateType::Xnor: {
        std::vector<SignalId> live;
        bool parity = (n.type == GateType::Xnor);
        for (std::size_t i = 0; i < ins.size(); ++i) {
          if (vals[i] == CVal::One) parity = !parity;
          else if (vals[i] != CVal::Zero) live.push_back(ins[i]);
        }
        // x ^ x == 0: cancel pairs.
        std::sort(live.begin(), live.end());
        std::vector<SignalId> reduced;
        for (std::size_t i = 0; i < live.size();) {
          if (i + 1 < live.size() && live[i] == live[i + 1]) {
            i += 2;
          } else {
            reduced.push_back(live[i]);
            ++i;
          }
        }
        if (reduced.empty()) {
          set_const(parity);
        } else if (reduced.size() == 1) {
          if (parity) remap[id] = mk_not(reduced[0]);
          else remap[id] = reduced[0];
          changed = true;
        } else {
          if (reduced.size() != ins.size() ||
              parity != (n.type == GateType::Xnor)) {
            changed = true;
          }
          remap[id] = dst.add_gate(parity ? GateType::Xnor : GateType::Xor,
                                   reduced, n.name);
        }
        break;
      }
      case GateType::Mux: {
        const SignalId sel = ins[0], a = ins[1], b = ins[2];
        if (vals[0] == CVal::Zero) forward(1);
        else if (vals[0] == CVal::One) forward(2);
        else if (a == b) forward(1);
        else if (vals[1] == CVal::Zero && vals[2] == CVal::One) {
          remap[id] = sel;  // mux(s,0,1) = s
          changed = true;
        } else if (vals[1] == CVal::One && vals[2] == CVal::Zero) {
          remap[id] = mk_not(sel);
          changed = true;
        } else {
          remap[id] = dst.add_mux(sel, a, b, n.name);
        }
        break;
      }
      default:
        break;
    }
  }

  for (SignalId id : src_dffs) dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  return remove_dangling(dst);
}

}  // namespace

Netlist optimize(const Netlist& nl) {
  OptimizeStats stats;
  return optimize(nl, stats);
}

Netlist optimize(const Netlist& nl, OptimizeStats& stats) {
  stats = OptimizeStats{};
  const NetlistStats before = nl.stats();
  Netlist current = strash(nl);
  for (int round = 0; round < 8; ++round) {
    ++stats.rounds;
    bool changed = false;
    Netlist next = sweep(current, changed, stats.constants_propagated);
    next = strash(next);
    const bool shrunk = next.size() < current.size();
    current = std::move(next);
    if (!changed && !shrunk) break;
  }
  current.check();
  const NetlistStats after = current.stats();
  stats.gates_removed = before.gates > after.gates ? before.gates - after.gates : 0;
  stats.ffs_swept = before.dffs > after.dffs ? before.dffs - after.dffs : 0;
  return current;
}

}  // namespace cl::netlist
