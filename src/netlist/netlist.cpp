#include "netlist/netlist.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace cl::netlist {

const char* gate_type_name(GateType t) {
  switch (t) {
    case GateType::Input: return "INPUT";
    case GateType::KeyInput: return "KEYINPUT";
    case GateType::Const0: return "CONST0";
    case GateType::Const1: return "CONST1";
    case GateType::Buf: return "BUF";
    case GateType::Not: return "NOT";
    case GateType::And: return "AND";
    case GateType::Nand: return "NAND";
    case GateType::Or: return "OR";
    case GateType::Nor: return "NOR";
    case GateType::Xor: return "XOR";
    case GateType::Xnor: return "XNOR";
    case GateType::Mux: return "MUX";
    case GateType::Dff: return "DFF";
  }
  return "?";
}

std::optional<GateType> gate_type_from_name(std::string_view name) {
  using util::iequals;
  struct Entry { const char* key; GateType type; };
  static constexpr Entry table[] = {
      {"BUF", GateType::Buf},     {"BUFF", GateType::Buf},
      {"NOT", GateType::Not},     {"INV", GateType::Not},
      {"AND", GateType::And},     {"NAND", GateType::Nand},
      {"OR", GateType::Or},       {"NOR", GateType::Nor},
      {"XOR", GateType::Xor},     {"XNOR", GateType::Xnor},
      {"MUX", GateType::Mux},     {"DFF", GateType::Dff},
      {"CONST0", GateType::Const0}, {"CONST1", GateType::Const1},
  };
  for (const auto& e : table) {
    if (iequals(name, e.key)) return e.type;
  }
  return std::nullopt;
}

bool is_source(GateType t) {
  return t == GateType::Input || t == GateType::KeyInput ||
         t == GateType::Const0 || t == GateType::Const1;
}

bool is_comb_gate(GateType t) { return !is_source(t) && t != GateType::Dff; }

namespace {

void check_arity(GateType t, std::size_t n) {
  bool ok = true;
  switch (t) {
    case GateType::Input:
    case GateType::KeyInput:
    case GateType::Const0:
    case GateType::Const1: ok = (n == 0); break;
    case GateType::Buf:
    case GateType::Not:
    case GateType::Dff: ok = (n == 1); break;
    case GateType::Mux: ok = (n == 3); break;
    default: ok = (n >= 2); break;
  }
  if (!ok) {
    throw std::invalid_argument(std::string("bad fanin count for ") +
                                gate_type_name(t) + ": " + std::to_string(n));
  }
}

}  // namespace

SignalId Netlist::add_node(Node n) {
  if (n.name.empty()) {
    n.name = fresh_name("n");
  }
  if (by_name_.count(n.name) != 0) {
    throw std::invalid_argument("duplicate signal name: " + n.name);
  }
  check_arity(n.type, n.fanins.size());
  const SignalId id = static_cast<SignalId>(nodes_.size());
  for (SignalId f : n.fanins) {
    // A DFF may reference itself (self-loop through the register is legal
    // and is how floating DFFs are created).
    if (f >= nodes_.size() && !(n.type == GateType::Dff && f == id)) {
      throw std::invalid_argument("fanin id out of range for " + n.name);
    }
  }
  by_name_.emplace(n.name, id);
  nodes_.push_back(std::move(n));
  return id;
}

SignalId Netlist::add_input(const std::string& name) {
  const SignalId id = add_node({name, GateType::Input, {}, DffInit::Zero});
  inputs_.push_back(id);
  return id;
}

SignalId Netlist::add_key_input(const std::string& name) {
  const SignalId id = add_node({name, GateType::KeyInput, {}, DffInit::Zero});
  key_inputs_.push_back(id);
  return id;
}

SignalId Netlist::add_const(bool value, const std::string& name) {
  return add_node({name, value ? GateType::Const1 : GateType::Const0, {},
                   DffInit::Zero});
}

SignalId Netlist::add_gate(GateType type, std::vector<SignalId> fanins,
                           const std::string& name) {
  if (!is_comb_gate(type)) {
    throw std::invalid_argument("add_gate: not a combinational gate type");
  }
  return add_node({name, type, std::move(fanins), DffInit::Zero});
}

SignalId Netlist::add_dff(SignalId d, DffInit init, const std::string& name) {
  if (d == k_no_signal) {
    d = static_cast<SignalId>(nodes_.size());  // self-loop: D = own Q
  }
  const SignalId id = add_node({name, GateType::Dff, {d}, init});
  dffs_.push_back(id);
  return id;
}

void Netlist::add_output(SignalId s) {
  if (s >= nodes_.size()) throw std::invalid_argument("add_output: bad id");
  outputs_.push_back(s);
}

SignalId Netlist::add_not(SignalId a, const std::string& name) {
  return add_gate(GateType::Not, {a}, name);
}
SignalId Netlist::add_and(SignalId a, SignalId b, const std::string& name) {
  return add_gate(GateType::And, {a, b}, name);
}
SignalId Netlist::add_or(SignalId a, SignalId b, const std::string& name) {
  return add_gate(GateType::Or, {a, b}, name);
}
SignalId Netlist::add_xor(SignalId a, SignalId b, const std::string& name) {
  return add_gate(GateType::Xor, {a, b}, name);
}
SignalId Netlist::add_xnor(SignalId a, SignalId b, const std::string& name) {
  return add_gate(GateType::Xnor, {a, b}, name);
}
SignalId Netlist::add_mux(SignalId sel, SignalId a, SignalId b,
                          const std::string& name) {
  return add_gate(GateType::Mux, {sel, a, b}, name);
}

SignalId Netlist::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? k_no_signal : it->second;
}

SignalId Netlist::dff_input(SignalId dff) const {
  const Node& n = nodes_.at(dff);
  if (n.type != GateType::Dff) throw std::invalid_argument("dff_input: not a DFF");
  return n.fanins[0];
}

void Netlist::set_dff_init(SignalId dff, DffInit init) {
  Node& n = nodes_.at(dff);
  if (n.type != GateType::Dff) throw std::invalid_argument("set_dff_init: not a DFF");
  n.init = init;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.inputs = inputs_.size();
  s.key_inputs = key_inputs_.size();
  s.outputs = outputs_.size();
  s.dffs = dffs_.size();
  for (const Node& n : nodes_) {
    if (is_comb_gate(n.type)) ++s.gates;
  }
  return s;
}

std::vector<SignalId> Netlist::all_inputs() const {
  std::vector<SignalId> v = inputs_;
  v.insert(v.end(), key_inputs_.begin(), key_inputs_.end());
  return v;
}

void Netlist::replace_fanin(SignalId gate, SignalId from, SignalId to) {
  Node& n = nodes_.at(gate);
  bool found = false;
  for (SignalId& f : n.fanins) {
    if (f == from) {
      f = to;
      found = true;
    }
  }
  if (!found) {
    throw std::invalid_argument("replace_fanin: " + nodes_.at(from).name +
                                " is not a fanin of " + n.name);
  }
}

void Netlist::replace_all_readers(SignalId old_sig, SignalId new_sig,
                                  const std::vector<SignalId>& except) {
  const auto excluded = [&](SignalId id) {
    return std::find(except.begin(), except.end(), id) != except.end();
  };
  for (SignalId id = 0; id < nodes_.size(); ++id) {
    if (excluded(id)) continue;
    for (SignalId& f : nodes_[id].fanins) {
      if (f == old_sig) f = new_sig;
    }
  }
  for (SignalId& o : outputs_) {
    if (o == old_sig) o = new_sig;
  }
}

void Netlist::set_dff_input(SignalId dff, SignalId d) {
  Node& n = nodes_.at(dff);
  if (n.type != GateType::Dff) throw std::invalid_argument("set_dff_input: not a DFF");
  n.fanins[0] = d;
}

std::string Netlist::fresh_name(const std::string& prefix) {
  for (;;) {
    std::string candidate = prefix + std::to_string(fresh_counter_++);
    if (by_name_.count(candidate) == 0) return candidate;
  }
}

void Netlist::check() const {
  for (SignalId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    check_arity(n.type, n.fanins.size());
    for (SignalId f : n.fanins) {
      if (f >= nodes_.size()) {
        throw std::logic_error("dangling fanin in " + n.name);
      }
    }
    const auto it = by_name_.find(n.name);
    if (it == by_name_.end() || it->second != id) {
      throw std::logic_error("name table inconsistent for " + n.name);
    }
  }
  // Combinational acyclicity: DFS over comb gates; DFF outputs are sources.
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::vector<Mark> mark(nodes_.size(), Mark::White);
  std::vector<SignalId> stack;
  for (SignalId root = 0; root < nodes_.size(); ++root) {
    if (mark[root] != Mark::White) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const SignalId id = stack.back();
      if (mark[id] == Mark::White) {
        mark[id] = Mark::Grey;
        if (is_comb_gate(nodes_[id].type)) {
          for (SignalId f : nodes_[id].fanins) {
            if (!is_comb_gate(nodes_[f].type)) continue;
            if (mark[f] == Mark::Grey) {
              throw std::logic_error("combinational cycle through " +
                                     nodes_[f].name);
            }
            if (mark[f] == Mark::White) stack.push_back(f);
          }
        }
      } else {
        mark[id] = Mark::Black;
        stack.pop_back();
      }
    }
  }
}

Netlist Netlist::clone(const std::string& new_name) const {
  Netlist copy = *this;
  copy.name_ = new_name;
  return copy;
}

}  // namespace cl::netlist
