// Structural Verilog writer (for inspection and for feeding external
// synthesis flows). Gate-level output: continuous assigns for combinational
// gates and one always-block per DFF.
#pragma once

#include <iosfwd>
#include <string>

#include "netlist/netlist.hpp"

namespace cl::netlist {

void write_verilog(std::ostream& out, const Netlist& nl);
std::string write_verilog_string(const Netlist& nl);
void write_verilog_file(const std::string& path, const Netlist& nl);

}  // namespace cl::netlist
