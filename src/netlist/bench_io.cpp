#include "netlist/bench_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <stdexcept>

#include "netlist/transform.hpp"

#include "util/strings.hpp"

namespace cl::netlist {

namespace {

using util::starts_with;
using util::to_lower;
using util::trim;

struct PendingGate {
  std::string output;
  std::string op;
  std::vector<std::string> args;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw std::runtime_error("bench:" + std::to_string(line) + ": " + msg);
}

bool is_key_name(const std::string& name) {
  return starts_with(to_lower(name), "keyinput");
}

}  // namespace

Netlist read_bench(std::istream& in, const std::string& name) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingGate> gates;
  std::map<std::string, DffInit> init_overrides;

  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = raw;
    // "# init <sig> <0|1|x>" comments carry DFF power-up values.
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) {
      const auto comment = util::split(line.substr(hash + 1));
      if (comment.size() == 3 && util::iequals(comment[0], "init")) {
        DffInit v = DffInit::X;
        if (comment[2] == "0") v = DffInit::Zero;
        else if (comment[2] == "1") v = DffInit::One;
        init_overrides[comment[1]] = v;
      }
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) / OUTPUT(x)
      const std::size_t open = line.find('(');
      const std::size_t close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        fail(line_no, "expected INPUT(...)/OUTPUT(...) or assignment");
      }
      const std::string kw(trim(line.substr(0, open)));
      const std::string arg(trim(line.substr(open + 1, close - open - 1)));
      if (arg.empty()) fail(line_no, "empty port name");
      if (util::iequals(kw, "INPUT")) {
        input_names.push_back(arg);
      } else if (util::iequals(kw, "OUTPUT")) {
        output_names.push_back(arg);
      } else {
        fail(line_no, "unknown directive: " + kw);
      }
      continue;
    }

    // out = OP(a, b, ...)
    PendingGate g;
    g.line = line_no;
    g.output = std::string(trim(line.substr(0, eq)));
    std::string_view rhs = trim(line.substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (open == std::string_view::npos || close == std::string_view::npos ||
        close < open) {
      fail(line_no, "expected OP(args) on right-hand side");
    }
    g.op = std::string(trim(rhs.substr(0, open)));
    for (const auto& a : util::split(rhs.substr(open + 1, close - open - 1), ", \t")) {
      g.args.push_back(a);
    }
    gates.push_back(std::move(g));
  }

  Netlist nl(name);
  // Declare inputs (splitting off key inputs by naming convention).
  for (const std::string& in_name : input_names) {
    if (is_key_name(in_name)) {
      nl.add_key_input(in_name);
    } else {
      nl.add_input(in_name);
    }
  }

  // Two passes: create all gate outputs (so forward references resolve), then
  // connect fanins. DFFs are created in pass one with a placeholder D that is
  // fixed in pass two; combinational gates are created in dependency order.
  // Simpler and fully general: create every signal as a placeholder BUF of
  // itself is not possible, so instead resolve names lazily by building an
  // explicit symbol table first.
  std::map<std::string, std::size_t> gate_by_output;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!gate_by_output.emplace(gates[i].output, i).second) {
      fail(gates[i].line, "signal defined twice: " + gates[i].output);
    }
  }

  // DFFs first: their outputs are sequential sources, breaking all cycles.
  // They are created floating (self-looped) and wired after all signals exist.
  std::vector<SignalId> dff_ids(gates.size(), k_no_signal);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const PendingGate& g = gates[i];
    const auto type = gate_type_from_name(g.op);
    if (!type) fail(g.line, "unknown gate type: " + g.op);
    if (*type != GateType::Dff) continue;
    if (g.args.size() != 1) fail(g.line, "DFF takes exactly one argument");
    DffInit init = DffInit::Zero;
    if (const auto it = init_overrides.find(g.output); it != init_overrides.end()) {
      init = it->second;
    }
    dff_ids[i] = nl.add_dff(k_no_signal, init, g.output);
  }

  // Combinational gates in topological order via DFS over name references.
  std::vector<std::uint8_t> state(gates.size(), 0);  // 0=new 1=visiting 2=done
  const std::function<SignalId(const std::string&, int)> resolve =
      [&](const std::string& sig, int line) -> SignalId {
    const SignalId existing = nl.find(sig);
    if (existing != k_no_signal) return existing;
    const auto it = gate_by_output.find(sig);
    if (it == gate_by_output.end()) fail(line, "undefined signal: " + sig);
    const std::size_t gi = it->second;
    const PendingGate& g = gates[gi];
    if (state[gi] == 1) fail(g.line, "combinational cycle through " + sig);
    state[gi] = 1;
    const auto type = gate_type_from_name(g.op);
    std::vector<SignalId> fanins;
    fanins.reserve(g.args.size());
    for (const std::string& a : g.args) fanins.push_back(resolve(a, g.line));
    SignalId id = k_no_signal;
    if (*type == GateType::Const0 || *type == GateType::Const1) {
      id = nl.add_const(*type == GateType::Const1, g.output);
    } else {
      // Single-input AND/OR occur in some dumps; treat as BUF.
      GateType t = *type;
      if (fanins.size() == 1 &&
          (t == GateType::And || t == GateType::Or)) {
        t = GateType::Buf;
      }
      if (fanins.size() == 1 && (t == GateType::Nand || t == GateType::Nor)) {
        t = GateType::Not;
      }
      id = nl.add_gate(t, std::move(fanins), g.output);
    }
    state[gi] = 2;
    return id;
  };

  for (std::size_t i = 0; i < gates.size(); ++i) {
    const PendingGate& g = gates[i];
    if (dff_ids[i] != k_no_signal) continue;  // created below via resolve
    if (nl.find(g.output) == k_no_signal) resolve(g.output, g.line);
  }
  // Wire DFF D-pins now that every signal exists.
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (dff_ids[i] == k_no_signal) continue;
    const PendingGate& g = gates[i];
    nl.set_dff_input(dff_ids[i], resolve(g.args[0], g.line));
  }

  for (const std::string& out_name : output_names) {
    const SignalId s = nl.find(out_name);
    if (s == k_no_signal) {
      throw std::runtime_error("bench: OUTPUT of undefined signal: " + out_name);
    }
    nl.add_output(s);
  }
  nl.check();
  return nl;
}

Netlist read_bench_string(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  return read_bench(in, name);
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  // Derive the module name from the file stem.
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return read_bench(in, stem);
}

void write_bench(std::ostream& out, const Netlist& nl) {
  out << "# " << nl.name() << ".bench — generated by cutelock\n";
  const NetlistStats st = nl.stats();
  out << "# inputs=" << st.inputs << " keys=" << st.key_inputs
      << " outputs=" << st.outputs << " dffs=" << st.dffs
      << " gates=" << st.gates << "\n";
  for (SignalId s : nl.inputs()) out << "INPUT(" << nl.signal_name(s) << ")\n";
  for (SignalId s : nl.key_inputs()) out << "INPUT(" << nl.signal_name(s) << ")\n";
  for (SignalId s : nl.outputs()) out << "OUTPUT(" << nl.signal_name(s) << ")\n";
  for (SignalId s : nl.dffs()) {
    out << nl.signal_name(s) << " = DFF(" << nl.signal_name(nl.dff_input(s))
        << ")";
    switch (nl.dff_init(s)) {
      case DffInit::Zero: out << "  # init " << nl.signal_name(s) << " 0"; break;
      case DffInit::One: out << "  # init " << nl.signal_name(s) << " 1"; break;
      case DffInit::X: out << "  # init " << nl.signal_name(s) << " x"; break;
    }
    out << "\n";
  }
  for (SignalId s = 0; s < nl.size(); ++s) {
    const Node& n = nl.node(s);
    if (!is_comb_gate(n.type) && n.type != GateType::Const0 &&
        n.type != GateType::Const1) {
      continue;
    }
    if (n.type == GateType::Const0 || n.type == GateType::Const1) {
      out << n.name << " = " << gate_type_name(n.type) << "()\n";
      continue;
    }
    out << n.name << " = " << gate_type_name(n.type) << "(";
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.signal_name(n.fanins[i]);
    }
    out << ")\n";
  }
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream out;
  write_bench(out, nl);
  return out.str();
}

void write_bench_file(const std::string& path, const Netlist& nl) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  write_bench(out, nl);
}

}  // namespace cl::netlist
