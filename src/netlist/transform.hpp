// Structural transforms that return rewritten copies of a netlist.
#pragma once

#include <unordered_map>

#include "netlist/netlist.hpp"

namespace cl::netlist {

/// Remove nodes that are neither ports, outputs, DFFs, nor reachable from any
/// output/DFF D-pin. Returns a compacted copy (SignalIds change; names are
/// preserved).
Netlist remove_dangling(const Netlist& nl);

/// Rewrite every MUX gate into AND/OR/NOT gates (for consumers restricted to
/// the classic .bench basis).
Netlist decompose_muxes(const Netlist& nl);

/// Structural hashing: merges syntactically identical gates (same type, same
/// fanin list after canonical sorting for commutative types) and collapses
/// BUFs. Keeps port/output/DFF names.
Netlist strash(const Netlist& nl);

/// Pin one primary input or key input to a constant: the port node is
/// replaced by Const0/Const1 (keeping its name) and dropped from the port
/// lists. The analysis module's SCOPE pass pins each key bit to 0 and to 1
/// and compares what optimize() does to the two variants. Throws
/// std::invalid_argument if `source` is not an Input/KeyInput node.
Netlist pin_signal(const Netlist& nl, SignalId source, bool value);

/// Map from signal name to SignalId for every named signal (convenience for
/// tests comparing rewritten netlists).
std::unordered_map<std::string, SignalId> name_map(const Netlist& nl);

/// Full-scan model: every DFF Q becomes a primary input ("scan_in_<name>")
/// and every DFF D-pin becomes a primary output. The result is purely
/// combinational — the threat model of the classic oracle-guided SAT attack
/// on circuits with scan-chain access.
Netlist scan_expose(const Netlist& nl);

}  // namespace cl::netlist
