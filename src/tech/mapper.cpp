#include "tech/mapper.hpp"

#include <stdexcept>

#include "netlist/topo.hpp"

namespace cl::tech {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

CellType cell_for_gate(GateType g) {
  switch (g) {
    case GateType::Not: return CellType::Inv;
    case GateType::Buf: return CellType::Buf;
    case GateType::And: return CellType::And2;
    case GateType::Nand: return CellType::Nand2;
    case GateType::Or: return CellType::Or2;
    case GateType::Nor: return CellType::Nor2;
    case GateType::Xor: return CellType::Xor2;
    case GateType::Xnor: return CellType::Xnor2;
    case GateType::Mux: return CellType::Mux2;
    case GateType::Dff: return CellType::Dff;
    case GateType::Const0:
    case GateType::Const1: return CellType::Tie;
    default: throw std::invalid_argument("cell_for_gate: not a cell gate");
  }
}

namespace {

/// Balanced tree of 2-input `op` gates over `terms`.
SignalId build_tree(Netlist& nl, GateType op, std::vector<SignalId> terms,
                    const std::string& hint) {
  while (terms.size() > 1) {
    std::vector<SignalId> next;
    next.reserve((terms.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < terms.size(); i += 2) {
      next.push_back(
          nl.add_gate(op, {terms[i], terms[i + 1]}, nl.fresh_name(hint)));
    }
    if (terms.size() % 2 != 0) next.push_back(terms.back());
    terms = std::move(next);
  }
  return terms[0];
}

}  // namespace

MappedDesign map_to_cells(const Netlist& nl) {
  MappedDesign out{Netlist(nl.name() + "_mapped"), {}};
  Netlist& dst = out.netlist;
  std::vector<SignalId> remap(nl.size(), netlist::k_no_signal);

  for (SignalId id = 0; id < nl.size(); ++id) {
    const netlist::Node& n = nl.node(id);
    if (n.type == GateType::Input) remap[id] = dst.add_input(n.name);
    else if (n.type == GateType::KeyInput) remap[id] = dst.add_key_input(n.name);
    else if (n.type == GateType::Const0 || n.type == GateType::Const1)
      remap[id] = dst.add_const(n.type == GateType::Const1, n.name);
  }
  std::vector<SignalId> src_dffs;
  for (SignalId id : nl.dffs()) {
    remap[id] = dst.add_dff(netlist::k_no_signal, nl.dff_init(id),
                            nl.signal_name(id));
    src_dffs.push_back(id);
  }

  for (SignalId id : netlist::topo_order(nl)) {
    if (!netlist::is_comb_gate(nl.type(id))) continue;
    const netlist::Node& n = nl.node(id);
    std::vector<SignalId> fanins;
    fanins.reserve(n.fanins.size());
    for (SignalId f : n.fanins) fanins.push_back(remap[f]);

    switch (n.type) {
      case GateType::Buf:
      case GateType::Not:
      case GateType::Mux:
        remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
        break;
      case GateType::And:
      case GateType::Or:
      case GateType::Xor:
        if (fanins.size() == 2) {
          remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
        } else {
          const SignalId tree =
              build_tree(dst, n.type, fanins, n.name + "_t");
          remap[id] = dst.add_gate(GateType::Buf, {tree}, n.name);
        }
        break;
      case GateType::Nand:
      case GateType::Nor:
      case GateType::Xnor: {
        if (fanins.size() == 2) {
          remap[id] = dst.add_gate(n.type, std::move(fanins), n.name);
        } else {
          const GateType base = (n.type == GateType::Nand)  ? GateType::And
                                : (n.type == GateType::Nor) ? GateType::Or
                                                            : GateType::Xor;
          const SignalId tree = build_tree(dst, base, fanins, n.name + "_t");
          remap[id] = dst.add_not(tree, n.name);
        }
        break;
      }
      default:
        throw std::logic_error("map_to_cells: unexpected gate");
    }
  }
  for (SignalId id : src_dffs) dst.set_dff_input(remap[id], remap[nl.dff_input(id)]);
  for (SignalId o : nl.outputs()) dst.add_output(remap[o]);
  dst.check();

  for (SignalId id = 0; id < dst.size(); ++id) {
    const GateType t = dst.type(id);
    if (t == GateType::Input || t == GateType::KeyInput) continue;
    ++out.cell_counts[cell_for_gate(t)];
  }
  return out;
}

std::size_t MappedDesign::total_cells() const {
  std::size_t n = 0;
  for (const auto& [type, count] : cell_counts) n += count;
  return n;
}

double MappedDesign::total_area(const CellLibrary& lib) const {
  double a = 0;
  for (const auto& [type, count] : cell_counts) {
    a += lib.cell(type).area_um2 * static_cast<double>(count);
  }
  return a;
}

double MappedDesign::total_leakage_nw(const CellLibrary& lib) const {
  double p = 0;
  for (const auto& [type, count] : cell_counts) {
    p += lib.cell(type).leakage_nw * static_cast<double>(count);
  }
  return p;
}

}  // namespace cl::tech
