#include "tech/overhead.hpp"

#include "netlist/optimize.hpp"
#include "sim/bit_sim.hpp"
#include "util/rng.hpp"

namespace cl::tech {

using netlist::Netlist;
using netlist::SignalId;

namespace {
double pct(double value, double base) {
  if (base <= 0.0) return 0.0;
  return 100.0 * (value - base) / base;
}
}  // namespace

double OverheadReport::power_overhead_pct(const OverheadReport& base) const {
  return pct(power_w, base.power_w);
}
double OverheadReport::area_overhead_pct(const OverheadReport& base) const {
  return pct(area_um2, base.area_um2);
}
double OverheadReport::cells_overhead_pct(const OverheadReport& base) const {
  return pct(static_cast<double>(cells), static_cast<double>(base.cells));
}
double OverheadReport::ios_overhead_pct(const OverheadReport& base) const {
  return pct(static_cast<double>(ios), static_cast<double>(base.ios));
}

OverheadReport analyze_overhead(const Netlist& nl,
                                const OverheadOptions& options) {
  const CellLibrary& lib = CellLibrary::nangate45_like();
  // Optimize first, as a synthesis tool would (constant propagation,
  // strashing, dead-logic sweep), then map.
  const MappedDesign mapped = map_to_cells(netlist::optimize(nl));

  OverheadReport report;
  report.cells = mapped.total_cells();
  report.area_um2 = mapped.total_area(lib);
  report.ios = nl.inputs().size() + nl.key_inputs().size() +
               nl.outputs().size() + 1;  // +1 clock

  // Switching activity: random inputs & keys, 64 lanes, toggle counting on
  // the mapped design so tree-decomposition internal nodes are included.
  const Netlist& m = mapped.netlist;
  sim::BitSim simulator(m);
  simulator.enable_toggle_counting(true);
  util::Rng rng(options.seed);
  for (std::size_t c = 0; c < options.activity_cycles; ++c) {
    for (SignalId i : m.inputs()) simulator.set(i, rng.next_u64());
    for (SignalId k : m.key_inputs()) simulator.set(k, rng.next_u64());
    simulator.eval();
    simulator.step();
  }

  const double lanes = 64.0 * static_cast<double>(options.activity_cycles - 1);
  double dynamic_w = 0.0;
  for (SignalId s = 0; s < m.size(); ++s) {
    const netlist::GateType t = m.type(s);
    if (t == netlist::GateType::Input || t == netlist::GateType::KeyInput) {
      continue;
    }
    const double toggles_per_cycle =
        static_cast<double>(simulator.toggle_counts()[s]) / lanes;
    const Cell& cell = lib.cell(cell_for_gate(t));
    // E[J/toggle] * toggles/cycle * cycles/s.
    dynamic_w += cell.switch_energy_fj * 1e-15 * toggles_per_cycle *
                 options.clock_hz;
  }
  const double leakage_w = mapped.total_leakage_nw(lib) * 1e-9;
  report.power_w = dynamic_w + leakage_w;
  return report;
}

}  // namespace cl::tech
