#include "tech/cell_library.hpp"

#include <stdexcept>

namespace cl::tech {

const char* cell_type_name(CellType t) {
  switch (t) {
    case CellType::Inv: return "INV_X1";
    case CellType::Buf: return "BUF_X1";
    case CellType::Nand2: return "NAND2_X1";
    case CellType::Nor2: return "NOR2_X1";
    case CellType::And2: return "AND2_X1";
    case CellType::Or2: return "OR2_X1";
    case CellType::Xor2: return "XOR2_X1";
    case CellType::Xnor2: return "XNOR2_X1";
    case CellType::Mux2: return "MUX2_X1";
    case CellType::Dff: return "DFF_X1";
    case CellType::Tie: return "TIE_X1";
  }
  return "?";
}

const CellLibrary& CellLibrary::nangate45_like() {
  static const CellLibrary lib({
      //  type             name                area    leak(nW) E/tog(fJ)
      {CellType::Inv, cell_type_name(CellType::Inv), 0.798, 9.5, 0.60},
      {CellType::Buf, cell_type_name(CellType::Buf), 1.064, 12.8, 0.95},
      {CellType::Nand2, cell_type_name(CellType::Nand2), 1.064, 11.8, 0.78},
      {CellType::Nor2, cell_type_name(CellType::Nor2), 1.064, 12.9, 0.80},
      {CellType::And2, cell_type_name(CellType::And2), 1.330, 15.5, 1.02},
      {CellType::Or2, cell_type_name(CellType::Or2), 1.330, 16.1, 1.05},
      {CellType::Xor2, cell_type_name(CellType::Xor2), 2.128, 25.3, 1.72},
      {CellType::Xnor2, cell_type_name(CellType::Xnor2), 2.128, 26.0, 1.74},
      {CellType::Mux2, cell_type_name(CellType::Mux2), 2.394, 29.8, 1.90},
      {CellType::Dff, cell_type_name(CellType::Dff), 4.522, 48.6, 3.50},
      {CellType::Tie, cell_type_name(CellType::Tie), 0.532, 2.1, 0.00},
  });
  return lib;
}

const Cell& CellLibrary::cell(CellType t) const {
  for (const Cell& c : cells_) {
    if (c.type == t) return c;
  }
  throw std::logic_error("CellLibrary: unknown cell");
}

}  // namespace cl::tech
