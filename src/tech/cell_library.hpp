// Standard-cell library model for the overhead analysis (the paper uses
// Cadence Genus with a 45 nm process; we model a 45 nm-class library with
// area / leakage / switching-energy figures in the range of the open
// 45 nm PDKs). Absolute numbers are representative; the Fig. 4 comparison
// is relative, which this preserves.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cl::tech {

enum class CellType : std::uint8_t {
  Inv,
  Buf,
  Nand2,
  Nor2,
  And2,
  Or2,
  Xor2,
  Xnor2,
  Mux2,
  Dff,
  Tie,  // constant driver
};

struct Cell {
  CellType type;
  const char* name;
  double area_um2;        // placed cell area
  double leakage_nw;      // static leakage power
  double switch_energy_fj;  // energy per output toggle (internal + load est.)
};

class CellLibrary {
 public:
  /// The built-in 45 nm-class library.
  static const CellLibrary& nangate45_like();

  const Cell& cell(CellType t) const;
  const std::vector<Cell>& cells() const { return cells_; }

 private:
  explicit CellLibrary(std::vector<Cell> cells) : cells_(std::move(cells)) {}
  std::vector<Cell> cells_;
};

const char* cell_type_name(CellType t);

}  // namespace cl::tech
