// Technology mapping: rewrite a netlist onto the 2-input cell library
// (multi-input gates become balanced trees; NAND/NOR of width > 2 become
// trees with an inverted root) and tally the mapped cells.
#pragma once

#include <map>

#include "netlist/netlist.hpp"
#include "tech/cell_library.hpp"

namespace cl::tech {

struct MappedDesign {
  netlist::Netlist netlist;            // 2-input-only equivalent
  std::map<CellType, std::size_t> cell_counts;

  std::size_t total_cells() const;
  double total_area(const CellLibrary& lib) const;
  double total_leakage_nw(const CellLibrary& lib) const;
};

/// Map `nl` onto the cell library. The result is functionally equivalent
/// (verified by the test suite via simulation).
MappedDesign map_to_cells(const netlist::Netlist& nl);

/// Cell type implementing a (2-input-or-less) gate.
CellType cell_for_gate(netlist::GateType g);

}  // namespace cl::tech
