// Synthesis-style overhead report (the Genus substitute behind Fig. 4):
// power (dynamic from simulated switching activity + leakage), placed area,
// cell count, and I/O count.
#pragma once

#include "netlist/netlist.hpp"
#include "tech/mapper.hpp"

namespace cl::tech {

struct OverheadOptions {
  double clock_hz = 100e6;        // activity-to-power conversion
  std::size_t activity_cycles = 64;  // random-simulation length (x64 lanes)
  std::uint64_t seed = 0xacdc;
};

struct OverheadReport {
  double power_w = 0.0;
  double area_um2 = 0.0;
  std::size_t cells = 0;
  std::size_t ios = 0;  // PIs + key inputs + POs + clock

  /// Percentage overhead of `this` relative to a baseline report.
  double power_overhead_pct(const OverheadReport& base) const;
  double area_overhead_pct(const OverheadReport& base) const;
  double cells_overhead_pct(const OverheadReport& base) const;
  double ios_overhead_pct(const OverheadReport& base) const;
};

/// Map the netlist, estimate switching activity with bit-parallel random
/// simulation, and report the synthesis-style totals. Key inputs (if any)
/// are driven with random values — the standard pessimistic assumption.
OverheadReport analyze_overhead(const netlist::Netlist& nl,
                                const OverheadOptions& options = {});

}  // namespace cl::tech
