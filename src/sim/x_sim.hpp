// Three-valued (0/1/X) scalar simulator with pessimistic X propagation.
// Faithful to power-up-unknown flip-flops; used by the validation tables
// (Table II prints 'x' before the first clock edge) and by FALL's controlled
// X-analysis. Evaluation walks the CompiledNetlist instruction stream
// (levelized, contiguous fanins) with Kleene-logic kernels instead of the
// node graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"

namespace cl::sim {

enum class Trit : std::uint8_t { Zero = 0, One = 1, X = 2 };

/// Render '0' / '1' / 'x'.
char trit_char(Trit t);

/// Three-valued connectives (Kleene logic).
Trit trit_not(Trit a);
Trit trit_and(Trit a, Trit b);
Trit trit_or(Trit a, Trit b);
Trit trit_xor(Trit a, Trit b);
Trit trit_mux(Trit sel, Trit a, Trit b);

class XSim {
 public:
  explicit XSim(const netlist::Netlist& nl);
  /// Share a compilation with other evaluators of the same netlist.
  explicit XSim(std::shared_ptr<const CompiledNetlist> compiled);

  /// Reset DFFs to their power-up values (X init stays X); inputs become X.
  void reset();

  void set(netlist::SignalId s, Trit value);
  Trit get(netlist::SignalId s) const { return values_[s]; }

  void eval();
  void step();

  /// Outputs in declaration order, as of the last eval(). Does NOT
  /// evaluate: callers own eval() (same contract as BitSim::outputs()).
  std::vector<Trit> outputs() const;

 private:
  std::shared_ptr<const CompiledNetlist> compiled_;
  std::vector<Trit> values_;
};

}  // namespace cl::sim
