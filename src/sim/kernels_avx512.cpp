// AVX-512 kernel tier: 512-bit registers, 8 lane words per op. Compiled with
// -mavx512f (only this file — see src/CMakeLists.txt); only foundation
// instructions are used, so AVX-512F alone gates the tier. Mux collapses to a
// single vpternlogq: for operands (sel, d1, d0) the truth table of
// (sel & d1) | (~sel & d0) is imm8 0xCA.
//
// Unaligned loads/stores throughout, same rationale as the AVX2 tier.
#include "sim/kernels.hpp"
#include "sim/kernels_impl.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace cl::sim::kernels {

#if defined(__AVX512F__)

namespace {

struct V512 {
  static constexpr std::size_t width = 8;
  using Reg = __m512i;
  static Reg load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, Reg r) { _mm512_storeu_si512(p, r); }
  static Reg band(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static Reg bor(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static Reg bxor(Reg a, Reg b) { return _mm512_xor_si512(a, b); }
  static Reg bnot(Reg a) {
    // ~a as a one-instruction ternary log (0x55 = NOT of the first operand).
    return _mm512_ternarylogic_epi64(a, a, a, 0x55);
  }
  static Reg mux(Reg s, Reg d0, Reg d1) {
    return _mm512_ternarylogic_epi64(s, d1, d0, 0xCA);
  }
};

}  // namespace

bool detail_avx512_compiled_in() { return true; }

void eval_span_avx512(const Instr* first, const Instr* last,
                      const netlist::SignalId* pool, std::uint64_t* values,
                      std::size_t lanes) {
  switch (lanes) {
    case 8:
      impl::eval_span_impl<V512, 8>(first, last, pool, values, lanes);
      break;
    case 16:
      impl::eval_span_impl<V512, 16>(first, last, pool, values, lanes);
      break;
    default:
      impl::eval_span_impl<V512, 0>(first, last, pool, values, lanes);
      break;
  }
}

#else  // !__AVX512F__

bool detail_avx512_compiled_in() { return false; }

void eval_span_avx512(const Instr* first, const Instr* last,
                      const netlist::SignalId* pool, std::uint64_t* values,
                      std::size_t lanes) {
  eval_span_avx2(first, last, pool, values, lanes);
}

#endif

}  // namespace cl::sim::kernels
