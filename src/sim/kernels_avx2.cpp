// AVX2 kernel tier: 256-bit registers, 4 lane words per op. This file is the
// only one in the library compiled with -mavx2 (see src/CMakeLists.txt), so
// __AVX2__ is defined here exactly when the toolchain accepted that flag; on
// toolchains that did not, the entry point degrades to a forward into the
// generic tier and detail_avx2_compiled_in() reports the truth to dispatch.
//
// Loads and stores are unaligned (loadu/storeu): the SoA buffers are 64-byte
// aligned at the base, but a signal's lane block starts at
// signal * lanes * 8, which is only vector-aligned when lanes cooperates.
// Alignment is a throughput property, never a correctness gate.
#include "sim/kernels.hpp"
#include "sim/kernels_impl.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace cl::sim::kernels {

#if defined(__AVX2__)

namespace {

struct V256 {
  static constexpr std::size_t width = 4;
  using Reg = __m256i;
  static Reg load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, Reg r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), r);
  }
  static Reg band(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static Reg bor(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static Reg bxor(Reg a, Reg b) { return _mm256_xor_si256(a, b); }
  static Reg bnot(Reg a) {
    return _mm256_xor_si256(a, _mm256_set1_epi64x(-1));
  }
  static Reg mux(Reg s, Reg d0, Reg d1) {
    // (s & d1) | (~s & d0); andnot computes ~first & second.
    return _mm256_or_si256(_mm256_and_si256(s, d1), _mm256_andnot_si256(s, d0));
  }
};

}  // namespace

bool detail_avx2_compiled_in() { return true; }

void eval_span_avx2(const Instr* first, const Instr* last,
                    const netlist::SignalId* pool, std::uint64_t* values,
                    std::size_t lanes) {
  switch (lanes) {
    case 4:
      impl::eval_span_impl<V256, 4>(first, last, pool, values, lanes);
      break;
    case 8:
      impl::eval_span_impl<V256, 8>(first, last, pool, values, lanes);
      break;
    case 16:
      impl::eval_span_impl<V256, 16>(first, last, pool, values, lanes);
      break;
    default:
      impl::eval_span_impl<V256, 0>(first, last, pool, values, lanes);
      break;
  }
}

#else  // !__AVX2__

bool detail_avx2_compiled_in() { return false; }

void eval_span_avx2(const Instr* first, const Instr* last,
                    const netlist::SignalId* pool, std::uint64_t* values,
                    std::size_t lanes) {
  eval_span_generic(first, last, pool, values, lanes);
}

#endif

}  // namespace cl::sim::kernels
