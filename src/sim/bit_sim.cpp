#include "sim/bit_sim.hpp"

#include <bit>

#include "netlist/topo.hpp"

namespace cl::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

BitSim::BitSim(const Netlist& nl)
    : nl_(nl),
      order_(netlist::topo_order(nl)),
      values_(nl.size(), 0),
      prev_values_(nl.size(), 0),
      toggles_(nl.size(), 0) {
  reset();
}

void BitSim::reset() {
  for (SignalId s = 0; s < nl_.size(); ++s) values_[s] = 0;
  for (SignalId d : nl_.dffs()) {
    values_[d] = (nl_.dff_init(d) == netlist::DffInit::One) ? ~0ULL : 0ULL;
  }
  have_prev_ = false;
}

void BitSim::set(SignalId s, std::uint64_t word) {
  const GateType t = nl_.type(s);
  if (t != GateType::Input && t != GateType::KeyInput) {
    throw std::invalid_argument("BitSim::set: not an input: " +
                                nl_.signal_name(s));
  }
  values_[s] = word;
}

void BitSim::eval() {
  for (SignalId s : order_) {
    const netlist::Node& n = nl_.node(s);
    switch (n.type) {
      case GateType::Input:
      case GateType::KeyInput:
      case GateType::Dff:
        break;  // sources: already set
      case GateType::Const0: values_[s] = 0; break;
      case GateType::Const1: values_[s] = ~0ULL; break;
      case GateType::Buf: values_[s] = values_[n.fanins[0]]; break;
      case GateType::Not: values_[s] = ~values_[n.fanins[0]]; break;
      case GateType::And: {
        std::uint64_t v = ~0ULL;
        for (SignalId f : n.fanins) v &= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Nand: {
        std::uint64_t v = ~0ULL;
        for (SignalId f : n.fanins) v &= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Or: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v |= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Nor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v |= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Xor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v ^= values_[f];
        values_[s] = v;
        break;
      }
      case GateType::Xnor: {
        std::uint64_t v = 0;
        for (SignalId f : n.fanins) v ^= values_[f];
        values_[s] = ~v;
        break;
      }
      case GateType::Mux: {
        const std::uint64_t sel = values_[n.fanins[0]];
        const std::uint64_t a = values_[n.fanins[1]];
        const std::uint64_t b = values_[n.fanins[2]];
        values_[s] = (sel & b) | (~sel & a);
        break;
      }
    }
  }
  if (count_toggles_) {
    if (have_prev_) {
      for (SignalId s = 0; s < nl_.size(); ++s) {
        toggles_[s] += static_cast<std::uint64_t>(
            std::popcount(values_[s] ^ prev_values_[s]));
      }
    }
    prev_values_ = values_;
    have_prev_ = true;
  }
}

void BitSim::step() {
  // Latch all D values computed by the last eval(); two-phase to honour
  // register-to-register paths.
  std::vector<std::uint64_t> next;
  next.reserve(nl_.dffs().size());
  for (SignalId d : nl_.dffs()) next.push_back(values_[nl_.dff_input(d)]);
  std::size_t i = 0;
  for (SignalId d : nl_.dffs()) values_[d] = next[i++];
}

std::vector<std::uint64_t> BitSim::outputs() const {
  std::vector<std::uint64_t> out;
  out.reserve(nl_.outputs().size());
  for (SignalId o : nl_.outputs()) out.push_back(values_[o]);
  return out;
}

void BitSim::clear_toggles() {
  toggles_.assign(nl_.size(), 0);
  have_prev_ = false;
}

}  // namespace cl::sim
