#include "sim/bit_sim.hpp"

#include <bit>
#include <stdexcept>

namespace cl::sim {

using netlist::Netlist;
using netlist::SignalId;

BitSim::BitSim(const Netlist& nl) : BitSim(nl, sim_config_from_env()) {}

BitSim::BitSim(const Netlist& nl, const SimConfig& config)
    : BitSim(std::make_shared<const CompiledNetlist>(nl), config) {}

BitSim::BitSim(std::shared_ptr<const CompiledNetlist> compiled,
               SimConfig config)
    : compiled_(std::move(compiled)),
      config_(config),
      values_(compiled_->num_signals(), 0),
      prev_values_(compiled_->num_signals(), 0),
      toggles_(compiled_->num_signals(), 0) {
  reset();
}

void BitSim::reset() {
  compiled_->reset_words(values_.data(), 1);
  have_prev_ = false;
}

void BitSim::set(SignalId s, std::uint64_t word) {
  if (!compiled_->settable(s)) {
    throw std::invalid_argument("BitSim::set: not an input: " +
                                compiled_->source().signal_name(s));
  }
  values_[s] = word;
}

void BitSim::eval() {
  compiled_->eval_auto(values_.data(), 1, config_);
  if (count_toggles_) {
    if (have_prev_) {
      for (std::size_t s = 0; s < values_.size(); ++s) {
        toggles_[s] += static_cast<std::uint64_t>(
            std::popcount(values_[s] ^ prev_values_[s]));
      }
    }
    prev_values_.assign(values_.begin(), values_.end());
    have_prev_ = true;
  }
}

void BitSim::step() {
  compiled_->step_words(values_.data(), 1, dff_scratch_);
}

std::vector<std::uint64_t> BitSim::outputs() const {
  std::vector<std::uint64_t> out;
  out.reserve(compiled_->outputs().size());
  for (SignalId o : compiled_->outputs()) out.push_back(values_[o]);
  return out;
}

void BitSim::clear_toggles() {
  toggles_.assign(values_.size(), 0);
  have_prev_ = false;
}

}  // namespace cl::sim
