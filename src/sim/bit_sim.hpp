// 64-way bit-parallel two-valued simulator.
//
// Every signal carries a 64-bit word: bit lane j is an independent simulation
// instance, so one eval() pass simulates 64 input vectors at once. Sequential
// circuits are advanced with step(), which latches each DFF's D word into its
// Q word. DFFs with X power-up are treated as 0 here (use XSim for faithful
// three-valued power-up behaviour).
//
// Since the compiled-engine refactor this class is a thin adapter over
// sim::CompiledNetlist (W = 1): construction compiles the netlist once into
// the levelized flat instruction stream, eval() runs the compiled kernels,
// and netlists above the sharding threshold evaluate level-parallel on the
// shared shard pool. The public contract is unchanged. For more than 64
// patterns per pass, use sim::WideSim.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"

namespace cl::sim {

class BitSim {
 public:
  explicit BitSim(const netlist::Netlist& nl);
  /// Explicit engine knobs (tests use this to pin the sharding threshold).
  BitSim(const netlist::Netlist& nl, const SimConfig& config);
  /// Share a compilation across several simulators (e.g. parallel screening
  /// tasks over one locked netlist).
  explicit BitSim(std::shared_ptr<const CompiledNetlist> compiled,
                  SimConfig config = sim_config_from_env());

  /// Reset all DFFs to their power-up values (X treated as 0) and clear
  /// input/key words.
  void reset();

  /// Assign the 64-lane word of a primary/key input.
  void set(netlist::SignalId s, std::uint64_t word);

  /// Current word of any signal (valid after eval()).
  std::uint64_t get(netlist::SignalId s) const { return values_[s]; }

  /// Propagate through the combinational core (inputs and DFF Qs are
  /// sources).
  void eval();

  /// Latch every DFF: Q <= D. Call after eval().
  void step();

  /// Output words in declaration order, as of the last eval(). Does NOT
  /// evaluate: callers own eval(), so hot attack loops that already
  /// evaluated are not charged a second pass (and toggle bookkeeping is not
  /// silently advanced).
  std::vector<std::uint64_t> outputs() const;

  const netlist::Netlist& netlist() const { return compiled_->source(); }
  const CompiledNetlist& compiled() const { return *compiled_; }

  /// Number of 0->1 / 1->0 transitions observed per signal across step()
  /// boundaries in lane 0..63 combined (used for switching activity). The
  /// counter accumulates over the object's lifetime; reset with
  /// clear_toggles().
  const std::vector<std::uint64_t>& toggle_counts() const { return toggles_; }
  void clear_toggles();

  /// Enable toggle accounting (off by default; costs one pass per eval).
  void enable_toggle_counting(bool on) { count_toggles_ = on; }

 private:
  std::shared_ptr<const CompiledNetlist> compiled_;
  SimConfig config_;
  util::AlignedVec<std::uint64_t> values_;   // 64-byte-aligned SoA buffer
  std::vector<std::uint64_t> prev_values_;
  std::vector<std::uint64_t> toggles_;
  util::AlignedVec<std::uint64_t> dff_scratch_;
  bool count_toggles_ = false;
  bool have_prev_ = false;
};

}  // namespace cl::sim
