#include "sim/x_sim.hpp"

#include <stdexcept>

namespace cl::sim {

using netlist::GateType;
using netlist::Netlist;
using netlist::SignalId;

char trit_char(Trit t) {
  switch (t) {
    case Trit::Zero: return '0';
    case Trit::One: return '1';
    case Trit::X: return 'x';
  }
  return '?';
}

Trit trit_not(Trit a) {
  if (a == Trit::X) return Trit::X;
  return a == Trit::Zero ? Trit::One : Trit::Zero;
}

Trit trit_and(Trit a, Trit b) {
  if (a == Trit::Zero || b == Trit::Zero) return Trit::Zero;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::One;
}

Trit trit_or(Trit a, Trit b) {
  if (a == Trit::One || b == Trit::One) return Trit::One;
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return Trit::Zero;
}

Trit trit_xor(Trit a, Trit b) {
  if (a == Trit::X || b == Trit::X) return Trit::X;
  return (a == b) ? Trit::Zero : Trit::One;
}

Trit trit_mux(Trit sel, Trit a, Trit b) {
  if (sel == Trit::Zero) return a;
  if (sel == Trit::One) return b;
  // Unknown select: defined only if both data inputs agree.
  return (a == b) ? a : Trit::X;
}

XSim::XSim(const Netlist& nl)
    : XSim(std::make_shared<const CompiledNetlist>(nl)) {}

XSim::XSim(std::shared_ptr<const CompiledNetlist> compiled)
    : compiled_(std::move(compiled)),
      values_(compiled_->num_signals(), Trit::X) {
  reset();
}

void XSim::reset() {
  for (Trit& v : values_) v = Trit::X;
  const auto& qs = compiled_->dff_qs();
  const auto& inits = compiled_->dff_inits();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    switch (inits[i]) {
      case netlist::DffInit::Zero: values_[qs[i]] = Trit::Zero; break;
      case netlist::DffInit::One: values_[qs[i]] = Trit::One; break;
      case netlist::DffInit::X: values_[qs[i]] = Trit::X; break;
    }
  }
  for (SignalId s : compiled_->const_zeros()) values_[s] = Trit::Zero;
  for (SignalId s : compiled_->const_ones()) values_[s] = Trit::One;
}

void XSim::set(SignalId s, Trit value) {
  if (!compiled_->settable(s)) {
    throw std::invalid_argument("XSim::set: not an input: " +
                                compiled_->source().signal_name(s));
  }
  values_[s] = value;
}

void XSim::eval() {
  const SignalId* pool = compiled_->fanin_pool().data();
  for (const Instr& in : compiled_->instructions()) {
    Trit v = Trit::X;
    switch (in.op) {
      case Op::Buf: v = values_[in.a]; break;
      case Op::Not: v = trit_not(values_[in.a]); break;
      case Op::And2: v = trit_and(values_[in.a], values_[in.b]); break;
      case Op::Nand2:
        v = trit_not(trit_and(values_[in.a], values_[in.b]));
        break;
      case Op::Or2: v = trit_or(values_[in.a], values_[in.b]); break;
      case Op::Nor2:
        v = trit_not(trit_or(values_[in.a], values_[in.b]));
        break;
      case Op::Xor2: v = trit_xor(values_[in.a], values_[in.b]); break;
      case Op::Xnor2:
        v = trit_not(trit_xor(values_[in.a], values_[in.b]));
        break;
      case Op::Mux:
        v = trit_mux(values_[in.a], values_[in.b], values_[in.c]);
        break;
      case Op::AndN:
      case Op::NandN: {
        v = Trit::One;
        for (std::uint32_t f = 0; f < in.b; ++f) {
          v = trit_and(v, values_[pool[in.a + f]]);
        }
        if (in.op == Op::NandN) v = trit_not(v);
        break;
      }
      case Op::OrN:
      case Op::NorN: {
        v = Trit::Zero;
        for (std::uint32_t f = 0; f < in.b; ++f) {
          v = trit_or(v, values_[pool[in.a + f]]);
        }
        if (in.op == Op::NorN) v = trit_not(v);
        break;
      }
      case Op::XorN:
      case Op::XnorN: {
        v = Trit::Zero;
        for (std::uint32_t f = 0; f < in.b; ++f) {
          v = trit_xor(v, values_[pool[in.a + f]]);
        }
        if (in.op == Op::XnorN) v = trit_not(v);
        break;
      }
    }
    values_[in.out] = v;
  }
}

void XSim::step() {
  const auto& qs = compiled_->dff_qs();
  const auto& ds = compiled_->dff_ds();
  std::vector<Trit> next;
  next.reserve(qs.size());
  for (SignalId d : ds) next.push_back(values_[d]);
  for (std::size_t i = 0; i < qs.size(); ++i) values_[qs[i]] = next[i];
}

std::vector<Trit> XSim::outputs() const {
  std::vector<Trit> out;
  out.reserve(compiled_->outputs().size());
  for (SignalId o : compiled_->outputs()) out.push_back(values_[o]);
  return out;
}

}  // namespace cl::sim
